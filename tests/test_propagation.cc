#include "routing/propagation.h"

#include <gtest/gtest.h>

#include "topology/generator.h"
#include "util/rng.h"

namespace bgpbh::routing {
namespace {

using topology::AsGraph;
using topology::AsNode;
using topology::Tier;

struct Env {
  AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::CustomerCones cones{graph};
  PropagationEngine engine{graph, cones, 99};

  // A stub user with at least one blackholing provider.
  const AsNode* user_with_provider() const {
    for (const auto& node : graph.nodes()) {
      if (node.tier != Tier::kStub) continue;
      for (Asn p : node.providers) {
        const AsNode* provider = graph.find(p);
        if (provider && provider->blackhole.offers_blackholing &&
            provider->blackhole.auth == topology::BlackholeAuth::kCustomerCone) {
          return &node;
        }
      }
    }
    return nullptr;
  }

  Asn blackholing_provider_of(const AsNode& user) const {
    for (Asn p : user.providers) {
      const AsNode* provider = graph.find(p);
      if (provider && provider->blackhole.offers_blackholing &&
          provider->blackhole.auth == topology::BlackholeAuth::kCustomerCone)
        return p;
    }
    return 0;
  }
};

Env& env() {
  static Env e;
  return e;
}

TEST(BaselinePath, EndpointsAndReachability) {
  auto& e = env();
  const auto& nodes = e.graph.nodes();
  util::Rng rng(3);
  std::size_t reachable = 0, total = 0;
  for (int i = 0; i < 300; ++i) {
    Asn from = nodes[rng.uniform(nodes.size())].asn;
    Asn to = nodes[rng.uniform(nodes.size())].asn;
    ++total;
    auto path = e.engine.baseline_path(from, to);
    if (!path) continue;
    ++reachable;
    EXPECT_EQ(path->first(), from);
    EXPECT_EQ(path->origin(), to);
    EXPECT_LE(path->length(), 12u);
  }
  // The topology is fully connected through the tier-1 clique.
  EXPECT_EQ(reachable, total);
}

TEST(BaselinePath, SelfPath) {
  auto& e = env();
  Asn a = e.graph.nodes().front().asn;
  auto path = e.engine.baseline_path(a, a);
  ASSERT_TRUE(path);
  EXPECT_EQ(path->length(), 1u);
}

// Valley-free property: once the path descends (provider->customer) or
// crosses a peering link, it must never go up (customer->provider) or
// cross another peering link.
TEST(BaselinePath, ValleyFree) {
  auto& e = env();
  const auto& nodes = e.graph.nodes();
  util::Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    Asn from = nodes[rng.uniform(nodes.size())].asn;
    Asn to = nodes[rng.uniform(nodes.size())].asn;
    auto path = e.engine.baseline_path(from, to);
    if (!path || path->length() < 2) continue;
    // Walk from the origin towards the observer (direction of
    // announcement propagation) and track phase.
    const auto& hops = path->hops();
    int phase = 0;  // 0 = ascending (c2p), 1 = peered, 2 = descending
    for (std::size_t k = hops.size() - 1; k > 0; --k) {
      Asn sender = hops[k];
      Asn receiver = hops[k - 1];
      auto rel = e.graph.relationship(sender, receiver);
      if (rel == AsGraph::Rel::kProvider) {
        // Announcement travels customer->provider: only in phase 0.
        EXPECT_EQ(phase, 0) << path->to_string();
      } else if (rel == AsGraph::Rel::kPeer) {
        EXPECT_LE(phase, 0) << path->to_string();
        phase = 1;
      } else if (rel == AsGraph::Rel::kCustomer) {
        phase = 2;
      } else {
        FAIL() << "non-adjacent hop in path " << path->to_string();
      }
    }
  }
}

TEST(BaselinePath, Deterministic) {
  auto& e = env();
  auto p1 = e.engine.baseline_path(e.graph.nodes()[100].asn,
                                   e.graph.nodes()[1500].asn);
  auto p2 = e.engine.baseline_path(e.graph.nodes()[100].asn,
                                   e.graph.nodes()[1500].asn);
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(*p1, *p2);
}

BlackholeAnnouncement make_announcement(Env& e, const AsNode& user,
                                        Asn provider) {
  BlackholeAnnouncement ann;
  ann.user = user.asn;
  ann.prefix = net::Prefix(
      net::Ipv4Addr(user.v4_block.addr().v4().value() + 0x0101), 32);
  ann.target_providers = {provider};
  ann.time = 1000;
  return ann;
}

TEST(Blackhole, TargetProviderActivates) {
  auto& e = env();
  const AsNode* user = e.user_with_provider();
  ASSERT_NE(user, nullptr);
  Asn provider = e.blackholing_provider_of(*user);
  auto prop = e.engine.propagate_blackhole(make_announcement(e, *user, provider));
  EXPECT_EQ(prop.activated_providers, std::vector<Asn>{provider});
  EXPECT_FALSE(prop.control_plane_only);
  // The user itself always holds the route (internal/CDN visibility).
  ASSERT_FALSE(prop.holders.empty());
  EXPECT_EQ(prop.holders.front().holder, user->asn);
  EXPECT_EQ(prop.holders.front().hops_from_user, 0);
}

TEST(Blackhole, ProviderHolderHasCorrectPath) {
  auto& e = env();
  const AsNode* user = e.user_with_provider();
  Asn provider = e.blackholing_provider_of(*user);
  auto prop = e.engine.propagate_blackhole(make_announcement(e, *user, provider));
  bool found = false;
  for (const auto& h : prop.holders) {
    if (h.holder == provider) {
      found = true;
      EXPECT_EQ(h.path, bgp::AsPath::of({provider, user->asn}));
      EXPECT_EQ(h.hops_from_user, 1);
      const AsNode* pnode = e.graph.find(provider);
      EXPECT_TRUE(h.communities.contains(pnode->blackhole.communities.front()));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Blackhole, WrongCommunityMisconfigActivatesNothing) {
  auto& e = env();
  const AsNode* user = e.user_with_provider();
  Asn provider = e.blackholing_provider_of(*user);
  auto ann = make_announcement(e, *user, provider);
  ann.misconfig = BlackholeAnnouncement::Misconfig::kWrongCommunity;
  auto prop = e.engine.propagate_blackhole(ann);
  EXPECT_TRUE(prop.activated_providers.empty());
}

TEST(Blackhole, ForeignPrefixFailsConeAuthentication) {
  auto& e = env();
  const AsNode* user = e.user_with_provider();
  Asn provider = e.blackholing_provider_of(*user);
  auto ann = make_announcement(e, *user, provider);
  // A victim address belonging to a completely unrelated AS.
  const AsNode* victim = nullptr;
  for (const auto& node : e.graph.nodes()) {
    if (node.asn != user->asn && !e.cones.in_cone(user->asn, node.asn)) {
      victim = &node;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  ann.prefix =
      net::Prefix(net::Ipv4Addr(victim->v4_block.addr().v4().value() + 1), 32);
  auto prop = e.engine.propagate_blackhole(ann);
  EXPECT_TRUE(prop.activated_providers.empty())
      << "provider must reject blackholing of address space outside the "
         "user's customer cone";
}

TEST(Blackhole, BundleReachesNonTargetNeighbors) {
  auto& e = env();
  // Find a user with >= 2 providers so the bundle goes somewhere else.
  const AsNode* user = nullptr;
  Asn provider = 0;
  for (const auto& node : e.graph.nodes()) {
    if (node.tier != Tier::kStub || node.providers.size() < 2) continue;
    for (Asn p : node.providers) {
      const AsNode* pn = e.graph.find(p);
      if (pn && pn->blackhole.offers_blackholing &&
          pn->blackhole.auth == topology::BlackholeAuth::kCustomerCone) {
        user = &node;
        provider = p;
        break;
      }
    }
    if (user) break;
  }
  ASSERT_NE(user, nullptr);
  auto ann = make_announcement(e, *user, provider);
  ann.bundle = true;
  auto prop = e.engine.propagate_blackhole(ann);
  // Non-target neighbours that accept more-specifics hold the route too.
  std::size_t non_target_holders = 0;
  for (const auto& h : prop.holders) {
    if (h.holder != user->asn && h.holder != provider) ++non_target_holders;
  }
  // The bundled announcement went to every neighbour; acceptance depends
  // on their filters, but across the whole topology at least the
  // provider itself must hold it.
  EXPECT_TRUE(std::find(prop.activated_providers.begin(),
                        prop.activated_providers.end(),
                        provider) != prop.activated_providers.end());
  (void)non_target_holders;
}

TEST(Blackhole, IxpRouteServerRedistribution) {
  auto& e = env();
  // Find a blackholing IXP and one of its members.
  for (const auto& ixp : e.graph.ixps()) {
    if (!ixp.offers_blackholing || ixp.members.size() < 10) continue;
    Asn user = ixp.members.front();
    BlackholeAnnouncement ann;
    ann.user = user;
    const AsNode* unode = e.graph.find(user);
    ann.prefix =
        net::Prefix(net::Ipv4Addr(unode->v4_block.addr().v4().value() + 7), 32);
    ann.target_ixps = {ixp.id};
    ann.time = 5;
    auto prop = e.engine.propagate_blackhole(ann);
    ASSERT_EQ(prop.activated_ixps, std::vector<std::uint32_t>{ixp.id});
    EXPECT_FALSE(prop.rs_receivers.empty());
    // The RS holder is observable with the IXP community attached.
    bool rs_holder = false;
    for (const auto& h : prop.holders) {
      if (h.via_route_server && h.holder == ixp.route_server_asn) {
        rs_holder = true;
        EXPECT_TRUE(h.communities.contains(ixp.blackhole_community));
        if (ixp.transparent_route_server) {
          EXPECT_EQ(h.path, bgp::AsPath::of({user}));
        } else {
          EXPECT_EQ(h.path, bgp::AsPath::of({ixp.route_server_asn, user}));
        }
      }
    }
    EXPECT_TRUE(rs_holder);
    return;
  }
  FAIL() << "no blackholing IXP with members found";
}

TEST(Blackhole, MissingIrrEntrySuppresssRsRedistribution) {
  auto& e = env();
  for (const auto& ixp : e.graph.ixps()) {
    if (!ixp.offers_blackholing || ixp.members.empty()) continue;
    Asn user = ixp.members.front();
    const AsNode* unode = e.graph.find(user);
    BlackholeAnnouncement ann;
    ann.user = user;
    ann.prefix =
        net::Prefix(net::Ipv4Addr(unode->v4_block.addr().v4().value() + 9), 32);
    ann.target_ixps = {ixp.id};
    ann.misconfig = BlackholeAnnouncement::Misconfig::kMissingIrrEntry;
    auto prop = e.engine.propagate_blackhole(ann);
    EXPECT_TRUE(prop.activated_ixps.empty());
    EXPECT_TRUE(prop.rs_receivers.empty());
    EXPECT_TRUE(prop.control_plane_only);
    return;
  }
  FAIL() << "no blackholing IXP found";
}

TEST(Blackhole, InvalidNextHopIsControlPlaneOnly) {
  auto& e = env();
  for (const auto& ixp : e.graph.ixps()) {
    if (!ixp.offers_blackholing || ixp.members.empty()) continue;
    Asn user = ixp.members.front();
    const AsNode* unode = e.graph.find(user);
    BlackholeAnnouncement ann;
    ann.user = user;
    ann.prefix =
        net::Prefix(net::Ipv4Addr(unode->v4_block.addr().v4().value() + 11), 32);
    ann.target_ixps = {ixp.id};
    ann.misconfig = BlackholeAnnouncement::Misconfig::kInvalidNextHop;
    auto prop = e.engine.propagate_blackhole(ann);
    // Accepted on the control plane but ineffective on the data plane.
    EXPECT_EQ(prop.activated_ixps, std::vector<std::uint32_t>{ixp.id});
    EXPECT_TRUE(prop.control_plane_only);
    return;
  }
  FAIL() << "no blackholing IXP found";
}

TEST(Blackhole, NonMemberCannotUseIxp) {
  auto& e = env();
  for (const auto& ixp : e.graph.ixps()) {
    if (!ixp.offers_blackholing) continue;
    // Find an AS that is not a member.
    for (const auto& node : e.graph.nodes()) {
      if (std::binary_search(ixp.members.begin(), ixp.members.end(), node.asn))
        continue;
      BlackholeAnnouncement ann;
      ann.user = node.asn;
      ann.prefix = net::Prefix(
          net::Ipv4Addr(node.v4_block.addr().v4().value() + 3), 32);
      ann.target_ixps = {ixp.id};
      auto prop = e.engine.propagate_blackhole(ann);
      EXPECT_TRUE(prop.activated_ixps.empty());
      return;
    }
  }
  FAIL() << "setup failure";
}

TEST(Blackhole, HoldersWithinLeakDepth) {
  auto& e = env();
  const AsNode* user = e.user_with_provider();
  Asn provider = e.blackholing_provider_of(*user);
  auto ann = make_announcement(e, *user, provider);
  ann.bundle = true;
  auto prop = e.engine.propagate_blackhole(ann);
  for (const auto& h : prop.holders) {
    EXPECT_LE(h.hops_from_user, 6);
    if (!h.via_route_server) {
      ASSERT_FALSE(h.path.empty());
      EXPECT_EQ(h.path.origin(), user->asn);
    }
  }
}

TEST(Blackhole, DeterministicPropagation) {
  auto& e = env();
  const AsNode* user = e.user_with_provider();
  Asn provider = e.blackholing_provider_of(*user);
  auto ann = make_announcement(e, *user, provider);
  ann.bundle = true;
  auto p1 = e.engine.propagate_blackhole(ann);
  auto p2 = e.engine.propagate_blackhole(ann);
  EXPECT_EQ(p1.activated_providers, p2.activated_providers);
  EXPECT_EQ(p1.holders.size(), p2.holders.size());
}

TEST(Behaviour, RsHonouringIsStable) {
  auto& e = env();
  const auto& ixp = e.graph.ixps().front();
  for (Asn member : ixp.members) {
    EXPECT_EQ(e.engine.honours_rs_blackhole(ixp.id, member),
              e.engine.honours_rs_blackhole(ixp.id, member));
    // Honouring implies using the route server.
    if (e.engine.honours_rs_blackhole(ixp.id, member)) {
      EXPECT_TRUE(e.engine.member_uses_route_server(ixp.id, member));
    }
  }
}

TEST(Behaviour, PrependFactorRange) {
  auto& e = env();
  std::size_t multi = 0;
  for (const auto& node : e.graph.nodes()) {
    std::size_t f = e.engine.prepend_factor(node.asn);
    EXPECT_GE(f, 1u);
    EXPECT_LE(f, 3u);
    if (f > 1) ++multi;
  }
  // ~15% of ASes prepend.
  EXPECT_GT(multi, e.graph.num_ases() / 20);
  EXPECT_LT(multi, e.graph.num_ases() / 3);
}

}  // namespace
}  // namespace bgpbh::routing
