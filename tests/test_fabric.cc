// Multi-process shard-fabric suite (src/fabric/):
//   * storage::wire version negotiation + frame version-range and CRC
//     rejection (the shared record/fabric framing),
//   * consistent-hash placement: determinism, and the add-an-endpoint
//     property (slots either stay put or move to the new endpoint),
//   * control-plane smoke over a real socket: HELLO negotiation +
//     HEALTH against a fork/exec'd shard_server,
//   * the headline grid: the full deterministic workload pushed
//     through fabric clients against live shard-server processes, the
//     scatter-gathered event set byte-identical to the in-process
//     baseline across slots {1,3,8} x producers {1,3},
//   * crash: SIGKILL a shard server mid-stream after a drained
//     checkpoint, restart it on the same directory/port, and the
//     lane replay completes the run with zero loss/duplication,
//   * rebalance: migrate every slot onto a server spawned mid-stream,
//     keep feeding, and the final event set is still byte-identical.
#include "fabric/router.h"

#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "bgp/rib.h"
#include "fabric/placement.h"
#include "fabric/protocol.h"
#include "fabric/socket.h"
#include "net/bytes.h"
#include "storage/wire.h"
#include "stream/pipeline.h"
#include "telemetry/fleet.h"
#include "telemetry/metrics.h"

namespace bgpbh::fabric {
namespace {

namespace fs = std::filesystem;
using core::PeerEvent;
using routing::FeedUpdate;

std::string temp_dir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

// Must match the shard_server defaults the spawner passes below: both
// sides derive their substrates deterministically from these knobs.
core::StudyConfig study_config() {
  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 3);
  config.workload.intensity_scale = 0.05;
  config.table_dump_episodes = 0;
  return config;
}

struct Baseline {
  std::vector<FeedUpdate> updates;
  std::vector<PeerEvent> events;  // canonical order, in-process

  Baseline() {
    api::SessionConfig config;
    config.mode = api::SessionConfig::Mode::kLiveFeed;
    config.study = study_config();
    config.num_shards = 2;
    api::AnalysisSession session(config);
    updates = session.study().replay_updates();
    stream::VectorSource source(updates);
    session.feed(source);
    session.close(study_config().window_end);
    events = session.events();
  }
};

const Baseline& baseline() {
  static Baseline base;
  return base;
}

std::string shard_server_path() {
  // Built next to this test binary (see CMakeLists add_dependencies).
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "./shard_server";
  buf[n] = '\0';
  return (fs::path(buf).parent_path() / "shard_server").string();
}

// One fork/exec'd shard_server process.  The child prints "PORT <n>"
// once bound; spawn() blocks on that line.
struct ServerProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::string dir;

  static ServerProc spawn(const std::string& dir, std::size_t producers,
                          std::uint16_t port = 0, bool trace = false) {
    ServerProc proc;
    proc.dir = dir;
    int fds[2] = {-1, -1};
    if (pipe(fds) != 0) return proc;
    std::string path = shard_server_path();
    std::string s_producers = std::to_string(producers);
    std::string s_port = std::to_string(port);
    pid_t pid = fork();
    if (pid == 0) {
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      std::vector<char*> argv = {const_cast<char*>(path.c_str()),
                                 const_cast<char*>("--dir"),
                                 const_cast<char*>(dir.c_str()),
                                 const_cast<char*>("--producers"),
                                 const_cast<char*>(s_producers.c_str()),
                                 const_cast<char*>("--port"),
                                 const_cast<char*>(s_port.c_str()),
                                 const_cast<char*>("--window-start"),
                                 const_cast<char*>("2017-03-01"),
                                 const_cast<char*>("--window-end"),
                                 const_cast<char*>("2017-03-03"),
                                 const_cast<char*>("--intensity"),
                                 const_cast<char*>("0.05")};
      if (trace) {
        argv.push_back(const_cast<char*>("--trace"));
        argv.push_back(const_cast<char*>("--trace-threshold-ns"));
        argv.push_back(const_cast<char*>("0"));
      }
      argv.push_back(nullptr);
      execv(path.c_str(), argv.data());
      _exit(127);
    }
    close(fds[1]);
    std::string line;
    char c = 0;
    while (read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    close(fds[0]);
    unsigned parsed = 0;
    if (std::sscanf(line.c_str(), "PORT %u", &parsed) == 1) {
      proc.pid = pid;
      proc.port = static_cast<std::uint16_t>(parsed);
    } else {
      // Bind/startup failure: reap and report an invalid proc.
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
    return proc;
  }

  bool valid() const { return pid > 0 && port != 0; }

  void kill_hard() {
    if (pid <= 0) return;
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    pid = -1;
  }

  int wait_exit() {
    if (pid <= 0) return -1;
    int status = 0;
    waitpid(pid, &status, 0);
    pid = -1;
    return status;
  }
};

api::SessionConfig fabric_session_config(
    std::size_t slots, std::size_t producers,
    const std::vector<ServerProc*>& servers) {
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = slots;
  config.num_producers = producers;
  for (const ServerProc* s : servers) {
    config.fabric.endpoints.push_back(FabricEndpoint{"127.0.0.1", s->port});
  }
  return config;
}

// The same peer-key partition crash_child uses: one producer always
// carries the same peers, so per-producer (and hence per-lane) order
// is deterministic.
std::vector<std::vector<FeedUpdate>> partition(
    const std::vector<FeedUpdate>& updates, std::size_t producers) {
  std::vector<std::vector<FeedUpdate>> parts(producers);
  for (const auto& u : updates) {
    bgp::PeerKey peer{u.update.peer_ip, u.update.peer_asn};
    parts[bgp::PeerKeyHash{}(peer) % producers].push_back(u);
  }
  return parts;
}

// ---- satellite: shared framing + version negotiation ------------------

TEST(WireVersion, NegotiationPicksHighestCommonVersion) {
  using storage::wire::negotiate_version;
  EXPECT_EQ(negotiate_version(1, 1, 1, 1), std::optional<std::uint8_t>(1));
  EXPECT_EQ(negotiate_version(1, 3, 2, 5), std::optional<std::uint8_t>(3));
  EXPECT_EQ(negotiate_version(2, 5, 1, 3), std::optional<std::uint8_t>(3));
  EXPECT_EQ(negotiate_version(1, 2, 2, 2), std::optional<std::uint8_t>(2));
  EXPECT_EQ(negotiate_version(1, 1, 2, 3), std::nullopt);
  EXPECT_EQ(negotiate_version(4, 5, 1, 3), std::nullopt);
}

TEST(WireVersion, DecodeRejectsVersionOutsideReadableRange) {
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB, 0xCC};
  net::BufWriter frame;
  storage::wire::encode_frame(frame, 0x1234, 3, payload);
  {
    net::BufReader r(frame.data());
    auto decoded = storage::wire::decode_frame(r, 0x1234, 1, 4, 1 << 16);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->version, 3);
    EXPECT_TRUE(std::equal(decoded->payload.begin(), decoded->payload.end(),
                           payload.begin()));
  }
  {
    // Same frame, reader only speaks versions [1, 2].
    net::BufReader r(frame.data());
    EXPECT_FALSE(
        storage::wire::decode_frame(r, 0x1234, 1, 2, 1 << 16).has_value());
  }
  {
    // Wrong magic.
    net::BufReader r(frame.data());
    EXPECT_FALSE(
        storage::wire::decode_frame(r, 0x4321, 1, 4, 1 << 16).has_value());
  }
  {
    // One flipped payload bit must fail the CRC.
    auto corrupted = frame.data();
    std::vector<std::uint8_t> bytes(corrupted.begin(), corrupted.end());
    bytes[8] ^= 0x01;
    net::BufReader r(bytes);
    EXPECT_FALSE(
        storage::wire::decode_frame(r, 0x1234, 1, 4, 1 << 16).has_value());
  }
}

// ---- placement --------------------------------------------------------

TEST(Placement, DeterministicAndInRange) {
  auto a = place_slots(64, 3);
  auto b = place_slots(64, 3);
  EXPECT_EQ(a, b);
  for (std::size_t e : a) EXPECT_LT(e, 3u);
  // Every endpoint owns at least one slot at this slot:endpoint ratio.
  std::vector<std::size_t> counts(3, 0);
  for (std::size_t e : a) ++counts[e];
  for (std::size_t n : counts) EXPECT_GT(n, 0u);
}

TEST(Placement, AddingAnEndpointOnlyMovesSlotsToIt) {
  auto before = place_slots(64, 2);
  auto after = place_slots(64, 3);
  std::size_t moved = 0;
  for (std::size_t s = 0; s < before.size(); ++s) {
    if (after[s] != before[s]) {
      // Consistent hashing: a slot either stays where it was or moves
      // to the NEW endpoint — never between old endpoints.
      EXPECT_EQ(after[s], 2u);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, before.size());
}

// ---- live server: control-plane smoke ---------------------------------

TEST(ShardServerSmoke, HelloNegotiatesAndHealthAnswers) {
  std::string dir = temp_dir("bgpbh_fabric_smoke");
  ServerProc server = ServerProc::spawn(dir, 1);
  ASSERT_TRUE(server.valid());
  auto conn = TcpConn::dial("127.0.0.1", server.port);
  ASSERT_TRUE(conn.has_value());
  net::BufWriter hello;
  hello.u8(kFabricVersionMin);
  hello.u8(kFabricVersionMax);
  hello.u32(kControlLane);
  hello.u32(kControlLane);
  ASSERT_TRUE(conn->send_frame(FrameType::kHello, hello.data()));
  auto hello_ack = conn->recv_frame();
  ASSERT_TRUE(hello_ack.has_value());
  ASSERT_EQ(hello_ack->type, FrameType::kHelloAck);
  net::BufReader hr(hello_ack->body);
  EXPECT_EQ(hr.u8(), kFabricVersionMax);
  EXPECT_EQ(hr.u64(), 0u);
  ASSERT_TRUE(conn->send_frame(FrameType::kHealth, {}));
  auto health = conn->recv_frame();
  ASSERT_TRUE(health.has_value());
  ASSERT_EQ(health->type, FrameType::kHealthAck);
  net::BufReader br(health->body);
  EXPECT_EQ(br.u32(), 0u);  // no slots touched yet
  EXPECT_EQ(br.u8(), 0u);   // healthy
  ASSERT_TRUE(conn->send_frame(FrameType::kShutdown, {}));
  auto ack = conn->recv_frame();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, FrameType::kShutdownAck);
  int status = server.wait_exit();
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  fs::remove_all(dir);
}

// ---- the headline grid ------------------------------------------------

TEST(FabricGrid, DistributedEventSetMatchesInProcess) {
  const Baseline& base = baseline();
  ASSERT_FALSE(base.events.empty());
  for (std::size_t slots : {1u, 3u, 8u}) {
    for (std::size_t producers : {1u, 3u}) {
      SCOPED_TRACE("slots=" + std::to_string(slots) +
                   " producers=" + std::to_string(producers));
      const std::size_t n_servers = std::min<std::size_t>(slots, 3);
      std::vector<ServerProc> servers;
      std::vector<ServerProc*> refs;
      std::vector<std::string> dirs;
      for (std::size_t i = 0; i < n_servers; ++i) {
        dirs.push_back(temp_dir("bgpbh_fabric_grid_" + std::to_string(slots) +
                                "_" + std::to_string(producers) + "_" +
                                std::to_string(i)));
        servers.push_back(ServerProc::spawn(dirs.back(), producers));
        ASSERT_TRUE(servers.back().valid());
      }
      for (auto& s : servers) refs.push_back(&s);
      {
        api::AnalysisSession session(
            fabric_session_config(slots, producers, refs));
        auto parts = partition(base.updates, producers);
        std::vector<std::thread> threads;
        for (std::size_t p = 0; p < producers; ++p) {
          threads.emplace_back([&, p] {
            for (const auto& u : parts[p]) session.push(u, p);
            session.flush(p);
          });
        }
        for (auto& t : threads) t.join();
        session.close(study_config().window_end);
        EXPECT_TRUE(session.events() == base.events)
            << "distributed event set diverged from the in-process baseline";
        EXPECT_EQ(session.updates_pushed(), base.updates.size());
        session.fabric()->shutdown_endpoints();
      }
      for (auto& s : servers) {
        int status = s.wait_exit();
        EXPECT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
      }
      for (const auto& d : dirs) fs::remove_all(d);
    }
  }
}

// ---- crash: SIGKILL'd server recovers, lanes replay -------------------

TEST(FabricCrash, SigkilledServerRecoversAndReplayCompletes) {
  const Baseline& base = baseline();
  ASSERT_FALSE(base.events.empty());
  const std::size_t slots = 3;
  std::string dir0 = temp_dir("bgpbh_fabric_crash_0");
  std::string dir1 = temp_dir("bgpbh_fabric_crash_1");
  ServerProc s0 = ServerProc::spawn(dir0, 1);
  ServerProc s1 = ServerProc::spawn(dir1, 1);
  ASSERT_TRUE(s0.valid());
  ASSERT_TRUE(s1.valid());
  std::vector<ServerProc*> refs = {&s0, &s1};
  api::AnalysisSession session(fabric_session_config(slots, 1, refs));
  const auto& updates = base.updates;
  const std::size_t checkpoint_at = updates.size() / 3;
  const std::size_t kill_at = updates.size() / 2;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (i == checkpoint_at) {
      // Drained cut on every slot: the servers' durable totals advance
      // to everything sent so far.
      ASSERT_TRUE(session.checkpoint_now());
    }
    if (i == kill_at) {
      // The hardest failure: no flush, no destructors.  Everything the
      // server accepted after the cut exists only in the client's
      // replay buffers now.
      std::uint16_t port = s0.port;
      s0.kill_hard();
      s0 = ServerProc::spawn(dir0, 1, port);
      ASSERT_TRUE(s0.valid());
    }
    session.push(updates[i], 0);
  }
  session.flush(0);
  session.close(study_config().window_end);
  EXPECT_GT(session.fabric()->reconnects(), 0u)
      << "the kill was never even noticed — crash path not exercised";
  EXPECT_TRUE(session.events() == base.events)
      << "post-crash event set diverged: replay lost or duplicated updates";
  session.fabric()->shutdown_endpoints();
  for (ServerProc* s : {&s0, &s1}) {
    int status = s->wait_exit();
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  fs::remove_all(dir0);
  fs::remove_all(dir1);
}

// ---- fleet observability: STATS gather + fold, across a crash ---------
//
// From a single client, fleet_telemetry() must return a folded registry
// covering every slot of a live two-process fleet — and the fold must
// be exactly the sum of the per-slot views it gathered: counters and
// gauges sum, histograms merge bucket-exactly.  Run it across a
// SIGKILL + same-port restart so the gather also proves STATS works
// against a recovered server, not just a pristine one.

TEST(FabricFleetTelemetry, FoldedViewEqualsPerSlotSumAfterCrash) {
  const Baseline& base = baseline();
  ASSERT_FALSE(base.events.empty());
  const std::size_t slots = 3;
  std::string dir0 = temp_dir("bgpbh_fabric_fleet_0");
  std::string dir1 = temp_dir("bgpbh_fabric_fleet_1");
  ServerProc s0 = ServerProc::spawn(dir0, 1, 0, /*trace=*/true);
  ServerProc s1 = ServerProc::spawn(dir1, 1, 0, /*trace=*/true);
  ASSERT_TRUE(s0.valid());
  ASSERT_TRUE(s1.valid());
  std::vector<ServerProc*> refs = {&s0, &s1};
  api::SessionConfig config = fabric_session_config(slots, 1, refs);
  // Client-side ring on, threshold 0: every RPC span is recorded, so
  // the stitch pass below has client spans to match server spans with.
  config.trace.enabled = true;
  config.trace.slow_threshold_ns = 0;
  api::AnalysisSession session(config);
  const auto& updates = base.updates;
  const std::size_t checkpoint_at = updates.size() / 3;
  const std::size_t kill_at = updates.size() / 2;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (i == checkpoint_at) ASSERT_TRUE(session.checkpoint_now());
    if (i == kill_at) {
      std::uint16_t port = s0.port;
      s0.kill_hard();
      s0 = ServerProc::spawn(dir0, 1, port, /*trace=*/true);
      ASSERT_TRUE(s0.valid());
    }
    session.push(updates[i], 0);
  }
  session.flush(0);
  session.close(study_config().window_end);
  EXPECT_GT(session.fabric()->reconnects(), 0u);
  EXPECT_TRUE(session.events() == base.events);

  telemetry::FleetTelemetry fleet = session.fabric()->fleet_telemetry();

  // Every slot of the fleet answered, each exactly once.
  std::size_t gathered = 0;
  std::vector<bool> seen(slots, false);
  for (const auto& ep : fleet.endpoints) {
    for (const auto& slot : ep.slots) {
      ASSERT_LT(slot.slot, slots);
      EXPECT_FALSE(seen[slot.slot]) << "slot " << slot.slot << " twice";
      seen[slot.slot] = true;
      ++gathered;
    }
  }
  EXPECT_EQ(gathered, slots);

  // Reference fold: plain summation for counters/gauges, and
  // HistogramSnapshot::merge_from for histograms (itself verified
  // bucket-exact against a single instrument in test_telemetry).
  std::map<std::string, double> summed;
  std::map<std::string, telemetry::HistogramSnapshot> merged;
  for (const auto& ep : fleet.endpoints) {
    for (const auto& slot : ep.slots) {
      for (const auto& m : slot.metrics.metrics) {
        if (m.kind == telemetry::MetricKind::kHistogram) {
          merged[m.name].merge_from(m.hist);
        } else {
          summed[m.name] += m.value;
        }
      }
    }
  }
  for (const auto& [name, total] : summed) {
    const auto* m = fleet.folded.find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_DOUBLE_EQ(m->value, total) << name;
  }
  for (const auto& [name, hist] : merged) {
    const auto* m = fleet.folded.find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_EQ(m->hist.count, hist.count) << name;
    EXPECT_EQ(m->hist.sum, hist.sum) << name;
    if (hist.count > 0) {
      EXPECT_EQ(m->hist.min, hist.min) << name;
      EXPECT_EQ(m->hist.max, hist.max) << name;
    }
    EXPECT_EQ(m->hist.buckets, hist.buckets) << name;
  }

  // The folded view carries the remote pipelines' substance: the
  // servers measured ingest->close latency end-to-end from the stamps
  // the v2 sub-updates carried across the wire.
  const auto* detect = fleet.folded.find("e2e.detect_latency_ns");
  ASSERT_NE(detect, nullptr);
  EXPECT_GT(detect->hist.count, 0u);
  const auto* appends = fleet.folded.find("fabric.server.append_ns");
  ASSERT_NE(appends, nullptr);
  EXPECT_GT(appends->hist.count, 0u);

  // Observability metrics document themselves: every fabric.* and
  // e2e.* metric in the folded view ships non-empty HELP text.
  for (const auto& m : fleet.folded.metrics) {
    if (m.name.rfind("fabric.", 0) == 0 || m.name.rfind("e2e.", 0) == 0) {
      EXPECT_FALSE(m.help.empty()) << m.name;
    }
  }

  // Trace propagation: with both rings on at threshold 0, the newest
  // appends live in the client ring AND the server slot rings under
  // the same trace id, so the stitch pass pairs at least one RPC and
  // attributes its time: client_ns >= server span -> wire_queue_ns is
  // the clamped difference.
  EXPECT_FALSE(fleet.stitched.empty());
  for (const auto& s : fleet.stitched) {
    EXPECT_NE(s.trace_id, 0u);
    EXPECT_FALSE(s.client_label.empty());
    EXPECT_FALSE(s.server_label.empty());
    if (s.client_ns >= s.server_ns) {
      EXPECT_EQ(s.wire_queue_ns, s.client_ns - s.server_ns);
    } else {
      EXPECT_EQ(s.wire_queue_ns, 0u);
    }
  }

  session.fabric()->shutdown_endpoints();
  for (ServerProc* s : {&s0, &s1}) {
    int status = s->wait_exit();
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  fs::remove_all(dir0);
  fs::remove_all(dir1);
}

// ---- rebalance: live migration to a server spawned mid-stream ---------

TEST(FabricRebalance, MidStreamMigrationLosesNothing) {
  const Baseline& base = baseline();
  ASSERT_FALSE(base.events.empty());
  const std::size_t slots = 4;
  std::string dir0 = temp_dir("bgpbh_fabric_reb_0");
  std::string dir1 = temp_dir("bgpbh_fabric_reb_1");
  std::string dir2 = temp_dir("bgpbh_fabric_reb_2");
  ServerProc s0 = ServerProc::spawn(dir0, 1);
  ServerProc s1 = ServerProc::spawn(dir1, 1);
  ASSERT_TRUE(s0.valid());
  ASSERT_TRUE(s1.valid());
  std::vector<ServerProc*> refs = {&s0, &s1};
  api::AnalysisSession session(fabric_session_config(slots, 1, refs));
  const auto& updates = base.updates;
  const std::size_t half = updates.size() / 2;
  for (std::size_t i = 0; i < half; ++i) session.push(updates[i], 0);
  // New capacity arrives mid-stream; move EVERY slot onto it.
  ServerProc s2 = ServerProc::spawn(dir2, 1);
  ASSERT_TRUE(s2.valid());
  FabricRouter* fabric = session.fabric();
  std::size_t target = fabric->add_endpoint("127.0.0.1", s2.port);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    ASSERT_TRUE(fabric->migrate(slot, target))
        << "migration of slot " << slot << " failed";
    EXPECT_EQ(fabric->endpoint_of(slot), target);
  }
  for (std::size_t i = half; i < updates.size(); ++i) {
    session.push(updates[i], 0);
  }
  session.flush(0);
  session.close(study_config().window_end);
  EXPECT_TRUE(session.events() == base.events)
      << "post-migration event set diverged: handoff lost or duplicated "
         "state";
  session.fabric()->shutdown_endpoints();
  for (ServerProc* s : {&s0, &s1, &s2}) {
    int status = s->wait_exit();
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  fs::remove_all(dir0);
  fs::remove_all(dir1);
  fs::remove_all(dir2);
}

}  // namespace
}  // namespace bgpbh::fabric
