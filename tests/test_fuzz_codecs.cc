// Robustness sweeps for the wire codecs: random and mutated inputs must
// never crash, hang, or read out of bounds — they either decode cleanly
// or return nullopt.  (The collectors in the paper parse untrusted
// multi-origin feeds; decoder robustness is a load-bearing property.)
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bgp/mrt.h"
#include "bgp/update.h"
#include "fabric/protocol.h"
#include "flows/ipfix.h"
#include "recovery/checkpoint.h"
#include "routing/collectors.h"
#include "storage/record_codec.h"
#include "telemetry/fleet.h"
#include "util/rng.h"

namespace bgpbh {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform(max_len));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, UpdateBodyDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 512);
    net::BufReader r(bytes);
    auto decoded = bgp::decode_update_body(r);
    if (decoded) {
      // Whatever decodes must re-encode without crashing.
      net::BufWriter w;
      bgp::encode_update_body(*decoded, w);
    }
  }
}

TEST_P(FuzzSeedTest, MrtDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam() ^ 0xF00D);
  for (int i = 0; i < 2000; ++i) {
    auto bytes = random_bytes(rng, 768);
    (void)bgp::mrt::decode_updates(bytes);
    (void)bgp::mrt::decode_table_dump(bytes);
  }
}

TEST_P(FuzzSeedTest, IpfixDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam() ^ 0x1BF1);
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 512);
    (void)flows::decode_message(bytes);
  }
}

TEST_P(FuzzSeedTest, MutatedValidUpdateNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5EED);
  // Start from a valid encoding and flip bytes.
  bgp::UpdateBody body;
  body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  body.announced.push_back(*net::Prefix::parse("2a00:1::1/128"));
  body.withdrawn.push_back(*net::Prefix::parse("20.0.0.0/16"));
  body.as_path = bgp::AsPath::of({3356, 1299, 64500});
  body.next_hop = *net::IpAddr::parse("198.51.100.1");
  body.communities.add(bgp::Community(65535, 666));
  body.communities.add(bgp::LargeCommunity(64500, 666, 0));
  net::BufWriter w;
  bgp::encode_update_body(body, w);
  auto original = w.take();

  for (int i = 0; i < 4000; ++i) {
    auto mutated = original;
    std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    net::BufReader r(mutated);
    (void)bgp::decode_update_body(r);
  }
}

TEST_P(FuzzSeedTest, MutatedValidMrtNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xC0DE);
  bgp::ObservedUpdate u;
  u.time = 1488326400;
  u.peer_ip = *net::IpAddr::parse("198.51.100.7");
  u.peer_asn = 3356;
  u.body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  u.body.as_path = bgp::AsPath::of({3356, 64500});
  u.body.communities.add(bgp::Community(3356, 9999));
  net::BufWriter w;
  bgp::mrt::encode_update(u, w);
  bgp::mrt::encode_update(u, w);
  auto original = w.take();

  for (int i = 0; i < 4000; ++i) {
    auto mutated = original;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    (void)bgp::mrt::decode_updates(mutated);
  }
}

TEST_P(FuzzSeedTest, TruncationSweepUpdate) {
  util::Rng rng(GetParam());
  bgp::UpdateBody body;
  body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  body.as_path = bgp::AsPath::of({100, 200, 300});
  body.next_hop = *net::IpAddr::parse("198.51.100.1");
  body.communities.add(bgp::Community(100, 666));
  net::BufWriter w;
  bgp::encode_update_body(body, w);
  const auto& full = w.data();
  // Every possible truncation point must fail cleanly (or be the full
  // message).
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> t(full.begin(), full.begin() + cut);
    net::BufReader r(t);
    auto decoded = bgp::decode_update_body(r);
    if (cut < full.size()) {
      // Shorter inputs can still parse if they form a degenerate valid
      // body (e.g. empty), but must never equal the original.
      if (decoded) EXPECT_NE(*decoded, body) << "cut=" << cut;
    }
  }
}

// ---- persistent event store record codec (src/storage/) ---------------

core::PeerEvent random_event(util::Rng& rng) {
  core::PeerEvent e;
  e.platform = static_cast<routing::Platform>(rng.uniform(4));
  if (rng.uniform(4) == 0) {
    net::Ipv6Addr::Bytes b;
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
    e.peer.peer_ip = net::IpAddr(net::Ipv6Addr(b));
    e.prefix = net::Prefix(e.peer.peer_ip, 128);
  } else {
    e.peer.peer_ip = net::IpAddr(
        net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())));
    e.prefix = net::Prefix(
        net::IpAddr(net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()))),
        static_cast<std::uint8_t>(rng.uniform(33)));
  }
  e.peer.peer_asn = static_cast<std::uint32_t>(rng.next_u64());
  e.provider.is_ixp = rng.uniform(2) == 1;
  e.provider.asn = static_cast<std::uint32_t>(rng.next_u64());
  e.provider.ixp_id = static_cast<std::uint32_t>(rng.uniform(100));
  e.user = static_cast<std::uint32_t>(rng.next_u64());
  e.kind = static_cast<core::DetectionKind>(rng.uniform(4));
  e.as_distance = static_cast<int>(rng.uniform(10)) - 1;
  e.start = static_cast<util::SimTime>(rng.next_u64() % (1ull << 40)) - 1000;
  e.end = e.start + static_cast<util::SimTime>(rng.uniform(1 << 20));
  e.open = rng.uniform(2) == 1;
  e.explicit_withdrawal = rng.uniform(2) == 1;
  e.started_in_table_dump = rng.uniform(2) == 1;
  for (std::size_t i = rng.uniform(5); i > 0; --i) {
    e.communities.add(bgp::Community(static_cast<std::uint32_t>(rng.next_u64())));
  }
  for (std::size_t i = rng.uniform(3); i > 0; --i) {
    e.communities.add(
        bgp::LargeCommunity(static_cast<std::uint32_t>(rng.next_u64()),
                            static_cast<std::uint32_t>(rng.next_u64()),
                            static_cast<std::uint32_t>(rng.next_u64())));
  }
  return e;
}

TEST_P(FuzzSeedTest, EventRecordRoundTripsRandomEvents) {
  util::Rng rng(GetParam() ^ 0xE7E7);
  for (int i = 0; i < 2000; ++i) {
    core::PeerEvent e = random_event(rng);
    net::BufWriter w;
    storage::encode_record(e, w);
    EXPECT_EQ(w.size(), storage::encoded_record_size(e));
    net::BufReader r(w.data());
    auto decoded = storage::decode_record(r);
    ASSERT_TRUE(decoded.has_value()) << "i=" << i;
    EXPECT_TRUE(*decoded == e) << "i=" << i;
    EXPECT_TRUE(r.at_end());
  }
}

TEST_P(FuzzSeedTest, EventRecordDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam() ^ 0x57A6);
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 512);
    net::BufReader r(bytes);
    // Random input essentially never carries a valid CRC, so decode
    // must reject (and above all never crash or over-read).
    (void)storage::decode_record(r);
  }
}

TEST_P(FuzzSeedTest, MutatedEventRecordStreamNeverCrashesAndCrcRejects) {
  util::Rng rng(GetParam() ^ 0xD15C);
  // A stream of several valid records, including a duplicated one (a
  // crash-retry artifact a reopened log may legitimately contain).
  util::Rng gen(7);
  net::BufWriter w;
  core::PeerEvent dup = random_event(gen);
  storage::encode_record(dup, w);
  storage::encode_record(dup, w);
  for (int i = 0; i < 6; ++i) storage::encode_record(random_event(gen), w);
  auto original = w.take();

  // Unmutated: every record decodes, the duplicate decodes twice.
  {
    net::BufReader r(original);
    std::size_t n = 0;
    while (r.remaining() > 0) {
      auto e = storage::decode_record(r);
      ASSERT_TRUE(e.has_value());
      if (n < 2) EXPECT_TRUE(*e == dup);
      ++n;
    }
    EXPECT_EQ(n, 8u);
  }

  for (int i = 0; i < 4000; ++i) {
    auto mutated = original;
    std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    // Decode records until the first rejection (how the recovery scan
    // consumes a segment): no crash, no over-read, and any record the
    // CRC accepts before the mutation point is byte-identical to the
    // original stream's.
    net::BufReader r(mutated);
    while (r.remaining() > 0) {
      if (!storage::decode_record(r)) break;
    }
  }

  // Single-bit flips specifically: CRC-32 detects all of them — a
  // record whose bytes changed may never decode successfully.
  net::BufWriter one;
  storage::encode_record(dup, one);
  auto single = one.take();
  for (int i = 0; i < 2000; ++i) {
    auto mutated = single;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    net::BufReader r(mutated);
    EXPECT_FALSE(storage::decode_record(r).has_value()) << "i=" << i;
  }
}

TEST_P(FuzzSeedTest, TruncationSweepEventRecord) {
  util::Rng rng(GetParam() ^ 0x7C47);
  core::PeerEvent e = random_event(rng);
  net::BufWriter w;
  storage::encode_record(e, w);
  const auto& full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> t(full.begin(), full.begin() + cut);
    net::BufReader r(t);
    EXPECT_FALSE(storage::decode_record(r).has_value()) << "cut=" << cut;
  }
}

// ---- checkpoint codec (src/recovery/) ---------------------------------

core::OpenEventState random_open_state(util::Rng& rng) {
  core::OpenEventState open;
  core::PeerEvent seed = random_event(rng);
  open.peer = seed.peer;
  open.prefix = seed.prefix;
  open.start = seed.start;
  open.platform = seed.platform;
  open.from_table_dump = rng.uniform(2) == 1;
  for (std::size_t i = rng.uniform(4); i > 0; --i) {
    core::OpenDetection det;
    det.provider.is_ixp = rng.uniform(2) == 1;
    det.provider.asn = static_cast<std::uint32_t>(rng.next_u64());
    det.provider.ixp_id = static_cast<std::uint32_t>(rng.uniform(100));
    det.user = static_cast<std::uint32_t>(rng.next_u64());
    det.kind = static_cast<core::DetectionKind>(rng.uniform(4));
    det.as_distance = static_cast<int>(rng.uniform(10)) - 1;
    open.detections.push_back(det);
  }
  open.communities = seed.communities;
  return open;
}

recovery::Checkpoint random_checkpoint(util::Rng& rng) {
  recovery::Checkpoint cp;
  cp.seq = rng.next_u64() % 100000 + 1;
  cp.num_shards = static_cast<std::uint32_t>(rng.uniform(4)) + 1;
  cp.num_producers = static_cast<std::uint32_t>(rng.uniform(3)) + 1;
  cp.includes_table_dump = rng.uniform(2) == 1;
  cp.position.seq = rng.next_u64() % 10000;
  cp.position.records = rng.next_u64() % 100000;
  for (std::uint32_t s = 0; s < cp.num_shards; ++s) {
    recovery::ShardCheckpoint shard;
    for (std::uint32_t p = 0; p < cp.num_producers; ++p) {
      shard.watermarks.push_back(rng.next_u64() % (1ull << 40));
    }
    for (std::size_t i = rng.uniform(6); i > 0; --i) {
      shard.open_state.push_back(random_open_state(rng));
    }
    cp.shards.push_back(std::move(shard));
  }
  auto random_prefix_event = [&rng] {
    core::PrefixEvent pe;
    core::PeerEvent seed = random_event(rng);
    pe.prefix = seed.prefix;
    pe.start = seed.start;
    pe.end = seed.end;
    pe.providers.insert(seed.provider);
    pe.users.insert(seed.user);
    pe.num_peer_events = rng.uniform(16);
    pe.includes_table_dump_start = rng.uniform(2) == 1;
    return pe;
  };
  for (std::size_t i = rng.uniform(4); i > 0; --i) {
    cp.correlated.push_back(random_prefix_event());
  }
  for (std::size_t i = rng.uniform(4); i > 0; --i) {
    cp.grouped.push_back(random_prefix_event());
  }
  return cp;
}

TEST_P(FuzzSeedTest, CheckpointRoundTripsRandomCheckpoints) {
  util::Rng rng(GetParam() ^ 0xC4EC);
  for (int i = 0; i < 300; ++i) {
    recovery::Checkpoint cp = random_checkpoint(rng);
    auto file = recovery::encode_checkpoint_file(cp);
    auto decoded = recovery::decode_checkpoint_file(file);
    ASSERT_TRUE(decoded.has_value()) << "i=" << i;
    EXPECT_TRUE(*decoded == cp) << "i=" << i;
  }
}

TEST_P(FuzzSeedTest, CheckpointDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam() ^ 0xCF02);
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 1024);
    (void)recovery::decode_checkpoint_file(bytes);
  }
}

TEST_P(FuzzSeedTest, CheckpointBitFlipsAlwaysRejected) {
  util::Rng rng(GetParam() ^ 0xB17F);
  util::Rng gen(11);
  auto file = recovery::encode_checkpoint_file(random_checkpoint(gen));
  // The whole-file CRC covers the payload; the framing fields are
  // validated structurally — ANY single-bit flip must reject.
  for (int i = 0; i < 3000; ++i) {
    auto mutated = file;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    EXPECT_FALSE(recovery::decode_checkpoint_file(mutated).has_value())
        << "i=" << i;
  }
  // Multi-bit scatter: never crashes, never mis-loads as equal-but-
  // different (decode success would require the CRC to collide AND the
  // payload to stay structurally valid; reject is the only outcome we
  // assert, crash-freedom the property we sweep).
  for (int i = 0; i < 2000; ++i) {
    auto mutated = file;
    std::size_t flips = 2 + rng.uniform(6);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    (void)recovery::decode_checkpoint_file(mutated);
  }
}

TEST_P(FuzzSeedTest, CheckpointTruncationSweepNeverLoadsTorn) {
  util::Rng gen(GetParam());
  auto cp = random_checkpoint(gen);
  auto full = recovery::encode_checkpoint_file(cp);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::span<const std::uint8_t> t(full.data(), cut);
    EXPECT_FALSE(recovery::decode_checkpoint_file(t).has_value())
        << "cut=" << cut;
  }
}

TEST_P(FuzzSeedTest, TornNewestCheckpointFileFallsBackToPreviousOnDisk) {
  namespace fs = std::filesystem;
  util::Rng rng(GetParam() ^ 0xFA11);
  std::string dir =
      (fs::temp_directory_path() /
       ("bgpbh_fuzz_ckpt_" + std::to_string(GetParam()))).string();
  fs::remove_all(dir);
  util::Rng gen(5);
  recovery::Checkpoint cp1 = random_checkpoint(gen);
  recovery::Checkpoint cp2 = random_checkpoint(gen);
  cp1.seq = 1;
  cp2.seq = 2;
  ASSERT_TRUE(recovery::write_checkpoint(dir, cp1));
  auto cp2_bytes = recovery::encode_checkpoint_file(cp2);
  fs::path newest = fs::path(dir) / recovery::checkpoint_file_name(2);
  // Sweep torn-write lengths of the newest file (a crash landing mid-
  // write past the rename barrier): the loader must fall back to cp1
  // for every cut, and never return a mangled cp2.
  for (int i = 0; i < 50; ++i) {
    std::size_t cut = rng.uniform(cp2_bytes.size());
    std::ofstream f(newest, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(cp2_bytes.data()),
            static_cast<std::streamsize>(cut));
    f.close();
    auto loaded = recovery::load_latest_checkpoint(dir);
    ASSERT_TRUE(loaded.has_value()) << "cut=" << cut;
    EXPECT_TRUE(loaded->checkpoint == cp1) << "cut=" << cut;
    EXPECT_EQ(loaded->skipped_corrupt, 1u) << "cut=" << cut;
  }
  // The intact file, for contrast, wins.
  {
    std::ofstream f(newest, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(cp2_bytes.data()),
            static_cast<std::streamsize>(cp2_bytes.size()));
  }
  auto loaded = recovery::load_latest_checkpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->checkpoint == cp2);
  fs::remove_all(dir);
}

// ---- fleet telemetry codecs (src/telemetry/fleet.h) -------------------
// These ride inside CRC-framed fabric frames, so the decoders validate
// structure only — the sweeps below prove they do it without crashing
// or over-reading on arbitrary input.

std::string random_label(util::Rng& rng, std::size_t max_len) {
  std::string s(1 + rng.uniform(max_len), '\0');
  for (auto& c : s) {
    c = static_cast<char>('a' + rng.uniform(26));
  }
  return s;
}

telemetry::MetricsRegistry::Snapshot random_fleet_snapshot(util::Rng& rng) {
  telemetry::MetricsRegistry::Snapshot snap;
  const std::size_t n = 1 + rng.uniform(8);
  for (std::size_t i = 0; i < n; ++i) {
    telemetry::MetricsRegistry::Metric m;
    m.name = random_label(rng, 24) + "." + std::to_string(i);
    m.kind = static_cast<telemetry::MetricKind>(rng.uniform(3));
    if (rng.uniform(3) != 0) m.help = random_label(rng, 40);
    // Values come from integer draws: bit-exact through the u64
    // encoding and never NaN (NaN would break the == comparisons).
    m.value = static_cast<double>(rng.next_u64() % (1ull << 40));
    for (std::size_t s = rng.uniform(4); s > 0; --s) {
      m.per_shard.emplace_back(rng.uniform(64),
                               static_cast<double>(rng.uniform(1 << 20)));
    }
    if (m.kind == telemetry::MetricKind::kHistogram) {
      m.hist.count = rng.uniform(1 << 16);
      m.hist.sum = rng.next_u64() % (1ull << 40);
      m.hist.min = rng.uniform(1 << 10);
      m.hist.max = m.hist.min + rng.uniform(1 << 10);
      // Decoder contract: strictly increasing uppers, non-decreasing
      // cumulatives (cumulative totals need NOT equal count — live
      // registries fold racy relaxed atomics).
      std::uint64_t upper = 0, cumulative = 0;
      for (std::size_t b = rng.uniform(6); b > 0; --b) {
        upper += 1 + rng.uniform(1 << 12);
        cumulative += rng.uniform(1 << 10);
        m.hist.buckets.emplace_back(upper, cumulative);
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

std::vector<telemetry::FleetSpan> random_fleet_spans(util::Rng& rng) {
  std::vector<telemetry::FleetSpan> spans(rng.uniform(6));
  for (auto& s : spans) {
    s.label = random_label(rng, 32);
    s.shard = static_cast<std::uint32_t>(rng.uniform(64));
    s.duration_ns = rng.next_u64() % (1ull << 40);
    s.seq = rng.next_u64() % (1ull << 30);
    s.trace_id = rng.next_u64();
  }
  return spans;
}

void expect_snapshot_eq(const telemetry::MetricsRegistry::Snapshot& a,
                        const telemetry::MetricsRegistry::Snapshot& b) {
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    const auto& ma = a.metrics[i];
    const auto& mb = b.metrics[i];
    EXPECT_EQ(ma.name, mb.name);
    EXPECT_EQ(ma.kind, mb.kind);
    EXPECT_EQ(ma.help, mb.help);
    EXPECT_EQ(ma.value, mb.value);
    EXPECT_EQ(ma.per_shard, mb.per_shard);
    EXPECT_EQ(ma.hist.count, mb.hist.count);
    EXPECT_EQ(ma.hist.sum, mb.hist.sum);
    EXPECT_EQ(ma.hist.min, mb.hist.min);
    EXPECT_EQ(ma.hist.max, mb.hist.max);
    EXPECT_EQ(ma.hist.buckets, mb.hist.buckets);
  }
}

TEST_P(FuzzSeedTest, FleetSlotTelemetryRoundTripsRandomInstances) {
  util::Rng rng(GetParam() ^ 0xF1EE);
  for (int i = 0; i < 300; ++i) {
    telemetry::SlotTelemetry slot;
    slot.slot = static_cast<std::uint32_t>(rng.uniform(1 << 16));
    slot.metrics = random_fleet_snapshot(rng);
    slot.spans = random_fleet_spans(rng);
    net::BufWriter w;
    telemetry::encode_slot_telemetry(slot, w);
    net::BufReader r(w.data());
    auto decoded = telemetry::decode_slot_telemetry(r);
    ASSERT_TRUE(decoded.has_value()) << "i=" << i;
    EXPECT_TRUE(r.at_end()) << "i=" << i;
    EXPECT_EQ(decoded->slot, slot.slot);
    expect_snapshot_eq(slot.metrics, decoded->metrics);
    EXPECT_EQ(decoded->spans, slot.spans);
  }
}

TEST_P(FuzzSeedTest, FleetCodecsSurviveRandomInput) {
  util::Rng rng(GetParam() ^ 0xF1E7);
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 768);
    {
      net::BufReader r(bytes);
      (void)telemetry::decode_snapshot(r);
    }
    {
      net::BufReader r(bytes);
      (void)telemetry::decode_spans(r);
    }
    {
      net::BufReader r(bytes);
      (void)telemetry::decode_slot_telemetry(r);
    }
  }
}

TEST_P(FuzzSeedTest, MutatedFleetTelemetryNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xF11B);
  util::Rng gen(13);
  telemetry::SlotTelemetry slot;
  slot.slot = 7;
  slot.metrics = random_fleet_snapshot(gen);
  slot.spans = random_fleet_spans(gen);
  net::BufWriter w;
  telemetry::encode_slot_telemetry(slot, w);
  auto original = w.take();

  // The fabric frame's CRC guards integrity; inside the frame the
  // decoder only promises structural sanity.  Whatever a mutation
  // still decodes into must itself re-encode without crashing.
  for (int i = 0; i < 4000; ++i) {
    auto mutated = original;
    std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    net::BufReader r(mutated);
    auto decoded = telemetry::decode_slot_telemetry(r);
    if (decoded) {
      net::BufWriter out;
      telemetry::encode_slot_telemetry(*decoded, out);
    }
  }
}

TEST_P(FuzzSeedTest, TruncationSweepFleetTelemetry) {
  util::Rng gen(GetParam() ^ 0x7F1E);
  telemetry::SlotTelemetry slot;
  slot.slot = 3;
  slot.metrics = random_fleet_snapshot(gen);
  slot.spans = random_fleet_spans(gen);
  net::BufWriter w;
  telemetry::encode_slot_telemetry(slot, w);
  const auto& full = w.data();
  // Counts lead every section, so any strict prefix starves a read
  // and must reject cleanly — never crash, never decode torn.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> t(full.begin(), full.begin() + cut);
    net::BufReader r(t);
    EXPECT_FALSE(telemetry::decode_slot_telemetry(r).has_value())
        << "cut=" << cut;
  }
}

// ---- fabric sub-update codec: the v2 ingest trailer -------------------

routing::FeedUpdate stamped_sub_update() {
  routing::FeedUpdate fu;
  fu.platform = routing::Platform::kRouteViews;
  fu.update.time = 1488326400;
  fu.update.peer_ip = *net::IpAddr::parse("198.51.100.9");
  fu.update.peer_asn = 1299;
  fu.update.body.announced.push_back(*net::Prefix::parse("130.149.7.0/24"));
  fu.update.body.as_path = bgp::AsPath::of({1299, 64500});
  fu.update.body.next_hop = *net::IpAddr::parse("198.51.100.1");
  fu.update.body.communities.add(bgp::Community(65535, 666));
  fu.ingest_ns = 0x0123456789ABCDEFull;
  return fu;
}

TEST_P(FuzzSeedTest, SubUpdateV2RoundTripsIngestStampAndV1Truncates) {
  routing::FeedUpdate fu = stamped_sub_update();
  net::BufWriter w;
  fabric::encode_sub_update(fu, w);
  {
    // v2 lane: the trailer survives the wire.
    net::BufReader r(w.data());
    auto decoded = fabric::decode_sub_update(r, 2);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(r.at_end());
    EXPECT_TRUE(*decoded == fu);
    EXPECT_EQ(decoded->ingest_ns, fu.ingest_ns);
  }
  {
    // v1 lane: the sender truncates the trailer; a v1 decode of the
    // truncated bytes consumes everything and leaves the stamp unset.
    auto bytes = w.take();
    bytes.resize(bytes.size() - fabric::kSubUpdateIngestTrailerBytes);
    net::BufReader r(bytes);
    auto decoded = fabric::decode_sub_update(r, 1);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(r.at_end());
    EXPECT_TRUE(*decoded == fu);  // ingest_ns excluded from equality
    EXPECT_EQ(decoded->ingest_ns, 0u);
  }
}

TEST_P(FuzzSeedTest, SubUpdateDecoderSurvivesRandomInputBothVersions) {
  util::Rng rng(GetParam() ^ 0x5B02);
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 512);
    {
      net::BufReader r(bytes);
      (void)fabric::decode_sub_update(r, 1);
    }
    {
      net::BufReader r(bytes);
      (void)fabric::decode_sub_update(r, 2);
    }
  }
}

TEST_P(FuzzSeedTest, TruncationSweepSubUpdateV2) {
  routing::FeedUpdate fu = stamped_sub_update();
  net::BufWriter w;
  fabric::encode_sub_update(fu, w);
  const auto& full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> t(full.begin(), full.begin() + cut);
    net::BufReader r(t);
    auto decoded = fabric::decode_sub_update(r, 2);
    // A shorter input may still parse as a degenerate sub-update, but
    // never as the original (the trailer alone guarantees that for the
    // last 8 cuts).
    if (decoded) {
      EXPECT_FALSE(*decoded == fu && decoded->ingest_ns == fu.ingest_ns)
          << "cut=" << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace bgpbh
