// Robustness sweeps for the wire codecs: random and mutated inputs must
// never crash, hang, or read out of bounds — they either decode cleanly
// or return nullopt.  (The collectors in the paper parse untrusted
// multi-origin feeds; decoder robustness is a load-bearing property.)
#include <gtest/gtest.h>

#include "bgp/mrt.h"
#include "bgp/update.h"
#include "flows/ipfix.h"
#include "util/rng.h"

namespace bgpbh {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform(max_len));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, UpdateBodyDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 512);
    net::BufReader r(bytes);
    auto decoded = bgp::decode_update_body(r);
    if (decoded) {
      // Whatever decodes must re-encode without crashing.
      net::BufWriter w;
      bgp::encode_update_body(*decoded, w);
    }
  }
}

TEST_P(FuzzSeedTest, MrtDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam() ^ 0xF00D);
  for (int i = 0; i < 2000; ++i) {
    auto bytes = random_bytes(rng, 768);
    (void)bgp::mrt::decode_updates(bytes);
    (void)bgp::mrt::decode_table_dump(bytes);
  }
}

TEST_P(FuzzSeedTest, IpfixDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam() ^ 0x1BF1);
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 512);
    (void)flows::decode_message(bytes);
  }
}

TEST_P(FuzzSeedTest, MutatedValidUpdateNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5EED);
  // Start from a valid encoding and flip bytes.
  bgp::UpdateBody body;
  body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  body.announced.push_back(*net::Prefix::parse("2a00:1::1/128"));
  body.withdrawn.push_back(*net::Prefix::parse("20.0.0.0/16"));
  body.as_path = bgp::AsPath::of({3356, 1299, 64500});
  body.next_hop = *net::IpAddr::parse("198.51.100.1");
  body.communities.add(bgp::Community(65535, 666));
  body.communities.add(bgp::LargeCommunity(64500, 666, 0));
  net::BufWriter w;
  bgp::encode_update_body(body, w);
  auto original = w.take();

  for (int i = 0; i < 4000; ++i) {
    auto mutated = original;
    std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    net::BufReader r(mutated);
    (void)bgp::decode_update_body(r);
  }
}

TEST_P(FuzzSeedTest, MutatedValidMrtNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xC0DE);
  bgp::ObservedUpdate u;
  u.time = 1488326400;
  u.peer_ip = *net::IpAddr::parse("198.51.100.7");
  u.peer_asn = 3356;
  u.body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  u.body.as_path = bgp::AsPath::of({3356, 64500});
  u.body.communities.add(bgp::Community(3356, 9999));
  net::BufWriter w;
  bgp::mrt::encode_update(u, w);
  bgp::mrt::encode_update(u, w);
  auto original = w.take();

  for (int i = 0; i < 4000; ++i) {
    auto mutated = original;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    (void)bgp::mrt::decode_updates(mutated);
  }
}

TEST_P(FuzzSeedTest, TruncationSweepUpdate) {
  util::Rng rng(GetParam());
  bgp::UpdateBody body;
  body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  body.as_path = bgp::AsPath::of({100, 200, 300});
  body.next_hop = *net::IpAddr::parse("198.51.100.1");
  body.communities.add(bgp::Community(100, 666));
  net::BufWriter w;
  bgp::encode_update_body(body, w);
  const auto& full = w.data();
  // Every possible truncation point must fail cleanly (or be the full
  // message).
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> t(full.begin(), full.begin() + cut);
    net::BufReader r(t);
    auto decoded = bgp::decode_update_body(r);
    if (cut < full.size()) {
      // Shorter inputs can still parse if they form a degenerate valid
      // body (e.g. empty), but must never equal the original.
      if (decoded) EXPECT_NE(*decoded, body) << "cut=" << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace bgpbh
