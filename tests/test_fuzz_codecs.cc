// Robustness sweeps for the wire codecs: random and mutated inputs must
// never crash, hang, or read out of bounds — they either decode cleanly
// or return nullopt.  (The collectors in the paper parse untrusted
// multi-origin feeds; decoder robustness is a load-bearing property.)
#include <gtest/gtest.h>

#include "bgp/mrt.h"
#include "bgp/update.h"
#include "flows/ipfix.h"
#include "storage/record_codec.h"
#include "util/rng.h"

namespace bgpbh {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform(max_len));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, UpdateBodyDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 512);
    net::BufReader r(bytes);
    auto decoded = bgp::decode_update_body(r);
    if (decoded) {
      // Whatever decodes must re-encode without crashing.
      net::BufWriter w;
      bgp::encode_update_body(*decoded, w);
    }
  }
}

TEST_P(FuzzSeedTest, MrtDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam() ^ 0xF00D);
  for (int i = 0; i < 2000; ++i) {
    auto bytes = random_bytes(rng, 768);
    (void)bgp::mrt::decode_updates(bytes);
    (void)bgp::mrt::decode_table_dump(bytes);
  }
}

TEST_P(FuzzSeedTest, IpfixDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam() ^ 0x1BF1);
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 512);
    (void)flows::decode_message(bytes);
  }
}

TEST_P(FuzzSeedTest, MutatedValidUpdateNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5EED);
  // Start from a valid encoding and flip bytes.
  bgp::UpdateBody body;
  body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  body.announced.push_back(*net::Prefix::parse("2a00:1::1/128"));
  body.withdrawn.push_back(*net::Prefix::parse("20.0.0.0/16"));
  body.as_path = bgp::AsPath::of({3356, 1299, 64500});
  body.next_hop = *net::IpAddr::parse("198.51.100.1");
  body.communities.add(bgp::Community(65535, 666));
  body.communities.add(bgp::LargeCommunity(64500, 666, 0));
  net::BufWriter w;
  bgp::encode_update_body(body, w);
  auto original = w.take();

  for (int i = 0; i < 4000; ++i) {
    auto mutated = original;
    std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    net::BufReader r(mutated);
    (void)bgp::decode_update_body(r);
  }
}

TEST_P(FuzzSeedTest, MutatedValidMrtNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xC0DE);
  bgp::ObservedUpdate u;
  u.time = 1488326400;
  u.peer_ip = *net::IpAddr::parse("198.51.100.7");
  u.peer_asn = 3356;
  u.body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  u.body.as_path = bgp::AsPath::of({3356, 64500});
  u.body.communities.add(bgp::Community(3356, 9999));
  net::BufWriter w;
  bgp::mrt::encode_update(u, w);
  bgp::mrt::encode_update(u, w);
  auto original = w.take();

  for (int i = 0; i < 4000; ++i) {
    auto mutated = original;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    (void)bgp::mrt::decode_updates(mutated);
  }
}

TEST_P(FuzzSeedTest, TruncationSweepUpdate) {
  util::Rng rng(GetParam());
  bgp::UpdateBody body;
  body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  body.as_path = bgp::AsPath::of({100, 200, 300});
  body.next_hop = *net::IpAddr::parse("198.51.100.1");
  body.communities.add(bgp::Community(100, 666));
  net::BufWriter w;
  bgp::encode_update_body(body, w);
  const auto& full = w.data();
  // Every possible truncation point must fail cleanly (or be the full
  // message).
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> t(full.begin(), full.begin() + cut);
    net::BufReader r(t);
    auto decoded = bgp::decode_update_body(r);
    if (cut < full.size()) {
      // Shorter inputs can still parse if they form a degenerate valid
      // body (e.g. empty), but must never equal the original.
      if (decoded) EXPECT_NE(*decoded, body) << "cut=" << cut;
    }
  }
}

// ---- persistent event store record codec (src/storage/) ---------------

core::PeerEvent random_event(util::Rng& rng) {
  core::PeerEvent e;
  e.platform = static_cast<routing::Platform>(rng.uniform(4));
  if (rng.uniform(4) == 0) {
    net::Ipv6Addr::Bytes b;
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
    e.peer.peer_ip = net::IpAddr(net::Ipv6Addr(b));
    e.prefix = net::Prefix(e.peer.peer_ip, 128);
  } else {
    e.peer.peer_ip = net::IpAddr(
        net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())));
    e.prefix = net::Prefix(
        net::IpAddr(net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()))),
        static_cast<std::uint8_t>(rng.uniform(33)));
  }
  e.peer.peer_asn = static_cast<std::uint32_t>(rng.next_u64());
  e.provider.is_ixp = rng.uniform(2) == 1;
  e.provider.asn = static_cast<std::uint32_t>(rng.next_u64());
  e.provider.ixp_id = static_cast<std::uint32_t>(rng.uniform(100));
  e.user = static_cast<std::uint32_t>(rng.next_u64());
  e.kind = static_cast<core::DetectionKind>(rng.uniform(4));
  e.as_distance = static_cast<int>(rng.uniform(10)) - 1;
  e.start = static_cast<util::SimTime>(rng.next_u64() % (1ull << 40)) - 1000;
  e.end = e.start + static_cast<util::SimTime>(rng.uniform(1 << 20));
  e.open = rng.uniform(2) == 1;
  e.explicit_withdrawal = rng.uniform(2) == 1;
  e.started_in_table_dump = rng.uniform(2) == 1;
  for (std::size_t i = rng.uniform(5); i > 0; --i) {
    e.communities.add(bgp::Community(static_cast<std::uint32_t>(rng.next_u64())));
  }
  for (std::size_t i = rng.uniform(3); i > 0; --i) {
    e.communities.add(
        bgp::LargeCommunity(static_cast<std::uint32_t>(rng.next_u64()),
                            static_cast<std::uint32_t>(rng.next_u64()),
                            static_cast<std::uint32_t>(rng.next_u64())));
  }
  return e;
}

TEST_P(FuzzSeedTest, EventRecordRoundTripsRandomEvents) {
  util::Rng rng(GetParam() ^ 0xE7E7);
  for (int i = 0; i < 2000; ++i) {
    core::PeerEvent e = random_event(rng);
    net::BufWriter w;
    storage::encode_record(e, w);
    EXPECT_EQ(w.size(), storage::encoded_record_size(e));
    net::BufReader r(w.data());
    auto decoded = storage::decode_record(r);
    ASSERT_TRUE(decoded.has_value()) << "i=" << i;
    EXPECT_TRUE(*decoded == e) << "i=" << i;
    EXPECT_TRUE(r.at_end());
  }
}

TEST_P(FuzzSeedTest, EventRecordDecoderSurvivesRandomInput) {
  util::Rng rng(GetParam() ^ 0x57A6);
  for (int i = 0; i < 3000; ++i) {
    auto bytes = random_bytes(rng, 512);
    net::BufReader r(bytes);
    // Random input essentially never carries a valid CRC, so decode
    // must reject (and above all never crash or over-read).
    (void)storage::decode_record(r);
  }
}

TEST_P(FuzzSeedTest, MutatedEventRecordStreamNeverCrashesAndCrcRejects) {
  util::Rng rng(GetParam() ^ 0xD15C);
  // A stream of several valid records, including a duplicated one (a
  // crash-retry artifact a reopened log may legitimately contain).
  util::Rng gen(7);
  net::BufWriter w;
  core::PeerEvent dup = random_event(gen);
  storage::encode_record(dup, w);
  storage::encode_record(dup, w);
  for (int i = 0; i < 6; ++i) storage::encode_record(random_event(gen), w);
  auto original = w.take();

  // Unmutated: every record decodes, the duplicate decodes twice.
  {
    net::BufReader r(original);
    std::size_t n = 0;
    while (r.remaining() > 0) {
      auto e = storage::decode_record(r);
      ASSERT_TRUE(e.has_value());
      if (n < 2) EXPECT_TRUE(*e == dup);
      ++n;
    }
    EXPECT_EQ(n, 8u);
  }

  for (int i = 0; i < 4000; ++i) {
    auto mutated = original;
    std::size_t flips = 1 + rng.uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    // Decode records until the first rejection (how the recovery scan
    // consumes a segment): no crash, no over-read, and any record the
    // CRC accepts before the mutation point is byte-identical to the
    // original stream's.
    net::BufReader r(mutated);
    while (r.remaining() > 0) {
      if (!storage::decode_record(r)) break;
    }
  }

  // Single-bit flips specifically: CRC-32 detects all of them — a
  // record whose bytes changed may never decode successfully.
  net::BufWriter one;
  storage::encode_record(dup, one);
  auto single = one.take();
  for (int i = 0; i < 2000; ++i) {
    auto mutated = single;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    net::BufReader r(mutated);
    EXPECT_FALSE(storage::decode_record(r).has_value()) << "i=" << i;
  }
}

TEST_P(FuzzSeedTest, TruncationSweepEventRecord) {
  util::Rng rng(GetParam() ^ 0x7C47);
  core::PeerEvent e = random_event(rng);
  net::BufWriter w;
  storage::encode_record(e, w);
  const auto& full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> t(full.begin(), full.begin() + cut);
    net::BufReader r(t);
    EXPECT_FALSE(storage::decode_record(r).has_value()) << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace bgpbh
