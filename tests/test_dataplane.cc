#include "dataplane/efficacy.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpbh::dataplane {
namespace {

struct Env {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::CustomerCones cones{graph};
  routing::PropagationEngine engine{graph, cones, 99};
  ForwardingSim forwarding{graph, engine, 123};
  TracerouteEngine traceroute{forwarding};
  ProbeSelector probes{graph, cones};

  workload::Episode sample_episode() {
    for (const auto& node : graph.nodes()) {
      if (node.tier != topology::Tier::kStub) continue;
      for (bgp::Asn p : node.providers) {
        const topology::AsNode* pn = graph.find(p);
        if (pn && pn->blackhole.offers_blackholing &&
            pn->blackhole.auth == topology::BlackholeAuth::kCustomerCone) {
          workload::Episode e;
          e.user = node.asn;
          e.prefix = net::Prefix(
              net::Ipv4Addr(node.v4_block.addr().v4().value() + 0x0301), 32);
          e.providers = {p};
          e.start = 100;
          e.end = 100 + util::kHour;
          e.on_periods.push_back(workload::OnPeriod{e.start, e.end, true});
          return e;
        }
      }
    }
    ADD_FAILURE() << "no eligible episode";
    return {};
  }
};

Env& env() {
  static Env e;
  return e;
}

TEST(ActiveBlackholesTest, InstallRemoveDrop) {
  ActiveBlackholes active;
  auto prefix = *net::Prefix::parse("20.0.1.1/32");
  active.install(200, prefix);
  EXPECT_TRUE(active.drops(200, *net::IpAddr::parse("20.0.1.1")));
  EXPECT_FALSE(active.drops(200, *net::IpAddr::parse("20.0.1.2")));
  EXPECT_FALSE(active.drops(300, *net::IpAddr::parse("20.0.1.1")));
  EXPECT_EQ(active.total_routes(), 1u);
  active.remove(200, prefix);
  EXPECT_FALSE(active.drops(200, *net::IpAddr::parse("20.0.1.1")));
}

TEST(ActiveBlackholesTest, CoveringPrefixDrops) {
  ActiveBlackholes active;
  active.install(200, *net::Prefix::parse("20.0.0.0/24"));
  EXPECT_TRUE(active.drops(200, *net::IpAddr::parse("20.0.0.77")));
  EXPECT_FALSE(active.drops(200, *net::IpAddr::parse("20.0.1.77")));
}

TEST(ActiveBlackholesTest, InstallFromPropagation) {
  auto episode = env().sample_episode();
  auto prop = env().engine.propagate_blackhole(episode.announcement(episode.start));
  ASSERT_FALSE(prop.activated_providers.empty());
  ActiveBlackholes active;
  active.install_from(prop, episode.prefix, env().engine);
  EXPECT_TRUE(active.drops(prop.activated_providers[0], episode.prefix.addr()));
  active.remove_from(prop, episode.prefix, env().engine);
  EXPECT_EQ(active.total_routes(), 0u);
}

TEST(Forwarding, RoutersPerAsStable) {
  for (const auto& node : env().graph.nodes()) {
    std::size_t n = env().forwarding.routers_in_as(node.asn);
    EXPECT_GE(n, 2u);
    EXPECT_LE(n, 5u);
    EXPECT_EQ(n, env().forwarding.routers_in_as(node.asn));
  }
}

TEST(Forwarding, AsPathEndsAtOrigin) {
  const auto& nodes = env().graph.nodes();
  auto dst = nodes[1200].originated_v4.front().addr();
  auto path = env().forwarding.as_path_to(nodes[50].asn, dst);
  ASSERT_TRUE(path);
  EXPECT_EQ(path->first(), nodes[50].asn);
  EXPECT_EQ(path->origin(), nodes[1200].asn);
}

TEST(Forwarding, DropPointOnPath) {
  auto episode = env().sample_episode();
  auto prop = env().engine.propagate_blackhole(episode.announcement(episode.start));
  ActiveBlackholes active;
  active.install_from(prop, episode.prefix, env().engine);
  // Probe from some other stub AS.
  const topology::AsNode* src = nullptr;
  for (const auto& node : env().graph.nodes()) {
    if (node.tier == topology::Tier::kStub && node.asn != episode.user) {
      src = &node;
      break;
    }
  }
  ASSERT_NE(src, nullptr);
  auto drop = env().forwarding.drop_point(src->asn, episode.prefix.addr(), active);
  if (drop) {
    auto path = env().forwarding.as_path_to(src->asn, episode.prefix.addr());
    ASSERT_TRUE(path);
    EXPECT_TRUE(path->contains(*drop));
  }
}

TEST(Traceroute, ReachesDestinationWithoutBlackholes) {
  ActiveBlackholes none;
  const auto& nodes = env().graph.nodes();
  auto dst = nodes[800].originated_v4.front().addr();
  auto result = env().traceroute.trace(nodes[10].asn, dst, none);
  EXPECT_TRUE(result.reached_destination);
  EXPECT_FALSE(result.dropped_at.has_value());
  EXPECT_GT(result.ip_path_length(), 0u);
  EXPECT_GE(result.ip_path_length(), result.as_path_length());
}

TEST(Traceroute, BlackholeShortensTrace) {
  auto episode = env().sample_episode();
  auto prop = env().engine.propagate_blackhole(episode.announcement(episode.start));
  ActiveBlackholes active;
  active.install_from(prop, episode.prefix, env().engine);

  // Probe from the provider's OTHER customers: traffic must die at the
  // provider's ingress.
  bgp::Asn provider = episode.providers[0];
  const topology::AsNode* pn = env().graph.find(provider);
  for (bgp::Asn cust : pn->customers) {
    if (cust == episode.user) continue;
    ActiveBlackholes none;
    auto during = env().traceroute.trace(cust, episode.prefix.addr(), active);
    auto after = env().traceroute.trace(cust, episode.prefix.addr(), none);
    if (!after.reached_destination) continue;
    if (during.dropped_at) {
      EXPECT_LT(during.ip_path_length(), after.ip_path_length());
      EXPECT_FALSE(during.reached_destination);
    }
    return;
  }
  GTEST_SKIP() << "provider has no second customer";
}

TEST(Traceroute, LastRespondingInterfaceSemantics) {
  TracerouteResult r;
  r.hops = {{net::IpAddr(net::Ipv4Addr(1)), 100, true},
            {net::IpAddr(net::Ipv4Addr(2)), 100, false},
            {net::IpAddr(net::Ipv4Addr(3)), 200, true},
            {net::IpAddr(net::Ipv4Addr(4)), 300, false}};
  EXPECT_EQ(r.ip_path_length(), 3u);  // last responding is hop 3
  EXPECT_EQ(r.as_path_length(), 2u);  // AS 100, AS 200
}

TEST(Probes, GroupsAreCorrect) {
  auto episode = env().sample_episode();
  // Downstream cone candidates must be in the user's cone.
  for (bgp::Asn asn :
       env().probes.candidates(episode.user, ProbeGroup::kDownstreamCone)) {
    EXPECT_TRUE(env().cones.in_cone(episode.user, asn));
    EXPECT_NE(asn, episode.user);
  }
  // Upstream candidates have the user in their cone.
  for (bgp::Asn asn :
       env().probes.candidates(episode.user, ProbeGroup::kUpstreamCone)) {
    EXPECT_TRUE(env().cones.in_cone(asn, episode.user));
  }
  auto inside = env().probes.candidates(episode.user, ProbeGroup::kInsideUser);
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_EQ(inside[0], episode.user);
}

TEST(Probes, SelectionFillsAllGroups) {
  util::Rng rng(7);
  auto episode = env().sample_episode();
  auto selected = env().probes.select(episode.user, rng, 4);
  EXPECT_EQ(selected.size(), 16u);  // 4 groups x 4 probes (§10)
  std::map<ProbeGroup, std::size_t> per_group;
  for (const auto& p : selected) per_group[p.group] += 1;
  EXPECT_EQ(per_group.size(), 4u);
  for (auto& [g, n] : per_group) EXPECT_EQ(n, 4u);
}

TEST(Efficacy, CampaignShowsBlackholingWorks) {
  EfficacyMeasurer measurer(env().graph, env().cones, env().engine, 555);
  // Measure a batch of synthetic episodes.
  // The headline-efficacy case: users whose providers ALL offer
  // cone-authenticated blackholing, invoked at every provider (as
  // victims do during real attacks).
  std::vector<workload::Episode> episodes;
  for (const auto& node : env().graph.nodes()) {
    if (node.tier != topology::Tier::kStub) continue;
    bool all_blackhole = !node.providers.empty();
    for (bgp::Asn p : node.providers) {
      const topology::AsNode* pn = env().graph.find(p);
      if (!pn || !pn->blackhole.offers_blackholing ||
          pn->blackhole.auth != topology::BlackholeAuth::kCustomerCone) {
        all_blackhole = false;
        break;
      }
    }
    if (!all_blackhole) continue;
    workload::Episode e;
    e.user = node.asn;
    e.prefix = net::Prefix(
        net::Ipv4Addr(node.v4_block.addr().v4().value() + 0x0401), 32);
    e.providers = node.providers;
    e.start = 100;
    e.end = 100 + util::kHour;
    e.on_periods.push_back(workload::OnPeriod{e.start, e.end, true});
    episodes.push_back(e);
    if (episodes.size() >= 40) break;
  }
  ASSERT_GE(episodes.size(), 20u);
  auto campaign = measurer.measure(episodes);
  EXPECT_EQ(campaign.events_measured, episodes.size());
  EXPECT_FALSE(campaign.measurements.empty());

  // The paper's headline efficacy findings, as shape constraints:
  // most traces are shorter during blackholing...
  EXPECT_GT(campaign.fraction_paths_shorter_during(), 0.5);
  // ...with a positive mean IP and AS hop reduction.
  EXPECT_GT(campaign.mean_ip_hop_reduction(), 1.0);
  EXPECT_GT(campaign.mean_as_hop_reduction(), 0.5);
  // Some traffic is dropped at the destination AS or its upstream.
  EXPECT_GT(campaign.fraction_dropped_at_destination_or_upstream(), 0.0);
}

TEST(Efficacy, NeighborTargetComparableWithoutBlackhole) {
  // With no blackholes installed, traces to the blackholed host and its
  // /31 neighbour have identical length (they share the covering AS).
  auto episode = env().sample_episode();
  ActiveBlackholes none;
  auto a = env().traceroute.trace(env().graph.nodes()[5].asn,
                                  episode.prefix.addr(), none);
  net::IpAddr neighbor(
      net::Ipv4Addr(episode.prefix.addr().v4().value() ^ 1u));
  auto b = env().traceroute.trace(env().graph.nodes()[5].asn, neighbor, none);
  EXPECT_EQ(a.ip_path_length(), b.ip_path_length());
}

}  // namespace
}  // namespace bgpbh::dataplane
