#include "bgp/community.h"

#include <gtest/gtest.h>

namespace bgpbh::bgp {
namespace {

TEST(Community, ParseAndAccessors) {
  auto c = Community::parse("65535:666");
  ASSERT_TRUE(c);
  EXPECT_EQ(c->asn(), 65535);
  EXPECT_EQ(c->value(), 666);
  EXPECT_EQ(c->raw(), 0xFFFF029Au);
}

TEST(Community, RoundTrip) {
  for (const char* s : {"0:666", "3356:9999", "65535:666", "174:0"}) {
    auto c = Community::parse(s);
    ASSERT_TRUE(c) << s;
    EXPECT_EQ(c->to_string(), s);
  }
}

class CommunityInvalidTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CommunityInvalidTest, Rejected) {
  EXPECT_FALSE(Community::parse(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Invalids, CommunityInvalidTest,
                         ::testing::Values("", "666", "65536:1", "1:65536",
                                           "a:b", "1:2:3", ":", "-1:666"));

TEST(Community, Rfc7999Blackhole) {
  EXPECT_EQ(Community::rfc7999_blackhole(), *Community::parse("65535:666"));
}

TEST(Community, NoExport) {
  Community ne(Community::kNoExportRaw);
  EXPECT_TRUE(ne.is_no_export());
  EXPECT_FALSE(Community(65535, 666).is_no_export());
}

TEST(LargeCommunity, ParseRoundTrip) {
  auto c = LargeCommunity::parse("4200000001:666:0");
  ASSERT_TRUE(c);
  EXPECT_EQ(c->global_admin(), 4200000001u);
  EXPECT_EQ(c->local1(), 666u);
  EXPECT_EQ(c->to_string(), "4200000001:666:0");
}

TEST(LargeCommunity, Invalid) {
  EXPECT_FALSE(LargeCommunity::parse("1:2"));
  EXPECT_FALSE(LargeCommunity::parse("1:2:3:4"));
  EXPECT_FALSE(LargeCommunity::parse("x:2:3"));
}

TEST(CommunitySet, AddContainsRemove) {
  CommunitySet set;
  EXPECT_TRUE(set.empty());
  set.add(Community(100, 666));
  set.add(Community(100, 666));  // duplicate ignored
  set.add(Community(200, 1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Community(100, 666)));
  EXPECT_FALSE(set.contains(Community(100, 667)));
  set.remove(Community(100, 666));
  EXPECT_FALSE(set.contains(Community(100, 666)));
  EXPECT_EQ(set.size(), 1u);
}

TEST(CommunitySet, KeepsSortedOrder) {
  CommunitySet set;
  set.add(Community(300, 1));
  set.add(Community(100, 1));
  set.add(Community(200, 1));
  ASSERT_EQ(set.classic().size(), 3u);
  EXPECT_LT(set.classic()[0], set.classic()[1]);
  EXPECT_LT(set.classic()[1], set.classic()[2]);
}

TEST(CommunitySet, LargeCommunities) {
  CommunitySet set;
  set.add(LargeCommunity(1, 2, 3));
  set.add(LargeCommunity(1, 2, 3));
  EXPECT_EQ(set.large().size(), 1u);
  EXPECT_TRUE(set.contains(LargeCommunity(1, 2, 3)));
  EXPECT_FALSE(set.contains(LargeCommunity(1, 2, 4)));
}

TEST(CommunitySet, HasNoExport) {
  CommunitySet set;
  EXPECT_FALSE(set.has_no_export());
  set.add(Community(Community::kNoExportRaw));
  EXPECT_TRUE(set.has_no_export());
}

TEST(CommunitySet, ToString) {
  CommunitySet set;
  set.add(Community(100, 666));
  set.add(LargeCommunity(9, 8, 7));
  EXPECT_EQ(set.to_string(), "100:666 9:8:7");
}

TEST(CommunitySet, ClearAndEquality) {
  CommunitySet a, b;
  a.add(Community(1, 2));
  EXPECT_NE(a, b);
  a.clear();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bgpbh::bgp
