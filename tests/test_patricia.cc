#include "net/patricia.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace bgpbh::net {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }
IpAddr A(const char* s) { return *IpAddr::parse(s); }

TEST(Patricia, InsertAndFind) {
  PatriciaTrie<int> t;
  EXPECT_TRUE(t.insert(P("10.0.0.0/8"), 1));
  EXPECT_TRUE(t.insert(P("10.1.0.0/16"), 2));
  ASSERT_NE(t.find(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*t.find(P("10.0.0.0/8")), 1);
  EXPECT_EQ(*t.find(P("10.1.0.0/16")), 2);
  EXPECT_EQ(t.find(P("10.2.0.0/16")), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Patricia, InsertOverwrites) {
  PatriciaTrie<int> t;
  EXPECT_TRUE(t.insert(P("10.0.0.0/8"), 1));
  EXPECT_FALSE(t.insert(P("10.0.0.0/8"), 7));
  EXPECT_EQ(*t.find(P("10.0.0.0/8")), 7);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Patricia, LongestPrefixMatch) {
  PatriciaTrie<int> t;
  t.insert(P("10.0.0.0/8"), 8);
  t.insert(P("10.1.0.0/16"), 16);
  t.insert(P("10.1.2.0/24"), 24);
  Prefix matched;
  const int* v = t.lookup(A("10.1.2.3"), &matched);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 24);
  EXPECT_EQ(matched, P("10.1.2.0/24"));
  EXPECT_EQ(*t.lookup(A("10.1.9.9")), 16);
  EXPECT_EQ(*t.lookup(A("10.9.9.9")), 8);
  EXPECT_EQ(t.lookup(A("11.0.0.0")), nullptr);
}

TEST(Patricia, HostRouteMatch) {
  PatriciaTrie<int> t;
  t.insert(P("10.1.2.3/32"), 32);
  EXPECT_NE(t.lookup(A("10.1.2.3")), nullptr);
  EXPECT_EQ(t.lookup(A("10.1.2.2")), nullptr);
}

TEST(Patricia, DefaultRoute) {
  PatriciaTrie<int> t;
  t.insert(P("0.0.0.0/0"), 0);
  EXPECT_NE(t.lookup(A("203.0.113.7")), nullptr);
}

TEST(Patricia, Erase) {
  PatriciaTrie<int> t;
  t.insert(P("10.0.0.0/8"), 8);
  t.insert(P("10.1.0.0/16"), 16);
  EXPECT_TRUE(t.erase(P("10.1.0.0/16")));
  EXPECT_FALSE(t.erase(P("10.1.0.0/16")));
  EXPECT_EQ(t.find(P("10.1.0.0/16")), nullptr);
  EXPECT_EQ(*t.lookup(A("10.1.2.3")), 8);  // falls back to /8
  EXPECT_EQ(t.size(), 1u);
}

TEST(Patricia, AllMatchesShortestFirst) {
  PatriciaTrie<int> t;
  t.insert(P("10.0.0.0/8"), 1);
  t.insert(P("10.1.0.0/16"), 2);
  t.insert(P("10.1.2.0/24"), 3);
  auto matches = t.all_matches(A("10.1.2.3"));
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].len(), 8);
  EXPECT_EQ(matches[2].len(), 24);
}

TEST(Patricia, ForEachVisitsAll) {
  PatriciaTrie<int> t;
  t.insert(P("10.0.0.0/8"), 1);
  t.insert(P("192.168.0.0/16"), 2);
  t.insert(P("10.1.2.3/32"), 3);
  std::size_t n = 0;
  int sum = 0;
  t.for_each([&](const Prefix&, const int& v) {
    ++n;
    sum += v;
  });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(sum, 6);
}

TEST(Patricia, Ipv6Basics) {
  PatriciaTrie<int> t;
  t.insert(P("2001:7f8::/32"), 1);
  t.insert(P("2001:7f8:1::/48"), 2);
  EXPECT_EQ(*t.lookup(A("2001:7f8:1::5")), 2);
  EXPECT_EQ(*t.lookup(A("2001:7f8:2::5")), 1);
  EXPECT_EQ(t.lookup(A("2a00::1")), nullptr);
}

TEST(PrefixTable, DualFamily) {
  PrefixTable<int> t;
  t.insert(P("10.0.0.0/8"), 4);
  t.insert(P("2001:7f8::/32"), 6);
  EXPECT_TRUE(t.covered(A("10.1.1.1")));
  EXPECT_TRUE(t.covered(A("2001:7f8::1")));
  EXPECT_FALSE(t.covered(A("11.1.1.1")));
  EXPECT_EQ(t.size(), 2u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

// Property test: Patricia LPM agrees with a brute-force scan over a
// random rule set, for random query addresses.
class PatriciaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatriciaPropertyTest, MatchesBruteForce) {
  util::Rng rng(GetParam());
  PatriciaTrie<int> trie;
  std::map<Prefix, int> rules;
  for (int i = 0; i < 300; ++i) {
    std::uint32_t addr = static_cast<std::uint32_t>(rng.next_u64());
    std::uint8_t len = static_cast<std::uint8_t>(rng.uniform(33));
    Prefix p(IpAddr(Ipv4Addr(addr)), len);
    trie.insert(p, i);
    rules[p] = i;
  }
  // Re-inserted values overwrite; mirror map state.
  EXPECT_EQ(trie.size(), rules.size());

  for (int q = 0; q < 2000; ++q) {
    IpAddr ip(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())));
    // Brute force: longest covering prefix.
    const Prefix* best = nullptr;
    for (const auto& [p, v] : rules) {
      if (p.contains(ip) && (!best || p.len() > best->len())) best = &p;
    }
    Prefix matched;
    const int* got = trie.lookup(ip, &matched);
    if (best) {
      ASSERT_NE(got, nullptr) << ip.to_string();
      EXPECT_EQ(matched.len(), best->len()) << ip.to_string();
      EXPECT_EQ(rules.at(matched), *got);
    } else {
      EXPECT_EQ(got, nullptr) << ip.to_string();
    }
  }
}

TEST_P(PatriciaPropertyTest, EraseRestoresBruteForce) {
  util::Rng rng(GetParam() ^ 0xE2A5E);
  PatriciaTrie<int> trie;
  std::map<Prefix, int> rules;
  for (int i = 0; i < 120; ++i) {
    std::uint32_t addr = static_cast<std::uint32_t>(rng.next_u64());
    std::uint8_t len = static_cast<std::uint8_t>(8 + rng.uniform(25));
    Prefix p(IpAddr(Ipv4Addr(addr)), len);
    trie.insert(p, i);
    rules[p] = i;
  }
  // Erase half.
  std::size_t k = 0;
  for (auto it = rules.begin(); it != rules.end();) {
    if (k++ % 2 == 0) {
      EXPECT_TRUE(trie.erase(it->first));
      it = rules.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(trie.size(), rules.size());
  for (int q = 0; q < 500; ++q) {
    IpAddr ip(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())));
    const Prefix* best = nullptr;
    for (const auto& [p, v] : rules) {
      if (p.contains(ip) && (!best || p.len() > best->len())) best = &p;
    }
    const int* got = trie.lookup(ip);
    EXPECT_EQ(got != nullptr, best != nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatriciaPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace bgpbh::net
