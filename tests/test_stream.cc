// Tests for the streaming ingestion subsystem (src/stream/):
//   * SPSC queue FIFO/close semantics and producer backpressure (a full
//     bounded queue blocks, never drops),
//   * shard routing: per-prefix splitting, key affinity, determinism,
//   * event store snapshot and window queries,
//   * the equivalence contract: the sharded pipeline produces the exact
//     canonical event set and merged stats of a sequential engine, for
//     any shard count, on a Study-generated workload.
#include "stream/pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <set>
#include <thread>

#include "core/study.h"
#include "stream/source.h"
#include "stream/spsc_queue.h"

namespace bgpbh::stream {
namespace {

using core::EngineStats;
using core::PeerEvent;
using routing::FeedUpdate;
using routing::Platform;

// ---- SpscQueue --------------------------------------------------------

TEST(SpscQueue, FifoOrderAndCloseSemantics) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  q.close();
  EXPECT_FALSE(q.push(4));     // rejected after close...
  EXPECT_EQ(q.pop(), 3);       // ...but the backlog still drains
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(SpscQueue, BackpressureBlocksProducerInsteadOfDropping) {
  constexpr std::size_t kCapacity = 4;
  constexpr int kTotal = 64;
  SpscQueue<int> q(kCapacity);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < kTotal; ++i) {
      EXPECT_TRUE(q.push(i));
      pushed.fetch_add(1);
    }
  });
  // However long the producer runs, it can never get more than
  // kCapacity ahead of the (still idle) consumer: the bound is
  // structural, the sleep only gives the producer time to hit it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(pushed.load(), static_cast<int>(kCapacity));

  std::vector<int> got;
  for (int i = 0; i < kTotal; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    got.push_back(*v);
  }
  producer.join();
  EXPECT_EQ(pushed.load(), kTotal);           // nothing dropped
  EXPECT_LE(q.peak_size(), kCapacity);        // bound held throughout
  for (int i = 0; i < kTotal; ++i) EXPECT_EQ(got[i], i);  // FIFO
}

TEST(SpscQueue, BatchAndSinglePushPopInterleave) {
  SpscQueue<int> q(16);
  std::vector<int> first{0, 1, 2};
  EXPECT_EQ(q.push_batch(first), 3u);
  EXPECT_TRUE(q.push(3));
  std::vector<int> second{4, 5};
  EXPECT_EQ(q.push_batch(second), 2u);

  EXPECT_EQ(q.pop(), 0);  // single pop sees batch-pushed items in order
  std::vector<int> got;
  EXPECT_EQ(q.pop_batch(got, 3), 3u);
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.pop_batch(got, 100), 2u);  // appends; takes what's there
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5}));
  q.close();
  EXPECT_EQ(q.pop_batch(got, 8), 0u);  // closed and drained
}

TEST(SpscQueue, PushBatchBlocksWhenFullAndStopsAtClose) {
  constexpr std::size_t kCapacity = 4;
  SpscQueue<int> q(kCapacity);
  std::vector<int> items(16);
  for (int i = 0; i < 16; ++i) items[i] = i;
  std::size_t accepted = 0;
  std::thread producer([&] { accepted = q.push_batch(items); });
  // The batch is larger than the ring: the producer publishes the first
  // chunk and blocks for space.  Wait for that chunk deterministically
  // (no fixed sleep — the bound is structural, not timing-based).
  while (q.size() < kCapacity) std::this_thread::yield();
  EXPECT_EQ(q.size(), kCapacity);
  q.close();
  producer.join();
  EXPECT_EQ(accepted, kCapacity);  // partial batch reported, not lost
  for (int i = 0; i < static_cast<int>(kCapacity); ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(SpscQueue, PopBatchBlocksUntilCloseWhenEmpty) {
  SpscQueue<int> q(8);
  std::vector<int> got;
  std::size_t popped = 99;
  std::thread consumer([&] { popped = q.pop_batch(got, 4); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  q.close();
  consumer.join();
  EXPECT_EQ(popped, 0u);
  EXPECT_TRUE(got.empty());
}

TEST(SpscQueue, BatchFifoOrderUnderProducerConsumerStress) {
  constexpr int kTotal = 20000;
  SpscQueue<int> q(32);
  std::thread producer([&] {
    std::vector<int> batch;
    int next = 0;
    std::size_t batch_size = 1;
    while (next < kTotal) {
      // Mix batch pushes of cycling sizes with single pushes.
      if (batch_size % 5 == 0) {
        q.push(next++);
      } else {
        batch.clear();
        for (std::size_t i = 0; i < batch_size && next < kTotal; ++i) {
          batch.push_back(next++);
        }
        EXPECT_EQ(q.push_batch(batch), batch.size());
      }
      batch_size = batch_size % 11 + 1;
    }
    q.close();
  });

  std::vector<int> got;
  got.reserve(kTotal);
  std::vector<int> chunk;
  std::size_t max = 1;
  for (;;) {
    // Mix batch pops of cycling sizes with single pops.
    if (max % 7 == 0) {
      auto v = q.pop();
      if (!v) break;
      got.push_back(*v);
    } else {
      chunk.clear();
      if (q.pop_batch(chunk, max) == 0) break;
      got.insert(got.end(), chunk.begin(), chunk.end());
    }
    max = max % 13 + 1;
  }
  producer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kTotal));  // nothing dropped
  for (int i = 0; i < kTotal; ++i) ASSERT_EQ(got[i], i);    // strict FIFO
}

// ---- helpers ----------------------------------------------------------

FeedUpdate make_update(Platform platform, const char* peer_ip,
                       bgp::Asn peer_asn,
                       std::initializer_list<const char*> announced,
                       std::initializer_list<const char*> withdrawn,
                       util::SimTime t = 100) {
  FeedUpdate fu;
  fu.platform = platform;
  fu.update.time = t;
  fu.update.peer_ip = *net::IpAddr::parse(peer_ip);
  fu.update.peer_asn = peer_asn;
  for (const char* p : announced) {
    fu.update.body.announced.push_back(*net::Prefix::parse(p));
  }
  for (const char* p : withdrawn) {
    fu.update.body.withdrawn.push_back(*net::Prefix::parse(p));
  }
  fu.update.body.as_path = bgp::AsPath::of({200, 400});
  fu.update.body.communities.add(bgp::Community(200, 666));
  return fu;
}

// ---- ShardRouter ------------------------------------------------------

TEST(ShardRouter, SplitsPerPrefixWithdrawalsFirstZeroCopy) {
  BlockPool pool;
  ShardRouter router(4, pool);
  FeedUpdate fu = make_update(Platform::kRis, "198.51.100.1", 200,
                              {"20.0.1.1/32", "20.0.1.2/32"}, {"20.0.1.3/32"});
  std::vector<std::pair<std::size_t, SubUpdateRef>> routed;
  router.route(fu, [&](std::size_t shard, SubUpdateRef ref) {
    routed.emplace_back(shard, ref);
  });
  ASSERT_EQ(routed.size(), 3u);
  EXPECT_EQ(router.updates_routed(), 1u);

  // All three refs share ONE block holding the parsed update once.
  UpdateBlock* block = routed[0].second.block;
  ASSERT_NE(block, nullptr);
  for (const auto& [shard, ref] : routed) EXPECT_EQ(ref.block, block);
  EXPECT_EQ(block->refs.load(), 3u);
  EXPECT_EQ(block->update, fu);
  // One cache refill; cached blocks count as in flight until the
  // router hands them back.
  EXPECT_EQ(pool.blocks_allocated(), ShardRouter::kBlockCacheSize);
  EXPECT_EQ(pool.in_flight(), ShardRouter::kBlockCacheSize);

  // Withdrawal first, then the announcements in order.
  EXPECT_EQ(routed[0].second.kind, SubKind::kWithdraw);
  EXPECT_EQ(routed[0].second.prefix_index, 0u);
  EXPECT_EQ(routed[1].second.kind, SubKind::kAnnounce);
  EXPECT_EQ(routed[1].second.prefix_index, 0u);
  EXPECT_EQ(routed[2].second.kind, SubKind::kAnnounce);
  EXPECT_EQ(routed[2].second.prefix_index, 1u);

  // Each ref lands on the shard owning its (peer, prefix) key.
  bgp::PeerKey peer{fu.update.peer_ip, fu.update.peer_asn};
  EXPECT_EQ(routed[0].first, shard_for(peer, fu.update.body.withdrawn[0], 4));
  EXPECT_EQ(routed[1].first, shard_for(peer, fu.update.body.announced[0], 4));
  EXPECT_EQ(routed[2].first, shard_for(peer, fu.update.body.announced[1], 4));
  for (const auto& [shard, ref] : routed) EXPECT_LT(shard, 4u);

  // Releasing every ref recycles the block...
  for (const auto& [shard, ref] : routed) pool.release(ref.block);
  EXPECT_EQ(pool.in_flight(), ShardRouter::kBlockCacheSize - 1);
  // ...and further updates draw from the router's local cache — no new
  // allocations, steady state reached after one update.
  for (int i = 0; i < 8; ++i) {
    router.route(fu, [&](std::size_t, SubUpdateRef ref) {
      pool.release(ref.block);
    });
  }
  EXPECT_EQ(pool.blocks_allocated(), ShardRouter::kBlockCacheSize);
  // Handing the cache back zeroes the in-flight gauge.
  router.release_cached_blocks();
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ShardRouter, OwningSlowPathMaterializesPerSubUpdate) {
  BlockPool pool;
  ShardRouter router(4, pool, /*zero_copy=*/false);
  FeedUpdate fu = make_update(Platform::kRis, "198.51.100.1", 200,
                              {"20.0.1.1/32", "20.0.1.2/32"}, {"20.0.1.3/32"});
  std::vector<std::pair<std::size_t, SubUpdateRef>> routed;
  router.route(fu, [&](std::size_t shard, SubUpdateRef ref) {
    routed.emplace_back(shard, ref);
  });
  ASSERT_EQ(routed.size(), 3u);

  // One materialized block per sub-update, all owned (refs == 1).
  EXPECT_EQ(pool.in_flight(), ShardRouter::kBlockCacheSize);  // incl. cache
  for (const auto& [shard, ref] : routed) {
    EXPECT_EQ(ref.kind, SubKind::kOwned);
    EXPECT_EQ(ref.block->refs.load(), 1u);
    EXPECT_EQ(ref.block->update.platform, fu.platform);
    EXPECT_EQ(ref.block->update.update.time, fu.update.time);
    EXPECT_EQ(ref.block->update.update.peer_ip, fu.update.peer_ip);
  }
  const auto& w = routed[0].second.block->update.update.body;
  EXPECT_EQ(w.withdrawn.size(), 1u);
  EXPECT_TRUE(w.announced.empty());
  EXPECT_TRUE(w.as_path.empty());
  for (std::size_t i = 1; i < 3; ++i) {
    const auto& a = routed[i].second.block->update.update.body;
    EXPECT_EQ(a.announced.size(), 1u);
    EXPECT_TRUE(a.withdrawn.empty());
    EXPECT_EQ(a.as_path, fu.update.body.as_path);
    EXPECT_EQ(a.communities, fu.update.body.communities);
  }
  // Same shard assignment as the zero-copy plane.
  bgp::PeerKey peer{fu.update.peer_ip, fu.update.peer_asn};
  EXPECT_EQ(routed[0].first, shard_for(peer, fu.update.body.withdrawn[0], 4));
  for (const auto& [shard, ref] : routed) pool.release(ref.block);
  router.release_cached_blocks();
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ShardRouter, ShardAssignmentIsDeterministicAndSingleShardIsZero) {
  bgp::PeerKey peer{*net::IpAddr::parse("198.51.100.1"), 200};
  net::Prefix prefix = *net::Prefix::parse("20.0.1.1/32");
  EXPECT_EQ(shard_for(peer, prefix, 8), shard_for(peer, prefix, 8));
  EXPECT_EQ(shard_for(peer, prefix, 1), 0u);
  // Different keys spread: at least two of a batch of host routes land
  // on different shards (sanity, not a distribution test).
  std::set<std::size_t> seen;
  for (std::uint32_t host = 0; host < 64; ++host) {
    net::Prefix p(net::Ipv4Addr(0x14000000u + host), 32);
    seen.insert(shard_for(peer, p, 8));
  }
  EXPECT_GT(seen.size(), 1u);
}

// ---- EventStore -------------------------------------------------------

PeerEvent make_event(bgp::Asn provider_asn, Platform platform,
                     util::SimTime start, util::SimTime end) {
  PeerEvent e;
  e.platform = platform;
  e.peer = {*net::IpAddr::parse("198.51.100.1"), 200};
  e.prefix = *net::Prefix::parse("20.0.1.1/32");
  e.provider = {.is_ixp = false, .asn = provider_asn, .ixp_id = 0};
  e.start = start;
  e.end = end;
  e.open = false;
  return e;
}

TEST(EventStore, SnapshotCountersAndWindowQueries) {
  EventStore store;
  store.ingest({make_event(200, Platform::kRis, 100, 200),
                make_event(200, Platform::kCdn, 150, 300)});
  store.ingest({make_event(300, Platform::kRis, 400, 500)});

  auto snap = store.snapshot();
  EXPECT_EQ(snap.total_events, 3u);
  EXPECT_EQ(snap.first_start, 100);
  EXPECT_EQ(snap.last_end, 500);
  EXPECT_EQ(snap.per_provider.at({.is_ixp = false, .asn = 200, .ixp_id = 0}),
            2u);
  EXPECT_EQ(snap.per_platform.at(Platform::kRis), 2u);

  EXPECT_EQ(store.count_in(0, 1000), 3u);
  EXPECT_EQ(store.count_in(350, 1000), 1u);
  EXPECT_EQ(store.events_in(120, 160).size(), 2u);

  store.finalize();
  const auto& events = store.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             core::canonical_less));
}

TEST(EventStore, LanesMergeAtFinalizeAndSnapshotAggregates) {
  EventStore store(3);
  store.ingest_chunk(0, {make_event(200, Platform::kRis, 100, 200)});
  store.ingest_chunk(1, {make_event(200, Platform::kCdn, 150, 300),
                         make_event(300, Platform::kRis, 400, 500)});
  store.ingest_chunk(2, {make_event(300, Platform::kPch, 50, 120)});
  store.ingest_chunk(5, {make_event(300, Platform::kPch, 60, 130)});  // wraps

  // Aggregated across lanes before any merge happened.
  auto snap = store.snapshot();
  EXPECT_EQ(snap.total_events, 5u);
  EXPECT_EQ(snap.first_start, 50);
  EXPECT_EQ(snap.last_end, 500);
  EXPECT_EQ(snap.per_provider.at({.is_ixp = false, .asn = 300, .ixp_id = 0}),
            3u);
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.count_in(0, 1000), 5u);
  EXPECT_EQ(store.events_in(110, 160).size(), 4u);

  store.finalize();
  const auto& events = store.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             core::canonical_less));
  // Queries and counters are unchanged by the merge.
  auto after = store.snapshot();
  EXPECT_EQ(after.total_events, 5u);
  EXPECT_EQ(after.first_start, 50);
  EXPECT_EQ(store.count_in(0, 1000), 5u);
}

// ---- MrtFileSource ----------------------------------------------------

TEST(MrtFileSource, ReplaysTimeSortedTaggedUpdates) {
  net::BufWriter archive;
  for (util::SimTime t : {300, 100, 200}) {
    bgp::ObservedUpdate u;
    u.time = t;
    u.peer_ip = *net::IpAddr::parse("198.51.100.1");
    u.peer_asn = 200;
    u.body.announced.push_back(*net::Prefix::parse("20.0.1.1/32"));
    u.body.as_path = bgp::AsPath::of({200, 400});
    bgp::mrt::encode_update(u, archive);
  }
  auto source = MrtFileSource::from_buffer(archive.data(), Platform::kPch);
  ASSERT_TRUE(source.has_value());
  EXPECT_EQ(source->total_updates(), 3u);
  util::SimTime last = 0;
  std::size_t n = 0;
  while (auto fu = source->next()) {
    EXPECT_EQ(fu->platform, Platform::kPch);
    EXPECT_GE(fu->update.time, last);
    last = fu->update.time;
    ++n;
  }
  EXPECT_EQ(n, 3u);
}

TEST(MrtFileSource, OpenFailureReportsWhy) {
  std::string error;
  auto source = MrtFileSource::open("/nonexistent/bgpbh_no_such_archive.mrt",
                                    Platform::kRis, &error);
  EXPECT_FALSE(source.has_value());
  EXPECT_NE(error.find("cannot read archive"), std::string::npos) << error;
  // A missing archive names the OS reason, not just "failed".
  EXPECT_GT(error.size(), std::string("cannot read archive: ").size());
}

TEST(MrtFileSource, MalformedBufferReportsFramingError) {
  std::vector<std::uint8_t> garbage(64, 0xAB);
  std::string error;
  auto source = MrtFileSource::from_buffer(garbage, Platform::kRis, &error);
  EXPECT_FALSE(source.has_value());
  EXPECT_NE(error.find("MRT record framing"), std::string::npos) << error;
  EXPECT_NE(error.find("64-byte"), std::string::npos) << error;
  // The out-param is optional: the nullopt path must not require it.
  EXPECT_FALSE(MrtFileSource::from_buffer(garbage, Platform::kRis).has_value());
}

// ---- engine drain API -------------------------------------------------

// Study fixture shared by the equivalence suite: a short window at
// bench intensity, its replay stream computed once.
struct StudyFixture {
  core::StudyConfig config;
  std::unique_ptr<core::Study> study;
  std::vector<FeedUpdate> updates;

  StudyFixture() {
    config.window_start = util::from_date(2017, 3, 1);
    config.window_end = util::from_date(2017, 3, 4);
    config.workload.intensity_scale = 0.05;
    config.table_dump_episodes = 10;
    study = std::make_unique<core::Study>(config);
    updates = study->replay_updates();
  }
};

StudyFixture& fixture() {
  static StudyFixture f;
  return f;
}

TEST(EngineDrain, DrainClosedIsIncrementalAndEmpties) {
  auto& f = fixture();
  // Pick a documented unambiguous ISP community from the dictionary.
  bgp::Community community;
  bgp::Asn provider = 0;
  for (const auto& [c, entry] : f.study->dictionary().entries()) {
    if (entry.provider_asns.size() == 1 && entry.ixp_ids.empty()) {
      community = c;
      provider = entry.provider_asns[0];
      break;
    }
  }
  ASSERT_NE(provider, 0u);

  core::InferenceEngine engine(f.study->dictionary(), f.study->registry());
  FeedUpdate open = make_update(Platform::kRis, "198.51.100.9", provider,
                                {"130.149.1.1/32"}, {}, 100);
  open.update.body.as_path = bgp::AsPath::of({provider, 64500});
  open.update.body.communities = {};
  open.update.body.communities.add(community);
  engine.process(open.platform, open.update);
  EXPECT_TRUE(engine.drain_closed().empty());  // nothing closed yet

  FeedUpdate close = make_update(Platform::kRis, "198.51.100.9", provider, {},
                                 {"130.149.1.1/32"}, 200);
  engine.process(close.platform, close.update);
  auto drained = engine.drain_closed();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].provider.asn, provider);
  EXPECT_TRUE(engine.events().empty());        // drain emptied the buffer
  EXPECT_TRUE(engine.drain_closed().empty());  // second drain: nothing new
}

// ---- pipeline equivalence --------------------------------------------

std::vector<PeerEvent> sequential_events(EngineStats* stats_out) {
  auto& f = fixture();
  core::InferenceEngine engine(f.study->dictionary(), f.study->registry());
  if (auto dump = f.study->initial_table_dump()) {
    engine.init_from_table_dump(Platform::kRis, *dump);
  }
  for (const auto& u : f.updates) engine.process(u.platform, u.update);
  engine.finish(f.config.window_end);
  if (stats_out) *stats_out = engine.stats();
  std::vector<PeerEvent> events = engine.events();
  core::canonical_sort(events);
  return events;
}

struct PipelineRunOptions {
  std::size_t shards = 4;
  std::size_t batch_size = 64;
  std::size_t producers = 1;
  bool zero_copy = true;
};

// Runs the fixture stream through a pipeline.  With several producers,
// updates are partitioned by peer-key hash — all transitions of one
// (peer, prefix) key flow through the same producer, so per-key order
// (the equivalence prerequisite) is preserved — and pushed from
// `producers` concurrent threads.
std::vector<PeerEvent> pipeline_events_opt(const PipelineRunOptions& opt,
                                           EngineStats* stats_out) {
  auto& f = fixture();
  PipelineConfig config;
  config.num_shards = opt.shards;
  config.queue_capacity = 64;  // small bound: exercises backpressure
  config.drain_batch = 32;
  config.batch_size = opt.batch_size;
  config.num_producers = opt.producers;
  config.zero_copy = opt.zero_copy;
  StreamPipeline pipeline(f.study->dictionary(), f.study->registry(), config);
  if (auto dump = f.study->initial_table_dump()) {
    pipeline.init_from_table_dump(Platform::kRis, *dump);
  }
  if (opt.producers <= 1) {
    VectorSource source(f.updates);
    pipeline.run(source);
  } else {
    std::vector<std::vector<FeedUpdate>> parts(opt.producers);
    for (const auto& u : f.updates) {
      bgp::PeerKey peer{u.update.peer_ip, u.update.peer_asn};
      parts[bgp::PeerKeyHash{}(peer) % opt.producers].push_back(u);
    }
    std::vector<std::thread> threads;
    threads.reserve(opt.producers);
    for (std::size_t p = 0; p < opt.producers; ++p) {
      threads.emplace_back([&pipeline, &parts, p] {
        auto& producer = pipeline.producer(p);
        for (const auto& u : parts[p]) producer.push(u);
        producer.flush();
      });
    }
    for (auto& t : threads) t.join();
  }
  pipeline.finish(f.config.window_end);
  if (stats_out) *stats_out = pipeline.merged_stats();
  EXPECT_EQ(pipeline.open_event_count(), 0u);  // finish closed everything
  EXPECT_EQ(pipeline.updates_pushed(), f.updates.size());
  EXPECT_EQ(pipeline.blocks_in_flight(), 0u);  // every block came home
  return pipeline.store().events();
}

std::vector<PeerEvent> pipeline_events(std::size_t shards,
                                       EngineStats* stats_out) {
  return pipeline_events_opt({.shards = shards}, stats_out);
}

TEST(StreamPipeline, ShardedPipelineMatchesSequentialEngine) {
  EngineStats seq_stats;
  auto seq = sequential_events(&seq_stats);
  ASSERT_FALSE(seq.empty());

  EngineStats pipe_stats;
  auto pipe = pipeline_events(4, &pipe_stats);
  ASSERT_EQ(seq.size(), pipe.size());
  EXPECT_TRUE(seq == pipe);  // canonical order, all fields compared
  EXPECT_EQ(seq_stats, pipe_stats);
}

TEST(StreamPipeline, DeterministicAcrossShardCounts) {
  EngineStats stats1, stats8;
  auto events1 = pipeline_events(1, &stats1);
  auto events8 = pipeline_events(8, &stats8);
  ASSERT_FALSE(events1.empty());
  EXPECT_TRUE(events1 == events8);
  EXPECT_EQ(stats1, stats8);
}

// The zero-copy data plane must be byte-equivalent to the sequential
// engine across the whole deployment envelope: shard counts × transfer
// batch sizes × concurrent producer counts.
TEST(StreamPipeline, EquivalenceAcrossShardsBatchesProducers) {
  EngineStats seq_stats;
  auto seq = sequential_events(&seq_stats);
  ASSERT_FALSE(seq.empty());

  for (std::size_t shards : {1u, 3u, 8u}) {
    for (std::size_t batch : {1u, 64u}) {
      for (std::size_t producers : {1u, 3u}) {
        EngineStats stats;
        auto events = pipeline_events_opt(
            {.shards = shards, .batch_size = batch, .producers = producers},
            &stats);
        EXPECT_TRUE(events == seq)
            << "shards=" << shards << " batch=" << batch
            << " producers=" << producers;
        EXPECT_EQ(stats, seq_stats)
            << "shards=" << shards << " batch=" << batch
            << " producers=" << producers;
      }
    }
  }
}

// The owning-FeedUpdate slow path (zero_copy = false) stays behind a
// config knob as the A/B baseline; its event set must match the
// zero-copy plane's (and hence the sequential engine's) exactly.
TEST(StreamPipeline, OwningSlowPathMatchesZeroCopyPath) {
  EngineStats fast_stats, slow_stats;
  auto fast = pipeline_events_opt({.zero_copy = true}, &fast_stats);
  auto slow = pipeline_events_opt({.zero_copy = false}, &slow_stats);
  ASSERT_FALSE(fast.empty());
  EXPECT_TRUE(fast == slow);
  EXPECT_EQ(fast_stats, slow_stats);
}

// Randomized flush stress: interleave push()/flush() at random points
// while a reader thread hammers the live snapshot API.  The store's
// sealed-chunk handoff and counters must stay consistent throughout,
// and the final event set must still be exactly the sequential one.
TEST(StreamPipeline, RandomizedFlushStressWithConcurrentSnapshots) {
  auto& f = fixture();
  EngineStats seq_stats;
  auto seq = sequential_events(&seq_stats);

  PipelineConfig config;
  config.num_shards = 3;
  config.queue_capacity = 64;
  config.drain_batch = 8;    // frequent sealed chunks
  config.batch_size = 16;
  StreamPipeline pipeline(f.study->dictionary(), f.study->registry(), config);
  if (auto dump = f.study->initial_table_dump()) {
    pipeline.init_from_table_dump(Platform::kRis, *dump);
  }
  pipeline.start();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots_taken{0};
  std::thread reader([&] {
    std::size_t last_total = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto snap = pipeline.store().snapshot();
      // Totals are monotone while the pipeline runs.
      EXPECT_GE(snap.total_events, last_total);
      last_total = snap.total_events;
      std::size_t platform_sum = 0;
      for (const auto& [platform, n] : snap.per_platform) platform_sum += n;
      EXPECT_EQ(platform_sum, snap.total_events);  // consistent snapshot
      // All fixture events overlap [0, end+1), so a full-window count
      // is a point-in-time total — bracket it between two size() reads
      // (totals only grow while the pipeline runs).
      std::size_t before = pipeline.store().size();
      std::size_t counted = pipeline.store().count_in(0, f.config.window_end + 1);
      std::size_t after = pipeline.store().size();
      EXPECT_LE(before, counted);
      EXPECT_LE(counted, after);
      (void)pipeline.open_event_count();
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::mt19937_64 rng(7);
  for (const auto& u : f.updates) {
    pipeline.push(u);
    if ((rng() & 0x3F) == 0) pipeline.flush();  // ~1/64 updates
  }
  pipeline.finish(f.config.window_end);
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_TRUE(pipeline.store().events() == seq);
  EXPECT_EQ(pipeline.merged_stats(), seq_stats);
  EXPECT_EQ(pipeline.blocks_in_flight(), 0u);
}

TEST(StreamPipeline, ReplayStreamMatchesStudyRun) {
  auto& f = fixture();
  f.study->run();
  std::vector<PeerEvent> from_study = f.study->events();
  core::canonical_sort(from_study);

  EngineStats seq_stats;
  auto seq = sequential_events(&seq_stats);
  EXPECT_TRUE(from_study == seq);
  EXPECT_EQ(f.study->engine_stats(), seq_stats);
}

TEST(StreamPipeline, StoreSnapshotConsistentAfterFinish) {
  auto& f = fixture();
  PipelineConfig config;
  config.num_shards = 2;
  StreamPipeline pipeline(f.study->dictionary(), f.study->registry(), config);
  VectorSource source(f.updates);
  pipeline.run(source);
  pipeline.finish(f.config.window_end);

  auto snap = pipeline.store().snapshot();
  EXPECT_EQ(snap.total_events, pipeline.store().size());
  std::size_t platform_sum = 0;
  for (const auto& [platform, n] : snap.per_platform) platform_sum += n;
  EXPECT_EQ(platform_sum, snap.total_events);
  EXPECT_EQ(pipeline.store().count_in(0, f.config.window_end + 1),
            snap.total_events);
  EXPECT_EQ(pipeline.updates_pushed(), f.updates.size());

  // After finish() the pipeline rejects — and does not count — pushes.
  EXPECT_FALSE(pipeline.push(f.updates.front()));
  EXPECT_EQ(pipeline.updates_pushed(), f.updates.size());
}

// ---- FleetSource ------------------------------------------------------

TEST(FleetSource, StreamsEpisodeObservationsThroughPipeline) {
  auto& f = fixture();
  workload::WorkloadGenerator workload(f.study->graph(), f.study->cones(),
                                       f.config.workload);
  routing::PropagationEngine propagation(f.study->graph(), f.study->cones(),
                                         f.config.seed ^ 0xABCDULL);
  std::vector<workload::Episode> episodes;
  std::int64_t first_day = util::day_index(f.config.window_start);
  std::int64_t last_day = util::day_index(f.config.window_end);
  for (std::int64_t day = first_day; day < last_day; ++day) {
    for (auto& e : workload.episodes_for_day(day)) {
      episodes.push_back(std::move(e));
    }
  }
  ASSERT_FALSE(episodes.empty());

  FleetSource source(f.study->fleet(), propagation, episodes,
                     f.config.window_end);
  PipelineConfig config;
  config.num_shards = 2;
  StreamPipeline pipeline(f.study->dictionary(), f.study->registry(), config);
  std::uint64_t consumed = pipeline.run(source);
  pipeline.finish(f.config.window_end);
  EXPECT_EQ(source.episodes_consumed(), episodes.size());
  EXPECT_GT(consumed, 0u);
  EXPECT_GT(pipeline.store().size(), 0u);
}

}  // namespace
}  // namespace bgpbh::stream
