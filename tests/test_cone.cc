#include "topology/cone.h"

#include <gtest/gtest.h>

#include "topology/generator.h"
#include "util/rng.h"

namespace bgpbh::topology {
namespace {

struct Env {
  AsGraph graph = generate(GeneratorConfig{});
  CustomerCones cones{graph};
};

const Env& env() {
  static Env e;
  return e;
}

TEST(Cone, ContainsSelf) {
  for (const auto& node : env().graph.nodes()) {
    EXPECT_TRUE(env().cones.in_cone(node.asn, node.asn));
    EXPECT_GE(env().cones.cone_size(node.asn), 1u);
  }
}

TEST(Cone, ContainsDirectCustomers) {
  for (const auto& node : env().graph.nodes()) {
    for (Asn cust : node.customers) {
      EXPECT_TRUE(env().cones.in_cone(node.asn, cust))
          << node.asn << " cone should contain customer " << cust;
    }
  }
}

TEST(Cone, TransitiveClosure) {
  // Customer-of-customer is in the cone.
  util::Rng rng(5);
  std::size_t checked = 0;
  for (const auto& node : env().graph.nodes()) {
    for (Asn cust : node.customers) {
      const AsNode* c = env().graph.find(cust);
      for (Asn cc : c->customers) {
        EXPECT_TRUE(env().cones.in_cone(node.asn, cc));
        if (++checked > 500) return;
      }
    }
  }
}

TEST(Cone, StubsHaveTrivialCones) {
  for (const auto& node : env().graph.nodes()) {
    if (node.customers.empty()) {
      EXPECT_EQ(env().cones.cone_size(node.asn), 1u) << "AS" << node.asn;
    }
  }
}

TEST(Cone, Tier1ConesAreLarge) {
  for (const auto& node : env().graph.nodes()) {
    if (node.tier == Tier::kTier1) {
      EXPECT_GT(env().cones.cone_size(node.asn), 50u) << "AS" << node.asn;
    }
  }
}

TEST(Cone, SortedOutput) {
  const auto& cone = env().cones.cone(env().graph.nodes().front().asn);
  EXPECT_TRUE(std::is_sorted(cone.begin(), cone.end()));
}

TEST(Cone, UpstreamInverseProperty) {
  // a in cone(b)  <=>  b in upstream_cone(a), on a random sample.
  util::Rng rng(17);
  const auto& nodes = env().graph.nodes();
  for (int i = 0; i < 200; ++i) {
    const auto& a = nodes[rng.uniform(nodes.size())];
    const auto& b = nodes[rng.uniform(nodes.size())];
    bool in_cone = env().cones.in_cone(b.asn, a.asn);
    auto upstream = env().cones.upstream_cone(a.asn);
    bool in_upstream =
        std::binary_search(upstream.begin(), upstream.end(), b.asn);
    EXPECT_EQ(in_cone, in_upstream) << a.asn << " / " << b.asn;
  }
}

TEST(Cone, UpstreamContainsProviders) {
  for (const auto& node : env().graph.nodes()) {
    if (node.providers.empty()) continue;
    auto upstream = env().cones.upstream_cone(node.asn);
    for (Asn p : node.providers) {
      EXPECT_TRUE(std::binary_search(upstream.begin(), upstream.end(), p));
    }
    break;  // one detailed case is enough; the inverse property covers rest
  }
}

TEST(Cone, UnknownAsn) {
  EXPECT_FALSE(env().cones.in_cone(999999999, 1));
  EXPECT_TRUE(env().cones.cone(999999999).empty());
}

}  // namespace
}  // namespace bgpbh::topology
