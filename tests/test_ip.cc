#include "net/ip.h"

#include <gtest/gtest.h>

namespace bgpbh::net {
namespace {

TEST(Ipv4, ParseBasic) {
  auto a = Ipv4Addr::parse("192.168.1.200");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->value(), 0xC0A801C8u);
}

TEST(Ipv4, ParseBounds) {
  EXPECT_TRUE(Ipv4Addr::parse("0.0.0.0"));
  EXPECT_TRUE(Ipv4Addr::parse("255.255.255.255"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
}

class Ipv4InvalidTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv4InvalidTest, Rejected) {
  EXPECT_FALSE(Ipv4Addr::parse(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Invalids, Ipv4InvalidTest,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "a.b.c.d",
                                           "1..2.3", "01.2.3.4", "1.2.3.999",
                                           " 1.2.3.4", "1.2.3.4 ", "1,2,3,4"));

TEST(Ipv4, RoundTrip) {
  const char* cases[] = {"0.0.0.0", "10.0.0.1", "130.149.1.1", "255.255.255.255"};
  for (const char* s : cases) {
    auto a = Ipv4Addr::parse(s);
    ASSERT_TRUE(a) << s;
    EXPECT_EQ(a->to_string(), s);
  }
}

TEST(Ipv4, BitAccess) {
  Ipv4Addr a(0x80000001u);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(31));
}

TEST(Ipv4, ConstructFromOctets) {
  Ipv4Addr a(130, 149, 1, 1);
  EXPECT_EQ(a.to_string(), "130.149.1.1");
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4Addr(1), Ipv4Addr(2));
  EXPECT_EQ(Ipv4Addr(7), Ipv4Addr(7));
}

TEST(Ipv6, ParseFull) {
  auto a = Ipv6Addr::parse("2001:07f8:0001:0000:0000:0000:dead:beef");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x07f8);
  EXPECT_EQ(a->group(6), 0xdead);
  EXPECT_EQ(a->group(7), 0xbeef);
}

TEST(Ipv6, ParseCompressed) {
  auto a = Ipv6Addr::parse("2001:7f8::dead:beef");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(2), 0);
  EXPECT_EQ(a->group(7), 0xbeef);
}

TEST(Ipv6, ParseAllZeros) {
  auto a = Ipv6Addr::parse("::");
  ASSERT_TRUE(a);
  for (unsigned g = 0; g < 8; ++g) EXPECT_EQ(a->group(g), 0);
}

TEST(Ipv6, ParseLeadingCompression) {
  auto a = Ipv6Addr::parse("::1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->group(7), 1);
}

TEST(Ipv6, ParseTrailingCompression) {
  auto a = Ipv6Addr::parse("fe80::");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->group(0), 0xfe80);
  EXPECT_EQ(a->group(7), 0);
}

class Ipv6InvalidTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv6InvalidTest, Rejected) {
  EXPECT_FALSE(Ipv6Addr::parse(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Invalids, Ipv6InvalidTest,
                         ::testing::Values("", ":::", "1:2:3:4:5:6:7",
                                           "1:2:3:4:5:6:7:8:9", "g::1",
                                           "12345::", "1::2::3",
                                           "1:2:3:4:5:6:7::8"));

TEST(Ipv6, CanonicalFormCompressesLongestRun) {
  auto a = Ipv6Addr::parse("2001:0:0:1:0:0:0:1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "2001:0:0:1::1");
}

TEST(Ipv6, RoundTripCanonical) {
  const char* cases[] = {"::", "::1", "fe80::", "2001:7f8::dead:beef",
                         "2a00:1:2:3:4:5:6:7"};
  for (const char* s : cases) {
    auto a = Ipv6Addr::parse(s);
    ASSERT_TRUE(a) << s;
    auto b = Ipv6Addr::parse(a->to_string());
    ASSERT_TRUE(b) << a->to_string();
    EXPECT_EQ(*a, *b);
  }
}

TEST(IpAddr, ParseDispatch) {
  auto v4 = IpAddr::parse("1.2.3.4");
  ASSERT_TRUE(v4);
  EXPECT_TRUE(v4->is_v4());
  auto v6 = IpAddr::parse("::1");
  ASSERT_TRUE(v6);
  EXPECT_TRUE(v6->is_v6());
  EXPECT_FALSE(IpAddr::parse("nonsense"));
}

TEST(IpAddr, MaxLen) {
  EXPECT_EQ(IpAddr(Ipv4Addr(0)).max_len(), 32u);
  EXPECT_EQ(IpAddr(Ipv6Addr()).max_len(), 128u);
}

TEST(IpAddr, FamilyOrdering) {
  // IPv4 sorts before IPv6 by variant index.
  EXPECT_LT(IpAddr(Ipv4Addr(0xFFFFFFFF)), IpAddr(Ipv6Addr()));
}

}  // namespace
}  // namespace bgpbh::net
