#include "util/strings.h"

#include <gtest/gtest.h>

namespace bgpbh::util {
namespace {

TEST(Split, Basic) {
  auto parts = split("a:b:c", ':');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a::b:", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyString) {
  auto parts = split("", ':');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWs, DropsEmpty) {
  auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWs, AllWhitespace) { EXPECT_TRUE(split_ws(" \t\n ").empty()); }

TEST(Trim, Both) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(ToLower, Mixed) { EXPECT_EQ(to_lower("BlackHole-666"), "blackhole-666"); }

TEST(StartsWith, Cases) {
  EXPECT_TRUE(starts_with("remarks: foo", "remarks:"));
  EXPECT_FALSE(starts_with("rem", "remarks:"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(ContainsIcase, Matches) {
  EXPECT_TRUE(contains_icase("Remotely Triggered BLACKHOLING", "blackhol"));
  EXPECT_FALSE(contains_icase("traffic engineering", "blackhole"));
  EXPECT_TRUE(contains_icase("x", ""));
  EXPECT_FALSE(contains_icase("", "x"));
}

TEST(ParseU32, Valid) {
  std::uint32_t v = 0;
  EXPECT_TRUE(parse_u32("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u32("65535", v));
  EXPECT_EQ(v, 65535u);
  EXPECT_TRUE(parse_u32("4294967295", v));
  EXPECT_EQ(v, 4294967295u);
}

TEST(ParseU32, Invalid) {
  std::uint32_t v = 0;
  EXPECT_FALSE(parse_u32("", v));
  EXPECT_FALSE(parse_u32("-1", v));
  EXPECT_FALSE(parse_u32("12a", v));
  EXPECT_FALSE(parse_u32("4294967296", v));  // overflow
  EXPECT_FALSE(parse_u32(" 1", v));
}

TEST(ParseU64, Overflow) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_FALSE(parse_u64("18446744073709551616", v));
}

TEST(Strf, Formats) {
  EXPECT_EQ(strf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strf("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(strf("empty"), "empty");
}

}  // namespace
}  // namespace bgpbh::util
