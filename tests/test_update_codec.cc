#include "bgp/update.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bgpbh::bgp {
namespace {

net::Prefix P(const char* s) { return *net::Prefix::parse(s); }

UpdateBody sample_body() {
  UpdateBody body;
  body.announced.push_back(P("130.149.1.1/32"));
  body.announced.push_back(P("20.1.0.0/16"));
  body.withdrawn.push_back(P("20.2.0.0/24"));
  body.as_path = AsPath::of({3356, 64500});
  body.next_hop = *net::IpAddr::parse("198.51.100.1");
  body.communities.add(Community(65535, 666));
  body.communities.add(Community(3356, 9999));
  body.origin = Origin::kIgp;
  return body;
}

TEST(UpdateCodec, RoundTripBody) {
  UpdateBody body = sample_body();
  net::BufWriter w;
  encode_update_body(body, w);
  net::BufReader r(w.data());
  auto decoded = decode_update_body(r);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, body);
}

TEST(UpdateCodec, RoundTripMessage) {
  UpdateBody body = sample_body();
  net::BufWriter w;
  encode_update_message(body, w);
  net::BufReader r(w.data());
  auto decoded = decode_update_message(r);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, body);
}

TEST(UpdateCodec, WithdrawalOnly) {
  UpdateBody body;
  body.withdrawn.push_back(P("130.149.1.1/32"));
  EXPECT_TRUE(body.is_withdrawal_only());
  net::BufWriter w;
  encode_update_body(body, w);
  net::BufReader r(w.data());
  auto decoded = decode_update_body(r);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->is_withdrawal_only());
  EXPECT_EQ(decoded->withdrawn, body.withdrawn);
}

TEST(UpdateCodec, LargeCommunities) {
  UpdateBody body;
  body.announced.push_back(P("20.0.0.1/32"));
  body.as_path = AsPath::of({64500});
  body.communities.add(LargeCommunity(64500, 666, 0));
  net::BufWriter w;
  encode_update_body(body, w);
  net::BufReader r(w.data());
  auto decoded = decode_update_body(r);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->communities.contains(LargeCommunity(64500, 666, 0)));
}

TEST(UpdateCodec, Ipv6ViaMpReach) {
  UpdateBody body;
  body.announced.push_back(P("2a00:1::dead:beef/128"));
  body.as_path = AsPath::of({64500});
  body.next_hop = *net::IpAddr::parse("2001:7f8::66");
  body.communities.add(Community(65535, 666));
  net::BufWriter w;
  encode_update_body(body, w);
  net::BufReader r(w.data());
  auto decoded = decode_update_body(r);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, body);
}

TEST(UpdateCodec, Ipv6Withdrawal) {
  UpdateBody body;
  body.withdrawn.push_back(P("2a00:1::/32"));
  net::BufWriter w;
  encode_update_body(body, w);
  net::BufReader r(w.data());
  auto decoded = decode_update_body(r);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->withdrawn.size(), 1u);
  EXPECT_EQ(decoded->withdrawn[0], body.withdrawn[0]);
}

TEST(UpdateCodec, MixedFamilies) {
  UpdateBody body;
  body.announced.push_back(P("20.0.0.1/32"));
  body.announced.push_back(P("2a00:1::1/128"));
  body.as_path = AsPath::of({100, 200});
  body.next_hop = *net::IpAddr::parse("20.0.0.254");
  net::BufWriter w;
  encode_update_body(body, w);
  net::BufReader r(w.data());
  auto decoded = decode_update_body(r);
  ASSERT_TRUE(decoded);
  // Both families present; order may interleave (v4 NLRI after attrs).
  ASSERT_EQ(decoded->announced.size(), 2u);
}

TEST(UpdateCodec, TruncatedInputFails) {
  UpdateBody body = sample_body();
  net::BufWriter w;
  encode_update_body(body, w);
  for (std::size_t cut : {1ul, 5ul, 10ul, w.size() - 1}) {
    std::vector<std::uint8_t> truncated(w.data().begin(),
                                        w.data().begin() + cut);
    net::BufReader r(truncated);
    EXPECT_FALSE(decode_update_body(r)) << "cut=" << cut;
  }
}

TEST(UpdateCodec, BadMarkerRejected) {
  UpdateBody body = sample_body();
  net::BufWriter w;
  encode_update_message(body, w);
  auto bytes = w.take();
  bytes[0] = 0x00;
  net::BufReader r(bytes);
  EXPECT_FALSE(decode_update_message(r));
}

TEST(UpdateCodec, PrefixLenOver32Rejected) {
  // Hand-craft: withdrawn len 0, attrs len 0, NLRI with len byte 40.
  net::BufWriter w;
  w.u16(0);
  w.u16(0);
  w.u8(40);
  w.u32(0x01020304);
  net::BufReader r(w.data());
  EXPECT_FALSE(decode_update_body(r));
}

// Property: random bodies survive the codec byte-exactly.
class UpdateCodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpdateCodecProperty, RandomRoundTrip) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    UpdateBody body;
    std::size_t n_ann = rng.uniform(4);
    for (std::size_t i = 0; i < n_ann; ++i) {
      std::uint32_t addr = static_cast<std::uint32_t>(rng.next_u64());
      std::uint8_t len = static_cast<std::uint8_t>(rng.uniform(33));
      body.announced.emplace_back(net::IpAddr(net::Ipv4Addr(addr)), len);
    }
    std::size_t n_wd = rng.uniform(3);
    for (std::size_t i = 0; i < n_wd; ++i) {
      std::uint32_t addr = static_cast<std::uint32_t>(rng.next_u64());
      body.withdrawn.emplace_back(net::IpAddr(net::Ipv4Addr(addr)),
                                  static_cast<std::uint8_t>(rng.uniform(33)));
    }
    if (!body.announced.empty()) {
      std::vector<Asn> hops;
      std::size_t n_hops = 1 + rng.uniform(6);
      for (std::size_t i = 0; i < n_hops; ++i) {
        hops.push_back(static_cast<Asn>(1 + rng.uniform(1 << 20)));
      }
      body.as_path = AsPath(std::move(hops));
      body.next_hop =
          net::IpAddr(net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())));
      body.origin = static_cast<Origin>(rng.uniform(3));
    }
    std::size_t n_comm = rng.uniform(5);
    for (std::size_t i = 0; i < n_comm; ++i) {
      body.communities.add(Community(static_cast<std::uint32_t>(rng.next_u64())));
    }
    if (rng.bernoulli(0.3)) {
      body.communities.add(LargeCommunity(
          static_cast<std::uint32_t>(rng.next_u64()),
          static_cast<std::uint32_t>(rng.next_u64()),
          static_cast<std::uint32_t>(rng.next_u64())));
    }

    net::BufWriter w;
    encode_update_body(body, w);
    net::BufReader r(w.data());
    auto decoded = decode_update_body(r);
    ASSERT_TRUE(decoded);
    // Announced prefixes may reorder across v4/v6 attribute boundaries,
    // but here everything is v4, so exact equality must hold.
    EXPECT_EQ(*decoded, body);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateCodecProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace bgpbh::bgp
