#include "routing/collectors.h"

#include <gtest/gtest.h>

#include <set>

#include "topology/generator.h"

namespace bgpbh::routing {
namespace {

struct Env {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::CustomerCones cones{graph};
  PropagationEngine engine{graph, cones, 99};
  CollectorFleet fleet = CollectorFleet::build(graph, FleetConfig{});

  BlackholeAnnouncement sample_announcement(BlackholePropagation* prop) {
    for (const auto& node : graph.nodes()) {
      if (node.tier != topology::Tier::kStub) continue;
      for (bgp::Asn p : node.providers) {
        const topology::AsNode* pn = graph.find(p);
        if (pn && pn->blackhole.offers_blackholing &&
            pn->blackhole.auth == topology::BlackholeAuth::kCustomerCone &&
            !fleet.sessions_of(p).empty()) {
          BlackholeAnnouncement ann;
          ann.user = node.asn;
          ann.prefix = net::Prefix(
              net::Ipv4Addr(node.v4_block.addr().v4().value() + 0x0201), 32);
          ann.target_providers = {p};
          ann.time = 1000;
          *prop = engine.propagate_blackhole(ann);
          return ann;
        }
      }
    }
    ADD_FAILURE() << "no provider with a collector session found";
    return {};
  }
};

Env& env() {
  static Env e;
  return e;
}

TEST(Fleet, AllPlatformsPopulated) {
  std::map<Platform, std::size_t> counts;
  for (const auto& s : env().fleet.sessions()) counts[s.platform] += 1;
  for (Platform p : kAllPlatforms) {
    EXPECT_GT(counts[p], 10u) << to_string(p);
  }
  // CDN has the most IP peers; PCH more than RIS (Table 1 structure).
  EXPECT_GT(counts[Platform::kCdn], counts[Platform::kRis]);
  EXPECT_GT(counts[Platform::kPch], counts[Platform::kRis]);
}

TEST(Fleet, PchSessionsLiveOnIxpLans) {
  for (const auto& s : env().fleet.sessions()) {
    if (s.platform != Platform::kPch) {
      // Non-PCH session IPs must NOT fall into any IXP LAN, or the
      // engine's peer-ip heuristic would misfire.
      EXPECT_EQ(env().graph.ixp_by_lan_ip(s.peer_ip), nullptr);
      continue;
    }
    ASSERT_TRUE(s.ixp_id.has_value());
    const topology::Ixp* ixp = env().graph.find_ixp(*s.ixp_id);
    ASSERT_NE(ixp, nullptr);
    EXPECT_TRUE(ixp->peering_lan.contains(s.peer_ip))
        << s.peer_ip.to_string() << " not in " << ixp->peering_lan.to_string();
  }
}

TEST(Fleet, RouteServerSessionsPresent) {
  std::size_t rs_sessions = 0;
  for (const auto& s : env().fleet.sessions()) {
    if (s.route_server_session) {
      ++rs_sessions;
      EXPECT_EQ(s.platform, Platform::kPch);
      const topology::Ixp* ixp = env().graph.find_ixp(*s.ixp_id);
      EXPECT_EQ(s.peer_asn, ixp->route_server_asn);
    }
  }
  // One RS session per PCH IXP.
  EXPECT_EQ(rs_sessions, topology::GeneratorConfig{}.num_pch_ixps);
}

TEST(Fleet, SessionsOfIndex) {
  for (const auto& s : env().fleet.sessions()) {
    auto indices = env().fleet.sessions_of(s.peer_asn);
    bool found = false;
    for (auto i : indices) {
      if (&env().fleet.sessions()[i] == &s) found = true;
    }
    EXPECT_TRUE(found);
    break;
  }
  EXPECT_TRUE(env().fleet.sessions_of(987654321).empty());
}

TEST(Observe, AnnouncementProducesUpdates) {
  BlackholePropagation prop;
  auto ann = env().sample_announcement(&prop);
  auto updates = env().fleet.observe_announcement(prop, ann, env().engine);
  ASSERT_FALSE(updates.empty());
  for (const auto& fu : updates) {
    ASSERT_EQ(fu.update.body.announced.size(), 1u);
    EXPECT_EQ(fu.update.body.announced[0], ann.prefix);
    EXPECT_GE(fu.update.time, ann.time);
    EXPECT_LE(fu.update.time, ann.time + 20);
    EXPECT_FALSE(fu.update.body.as_path.empty());
  }
  // Sorted by time.
  for (std::size_t i = 1; i < updates.size(); ++i) {
    EXPECT_LE(updates[i - 1].update.time, updates[i].update.time);
  }
}

TEST(Observe, ProviderSessionCarriesCommunity) {
  BlackholePropagation prop;
  auto ann = env().sample_announcement(&prop);
  auto updates = env().fleet.observe_announcement(prop, ann, env().engine);
  bgp::Asn provider = ann.target_providers[0];
  const topology::AsNode* pn = env().graph.find(provider);
  bool provider_update = false;
  for (const auto& fu : updates) {
    if (fu.update.peer_asn == provider) {
      provider_update = true;
      EXPECT_TRUE(fu.update.body.communities.contains(
          pn->blackhole.communities.front()));
      // Prepending-free path must be [provider, user].
      EXPECT_EQ(fu.update.body.as_path.without_prepending(),
                bgp::AsPath::of({provider, ann.user}));
    }
  }
  EXPECT_TRUE(provider_update);
}

TEST(Observe, ExplicitWithdrawal) {
  BlackholePropagation prop;
  auto ann = env().sample_announcement(&prop);
  auto updates =
      env().fleet.observe_withdrawal(prop, ann, env().engine, 2000, true);
  ASSERT_FALSE(updates.empty());
  for (const auto& fu : updates) {
    EXPECT_TRUE(fu.update.body.is_withdrawal_only());
    EXPECT_EQ(fu.update.body.withdrawn[0], ann.prefix);
  }
}

TEST(Observe, ImplicitWithdrawalDropsBlackholeCommunities) {
  BlackholePropagation prop;
  auto ann = env().sample_announcement(&prop);
  auto updates =
      env().fleet.observe_withdrawal(prop, ann, env().engine, 2000, false);
  ASSERT_FALSE(updates.empty());
  const topology::AsNode* pn = env().graph.find(ann.target_providers[0]);
  for (const auto& fu : updates) {
    EXPECT_FALSE(fu.update.body.announced.empty());
    EXPECT_FALSE(fu.update.body.communities.contains(
        pn->blackhole.communities.front()));
  }
}

TEST(Observe, WithdrawalMirrorsAnnouncementObservers) {
  BlackholePropagation prop;
  auto ann = env().sample_announcement(&prop);
  auto a = env().fleet.observe_announcement(prop, ann, env().engine);
  auto w = env().fleet.observe_withdrawal(prop, ann, env().engine, 2000, true);
  EXPECT_EQ(a.size(), w.size());
}

TEST(Table1, StatsShape) {
  auto stats = env().fleet.table1_stats(env().graph);
  ASSERT_EQ(stats.size(), kNumPlatforms);
  for (auto& [platform, st] : stats) {
    EXPECT_GT(st.ip_peers, 0u) << to_string(platform);
    EXPECT_GE(st.ip_peers, st.as_peers);
    EXPECT_GE(st.as_peers, st.unique_as_peers);
    EXPECT_GE(st.prefixes, st.unique_prefixes);
  }
  // The CDN's internal feeds dominate unique prefixes (Table 1).
  EXPECT_GT(stats[Platform::kCdn].unique_prefixes,
            stats[Platform::kRis].unique_prefixes * 5);
}

TEST(Table1, TotalsConsistent) {
  auto per = env().fleet.table1_stats(env().graph);
  auto total = env().fleet.table1_total(env().graph);
  std::size_t ip_sum = 0;
  for (auto& [p, st] : per) ip_sum += st.ip_peers;
  EXPECT_EQ(total.ip_peers, ip_sum);
  EXPECT_LE(total.as_peers, ip_sum);
  EXPECT_GE(total.prefixes, per[Platform::kCdn].prefixes);
}

TEST(Platform, Names) {
  EXPECT_EQ(to_string(Platform::kRis), "RIS");
  EXPECT_EQ(to_string(Platform::kRouteViews), "RV");
  EXPECT_EQ(to_string(Platform::kPch), "PCH");
  EXPECT_EQ(to_string(Platform::kCdn), "CDN");
}

}  // namespace
}  // namespace bgpbh::routing
