// Tests for the public AnalysisSession API (src/api/):
//   * EventQuery filter semantics and composition,
//   * batch sessions match core::Study exactly,
//   * the flagship equivalence contract: LiveGrouper's incremental §9
//     groups are byte-identical to batch correlate()+group_events()
//     across shard counts {1,3,8} x producer counts {1,3},
//   * subscription semantics under sharding: per-key delivery order,
//     no event dropped under sink backpressure, snapshot cadence,
//   * lane-consistent queries: identical result sets from live
//     per-shard lanes and the finalized store.
#include "api/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "core/study.h"
#include "stream/source.h"

namespace bgpbh::api {
namespace {

using core::PeerEvent;
using core::PrefixEvent;
using routing::FeedUpdate;
using routing::Platform;

// ---- EventQuery -------------------------------------------------------

PeerEvent make_event(const char* prefix, util::SimTime start, util::SimTime end,
                     bgp::Asn provider = 200, Platform platform = Platform::kRis,
                     bgp::Asn user = 400) {
  PeerEvent e;
  e.platform = platform;
  e.peer.peer_ip = *net::IpAddr::parse("198.51.100.1");
  e.peer.peer_asn = 100;
  e.prefix = *net::Prefix::parse(prefix);
  e.provider = core::ProviderRef{.is_ixp = false, .asn = provider, .ixp_id = 0};
  e.user = user;
  e.start = start;
  e.end = end;
  e.open = false;
  return e;
}

TEST(EventQuery, EmptyQueryMatchesEverything) {
  EXPECT_TRUE(EventQuery().matches(make_event("20.0.1.1/32", 100, 200)));
}

TEST(EventQuery, WindowUsesSharedOverlapRule) {
  PeerEvent e = make_event("20.0.1.1/32", 100, 200);
  EXPECT_TRUE(EventQuery().between(150, 160).matches(e));   // inside
  EXPECT_TRUE(EventQuery().between(200, 300).matches(e));   // end inclusive
  EXPECT_TRUE(EventQuery().between(0, 101).matches(e));     // start edge
  EXPECT_FALSE(EventQuery().between(0, 100).matches(e));    // t1 exclusive
  EXPECT_FALSE(EventQuery().between(201, 300).matches(e));  // after
  // Exactly the helper both Study::events_in and EventStore::events_in
  // filter through.
  EXPECT_EQ(EventQuery().between(0, 100).matches(e),
            core::overlaps_window(e.start, e.end, 0, 100));
}

TEST(EventQuery, ProviderPlatformPrefixUserFilters) {
  PeerEvent e = make_event("20.0.1.1/32", 100, 200, 200, Platform::kRouteViews, 400);
  EXPECT_TRUE(EventQuery().provider_asn(200).matches(e));
  EXPECT_FALSE(EventQuery().provider_asn(300).matches(e));
  EXPECT_TRUE(EventQuery().platform(Platform::kRouteViews).matches(e));
  EXPECT_FALSE(EventQuery().platform(Platform::kRis).matches(e));
  EXPECT_TRUE(EventQuery().prefix(*net::Prefix::parse("20.0.1.1/32")).matches(e));
  EXPECT_FALSE(EventQuery().prefix(*net::Prefix::parse("20.0.1.2/32")).matches(e));
  EXPECT_TRUE(EventQuery().user(400).matches(e));
  EXPECT_FALSE(EventQuery().user(500).matches(e));
}

TEST(EventQuery, SupernetAndIxpAndPredicate) {
  PeerEvent e = make_event("20.0.1.1/32", 100, 200);
  EXPECT_TRUE(EventQuery().within(*net::Prefix::parse("20.0.0.0/16")).matches(e));
  EXPECT_FALSE(EventQuery().within(*net::Prefix::parse("21.0.0.0/16")).matches(e));
  // A /32 supernet only covers itself.
  EXPECT_TRUE(EventQuery().within(*net::Prefix::parse("20.0.1.1/32")).matches(e));
  EXPECT_FALSE(EventQuery().within(*net::Prefix::parse("20.0.1.2/32")).matches(e));

  PeerEvent ixp_event = e;
  ixp_event.provider = core::ProviderRef{.is_ixp = true, .asn = 65000,
                                         .ixp_id = 7};
  EXPECT_TRUE(EventQuery().ixp(7).matches(ixp_event));
  EXPECT_FALSE(EventQuery().ixp(8).matches(ixp_event));
  EXPECT_FALSE(EventQuery().ixp(7).matches(e));  // ISP provider

  EXPECT_TRUE(EventQuery()
                  .where([](const PeerEvent& ev) { return ev.user == 400; })
                  .where([](const PeerEvent& ev) { return ev.start == 100; })
                  .matches(e));
  EXPECT_FALSE(EventQuery()
                   .where([](const PeerEvent& ev) { return ev.user == 400; })
                   .where([](const PeerEvent& ev) { return ev.start == 999; })
                   .matches(e));
}

TEST(EventQuery, FiltersCompose) {
  PeerEvent e = make_event("20.0.1.1/32", 100, 200, 200, Platform::kRouteViews);
  auto q = EventQuery()
               .between(0, 1000)
               .provider_asn(200)
               .platform(Platform::kRouteViews)
               .within(*net::Prefix::parse("20.0.0.0/8"));
  EXPECT_TRUE(q.matches(e));
  EXPECT_FALSE(q.platform(Platform::kPch).matches(e));  // one mismatch kills
}

// ---- lane-consistent store queries ------------------------------------

TEST(StoreQuery, LiveLanesAndFinalizedStoreYieldIdenticalResults) {
  stream::EventStore store(3);
  store.ingest_chunk(0, {make_event("20.0.1.1/32", 100, 200),
                         make_event("20.0.1.2/32", 150, 300)});
  store.ingest_chunk(1, {make_event("20.0.1.1/32", 400, 500, 300)});
  store.ingest_chunk(2, {make_event("20.0.1.3/32", 50, 120)});

  // [130, 400) keeps (100,200) and (150,300), drops (400,500) (t1
  // exclusive) and (50,120) (ends before t0).
  auto pred = [](const PeerEvent& e) {
    return EventQuery().between(130, 400).matches(e);
  };
  auto live = store.query(pred);
  core::canonical_sort(live);
  EXPECT_EQ(live.size(), 2u);
  EXPECT_EQ(store.count(pred), 2u);

  store.finalize();
  auto merged = store.query(pred);
  core::canonical_sort(merged);
  EXPECT_TRUE(live == merged);
  EXPECT_EQ(store.count(pred), 2u);
  // events() is legal now that finalize() ran.
  EXPECT_EQ(store.events().size(), 4u);
}

TEST(StoreQuery, ChunkListenerObservesEveryChunkInLaneOrder) {
  stream::EventStore store(2);
  std::vector<std::pair<std::size_t, std::size_t>> seen;  // (lane, size)
  store.set_chunk_listener(
      [&](std::size_t lane, std::vector<PeerEvent> chunk) {
        seen.emplace_back(lane, chunk.size());
      });
  store.ingest_chunk(0, {make_event("20.0.1.1/32", 100, 200)});
  store.ingest_chunk(1, {make_event("20.0.1.2/32", 100, 200),
                         make_event("20.0.1.3/32", 100, 200)});
  store.ingest_chunk(0, {make_event("20.0.1.4/32", 100, 200)});
  store.ingest_chunk(0, {});  // empty chunks are not observed
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(seen[1], (std::pair<std::size_t, std::size_t>{1, 2}));
  EXPECT_EQ(seen[2], (std::pair<std::size_t, std::size_t>{0, 1}));
}

// ---- session fixtures -------------------------------------------------

core::StudyConfig study_config() {
  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 4);
  config.workload.intensity_scale = 0.05;
  config.table_dump_episodes = 10;
  return config;
}

// Batch reference, computed once: the sequential study plus its batch
// §9 layers.
struct BatchReference {
  std::unique_ptr<core::Study> study;
  std::vector<PeerEvent> events;  // canonical order
  std::vector<PrefixEvent> prefix_events;
  std::vector<PrefixEvent> grouped;

  BatchReference() {
    study = std::make_unique<core::Study>(study_config());
    study->run();
    events = study->events();
    core::canonical_sort(events);
    prefix_events = core::correlate(study->events());
    grouped = core::group_events(prefix_events);
  }
};

const BatchReference& reference() {
  static BatchReference ref;
  return ref;
}

// Counting sink: keeps the dispatcher path active and records totals.
class CountingSink : public EventSink {
 public:
  void on_event_closed(const PeerEvent&) override { ++events_; }
  void on_group_updated(const PrefixEvent&) override { ++groups_; }
  void on_snapshot(const stream::EventStore::Snapshot& snap) override {
    ++snapshots_;
    last_snapshot_total_ = snap.total_events;
  }
  std::size_t events() const { return events_; }
  std::size_t groups() const { return groups_; }
  std::size_t snapshots() const { return snapshots_; }
  std::size_t last_snapshot_total() const { return last_snapshot_total_; }

 private:
  std::size_t events_ = 0;
  std::size_t groups_ = 0;
  std::size_t snapshots_ = 0;
  std::size_t last_snapshot_total_ = 0;
};

// ---- batch mode -------------------------------------------------------

TEST(AnalysisSession, BatchSessionMatchesStudy) {
  const auto& ref = reference();
  SessionConfig config;
  config.mode = SessionConfig::Mode::kBatch;
  config.study = study_config();
  AnalysisSession session(config);
  CountingSink sink;
  session.subscribe(sink);
  session.run();

  EXPECT_TRUE(session.events() == ref.events);
  EXPECT_TRUE(session.prefix_events() == ref.prefix_events);
  EXPECT_TRUE(session.grouped_events() == ref.grouped);
  EXPECT_EQ(session.stats(), ref.study->engine_stats());

  // The sink saw every closed event, every group update, and a final
  // snapshot carrying the full totals.
  EXPECT_EQ(sink.events(), ref.events.size());
  EXPECT_EQ(sink.groups(), ref.events.size());
  EXPECT_GE(sink.snapshots(), 1u);
  EXPECT_EQ(sink.last_snapshot_total(), ref.events.size());
  EXPECT_EQ(session.snapshot().total_events, ref.events.size());
}

// ---- the flagship equivalence contract --------------------------------

// Runs a live-feed session over the study replay stream with the given
// shard/producer counts (peer-key-hash partition across producer
// threads, the order-preserving MPMC shape) and returns it closed.
std::unique_ptr<AnalysisSession> run_live(std::size_t shards,
                                          std::size_t producers,
                                          EventSink* sink,
                                          SessionConfig base = {}) {
  base.mode = SessionConfig::Mode::kLiveFeed;
  base.study = study_config();
  base.num_shards = shards;
  base.num_producers = producers;
  base.queue_capacity = 64;  // small bound: exercises backpressure
  base.drain_batch = 32;
  auto session = std::make_unique<AnalysisSession>(base);
  if (sink) session->subscribe(*sink);
  auto updates = session->study().replay_updates();
  if (producers <= 1) {
    stream::VectorSource source(updates);
    session->feed(source);
  } else {
    session->start();
    std::vector<std::vector<FeedUpdate>> parts(producers);
    for (const auto& u : updates) {
      bgp::PeerKey peer{u.update.peer_ip, u.update.peer_asn};
      parts[bgp::PeerKeyHash{}(peer) % producers].push_back(u);
    }
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&session, &parts, p] {
        for (const auto& u : parts[p]) session->push(u, p);
        session->flush(p);
      });
    }
    for (auto& t : threads) t.join();
  }
  session->close(study_config().window_end);
  return session;
}

TEST(AnalysisSession, LiveGrouperMatchesBatchGroupingAcrossShardsAndProducers) {
  const auto& ref = reference();
  for (std::size_t shards : {1u, 3u, 8u}) {
    for (std::size_t producers : {1u, 3u}) {
      CountingSink sink;
      auto session = run_live(shards, producers, &sink);
      // Incremental §9 layers == batch correlate()+group_events(),
      // byte for byte (field-wise PrefixEvent equality).
      EXPECT_TRUE(session->prefix_events() == ref.prefix_events)
          << "shards=" << shards << " producers=" << producers;
      EXPECT_TRUE(session->grouped_events() == ref.grouped)
          << "shards=" << shards << " producers=" << producers;
      // And the same peer-event set + engine stats underneath.
      EXPECT_TRUE(session->events() == ref.events)
          << "shards=" << shards << " producers=" << producers;
      EXPECT_EQ(session->stats(), ref.study->engine_stats());
      EXPECT_EQ(sink.events(), ref.events.size());
    }
  }
}

TEST(AnalysisSession, ZeroSinkSessionServesIdenticalQueriesAndGroups) {
  const auto& ref = reference();
  // No sinks: no dispatcher, no store listener — §9 layers computed on
  // demand from the lane-consistent store scan instead.
  auto session = run_live(3, 1, nullptr);
  EXPECT_TRUE(session->events() == ref.events);
  EXPECT_TRUE(session->prefix_events() == ref.prefix_events);
  EXPECT_TRUE(session->grouped_events() == ref.grouped);

  // Queries serve identical results to a batch session over the same
  // config (the one-surface contract).
  SessionConfig batch_config;
  batch_config.mode = SessionConfig::Mode::kBatch;
  batch_config.study = study_config();
  AnalysisSession batch(batch_config);
  batch.run();
  auto window = EventQuery().between(study_config().window_start + util::kDay,
                                     study_config().window_start + 2 * util::kDay);
  EXPECT_TRUE(session->events(window) == batch.events(window));
  EXPECT_EQ(session->count(window), batch.count(window));
  auto ris = EventQuery().platform(Platform::kRis);
  EXPECT_TRUE(session->events(ris) == batch.events(ris));
}

// ---- subscription semantics under sharding ----------------------------

// Slow sink with a tiny dispatch queue: ingest must stall, not drop.
class SlowRecordingSink : public EventSink {
 public:
  void on_event_closed(const PeerEvent& e) override {
    recorded_.push_back(e);
    if (recorded_.size() % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
  const std::vector<PeerEvent>& recorded() const { return recorded_; }

 private:
  std::vector<PeerEvent> recorded_;  // dispatch thread only
};

TEST(AnalysisSession, NoDropUnderBackpressureAndPerKeyDeliveryOrder) {
  const auto& ref = reference();
  SessionConfig config;
  config.sink_queue_chunks = 2;  // force dispatch backpressure
  config.drain_batch = 8;        // many small chunks
  SlowRecordingSink sink;
  auto session = run_live(3, 1, &sink, config);

  // Exactly the full event set arrived — nothing dropped, nothing
  // duplicated — despite the sink stalling the dispatch queue.
  std::vector<PeerEvent> recorded = sink.recorded();
  core::canonical_sort(recorded);
  EXPECT_TRUE(recorded == ref.events);

  // Per (peer, prefix) key, delivery follows close order: one key is
  // owned by one shard, whose lane preserves drain order end to end.
  std::map<std::tuple<std::string, bgp::Asn, std::string>, util::SimTime> last;
  for (const auto& e : sink.recorded()) {
    auto key = std::make_tuple(e.peer.peer_ip.to_string(), e.peer.peer_asn,
                               e.prefix.to_string());
    auto it = last.find(key);
    if (it != last.end()) {
      EXPECT_LE(it->second, e.end) << "out-of-order delivery within a key";
    }
    last[key] = e.end;
  }
}

// ---- persistence: the segment-log equivalence grid --------------------

// For every (shards, producers) cell, EventQuery results must be
// byte-identical from (a) the in-memory finalized store of a live
// session that spilled to disk, (b) a kReopen session serving the same
// directory, and (c) a merged live+disk view: a resume session over
// the same directory ingesting a second, time-shifted stream.
TEST(AnalysisSession, PersistenceGridMemoryDiskAndMergedViewsIdentical) {
  namespace fs = std::filesystem;
  const auto& ref = reference();

  // The shifted second stream's expected event set, computed once from
  // a non-persisting live session (the event set is shard-invariant —
  // the grid test above proves that).
  const util::SimTime kShift = 40 * util::kDay;
  std::vector<PeerEvent> shifted_ref;
  {
    SessionConfig config;
    config.mode = SessionConfig::Mode::kLiveFeed;
    config.study = study_config();
    config.num_shards = 2;
    AnalysisSession session(config);
    auto updates = session.study().replay_updates();
    for (auto& u : updates) u.update.time += kShift;
    stream::VectorSource source(updates);
    session.feed(source);
    session.close(study_config().window_end + kShift);
    shifted_ref = session.events();
  }
  ASSERT_FALSE(shifted_ref.empty());

  for (std::size_t shards : {1u, 3u, 8u}) {
    for (std::size_t producers : {1u, 3u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " producers=" + std::to_string(producers));
      std::string dir =
          (fs::temp_directory_path() /
           ("bgpbh_api_persist_" + std::to_string(shards) + "_" +
            std::to_string(producers)))
              .string();
      fs::remove_all(dir);

      // (a) live session spilling every sealed chunk to the log.
      SessionConfig base;
      base.persist_dir = dir;
      base.segment.max_segment_bytes = 32 * 1024;  // force several segments
      auto session = run_live(shards, producers, nullptr, base);
      auto mem = session->events();
      EXPECT_TRUE(mem == ref.events);
      EXPECT_EQ(session->events_persisted(), mem.size());
      EXPECT_GE(session->segments_sealed(), 2u);

      // (b) reopened from disk: identical full and filtered queries.
      SessionConfig reopen_config;
      reopen_config.mode = SessionConfig::Mode::kReopen;
      reopen_config.persist_dir = dir;
      AnalysisSession reopened(reopen_config);
      EXPECT_TRUE(reopened.events() == mem);
      auto window =
          EventQuery().between(study_config().window_start + util::kDay,
                               study_config().window_start + 2 * util::kDay);
      EXPECT_TRUE(reopened.events(window) == session->events(window));
      EXPECT_EQ(reopened.count(window), session->count(window));
      auto ris = EventQuery().platform(Platform::kRis);
      EXPECT_TRUE(reopened.events(ris) == session->events(ris));
      EXPECT_EQ(reopened.snapshot().total_events, mem.size());
      EXPECT_TRUE(reopened.grouped_events() == session->grouped_events());

      // (c) merged live+disk: a resume session over the same directory
      // ingests the shifted stream; queries span both halves.
      SessionConfig resume_config;
      resume_config.mode = SessionConfig::Mode::kLiveFeed;
      resume_config.study = study_config();
      resume_config.num_shards = shards;
      resume_config.persist_dir = dir;
      resume_config.resume = true;
      resume_config.segment.max_segment_bytes = 32 * 1024;
      AnalysisSession resumed(resume_config);
      auto updates = resumed.study().replay_updates();
      for (auto& u : updates) u.update.time += kShift;
      stream::VectorSource source(updates);
      resumed.feed(source);
      resumed.close(study_config().window_end + kShift);

      std::vector<PeerEvent> expect = mem;
      expect.insert(expect.end(), shifted_ref.begin(), shifted_ref.end());
      core::canonical_sort(expect);
      EXPECT_TRUE(resumed.events() == expect);
      EXPECT_EQ(resumed.snapshot().total_events, expect.size());
      // Filtered merged queries == the same filter over the merged
      // set (both windows straddle the disk/live boundary: table-dump
      // events carry start == 0 and overlap every window, from either
      // half — the shared overlap rule must treat both halves alike).
      for (const auto& q :
           {window, EventQuery().between(study_config().window_start + kShift,
                                         study_config().window_end + kShift)}) {
        std::vector<PeerEvent> expect_match;
        for (const auto& e : expect) {
          if (q.matches(e)) expect_match.push_back(e);
        }
        EXPECT_TRUE(resumed.events(q) == expect_match);
        EXPECT_EQ(resumed.count(q), expect_match.size());
      }

      // Restart-survival across BOTH sessions: a final reopen sees the
      // union, because the resume session appended its own segments.
      AnalysisSession reopened_again(reopen_config);
      EXPECT_TRUE(reopened_again.events() == expect);

      fs::remove_all(dir);
    }
  }
}

TEST(AnalysisSession, BatchSessionPersistsAndReopens) {
  namespace fs = std::filesystem;
  const auto& ref = reference();
  std::string dir =
      (fs::temp_directory_path() / "bgpbh_api_persist_batch").string();
  fs::remove_all(dir);
  SessionConfig config;
  config.mode = SessionConfig::Mode::kBatch;
  config.study = study_config();
  config.persist_dir = dir;
  AnalysisSession session(config);
  session.run();
  EXPECT_EQ(session.events_persisted(), ref.events.size());

  SessionConfig reopen_config;
  reopen_config.mode = SessionConfig::Mode::kReopen;
  reopen_config.persist_dir = dir;
  AnalysisSession reopened(reopen_config);
  EXPECT_TRUE(reopened.events() == ref.events);
  fs::remove_all(dir);
}

TEST(AnalysisSession, SnapshotCadenceAndFinalSnapshot) {
  const auto& ref = reference();
  SessionConfig config;
  config.snapshot_every_events = 16;
  CountingSink sink;
  auto session = run_live(2, 1, &sink, config);
  // Cadence snapshots during the run plus the final one at close().
  EXPECT_GE(sink.snapshots(), 1 + ref.events.size() / 16);
  EXPECT_EQ(sink.last_snapshot_total(), ref.events.size());
}

// ---- lifecycle hardening ----------------------------------------------
// Misuse is defined behavior: wrong-mode entry points throw
// std::logic_error (loud in release builds too), while a closed
// session quietly refuses work.

TEST(AnalysisSessionLifecycle, WrongModeEntryPointsThrow) {
  SessionConfig batch_config;
  batch_config.mode = SessionConfig::Mode::kBatch;
  batch_config.study = study_config();
  AnalysisSession batch(batch_config);
  FeedUpdate update;
  EXPECT_THROW(batch.start(), std::logic_error);
  EXPECT_THROW(batch.push(update), std::logic_error);
  EXPECT_THROW(batch.flush(), std::logic_error);
  EXPECT_THROW(batch.close(0), std::logic_error);
  stream::VectorSource empty_source(std::vector<FeedUpdate>{});
  EXPECT_THROW(batch.feed(empty_source), std::logic_error);
  batch.run();  // still usable after the rejected calls

  SessionConfig live_config;
  live_config.mode = SessionConfig::Mode::kLiveFeed;
  live_config.study = study_config();
  AnalysisSession live(live_config);
  EXPECT_THROW(live.run(), std::logic_error);
  live.close(study_config().window_end);  // still closeable
}

TEST(AnalysisSessionLifecycle, DoubleStartAndDoubleCloseAreNoOps) {
  SessionConfig config;
  config.mode = SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = 2;
  AnalysisSession session(config);
  session.start();
  session.start();  // idempotent
  auto updates = session.study().replay_updates();
  stream::VectorSource source(updates);
  session.feed(source);
  session.close(study_config().window_end);
  std::size_t events = session.events().size();
  session.close(study_config().window_end);  // idempotent
  EXPECT_TRUE(session.closed());
  EXPECT_EQ(session.events().size(), events);
}

TEST(AnalysisSessionLifecycle, ClosedSessionRefusesWorkQuietly) {
  SessionConfig config;
  config.mode = SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = 2;
  AnalysisSession session(config);
  auto updates = session.study().replay_updates();
  {
    stream::VectorSource source(updates);
    session.feed(source);
  }
  session.close(study_config().window_end);
  std::size_t events = session.events().size();

  // push()/feed() after close: nothing accepted, nothing restarted.
  EXPECT_FALSE(session.push(updates.front()));
  stream::VectorSource again(updates);
  EXPECT_EQ(session.feed(again), 0u);
  session.flush();   // no-op
  session.start();   // no-op
  EXPECT_EQ(session.events().size(), events);
  EXPECT_EQ(session.updates_pushed(), updates.size());
}

TEST(AnalysisSessionLifecycle, CloseBeforeAnyPushYieldsAnEmptyCleanSession) {
  SessionConfig config;
  config.mode = SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  // No initial table dump: its §4.2 episodes would close events of
  // their own, and this test wants a genuinely empty session.
  config.study.table_dump_episodes = 0;
  config.num_shards = 2;
  CountingSink sink;
  AnalysisSession session(config);
  session.subscribe(sink);
  session.close(study_config().window_end);
  EXPECT_TRUE(session.closed());
  EXPECT_TRUE(session.events().empty());
  // The subscriber still got its final (empty) snapshot.
  EXPECT_GE(sink.snapshots(), 1u);
  EXPECT_EQ(sink.last_snapshot_total(), 0u);
  EXPECT_EQ(session.health().state, HealthState::kHealthy);
}

TEST(AnalysisSessionLifecycle, ReopenRunIsANoOp) {
  namespace fs = std::filesystem;
  const auto& ref = reference();
  std::string dir =
      (fs::temp_directory_path() / "bgpbh_api_lifecycle_reopen").string();
  fs::remove_all(dir);
  {
    SessionConfig config;
    config.mode = SessionConfig::Mode::kBatch;
    config.study = study_config();
    config.persist_dir = dir;
    AnalysisSession session(config);
    session.run();
  }
  SessionConfig reopen_config;
  reopen_config.mode = SessionConfig::Mode::kReopen;
  reopen_config.persist_dir = dir;
  AnalysisSession reopened(reopen_config);
  reopened.run();  // documented no-op: born closed and queryable
  EXPECT_TRUE(reopened.closed());
  EXPECT_TRUE(reopened.events() == ref.events);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace bgpbh::api
