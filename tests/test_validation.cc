// §5.2 validation paths: looking glasses reveal blackholing that no
// collector sees (the Cogent / Pirate-Bay case), and the engine's
// inferences agree with the looking-glass ground state.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "dictionary/dictionary.h"
#include "routing/collectors.h"
#include "routing/looking_glass.h"
#include "topology/generator.h"

namespace bgpbh {
namespace {

struct Env {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::CustomerCones cones{graph};
  topology::Registry registry = topology::Registry::build(graph, 0.72, 0.95, 42);
  dictionary::Corpus corpus = dictionary::generate_corpus(graph, 42);
  dictionary::BlackholeDictionary dict =
      dictionary::build_documented_dictionary(corpus, registry);
  routing::PropagationEngine engine{graph, cones, 99};
  routing::CollectorFleet fleet =
      routing::CollectorFleet::build(graph, routing::FleetConfig{});

  // Populate a looking-glass directory from a propagation result: the
  // per-AS route state the study records out of band.
  routing::LookingGlassDirectory glasses_for(
      const routing::BlackholePropagation& prop,
      const routing::BlackholeAnnouncement& ann) {
    routing::LookingGlassDirectory dir;
    for (const auto& holder : prop.holders) {
      if (holder.via_route_server && holder.holder != ann.user) continue;
      auto& lg = dir.add(holder.holder, /*supports_community_queries=*/true);
      routing::LgRoute route;
      route.prefix = ann.prefix;
      route.as_path = holder.path;
      route.communities = holder.communities;
      route.installed = ann.time;
      lg.install(route);
    }
    return dir;
  }
};

Env& env() {
  static Env e;
  return e;
}

// Find a provider with NO collector session anywhere: blackholing at it
// (tailored, not bundled) is invisible to every collector — but its
// looking glass still shows it.
TEST(Validation, LookingGlassRevealsCollectorInvisibleBlackholing) {
  const topology::AsNode* provider = nullptr;
  bgp::Asn user = 0;
  for (const auto& node : env().graph.nodes()) {
    if (!node.blackhole.offers_blackholing) continue;
    if (node.blackhole.auth != topology::BlackholeAuth::kCustomerCone) continue;
    if (!env().fleet.sessions_of(node.asn).empty()) continue;
    for (bgp::Asn cust : node.customers) {
      // The user must also lack collector sessions, else its own feed
      // reveals the event.
      if (env().fleet.sessions_of(cust).empty()) {
        provider = &node;
        user = cust;
        break;
      }
    }
    if (provider) break;
  }
  if (!provider) GTEST_SKIP() << "fleet covers every provider in this seed";

  const topology::AsNode* unode = env().graph.find(user);
  routing::BlackholeAnnouncement ann;
  ann.user = user;
  ann.prefix = net::Prefix(
      net::Ipv4Addr(unode->v4_block.addr().v4().value() + 0x0BAD), 32);
  ann.target_providers = {provider->asn};
  ann.bundle = false;  // tailored: only the provider hears it
  ann.time = 1000;
  auto prop = env().engine.propagate_blackhole(ann);
  ASSERT_FALSE(prop.activated_providers.empty());

  // No collector records anything.
  auto updates = env().fleet.observe_announcement(prop, ann, env().engine);
  std::size_t visible = 0;
  for (const auto& fu : updates) {
    if (fu.update.peer_asn == provider->asn || fu.update.peer_asn == user)
      ++visible;
  }
  EXPECT_EQ(visible, 0u);

  // The provider's looking glass does: query by community (the
  // Periscope capability the paper uses for the Cogent case).
  auto glasses = env().glasses_for(prop, ann);
  routing::LookingGlass* lg = glasses.find(provider->asn);
  ASSERT_NE(lg, nullptr);
  auto hits = lg->query_community(provider->blackhole.communities.front());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].prefix, ann.prefix);
}

// Engine inferences must agree with looking-glass state for events that
// ARE collector-visible: every inferred ISP provider's glass holds the
// blackholed route with the matching community.
TEST(Validation, InferencesAgreeWithLookingGlasses) {
  // A user whose providers offer blackholing and that has sessions.
  const topology::AsNode* user = nullptr;
  for (const auto& node : env().graph.nodes()) {
    if (node.tier != topology::Tier::kStub) continue;
    if (env().fleet.sessions_of(node.asn).empty()) continue;
    bool ok = false;
    for (bgp::Asn p : node.providers) {
      const topology::AsNode* pn = env().graph.find(p);
      if (pn && pn->blackhole.offers_blackholing &&
          pn->blackhole.auth == topology::BlackholeAuth::kCustomerCone)
        ok = true;
    }
    if (ok) {
      user = &node;
      break;
    }
  }
  ASSERT_NE(user, nullptr);

  routing::BlackholeAnnouncement ann;
  ann.user = user->asn;
  ann.prefix = net::Prefix(
      net::Ipv4Addr(user->v4_block.addr().v4().value() + 0x0EEF), 32);
  for (bgp::Asn p : user->providers) {
    const topology::AsNode* pn = env().graph.find(p);
    if (pn && pn->blackhole.offers_blackholing) ann.target_providers.push_back(p);
  }
  ann.bundle = true;
  ann.time = 5000;
  auto prop = env().engine.propagate_blackhole(ann);
  auto glasses = env().glasses_for(prop, ann);

  core::InferenceEngine inference(env().dict, env().registry);
  for (const auto& fu : env().fleet.observe_announcement(prop, ann, env().engine)) {
    inference.process(fu.platform, fu.update);
  }
  inference.finish(9000);

  std::size_t checked = 0;
  for (const auto& event : inference.events()) {
    if (event.provider.is_ixp) continue;
    if (std::find(prop.activated_providers.begin(),
                  prop.activated_providers.end(),
                  event.provider.asn) == prop.activated_providers.end())
      continue;  // bundled non-activated sighting: no glass state expected
    routing::LookingGlass* lg = glasses.find(event.provider.asn);
    ASSERT_NE(lg, nullptr) << event.provider.to_string();
    auto route = lg->query_prefix(event.prefix);
    ASSERT_TRUE(route.has_value()) << event.provider.to_string();
    const topology::AsNode* pn = env().graph.find(event.provider.asn);
    EXPECT_TRUE(route->communities.contains(pn->blackhole.communities.front()));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

// The §5.2 headline: collector-based inference is a LOWER BOUND — over
// a batch of tailored (unbundled) announcements, the set of events the
// collectors see is a strict subset of the looking-glass truth.
TEST(Validation, CollectorInferenceIsALowerBound) {
  std::size_t lg_events = 0, collector_events = 0;
  util::Rng rng(7);
  const auto& nodes = env().graph.nodes();
  for (int i = 0; i < 150; ++i) {
    const auto& node = nodes[rng.uniform(nodes.size())];
    if (node.tier != topology::Tier::kStub || node.providers.empty()) continue;
    bgp::Asn provider = 0;
    for (bgp::Asn p : node.providers) {
      const topology::AsNode* pn = env().graph.find(p);
      if (pn && pn->blackhole.offers_blackholing &&
          pn->blackhole.auth == topology::BlackholeAuth::kCustomerCone)
        provider = p;
    }
    if (!provider) continue;
    routing::BlackholeAnnouncement ann;
    ann.user = node.asn;
    ann.prefix = net::Prefix(
        net::Ipv4Addr(node.v4_block.addr().v4().value() + 0x0C00 +
                      static_cast<std::uint32_t>(i)),
        32);
    ann.target_providers = {provider};
    ann.bundle = false;
    ann.time = 1000 + i;
    auto prop = env().engine.propagate_blackhole(ann);
    if (prop.activated_providers.empty()) continue;
    ++lg_events;  // the provider's glass would always show it
    auto updates = env().fleet.observe_announcement(prop, ann, env().engine);
    if (!updates.empty()) ++collector_events;
  }
  ASSERT_GT(lg_events, 20u);
  EXPECT_LE(collector_events, lg_events);
  EXPECT_LT(collector_events, lg_events)
      << "some tailored blackholing must stay collector-invisible";
}

}  // namespace
}  // namespace bgpbh
