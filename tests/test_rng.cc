#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bgpbh::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformZeroBound) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformOneBound) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

class UniformBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformBoundTest, StaysBelowBound) {
  Rng rng(GetParam() * 31 + 5);
  std::uint64_t bound = GetParam();
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST_P(UniformBoundTest, CoversSmallRangeFully) {
  std::uint64_t bound = GetParam();
  if (bound > 64) GTEST_SKIP() << "coverage check only for small bounds";
  Rng rng(GetParam());
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 20000; ++i) seen.insert(rng.uniform(bound));
  EXPECT_EQ(seen.size(), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformBoundTest,
                         ::testing::Values(2, 3, 7, 10, 64, 1000, 1u << 20,
                                           (1ULL << 40) + 17));

TEST(Rng, UniformRangeInclusive) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ZipfWithinRange) {
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(rng.zipf(100, 1.0), 100u);
    EXPECT_LT(rng.zipf(100, 0.8), 100u);
  }
}

TEST(Rng, ZipfSkewsTowardZero) {
  Rng rng(31);
  std::size_t low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(1000, 1.0) < 10) ++low;
  }
  // With s=1, ranks 0..9 hold a large share of the mass.
  EXPECT_GT(static_cast<double>(low) / n, 0.25);
}

TEST(Rng, ZipfDegenerate) {
  Rng rng(37);
  EXPECT_EQ(rng.zipf(0, 1.0), 0u);
  EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(Rng, WeightedRespectsZeros) {
  Rng rng(41);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted(w), 1u);
  }
}

TEST(Rng, WeightedFrequency) {
  Rng rng(43);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.weighted(w) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(47);
  auto sample = rng.sample_indices(100, 30);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsToPopulation) {
  Rng rng(53);
  auto sample = rng.sample_indices(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, SampleIndicesEmpty) {
  Rng rng(59);
  EXPECT_TRUE(rng.sample_indices(0, 3).empty());
  EXPECT_TRUE(rng.sample_indices(10, 0).empty());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(61);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIsStable) {
  Rng a(71), b(71);
  Rng fa = a.fork(5), fb = b.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ForkLabelsDiffer) {
  Rng a(73);
  Rng f1 = a.fork(1), f2 = a.fork(2);
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(79), b(79);
  (void)a.fork(9);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace bgpbh::util
