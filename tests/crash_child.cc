// Crash-harness child for tests/test_recovery.cc — NOT a gtest.
//
// Runs the deterministic study workload through a live session with
// checkpointing enabled, and SIGKILLs itself mid-stream at a
// configured push count (no destructors, no flushes: the hardest
// crash the OS can deliver).  The parent test re-runs the binary
// against the same directory until a run survives to close(), then
// asserts the persisted event set is byte-identical to an uncrashed
// baseline — across every crash point.
//
//   crash_child <dir> <shards> <producers> <checkpoint_every>
//               <checkpoint_at> <kill_after>
//
//   checkpoint_at  explicit checkpoint_now() once this many updates
//                  have been pushed (0 = cadence only)
//   kill_after     raise SIGKILL once this many updates have been
//                  pushed (0 = run to completion and exit 0)
//
// On a completed run prints "pushed=<n> events=<n>" so the parent can
// sanity-check the replay actually deduplicated.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "bgp/rib.h"
#include "stream/pipeline.h"

namespace {

// Must match study_config() in tests/test_recovery.cc exactly: the
// baseline and every child run replay the identical update stream.
bgpbh::core::StudyConfig study_config() {
  bgpbh::core::StudyConfig config;
  config.window_start = bgpbh::util::from_date(2017, 3, 1);
  config.window_end = bgpbh::util::from_date(2017, 3, 3);
  config.workload.intensity_scale = 0.05;
  config.table_dump_episodes = 0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 7) {
    std::fprintf(stderr,
                 "usage: crash_child <dir> <shards> <producers> "
                 "<checkpoint_every> <checkpoint_at> <kill_after>\n");
    return 2;
  }
  const std::string dir = argv[1];
  const std::size_t shards = std::strtoul(argv[2], nullptr, 10);
  const std::size_t producers = std::strtoul(argv[3], nullptr, 10);
  const std::uint64_t checkpoint_every = std::strtoull(argv[4], nullptr, 10);
  const std::uint64_t checkpoint_at = std::strtoull(argv[5], nullptr, 10);
  const std::uint64_t kill_after = std::strtoull(argv[6], nullptr, 10);

  bgpbh::api::SessionConfig config;
  config.mode = bgpbh::api::SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = shards;
  config.num_producers = producers;
  config.queue_capacity = 64;
  config.drain_batch = 32;
  config.persist_dir = dir;
  config.recover = true;
  config.checkpoint_every = checkpoint_every;
  bgpbh::api::AnalysisSession session(config);

  // The full deterministic stream, partitioned by peer key — the same
  // producer always carries the same peers, so per-producer order (the
  // pipeline's ordering unit) is identical across runs.
  const auto updates = session.study().replay_updates();
  std::vector<std::vector<bgpbh::routing::FeedUpdate>> parts(producers);
  for (const auto& u : updates) {
    bgpbh::bgp::PeerKey peer{u.update.peer_ip, u.update.peer_asn};
    parts[bgpbh::bgp::PeerKeyHash{}(peer) % producers].push_back(u);
  }

  session.start();
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<bool> checkpointed{false};
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (const auto& u : parts[p]) {
        session.push(u, p);
        const std::uint64_t n =
            pushed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (checkpoint_at != 0 && n >= checkpoint_at &&
            !checkpointed.exchange(true)) {
          session.checkpoint_now();
        }
        if (kill_after != 0 && n >= kill_after) {
          // The point of the harness: die with no cleanup whatsoever.
          raise(SIGKILL);
        }
      }
      session.flush(p);
    });
  }
  for (auto& t : threads) t.join();
  session.close(study_config().window_end);
  std::printf("pushed=%llu events=%zu\n",
              static_cast<unsigned long long>(
                  pushed.load(std::memory_order_relaxed)),
              session.events().size());
  return 0;
}
