#include "bgp/mrt.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/rng.h"

namespace bgpbh::bgp::mrt {
namespace {

net::Prefix P(const char* s) { return *net::Prefix::parse(s); }

ObservedUpdate sample_update(util::SimTime t = 1488326400) {
  ObservedUpdate u;
  u.time = t;
  u.peer_ip = *net::IpAddr::parse("198.51.100.7");
  u.peer_asn = 3356;
  u.collector_id = 4;
  u.body.announced.push_back(P("130.149.1.1/32"));
  u.body.as_path = AsPath::of({3356, 64500});
  u.body.next_hop = *net::IpAddr::parse("198.51.100.7");
  u.body.communities.add(Community(3356, 9999));
  return u;
}

TEST(MrtUpdates, RoundTripSingle) {
  net::BufWriter w;
  encode_update(sample_update(), w);
  auto decoded = decode_updates(w.data());
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0], sample_update());
}

TEST(MrtUpdates, RoundTripStream) {
  net::BufWriter w;
  std::vector<ObservedUpdate> updates;
  for (int i = 0; i < 50; ++i) {
    ObservedUpdate u = sample_update(1488326400 + i);
    u.peer_asn = 100 + static_cast<Asn>(i);
    updates.push_back(u);
    encode_update(u, w);
  }
  auto decoded = decode_updates(w.data());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, updates);
}

TEST(MrtUpdates, Ipv6PeerAddress) {
  ObservedUpdate u = sample_update();
  u.peer_ip = *net::IpAddr::parse("2001:7f8::5");
  net::BufWriter w;
  encode_update(u, w);
  auto decoded = decode_updates(w.data());
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0].peer_ip, u.peer_ip);
}

TEST(MrtUpdates, SkipsUnknownRecordTypes) {
  net::BufWriter w;
  // An unknown MRT record (type 99) between two updates.
  encode_update(sample_update(1), w);
  w.u32(5);   // ts
  w.u16(99);  // type
  w.u16(0);   // subtype
  w.u32(3);   // length
  w.u8(1);
  w.u8(2);
  w.u8(3);
  encode_update(sample_update(2), w);
  auto decoded = decode_updates(w.data());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->size(), 2u);
}

TEST(MrtUpdates, TruncatedFramingFails) {
  net::BufWriter w;
  encode_update(sample_update(), w);
  std::vector<std::uint8_t> cut(w.data().begin(), w.data().end() - 3);
  EXPECT_FALSE(decode_updates(cut));
}

TEST(MrtTableDump, RoundTrip) {
  TableDump dump;
  dump.time = 1488326400;
  dump.collector_name = "rrc00";
  for (int i = 0; i < 10; ++i) {
    TableDump::Entry e;
    e.peer.peer_ip = net::IpAddr(net::Ipv4Addr(0xC6336407u + (i % 3)));
    e.peer.peer_asn = 100 + static_cast<Asn>(i % 3);
    e.prefix = net::Prefix(net::IpAddr(net::Ipv4Addr(0x14000000u + (i << 16))), 16);
    e.as_path = AsPath::of({e.peer.peer_asn, 500, 600});
    e.communities.add(Community(500, 666));
    e.next_hop = e.peer.peer_ip;
    e.originated = 1488000000 + i;
    dump.entries.push_back(e);
  }
  net::BufWriter w;
  encode_table_dump(dump, w);
  auto decoded = decode_table_dump(w.data());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->collector_name, "rrc00");
  EXPECT_EQ(decoded->time, dump.time);
  ASSERT_EQ(decoded->entries.size(), dump.entries.size());
  // Entries are grouped per prefix; compare as multisets keyed by
  // (peer, prefix).
  auto key = [](const TableDump::Entry& e) {
    return std::make_tuple(e.peer.peer_asn, e.prefix.to_string(),
                           e.as_path.to_string(), e.communities.to_string());
  };
  std::multiset<std::tuple<Asn, std::string, std::string, std::string>> a, b;
  for (const auto& e : dump.entries) a.insert(key(e));
  for (const auto& e : decoded->entries) b.insert(key(e));
  EXPECT_EQ(a, b);
}

TEST(MrtTableDump, Ipv6Entries) {
  TableDump dump;
  dump.time = 7;
  dump.collector_name = "x";
  TableDump::Entry e;
  e.peer.peer_ip = *net::IpAddr::parse("2001:7f8::9");
  e.peer.peer_asn = 42;
  e.prefix = P("2a00:1::/32");
  e.as_path = AsPath::of({42, 64500});
  dump.entries.push_back(e);
  net::BufWriter w;
  encode_table_dump(dump, w);
  auto decoded = decode_table_dump(w.data());
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->entries.size(), 1u);
  EXPECT_EQ(decoded->entries[0].prefix, e.prefix);
  EXPECT_EQ(decoded->entries[0].peer.peer_ip, e.peer.peer_ip);
}

TEST(MrtTableDump, RibWithoutPeerIndexFails) {
  // Write only a RIB record (subtype 2) with no PEER_INDEX_TABLE.
  net::BufWriter w;
  w.u32(0);
  w.u16(kTypeTableDumpV2);
  w.u16(kSubtypeRibIpv4Unicast);
  w.u32(7);
  w.u32(0);  // seq
  w.u8(8);   // prefix len
  w.u8(10);  // prefix byte
  w.u16(0);  // entry count
  EXPECT_FALSE(decode_table_dump(w.data()));
}

TEST(MrtFiles, WriteReadRoundTrip) {
  net::BufWriter w;
  encode_update(sample_update(), w);
  std::string path = ::testing::TempDir() + "/bgpbh_mrt_test.mrt";
  ASSERT_TRUE(write_file(path, w.data()));
  auto bytes = read_file(path);
  ASSERT_TRUE(bytes);
  EXPECT_EQ(*bytes, w.data());
  auto decoded = decode_updates(*bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->size(), 1u);
  std::remove(path.c_str());
}

TEST(MrtFiles, MissingFile) {
  EXPECT_FALSE(read_file("/nonexistent/path/x.mrt"));
}

}  // namespace
}  // namespace bgpbh::bgp::mrt
