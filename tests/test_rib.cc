#include "bgp/rib.h"

#include <gtest/gtest.h>

namespace bgpbh::bgp {
namespace {

net::Prefix P(const char* s) { return *net::Prefix::parse(s); }

ObservedUpdate announce(const char* prefix, Asn peer, util::SimTime t) {
  ObservedUpdate u;
  u.time = t;
  u.peer_ip = net::IpAddr(net::Ipv4Addr(peer));
  u.peer_asn = peer;
  u.body.announced.push_back(P(prefix));
  u.body.as_path = AsPath::of({peer, 64500});
  return u;
}

ObservedUpdate withdraw(const char* prefix, Asn peer, util::SimTime t) {
  ObservedUpdate u;
  u.time = t;
  u.peer_ip = net::IpAddr(net::Ipv4Addr(peer));
  u.peer_asn = peer;
  u.body.withdrawn.push_back(P(prefix));
  return u;
}

TEST(Rib, AnnounceInstalls) {
  Rib rib;
  rib.apply(announce("20.0.0.0/16", 100, 10));
  PeerKey peer{net::IpAddr(net::Ipv4Addr(100)), 100};
  const RibEntry* e = rib.find(peer, P("20.0.0.0/16"));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->last_update, 10);
  EXPECT_EQ(e->as_path.origin(), 64500u);
}

TEST(Rib, WithdrawRemoves) {
  Rib rib;
  rib.apply(announce("20.0.0.0/16", 100, 10));
  rib.apply(withdraw("20.0.0.0/16", 100, 20));
  PeerKey peer{net::IpAddr(net::Ipv4Addr(100)), 100};
  EXPECT_EQ(rib.find(peer, P("20.0.0.0/16")), nullptr);
}

TEST(Rib, ReannounceOverwrites) {
  Rib rib;
  rib.apply(announce("20.0.0.0/16", 100, 10));
  ObservedUpdate u2 = announce("20.0.0.0/16", 100, 30);
  u2.body.communities.add(Community(100, 666));
  rib.apply(u2);
  PeerKey peer{net::IpAddr(net::Ipv4Addr(100)), 100};
  const RibEntry* e = rib.find(peer, P("20.0.0.0/16"));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->last_update, 30);
  EXPECT_TRUE(e->communities.contains(Community(100, 666)));
}

TEST(Rib, PerPeerIsolation) {
  Rib rib;
  rib.apply(announce("20.0.0.0/16", 100, 10));
  rib.apply(announce("20.0.0.0/16", 200, 10));
  rib.apply(withdraw("20.0.0.0/16", 100, 20));
  PeerKey p100{net::IpAddr(net::Ipv4Addr(100)), 100};
  PeerKey p200{net::IpAddr(net::Ipv4Addr(200)), 200};
  EXPECT_EQ(rib.find(p100, P("20.0.0.0/16")), nullptr);
  EXPECT_NE(rib.find(p200, P("20.0.0.0/16")), nullptr);
  EXPECT_EQ(rib.num_peers(), 2u);
}

TEST(Rib, FindAllAcrossPeers) {
  Rib rib;
  rib.apply(announce("20.0.0.0/16", 100, 10));
  rib.apply(announce("20.0.0.0/16", 200, 12));
  rib.apply(announce("20.1.0.0/16", 200, 13));
  auto all = rib.find_all(P("20.0.0.0/16"));
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(rib.total_entries(), 3u);
}

TEST(Rib, EntriesForPeer) {
  Rib rib;
  rib.apply(announce("20.0.0.0/16", 100, 10));
  rib.apply(announce("20.1.0.0/16", 100, 11));
  PeerKey peer{net::IpAddr(net::Ipv4Addr(100)), 100};
  EXPECT_EQ(rib.entries_for_peer(peer).size(), 2u);
  PeerKey unknown{net::IpAddr(net::Ipv4Addr(9)), 9};
  EXPECT_TRUE(rib.entries_for_peer(unknown).empty());
}

TEST(Rib, WithdrawUnknownIsNoop) {
  Rib rib;
  rib.apply(withdraw("20.0.0.0/16", 100, 20));
  EXPECT_EQ(rib.total_entries(), 0u);
}

TEST(Rib, ForEachVisitsEverything) {
  Rib rib;
  rib.apply(announce("20.0.0.0/16", 100, 10));
  rib.apply(announce("20.1.0.0/16", 200, 11));
  std::size_t count = 0;
  rib.for_each([&](const PeerKey&, const RibEntry&) { ++count; });
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace bgpbh::bgp
