#include "util/time.h"

#include <gtest/gtest.h>

namespace bgpbh::util {
namespace {

TEST(CivilDate, EpochIsZero) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(from_date(1970, 1, 1), 0);
}

TEST(CivilDate, KnownDates) {
  EXPECT_EQ(days_from_civil(2000, 3, 1), 11017);
  EXPECT_EQ(days_from_civil(2017, 3, 1), 17226);
  EXPECT_EQ(from_date(2017, 3, 1), 17226 * kDay);
}

TEST(CivilDate, InverseForKnownDate) {
  Date d = civil_from_days(days_from_civil(2016, 2, 29));
  EXPECT_EQ(d, (Date{2016, 2, 29}));
}

class CivilRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CivilRoundTrip, DaysToDateToDays) {
  std::int64_t days = GetParam();
  Date d = civil_from_days(days);
  EXPECT_EQ(days_from_civil(d.year, d.month, d.day), days);
  EXPECT_GE(d.month, 1);
  EXPECT_LE(d.month, 12);
  EXPECT_GE(d.day, 1);
  EXPECT_LE(d.day, 31);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CivilRoundTrip,
                         ::testing::Range<std::int64_t>(16000, 17600, 37));

TEST(CivilDate, LeapYearFebruary) {
  EXPECT_EQ(civil_from_days(days_from_civil(2016, 2, 29)).day, 29);
  // 2017-02-28 + 1 day = 2017-03-01 (non-leap).
  Date d = civil_from_days(days_from_civil(2017, 2, 28) + 1);
  EXPECT_EQ(d, (Date{2017, 3, 1}));
}

TEST(SimTime, DayIndexFloors) {
  EXPECT_EQ(day_index(0), 0);
  EXPECT_EQ(day_index(kDay - 1), 0);
  EXPECT_EQ(day_index(kDay), 1);
  EXPECT_EQ(day_index(-1), -1);
}

TEST(SimTime, FromDatetime) {
  SimTime t = from_datetime(2017, 3, 1, 12, 30, 15);
  EXPECT_EQ(t, from_date(2017, 3, 1) + 12 * kHour + 30 * kMinute + 15);
}

TEST(Format, Date) {
  EXPECT_EQ(format_date(from_date(2016, 10, 31)), "2016-10-31");
  EXPECT_EQ(format_date(from_date(2014, 12, 1)), "2014-12-01");
}

TEST(Format, Datetime) {
  EXPECT_EQ(format_datetime(from_datetime(2016, 5, 16, 1, 2, 3)),
            "2016-05-16T01:02:03Z");
}

TEST(Format, Duration) {
  EXPECT_EQ(format_duration(30), "30s");
  EXPECT_EQ(format_duration(90), "1m30s");
  EXPECT_EQ(format_duration(2 * kHour + 30 * kMinute), "2h30m");
  EXPECT_EQ(format_duration(3 * kDay + 4 * kHour), "3d4h");
  EXPECT_EQ(format_duration(-30), "-30s");
}

TEST(StudyAnchors, Ordering) {
  EXPECT_LT(study_start(), focus_start());
  EXPECT_LT(focus_start(), march2017_start());
  EXPECT_LT(march2017_start(), march2017_end());
  EXPECT_EQ(march2017_end(), study_end());
  EXPECT_EQ(focus_end(), study_end());
}

TEST(StudyAnchors, Values) {
  EXPECT_EQ(format_date(study_start()), "2014-12-01");
  EXPECT_EQ(format_date(study_end()), "2017-04-01");
  EXPECT_EQ(format_date(focus_start()), "2016-08-01");
}

TEST(StudyAnchors, WindowLengths) {
  // The longitudinal window spans ~852 days; the focus window 243.
  EXPECT_EQ((study_end() - study_start()) / kDay, 852);
  EXPECT_EQ((focus_end() - focus_start()) / kDay, 243);
}

}  // namespace
}  // namespace bgpbh::util
