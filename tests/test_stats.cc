#include <gtest/gtest.h>

#include "stats/cdf.h"
#include "stats/histogram.h"
#include "stats/series.h"
#include "stats/table.h"

namespace bgpbh::stats {
namespace {

TEST(Cdf, EmptyBehaviour) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.at(5.0), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
}

TEST(Cdf, AtIsStepFunction) {
  Cdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Cdf, Quantiles) {
  Cdf cdf({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 20.0);
}

TEST(Cdf, MinMaxMean) {
  Cdf cdf({3, 1, 2});
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
}

TEST(Cdf, AddAfterQuery) {
  Cdf cdf({1.0});
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 1.0);
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.5);
}

TEST(Cdf, PointsMonotonic) {
  Cdf cdf({1, 5, 9, 13, 200});
  auto pts = cdf.log_points(20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Cdf, AsciiPlotNonEmpty) {
  Cdf cdf({1, 2, 3});
  auto plot = cdf.ascii_plot("test");
  EXPECT_NE(plot.find("test"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(IntHistogram, Fractions) {
  IntHistogram h;
  h.add(1, 70);
  h.add(2, 20);
  h.add(5, 10);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.70);
  EXPECT_DOUBLE_EQ(h.fraction_at_least(2), 0.30);
  EXPECT_DOUBLE_EQ(h.fraction_at_least(6), 0.0);
  EXPECT_EQ(h.max_key(), 5);
  EXPECT_EQ(h.at(3), 0u);
}

TEST(IntHistogram, Empty) {
  IntHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(LogHistogram, Buckets) {
  LogHistogram h(1.0, 10.0);
  h.add(0.5);   // clamped to lo
  h.add(5.0);   // bucket [1, 10)
  h.add(50.0);  // bucket [10, 100)
  h.add(55.0);
  EXPECT_EQ(h.total(), 4u);
  auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_EQ(buckets[1].count, 2u);
  EXPECT_DOUBLE_EQ(buckets[1].lo, 10.0);
}

TEST(DailySeries, Accumulate) {
  DailySeries s;
  s.add(10 * util::kDay + 5);
  s.add(10 * util::kDay + 100);
  s.add(11 * util::kDay);
  EXPECT_DOUBLE_EQ(s.at_day(10), 2.0);
  EXPECT_DOUBLE_EQ(s.at_day(11), 1.0);
  EXPECT_DOUBLE_EQ(s.at_day(12), 0.0);
  EXPECT_EQ(s.first_day(), 10);
  EXPECT_EQ(s.last_day(), 11);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
}

TEST(DailySeries, MeanMaxInWindow) {
  DailySeries s;
  s.set(10, 1);
  s.set(11, 5);
  s.set(12, 3);
  EXPECT_DOUBLE_EQ(s.mean_in(10 * util::kDay, 12 * util::kDay), 3.0);
  EXPECT_DOUBLE_EQ(s.max_in(10 * util::kDay, 13 * util::kDay), 5.0);
  EXPECT_DOUBLE_EQ(s.mean_in(20 * util::kDay, 30 * util::kDay), 0.0);
}

TEST(DailySeries, AsciiPlotIncludesAnnotations) {
  DailySeries s;
  for (int d = 0; d < 100; ++d) s.set(d, d);
  auto plot = s.ascii_plot("growth", {{50, "E"}});
  EXPECT_NE(plot.find("growth"), std::string::npos);
  EXPECT_NE(plot.find('E'), std::string::npos);
}

TEST(Table, RendersAligned) {
  Table t({"Source", "#Peers"});
  t.add_row({"RIS", "425"});
  t.add_row({"CDN", "3,349"});
  auto s = t.to_string();
  EXPECT_NE(s.find("RIS"), std::string::npos);
  EXPECT_NE(s.find("3,349"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, Markdown) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  auto md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
}

TEST(Table, NumericRow) {
  Table t({"x", "v1", "v2"});
  t.add_row_numeric("r", {1.234, 5.678}, 1);
  auto s = t.to_string();
  EXPECT_NE(s.find("1.2"), std::string::npos);
  EXPECT_NE(s.find("5.7"), std::string::npos);
}

TEST(Formatting, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(88209), "88,209");
  EXPECT_EQ(with_commas(1193455), "1,193,455");
}

TEST(Formatting, Pct) {
  EXPECT_EQ(pct(0.336, 1), "33.6%");
  EXPECT_EQ(pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace bgpbh::stats
