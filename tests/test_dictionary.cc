#include "dictionary/dictionary.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpbh::dictionary {
namespace {

struct Env {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::Registry registry = topology::Registry::build(graph, 0.72, 0.95, 42);
  Corpus corpus = generate_corpus(graph, 42);
  BlackholeDictionary dict = build_documented_dictionary(corpus, registry);
};

Env& env() {
  static Env e;
  return e;
}

TEST(Dictionary, RecoversDocumentedProviders) {
  std::size_t documented = 0, recovered = 0;
  for (const auto& node : env().graph.nodes()) {
    const auto& bp = node.blackhole;
    if (!bp.offers_blackholing) continue;
    if (!bp.documented_in_irr && !bp.documented_on_web) continue;
    ++documented;
    const DictEntry* entry = env().dict.lookup(bp.communities.front());
    if (entry &&
        std::find(entry->provider_asns.begin(), entry->provider_asns.end(),
                  node.asn) != entry->provider_asns.end()) {
      ++recovered;
    }
  }
  EXPECT_EQ(recovered, documented) << "extraction must recover every "
                                      "documented provider exactly";
}

TEST(Dictionary, NoServiceCommunityFalsePositives) {
  for (const auto& node : env().graph.nodes()) {
    for (auto c : node.service_communities) {
      const DictEntry* entry = env().dict.lookup(c);
      if (!entry) continue;
      // The value may legitimately collide with ANOTHER provider's
      // blackhole community, but never list this AS as a provider for
      // its own service community.
      EXPECT_EQ(std::find(entry->provider_asns.begin(),
                          entry->provider_asns.end(), node.asn),
                entry->provider_asns.end())
          << "AS" << node.asn << " service community " << c.to_string()
          << " misclassified as blackhole";
    }
  }
}

TEST(Dictionary, IxpEntriesShared) {
  const DictEntry* rfc = env().dict.lookup(bgp::Community::rfc7999_blackhole());
  ASSERT_NE(rfc, nullptr);
  // 47 of the 49 blackholing IXPs share 65535:666 (§4.1).
  EXPECT_EQ(rfc->ixp_ids.size(), 47u);
  EXPECT_TRUE(rfc->ambiguous());
}

TEST(Dictionary, IxpCountMatchesTopology) {
  std::size_t expected = 0;
  for (const auto& ixp : env().graph.ixps()) {
    if (ixp.offers_blackholing && ixp.documented) ++expected;
  }
  EXPECT_EQ(env().dict.num_ixps(), expected);
}

TEST(Dictionary, PrivateCommunicationsIncluded) {
  for (const auto& pc : env().corpus.private_communications) {
    const DictEntry* entry = env().dict.lookup(pc.community);
    ASSERT_NE(entry, nullptr);
    EXPECT_NE(std::find(entry->provider_asns.begin(), entry->provider_asns.end(),
                        pc.asn),
              entry->provider_asns.end());
  }
}

TEST(Dictionary, LargeCommunitySupport) {
  // Exactly one provider documents a large blackhole community.
  std::optional<bgp::LargeCommunity> lc;
  Asn owner = 0;
  for (const auto& node : env().graph.nodes()) {
    if (node.blackhole.large_community &&
        (node.blackhole.documented_in_irr || node.blackhole.documented_on_web)) {
      lc = node.blackhole.large_community;
      owner = node.asn;
    }
  }
  ASSERT_TRUE(lc.has_value());
  auto provider = env().dict.lookup_large(*lc);
  ASSERT_TRUE(provider);
  EXPECT_EQ(*provider, owner);
  EXPECT_TRUE(env().dict.is_blackhole(*lc));
}

TEST(Dictionary, AnyBlackhole) {
  bgp::CommunitySet set;
  set.add(bgp::Community(64999, 42));  // unknown
  EXPECT_FALSE(env().dict.any_blackhole(set));
  set.add(bgp::Community::rfc7999_blackhole());
  EXPECT_TRUE(env().dict.any_blackhole(set));
}

TEST(Dictionary, AmbiguityFlags) {
  const DictEntry* shared = env().dict.lookup(bgp::Community(0, 666));
  if (shared) {
    EXPECT_GT(shared->provider_asns.size(), 1u);
    EXPECT_TRUE(shared->ambiguous());
  }
  // At least one single-provider community exists and is unambiguous.
  bool found_unambiguous = false;
  for (const auto& [c, entry] : env().dict.entries()) {
    if (entry.provider_asns.size() == 1 && entry.ixp_ids.empty()) {
      EXPECT_FALSE(entry.ambiguous());
      found_unambiguous = true;
      break;
    }
  }
  EXPECT_TRUE(found_unambiguous);
}

TEST(Dictionary, BreakdownApproximatesTable2) {
  auto breakdown = env().dict.breakdown(env().registry);
  topology::GeneratorConfig cfg;
  // PeeringDB/CAIDA coverage is incomplete, so classified counts sit
  // slightly below ground truth, with the residue landing in Unknown.
  EXPECT_NEAR(static_cast<double>(
                  breakdown[topology::NetworkType::kTransitAccess].networks),
              static_cast<double>(cfg.bh_transit_access), 25.0);
  EXPECT_EQ(breakdown[topology::NetworkType::kIxp].networks, 47u + 2u);
  // The 47 RFC-7999 IXPs share one community; with the 2 custom ones
  // the IXP class has very few distinct communities (paper: 2).
  EXPECT_LE(breakdown[topology::NetworkType::kIxp].communities, 3u);
  // Total networks: documented providers (302 via corpus) + 5 private.
  std::size_t total = 0;
  for (auto& [type, row] : breakdown) {
    if (type != topology::NetworkType::kIxp) total += row.networks;
  }
  EXPECT_NEAR(static_cast<double>(total), 258.0, 10.0);
}

TEST(Legacy, ComparisonRates) {
  auto legacy = make_legacy_dictionary(env().graph, 0.72, 42);
  EXPECT_EQ(legacy.entries.size(), 60u);
  auto cmp = compare_with_legacy(env().dict, legacy, env().graph);
  EXPECT_EQ(cmp.total, 60u);
  // ~72% still active; some slack because a legacy "active" entry may
  // belong to an *undocumented* provider (absent from the dictionary).
  EXPECT_NEAR(static_cast<double>(cmp.still_active) / 60.0, 0.72, 0.15);
  EXPECT_EQ(cmp.repurposed, 0u);  // none re-purposed (§4.1)
}

TEST(Dictionary, AddProviderIdempotent) {
  BlackholeDictionary d;
  d.add_provider(bgp::Community(1, 666), 1, DictSource::kIrr);
  d.add_provider(bgp::Community(1, 666), 1, DictSource::kIrr);
  const DictEntry* e = d.lookup(bgp::Community(1, 666));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->provider_asns.size(), 1u);
  EXPECT_EQ(d.num_communities(), 1u);
  EXPECT_EQ(d.num_providers(), 1u);
}

TEST(Dictionary, AllProvidersSortedUnique) {
  auto providers = env().dict.all_providers();
  EXPECT_TRUE(std::is_sorted(providers.begin(), providers.end()));
  EXPECT_EQ(std::adjacent_find(providers.begin(), providers.end()),
            providers.end());
  EXPECT_EQ(providers.size(), env().dict.num_providers());
}

}  // namespace
}  // namespace bgpbh::dictionary
