// Tests for the telemetry layer (src/telemetry/):
//  * LatencyHistogram bucket geometry — exact small-value buckets, the
//    bucket_for/bucket_upper_bound inverse relation, the ≤12.5%
//    relative-error bound, and percentile math against it.
//  * Registry folding — per-shard counters/gauges/histograms fold to
//    the same result a single sequential instrument would produce.
//  * Snapshot consistency under concurrent recording — totals are
//    monotone across snapshots and exact at quiescence.
//  * Exporters — Prometheus text and BENCH-style JSON agree with the
//    registry state they were rendered from.
//  * Trace ring + ScopedSpan — disabled-by-default, threshold
//    filtering, histogram feeding.
//  * End-to-end: a live AnalysisSession populates session.telemetry()
//    with the stream/dispatch instruments and the hook-sampled gauges.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/sink.h"
#include "stream/source.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace bgpbh;
using telemetry::LatencyHistogram;
using telemetry::MetricsRegistry;

// ---- histogram bucket geometry ----------------------------------------

TEST(LatencyHistogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_for(v), v) << "value " << v;
    EXPECT_EQ(LatencyHistogram::bucket_upper_bound(v), v) << "value " << v;
  }
}

TEST(LatencyHistogram, BucketForIsMonotoneAndUpperBoundInverts) {
  // Every bucket's inclusive upper bound maps back to that bucket, and
  // the next value up maps to the next bucket — the exporter's le=""
  // boundaries are exact.
  for (std::size_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t upper = LatencyHistogram::bucket_upper_bound(b);
    EXPECT_EQ(LatencyHistogram::bucket_for(upper), b) << "bucket " << b;
    EXPECT_EQ(LatencyHistogram::bucket_for(upper + 1), b + 1)
        << "bucket " << b;
  }
  // Oversized values clamp into the last bucket.
  EXPECT_EQ(LatencyHistogram::bucket_for(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, RelativeErrorBoundedBy12Point5Percent) {
  // 8 linear sub-buckets per power of two: the bucket width is 1/8 of
  // the value's magnitude, so reporting the upper bound overstates by
  // at most 12.5%.
  for (std::uint64_t v : {9ull, 100ull, 1000ull, 12345ull, 999999ull,
                          87654321ull, 5'000'000'000ull}) {
    const std::size_t b = LatencyHistogram::bucket_for(v);
    const std::uint64_t upper = LatencyHistogram::bucket_upper_bound(b);
    ASSERT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - v), 0.125 * static_cast<double>(v))
        << "value " << v;
  }
}

TEST(LatencyHistogram, CountSumMinMaxAndPercentiles) {
  LatencyHistogram h;
  // 1..1000: exact mean 500.5, p50 ~500, p99 ~990.
  std::uint64_t sum = 0;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.record(v);
    sum += v;
  }
  auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, sum);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // Quantiles report a bucket upper bound ≥ the true quantile, within
  // the 12.5% band.
  EXPECT_GE(s.percentile(0.50), 500.0);
  EXPECT_LE(s.percentile(0.50), 500.0 * 1.125 + 1);
  EXPECT_GE(s.percentile(0.99), 990.0);
  EXPECT_LE(s.percentile(0.99), 990.0 * 1.125 + 1);
  // Degenerate quantiles stay in range.
  EXPECT_GE(s.percentile(0.0), 1.0);
  EXPECT_LE(s.percentile(1.0), 1000.0 * 1.125 + 1);
}

TEST(LatencyHistogram, EmptySnapshotIsZero) {
  LatencyHistogram h;
  auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 0.0);
  EXPECT_TRUE(s.buckets.empty());
}

TEST(HistogramSnapshot, MergeFromMatchesSingleInstrument) {
  // Splitting a value stream across two instruments and merging their
  // snapshots must reproduce the single-instrument snapshot exactly —
  // the bucket-exact guarantee fleet folding rests on.
  LatencyHistogram a, b, combined;
  std::uint64_t v = 7;
  for (int i = 0; i < 4000; ++i) {
    v = v * 2862933555777941757ull + 3037000493ull;
    const std::uint64_t sample = v >> (v % 48);
    (i % 3 == 0 ? a : b).record(sample);
    combined.record(sample);
  }
  auto sa = a.snapshot();
  sa.merge_from(b.snapshot());
  auto ref = combined.snapshot();
  EXPECT_EQ(sa.count, ref.count);
  EXPECT_EQ(sa.sum, ref.sum);
  EXPECT_EQ(sa.min, ref.min);
  EXPECT_EQ(sa.max, ref.max);
  ASSERT_EQ(sa.buckets.size(), ref.buckets.size());
  for (std::size_t i = 0; i < ref.buckets.size(); ++i) {
    EXPECT_EQ(sa.buckets[i], ref.buckets[i]) << "bucket row " << i;
  }
  EXPECT_DOUBLE_EQ(sa.percentile(0.99), ref.percentile(0.99));
  // Merging an empty snapshot is a no-op.
  telemetry::HistogramSnapshot empty;
  sa.merge_from(empty);
  EXPECT_EQ(sa.count, ref.count);
  EXPECT_EQ(sa.min, ref.min);
}

// ---- registry folding -------------------------------------------------

TEST(MetricsRegistry, ShardedCounterFoldsToSumWithPerShardSplit) {
  MetricsRegistry reg;
  reg.shard_counter("work.items", 0).add(10);
  reg.shard_counter("work.items", 1).add(32);
  reg.shard_counter("work.items", 3).add(1);
  auto snap = reg.snapshot();
  const auto* m = snap.find("work.items");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, telemetry::MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(m->value, 43.0);
  ASSERT_EQ(m->per_shard.size(), 3u);
  EXPECT_EQ(m->per_shard[0], (std::pair<std::size_t, double>{0, 10.0}));
  EXPECT_EQ(m->per_shard[1], (std::pair<std::size_t, double>{1, 32.0}));
  EXPECT_EQ(m->per_shard[2], (std::pair<std::size_t, double>{3, 1.0}));
  EXPECT_DOUBLE_EQ(snap.value_or("work.items"), 43.0);
  EXPECT_DOUBLE_EQ(snap.value_or("no.such.metric", -1.0), -1.0);
}

TEST(MetricsRegistry, ShardedHistogramFoldMatchesSequentialReference) {
  // The same value stream recorded round-robin into 4 shard
  // instruments must fold to exactly what one instrument records.
  MetricsRegistry sharded;
  LatencyHistogram reference;
  std::uint64_t v = 1;
  for (int i = 0; i < 5000; ++i) {
    v = v * 2862933555777941757ull + 3037000493ull;  // splitmix-ish walk
    const std::uint64_t sample = v >> (v % 50);      // spread across decades
    sharded.shard_histogram("stage.ns", i % 4).record(sample);
    reference.record(sample);
  }
  auto folded = sharded.snapshot();
  const auto* m = folded.find("stage.ns");
  ASSERT_NE(m, nullptr);
  auto ref = reference.snapshot();
  EXPECT_EQ(m->hist.count, ref.count);
  EXPECT_EQ(m->hist.sum, ref.sum);
  EXPECT_EQ(m->hist.min, ref.min);
  EXPECT_EQ(m->hist.max, ref.max);
  ASSERT_EQ(m->hist.buckets.size(), ref.buckets.size());
  for (std::size_t i = 0; i < ref.buckets.size(); ++i) {
    EXPECT_EQ(m->hist.buckets[i], ref.buckets[i]) << "bucket row " << i;
  }
  EXPECT_DOUBLE_EQ(m->hist.percentile(0.9), ref.percentile(0.9));
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  MetricsRegistry reg;
  telemetry::Counter& a = reg.counter("c");
  telemetry::Counter& b = reg.counter("c");
  EXPECT_EQ(&a, &b);
  telemetry::Gauge& g1 = reg.shard_gauge("g", 2);
  telemetry::Gauge& g2 = reg.shard_gauge("g", 2);
  EXPECT_EQ(&g1, &g2);
  EXPECT_NE(&g1, &reg.shard_gauge("g", 3));
}

TEST(MetricsRegistry, DescribeBeforeOrAfterCreationAttachesHelp) {
  MetricsRegistry reg;
  reg.describe("early", "described before creation");
  reg.counter("early").add();
  reg.gauge("late").set(1);
  reg.describe("late", "described after creation");
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.find("early")->help, "described before creation");
  EXPECT_EQ(snap.find("late")->help, "described after creation");
}

TEST(MetricsRegistry, CollectionHooksRunOnSnapshotAndAreRemovable) {
  MetricsRegistry reg;
  telemetry::Gauge& g = reg.gauge("sampled");
  int calls = 0;
  std::uint64_t id = reg.add_collection_hook([&] {
    ++calls;
    g.set(static_cast<double>(calls));
  });
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("sampled"), 1.0);
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("sampled"), 2.0);
  reg.remove_collection_hook(id);
  EXPECT_DOUBLE_EQ(reg.snapshot().value_or("sampled"), 2.0);
  EXPECT_EQ(calls, 2);
}

TEST(MetricsRegistry, SnapshotsAreConsistentUnderConcurrentRecording) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<telemetry::Counter*> counters;
  std::vector<LatencyHistogram*> hists;
  for (int t = 0; t < kThreads; ++t) {
    counters.push_back(&reg.shard_counter("conc.count", static_cast<std::size_t>(t)));
    hists.push_back(&reg.shard_histogram("conc.ns", static_cast<std::size_t>(t)));
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counters[static_cast<std::size_t>(t)]->add();
        hists[static_cast<std::size_t>(t)]->record(i & 1023);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Totals observed mid-flight never exceed the final total and never
  // go backwards between snapshots.
  double prev_count = 0;
  for (int i = 0; i < 50; ++i) {
    auto snap = reg.snapshot();
    double now = snap.value_or("conc.count");
    EXPECT_GE(now, prev_count);
    EXPECT_LE(now, static_cast<double>(kThreads) * kPerThread);
    const auto* h = snap.find("conc.ns");
    if (h) {
      EXPECT_LE(h->hist.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
    prev_count = now;
  }
  for (auto& t : threads) t.join();
  auto final_snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(final_snap.value_or("conc.count"),
                   static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(final_snap.find("conc.ns")->hist.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- exporters --------------------------------------------------------

TEST(Exporters, PrometheusAndJsonAgreeWithRegistryState) {
  MetricsRegistry reg;
  reg.describe("requests.total", "requests served");
  reg.counter("requests.total").add(42);
  reg.gauge("queue.depth").set(7);
  reg.shard_counter("shard.work", 0).add(3);
  reg.shard_counter("shard.work", 1).add(4);
  LatencyHistogram& h = reg.histogram("latency.ns");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  auto snap = reg.snapshot();

  std::string prom = telemetry::to_prometheus(snap, "bgpbh");
  // Names sanitized with the prefix; HELP/TYPE lines present.
  EXPECT_NE(prom.find("# HELP bgpbh_requests_total requests served"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE bgpbh_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("bgpbh_requests_total 42\n"), std::string::npos);
  EXPECT_NE(prom.find("bgpbh_queue_depth 7\n"), std::string::npos);
  // Sharded metrics export with shard labels.
  EXPECT_NE(prom.find("bgpbh_shard_work{shard=\"0\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("bgpbh_shard_work{shard=\"1\"} 4\n"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, _sum and _count.
  EXPECT_NE(prom.find("bgpbh_latency_ns_bucket{le=\"+Inf\"} 100\n"),
            std::string::npos);
  EXPECT_NE(prom.find("bgpbh_latency_ns_count 100\n"), std::string::npos);
  EXPECT_NE(prom.find("bgpbh_latency_ns_sum 5050\n"), std::string::npos);

  std::string json = telemetry::to_json_object(snap);
  EXPECT_NE(json.find("\"requests.total\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"queue.depth\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"shard.work\": 7"), std::string::npos);  // folded sum
  EXPECT_NE(json.find("\"latency.ns\": {\"count\": 100"), std::string::npos);

  // Prefix filtering + stripping: only matching keys, prefix removed.
  std::string filtered = telemetry::to_json_object(snap, "queue.");
  EXPECT_NE(filtered.find("\"depth\": 7"), std::string::npos);
  EXPECT_EQ(filtered.find("requests"), std::string::npos);
}

// ---- trace ring + spans -----------------------------------------------

TEST(TraceRing, DisabledByDefaultAndThresholdFilters) {
  telemetry::TraceRing ring;
  EXPECT_FALSE(ring.enabled());
  ring.maybe_record("stage", 0, 1'000'000'000);
  EXPECT_EQ(ring.records_seen(), 0u);

  ring.configure({.enabled = true, .slow_threshold_ns = 1000});
  ring.maybe_record("fast", 0, 999);   // below threshold: dropped
  ring.maybe_record("slow", 2, 5000);  // recorded
  ASSERT_EQ(ring.records_seen(), 1u);
  auto recent = ring.recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_STREQ(recent[0].label, "slow");
  EXPECT_EQ(recent[0].shard, 2u);
  EXPECT_EQ(recent[0].duration_ns, 5000u);
}

TEST(TraceRing, KeepsMostRecentCapacityRecords) {
  telemetry::TraceRing ring;
  ring.configure({.enabled = true, .slow_threshold_ns = 0});
  const std::size_t n = telemetry::TraceRing::kCapacity + 10;
  for (std::size_t i = 0; i < n; ++i) {
    ring.maybe_record("s", 0, i + 1);
  }
  auto recent = ring.recent();
  ASSERT_EQ(recent.size(), telemetry::TraceRing::kCapacity);
  // Oldest-first, ending at the last record.
  EXPECT_EQ(recent.front().duration_ns, n - telemetry::TraceRing::kCapacity + 1);
  EXPECT_EQ(recent.back().duration_ns, n);
  EXPECT_LT(recent.front().seq, recent.back().seq);
}

TEST(TraceRing, ConfigurableCapacityAndTraceIds) {
  telemetry::TraceRing ring;
  ring.configure({.enabled = true, .slow_threshold_ns = 0, .capacity = 8});
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::size_t i = 0; i < 20; ++i) {
    ring.maybe_record("s", 0, i + 1, /*trace_id=*/100 + i);
  }
  auto recent = ring.recent();
  ASSERT_EQ(recent.size(), 8u);
  EXPECT_EQ(recent.front().duration_ns, 13u);
  EXPECT_EQ(recent.back().duration_ns, 20u);
  EXPECT_EQ(recent.back().trace_id, 119u);
  // Reconfiguring to the SAME capacity keeps the contents (wiring-time
  // re-applications are harmless); a different capacity clears.
  ring.configure({.enabled = true, .slow_threshold_ns = 0, .capacity = 8});
  EXPECT_EQ(ring.recent().size(), 8u);
  ring.configure({.enabled = true, .slow_threshold_ns = 0, .capacity = 4});
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.recent().empty());
}

TEST(ScopedSpan, CarriesTraceIdIntoRing) {
  LatencyHistogram hist;
  telemetry::TraceRing ring;
  ring.configure({.enabled = true, .slow_threshold_ns = 0});
  { telemetry::ScopedSpan span(&hist, &ring, "rpc", 1, 0xABCDu); }
  ASSERT_EQ(ring.records_seen(), 1u);
  EXPECT_EQ(ring.recent()[0].trace_id, 0xABCDu);
  EXPECT_EQ(ring.recent()[0].shard, 1u);
}

TEST(ScopedSpan, FeedsHistogramAndRespectsRingGate) {
  LatencyHistogram hist;
  telemetry::TraceRing ring;  // disabled: histogram still records
  { telemetry::ScopedSpan span(&hist, &ring, "unit"); }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(ring.records_seen(), 0u);

  ring.configure({.enabled = true, .slow_threshold_ns = 0});
  { telemetry::ScopedSpan span(&hist, &ring, "unit", 3); }
  EXPECT_EQ(hist.count(), 2u);
  ASSERT_EQ(ring.records_seen(), 1u);
  EXPECT_EQ(ring.recent()[0].shard, 3u);
}

// ---- end-to-end: session telemetry ------------------------------------

core::StudyConfig small_study() {
  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 3);
  config.workload.intensity_scale = 0.05;
  config.table_dump_episodes = 0;
  return config;
}

class NullSink : public api::EventSink {};

TEST(SessionTelemetry, LiveSessionPopulatesRegistryAcrossLayers) {
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveReplay;
  config.study = small_study();
  config.num_shards = 2;
  api::AnalysisSession session(config);
  NullSink sink;
  session.subscribe(sink);
  // Trace ring on with a zero threshold: every span must land.
  session.telemetry().trace().configure(
      {.enabled = true, .slow_threshold_ns = 0});
  session.run();

  auto snap = session.telemetry().snapshot();
  // Stream layer: the hook-sampled counters match the session gauges.
  EXPECT_DOUBLE_EQ(snap.value_or("stream.updates_pushed"),
                   static_cast<double>(session.updates_pushed()));
  const auto* batch_hist = snap.find("stream.worker.batch_ns");
  ASSERT_NE(batch_hist, nullptr);
  EXPECT_GT(batch_hist->hist.count, 0u);
  ASSERT_EQ(batch_hist->per_shard.size(), 2u);  // one instrument per shard
  // Dispatch layer: every closed event was counted through the
  // dispatcher instruments.
  EXPECT_DOUBLE_EQ(snap.value_or("api.dispatch.events_delivered"),
                   static_cast<double>(session.count()));
  EXPECT_DOUBLE_EQ(snap.value_or("api.dispatch.events_submitted"),
                   snap.value_or("api.dispatch.events_delivered"));
  EXPECT_DOUBLE_EQ(snap.value_or("api.dispatch.lag_events"), 0.0);
  // Spans reached the trace ring.
  EXPECT_GT(session.telemetry().trace().records_seen(), 0u);
  // The exporters render the same state.
  std::string prom = telemetry::to_prometheus(snap);
  EXPECT_NE(prom.find("bgpbh_stream_updates_pushed"), std::string::npos);
  EXPECT_NE(prom.find("bgpbh_api_dispatch_events_delivered"),
            std::string::npos);
}

TEST(SessionTelemetry, EveryRegisteredMetricHasHelpText) {
  // A metric without a HELP string renders as a bare Prometheus series
  // nobody can interpret.  Run a session with persistence, checkpoint
  // cadence, sinks, and tracing wired so the stream/api/storage/
  // recovery/e2e instrument families all register, then require help
  // on every one.
  const std::string dir = "/tmp/bgpbh_test_telemetry_help";
  std::filesystem::remove_all(dir);
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveReplay;
  config.study = small_study();
  config.num_shards = 2;
  config.persist_dir = dir;
  config.checkpoint_every = 500;
  config.trace.enabled = true;
  config.trace.slow_threshold_ns = 0;
  api::AnalysisSession session(config);
  NullSink sink;
  session.subscribe(sink);
  session.run();
  auto snap = session.telemetry().snapshot();
  ASSERT_GT(snap.metrics.size(), 0u);
  EXPECT_NE(snap.find("e2e.detect_latency_ns"), nullptr);
  EXPECT_NE(snap.find("e2e.delivery_latency_ns"), nullptr);
  for (const auto& m : snap.metrics) {
    EXPECT_FALSE(m.help.empty()) << "metric '" << m.name << "' has no HELP";
  }
  std::filesystem::remove_all(dir);
}

TEST(SessionTelemetry, RegistrySurvivesPipelineTeardown) {
  // Snapshot after close(): the components' collection hooks were
  // removed at destruction time where applicable, and a snapshot taken
  // while the session is still alive must include the final totals.
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveReplay;
  config.study = small_study();
  config.num_shards = 1;
  api::AnalysisSession session(config);
  session.run();
  auto first = session.telemetry().snapshot();
  auto second = session.telemetry().snapshot();
  EXPECT_DOUBLE_EQ(first.value_or("stream.updates_pushed"),
                   second.value_or("stream.updates_pushed"));
  EXPECT_GT(second.value_or("stream.updates_pushed"), 0.0);
}

}  // namespace
