#include "net/prefix.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bgpbh::net {
namespace {

TEST(Prefix, ParseBasic) {
  auto p = Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->len(), 8);
  EXPECT_TRUE(p->is_v4());
}

TEST(Prefix, ParseHostRoute) {
  auto p = Prefix::parse("130.149.1.1/32");
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->is_host_route());
}

TEST(Prefix, ParseV6) {
  auto p = Prefix::parse("2001:7f8::/32");
  ASSERT_TRUE(p);
  EXPECT_FALSE(p->is_v4());
  EXPECT_EQ(p->len(), 32);
}

class PrefixInvalidTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PrefixInvalidTest, Rejected) {
  EXPECT_FALSE(Prefix::parse(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Invalids, PrefixInvalidTest,
                         ::testing::Values("10.0.0.0", "10.0.0.0/33",
                                           "::/129", "10.0.0.0/-1",
                                           "10.0.0.0/a", "/24", ""));

TEST(Prefix, CanonicalizesHostBits) {
  auto p = Prefix::parse("10.1.2.3/8");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
  EXPECT_EQ(*p, *Prefix::parse("10.0.0.0/8"));
}

TEST(Prefix, CanonicalizesV6HostBits) {
  auto p = Prefix::parse("2001:db8:ffff::1/32");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "2001:db8::/32");
}

TEST(Prefix, Contains) {
  auto p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(*IpAddr::parse("10.255.0.1")));
  EXPECT_FALSE(p.contains(*IpAddr::parse("11.0.0.0")));
  EXPECT_FALSE(p.contains(*IpAddr::parse("::1")));  // family mismatch
}

TEST(Prefix, ZeroLengthContainsEverything) {
  Prefix p(IpAddr(Ipv4Addr(0)), 0);
  EXPECT_TRUE(p.contains(*IpAddr::parse("255.255.255.255")));
}

TEST(Prefix, Covers) {
  auto p8 = *Prefix::parse("10.0.0.0/8");
  auto p24 = *Prefix::parse("10.1.2.0/24");
  auto p32 = *Prefix::parse("10.1.2.3/32");
  EXPECT_TRUE(p8.covers(p24));
  EXPECT_TRUE(p24.covers(p32));
  EXPECT_TRUE(p8.covers(p8));
  EXPECT_FALSE(p24.covers(p8));
  EXPECT_FALSE(p24.covers(*Prefix::parse("10.1.3.0/24")));
}

TEST(Prefix, MoreSpecificThan) {
  EXPECT_TRUE(Prefix::parse("1.2.3.4/32")->more_specific_than(24));
  EXPECT_TRUE(Prefix::parse("1.2.3.0/25")->more_specific_than(24));
  EXPECT_FALSE(Prefix::parse("1.2.3.0/24")->more_specific_than(24));
  EXPECT_FALSE(Prefix::parse("1.2.0.0/16")->more_specific_than(24));
}

TEST(Prefix, Parent) {
  auto p = *Prefix::parse("10.1.2.3/32");
  EXPECT_EQ(p.parent(24).to_string(), "10.1.2.0/24");
  EXPECT_EQ(p.parent(8).to_string(), "10.0.0.0/8");
  // Parent of equal/longer length is identity.
  EXPECT_EQ(p.parent(32), p);
}

TEST(Prefix, HostRouteFactory) {
  auto ip = *IpAddr::parse("130.149.1.1");
  auto p = Prefix::host_route(ip);
  EXPECT_EQ(p.len(), 32);
  EXPECT_TRUE(p.contains(ip));
  auto p6 = Prefix::host_route(*IpAddr::parse("::1"));
  EXPECT_EQ(p6.len(), 128);
}

TEST(Prefix, Ipv4PrefixSize) {
  EXPECT_EQ(ipv4_prefix_size(*Prefix::parse("1.2.3.4/32")), 1u);
  EXPECT_EQ(ipv4_prefix_size(*Prefix::parse("1.2.3.0/24")), 256u);
  EXPECT_EQ(ipv4_prefix_size(*Prefix::parse("0.0.0.0/0")), 1ULL << 32);
  EXPECT_EQ(ipv4_prefix_size(*Prefix::parse("::/0")), 0u);  // v6
}

TEST(Prefix, HashDistinguishesLength) {
  PrefixHash h;
  auto a = *Prefix::parse("10.0.0.0/8");
  auto b = *Prefix::parse("10.0.0.0/16");
  EXPECT_NE(h(a), h(b));
}

TEST(PrefixProperty, RandomRoundTrip) {
  util::Rng rng(12345);
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t addr = static_cast<std::uint32_t>(rng.next_u64());
    std::uint8_t len = static_cast<std::uint8_t>(rng.uniform(33));
    Prefix p(IpAddr(Ipv4Addr(addr)), len);
    auto q = Prefix::parse(p.to_string());
    ASSERT_TRUE(q) << p.to_string();
    EXPECT_EQ(*q, p);
    // Canonical: contains its own base address, covers itself.
    EXPECT_TRUE(p.contains(p.addr()));
    EXPECT_TRUE(p.covers(p));
  }
}

TEST(PrefixProperty, ParentAlwaysCovers) {
  util::Rng rng(777);
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t addr = static_cast<std::uint32_t>(rng.next_u64());
    std::uint8_t len = static_cast<std::uint8_t>(1 + rng.uniform(32));
    Prefix p(IpAddr(Ipv4Addr(addr)), len);
    std::uint8_t plen = static_cast<std::uint8_t>(rng.uniform(len));
    EXPECT_TRUE(p.parent(plen).covers(p));
  }
}

}  // namespace
}  // namespace bgpbh::net
