// Persistent event store (src/storage/): record codec round trips,
// segment roll + sparse-index seeks, retention, torn-tail crash
// recovery (the acked prefix survives byte-wise), and the SpillWriter
// bridge under concurrent submitters (the TSan-gated piece).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "storage/record_codec.h"
#include "storage/recovery.h"
#include "storage/segment_reader.h"
#include "storage/segment_writer.h"
#include "storage/spill.h"
#include "util/rng.h"

namespace bgpbh::storage {
namespace {

namespace fs = std::filesystem;

using core::PeerEvent;

// Fresh scratch directory per test.
class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("bgpbh_storage_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

PeerEvent make_event(std::uint32_t i, util::SimTime start, util::SimTime end) {
  PeerEvent e;
  e.platform = static_cast<routing::Platform>(i % routing::kNumPlatforms);
  e.peer.peer_ip = net::IpAddr(net::Ipv4Addr(0xC6336400u + (i % 200)));
  e.peer.peer_asn = 100 + i % 7;
  e.prefix = net::Prefix(net::IpAddr(net::Ipv4Addr(0x14000000u + i)), 32);
  e.provider = core::ProviderRef{.is_ixp = (i % 5 == 0),
                                 .asn = 3000 + i % 11,
                                 .ixp_id = i % 5 == 0 ? 7 + i % 3 : 0};
  e.user = 64500 + i % 13;
  e.kind = static_cast<core::DetectionKind>(i % 4);
  e.as_distance = (i % 3 == 0) ? core::kNoPathDistance : static_cast<int>(i % 6);
  e.start = start;
  e.end = end;
  e.open = false;
  e.explicit_withdrawal = i % 2 == 0;
  e.started_in_table_dump = i % 17 == 0;
  e.communities.add(bgp::Community(static_cast<std::uint16_t>(3000 + i % 11),
                                   666));
  if (i % 4 == 0) {
    e.communities.add(bgp::LargeCommunity(64500 + i, 666, i));
  }
  return e;
}

std::vector<PeerEvent> make_events(std::size_t n, util::SimTime t0 = 1000,
                                   util::SimTime spacing = 10) {
  std::vector<PeerEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    util::SimTime start = t0 + static_cast<util::SimTime>(i) * spacing;
    events.push_back(make_event(static_cast<std::uint32_t>(i), start,
                                start + 50));
  }
  return events;
}

// ---- record codec ------------------------------------------------------

TEST_F(StorageTest, RecordRoundTripsAllFieldShapes) {
  for (std::uint32_t i = 0; i < 64; ++i) {
    PeerEvent original = make_event(i, 1000 + i, 2000 + i);
    net::BufWriter w;
    encode_record(original, w);
    EXPECT_EQ(w.size(), encoded_record_size(original));
    net::BufReader r(w.data());
    auto decoded = decode_record(r);
    ASSERT_TRUE(decoded.has_value()) << "i=" << i;
    EXPECT_TRUE(*decoded == original) << "i=" << i;
    EXPECT_TRUE(r.at_end());
  }
}

TEST_F(StorageTest, RecordRoundTripsIpv6AndNegativeDistance) {
  PeerEvent e = make_event(1, -50, 100);  // pre-epoch start survives
  e.peer.peer_ip = *net::IpAddr::parse("2001:db8::42");
  e.prefix = *net::Prefix::parse("2a00:1:2::/48");
  e.as_distance = core::kNoPathDistance;
  e.open = true;
  net::BufWriter w;
  encode_record(e, w);
  net::BufReader r(w.data());
  auto decoded = decode_record(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == e);
}

TEST_F(StorageTest, RecordRejectsCorruptionAndTruncation) {
  PeerEvent e = make_event(3, 100, 200);
  net::BufWriter w;
  encode_record(e, w);
  auto bytes = w.take();
  // Any single flipped bit must be rejected by the CRC (or framing).
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    auto mutated = bytes;
    mutated[byte] ^= 0x10;
    net::BufReader r(mutated);
    auto decoded = decode_record(r);
    if (decoded) {
      // CRC-32 detects every 1-bit error; a successful decode would be
      // a codec bug.
      ADD_FAILURE() << "1-bit corruption at byte " << byte << " decoded";
    }
  }
  // Every truncation point fails cleanly.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> t(bytes.begin(),
                                bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    net::BufReader r(t);
    EXPECT_FALSE(decode_record(r).has_value()) << "cut=" << cut;
  }
}

// ---- segment writer / reader ------------------------------------------

TEST_F(StorageTest, WriteReopenRoundTripsEventSetBytewise) {
  auto events = make_events(500);
  {
    auto writer = SegmentWriter::open(dir_);
    ASSERT_TRUE(writer);
    ASSERT_TRUE(writer->append(std::span(events)));
    ASSERT_TRUE(writer->close());
  }
  auto set = SegmentSet::open(dir_);
  ASSERT_TRUE(set);
  EXPECT_EQ(set->num_segments(), 1u);
  EXPECT_TRUE(set->segments()[0]->meta().sealed);
  // Arrival order is append order, so the round trip is byte-wise
  // without any sorting.
  EXPECT_TRUE(set->events() == events);
}

TEST_F(StorageTest, RollsBySizeAndServesAcrossSegments) {
  SegmentConfig config;
  config.max_segment_bytes = 4096;  // force many rolls
  auto events = make_events(1000);
  {
    auto writer = SegmentWriter::open(dir_, config);
    ASSERT_TRUE(writer);
    ASSERT_TRUE(writer->append(std::span(events)));
    ASSERT_TRUE(writer->close());
    EXPECT_GT(writer->segments_sealed(), 5u);
  }
  auto set = SegmentSet::open(dir_);
  EXPECT_GT(set->num_segments(), 5u);
  EXPECT_EQ(set->size(), events.size());
  EXPECT_TRUE(set->events() == events);
}

TEST_F(StorageTest, RollsByTimeSpan) {
  SegmentConfig config;
  config.max_segment_span = 100;  // events span 10s apart, 50s long
  auto events = make_events(100);
  {
    auto writer = SegmentWriter::open(dir_, config);
    ASSERT_TRUE(writer);
    ASSERT_TRUE(writer->append(std::span(events)));
    ASSERT_TRUE(writer->close());
    EXPECT_GT(writer->segments_sealed(), 3u);
  }
  EXPECT_GT(SegmentSet::open(dir_)->num_segments(), 3u);
}

TEST_F(StorageTest, TimeWindowQueriesMatchFullScanAndUseTheIndex) {
  SegmentConfig config;
  config.max_segment_bytes = 16384;
  config.index_block_records = 16;
  auto events = make_events(2000);
  {
    auto writer = SegmentWriter::open(dir_, config);
    ASSERT_TRUE(writer->append(std::span(events)));
    ASSERT_TRUE(writer->close());
  }
  auto set = SegmentSet::open(dir_);
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    util::SimTime t0 = 900 + static_cast<util::SimTime>(rng.uniform(21000));
    util::SimTime t1 = t0 + 1 + static_cast<util::SimTime>(rng.uniform(4000));
    // Reference: the shared overlap rule over a full scan.
    std::vector<PeerEvent> expect;
    for (const auto& e : events) {
      if (core::overlaps_window(e.start, e.end, t0, t1)) expect.push_back(e);
    }
    auto got = set->events_in(t0, t1);
    core::canonical_sort(expect);
    core::canonical_sort(got);
    EXPECT_TRUE(got == expect) << "window [" << t0 << "," << t1 << ")";
  }
  // A narrow window decodes only a few of the many index blocks.
  ASSERT_GT(set->num_segments(), 1u);
  (void)set->events_in(1000, 1011);
  std::size_t decoded = 0, total_blocks = 0;
  for (const auto& seg : set->segments()) {
    decoded += seg->last_scan_blocks_decoded();
    total_blocks += seg->meta().index.size();
  }
  EXPECT_LT(decoded, total_blocks / 4)
      << "narrow window should seek via the sparse index, not scan";
}

TEST_F(StorageTest, RetentionDropsOldestSegments) {
  SegmentConfig config;
  config.max_segment_bytes = 4096;
  config.retain_max_segments = 3;
  auto events = make_events(1000);
  auto writer = SegmentWriter::open(dir_, config);
  ASSERT_TRUE(writer->append(std::span(events)));
  ASSERT_TRUE(writer->close());
  EXPECT_GT(writer->segments_retired(), 0u);
  auto set = SegmentSet::open(dir_);
  EXPECT_LE(set->num_segments(), 3u);
  // What survives is a suffix of the appended stream (oldest dropped).
  auto kept = set->events();
  ASSERT_FALSE(kept.empty());
  std::vector<PeerEvent> tail(events.end() - static_cast<std::ptrdiff_t>(kept.size()),
                              events.end());
  EXPECT_TRUE(kept == tail);
}

// ---- crash recovery ----------------------------------------------------

// Simulates a writer killed mid-append: flush (ack) a prefix, append
// more bytes including a final torn record, never seal.
std::string write_torn_segment(const std::string& dir,
                               const std::vector<PeerEvent>& acked,
                               std::size_t torn_tail_bytes) {
  fs::create_directories(dir);
  std::string path = (fs::path(dir) / segment_file_name(1)).string();
  net::BufWriter content;
  encode_segment_header(content);
  for (const auto& e : acked) encode_record(e, content);
  net::BufWriter torn;
  encode_record(make_event(9999, 1, 2), torn);
  std::size_t keep = std::min(torn_tail_bytes, torn.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_EQ(std::fwrite(content.data().data(), 1, content.size(), f),
            content.size());
  EXPECT_EQ(std::fwrite(torn.data().data(), 1, keep, f), keep);
  std::fclose(f);
  return path;
}

TEST_F(StorageTest, TornTailRecoveryKeepsExactlyTheAckedPrefix) {
  auto acked = make_events(100);
  // Sweep torn-tail lengths: 0 (clean unsealed), mid-header, mid-
  // payload, one byte short of complete.
  net::BufWriter probe;
  encode_record(make_event(9999, 1, 2), probe);
  for (std::size_t tail : {std::size_t{0}, std::size_t{3}, std::size_t{20},
                           probe.size() - 1}) {
    fs::remove_all(dir_);
    std::string path = write_torn_segment(dir_, acked, tail);
    RecoveryResult result = recover_segment(path);
    ASSERT_TRUE(result.ok) << "tail=" << tail;
    EXPECT_FALSE(result.was_sealed);
    EXPECT_EQ(result.records, acked.size());
    EXPECT_EQ(result.truncated_bytes, tail);
    // The recovered segment now reads like any sealed one, and its
    // event set equals the acked prefix byte-wise.
    auto reader = SegmentReader::open(path);
    ASSERT_TRUE(reader);
    EXPECT_TRUE(reader->meta().sealed);
    EXPECT_TRUE(reader->events() == acked);
    // Recovery is idempotent.
    RecoveryResult again = recover_segment(path);
    EXPECT_TRUE(again.ok);
    EXPECT_TRUE(again.was_sealed);
  }
}

TEST_F(StorageTest, ReadOnlyOpenServesAckedPrefixWithoutMutating) {
  auto acked = make_events(50);
  std::string path = write_torn_segment(dir_, acked, 17);
  auto before = fs::file_size(path);
  auto reader = SegmentReader::open(path);
  ASSERT_TRUE(reader);
  EXPECT_FALSE(reader->meta().sealed);
  EXPECT_TRUE(reader->events() == acked);
  EXPECT_EQ(fs::file_size(path), before) << "read path must not mutate";
  // SegmentSet (the kReopen read path) serves it too.
  auto set = SegmentSet::open(dir_);
  EXPECT_TRUE(set->events() == acked);
}

TEST_F(StorageTest, WriterOpenHealsTornSegmentAndContinuesAfterIt) {
  auto acked = make_events(60);
  write_torn_segment(dir_, acked, 25);
  auto more = make_events(40, /*t0=*/5000);
  {
    auto writer = SegmentWriter::open(dir_);  // recovery runs here
    ASSERT_TRUE(writer);
    EXPECT_EQ(writer->active_seq(), 2u) << "continue after the healed segment";
    ASSERT_TRUE(writer->append(std::span(more)));
    ASSERT_TRUE(writer->close());
  }
  auto set = SegmentSet::open(dir_);
  ASSERT_EQ(set->num_segments(), 2u);
  EXPECT_TRUE(set->segments()[0]->meta().sealed) << "healed in place";
  std::vector<PeerEvent> expect = acked;
  expect.insert(expect.end(), more.begin(), more.end());
  EXPECT_TRUE(set->events() == expect);
}

TEST_F(StorageTest, GarbageAndForeignFilesAreSkippedNotFatal) {
  fs::create_directories(dir_);
  // A foreign file and a garbage "segment".
  { std::FILE* f = std::fopen((fs::path(dir_) / "notes.txt").string().c_str(), "wb");
    std::fputs("hello", f);
    std::fclose(f); }
  { std::FILE* f = std::fopen(
        (fs::path(dir_) / segment_file_name(7)).string().c_str(), "wb");
    std::fputs("not a segment at all", f);
    std::fclose(f); }
  auto events = make_events(10);
  {
    auto writer = SegmentWriter::open(dir_);
    ASSERT_TRUE(writer);
    EXPECT_EQ(writer->active_seq(), 8u) << "never reuse a claimed seq";
    ASSERT_TRUE(writer->append(std::span(events)));
    ASSERT_TRUE(writer->close());
  }
  auto set = SegmentSet::open(dir_);
  EXPECT_EQ(set->num_segments(), 1u);
  EXPECT_EQ(set->skipped_files(), 1u);
  EXPECT_TRUE(set->events() == events);
}

// ---- spill writer ------------------------------------------------------

TEST_F(StorageTest, SpillWriterPersistsConcurrentSubmissionsLosslessly) {
  SpillConfig config;
  config.dir = dir_;
  config.segment.max_segment_bytes = 64 * 1024;
  config.queue_chunks = 4;  // small bound: exercises submit backpressure
  auto spill = SpillWriter::open(config);
  ASSERT_TRUE(spill);

  constexpr std::size_t kThreads = 3, kChunksPerThread = 40, kChunkLen = 25;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&spill, t] {
      for (std::size_t c = 0; c < kChunksPerThread; ++c) {
        std::vector<PeerEvent> chunk;
        for (std::size_t i = 0; i < kChunkLen; ++i) {
          auto id = static_cast<std::uint32_t>(
              (t * kChunksPerThread + c) * kChunkLen + i);
          chunk.push_back(make_event(id, 1000 + id, 1050 + id));
        }
        ASSERT_TRUE(spill->submit(std::move(chunk)));
      }
    });
  }
  for (auto& t : threads) t.join();
  spill->stop();
  EXPECT_FALSE(spill->io_error());
  EXPECT_EQ(spill->events_spilled(), kThreads * kChunksPerThread * kChunkLen);

  // Everything submitted is on disk exactly once (chunk interleaving
  // across threads is arbitrary, so compare canonically).
  auto set = SegmentSet::open(dir_);
  auto on_disk = set->events();
  ASSERT_EQ(on_disk.size(), kThreads * kChunksPerThread * kChunkLen);
  std::vector<PeerEvent> expect;
  for (std::uint32_t id = 0;
       id < kThreads * kChunksPerThread * kChunkLen; ++id) {
    expect.push_back(make_event(id, 1000 + id, 1050 + id));
  }
  core::canonical_sort(expect);
  core::canonical_sort(on_disk);
  EXPECT_TRUE(on_disk == expect);
  EXPECT_FALSE(spill->submit({make_event(1, 1, 2)})) << "stopped: refused";
}

}  // namespace
}  // namespace bgpbh::storage
