// Property sweeps over the blackhole propagation engine: for hundreds
// of randomly drawn announcements, structural invariants must hold.
#include <gtest/gtest.h>

#include <set>

#include "routing/propagation.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace bgpbh::routing {
namespace {

struct Env {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::CustomerCones cones{graph};
  PropagationEngine engine{graph, cones, 99};
};

Env& env() {
  static Env e;
  return e;
}

BlackholeAnnouncement random_announcement(util::Rng& rng) {
  const auto& nodes = env().graph.nodes();
  for (;;) {
    const auto& user = nodes[rng.uniform(nodes.size())];
    if (user.originated_v4.empty()) continue;
    BlackholeAnnouncement ann;
    ann.user = user.asn;
    std::uint32_t host = user.v4_block.addr().v4().value() +
                         static_cast<std::uint32_t>(rng.uniform(1u << 16));
    ann.prefix = net::Prefix(net::Ipv4Addr(host), 32);
    for (bgp::Asn p : user.providers) {
      const topology::AsNode* pn = env().graph.find(p);
      if (pn && pn->blackhole.offers_blackholing && rng.bernoulli(0.7)) {
        ann.target_providers.push_back(p);
      }
    }
    for (std::uint32_t ix : user.ixps) {
      const topology::Ixp* ixp = env().graph.find_ixp(ix);
      if (ixp && ixp->offers_blackholing && rng.bernoulli(0.5)) {
        ann.target_ixps.push_back(ix);
      }
    }
    if (ann.target_providers.empty() && ann.target_ixps.empty()) continue;
    ann.bundle = rng.bernoulli(0.5);
    ann.time = 1000;
    return ann;
  }
}

class PropagationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropagationProperty, StructuralInvariants) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 150; ++iter) {
    auto ann = random_announcement(rng);
    auto prop = env().engine.propagate_blackhole(ann);

    // 1. The user itself is always the first holder, with hop 0.
    ASSERT_FALSE(prop.holders.empty());
    EXPECT_EQ(prop.holders.front().holder, ann.user);
    EXPECT_EQ(prop.holders.front().hops_from_user, 0);

    // 2. No duplicate holders (each AS holds at most one copy), except
    //    route-server pseudo-holders which are tracked separately.
    std::set<bgp::Asn> seen;
    for (const auto& h : prop.holders) {
      if (h.via_route_server && h.holder != ann.user) continue;
      EXPECT_TRUE(seen.insert(h.holder).second)
          << "duplicate holder AS" << h.holder;
    }

    // 3. Non-RS holder paths are loop-free and terminate at the user.
    for (const auto& h : prop.holders) {
      if (h.via_route_server) continue;
      ASSERT_FALSE(h.path.empty());
      EXPECT_EQ(h.path.origin(), ann.user);
      std::set<bgp::Asn> hops(h.path.hops().begin(), h.path.hops().end());
      EXPECT_EQ(hops.size(), h.path.length()) << "loop in " << h.path.to_string();
      EXPECT_LE(h.hops_from_user, 6);
    }

    // 4. Activated providers are either explicit targets or providers
    //    whose community was carried by the bundle.
    for (bgp::Asn p : prop.activated_providers) {
      const topology::AsNode* pn = env().graph.find(p);
      ASSERT_NE(pn, nullptr);
      EXPECT_TRUE(pn->blackhole.offers_blackholing);
      bool targeted = std::find(ann.target_providers.begin(),
                                ann.target_providers.end(),
                                p) != ann.target_providers.end();
      EXPECT_TRUE(targeted || ann.bundle)
          << "AS" << p << " activated without being targeted or bundled";
    }

    // 5. Activated IXPs all offer blackholing and have the user as a
    //    member; rs_receivers reference only activated IXPs.
    std::set<std::uint32_t> activated(prop.activated_ixps.begin(),
                                      prop.activated_ixps.end());
    for (std::uint32_t ix : prop.activated_ixps) {
      const topology::Ixp* ixp = env().graph.find_ixp(ix);
      ASSERT_NE(ixp, nullptr);
      EXPECT_TRUE(ixp->offers_blackholing);
      EXPECT_TRUE(std::binary_search(ixp->members.begin(), ixp->members.end(),
                                     ann.user));
    }
    for (const auto& [ix, member] : prop.rs_receivers) {
      EXPECT_TRUE(activated.contains(ix));
      EXPECT_NE(member, ann.user);
      EXPECT_TRUE(env().engine.member_uses_route_server(ix, member));
    }

    // 6. Holder communities: blackhole communities of activated
    //    providers appear in the corresponding provider's held copy.
    for (const auto& h : prop.holders) {
      if (h.via_route_server) continue;
      if (std::find(prop.activated_providers.begin(),
                    prop.activated_providers.end(),
                    h.holder) == prop.activated_providers.end())
        continue;
      const topology::AsNode* pn = env().graph.find(h.holder);
      EXPECT_TRUE(h.communities.contains(pn->blackhole.communities.front()))
          << "provider AS" << h.holder << " lost its own community";
    }
  }
}

TEST_P(PropagationProperty, WithdrawnIdempotence) {
  // Propagating the same announcement twice yields identical results
  // (the engine is stateless apart from the route-tree cache).
  util::Rng rng(GetParam() ^ 0xABBA);
  for (int iter = 0; iter < 40; ++iter) {
    auto ann = random_announcement(rng);
    auto a = env().engine.propagate_blackhole(ann);
    auto b = env().engine.propagate_blackhole(ann);
    EXPECT_EQ(a.activated_providers, b.activated_providers);
    EXPECT_EQ(a.activated_ixps, b.activated_ixps);
    EXPECT_EQ(a.rs_receivers, b.rs_receivers);
    ASSERT_EQ(a.holders.size(), b.holders.size());
    for (std::size_t i = 0; i < a.holders.size(); ++i) {
      EXPECT_EQ(a.holders[i].holder, b.holders[i].holder);
      EXPECT_EQ(a.holders[i].path, b.holders[i].path);
    }
  }
}

TEST_P(PropagationProperty, LessSpecificAlwaysRejected) {
  // The /24-or-shorter rule holds for every provider and IXP.
  util::Rng rng(GetParam() ^ 0x2424);
  for (int iter = 0; iter < 60; ++iter) {
    auto ann = random_announcement(rng);
    ann.prefix = ann.prefix.parent(static_cast<std::uint8_t>(8 + rng.uniform(17)));
    auto prop = env().engine.propagate_blackhole(ann);
    EXPECT_TRUE(prop.activated_providers.empty())
        << ann.prefix.to_string() << " must not be blackholable";
    EXPECT_TRUE(prop.activated_ixps.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationProperty,
                         ::testing::Values(11, 23, 47, 83));

}  // namespace
}  // namespace bgpbh::routing
