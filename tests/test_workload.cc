#include "workload/scenario.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpbh::workload {
namespace {

struct Env {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::CustomerCones cones{graph};
  WorkloadConfig config;
  WorkloadGenerator gen{graph, cones, config};

  std::vector<Episode> sample_month() {
    std::vector<Episode> all;
    std::int64_t d0 = util::day_index(util::from_date(2017, 2, 1));
    for (std::int64_t d = d0; d < d0 + 28; ++d) {
      auto eps = gen.episodes_for_day(d);
      all.insert(all.end(), eps.begin(), eps.end());
    }
    return all;
  }
};

Env& env() {
  static Env e;
  return e;
}

const std::vector<Episode>& month() {
  static std::vector<Episode> m = env().sample_month();
  return m;
}

TEST(Workload, EligibleUsersNonEmpty) {
  EXPECT_GT(env().gen.eligible_users().size(), 500u);
  for (const auto& u : env().gen.eligible_users()) {
    EXPECT_TRUE(!u.available_providers.empty() || !u.available_ixps.empty());
    EXPECT_GT(u.activity_weight, 0.0);
  }
}

TEST(Workload, EpisodesHaveValidTargets) {
  for (const auto& episode : month()) {
    EXPECT_FALSE(episode.providers.empty() && episode.ixps.empty());
    const topology::AsNode* user = env().graph.find(episode.user);
    ASSERT_NE(user, nullptr);
    for (bgp::Asn p : episode.providers) {
      // Targets must actually be the user's blackholing-capable providers.
      EXPECT_NE(std::find(user->providers.begin(), user->providers.end(), p),
                user->providers.end());
      EXPECT_TRUE(env().graph.find(p)->blackhole.offers_blackholing);
    }
    for (std::uint32_t ix : episode.ixps) {
      const topology::Ixp* ixp = env().graph.find_ixp(ix);
      ASSERT_NE(ixp, nullptr);
      EXPECT_TRUE(ixp->offers_blackholing);
      EXPECT_TRUE(std::binary_search(ixp->members.begin(), ixp->members.end(),
                                     episode.user));
    }
  }
}

TEST(Workload, OnPeriodsOrderedWithinEpisode) {
  for (const auto& episode : month()) {
    ASSERT_FALSE(episode.on_periods.empty());
    util::SimTime prev_end = episode.start - 1;
    for (const auto& p : episode.on_periods) {
      EXPECT_GT(p.start, prev_end);
      EXPECT_GT(p.end, p.start);
      EXPECT_LE(p.end, episode.end);
      prev_end = p.end;
    }
    // Gaps between materialized ON periods stay below the 5-minute
    // grouping timeout (the paper's probing practice).
    for (std::size_t i = 1; i < episode.on_periods.size(); ++i) {
      EXPECT_LE(episode.on_periods[i].start - episode.on_periods[i - 1].end,
                5 * util::kMinute);
    }
  }
}

TEST(Workload, VictimPrefixBelongsToUser) {
  for (const auto& episode : month()) {
    if (!episode.prefix.is_v4()) continue;
    auto origin = env().graph.origin_of(episode.prefix.addr());
    ASSERT_TRUE(origin);
    EXPECT_EQ(*origin, episode.user);
  }
}

TEST(Workload, HostRouteShare) {
  std::size_t v4 = 0, host_routes = 0;
  for (const auto& episode : month()) {
    if (!episode.prefix.is_v4()) continue;
    ++v4;
    if (episode.prefix.is_host_route()) ++host_routes;
  }
  ASSERT_GT(v4, 100u);
  // ~98% of blackholed IPv4 prefixes are /32s (§5.1).
  EXPECT_NEAR(static_cast<double>(host_routes) / static_cast<double>(v4), 0.975,
              0.03);
}

TEST(Workload, BundleRate) {
  std::size_t bundled = 0;
  for (const auto& episode : month()) bundled += episode.bundle;
  double rate = static_cast<double>(bundled) / static_cast<double>(month().size());
  EXPECT_NEAR(rate, env().config.bundle_probability, 0.08);
}

TEST(Workload, MultiProviderRate) {
  std::size_t multi = 0;
  for (const auto& episode : month()) {
    if (episode.providers.size() + episode.ixps.size() > 1) ++multi;
  }
  double rate = static_cast<double>(multi) / static_cast<double>(month().size());
  // 28% of events involve multiple providers (Fig 7b); the realized rate
  // is bounded by users that actually have several options.
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.50);
}

TEST(Workload, ProviderCountCap) {
  for (const auto& episode : month()) {
    EXPECT_LE(episode.providers.size() + episode.ixps.size(), 20u);
  }
}

TEST(Workload, MisconfigRateLow) {
  std::size_t misconfigured = 0;
  for (const auto& episode : month()) {
    if (episode.misconfig != routing::BlackholeAnnouncement::Misconfig::kNone)
      ++misconfigured;
  }
  double rate =
      static_cast<double>(misconfigured) / static_cast<double>(month().size());
  EXPECT_LT(rate, 0.05);
}

TEST(Workload, PrefixIntervalsDisjoint) {
  std::map<net::Prefix, std::vector<std::pair<util::SimTime, util::SimTime>>>
      intervals;
  for (const auto& episode : month()) {
    intervals[episode.prefix].emplace_back(episode.start, episode.end);
  }
  for (auto& [prefix, spans] : intervals) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << prefix.to_string() << " has overlapping ground-truth episodes";
    }
  }
}

TEST(Workload, AnnouncementCarriesEpisodeFields) {
  const Episode& episode = month().front();
  auto ann = episode.announcement(episode.start + 5);
  EXPECT_EQ(ann.user, episode.user);
  EXPECT_EQ(ann.prefix, episode.prefix);
  EXPECT_EQ(ann.target_providers, episode.providers);
  EXPECT_EQ(ann.bundle, episode.bundle);
  EXPECT_EQ(ann.time, episode.start + 5);
}

TEST(Workload, ContentUsersDominatePrefixes) {
  std::map<topology::NetworkType, std::size_t> prefixes_by_type;
  std::map<topology::NetworkType, std::set<bgp::Asn>> users_by_type;
  for (const auto& episode : month()) {
    auto type = env().graph.find(episode.user)->type;
    prefixes_by_type[type] += 1;
    users_by_type[type].insert(episode.user);
  }
  // Content providers originate the plurality of blackholed prefixes
  // (43% in the paper, §8).
  std::size_t content = prefixes_by_type[topology::NetworkType::kContent];
  for (auto& [type, count] : prefixes_by_type) {
    if (type == topology::NetworkType::kContent) continue;
    EXPECT_GE(content, count / 2) << to_string(type);
  }
}

TEST(Workload, SpikeADayProducesMassMisconfig) {
  WorkloadGenerator gen(env().graph, env().cones, env().config);
  std::int64_t spike_day = util::day_index(util::from_date(2016, 4, 18));
  auto episodes = gen.episodes_for_day(spike_day);
  // The accidental /24-table blackholing of an academic network: many
  // short /24 episodes from one edu user.
  std::size_t academic_24s = 0;
  for (const auto& e : episodes) {
    if (e.prefix.len() == 24 &&
        env().graph.find(e.user)->type == topology::NetworkType::kEduResearchNfP &&
        e.end - e.start < 2 * util::kMinute) {
      ++academic_24s;
    }
  }
  EXPECT_GT(academic_24s, 3u);
}

TEST(Workload, DailyVolumeGrowsOverStudy) {
  WorkloadGenerator gen(env().graph, env().cones, env().config);
  std::int64_t early = util::day_index(util::from_date(2015, 1, 15));
  std::int64_t late = util::day_index(util::from_date(2017, 2, 15));
  std::size_t early_count = 0, late_count = 0;
  for (int i = 0; i < 10; ++i) {
    early_count += gen.episodes_for_day(early + i).size();
    late_count += gen.episodes_for_day(late + i).size();
  }
  EXPECT_GT(late_count, early_count * 2);
}

TEST(Workload, Deterministic) {
  WorkloadGenerator g1(env().graph, env().cones, env().config);
  WorkloadGenerator g2(env().graph, env().cones, env().config);
  std::int64_t day = util::day_index(util::from_date(2016, 9, 20));
  auto e1 = g1.episodes_for_day(day);
  auto e2 = g2.episodes_for_day(day);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].user, e2[i].user);
    EXPECT_EQ(e1[i].prefix, e2[i].prefix);
    EXPECT_EQ(e1[i].start, e2[i].start);
  }
}

TEST(Workload, BackgroundAnnouncementsValid) {
  WorkloadGenerator gen(env().graph, env().cones, env().config);
  std::int64_t day = util::day_index(util::from_date(2017, 1, 10));
  auto background = gen.background_for_day(day);
  EXPECT_FALSE(background.empty());
  for (const auto& ann : background) {
    const topology::AsNode* node = env().graph.find(ann.user);
    ASSERT_NE(node, nullptr);
    // Regular announcements: the AS's own public prefixes, never
    // more specific than /24.
    EXPECT_FALSE(ann.prefix.more_specific_than(24));
    EXPECT_TRUE(node->v4_block.covers(ann.prefix));
  }
}

}  // namespace
}  // namespace bgpbh::workload
