#include "net/bytes.h"

#include <gtest/gtest.h>

namespace bgpbh::net {
namespace {

TEST(BufWriter, BigEndianLayout) {
  BufWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 7u);
  EXPECT_EQ(d[0], 0xAB);
  EXPECT_EQ(d[1], 0x12);
  EXPECT_EQ(d[2], 0x34);
  EXPECT_EQ(d[3], 0xDE);
  EXPECT_EQ(d[6], 0xEF);
}

TEST(BufWriter, U64) {
  BufWriter w;
  w.u64(0x0102030405060708ULL);
  ASSERT_EQ(w.size(), 8u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[7], 0x08);
}

TEST(BufWriter, Patch) {
  BufWriter w;
  w.u16(0);
  w.u32(0);
  w.patch_u16(0, 0xBEEF);
  w.patch_u32(2, 0x01020304);
  EXPECT_EQ(w.data()[0], 0xBE);
  EXPECT_EQ(w.data()[2], 0x01);
  EXPECT_EQ(w.data()[5], 0x04);
}

TEST(BufWriter, StrAndBytes) {
  BufWriter w;
  w.str("ab");
  std::uint8_t raw[] = {1, 2, 3};
  w.bytes(raw);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(w.data()[0], 'a');
  EXPECT_EQ(w.data()[4], 3);
}

TEST(BufReader, ReadsBack) {
  BufWriter w;
  w.u8(7);
  w.u16(300);
  w.u32(1u << 30);
  w.u64(1ULL << 60);
  BufReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 300);
  EXPECT_EQ(r.u32(), 1u << 30);
  EXPECT_EQ(r.u64(), 1ULL << 60);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(BufReader, TruncationLatchesError) {
  std::uint8_t raw[] = {1, 2};
  BufReader r(raw);
  EXPECT_EQ(r.u32(), 0u);  // truncated
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay zero without UB.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufReader, BytesTruncation) {
  std::uint8_t raw[] = {1, 2, 3};
  BufReader r(raw);
  auto got = r.bytes(5);
  EXPECT_TRUE(got.empty());
  EXPECT_FALSE(r.ok());
}

TEST(BufReader, SubReaderIsolatesRange) {
  BufWriter w;
  w.u16(0xAAAA);
  w.u16(0xBBBB);
  w.u16(0xCCCC);
  BufReader r(w.data());
  r.skip(2);
  BufReader sub = r.sub(2);
  EXPECT_EQ(sub.u16(), 0xBBBB);
  EXPECT_TRUE(sub.at_end());
  EXPECT_EQ(r.u16(), 0xCCCC);  // outer reader continues after the sub
  EXPECT_TRUE(r.ok());
}

TEST(BufReader, EmptyBuffer) {
  BufReader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace bgpbh::net
