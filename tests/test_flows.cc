#include "flows/ixp_traffic.h"

#include <gtest/gtest.h>

#include "topology/generator.h"
#include "util/rng.h"

namespace bgpbh::flows {
namespace {

TEST(Ipfix, RoundTrip) {
  std::vector<FlowRecord> records;
  for (int i = 0; i < 20; ++i) {
    FlowRecord r;
    r.start = 1000 + i;
    r.src_ip = net::Ipv4Addr(0x0A000001u + i);
    r.dst_ip = net::Ipv4Addr(0x14000001u);
    r.src_port = static_cast<std::uint16_t>(1024 + i);
    r.dst_port = 80;
    r.protocol = i % 2 ? 6 : 17;
    r.bytes = 1000u * (i + 1);
    r.packets = 10u * (i + 1);
    r.in_member = 100 + i;
    r.out_member = 400;
    records.push_back(r);
  }
  IpfixExporter exporter(7);
  auto msg = exporter.export_message(records, 5000);
  auto decoded = decode_message(msg);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, records);
}

TEST(Ipfix, EmptyBatch) {
  IpfixExporter exporter(7);
  auto msg = exporter.export_message({}, 5000);
  auto decoded = decode_message(msg);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->empty());
}

TEST(Ipfix, CorruptedLengthRejected) {
  IpfixExporter exporter(7);
  FlowRecord r;
  auto msg = exporter.export_message(std::vector<FlowRecord>{r}, 1);
  msg[2] ^= 0x55;  // corrupt total length
  EXPECT_FALSE(decode_message(msg));
}

TEST(Ipfix, TruncatedRejected) {
  IpfixExporter exporter(7);
  FlowRecord r;
  auto msg = exporter.export_message(std::vector<FlowRecord>{r}, 1);
  msg.resize(msg.size() - 4);
  EXPECT_FALSE(decode_message(msg));
}

TEST(Sampler, ExactLongRunRate) {
  Sampler s(10000);
  std::uint64_t samples = 0, packets = 0;
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t p = rng.uniform(5000);
    packets += p;
    samples += s.sample(p);
  }
  // Systematic sampling is exact up to the final phase remainder.
  EXPECT_EQ(samples, packets / 10000);
}

TEST(Sampler, SmallFlowsAccumulate) {
  Sampler s(100);
  std::uint64_t samples = 0;
  for (int i = 0; i < 250; ++i) samples += s.sample(1);
  EXPECT_EQ(samples, 2u);
}

TEST(Sampler, RateOneSamplesEverything) {
  Sampler s(1);
  EXPECT_EQ(s.sample(37), 37u);
}

struct Env {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::CustomerCones cones{graph};
  routing::PropagationEngine engine{graph, cones, 99};

  const topology::Ixp* bh_ixp() const {
    for (const auto& ixp : graph.ixps()) {
      if (ixp.offers_blackholing && ixp.members.size() >= 30) return &ixp;
    }
    return nullptr;
  }

  workload::Episode ixp_episode(std::uint32_t ixp_id, bgp::Asn user,
                                std::uint32_t salt,
                                routing::BlackholeAnnouncement::Misconfig mis =
                                    routing::BlackholeAnnouncement::Misconfig::kNone) {
    const topology::AsNode* node = graph.find(user);
    workload::Episode e;
    e.user = user;
    e.prefix = net::Prefix(
        net::Ipv4Addr(node->v4_block.addr().v4().value() + 0x0500 + salt), 32);
    e.ixps = {ixp_id};
    e.misconfig = mis;
    e.start = util::from_date(2017, 3, 20);
    e.end = e.start + util::kWeek;
    e.on_periods.push_back(workload::OnPeriod{e.start, e.end, true});
    return e;
  }
};

Env& env() {
  static Env e;
  return e;
}

TEST(IxpTraffic, WeekSimulationSplitsTraffic) {
  const topology::Ixp* ixp = env().bh_ixp();
  ASSERT_NE(ixp, nullptr);
  std::vector<workload::Episode> episodes;
  for (int i = 0; i < 4; ++i) {
    episodes.push_back(env().ixp_episode(ixp->id, ixp->members[i], i));
  }
  IxpTrafficSim sim(env().graph, env().engine, IxpTrafficConfig{});
  auto report = sim.simulate(ixp->id, episodes, episodes[0].start, 7);

  ASSERT_EQ(report.per_prefix.size(), 4u);
  EXPECT_GT(report.total_blackholed_bytes, 0u);
  EXPECT_GT(report.total_forwarded_bytes, 0u);
  // §10: more than 50% of traffic toward successfully blackholed /32s
  // is dropped at the IXP (member honouring rate ~0.68), but not all.
  EXPECT_GT(report.drop_fraction(), 0.15);
  EXPECT_LT(report.drop_fraction(), 0.95);
  // Each prefix has 7 days of series data.
  for (auto& [prefix, split] : report.per_prefix) {
    EXPECT_GE(split.blackholed.num_days() + split.forwarded.num_days(), 7u);
  }
}

TEST(IxpTraffic, ResidualConcentration) {
  const topology::Ixp* ixp = env().bh_ixp();
  std::vector<workload::Episode> episodes = {
      env().ixp_episode(ixp->id, ixp->members[0], 10)};
  IxpTrafficSim sim(env().graph, env().engine, IxpTrafficConfig{});
  auto report = sim.simulate(ixp->id, episodes, episodes[0].start, 7);
  // A large share of residual traffic comes from a few members (the
  // paper: 80% from fewer than ten member ASes).
  EXPECT_GT(report.residual_share_of_top(10), 0.5);
  EXPECT_LE(report.residual_share_of_top(report.residual_member_count()), 1.0);
  EXPECT_DOUBLE_EQ(report.residual_share_of_top(report.residual_member_count()),
                   1.0);
}

TEST(IxpTraffic, MisconfiguredAnnouncementDropsNothing) {
  const topology::Ixp* ixp = env().bh_ixp();
  std::vector<workload::Episode> episodes = {env().ixp_episode(
      ixp->id, ixp->members[0], 20,
      routing::BlackholeAnnouncement::Misconfig::kInvalidNextHop)};
  IxpTrafficSim sim(env().graph, env().engine, IxpTrafficConfig{});
  auto report = sim.simulate(ixp->id, episodes, episodes[0].start, 3);
  // Control-plane blackholing with no data-plane reduction (red region
  // of Fig 9c).
  EXPECT_EQ(report.total_blackholed_bytes, 0u);
  EXPECT_GT(report.total_forwarded_bytes, 0u);
}

TEST(IxpTraffic, EpisodesAtOtherIxpsIgnored) {
  const topology::Ixp* ixp = env().bh_ixp();
  std::vector<workload::Episode> episodes = {
      env().ixp_episode(ixp->id + 1, ixp->members[0], 30)};
  IxpTrafficSim sim(env().graph, env().engine, IxpTrafficConfig{});
  auto report = sim.simulate(ixp->id, episodes, episodes[0].start, 3);
  EXPECT_TRUE(report.per_prefix.empty());
}

TEST(IxpTraffic, OneDayAnalysisFractionDropping) {
  const topology::Ixp* ixp = env().bh_ixp();
  std::vector<workload::Episode> episodes;
  for (int i = 0; i < 6; ++i) {
    episodes.push_back(env().ixp_episode(ixp->id, ixp->members[i], 40 + i));
  }
  IxpTrafficSim sim(env().graph, env().engine, IxpTrafficConfig{});
  auto analysis = sim.analyze_one_day(ixp->id, episodes);
  EXPECT_GT(analysis.senders, 10u);
  EXPECT_GT(analysis.senders_dropping, 0u);
  // "about one third" of the traffic-sending ASes drop for at least one
  // blackholed IP — wide tolerance for topology randomness.
  EXPECT_GT(analysis.fraction_dropping(), 0.1);
  EXPECT_LT(analysis.fraction_dropping(), 0.65);
}

TEST(IxpTraffic, SampledFlowsExportable) {
  const topology::Ixp* ixp = env().bh_ixp();
  std::vector<workload::Episode> episodes = {
      env().ixp_episode(ixp->id, ixp->members[0], 50)};
  IxpTrafficSim sim(env().graph, env().engine, IxpTrafficConfig{});
  sim.simulate(ixp->id, episodes, episodes[0].start, 7);
  const auto& flows = sim.sampled_flows();
  if (flows.empty()) GTEST_SKIP() << "sampling produced no flows at this rate";
  IpfixExporter exporter(ixp->id);
  auto messages = exporter.export_batches(flows, episodes[0].start);
  std::size_t decoded_total = 0;
  for (const auto& msg : messages) {
    auto decoded = decode_message(msg);
    ASSERT_TRUE(decoded);
    decoded_total += decoded->size();
  }
  EXPECT_EQ(decoded_total, flows.size());
}

}  // namespace
}  // namespace bgpbh::flows
