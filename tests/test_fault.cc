// Fault-tolerance suite (src/fault/ + the recovery machinery it
// exercises):
//   * RetryPolicy: deterministic backoff, caps, jitter bounds,
//   * util::LogRateLimiter token bucket,
//   * FaultPlan/FaultInjector schedules (incl. seeded determinism),
//   * FaultySource outages + ReconnectingSource rejoin/gap accounting,
//   * SegmentWriter exactly-once durability across injected write /
//     flush / sync / short-write failures,
//   * SpillWriter retry -> degrade -> probe -> re-arm, and exact
//     events_lost() when the fault persists,
//   * SinkDispatcher kShed quarantine with exact shed counts,
//   * the AnalysisSession health plane, and
//   * the headline equivalence grid: recoverable fault schedules yield
//     the byte-identical event set of a fault-free run across shard
//     counts {1,3,8} x producer counts {1,3}; lossy schedules account
//     for every missing update exactly — no silent loss anywhere.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "fault/file_faults.h"
#include "fault/source_faults.h"
#include "storage/segment_reader.h"
#include "storage/segment_writer.h"
#include "storage/spill.h"
#include "util/log.h"
#include "util/retry.h"

namespace bgpbh::fault {
namespace {

namespace fs = std::filesystem;
using core::PeerEvent;
using routing::FeedUpdate;
using routing::Platform;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;

// Fast, deterministic policy for tests: real backoff shape, tiny real
// delays, no jitter unless a test wants it.
util::RetryPolicy fast_policy(std::size_t attempts = 3) {
  util::RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.base_delay = std::chrono::microseconds(200);
  policy.max_delay = milliseconds(2);
  policy.jitter = 0.0;
  return policy;
}

PeerEvent make_event(std::uint32_t n) {
  PeerEvent e;
  e.platform = Platform::kRis;
  e.peer.peer_ip = *net::IpAddr::parse("198.51.100.7");
  e.peer.peer_asn = 100 + (n % 7);
  e.prefix = *net::Prefix::parse(
      (std::to_string(10 + n % 200) + "." + std::to_string(n / 200 % 256) +
       ".0.1/32"));
  e.provider = core::ProviderRef{.is_ixp = false, .asn = 200, .ixp_id = 0};
  e.user = 400 + n;
  e.start = 1000 + n;
  e.end = 2000 + n;
  e.open = false;
  return e;
}

std::vector<PeerEvent> make_events(std::uint32_t count, std::uint32_t from = 0) {
  std::vector<PeerEvent> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(make_event(from + i));
  return out;
}

// All events a directory's segments hold, canonical order.
std::vector<PeerEvent> disk_events(const std::string& dir) {
  auto set = storage::SegmentSet::open(dir);
  std::vector<PeerEvent> out;
  if (set) {
    set->for_each([&out](const PeerEvent& e) { out.push_back(e); });
  }
  core::canonical_sort(out);
  return out;
}

std::string temp_dir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

// ---- RetryPolicy ------------------------------------------------------

TEST(RetryPolicy, DoublesFromBaseAndSaturatesAtMax) {
  util::RetryPolicy policy = fast_policy(10);
  policy.base_delay = milliseconds(10);
  policy.max_delay = milliseconds(45);
  EXPECT_EQ(policy.delay(1), milliseconds(10));
  EXPECT_EQ(policy.delay(2), milliseconds(20));
  EXPECT_EQ(policy.delay(3), milliseconds(40));
  EXPECT_EQ(policy.delay(4), milliseconds(45));    // capped
  EXPECT_EQ(policy.delay(100), milliseconds(45));  // shift-safe far out
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded) {
  util::RetryPolicy policy;
  policy.base_delay = milliseconds(100);
  policy.max_delay = std::chrono::seconds(10);
  policy.jitter = 0.25;
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    nanoseconds d1 = policy.delay(attempt);
    nanoseconds d2 = policy.delay(attempt);
    EXPECT_EQ(d1, d2) << "same (policy, attempt) must be bit-reproducible";
    nanoseconds nominal = milliseconds(100) * (1 << (attempt - 1));
    EXPECT_GE(d1.count(), nominal.count() * 0.75 - 1);
    EXPECT_LE(d1.count(), nominal.count() * 1.25 + 1);
  }
  // Distinct seeds decorrelate (no thundering herd).
  util::RetryPolicy other = policy;
  other.seed = policy.seed + 1;
  bool any_different = false;
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    any_different |= other.delay(attempt) != policy.delay(attempt);
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryPolicy, ZeroAttemptsStillMeansOneTry) {
  util::RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_EQ(policy.attempts(), 1u);
}

// ---- LogRateLimiter ---------------------------------------------------

TEST(LogRateLimiter, TokenBucketPermitsBurstThenSuppresses) {
  util::LogRateLimiter limiter(/*per_second=*/1.0, /*burst=*/2.0);
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(limiter.allow(t0));
  EXPECT_TRUE(limiter.allow(t0));   // burst capacity
  EXPECT_FALSE(limiter.allow(t0));  // bucket empty
  EXPECT_FALSE(limiter.allow(t0));
  // One second refills one token; the permit reports the run of
  // suppressed calls it ends.
  EXPECT_TRUE(limiter.allow(t0 + std::chrono::seconds(1)));
  EXPECT_EQ(limiter.last_suppressed(), 2u);
  EXPECT_EQ(limiter.total_suppressed(), 2u);
}

TEST(LogRateLimiter, RefillNeverExceedsBurstCapacity) {
  util::LogRateLimiter limiter(/*per_second=*/10.0, /*burst=*/3.0);
  auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(limiter.allow(t0));
  // A long quiet period must cap at `burst` tokens, not accumulate.
  auto later = t0 + std::chrono::hours(1);
  int permitted = 0;
  for (int i = 0; i < 10; ++i) permitted += limiter.allow(later) ? 1 : 0;
  EXPECT_EQ(permitted, 3);
}

// ---- FaultPlan / FaultInjector ----------------------------------------

TEST(FaultInjector, WindowsFireAtExactOpCountsPerSeam) {
  FaultPlan plan;
  plan.disconnect(/*at=*/2, /*length=*/2).fail_writes(/*at=*/1, /*length=*/1,
                                                      ENOSPC);
  FaultInjector injector(plan);

  // Source seam: ops 0,1 clean; 2,3 faulted; 4 clean.
  EXPECT_EQ(injector.on_op(Seam::kSource), nullptr);
  EXPECT_EQ(injector.on_op(Seam::kSource), nullptr);
  const FaultSpec* spec = injector.on_op(Seam::kSource);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->seam, Seam::kSource);
  EXPECT_NE(injector.on_op(Seam::kSource), nullptr);
  EXPECT_EQ(injector.on_op(Seam::kSource), nullptr);

  // Write seam counts independently: op 0 clean, op 1 ENOSPC.
  EXPECT_EQ(injector.on_op(Seam::kFileWrite), nullptr);
  const FaultSpec* write_spec = injector.on_op(Seam::kFileWrite);
  ASSERT_NE(write_spec, nullptr);
  EXPECT_EQ(write_spec->error, ENOSPC);

  EXPECT_EQ(injector.ops(Seam::kSource), 5u);
  EXPECT_EQ(injector.injected(Seam::kSource), 2u);
  EXPECT_EQ(injector.ops(Seam::kFileWrite), 2u);
  EXPECT_EQ(injector.injected(Seam::kFileWrite), 1u);
  EXPECT_EQ(injector.ops(Seam::kFileFlush), 0u);
}

TEST(FaultPlan, ScatteredOutagesIsDeterministicAndDisjoint) {
  FaultPlan a = FaultPlan::scattered_outages(/*seed=*/7, /*stream_length=*/500,
                                             /*n_outages=*/6, /*max_outage=*/9,
                                             /*drop_each=*/2);
  FaultPlan b = FaultPlan::scattered_outages(7, 500, 6, 9, 2);
  ASSERT_EQ(a.faults.size(), 6u);
  ASSERT_EQ(b.faults.size(), 6u);
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].at, b.faults[i].at);
    EXPECT_EQ(a.faults[i].length, b.faults[i].length);
    EXPECT_EQ(a.faults[i].drop, 2u);
    EXPECT_GE(a.faults[i].length, 1u);
    EXPECT_LE(a.faults[i].length, 9u);
    if (i > 0) {  // disjoint, ordered windows
      EXPECT_GT(a.faults[i].at,
                a.faults[i - 1].at + a.faults[i - 1].length);
    }
  }
  FaultPlan c = FaultPlan::scattered_outages(8, 500, 6, 9, 2);
  bool differs = false;
  for (std::size_t i = 0; i < c.faults.size(); ++i) {
    differs |= c.faults[i].at != a.faults[i].at;
  }
  EXPECT_TRUE(differs) << "different seeds must give different schedules";
}

// ---- FaultySource / ReconnectingSource --------------------------------

std::vector<FeedUpdate> make_updates(std::size_t count) {
  std::vector<FeedUpdate> updates;
  updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FeedUpdate fu;
    fu.platform = Platform::kRis;
    fu.update.time = 1000 + static_cast<util::SimTime>(i) * 10;
    fu.update.peer_ip = *net::IpAddr::parse("198.51.100.9");
    fu.update.peer_asn = 64500;
    fu.update.body.withdrawn.push_back(
        *net::Prefix::parse(std::to_string(10 + i % 200) + ".1.0.1/32"));
    updates.push_back(fu);
  }
  return updates;
}

TEST(FaultySource, OutageWindowDisconnectsAndDropsExactly) {
  auto updates = make_updates(10);
  stream::VectorSource inner(updates);
  FaultInjector injector(FaultPlan{}.disconnect(/*at=*/3, /*length=*/2,
                                                /*drop=*/2));
  FaultySource faulty(inner, injector);

  std::size_t delivered = 0;
  std::size_t nulls = 0;
  while (delivered + injector.injected(Seam::kSource) < 20) {
    const FeedUpdate* u = faulty.next();
    if (u) {
      ++delivered;
      EXPECT_EQ(faulty.status(), stream::SourceStatus::kActive);
    } else if (faulty.status() == stream::SourceStatus::kDisconnected) {
      ++nulls;
    } else {
      break;  // kEnd
    }
  }
  EXPECT_EQ(faulty.status(), stream::SourceStatus::kEnd);
  EXPECT_EQ(nulls, 2u);                       // the outage window
  EXPECT_EQ(faulty.updates_dropped(), 2u);    // lost while dark
  EXPECT_EQ(faulty.outages(), 1u);
  EXPECT_EQ(delivered, updates.size() - 2);   // everything else arrived
}

TEST(ReconnectingSource, RidesOutOutageAndAccountsTheGap) {
  auto updates = make_updates(12);
  stream::VectorSource inner(updates);
  // Outage at pull 4 for 3 pulls, dropping 3 updates (30s of stream).
  FaultInjector injector(FaultPlan{}.disconnect(4, 3, 3));
  FaultySource faulty(inner, injector);
  ReconnectingSource source(faulty, fast_policy(8), "rrc00",
                            [](nanoseconds) {});

  std::vector<FeedUpdate> received;
  while (const FeedUpdate* u = source.next()) received.push_back(*u);

  EXPECT_EQ(source.status(), stream::SourceStatus::kEnd);
  EXPECT_EQ(source.outages(), 1u);
  EXPECT_EQ(source.rejoins(), 1u);
  EXPECT_GE(source.retries(), 3u);
  EXPECT_FALSE(source.gave_up());
  EXPECT_EQ(received.size(), updates.size() - 3);
  // The observation-time hole the outage left: 3 dropped updates, 10s
  // apart, plus the normal 10s step = 40s between the updates
  // bracketing the outage.
  EXPECT_EQ(source.total_gap(), 40);
  EXPECT_EQ(source.component_health().state, api::HealthState::kHealthy);
}

TEST(ReconnectingSource, GivesUpAfterExhaustingAttemptsAndReportsHalted) {
  auto updates = make_updates(6);
  stream::VectorSource inner(updates);
  // An outage longer than the retry budget (2 attempts, window of 50).
  FaultInjector injector(FaultPlan{}.disconnect(2, 50));
  FaultySource faulty(inner, injector);
  ReconnectingSource source(faulty, fast_policy(2), "rrc01",
                            [](nanoseconds) {});

  std::size_t delivered = 0;
  while (source.next()) ++delivered;

  EXPECT_EQ(delivered, 2u);
  EXPECT_TRUE(source.gave_up());
  EXPECT_EQ(source.status(), stream::SourceStatus::kFailed);
  api::ComponentHealth health = source.component_health();
  EXPECT_EQ(health.state, api::HealthState::kHalted);
  EXPECT_EQ(health.component, "source:rrc01");
  EXPECT_FALSE(health.reason.empty());
}

TEST(ReconnectingSource, ScatteredOutagesDeliverEverythingWithDropZero) {
  auto updates = make_updates(400);
  stream::VectorSource inner(updates);
  FaultInjector injector(FaultPlan::scattered_outages(
      /*seed=*/42, /*stream_length=*/400, /*n_outages=*/5, /*max_outage=*/6));
  FaultySource faulty(inner, injector);
  ReconnectingSource source(faulty, fast_policy(10), "rrc02",
                            [](nanoseconds) {});

  std::size_t delivered = 0;
  while (source.next()) ++delivered;

  // drop=0 outages only delay the stream; every update survives.
  EXPECT_EQ(delivered, updates.size());
  EXPECT_EQ(source.outages(), 5u);
  EXPECT_EQ(source.rejoins(), 5u);
  // The delta across a lossless rejoin is just the normal 10s
  // inter-update spacing — one per outage.
  EXPECT_EQ(source.total_gap(), 50);
  EXPECT_FALSE(source.gave_up());
}

// ---- SegmentWriter: exactly-once under injected disk faults -----------

// The core retry invariant: after any injected failure, retrying
// everything past events_committed() leaves the disk holding the full
// event sequence exactly once.
void write_with_retries(storage::SegmentWriter& writer,
                        const std::vector<PeerEvent>& events) {
  std::size_t cursor = 0;
  int guard = 0;
  while (cursor < events.size()) {
    ASSERT_LT(guard++, 300) << "retry loop failed to converge";
    std::span<const PeerEvent> suffix(events.data() + cursor,
                                      events.size() - cursor);
    if (writer.append(suffix)) {
      if (writer.sync()) {
        cursor = events.size();
        continue;
      }
    }
    // Failure: the durable prefix is exactly events_committed().
    cursor = static_cast<std::size_t>(writer.events_committed());
  }
}

void check_exactly_once(const FaultPlan& plan, const std::string& tag,
                        bool fsync_on_seal = false) {
  SCOPED_TRACE(tag);
  std::string dir = temp_dir("bgpbh_fault_seg_" + tag);
  FaultInjector injector(plan);
  FaultyFileOps faulty_ops(injector);
  storage::SegmentConfig config;
  config.max_segment_bytes = 2048;  // several segments over the run
  config.fsync_on_seal = fsync_on_seal;
  config.file_ops = &faulty_ops;
  auto events = make_events(150);
  {
    auto writer = storage::SegmentWriter::open(dir, config);
    ASSERT_NE(writer, nullptr);
    write_with_retries(*writer, events);
    // close() can also fail on an injected footer fault; the committed
    // suffix retry below covers it.
    int guard = 0;
    while (!writer->close()) {
      ASSERT_LT(guard++, 300);
      std::size_t cursor =
          static_cast<std::size_t>(writer->events_committed());
      write_with_retries(*writer, {events.begin() +
                                       static_cast<std::ptrdiff_t>(cursor),
                                   events.end()});
    }
    EXPECT_EQ(writer->events_committed(), events.size());
    EXPECT_GT(writer->segments_abandoned(), 0u) << "plan injected nothing";
    EXPECT_NE(writer->last_errno(), 0);
  }
  ASSERT_GT(injector.injected(Seam::kFileWrite) +
                injector.injected(Seam::kFileFlush) +
                injector.injected(Seam::kFileSync),
            0u);
  std::vector<PeerEvent> expected = events;
  core::canonical_sort(expected);
  EXPECT_TRUE(disk_events(dir) == expected)
      << "disk must hold every event exactly once";
  fs::remove_all(dir);
}

TEST(SegmentWriterFaults, ExactlyOnceAcrossWriteFailures) {
  check_exactly_once(FaultPlan{}
                         .fail_writes(5, 2)
                         .fail_writes(40, 1, ENOSPC)
                         .fail_writes(90, 3),
                     "writes");
}

TEST(SegmentWriterFaults, ExactlyOnceAcrossShortWrites) {
  // Torn records on disk: recovery must truncate them, the retry must
  // restore them.
  check_exactly_once(FaultPlan{}
                         .fail_writes(7, 1, EIO, /*short_write=*/true)
                         .fail_writes(60, 1, EIO, /*short_write=*/true),
                     "short_writes");
}

TEST(SegmentWriterFaults, ExactlyOnceAcrossFlushFailures) {
  check_exactly_once(FaultPlan{}.fail_flushes(2, 1).fail_flushes(9, 2),
                     "flushes");
}

TEST(SegmentWriterFaults, ExactlyOnceAcrossSyncFailures) {
  check_exactly_once(FaultPlan{}.fail_syncs(1, 1).fail_syncs(5, 1), "syncs",
                     /*fsync_on_seal=*/true);
}

TEST(SegmentWriterFaults, AbandonKeepsDurablePrefixOnly) {
  std::string dir = temp_dir("bgpbh_fault_seg_prefix");
  // Everything fails from write op 30 onwards: the tail of the stream
  // can never land.
  FaultInjector injector(FaultPlan{}.fail_writes(30, 1u << 20));
  FaultyFileOps faulty_ops(injector);
  storage::SegmentConfig config;
  config.file_ops = &faulty_ops;
  auto events = make_events(100);
  std::uint64_t committed = 0;
  {
    auto writer = storage::SegmentWriter::open(dir, config);
    ASSERT_NE(writer, nullptr);
    std::size_t cursor = 0;
    for (int attempt = 0; attempt < 5 && cursor < events.size(); ++attempt) {
      std::span<const PeerEvent> suffix(events.data() + cursor,
                                        events.size() - cursor);
      if (writer->append(suffix) && writer->sync()) cursor = events.size();
      cursor = std::max(
          cursor, static_cast<std::size_t>(writer->events_committed()));
    }
    writer->close();
    committed = writer->events_committed();
    EXPECT_LT(committed, events.size());
  }
  // The disk holds exactly the committed prefix — nothing torn, nothing
  // duplicated, nothing silently beyond the watermark.
  std::vector<PeerEvent> expected(events.begin(),
                                  events.begin() +
                                      static_cast<std::ptrdiff_t>(committed));
  core::canonical_sort(expected);
  EXPECT_TRUE(disk_events(dir) == expected);
  fs::remove_all(dir);
}

// ---- SpillWriter: retry -> degrade -> probe -> re-arm -----------------

std::unique_ptr<storage::SpillWriter> open_spill(const std::string& dir,
                                                 storage::FileOps* ops,
                                                 std::size_t attempts = 2) {
  storage::SpillConfig config;
  config.dir = dir;
  config.segment.file_ops = ops;
  config.retry = fast_policy(attempts);
  return storage::SpillWriter::open(std::move(config));
}

TEST(SpillWriterFaults, TransientFaultIsRetriedWithoutDegrading) {
  std::string dir = temp_dir("bgpbh_fault_spill_transient");
  // One failing write; the retry ladder (2 attempts) absorbs it.
  FaultInjector injector(FaultPlan{}.fail_writes(2, 1));
  FaultyFileOps faulty_ops(injector);
  auto spill = open_spill(dir, &faulty_ops);
  ASSERT_NE(spill, nullptr);
  auto events = make_events(64);
  for (std::size_t i = 0; i < events.size(); i += 16) {
    ASSERT_TRUE(spill->submit(std::vector<PeerEvent>(
        events.begin() + static_cast<std::ptrdiff_t>(i),
        events.begin() + static_cast<std::ptrdiff_t>(i + 16))));
  }
  spill->stop();
  EXPECT_EQ(spill->state(), storage::SpillWriter::State::kOk);
  EXPECT_FALSE(spill->io_error());
  EXPECT_EQ(spill->events_lost(), 0u);
  EXPECT_EQ(spill->times_degraded(), 0u);
  EXPECT_GT(spill->retries(), 0u);
  EXPECT_EQ(spill->events_spilled(), events.size());
  std::vector<PeerEvent> expected = events;
  core::canonical_sort(expected);
  EXPECT_TRUE(disk_events(dir) == expected);
  fs::remove_all(dir);
}

TEST(SpillWriterFaults, DegradesParksAndReArmsWithoutLoss) {
  std::string dir = temp_dir("bgpbh_fault_spill_rearm");
  // A fault window wide enough to exhaust the 2-attempt ladder and a
  // few probes, then clear.  Each failed attempt burns one write op.
  FaultInjector injector(FaultPlan{}.fail_writes(1, 8));
  FaultyFileOps faulty_ops(injector);
  auto spill = open_spill(dir, &faulty_ops);
  ASSERT_NE(spill, nullptr);
  auto events = make_events(120);
  for (std::size_t i = 0; i < events.size(); i += 8) {
    ASSERT_TRUE(spill->submit(std::vector<PeerEvent>(
        events.begin() + static_cast<std::ptrdiff_t>(i),
        events.begin() + static_cast<std::ptrdiff_t>(i + 8))));
  }
  // The writer must pass through degraded (alarm up, events parked,
  // ingest still accepted) and then re-arm once the window clears —
  // wait for the probe cadence to work through the fault window before
  // stopping, so this exercises the probe path rather than stop()'s
  // final attempt.
  bool rearmed = false;
  for (int i = 0; i < 20000 && !rearmed; ++i) {
    rearmed = spill->times_degraded() > 0 &&
              spill->state() == storage::SpillWriter::State::kOk &&
              spill->events_parked() == 0;
    if (!rearmed) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_TRUE(rearmed) << "probe writes never re-armed the spill";
  spill->stop();
  EXPECT_EQ(spill->state(), storage::SpillWriter::State::kOk);
  EXPECT_EQ(spill->times_degraded(), 1u);
  EXPECT_EQ(spill->events_lost(), 0u);
  EXPECT_EQ(spill->events_parked(), 0u);
  EXPECT_FALSE(spill->io_error());
  EXPECT_EQ(spill->events_spilled(), events.size());
  // Exactly once on disk despite the failures mid-stream.
  std::vector<PeerEvent> expected = events;
  core::canonical_sort(expected);
  EXPECT_TRUE(disk_events(dir) == expected);
  fs::remove_all(dir);
}

TEST(SpillWriterFaults, PersistentFaultLosesExactlyTheUncommittedTail) {
  std::string dir = temp_dir("bgpbh_fault_spill_lost");
  // Disk dies at write op 40 and never recovers.
  FaultInjector injector(FaultPlan{}.fail_writes(40, 1u << 30));
  FaultyFileOps faulty_ops(injector);
  auto spill = open_spill(dir, &faulty_ops);
  ASSERT_NE(spill, nullptr);
  auto events = make_events(200);
  for (std::size_t i = 0; i < events.size(); i += 10) {
    ASSERT_TRUE(spill->submit(std::vector<PeerEvent>(
        events.begin() + static_cast<std::ptrdiff_t>(i),
        events.begin() + static_cast<std::ptrdiff_t>(i + 10))));
  }
  spill->stop();
  EXPECT_EQ(spill->state(), storage::SpillWriter::State::kFailed);
  EXPECT_TRUE(spill->io_error());
  EXPECT_GT(spill->events_lost(), 0u);
  EXPECT_GE(spill->times_degraded(), 1u);
  // Exact accounting: durable + lost covers every submitted event, and
  // the disk holds exactly the durable prefix of the submission order.
  EXPECT_EQ(spill->events_spilled() + spill->events_lost(), events.size());
  std::vector<PeerEvent> expected(
      events.begin(),
      events.begin() + static_cast<std::ptrdiff_t>(spill->events_spilled()));
  core::canonical_sort(expected);
  EXPECT_TRUE(disk_events(dir) == expected);
  fs::remove_all(dir);
}

// ---- SinkDispatcher kShed ---------------------------------------------

class BlockingSink : public api::EventSink {
 public:
  void on_event_closed(const PeerEvent&) override {
    ++events_;
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
  }
  void set_stall(int us) { stall_us_ = us; }
  std::size_t events() const { return events_; }

 private:
  std::atomic<int> stall_us_{3000};
  std::size_t events_ = 0;  // dispatch thread only
};

TEST(SinkDispatcherShed, QuarantinesAfterDeadlineWithExactShedCounts) {
  BlockingSink sink;
  api::SinkDispatcher dispatcher({&sink}, nullptr, /*capacity_chunks=*/1, {},
                                 0, nullptr, api::OverloadPolicy::kShed,
                                 /*shed_deadline=*/milliseconds(5));
  dispatcher.start();
  const std::size_t kChunks = 40;
  const std::size_t kPerChunk = 4;
  for (std::size_t i = 0; i < kChunks; ++i) {
    dispatcher.submit(std::vector<PeerEvent>(make_events(kPerChunk)));
  }
  // A 3ms-per-event sink against a 5ms deadline must overflow the
  // 1-chunk queue and trip the quarantine.
  EXPECT_GT(dispatcher.events_shed(), 0u);
  EXPECT_GE(dispatcher.times_quarantined(), 1u);
  sink.set_stall(0);
  dispatcher.stop();
  // Conservation: every submitted event was either delivered or shed —
  // counted, never silently dropped.
  EXPECT_EQ(dispatcher.events_delivered() + dispatcher.events_shed(),
            kChunks * kPerChunk);
  EXPECT_EQ(sink.events(), dispatcher.events_delivered());
  // Quarantine lifted once the backlog drained.
  EXPECT_FALSE(dispatcher.quarantined());
}

TEST(SinkDispatcherShed, BlockPolicyNeverSheds) {
  BlockingSink sink;
  sink.set_stall(100);
  api::SinkDispatcher dispatcher({&sink}, nullptr, /*capacity_chunks=*/1, {},
                                 0, nullptr, api::OverloadPolicy::kBlock);
  dispatcher.start();
  for (std::size_t i = 0; i < 30; ++i) {
    dispatcher.submit(std::vector<PeerEvent>(make_events(4)));
  }
  dispatcher.stop();
  EXPECT_EQ(dispatcher.events_shed(), 0u);
  EXPECT_EQ(dispatcher.times_quarantined(), 0u);
  EXPECT_EQ(sink.events(), 120u);
}

// ---- session fixtures for the equivalence grid ------------------------

core::StudyConfig study_config() {
  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 3);
  config.workload.intensity_scale = 0.05;
  config.table_dump_episodes = 0;
  return config;
}

struct Baseline {
  std::vector<FeedUpdate> updates;
  std::vector<PeerEvent> events;  // canonical order, fault-free

  Baseline() {
    api::SessionConfig config;
    config.mode = api::SessionConfig::Mode::kLiveFeed;
    config.study = study_config();
    config.num_shards = 2;
    api::AnalysisSession session(config);
    updates = session.study().replay_updates();
    stream::VectorSource source(updates);
    session.feed(source);
    session.close(study_config().window_end);
    events = session.events();
  }
};

const Baseline& baseline() {
  static Baseline base;
  return base;
}

// Partition the replay stream by peer key (the order-preserving MPMC
// shape test_api.cc uses).
std::vector<std::vector<FeedUpdate>> partition(
    const std::vector<FeedUpdate>& updates, std::size_t producers) {
  std::vector<std::vector<FeedUpdate>> parts(producers);
  for (const auto& u : updates) {
    bgp::PeerKey peer{u.update.peer_ip, u.update.peer_asn};
    parts[bgp::PeerKeyHash{}(peer) % producers].push_back(u);
  }
  return parts;
}

// ---- the headline invariant -------------------------------------------
// Recoverable fault schedules — collector outages ridden out by
// ReconnectingSource, a transient disk-fault window absorbed by the
// spill retry/re-arm machinery — yield the byte-identical event set of
// a fault-free run, across the full shard x producer grid, with the
// persisted log equally identical.

TEST(FaultEquivalenceGrid, RecoverableSchedulesAreByteIdenticalToFaultFree) {
  const Baseline& base = baseline();
  ASSERT_FALSE(base.events.empty());
  for (std::size_t shards : {1u, 3u, 8u}) {
    for (std::size_t producers : {1u, 3u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " producers=" + std::to_string(producers));
      std::string dir = temp_dir("bgpbh_fault_grid_" + std::to_string(shards) +
                                 "_" + std::to_string(producers));
      // Transient disk fault: a bounded window the probe machinery
      // clears long before close().
      FaultInjector disk_injector(FaultPlan{}.fail_writes(3, 6));
      FaultyFileOps faulty_ops(disk_injector);

      api::SessionConfig config;
      config.mode = api::SessionConfig::Mode::kLiveFeed;
      config.study = study_config();
      config.num_shards = shards;
      config.num_producers = producers;
      config.queue_capacity = 64;
      config.drain_batch = 32;
      config.persist_dir = dir;
      config.segment.file_ops = &faulty_ops;
      config.spill_retry = fast_policy(2);
      api::AnalysisSession session(config);

      // Every producer's partition flows through its own faulty
      // collector that disconnects on a seeded schedule (drop=0:
      // outages delay, the reconnect layer recovers every update).
      auto parts = partition(base.updates, producers);
      std::vector<std::unique_ptr<FaultInjector>> injectors;
      std::vector<std::unique_ptr<stream::VectorSource>> inners;
      std::vector<std::unique_ptr<FaultySource>> faulties;
      std::vector<std::unique_ptr<ReconnectingSource>> sources;
      for (std::size_t p = 0; p < producers; ++p) {
        injectors.push_back(
            std::make_unique<FaultInjector>(FaultPlan::scattered_outages(
                /*seed=*/100 + p, parts[p].size(), 4, 5)));
        inners.push_back(std::make_unique<stream::VectorSource>(parts[p]));
        faulties.push_back(
            std::make_unique<FaultySource>(*inners[p], *injectors[p]));
        sources.push_back(std::make_unique<ReconnectingSource>(
            *faulties[p], fast_policy(8), "rrc" + std::to_string(p),
            [](nanoseconds) {}));
        session.register_health(*sources[p]);
      }
      session.start();
      std::vector<std::thread> threads;
      for (std::size_t p = 0; p < producers; ++p) {
        threads.emplace_back([&session, &sources, p] {
          while (const FeedUpdate* u = sources[p]->next()) {
            session.push(*u, p);
          }
          session.flush(p);
        });
      }
      for (auto& t : threads) t.join();
      session.close(study_config().window_end);

      // Byte-identical event set, exact zero-loss accounting, healthy.
      EXPECT_TRUE(session.events() == base.events);
      EXPECT_EQ(session.events_lost(), 0u);
      EXPECT_EQ(session.events_shed(), 0u);
      for (std::size_t p = 0; p < producers; ++p) {
        EXPECT_FALSE(sources[p]->gave_up());
        EXPECT_EQ(sources[p]->rejoins(), sources[p]->outages());
      }
      api::SessionHealth health = session.health();
      EXPECT_EQ(health.state, api::HealthState::kHealthy)
          << "component 0: " << (health.components.empty()
                                     ? ""
                                     : health.components[0].reason);
      // The disk survived its transient window: the reopened log
      // serves the identical set.
      EXPECT_EQ(session.events_persisted(), base.events.size());
      api::SessionConfig reopen_config;
      reopen_config.mode = api::SessionConfig::Mode::kReopen;
      reopen_config.persist_dir = dir;
      api::AnalysisSession reopened(reopen_config);
      EXPECT_TRUE(reopened.events() == base.events);
      fs::remove_all(dir);
    }
  }
}

// Lossy schedules don't reproduce the baseline — they must account for
// every missing update exactly instead.
TEST(FaultEquivalenceGrid, LossySchedulesAccountForEveryMissingUpdate) {
  const Baseline& base = baseline();
  for (std::size_t shards : {1u, 3u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    api::SessionConfig config;
    config.mode = api::SessionConfig::Mode::kLiveFeed;
    config.study = study_config();
    config.num_shards = shards;
    api::AnalysisSession session(config);

    FaultInjector injector(FaultPlan::scattered_outages(
        /*seed=*/9, base.updates.size(), 4, 5, /*drop_each=*/7));
    stream::VectorSource inner(base.updates);
    FaultySource faulty(inner, injector);
    ReconnectingSource source(faulty, fast_policy(8), "rrc-lossy",
                              [](nanoseconds) {});
    session.register_health(source);
    std::uint64_t fed = session.feed(source);
    session.close(study_config().window_end);

    // Conservation at the source: delivered + dropped == total, with
    // the drop count exact (4 outages x 7 updates).
    EXPECT_EQ(faulty.updates_dropped(), 28u);
    EXPECT_EQ(fed, base.updates.size() - 28);
    EXPECT_EQ(faulty.updates_delivered(), fed);
    EXPECT_EQ(session.updates_pushed(), fed);
    // The outage-blinded observation time is visible, not silent.
    EXPECT_GT(source.total_gap(), 0);
    EXPECT_EQ(source.rejoins(), source.outages());
  }
}

// ---- the session health plane -----------------------------------------

TEST(SessionHealth, HealthyWhenNothingIsWrong) {
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = 2;
  api::AnalysisSession session(config);
  EXPECT_EQ(session.health().state, api::HealthState::kHealthy);
  stream::VectorSource source(baseline().updates);
  session.feed(source);
  session.close(study_config().window_end);
  api::SessionHealth health = session.health();
  EXPECT_EQ(health.state, api::HealthState::kHealthy);
  EXPECT_EQ(session.events_lost(), 0u);
  EXPECT_EQ(session.events_shed(), 0u);
}

TEST(SessionHealth, PersistentDiskFaultReportsHaltedSpillWithExactLoss) {
  std::string dir = temp_dir("bgpbh_fault_health_disk");
  // The disk dies early and never recovers.
  FaultInjector injector(FaultPlan{}.fail_writes(5, 1u << 30));
  FaultyFileOps faulty_ops(injector);
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = 2;
  config.persist_dir = dir;
  config.segment.file_ops = &faulty_ops;
  config.spill_retry = fast_policy(2);
  api::AnalysisSession session(config);
  stream::VectorSource source(baseline().updates);
  session.feed(source);
  session.close(study_config().window_end);

  // In-memory results are untouched by the disk fault (degradation,
  // not failure: the session keeps analyzing).
  EXPECT_TRUE(session.events() == baseline().events);

  api::SessionHealth health = session.health();
  EXPECT_EQ(health.state, api::HealthState::kHalted);
  const api::ComponentHealth* spill = health.find("spill");
  ASSERT_NE(spill, nullptr);
  EXPECT_EQ(spill->state, api::HealthState::kHalted);
  EXPECT_FALSE(spill->reason.empty());
  // Exact durable-prefix accounting at the session surface (the
  // SpillWriter io_error contract): persisted + lost == every closed
  // event, and the reopened log serves exactly the durable events.
  EXPECT_GT(session.events_lost(), 0u);
  EXPECT_EQ(session.events_persisted() + session.events_lost(),
            baseline().events.size());
  api::SessionConfig reopen_config;
  reopen_config.mode = api::SessionConfig::Mode::kReopen;
  reopen_config.persist_dir = dir;
  api::AnalysisSession reopened(reopen_config);
  auto durable = reopened.events();
  EXPECT_EQ(durable.size(), session.events_persisted());
  // Every durable event is one the session produced (a true prefix of
  // the submission stream, re-sorted canonically here).
  auto all = session.events();
  for (const auto& e : durable) {
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), e,
                                   [](const PeerEvent& a, const PeerEvent& b) {
                                     return core::canonical_less(a, b);
                                   }));
  }
  fs::remove_all(dir);
}

TEST(SessionHealth, ShedSinkPlaneReportsDegradedDispatch) {
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = 2;
  config.sink_queue_chunks = 1;
  config.drain_batch = 8;
  config.sink_overload = api::OverloadPolicy::kShed;
  config.sink_shed_deadline = milliseconds(2);
  api::AnalysisSession session(config);
  BlockingSink sink;
  session.subscribe(sink);
  stream::VectorSource source(baseline().updates);
  session.feed(source);
  session.close(study_config().window_end);

  // The stalling sink tripped the quarantine: the shed count is exact
  // (delivered + shed == all closed events) and surfaced in health.
  ASSERT_GT(session.events_shed(), 0u);
  EXPECT_EQ(sink.events() + session.events_shed(), baseline().events.size());
  api::SessionHealth health = session.health();
  const api::ComponentHealth* dispatch = health.find("dispatch");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_FALSE(dispatch->reason.empty());
  // In-memory analysis is unaffected by sink shedding.
  EXPECT_TRUE(session.events() == baseline().events);
}

TEST(SessionHealth, RegisteredReporterFeedsOverallState) {
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = 1;
  api::AnalysisSession session(config);

  auto updates = make_updates(6);
  stream::VectorSource inner(updates);
  FaultInjector injector(FaultPlan{}.disconnect(2, 50));
  FaultySource faulty(inner, injector);
  ReconnectingSource source(faulty, fast_policy(2), "rrc-down",
                            [](nanoseconds) {});
  ASSERT_TRUE(session.register_health(source));
  session.feed(source);  // gives up mid-stream

  api::SessionHealth health = session.health();
  EXPECT_EQ(health.state, api::HealthState::kHalted);
  const api::ComponentHealth* component = health.find("source:rrc-down");
  ASSERT_NE(component, nullptr);
  EXPECT_EQ(component->state, api::HealthState::kHalted);
  session.close(study_config().window_end);

  // Late registration is refused, like a late subscribe.
  // (Session already started: register_health must return false.)
#ifdef NDEBUG
  ReconnectingSource late(faulty, fast_policy(1), "late", [](nanoseconds) {});
  EXPECT_FALSE(session.register_health(late));
#endif
}

}  // namespace
}  // namespace bgpbh::fault
