#include "bgp/aspath.h"

#include <gtest/gtest.h>

namespace bgpbh::bgp {
namespace {

TEST(AsPath, Basics) {
  AsPath p = AsPath::of({3356, 1299, 64500});
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.first(), 3356u);
  EXPECT_EQ(p.origin(), 64500u);
  EXPECT_TRUE(p.contains(1299));
  EXPECT_FALSE(p.contains(174));
  EXPECT_EQ(p.to_string(), "3356 1299 64500");
}

TEST(AsPath, Empty) {
  AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.to_string(), "");
  EXPECT_FALSE(p.index_of(1).has_value());
}

TEST(AsPath, RemovePrepending) {
  AsPath p = AsPath::of({100, 200, 200, 200, 300, 300, 400});
  AsPath clean = p.without_prepending();
  EXPECT_EQ(clean, AsPath::of({100, 200, 300, 400}));
  EXPECT_EQ(p.unique_length(), 4u);
}

TEST(AsPath, RemovePrependingKeepsNonConsecutiveDuplicates) {
  // Poisoned paths repeat an ASN non-consecutively; only consecutive
  // repeats are prepending.
  AsPath p = AsPath::of({100, 200, 100});
  EXPECT_EQ(p.without_prepending(), p);
}

TEST(AsPath, IndexOfUsesCleanPath) {
  AsPath p = AsPath::of({100, 100, 200, 300});
  auto idx = p.index_of(200);
  ASSERT_TRUE(idx);
  EXPECT_EQ(*idx, 1u);  // after prepending removal
}

TEST(AsPath, HopBefore) {
  // Path: collector peer 100 -> provider 200 -> user 300.
  AsPath p = AsPath::of({100, 200, 300});
  auto user = p.hop_before(200);
  ASSERT_TRUE(user);
  EXPECT_EQ(*user, 300u);  // the AS "behind" the provider = the user
}

TEST(AsPath, HopBeforeOriginIsNull) {
  AsPath p = AsPath::of({100, 200, 300});
  EXPECT_FALSE(p.hop_before(300).has_value());  // origin has nothing behind
  EXPECT_FALSE(p.hop_before(999).has_value());  // not on path
}

TEST(AsPath, HopBeforeWithPrepending) {
  AsPath p = AsPath::of({100, 200, 200, 300, 300, 300});
  auto user = p.hop_before(200);
  ASSERT_TRUE(user);
  EXPECT_EQ(*user, 300u);
}

TEST(AsPath, Prepend) {
  AsPath p = AsPath::of({200});
  p.prepend(100, 3);
  EXPECT_EQ(p, AsPath::of({100, 100, 100, 200}));
}

TEST(AsPath, PushOrigin) {
  AsPath p;
  p.push_origin(1);
  p.push_origin(2);
  EXPECT_EQ(p.origin(), 2u);
  EXPECT_EQ(p.first(), 1u);
}

}  // namespace
}  // namespace bgpbh::bgp
