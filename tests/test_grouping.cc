#include "core/grouping.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/rng.h"

namespace bgpbh::core {
namespace {

// Independent reference implementation of §9 correlation: the classic
// sort-then-sweep (what correlate() was before it became a wrapper over
// the incremental insertion-merge core).  Pins the semantics the
// incremental path must reproduce.
std::vector<PrefixEvent> sweep_correlate(std::span<const PeerEvent> events,
                                         util::SimTime tolerance) {
  std::map<net::Prefix, std::vector<const PeerEvent*>> by_prefix;
  for (const auto& e : events) by_prefix[e.prefix].push_back(&e);
  std::vector<PrefixEvent> out;
  for (auto& [prefix, list] : by_prefix) {
    std::sort(list.begin(), list.end(),
              [](const PeerEvent* a, const PeerEvent* b) {
                if (a->start != b->start) return a->start < b->start;
                return a->end < b->end;
              });
    PrefixEvent current;
    bool have = false;
    for (const PeerEvent* e : list) {
      if (have && e->start <= current.end + tolerance) {
        current.start = std::min(current.start, e->start);
        current.end = std::max(current.end, e->end);
        current.providers.insert(e->provider);
        if (e->user != 0) current.users.insert(e->user);
        current.num_peer_events += 1;
        current.includes_table_dump_start |= e->started_in_table_dump;
        continue;
      }
      if (have) out.push_back(current);
      current = PrefixEvent{};
      current.prefix = e->prefix;
      current.start = e->start;
      current.end = e->end;
      current.providers.insert(e->provider);
      if (e->user != 0) current.users.insert(e->user);
      current.num_peer_events = 1;
      current.includes_table_dump_start = e->started_in_table_dump;
      have = true;
    }
    if (have) out.push_back(current);
  }
  std::sort(out.begin(), out.end(), [](const PrefixEvent& a, const PrefixEvent& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.prefix < b.prefix;
  });
  return out;
}

PeerEvent make_event(const char* prefix, util::SimTime start, util::SimTime end,
                     bgp::Asn provider = 200, bgp::Asn user = 400,
                     bgp::Asn peer = 100) {
  PeerEvent e;
  e.platform = routing::Platform::kRis;
  e.peer.peer_ip = net::IpAddr(net::Ipv4Addr(peer));
  e.peer.peer_asn = peer;
  e.prefix = *net::Prefix::parse(prefix);
  e.provider = ProviderRef{.is_ixp = false, .asn = provider, .ixp_id = 0};
  e.user = user;
  e.start = start;
  e.end = end;
  e.open = false;
  return e;
}

TEST(Correlate, SingleEventPassesThrough) {
  std::vector<PeerEvent> events = {make_event("20.0.1.1/32", 100, 200)};
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 1u);
  EXPECT_EQ(prefix_events[0].start, 100);
  EXPECT_EQ(prefix_events[0].end, 200);
  EXPECT_EQ(prefix_events[0].num_peer_events, 1u);
}

TEST(Correlate, OverlappingPeersMerge) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 100, 200, 200, 400, 100),
      make_event("20.0.1.1/32", 105, 220, 300, 400, 101),
  };
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 1u);
  EXPECT_EQ(prefix_events[0].start, 100);
  EXPECT_EQ(prefix_events[0].end, 220);
  EXPECT_EQ(prefix_events[0].providers.size(), 2u);
  EXPECT_EQ(prefix_events[0].num_peer_events, 2u);
}

TEST(Correlate, ToleranceBridgesSmallGaps) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 100, 200),
      make_event("20.0.1.1/32", 250, 300),  // 50s gap <= 60s tolerance
  };
  EXPECT_EQ(correlate(events, 60).size(), 1u);
  EXPECT_EQ(correlate(events, 10).size(), 2u);
}

TEST(Correlate, DifferentPrefixesNeverMerge) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 100, 200),
      make_event("20.0.1.2/32", 100, 200),
  };
  EXPECT_EQ(correlate(events).size(), 2u);
}

TEST(Correlate, UsersAggregated) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 100, 200, 200, 400),
      make_event("20.0.1.1/32", 110, 210, 200, 401),
  };
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 1u);
  EXPECT_EQ(prefix_events[0].users.size(), 2u);
}

TEST(Correlate, ZeroUserIgnored) {
  std::vector<PeerEvent> events = {make_event("20.0.1.1/32", 100, 200, 200, 0)};
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 1u);
  EXPECT_TRUE(prefix_events[0].users.empty());
}

TEST(Group, OnOffPatternCollapsesWithTimeout) {
  // Operator probing: 30s ON, 60s OFF, repeated (§9).
  std::vector<PeerEvent> events;
  util::SimTime t = 1000;
  for (int i = 0; i < 5; ++i) {
    events.push_back(make_event("20.0.1.1/32", t, t + 30));
    t += 30 + 60;
  }
  auto ungrouped = correlate(events, 0);
  ASSERT_EQ(ungrouped.size(), 5u);
  auto grouped = group_events(ungrouped, 5 * util::kMinute);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].start, 1000);
  EXPECT_EQ(grouped[0].end, 1000 + 4 * 90 + 30);
  EXPECT_EQ(grouped[0].num_peer_events, 5u);
}

TEST(Group, GapBeyondTimeoutSplits) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 0, 60),
      make_event("20.0.1.1/32", 60 + 6 * util::kMinute, 60 + 7 * util::kMinute),
  };
  auto ungrouped = correlate(events, 0);
  auto grouped = group_events(ungrouped, 5 * util::kMinute);
  EXPECT_EQ(grouped.size(), 2u);
}

TEST(Group, ProvidersAccumulateAcrossGroupedEvents) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 0, 60, 200),
      make_event("20.0.1.1/32", 120, 180, 300),
  };
  auto grouped = group_events(correlate(events, 0), 5 * util::kMinute);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].providers.size(), 2u);
}

TEST(Group, SortedByStart) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.2/32", 500, 600),
      make_event("20.0.1.1/32", 100, 200),
  };
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 2u);
  EXPECT_LE(prefix_events[0].start, prefix_events[1].start);
}

// Property: grouping never increases the event count, never loses peer
// events, and group spans contain their members.
class GroupingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupingProperty, Invariants) {
  util::Rng rng(GetParam());
  std::vector<PeerEvent> events;
  for (int i = 0; i < 400; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "20.0.%d.1/32",
                  static_cast<int>(rng.uniform(8)));
    util::SimTime start = static_cast<util::SimTime>(rng.uniform(100000));
    util::SimTime len = 1 + static_cast<util::SimTime>(rng.uniform(5000));
    events.push_back(make_event(buf, start, start + len,
                                200 + static_cast<bgp::Asn>(rng.uniform(3))));
  }
  auto ungrouped = correlate(events, 0);
  auto grouped = group_events(ungrouped, 5 * util::kMinute);

  EXPECT_LE(grouped.size(), ungrouped.size());
  std::size_t peer_events_u = 0, peer_events_g = 0;
  for (const auto& e : ungrouped) peer_events_u += e.num_peer_events;
  for (const auto& e : grouped) peer_events_g += e.num_peer_events;
  EXPECT_EQ(peer_events_u, events.size());
  EXPECT_EQ(peer_events_g, events.size());

  // Each ungrouped event must fall inside exactly one grouped event of
  // the same prefix.
  for (const auto& u : ungrouped) {
    std::size_t containing = 0;
    for (const auto& g : grouped) {
      if (g.prefix == u.prefix && g.start <= u.start && g.end >= u.end)
        ++containing;
    }
    EXPECT_GE(containing, 1u);
  }
  // Grouped events of the same prefix are separated by > timeout.
  for (std::size_t i = 0; i < grouped.size(); ++i) {
    for (std::size_t j = i + 1; j < grouped.size(); ++j) {
      if (grouped[i].prefix != grouped[j].prefix) continue;
      const auto& a = grouped[i].start < grouped[j].start ? grouped[i] : grouped[j];
      const auto& b = grouped[i].start < grouped[j].start ? grouped[j] : grouped[i];
      EXPECT_GT(b.start - a.end, 5 * util::kMinute);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingProperty,
                         ::testing::Values(1, 7, 42, 1337));

// ---- incremental grouping ---------------------------------------------

std::vector<PeerEvent> random_events(std::uint64_t seed, int n) {
  util::Rng rng(seed);
  std::vector<PeerEvent> events;
  for (int i = 0; i < n; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "20.0.%d.1/32",
                  static_cast<int>(rng.uniform(6)));
    util::SimTime start = static_cast<util::SimTime>(rng.uniform(50000));
    util::SimTime len = 1 + static_cast<util::SimTime>(rng.uniform(2000));
    auto e = make_event(buf, start, start + len,
                        200 + static_cast<bgp::Asn>(rng.uniform(3)),
                        400 + static_cast<bgp::Asn>(rng.uniform(4)));
    e.started_in_table_dump = rng.uniform(10) == 0;
    events.push_back(e);
  }
  return events;
}

class IncrementalProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The wrappers must still compute exactly the classic sorted sweep...
TEST_P(IncrementalProperty, BatchWrappersMatchReferenceSweep) {
  auto events = random_events(GetParam(), 300);
  for (util::SimTime tolerance : {0, 60, 500}) {
    EXPECT_TRUE(correlate(events, tolerance) ==
                sweep_correlate(events, tolerance))
        << "tolerance=" << tolerance;
  }
}

// ...and the incremental grouper must match the batch wrappers for ANY
// insertion order — the property that makes cross-shard arrival order
// irrelevant to api::LiveGrouper.
TEST_P(IncrementalProperty, AnyInsertionOrderMatchesBatch) {
  auto events = random_events(GetParam(), 300);
  auto batch_correlated = correlate(events);
  auto batch_grouped = group_events(batch_correlated);

  auto shuffled = events;
  util::Rng rng(GetParam() ^ 0xF00DULL);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.uniform(i)]);
  }
  IncrementalGrouper grouper;
  for (const auto& e : shuffled) grouper.add(e);

  EXPECT_TRUE(grouper.correlated() == batch_correlated);
  EXPECT_TRUE(grouper.grouped() == batch_grouped);
  EXPECT_EQ(grouper.num_peer_events(), events.size());
  EXPECT_EQ(grouper.num_correlated(), batch_correlated.size());
  EXPECT_EQ(grouper.num_grouped(), batch_grouped.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty,
                         ::testing::Values(3, 11, 99, 4242));

TEST(IncrementalGrouper, AddReturnsTheContainingGroup) {
  IncrementalGrouper grouper(/*tolerance=*/0, /*timeout=*/5 * util::kMinute);
  const auto& g1 = grouper.add(make_event("20.0.1.1/32", 1000, 1030));
  EXPECT_EQ(g1.start, 1000);
  EXPECT_EQ(g1.end, 1030);
  EXPECT_EQ(g1.num_peer_events, 1u);

  // 90s OFF gap: new correlated event, same §9 group.
  const auto& g2 = grouper.add(make_event("20.0.1.1/32", 1120, 1150, 300));
  EXPECT_EQ(g2.start, 1000);
  EXPECT_EQ(g2.end, 1150);
  EXPECT_EQ(g2.num_peer_events, 2u);
  EXPECT_EQ(g2.providers.size(), 2u);
  EXPECT_EQ(grouper.num_correlated(), 2u);
  EXPECT_EQ(grouper.num_grouped(), 1u);

  // An earlier event bridging backwards merges into the same group.
  const auto& g3 = grouper.add(make_event("20.0.1.1/32", 700, 720));
  EXPECT_EQ(g3.start, 700);
  EXPECT_EQ(g3.end, 1150);
  EXPECT_EQ(g3.num_peer_events, 3u);

  // A different prefix gets its own group.
  const auto& other = grouper.add(make_event("20.0.1.2/32", 1000, 1030));
  EXPECT_EQ(other.num_peer_events, 1u);
  EXPECT_EQ(grouper.num_grouped(), 2u);
}

}  // namespace
}  // namespace bgpbh::core
