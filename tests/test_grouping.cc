#include "core/grouping.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bgpbh::core {
namespace {

PeerEvent make_event(const char* prefix, util::SimTime start, util::SimTime end,
                     bgp::Asn provider = 200, bgp::Asn user = 400,
                     bgp::Asn peer = 100) {
  PeerEvent e;
  e.platform = routing::Platform::kRis;
  e.peer.peer_ip = net::IpAddr(net::Ipv4Addr(peer));
  e.peer.peer_asn = peer;
  e.prefix = *net::Prefix::parse(prefix);
  e.provider = ProviderRef{.is_ixp = false, .asn = provider, .ixp_id = 0};
  e.user = user;
  e.start = start;
  e.end = end;
  e.open = false;
  return e;
}

TEST(Correlate, SingleEventPassesThrough) {
  std::vector<PeerEvent> events = {make_event("20.0.1.1/32", 100, 200)};
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 1u);
  EXPECT_EQ(prefix_events[0].start, 100);
  EXPECT_EQ(prefix_events[0].end, 200);
  EXPECT_EQ(prefix_events[0].num_peer_events, 1u);
}

TEST(Correlate, OverlappingPeersMerge) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 100, 200, 200, 400, 100),
      make_event("20.0.1.1/32", 105, 220, 300, 400, 101),
  };
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 1u);
  EXPECT_EQ(prefix_events[0].start, 100);
  EXPECT_EQ(prefix_events[0].end, 220);
  EXPECT_EQ(prefix_events[0].providers.size(), 2u);
  EXPECT_EQ(prefix_events[0].num_peer_events, 2u);
}

TEST(Correlate, ToleranceBridgesSmallGaps) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 100, 200),
      make_event("20.0.1.1/32", 250, 300),  // 50s gap <= 60s tolerance
  };
  EXPECT_EQ(correlate(events, 60).size(), 1u);
  EXPECT_EQ(correlate(events, 10).size(), 2u);
}

TEST(Correlate, DifferentPrefixesNeverMerge) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 100, 200),
      make_event("20.0.1.2/32", 100, 200),
  };
  EXPECT_EQ(correlate(events).size(), 2u);
}

TEST(Correlate, UsersAggregated) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 100, 200, 200, 400),
      make_event("20.0.1.1/32", 110, 210, 200, 401),
  };
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 1u);
  EXPECT_EQ(prefix_events[0].users.size(), 2u);
}

TEST(Correlate, ZeroUserIgnored) {
  std::vector<PeerEvent> events = {make_event("20.0.1.1/32", 100, 200, 200, 0)};
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 1u);
  EXPECT_TRUE(prefix_events[0].users.empty());
}

TEST(Group, OnOffPatternCollapsesWithTimeout) {
  // Operator probing: 30s ON, 60s OFF, repeated (§9).
  std::vector<PeerEvent> events;
  util::SimTime t = 1000;
  for (int i = 0; i < 5; ++i) {
    events.push_back(make_event("20.0.1.1/32", t, t + 30));
    t += 30 + 60;
  }
  auto ungrouped = correlate(events, 0);
  ASSERT_EQ(ungrouped.size(), 5u);
  auto grouped = group_events(ungrouped, 5 * util::kMinute);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].start, 1000);
  EXPECT_EQ(grouped[0].end, 1000 + 4 * 90 + 30);
  EXPECT_EQ(grouped[0].num_peer_events, 5u);
}

TEST(Group, GapBeyondTimeoutSplits) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 0, 60),
      make_event("20.0.1.1/32", 60 + 6 * util::kMinute, 60 + 7 * util::kMinute),
  };
  auto ungrouped = correlate(events, 0);
  auto grouped = group_events(ungrouped, 5 * util::kMinute);
  EXPECT_EQ(grouped.size(), 2u);
}

TEST(Group, ProvidersAccumulateAcrossGroupedEvents) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.1/32", 0, 60, 200),
      make_event("20.0.1.1/32", 120, 180, 300),
  };
  auto grouped = group_events(correlate(events, 0), 5 * util::kMinute);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].providers.size(), 2u);
}

TEST(Group, SortedByStart) {
  std::vector<PeerEvent> events = {
      make_event("20.0.1.2/32", 500, 600),
      make_event("20.0.1.1/32", 100, 200),
  };
  auto prefix_events = correlate(events);
  ASSERT_EQ(prefix_events.size(), 2u);
  EXPECT_LE(prefix_events[0].start, prefix_events[1].start);
}

// Property: grouping never increases the event count, never loses peer
// events, and group spans contain their members.
class GroupingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupingProperty, Invariants) {
  util::Rng rng(GetParam());
  std::vector<PeerEvent> events;
  for (int i = 0; i < 400; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "20.0.%d.1/32",
                  static_cast<int>(rng.uniform(8)));
    util::SimTime start = static_cast<util::SimTime>(rng.uniform(100000));
    util::SimTime len = 1 + static_cast<util::SimTime>(rng.uniform(5000));
    events.push_back(make_event(buf, start, start + len,
                                200 + static_cast<bgp::Asn>(rng.uniform(3))));
  }
  auto ungrouped = correlate(events, 0);
  auto grouped = group_events(ungrouped, 5 * util::kMinute);

  EXPECT_LE(grouped.size(), ungrouped.size());
  std::size_t peer_events_u = 0, peer_events_g = 0;
  for (const auto& e : ungrouped) peer_events_u += e.num_peer_events;
  for (const auto& e : grouped) peer_events_g += e.num_peer_events;
  EXPECT_EQ(peer_events_u, events.size());
  EXPECT_EQ(peer_events_g, events.size());

  // Each ungrouped event must fall inside exactly one grouped event of
  // the same prefix.
  for (const auto& u : ungrouped) {
    std::size_t containing = 0;
    for (const auto& g : grouped) {
      if (g.prefix == u.prefix && g.start <= u.start && g.end >= u.end)
        ++containing;
    }
    EXPECT_GE(containing, 1u);
  }
  // Grouped events of the same prefix are separated by > timeout.
  for (std::size_t i = 0; i < grouped.size(); ++i) {
    for (std::size_t j = i + 1; j < grouped.size(); ++j) {
      if (grouped[i].prefix != grouped[j].prefix) continue;
      const auto& a = grouped[i].start < grouped[j].start ? grouped[i] : grouped[j];
      const auto& b = grouped[i].start < grouped[j].start ? grouped[j] : grouped[i];
      EXPECT_GT(b.start - a.end, 5 * util::kMinute);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingProperty,
                         ::testing::Values(1, 7, 42, 1337));

}  // namespace
}  // namespace bgpbh::core
