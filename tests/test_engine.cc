// Unit tests for the inference engine against a hand-built miniature
// topology: user AS 400 -> providers AS 200 (comm 200:666) and AS 300
// (comm 300:666); AS 0:666 shared by 201+202; one IXP (id 0, RS 59000,
// LAN 185.1.0.0/24, community 65535:666).
#include "core/engine.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpbh::core {
namespace {

using bgp::Community;
using bgp::CommunitySet;

struct MiniWorld {
  topology::AsGraph graph;
  topology::Registry registry;
  dictionary::BlackholeDictionary dict;

  MiniWorld() : registry(build_registry()) {
    dict.add_provider(Community(200, 666), 200, dictionary::DictSource::kIrr);
    dict.add_provider(Community(300, 666), 300, dictionary::DictSource::kIrr);
    dict.add_provider(Community(0, 666), 201, dictionary::DictSource::kIrr);
    dict.add_provider(Community(0, 666), 202, dictionary::DictSource::kIrr);
    dict.add_ixp(Community::rfc7999_blackhole(), 0, dictionary::DictSource::kWebPage);
    dict.add_large(bgp::LargeCommunity(200, 666, 0), 200,
                   dictionary::DictSource::kIrr);
  }

  topology::Registry build_registry() {
    for (bgp::Asn asn : {200u, 201u, 202u, 300u, 400u, 500u}) {
      auto& node = graph.add_as(asn);
      node.type = topology::NetworkType::kTransitAccess;
      node.country = "DE";
      node.v4_block = *net::Prefix::parse("20.0.0.0/16");
      node.originated_v4.push_back(node.v4_block);
    }
    auto& ixp = graph.add_ixp(0);
    ixp.name = "TEST-IX";
    ixp.country = "DE";
    ixp.route_server_asn = 59000;
    ixp.peering_lan = *net::Prefix::parse("185.1.0.0/24");
    ixp.blackhole_ip_v4 = *net::IpAddr::parse("185.1.0.66");
    ixp.offers_blackholing = true;
    ixp.blackhole_community = Community::rfc7999_blackhole();
    ixp.members = {400, 500};
    graph.finalize();
    return topology::Registry::build(graph, 1.0, 1.0, 1);
  }
};

MiniWorld& world() {
  static MiniWorld w;
  return w;
}

bgp::ObservedUpdate announce(const char* prefix, const char* peer_ip,
                             bgp::Asn peer_asn,
                             std::initializer_list<bgp::Asn> path,
                             std::initializer_list<Community> comms,
                             util::SimTime t = 100) {
  bgp::ObservedUpdate u;
  u.time = t;
  u.peer_ip = *net::IpAddr::parse(peer_ip);
  u.peer_asn = peer_asn;
  u.body.announced.push_back(*net::Prefix::parse(prefix));
  u.body.as_path = bgp::AsPath(std::vector<bgp::Asn>(path));
  for (auto c : comms) u.body.communities.add(c);
  return u;
}

bgp::ObservedUpdate withdraw(const char* prefix, const char* peer_ip,
                             bgp::Asn peer_asn, util::SimTime t) {
  bgp::ObservedUpdate u;
  u.time = t;
  u.peer_ip = *net::IpAddr::parse(peer_ip);
  u.peer_asn = peer_asn;
  u.body.withdrawn.push_back(*net::Prefix::parse(prefix));
  return u;
}

using P = routing::Platform;

TEST(Engine, ProviderOnPathDetection) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.1", 200, 160));
  ASSERT_EQ(engine.events().size(), 1u);
  const PeerEvent& e = engine.events()[0];
  EXPECT_FALSE(e.provider.is_ixp);
  EXPECT_EQ(e.provider.asn, 200u);
  EXPECT_EQ(e.user, 400u);
  EXPECT_EQ(e.kind, DetectionKind::kProviderOnPath);
  EXPECT_EQ(e.as_distance, 1);  // collector peers directly with provider
  EXPECT_EQ(e.start, 100);
  EXPECT_EQ(e.end, 160);
  EXPECT_TRUE(e.explicit_withdrawal);
}

TEST(Engine, DistanceCountsPathPosition) {
  InferenceEngine engine(world().dict, world().registry);
  // Collector peer 500, then 200 (the provider), then user 400.
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.2", 500,
                                   {500, 200, 400}, {Community(200, 666)}, 100));
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.2", 500, 150));
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].as_distance, 2);
  EXPECT_EQ(engine.events()[0].user, 400u);
}

TEST(Engine, PrependingRemovedBeforeUserInference) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis,
                 announce("20.0.1.1/32", "198.51.100.1", 200,
                          {200, 200, 200, 400, 400}, {Community(200, 666)}, 100));
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.1", 200, 150));
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].user, 400u);
  EXPECT_EQ(engine.events()[0].as_distance, 1);
}

TEST(Engine, BundledDetectionOffPath) {
  InferenceEngine engine(world().dict, world().registry);
  // Peer 500 exports the user's announcement carrying 300:666 although
  // AS 300 is nowhere on the path (Fig 3).
  engine.process(P::kCdn, announce("20.0.1.1/32", "198.51.100.3", 500,
                                   {500, 400}, {Community(300, 666)}, 100));
  engine.process(P::kCdn, withdraw("20.0.1.1/32", "198.51.100.3", 500, 150));
  ASSERT_EQ(engine.events().size(), 1u);
  const PeerEvent& e = engine.events()[0];
  EXPECT_EQ(e.provider.asn, 300u);
  EXPECT_EQ(e.kind, DetectionKind::kBundled);
  EXPECT_EQ(e.as_distance, kNoPathDistance);
  EXPECT_EQ(e.user, 400u);  // origin of the announcement
}

TEST(Engine, BundledDetectionDisabledByAblation) {
  EngineConfig config;
  config.detect_bundled = false;
  InferenceEngine engine(world().dict, world().registry, config);
  engine.process(P::kCdn, announce("20.0.1.1/32", "198.51.100.3", 500,
                                   {500, 400}, {Community(300, 666)}, 100));
  engine.finish(200);
  EXPECT_TRUE(engine.events().empty());
}

TEST(Engine, AmbiguousCommunityRequiresPathEvidence) {
  InferenceEngine engine(world().dict, world().registry);
  // 0:666 is shared by 201 and 202; neither on path => rejected.
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 500,
                                   {500, 400}, {Community(0, 666)}, 100));
  engine.finish(200);
  EXPECT_TRUE(engine.events().empty());
  EXPECT_EQ(engine.stats().ambiguous_rejected, 1u);
}

TEST(Engine, AmbiguousCommunityAcceptedWithPathEvidence) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 201,
                                   {201, 400}, {Community(0, 666)}, 100));
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.1", 201, 150));
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].provider.asn, 201u);
  EXPECT_EQ(engine.events()[0].user, 400u);
}

TEST(Engine, AmbiguousAblationAcceptsBlindly) {
  EngineConfig config;
  config.require_path_evidence_for_ambiguous = false;
  InferenceEngine engine(world().dict, world().registry, config);
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 500,
                                   {500, 400}, {Community(0, 666)}, 100));
  engine.finish(200);
  // Without the evidence check both candidate providers are credited —
  // the false-positive mode the paper's check prevents.
  EXPECT_EQ(engine.events().size(), 2u);
}

TEST(Engine, IxpRouteServerAsnOnPath) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kPch, announce("20.0.1.1/32", "198.51.100.9", 500,
                                   {500, 59000, 400},
                                   {Community::rfc7999_blackhole()}, 100));
  engine.process(P::kPch, withdraw("20.0.1.1/32", "198.51.100.9", 500, 150));
  ASSERT_EQ(engine.events().size(), 1u);
  const PeerEvent& e = engine.events()[0];
  EXPECT_TRUE(e.provider.is_ixp);
  EXPECT_EQ(e.provider.ixp_id, 0u);
  EXPECT_EQ(e.kind, DetectionKind::kIxpRouteServer);
  EXPECT_EQ(e.user, 400u);  // hop behind the RS
}

TEST(Engine, IxpPeerIpInLan) {
  InferenceEngine engine(world().dict, world().registry);
  // Peer IP inside 185.1.0.0/24; transparent RS => path has no RS ASN.
  engine.process(P::kPch, announce("20.0.1.1/32", "185.1.0.23", 400, {400},
                                   {Community::rfc7999_blackhole()}, 100));
  engine.process(P::kPch, withdraw("20.0.1.1/32", "185.1.0.23", 400, 150));
  ASSERT_EQ(engine.events().size(), 1u);
  const PeerEvent& e = engine.events()[0];
  EXPECT_TRUE(e.provider.is_ixp);
  EXPECT_EQ(e.kind, DetectionKind::kIxpPeerIp);
  EXPECT_EQ(e.as_distance, 0);
  EXPECT_EQ(e.user, 400u);  // the peer-as attribute
}

TEST(Engine, IxpCommunityWithoutEvidenceRejected) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kCdn, announce("20.0.1.1/32", "198.51.100.4", 500,
                                   {500, 400},
                                   {Community::rfc7999_blackhole()}, 100));
  engine.finish(200);
  EXPECT_TRUE(engine.events().empty());
  EXPECT_EQ(engine.stats().ixp_rejected, 1u);
}

TEST(Engine, LargeCommunityDetection) {
  InferenceEngine engine(world().dict, world().registry);
  bgp::ObservedUpdate u = announce("20.0.1.1/32", "198.51.100.1", 200,
                                   {200, 400}, {}, 100);
  u.body.communities.add(bgp::LargeCommunity(200, 666, 0));
  engine.process(P::kRis, u);
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.1", 200, 150));
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].provider.asn, 200u);
}

TEST(Engine, ImplicitWithdrawal) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  // Re-announcement of the same prefix WITHOUT blackhole communities.
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 120)}, 170));
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_FALSE(engine.events()[0].explicit_withdrawal);
  EXPECT_EQ(engine.events()[0].end, 170);
  EXPECT_EQ(engine.stats().events_closed_implicit, 1u);
}

TEST(Engine, PerPeerStateIsolation) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  engine.process(P::kRouteViews, announce("20.0.1.1/32", "198.51.100.2", 300,
                                  {300, 400}, {Community(300, 666)}, 101));
  // Withdraw at only one peer.
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.1", 200, 150));
  EXPECT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.open_event_count(), 1u);
  engine.finish(300);
  EXPECT_EQ(engine.events().size(), 2u);
}

// The bgp::PeerKey uses both IP and ASN; same ASN different IP is a
// different peer (multi-session peers at different collectors).
TEST(Engine, PeerKeyIncludesIp) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.9", 200, 150));
  engine.finish(400);
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].end, 400);  // only finish() closed it
}

TEST(Engine, RepeatedAnnouncementKeepsStart) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  engine.process(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 130));
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.1", 200, 160));
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].start, 100);
  EXPECT_EQ(engine.stats().events_opened, 1u);
}

TEST(Engine, MultiProviderBundleOneStateTwoEvents) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis,
                 announce("20.0.1.1/32", "198.51.100.1", 200, {200, 400},
                          {Community(200, 666), Community(300, 666)}, 100));
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.1", 200, 150));
  ASSERT_EQ(engine.events().size(), 2u);
  std::set<bgp::Asn> providers;
  for (const auto& e : engine.events()) providers.insert(e.provider.asn);
  EXPECT_EQ(providers, (std::set<bgp::Asn>{200, 300}));
  // One on-path (200), one bundled (300).
}

TEST(Engine, TableDumpInitializationStartsAtZero) {
  InferenceEngine engine(world().dict, world().registry);
  bgp::mrt::TableDump dump;
  dump.time = 5000;
  dump.collector_name = "rrc00";
  bgp::mrt::TableDump::Entry entry;
  entry.peer.peer_ip = *net::IpAddr::parse("198.51.100.1");
  entry.peer.peer_asn = 200;
  entry.prefix = *net::Prefix::parse("20.0.1.1/32");
  entry.as_path = bgp::AsPath::of({200, 400});
  entry.communities.add(Community(200, 666));
  dump.entries.push_back(entry);
  engine.init_from_table_dump(P::kRis, dump);
  EXPECT_EQ(engine.open_event_count(), 1u);
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.1", 200, 6000));
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].start, 0);  // unknown start => zero (§4.2)
  EXPECT_TRUE(engine.events()[0].started_in_table_dump);
}

TEST(Engine, BogonAnnouncementsFiltered) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, announce("10.1.2.3/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  engine.process(P::kRis, announce("192.168.1.1/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  // Less specific than /8.
  engine.process(P::kRis, announce("32.0.0.0/6", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  engine.finish(200);
  EXPECT_TRUE(engine.events().empty());
  EXPECT_EQ(engine.stats().bogons_filtered, 3u);
}

TEST(Engine, CleaningDisabledAblation) {
  EngineConfig config;
  config.clean_input = false;
  InferenceEngine engine(world().dict, world().registry, config);
  engine.process(P::kRis, announce("10.1.2.3/32", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  engine.finish(200);
  EXPECT_EQ(engine.events().size(), 1u);
}

TEST(Engine, NonBlackholeAnnouncementNoEvent) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, announce("20.0.0.0/16", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 120)}, 100));
  engine.finish(200);
  EXPECT_TRUE(engine.events().empty());
  EXPECT_EQ(engine.stats().announcements_seen, 1u);
}

TEST(Engine, WithdrawWithoutStateIsNoop) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, withdraw("20.0.1.1/32", "198.51.100.1", 200, 100));
  EXPECT_TRUE(engine.events().empty());
  EXPECT_EQ(engine.stats().withdrawals_seen, 1u);
}

TEST(Engine, Ipv6BlackholeDetection) {
  InferenceEngine engine(world().dict, world().registry);
  engine.process(P::kRis, announce("2a00:1::1/128", "198.51.100.1", 200,
                                   {200, 400}, {Community(200, 666)}, 100));
  engine.process(P::kRis, withdraw("2a00:1::1/128", "198.51.100.1", 200, 150));
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_FALSE(engine.events()[0].prefix.is_v4());
}

TEST(BgpCleanerTest, KnownBogons) {
  BgpCleaner cleaner;
  EXPECT_TRUE(cleaner.is_bogus(*net::Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(cleaner.is_bogus(*net::Prefix::parse("192.168.5.0/24")));
  EXPECT_TRUE(cleaner.is_bogus(*net::Prefix::parse("224.1.2.3/32")));
  EXPECT_TRUE(cleaner.is_bogus(*net::Prefix::parse("fe80::/64")));
  EXPECT_TRUE(cleaner.is_bogus(*net::Prefix::parse("0.0.0.0/0")));   // < /8
  EXPECT_TRUE(cleaner.is_bogus(*net::Prefix::parse("16.0.0.0/6")));  // < /8
  EXPECT_FALSE(cleaner.is_bogus(*net::Prefix::parse("20.0.0.0/16")));
  EXPECT_FALSE(cleaner.is_bogus(*net::Prefix::parse("130.149.1.1/32")));
  EXPECT_FALSE(cleaner.is_bogus(*net::Prefix::parse("2a00:1::/32")));
}

// The compiled-dictionary fast path (bitset prefilter + flat-array
// lookups + in-place path scans) must be a pure optimization: over a
// workload covering every detection kind, ablation, rejection path,
// and close mode, the engine's events and stats are byte-identical
// with the fast path on and off.
TEST(Engine, FastPathMatchesSlowPath) {
  for (bool detect_bundled : {true, false}) {
    for (bool require_evidence : {true, false}) {
      EngineConfig fast_config, slow_config;
      fast_config.detect_bundled = slow_config.detect_bundled = detect_bundled;
      fast_config.require_path_evidence_for_ambiguous =
          slow_config.require_path_evidence_for_ambiguous = require_evidence;
      fast_config.use_compiled_fastpath = true;
      slow_config.use_compiled_fastpath = false;
      InferenceEngine fast(world().dict, world().registry, fast_config);
      InferenceEngine slow(world().dict, world().registry, slow_config);

      std::vector<std::pair<routing::Platform, bgp::ObservedUpdate>> workload;
      auto add = [&](routing::Platform p, bgp::ObservedUpdate u) {
        workload.emplace_back(p, std::move(u));
      };
      // Provider on path, with prepending.
      add(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 200,
                            {200, 200, 400, 400}, {Community(200, 666)}, 100));
      // Bundled (provider 300 not on path).
      add(P::kCdn, announce("20.0.1.2/32", "198.51.100.3", 500, {500, 400},
                            {Community(300, 666)}, 101));
      // Ambiguous without path evidence (rejected unless ablated).
      add(P::kRis, announce("20.0.1.3/32", "198.51.100.1", 500, {500, 400},
                            {Community(0, 666)}, 102));
      // Ambiguous with path evidence.
      add(P::kRis, announce("20.0.1.4/32", "198.51.100.1", 201, {201, 400},
                            {Community(0, 666)}, 103));
      // IXP route-server ASN on path.
      add(P::kPch, announce("20.0.1.5/32", "198.51.100.9", 500,
                            {500, 59000, 400},
                            {Community::rfc7999_blackhole()}, 104));
      // IXP peer-ip in LAN (transparent RS).
      add(P::kPch, announce("20.0.1.6/32", "185.1.0.23", 400, {400},
                            {Community::rfc7999_blackhole()}, 105));
      // IXP community without evidence (ixp_rejected).
      add(P::kCdn, announce("20.0.1.7/32", "198.51.100.4", 500, {500, 400},
                            {Community::rfc7999_blackhole()}, 106));
      // Large community.
      {
        auto u = announce("20.0.1.8/32", "198.51.100.1", 200, {200, 400}, {},
                          107);
        u.body.communities.add(bgp::LargeCommunity(200, 666, 0));
        add(P::kRis, u);
      }
      // Unknown large community (negative).
      {
        auto u = announce("20.0.1.9/32", "198.51.100.1", 200, {200, 400}, {},
                          108);
        u.body.communities.add(bgp::LargeCommunity(999, 1, 2));
        add(P::kRis, u);
      }
      // Tag-less noise: service community sharing the 666 value half
      // (prefilter false positive), plain service community, and no
      // communities at all.
      add(P::kRis, announce("20.0.2.1/32", "198.51.100.1", 200, {200, 400},
                            {Community(999, 666)}, 109));
      add(P::kRis, announce("20.0.2.2/32", "198.51.100.1", 200, {200, 400},
                            {Community(200, 120)}, 110));
      add(P::kRis, announce("20.0.2.3/32", "198.51.100.1", 200, {200, 400}, {},
                            111));
      // Bogon (filtered).
      add(P::kRis, announce("10.1.2.3/32", "198.51.100.1", 200, {200, 400},
                            {Community(200, 666)}, 112));
      // Implicit withdrawal (tag-less re-announcement) + explicit one.
      add(P::kRis, announce("20.0.1.1/32", "198.51.100.1", 200, {200, 400},
                            {Community(200, 120)}, 120));
      add(P::kCdn, withdraw("20.0.1.2/32", "198.51.100.3", 500, 121));
      // Multi-provider bundle.
      add(P::kRis, announce("20.0.1.10/32", "198.51.100.1", 200, {200, 400},
                            {Community(200, 666), Community(300, 666)}, 122));

      for (const auto& [p, u] : workload) {
        fast.process(p, u);
        slow.process(p, u);
      }
      fast.finish(1000);
      slow.finish(1000);
      EXPECT_EQ(fast.events(), slow.events());
      EXPECT_EQ(fast.stats(), slow.stats());
      EXPECT_FALSE(fast.events().empty());
    }
  }
}

// The zero-copy UpdateView entry point must produce byte-identical
// events and stats to the owning ObservedUpdate overload when fed the
// same stream split into single-prefix sub-updates (withdrawals
// first) — the contract the streaming data plane relies on.
TEST(Engine, ViewPathMatchesOwningPath) {
  InferenceEngine owning(world().dict, world().registry);
  InferenceEngine viewing(world().dict, world().registry);

  std::vector<std::pair<routing::Platform, bgp::ObservedUpdate>> workload;
  // Provider on path + bundled + IXP + large + noise + closes, and one
  // update mixing a withdrawal with two announcements.
  workload.emplace_back(P::kRis,
                        announce("20.0.1.1/32", "198.51.100.1", 200,
                                 {200, 400}, {Community(200, 666)}, 100));
  workload.emplace_back(P::kPch,
                        announce("20.0.1.2/32", "185.1.0.23", 400, {400},
                                 {Community::rfc7999_blackhole()}, 101));
  {
    auto u = announce("20.0.1.3/32", "198.51.100.1", 200, {200, 400}, {}, 102);
    u.body.communities.add(bgp::LargeCommunity(200, 666, 0));
    workload.emplace_back(P::kRis, u);
  }
  workload.emplace_back(P::kRis,
                        announce("20.0.2.1/32", "198.51.100.1", 200,
                                 {200, 400}, {Community(200, 120)}, 103));
  workload.emplace_back(P::kRis,
                        announce("10.1.2.3/32", "198.51.100.1", 200,
                                 {200, 400}, {Community(200, 666)}, 104));
  {
    // Withdraw 20.0.1.1 and announce two more prefixes in one UPDATE.
    auto u = announce("20.0.1.4/32", "198.51.100.1", 200, {200, 400},
                      {Community(200, 666)}, 105);
    u.body.announced.push_back(*net::Prefix::parse("20.0.1.5/32"));
    u.body.withdrawn.push_back(*net::Prefix::parse("20.0.1.1/32"));
    workload.emplace_back(P::kRis, u);
  }
  workload.emplace_back(P::kCdn,
                        withdraw("20.0.1.2/32", "185.1.0.23", 400, 106));

  std::uint64_t views_processed = 0;
  for (const auto& [platform, update] : workload) {
    owning.process(platform, update);
    // The view path sees the same update as single-prefix sub-updates,
    // withdrawals before announcements (the router's emission order).
    bgp::PeerKey peer{update.peer_ip, update.peer_asn};
    UpdateView view;
    view.platform = platform;
    view.time = update.time;
    view.peer = peer;
    view.as_path = &update.body.as_path;
    view.communities = &update.body.communities;
    for (const auto& prefix : update.body.withdrawn) {
      view.is_withdrawal = true;
      view.prefix = &prefix;
      viewing.process(view);
      ++views_processed;
    }
    for (const auto& prefix : update.body.announced) {
      view.is_withdrawal = false;
      view.prefix = &prefix;
      viewing.process(view);
      ++views_processed;
    }
  }
  owning.finish(1000);
  viewing.finish(1000);
  EXPECT_EQ(owning.events(), viewing.events());
  EXPECT_FALSE(owning.events().empty());

  // Stats match except updates_processed, which counts sub-updates on
  // the view path (the pipeline folds it back to original updates).
  EngineStats expect = owning.stats();
  expect.updates_processed = views_processed;
  EXPECT_EQ(expect, viewing.stats());
}

TEST(ProviderRefTest, OrderingAndToString) {
  ProviderRef isp{.is_ixp = false, .asn = 200, .ixp_id = 0};
  ProviderRef ixp{.is_ixp = true, .asn = 59000, .ixp_id = 3};
  EXPECT_LT(isp, ixp);
  EXPECT_EQ(isp.to_string(), "AS200");
  EXPECT_EQ(ixp.to_string(), "IXP#3");
}

TEST(DetectionKindTest, Names) {
  EXPECT_EQ(to_string(DetectionKind::kBundled), "bundled");
  EXPECT_EQ(to_string(DetectionKind::kIxpPeerIp), "ixp-peer-ip");
}

}  // namespace
}  // namespace bgpbh::core
