// Fine-grained (port-aware) blackholing, the §11 extension: scoped
// rules drop the attack while preserving legitimate traffic that
// classic RTBH would discard.
#include "dataplane/finegrained.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bgpbh::dataplane {
namespace {

flows::FlowRecord flow(const char* dst, std::uint16_t dst_port,
                       std::uint8_t proto, std::uint64_t bytes = 1000) {
  flows::FlowRecord f;
  f.dst_ip = net::IpAddr::parse(dst)->v4();
  f.dst_port = dst_port;
  f.protocol = proto;
  f.bytes = bytes;
  f.packets = bytes / 500 + 1;
  return f;
}

net::Prefix P(const char* s) { return *net::Prefix::parse(s); }

TEST(FineGrainedRule, Matching) {
  FineGrainedRule rule{P("20.1.2.3/32"), 17, 0, 1023};
  EXPECT_TRUE(rule.matches(flow("20.1.2.3", 123, 17)));    // NTP amplification
  EXPECT_FALSE(rule.matches(flow("20.1.2.3", 123, 6)));    // wrong protocol
  EXPECT_FALSE(rule.matches(flow("20.1.2.3", 4444, 17)));  // port out of range
  EXPECT_FALSE(rule.matches(flow("20.1.2.4", 123, 17)));   // other host
}

TEST(FineGrainedRule, ClassicEquivalence) {
  FineGrainedRule classic{P("20.1.2.3/32")};
  EXPECT_TRUE(classic.is_classic());
  EXPECT_TRUE(classic.matches(flow("20.1.2.3", 80, 6)));
  EXPECT_TRUE(classic.matches(flow("20.1.2.3", 53, 17)));
  FineGrainedRule scoped{P("20.1.2.3/32"), 6, 80, 80};
  EXPECT_FALSE(scoped.is_classic());
}

TEST(FineGrainedBlackholesTest, InstallDropsOnlyMatching) {
  FineGrainedBlackholes table;
  table.install(100, FineGrainedRule{P("20.1.2.0/24"), 17, 0, 65535});
  EXPECT_TRUE(table.drops(100, flow("20.1.2.77", 53, 17)));
  EXPECT_FALSE(table.drops(100, flow("20.1.2.77", 80, 6)));  // TCP passes
  EXPECT_FALSE(table.drops(200, flow("20.1.2.77", 53, 17)));  // other AS
  EXPECT_EQ(table.total_rules(), 1u);
}

TEST(FineGrainedBlackholesTest, MultipleRulesPerPrefix) {
  FineGrainedBlackholes table;
  table.install(100, FineGrainedRule{P("20.1.2.3/32"), 17, 0, 65535});
  table.install(100, FineGrainedRule{P("20.1.2.3/32"), 6, 0, 1023});
  EXPECT_TRUE(table.drops(100, flow("20.1.2.3", 9999, 17)));
  EXPECT_TRUE(table.drops(100, flow("20.1.2.3", 22, 6)));
  EXPECT_FALSE(table.drops(100, flow("20.1.2.3", 8080, 6)));
  EXPECT_EQ(table.total_rules(), 2u);
  table.remove_all(100, P("20.1.2.3/32"));
  EXPECT_FALSE(table.drops(100, flow("20.1.2.3", 22, 6)));
}

TEST(FineGrainedBlackholesTest, LongestPrefixMatchApplies) {
  FineGrainedBlackholes table;
  // A wide UDP-only rule and a narrow all-traffic rule.
  table.install(100, FineGrainedRule{P("20.1.0.0/16"), 17, 0, 65535});
  table.install(100, FineGrainedRule{P("20.1.2.3/32")});
  EXPECT_TRUE(table.drops(100, flow("20.1.2.3", 80, 6)));    // /32 classic
  EXPECT_FALSE(table.drops(100, flow("20.1.9.9", 80, 6)));   // /16 is UDP-only
  EXPECT_TRUE(table.drops(100, flow("20.1.9.9", 80, 17)));
}

// The §11 trade-off, quantified: a UDP amplification attack against a
// web server. Classic RTBH takes the website offline (drops all TCP/80
// clients); a port-scoped rule drops the attack and keeps the site up.
TEST(MitigationComparisonTest, PortScopedRulePreservesLegitimateTraffic) {
  net::Prefix victim = P("20.1.2.3/32");
  util::Rng rng(42);
  std::vector<flows::FlowRecord> traffic;
  // Attack: UDP source-port-11211-style amplification toward high ports.
  for (int i = 0; i < 600; ++i) {
    auto f = flow("20.1.2.3",
                  static_cast<std::uint16_t>(1024 + rng.uniform(60000)), 17,
                  9000 + rng.uniform(2000));
    traffic.push_back(f);
  }
  // Legitimate: TCP 80/443 clients.
  for (int i = 0; i < 400; ++i) {
    traffic.push_back(flow("20.1.2.3", rng.bernoulli(0.5) ? 80 : 443, 6,
                           800 + rng.uniform(400)));
  }

  std::vector<FineGrainedRule> scoped = {
      FineGrainedRule{victim, 17, 0, 65535},  // drop all UDP to the victim
  };
  auto cmp = compare_mitigations(
      100, victim, scoped, traffic,
      [](const flows::FlowRecord& f) { return f.protocol == 17; });

  // Classic drops everything: full attack coverage, full collateral.
  EXPECT_EQ(cmp.attack_dropped_classic, cmp.attack_total);
  EXPECT_DOUBLE_EQ(cmp.collateral_classic(), 1.0);
  // Fine-grained: same attack coverage, zero collateral.
  EXPECT_DOUBLE_EQ(cmp.attack_coverage_finegrained(), 1.0);
  EXPECT_DOUBLE_EQ(cmp.collateral_finegrained(), 0.0);
}

TEST(MitigationComparisonTest, ImperfectScopeTradesCoverageForCollateral) {
  net::Prefix victim = P("20.1.2.3/32");
  util::Rng rng(7);
  std::vector<flows::FlowRecord> traffic;
  // Attack mixes UDP floods with a TCP-SYN component on port 80.
  for (int i = 0; i < 500; ++i) {
    traffic.push_back(flow("20.1.2.3",
                           static_cast<std::uint16_t>(rng.uniform(65536)), 17,
                           5000));
  }
  for (int i = 0; i < 200; ++i) {
    traffic.push_back(flow("20.1.2.3", 80, 6, 900));  // SYN flood share
  }
  for (int i = 0; i < 300; ++i) {
    traffic.push_back(flow("20.1.2.3", 80, 6, 1000));  // legit web clients
  }

  std::vector<FineGrainedRule> scoped = {
      FineGrainedRule{victim, 17, 0, 65535},  // UDP only
  };
  std::size_t idx = 0;
  auto cmp = compare_mitigations(100, victim, scoped, traffic,
                                 [&idx](const flows::FlowRecord&) {
                                   // First 700 records are attack.
                                   return idx++ < 700;
                                 });
  // The UDP-only rule misses the TCP-SYN share of the attack...
  EXPECT_LT(cmp.attack_coverage_finegrained(), 1.0);
  EXPECT_GT(cmp.attack_coverage_finegrained(), 0.6);
  // ...but keeps every legitimate byte flowing, unlike classic RTBH.
  EXPECT_DOUBLE_EQ(cmp.collateral_finegrained(), 0.0);
  EXPECT_DOUBLE_EQ(cmp.collateral_classic(), 1.0);
}

}  // namespace
}  // namespace bgpbh::dataplane
