#include "workload/timeline.h"

#include <gtest/gtest.h>

namespace bgpbh::workload {
namespace {

TEST(Timeline, GrowthOverStudyWindow) {
  TimelineModel model(1.0);
  std::int64_t start = util::day_index(util::study_start());
  std::int64_t end = util::day_index(util::study_end()) - 1;
  // ~5x growth in new-episode rate over the window (before carry-over).
  double early = model.new_episodes(start + 10);
  double late = model.new_episodes(end - 30);
  EXPECT_GT(late, early * 3.0);
  EXPECT_GT(early, 0.0);
}

TEST(Timeline, ScaleIsLinear) {
  TimelineModel full(1.0), scaled(0.05);
  std::int64_t day = util::day_index(util::from_date(2016, 3, 1));
  EXPECT_NEAR(scaled.new_episodes(day), full.new_episodes(day) * 0.05, 1e-9);
}

TEST(Timeline, SpikeDaysElevated) {
  TimelineModel model(1.0);
  for (const auto& spike : model.spikes()) {
    if (spike.misconfiguration) continue;
    std::int64_t day = util::day_index(spike.date);
    EXPECT_GT(model.spike_multiplier(day), model.spike_multiplier(day - 7))
        << spike.label;
    EXPECT_GE(model.spike_multiplier(day), 2.0) << spike.label;
  }
}

TEST(Timeline, SpikeDecayTail) {
  TimelineModel model(1.0);
  // Spike E (Krebs) lasts days: the day after is still elevated.
  std::int64_t krebs = util::day_index(util::from_date(2016, 9, 20));
  EXPECT_GT(model.spike_multiplier(krebs + 1), 1.3);
  EXPECT_GT(model.spike_multiplier(krebs), model.spike_multiplier(krebs + 1));
}

TEST(Timeline, MiraiEraElevation) {
  TimelineModel model(1.0);
  std::int64_t before = util::day_index(util::from_date(2016, 8, 10));
  std::int64_t during = util::day_index(util::from_date(2016, 12, 10));
  EXPECT_GT(model.spike_multiplier(during), model.spike_multiplier(before));
}

TEST(Timeline, MisconfigSpikeOnlyOnItsDay) {
  TimelineModel model(1.0);
  std::int64_t day_a = util::day_index(util::from_date(2016, 4, 18));
  EXPECT_NE(model.misconfig_spike_on(day_a), nullptr);
  EXPECT_EQ(model.misconfig_spike_on(day_a)->label, 'A');
  EXPECT_EQ(model.misconfig_spike_on(day_a + 1), nullptr);
}

TEST(Timeline, SixLabelledSpikes) {
  TimelineModel model(1.0);
  ASSERT_EQ(model.spikes().size(), 6u);
  std::string labels;
  for (const auto& s : model.spikes()) labels += s.label;
  EXPECT_EQ(labels, "ABCDEF");
  auto ann = model.annotations();
  EXPECT_EQ(ann.size(), 6u);
}

TEST(Timeline, SpikeDatesMatchPaper) {
  TimelineModel model(1.0);
  EXPECT_EQ(util::format_date(model.spikes()[1].date), "2016-05-16");  // NS1
  EXPECT_EQ(util::format_date(model.spikes()[4].date), "2016-09-20");  // Krebs
  EXPECT_EQ(util::format_date(model.spikes()[5].date), "2016-10-31");  // Liberia
}

}  // namespace
}  // namespace bgpbh::workload
