// Recovery-plane suite (src/recovery/):
//   * checkpoint codec + file discipline: round-trip, newest-valid-wins
//     load, prune-keeps-newest, torn/bit-flipped newest falls back to
//     the previous checkpoint,
//   * truncate_log: exact durable-prefix rewrite, refusal when the log
//     holds fewer records than the checkpoint claims,
//   * retention pinning: segments at/past the checkpoint floor survive
//     any retention budget,
//   * Watchdog stall detection via the scan_once seam (idle silence
//     never alarms; silence with backlog does; recovery clears it),
//   * PoisonQuarantine: adversarial updates rejected at push() with
//     per-producer accounting and an error-budget health signal,
//   * in-process checkpoint/recover round trip: byte-identical event
//     set vs an uncrashed baseline, and
//   * the headline kill grid: fork/exec crash_child, SIGKILL it
//     mid-stream (twice), recover to completion, and assert the
//     persisted event set is byte-identical to the uncrashed baseline
//     across shard counts {1,3,8} x producer counts {1,3}.
#include "recovery/checkpoint.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "bgp/rib.h"
#include "recovery/quarantine.h"
#include "recovery/watchdog.h"
#include "storage/segment_reader.h"
#include "storage/segment_writer.h"
#include "stream/pipeline.h"

namespace bgpbh::recovery {
namespace {

namespace fs = std::filesystem;
using core::PeerEvent;
using routing::FeedUpdate;
using routing::Platform;

std::string temp_dir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

// Must match tests/crash_child.cc exactly.
core::StudyConfig study_config() {
  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 3);
  config.workload.intensity_scale = 0.05;
  config.table_dump_episodes = 0;
  return config;
}

struct Baseline {
  std::vector<FeedUpdate> updates;
  std::vector<PeerEvent> events;  // canonical order, uncrashed

  Baseline() {
    api::SessionConfig config;
    config.mode = api::SessionConfig::Mode::kLiveFeed;
    config.study = study_config();
    config.num_shards = 2;
    api::AnalysisSession session(config);
    updates = session.study().replay_updates();
    stream::VectorSource source(updates);
    session.feed(source);
    session.close(study_config().window_end);
    events = session.events();
  }
};

const Baseline& baseline() {
  static Baseline base;
  return base;
}

// A structurally rich checkpoint exercising every payload field.
Checkpoint rich_checkpoint() {
  Checkpoint cp;
  cp.seq = 7;
  cp.num_shards = 2;
  cp.num_producers = 3;
  cp.includes_table_dump = true;
  cp.position = storage::DurablePos{5, 321};
  for (std::uint32_t s = 0; s < cp.num_shards; ++s) {
    ShardCheckpoint shard;
    shard.watermarks = {100 + s, 200 + s, 300 + s};
    for (std::uint32_t i = 0; i < 3 + s; ++i) {
      core::OpenEventState open;
      open.peer.peer_ip = *net::IpAddr::parse("198.51.100." + std::to_string(i));
      open.peer.peer_asn = 64500 + i;
      open.prefix = *net::Prefix::parse("10." + std::to_string(s) + "." +
                                        std::to_string(i) + ".1/32");
      open.start = 1000 + i;
      open.platform = s == 0 ? Platform::kRis : Platform::kRouteViews;
      open.from_table_dump = i == 0;
      core::OpenDetection det;
      det.provider = core::ProviderRef{.is_ixp = s == 1, .asn = 3356, .ixp_id = s};
      det.user = 65000 + i;
      det.kind = core::DetectionKind::kProviderOnPath;
      det.as_distance = static_cast<int>(i);
      open.detections.push_back(det);
      open.communities.add(bgp::Community(3356, 666));
      open.communities.add(bgp::LargeCommunity(4200000001u, 666, i));
      shard.open_state.push_back(std::move(open));
    }
    cp.shards.push_back(std::move(shard));
  }
  core::PrefixEvent pe;
  pe.prefix = *net::Prefix::parse("10.0.0.0/24");
  pe.start = 1000;
  pe.end = 2000;
  pe.providers.insert(core::ProviderRef{.is_ixp = false, .asn = 3356, .ixp_id = 0});
  pe.users.insert(65001);
  pe.num_peer_events = 4;
  pe.includes_table_dump_start = true;
  cp.correlated.push_back(pe);
  pe.end = 3000;
  cp.grouped.push_back(pe);
  return cp;
}

// ---- checkpoint codec + files -----------------------------------------

TEST(CheckpointCodec, RoundTripsRichCheckpoint) {
  Checkpoint cp = rich_checkpoint();
  std::vector<std::uint8_t> file = encode_checkpoint_file(cp);
  auto decoded = decode_checkpoint_file(file);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == cp);
}

TEST(CheckpointCodec, EmptyCheckpointRoundTrips) {
  Checkpoint cp;
  cp.seq = 1;
  cp.num_shards = 1;
  cp.num_producers = 1;
  cp.shards.push_back(ShardCheckpoint{{0}, {}});
  auto decoded = decode_checkpoint_file(encode_checkpoint_file(cp));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == cp);
}

TEST(CheckpointFiles, NewestValidWinsAndPrunesToKeep) {
  std::string dir = temp_dir("bgpbh_rec_files");
  Checkpoint cp = rich_checkpoint();
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    cp.seq = seq;
    ASSERT_TRUE(write_checkpoint(dir, cp, /*keep=*/2));
  }
  EXPECT_FALSE(fs::exists(fs::path(dir) / checkpoint_file_name(1)));
  EXPECT_TRUE(fs::exists(fs::path(dir) / checkpoint_file_name(2)));
  EXPECT_TRUE(fs::exists(fs::path(dir) / checkpoint_file_name(3)));
  auto loaded = load_latest_checkpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->checkpoint.seq, 3u);
  EXPECT_EQ(loaded->skipped_corrupt, 0u);
  fs::remove_all(dir);
}

TEST(CheckpointFiles, TornNewestFallsBackToPrevious) {
  std::string dir = temp_dir("bgpbh_rec_torn");
  Checkpoint cp = rich_checkpoint();
  cp.seq = 1;
  ASSERT_TRUE(write_checkpoint(dir, cp));
  cp.seq = 2;
  ASSERT_TRUE(write_checkpoint(dir, cp));
  // Tear the newest file in half: a crash mid-write that somehow
  // survived the atomic-rename discipline must still never load.
  fs::path newest = fs::path(dir) / checkpoint_file_name(2);
  auto size = fs::file_size(newest);
  fs::resize_file(newest, size / 2);
  auto loaded = load_latest_checkpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->checkpoint.seq, 1u);
  EXPECT_EQ(loaded->skipped_corrupt, 1u);
  fs::remove_all(dir);
}

TEST(CheckpointFiles, BitFlippedNewestFallsBackToPrevious) {
  std::string dir = temp_dir("bgpbh_rec_flip");
  Checkpoint cp = rich_checkpoint();
  cp.seq = 1;
  ASSERT_TRUE(write_checkpoint(dir, cp));
  cp.seq = 2;
  ASSERT_TRUE(write_checkpoint(dir, cp));
  fs::path newest = fs::path(dir) / checkpoint_file_name(2);
  std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(fs::file_size(newest)) / 2);
  char byte = 0;
  f.get(byte);
  f.seekp(static_cast<std::streamoff>(fs::file_size(newest)) / 2);
  f.put(static_cast<char>(byte ^ 0x40));
  f.close();
  auto loaded = load_latest_checkpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->checkpoint.seq, 1u);
  EXPECT_EQ(loaded->skipped_corrupt, 1u);
  fs::remove_all(dir);
}

// ---- truncate_log ------------------------------------------------------

PeerEvent make_event(std::uint32_t n) {
  PeerEvent e;
  e.platform = Platform::kRis;
  e.peer.peer_ip = *net::IpAddr::parse("198.51.100.7");
  e.peer.peer_asn = 100 + (n % 7);
  e.prefix = *net::Prefix::parse(std::to_string(10 + n % 200) + "." +
                                 std::to_string(n / 200 % 256) + ".0.1/32");
  e.provider = core::ProviderRef{.is_ixp = false, .asn = 200, .ixp_id = 0};
  e.user = 400 + n;
  e.start = 1000 + n;
  e.end = 2000 + n;
  e.open = false;
  return e;
}

// Writes `count` events into dir's log and returns the durable pos.
storage::DurablePos write_log(const std::string& dir, std::uint32_t count,
                              std::uint64_t max_segment_bytes = 1u << 20) {
  storage::SegmentConfig config;
  config.max_segment_bytes = max_segment_bytes;
  auto writer = storage::SegmentWriter::open(dir, config);
  EXPECT_NE(writer, nullptr);
  for (std::uint32_t i = 0; i < count; ++i) {
    EXPECT_TRUE(writer->append(make_event(i)));
  }
  EXPECT_TRUE(writer->sync());
  storage::DurablePos pos = writer->durable_pos();
  writer->close();
  return pos;
}

std::size_t log_records(const std::string& dir) {
  auto set = storage::SegmentSet::open(dir);
  std::size_t n = 0;
  if (set) set->for_each([&n](const PeerEvent&) { ++n; });
  return n;
}

TEST(TruncateLog, RewritesBoundarySegmentToExactDurablePrefix) {
  std::string dir = temp_dir("bgpbh_rec_trunc");
  storage::DurablePos pos = write_log(dir, 50);
  // Claim only 30 of the 50 durable records: the rewrite must leave a
  // footer-less 30-record prefix that writer recovery reseals.
  ASSERT_TRUE(truncate_log(dir, {pos.seq, 30}));
  { auto reseal = storage::SegmentWriter::open(dir); ASSERT_NE(reseal, nullptr); }
  EXPECT_EQ(log_records(dir), 30u);
  fs::remove_all(dir);
}

TEST(TruncateLog, DeletesSegmentsPastThePositionEntirely) {
  std::string dir = temp_dir("bgpbh_rec_trunc_del");
  // Tiny segments: the 60 events span several files.
  storage::DurablePos pos = write_log(dir, 60, /*max_segment_bytes=*/512);
  ASSERT_GT(pos.seq, 2u) << "workload did not roll segments";
  // Truncate to the END of segment 1 (pos {2, 0}): everything after
  // the first segment must vanish.
  ASSERT_TRUE(truncate_log(dir, {2, 0}));
  EXPECT_TRUE(fs::exists(fs::path(dir) / storage::segment_file_name(1)));
  for (std::uint64_t seq = 2; seq <= pos.seq; ++seq) {
    EXPECT_FALSE(fs::exists(fs::path(dir) / storage::segment_file_name(seq)))
        << "segment " << seq << " survived truncation";
  }
  fs::remove_all(dir);
}

TEST(TruncateLog, RefusesWhenLogHoldsFewerRecordsThanClaimed) {
  std::string dir = temp_dir("bgpbh_rec_trunc_refuse");
  storage::DurablePos pos = write_log(dir, 20);
  // A checkpoint claiming 500 durable records in a 20-record segment
  // means the log lost data past fsync's promise: recovery must stop.
  EXPECT_FALSE(truncate_log(dir, {pos.seq, 500}));
  fs::remove_all(dir);
}

// ---- retention pinning -------------------------------------------------

TEST(RetentionPin, FloorPinsSegmentsAtOrPastTheCheckpoint) {
  std::string dir = temp_dir("bgpbh_rec_retain");
  storage::SegmentConfig config;
  config.max_segment_bytes = 512;     // roll every ~dozen records
  config.retain_max_segments = 1;     // brutal budget
  auto writer = storage::SegmentWriter::open(dir, config);
  ASSERT_NE(writer, nullptr);
  // Pin everything from segment 2 onward (a checkpoint at pos {2, n}),
  // then seal far more segments than the budget allows.
  writer->set_retention_floor(2);
  for (std::uint32_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(writer->append(make_event(i)));
  }
  ASSERT_TRUE(writer->sync());
  // `last` may be an empty, never-materialized active segment (the
  // final append landed exactly on a roll boundary) — the pinning
  // claim covers every SEALED segment at or past the floor.
  storage::DurablePos pos = writer->durable_pos();
  writer->close();
  std::uint64_t last = pos.records > 0 ? pos.seq : pos.seq - 1;
  ASSERT_GT(last, 4u) << "workload did not roll segments";
  // Segment 1 is retirable; 2..last are pinned despite the budget.
  for (std::uint64_t seq = 2; seq <= last; ++seq) {
    EXPECT_TRUE(fs::exists(fs::path(dir) / storage::segment_file_name(seq)))
        << "pinned segment " << seq << " was retired";
  }
  EXPECT_FALSE(fs::exists(fs::path(dir) / storage::segment_file_name(1)))
      << "budget should still retire segments below the floor";
  fs::remove_all(dir);
}

// ---- watchdog ----------------------------------------------------------

struct FakeShard {
  std::uint64_t beat = 0;
  std::size_t depth = 0;
};

Watchdog make_watchdog(std::vector<FakeShard>& shards,
                       std::chrono::milliseconds deadline =
                           std::chrono::milliseconds(100)) {
  std::vector<WatchedShard> watched;
  for (auto& s : shards) {
    watched.push_back(WatchedShard{[&s] { return s.beat; },
                                   [&s] { return s.depth; }});
  }
  WatchdogConfig config;
  config.stall_deadline = deadline;
  return Watchdog(std::move(watched), config);
}

TEST(WatchdogDetector, SilenceWithBacklogPastDeadlineIsAStall) {
  std::vector<FakeShard> shards(2);
  shards[0].depth = 4;  // wedged with work
  shards[1].depth = 3;
  Watchdog dog = make_watchdog(shards);
  auto t0 = std::chrono::steady_clock::now();
  dog.scan_once(t0);  // prime
  shards[1].beat++;   // shard 1 makes progress, shard 0 stays silent
  dog.scan_once(t0 + std::chrono::milliseconds(60));
  EXPECT_EQ(dog.stalled_shards(), 0u);  // deadline not reached yet
  shards[1].beat++;   // shard 1 keeps working; shard 0 is still frozen
  dog.scan_once(t0 + std::chrono::milliseconds(200));
  EXPECT_EQ(dog.stalled_shards(), 1u);
  EXPECT_EQ(dog.stalls_detected(), 1u);
  api::ComponentHealth health = dog.component_health();
  EXPECT_EQ(health.state, api::HealthState::kDegraded);
  EXPECT_EQ(health.component, "watchdog");
  EXPECT_FALSE(health.reason.empty());
}

TEST(WatchdogDetector, IdleSilenceNeverAlarms) {
  std::vector<FakeShard> shards(1);
  shards[0].depth = 0;  // empty queue: silence is idleness
  Watchdog dog = make_watchdog(shards);
  auto t0 = std::chrono::steady_clock::now();
  dog.scan_once(t0);
  dog.scan_once(t0 + std::chrono::seconds(10));
  dog.scan_once(t0 + std::chrono::seconds(20));
  EXPECT_EQ(dog.stalled_shards(), 0u);
  EXPECT_EQ(dog.stalls_detected(), 0u);
  EXPECT_EQ(dog.component_health().state, api::HealthState::kHealthy);
}

TEST(WatchdogDetector, StallClearsWhenTheHeartbeatResumes) {
  std::vector<FakeShard> shards(1);
  shards[0].depth = 2;
  Watchdog dog = make_watchdog(shards);
  auto t0 = std::chrono::steady_clock::now();
  dog.scan_once(t0);
  dog.scan_once(t0 + std::chrono::milliseconds(200));
  ASSERT_EQ(dog.stalled_shards(), 1u);
  shards[0].beat++;  // the worker came back
  dog.scan_once(t0 + std::chrono::milliseconds(250));
  EXPECT_EQ(dog.stalled_shards(), 0u);
  EXPECT_EQ(dog.stalls_detected(), 1u);  // the episode stays counted
  EXPECT_EQ(dog.component_health().state, api::HealthState::kHealthy);
  // A NEW stall counts a new episode.
  dog.scan_once(t0 + std::chrono::milliseconds(600));
  EXPECT_EQ(dog.stalls_detected(), 2u);
}

// ---- poison quarantine -------------------------------------------------

FeedUpdate clean_update() {
  FeedUpdate fu;
  fu.platform = Platform::kRis;
  fu.update.time = 1000;
  fu.update.peer_ip = *net::IpAddr::parse("198.51.100.9");
  fu.update.peer_asn = 64500;
  fu.update.body.announced.push_back(*net::Prefix::parse("10.1.0.1/32"));
  fu.update.body.as_path = bgp::AsPath::of({64500, 3356, 65001});
  fu.update.body.communities.add(bgp::Community(3356, 666));
  return fu;
}

FeedUpdate absurd_path_update(std::size_t hops) {
  FeedUpdate fu = clean_update();
  std::vector<bgp::Asn> path;
  path.reserve(hops);
  for (std::size_t i = 0; i < hops; ++i) {
    path.push_back(static_cast<bgp::Asn>(64500 + i));
  }
  fu.update.body.as_path = bgp::AsPath(std::move(path));
  return fu;
}

FeedUpdate absurd_community_update(std::size_t count) {
  FeedUpdate fu = clean_update();
  for (std::size_t i = 0; i < count; ++i) {
    fu.update.body.communities.add(
        bgp::Community(static_cast<std::uint32_t>(i)));
  }
  return fu;
}

TEST(PoisonQuarantineUnit, RejectsAbsurdInputsAndCountsPerProducer) {
  QuarantineConfig config;
  config.max_as_path_hops = 16;
  config.max_communities = 8;
  PoisonQuarantine quarantine(/*num_producers=*/2, config);
  EXPECT_TRUE(quarantine.admit(clean_update(), 0));
  EXPECT_TRUE(quarantine.admit(absurd_path_update(16), 0));   // at the limit
  EXPECT_FALSE(quarantine.admit(absurd_path_update(17), 0));  // over it
  EXPECT_FALSE(quarantine.admit(absurd_community_update(9), 1));
  EXPECT_EQ(quarantine.poisoned(0), 1u);
  EXPECT_EQ(quarantine.poisoned(1), 1u);
  EXPECT_EQ(quarantine.total_poisoned(), 2u);
  EXPECT_EQ(quarantine.component_health().state, api::HealthState::kHealthy);
}

TEST(PoisonQuarantineUnit, BlownErrorBudgetDegradesHealth) {
  QuarantineConfig config;
  config.max_as_path_hops = 4;
  config.error_budget = 3;
  PoisonQuarantine quarantine(1, config);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(quarantine.admit(absurd_path_update(100), 0));
  }
  api::ComponentHealth health = quarantine.component_health();
  EXPECT_EQ(health.state, api::HealthState::kDegraded);
  EXPECT_EQ(health.component, "quarantine");
  EXPECT_NE(health.reason.find("producer 0"), std::string::npos);
}

TEST(PoisonQuarantineSession, PushRejectsPoisonWithoutTouchingState) {
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = 2;
  config.max_as_path_hops = 64;
  config.poison_error_budget = 2;
  api::AnalysisSession session(config);
  session.start();
  EXPECT_FALSE(session.push(absurd_path_update(100000), 0));
  EXPECT_FALSE(session.push(absurd_community_update(100000), 0));
  EXPECT_FALSE(session.push(absurd_path_update(65), 0));
  EXPECT_EQ(session.poison_rejected(), 3u);
  // The budget (2) is blown: the quarantine component degrades health.
  api::SessionHealth health = session.health();
  EXPECT_EQ(health.state, api::HealthState::kDegraded);
  const api::ComponentHealth* component = health.find("quarantine");
  ASSERT_NE(component, nullptr);
  EXPECT_EQ(component->state, api::HealthState::kDegraded);
  // The clean remainder still processes to the exact baseline.
  for (const auto& u : baseline().updates) session.push(u, 0);
  session.close(study_config().window_end);
  EXPECT_TRUE(session.events() == baseline().events);
  EXPECT_EQ(session.updates_pushed(), baseline().updates.size());
}

// ---- in-process checkpoint / recover round trip ------------------------

TEST(RecoveryRoundTrip, CheckpointMidStreamThenRecoverIsByteIdentical) {
  const Baseline& base = baseline();
  ASSERT_FALSE(base.events.empty());
  std::string dir = temp_dir("bgpbh_rec_roundtrip");

  auto make_config = [&] {
    api::SessionConfig config;
    config.mode = api::SessionConfig::Mode::kLiveFeed;
    config.study = study_config();
    config.num_shards = 3;
    config.persist_dir = dir;
    config.recover = true;
    return config;
  };

  // First incarnation: half the stream, an explicit checkpoint, then a
  // shutdown whose post-checkpoint work the recovery must discard and
  // regenerate (close() force-closes opens the checkpoint knew as open).
  {
    api::AnalysisSession session(make_config());
    const std::size_t half = base.updates.size() / 2;
    for (std::size_t i = 0; i < half; ++i) session.push(base.updates[i], 0);
    session.flush(0);
    ASSERT_TRUE(session.checkpoint_now());
    EXPECT_GE(session.checkpoints_written(), 1u);
    session.close(study_config().window_end);
  }

  // Second incarnation: recovers the cut, replays the FULL stream (the
  // watermark skip deduplicates the prefix), finishes cleanly.
  {
    api::AnalysisSession session(make_config());
    EXPECT_TRUE(session.recovered());
    EXPECT_GE(session.recovered_checkpoint_seq(), 1u);
    for (const auto& u : base.updates) session.push(u, 0);
    session.flush(0);
    session.close(study_config().window_end);
    EXPECT_TRUE(session.events() == base.events)
        << "recovered session diverged from the uncrashed baseline";
    EXPECT_EQ(session.health().state, api::HealthState::kHealthy);
  }

  // Third incarnation: the archive alone serves the identical set.
  {
    api::SessionConfig reopen;
    reopen.mode = api::SessionConfig::Mode::kReopen;
    reopen.persist_dir = dir;
    api::AnalysisSession session(reopen);
    EXPECT_TRUE(session.events() == base.events);
  }
  fs::remove_all(dir);
}

TEST(RecoveryRoundTrip, ShapeMismatchRefusesToRecover) {
  std::string dir = temp_dir("bgpbh_rec_shape");
  {
    api::SessionConfig config;
    config.mode = api::SessionConfig::Mode::kLiveFeed;
    config.study = study_config();
    config.num_shards = 2;
    config.persist_dir = dir;
    config.recover = true;
    api::AnalysisSession session(config);
    for (std::size_t i = 0; i < 100; ++i) {
      session.push(baseline().updates[i], 0);
    }
    session.flush(0);
    ASSERT_TRUE(session.checkpoint_now());
    session.close(study_config().window_end);
  }
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = 3;  // different routing shape
  config.persist_dir = dir;
  config.recover = true;
  EXPECT_THROW({ api::AnalysisSession session(config); }, std::runtime_error);
  fs::remove_all(dir);
}

TEST(RecoveryRoundTrip, RecoverOnEmptyDirectoryIsAFreshStart) {
  std::string dir = temp_dir("bgpbh_rec_fresh");
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study = study_config();
  config.num_shards = 2;
  config.persist_dir = dir;
  config.recover = true;
  api::AnalysisSession session(config);
  EXPECT_FALSE(session.recovered());
  stream::VectorSource source(baseline().updates);
  session.feed(source);
  session.close(study_config().window_end);
  EXPECT_TRUE(session.events() == baseline().events);
  fs::remove_all(dir);
}

// ---- the headline: SIGKILL grid ---------------------------------------

std::string crash_child_path() {
  // The child is built next to this test binary.
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "./crash_child";
  buf[n] = '\0';
  return (fs::path(buf).parent_path() / "crash_child").string();
}

int run_child(const std::string& dir, std::size_t shards,
              std::size_t producers, std::uint64_t checkpoint_every,
              std::uint64_t checkpoint_at, std::uint64_t kill_after) {
  std::string child = crash_child_path();
  std::string s_shards = std::to_string(shards);
  std::string s_producers = std::to_string(producers);
  std::string s_every = std::to_string(checkpoint_every);
  std::string s_at = std::to_string(checkpoint_at);
  std::string s_kill = std::to_string(kill_after);
  pid_t pid = fork();
  if (pid == 0) {
    char* argv[] = {const_cast<char*>(child.c_str()),
                    const_cast<char*>(dir.c_str()),
                    const_cast<char*>(s_shards.c_str()),
                    const_cast<char*>(s_producers.c_str()),
                    const_cast<char*>(s_every.c_str()),
                    const_cast<char*>(s_at.c_str()),
                    const_cast<char*>(s_kill.c_str()),
                    nullptr};
    execv(child.c_str(), argv);
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

TEST(CrashKillGrid, SigkillMidStreamRecoversByteIdentically) {
  const Baseline& base = baseline();
  ASSERT_FALSE(base.events.empty());
  const std::uint64_t total = base.updates.size();
  ASSERT_GT(total, 100u);
  for (std::size_t shards : {1u, 3u, 8u}) {
    for (std::size_t producers : {1u, 3u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " producers=" + std::to_string(producers));
      std::string dir = temp_dir("bgpbh_rec_kill_" + std::to_string(shards) +
                                 "_" + std::to_string(producers));
      // Crash 1: explicit checkpoint at 1/5, SIGKILL at 2/5 — plus a
      // cadence every total/4 so the background path also runs.
      int status = run_child(dir, shards, producers, total / 4, total / 5,
                             2 * total / 5);
      ASSERT_TRUE(WIFSIGNALED(status)) << "child 1 was not killed";
      ASSERT_EQ(WTERMSIG(status), SIGKILL);
      // Crash 2: recover from crash 1's state, checkpoint again deeper
      // into the stream, die again at 4/5.
      status = run_child(dir, shards, producers, total / 4, 3 * total / 5,
                         4 * total / 5);
      ASSERT_TRUE(WIFSIGNALED(status)) << "child 2 was not killed";
      ASSERT_EQ(WTERMSIG(status), SIGKILL);
      // Final incarnation: recover and run to a clean close.
      status = run_child(dir, shards, producers, total / 4, 0, 0);
      ASSERT_TRUE(WIFEXITED(status)) << "final child crashed";
      ASSERT_EQ(WEXITSTATUS(status), 0);
      // Two SIGKILLs later: the archive is byte-identical to a run
      // that never crashed.  Zero loss, zero duplication.
      api::SessionConfig reopen;
      reopen.mode = api::SessionConfig::Mode::kReopen;
      reopen.persist_dir = dir;
      api::AnalysisSession session(reopen);
      EXPECT_TRUE(session.events() == base.events)
          << "recovered archive diverged from the uncrashed baseline";
      fs::remove_all(dir);
    }
  }
}

}  // namespace
}  // namespace bgpbh::recovery
