#include "core/study.h"

#include <gtest/gtest.h>

namespace bgpbh::core {
namespace {

// One shared study over a short window keeps the suite fast while still
// exercising the full pipeline.
Study& study() {
  static Study* s = [] {
    StudyConfig config;
    config.window_start = util::from_date(2017, 2, 1);
    config.window_end = util::from_date(2017, 3, 1);
    config.workload.intensity_scale = 0.05;
    auto* study = new Study(config);
    study->run();
    return study;
  }();
  return *s;
}

TEST(Study, ProducesEvents) {
  EXPECT_GT(study().events().size(), 1000u);
  EXPECT_GT(study().prefix_events().size(), 100u);
  EXPECT_GE(study().prefix_events().size(), study().grouped_events().size());
}

TEST(Study, GroundTruthMostlyVisible) {
  std::size_t invisible = 0;
  for (const auto& t : study().ground_truth()) {
    if (t.observed_updates == 0) ++invisible;
  }
  double rate = 1.0 - static_cast<double>(invisible) /
                          static_cast<double>(study().ground_truth().size());
  // §10: 99.5% of route-server blackholing events are visible; overall
  // visibility is necessarily a lower bound, but must stay high.
  EXPECT_GT(rate, 0.95);
}

TEST(Study, EventsWithinWindow) {
  for (const auto& e : study().events()) {
    EXPECT_LE(e.start, e.end);
    // Table-dump-seeded events legitimately start at 0.
    if (!e.started_in_table_dump) {
      EXPECT_GE(e.start, study().config().window_start);
    }
    EXPECT_LE(e.end, study().config().window_end);
  }
}

TEST(Study, TableDumpEventsPresent) {
  std::size_t from_dump = 0;
  for (const auto& e : study().events()) {
    if (e.started_in_table_dump) ++from_dump;
  }
  EXPECT_GT(from_dump, 0u);
}

TEST(Study, DetectionKindMixMatchesPaper) {
  std::size_t bundled = 0, total = 0, ixp = 0;
  for (const auto& e : study().events()) {
    ++total;
    if (e.kind == DetectionKind::kBundled) ++bundled;
    if (e.kind == DetectionKind::kIxpPeerIp ||
        e.kind == DetectionKind::kIxpRouteServer)
      ++ixp;
  }
  // Bundling contributes "about half" of inferences (§9 / Fig 7c
  // no-path ≈ 50%); wide tolerance, the shape is what matters.
  double bundled_rate = static_cast<double>(bundled) / static_cast<double>(total);
  EXPECT_GT(bundled_rate, 0.15);
  EXPECT_LT(bundled_rate, 0.70);
  EXPECT_GT(ixp, 0u);
}

TEST(Study, Table3AllCoversPlatforms) {
  auto t0 = study().config().window_start;
  auto t1 = study().config().window_end;
  auto per = study().table3(t0, t1);
  auto all = study().table3_all(t0, t1);
  EXPECT_FALSE(per.empty());
  for (auto& [platform, row] : per) {
    EXPECT_LE(row.providers, all.providers) << routing::to_string(platform);
    EXPECT_LE(row.users, all.users);
    EXPECT_LE(row.prefixes, all.prefixes);
    EXPECT_GE(row.providers, row.unique_providers);
    EXPECT_GE(row.direct_feed_fraction, 0.0);
    EXPECT_LE(row.direct_feed_fraction, 1.0);
  }
  EXPECT_GT(all.prefixes, 100u);
  EXPECT_GT(all.users, 20u);
  EXPECT_GT(all.providers, 10u);
}

TEST(Study, Table4TransitAccessDominates) {
  auto t0 = study().config().window_start;
  auto t1 = study().config().window_end;
  auto table4 = study().table4(t0, t1);
  ASSERT_TRUE(table4.contains(topology::NetworkType::kTransitAccess));
  const auto& ta = table4[topology::NetworkType::kTransitAccess];
  for (auto& [type, row] : table4) {
    EXPECT_GE(ta.prefixes, row.prefixes) << topology::to_string(type);
  }
  // IXPs have 100% direct feeds in Table 4 by construction (every IXP
  // in our events was observed via its own collector).
  if (table4.contains(topology::NetworkType::kIxp)) {
    EXPECT_GT(table4[topology::NetworkType::kIxp].direct_feed_fraction, 0.9);
  }
}

TEST(Study, DailySeriesPopulated) {
  auto prefixes = study().daily_prefixes();
  auto users = study().daily_users();
  auto providers = study().daily_providers();
  EXPECT_GT(prefixes.num_days(), 20u);
  EXPECT_GT(prefixes.max(), users.max());
  EXPECT_GT(users.max(), 0.0);
  EXPECT_GT(providers.max(), 0.0);
}

TEST(Study, CountryBreakdownsNonEmpty) {
  auto t0 = study().config().window_start;
  auto t1 = study().config().window_end;
  auto providers = study().providers_per_country(t0, t1);
  auto users = study().users_per_country(t0, t1);
  EXPECT_GT(providers.size(), 3u);
  EXPECT_GT(users.size(), 3u);
  std::size_t total_users = 0;
  for (auto& [c, n] : users) total_users += n;
  auto all = study().table3_all(t0, t1);
  EXPECT_EQ(total_users, all.users);
}

TEST(Study, UsageCollected) {
  EXPECT_GT(study().usage().stats().size(), 50u);
}

TEST(Study, HostRouteShareInEvents) {
  std::set<net::Prefix> prefixes;
  for (const auto& e : study().events()) prefixes.insert(e.prefix);
  std::size_t v4 = 0, hosts = 0;
  for (const auto& p : prefixes) {
    if (!p.is_v4()) continue;
    ++v4;
    if (p.is_host_route()) ++hosts;
  }
  ASSERT_GT(v4, 50u);
  EXPECT_GT(static_cast<double>(hosts) / static_cast<double>(v4), 0.9);
}

TEST(Study, Determinism) {
  StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 8);
  config.workload.intensity_scale = 0.05;
  Study a(config), b(config);
  a.run();
  b.run();
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].prefix, b.events()[i].prefix);
    EXPECT_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_EQ(a.events()[i].provider, b.events()[i].provider);
  }
}

TEST(Study, BundlingAblationLosesInferences) {
  StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 8);
  config.workload.intensity_scale = 0.05;
  Study baseline(config);
  baseline.run();
  config.engine.detect_bundled = false;
  Study ablated(config);
  ablated.run();
  // Disabling bundling detection must lose a substantial share of
  // inferences (the paper: about half).
  EXPECT_LT(ablated.events().size(), baseline.events().size());
  auto t0 = config.window_start, t1 = config.window_end;
  EXPECT_LE(ablated.table3_all(t0, t1).providers,
            baseline.table3_all(t0, t1).providers);
}

}  // namespace
}  // namespace bgpbh::core
