// End-to-end integration: the full pipeline from workload to inference
// to the derived experiment aggregates, plus cross-module consistency
// checks that no unit test can see.
#include <gtest/gtest.h>

#include "core/study.h"
#include "dataplane/efficacy.h"
#include "dictionary/inferred.h"
#include "flows/ixp_traffic.h"
#include "scans/profile.h"

namespace bgpbh {
namespace {

core::Study& study() {
  static core::Study* s = [] {
    core::StudyConfig config;
    config.window_start = util::from_date(2017, 1, 1);
    config.window_end = util::from_date(2017, 3, 1);
    config.workload.intensity_scale = 0.04;
    auto* study = new core::Study(config);
    study->run();
    return study;
  }();
  return *s;
}

TEST(Integration, InferredEventsMatchGroundTruthEpisodes) {
  // Every inferred prefix must correspond to a ground-truth episode (no
  // false positives at the prefix level).
  std::set<net::Prefix> truth_prefixes;
  for (const auto& t : study().ground_truth()) {
    truth_prefixes.insert(t.episode.prefix);
  }
  // Plus the table-dump seeds, which are not part of ground_truth().
  std::size_t false_positives = 0;
  for (const auto& e : study().events()) {
    if (e.started_in_table_dump) continue;
    if (!truth_prefixes.contains(e.prefix)) ++false_positives;
  }
  EXPECT_EQ(false_positives, 0u);
}

TEST(Integration, InferredProvidersWereTargeted) {
  // Each inferred (prefix, provider) pair must match an episode that
  // actually involved that provider (ISP) or IXP.
  std::map<net::Prefix, std::set<std::string>> truth;
  for (const auto& t : study().ground_truth()) {
    auto& set = truth[t.episode.prefix];
    for (auto p : t.episode.providers) set.insert("AS" + std::to_string(p));
    for (auto ix : t.episode.ixps) set.insert("IXP#" + std::to_string(ix));
  }
  std::size_t mismatches = 0, checked = 0;
  for (const auto& e : study().events()) {
    if (e.started_in_table_dump) continue;
    auto it = truth.find(e.prefix);
    if (it == truth.end()) continue;
    ++checked;
    if (it->second.contains(e.provider.to_string())) continue;
    // Shared communities (e.g. 0:666) legitimately credit a different
    // provider than the one targeted when both use the same value and
    // the candidate is on the path — a documented limitation, not an
    // engine bug.  Anything else is a real mismatch.
    // IXP attributions share the RFC 7999 community: a bundled route
    // re-exported over a PCH LAN session can credit a different IXP
    // than the targeted one — the same ambiguity the real methodology
    // faces with 65535:666.
    if (e.provider.is_ixp) continue;
    const topology::AsNode* node = study().graph().find(e.provider.asn);
    bool shared_community_case =
        node && node->blackhole.offers_blackholing &&
        !node->blackhole.communities.empty() &&
        node->blackhole.communities.front().asn() !=
            (node->asn & 0xFFFF);  // provider uses a non-ASN-scoped value
    if (!shared_community_case) ++mismatches;
  }
  ASSERT_GT(checked, 1000u);
  // Allow a tiny residue for ambiguous-community collisions.
  EXPECT_LT(static_cast<double>(mismatches) / static_cast<double>(checked),
            0.01);
}

TEST(Integration, RecallOfVisibleEpisodes) {
  // Episodes that produced at least one collector sighting must yield
  // at least one inferred event for their prefix.
  std::set<net::Prefix> inferred;
  for (const auto& e : study().events()) inferred.insert(e.prefix);
  std::size_t visible = 0, recalled = 0;
  for (const auto& t : study().ground_truth()) {
    if (t.observed_updates == 0) continue;
    ++visible;
    if (inferred.contains(t.episode.prefix)) ++recalled;
  }
  ASSERT_GT(visible, 500u);
  double recall = static_cast<double>(recalled) / static_cast<double>(visible);
  // Not every sighting carries a *documented* community (undocumented
  // providers, stripped communities), so recall is high but not 1.0.
  EXPECT_GT(recall, 0.80);
}

TEST(Integration, UndocumentedCommunitiesInferred) {
  // The Fig 2 signature inference must discover undocumented provider
  // communities from the accumulated update stream.
  auto inferred = dictionary::infer_undocumented(
      study().usage(), study().dictionary(), study().graph());
  // The count scales with the observation window (the fig2 bench runs
  // the full focus window and finds many more); two months at 0.04
  // intensity reliably surface at least a handful.
  EXPECT_GE(inferred.size(), 4u);
  std::size_t correct = 0;
  for (const auto& ic : inferred) {
    const topology::AsNode* node = study().graph().find(ic.provider_asn);
    if (node && node->blackhole.offers_blackholing) ++correct;
  }
  // Precision: most inferred communities belong to real blackholing
  // providers.  (The paper validates candidates against documentation
  // before trusting them, precisely because precision is not 1.0.)
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(inferred.size()),
            0.75);
}

TEST(Integration, Fig2SignatureSeparation) {
  // Documented blackhole communities sit on /25+ prefixes; service
  // communities on /24-or-less (the Fig 2 contrast).
  double bh_ms = 0, bh_n = 0, svc_ms = 0, svc_n = 0;
  for (const auto& [community, stats] : study().usage().stats()) {
    double frac = stats.fraction_more_specific_than(24);
    if (study().dictionary().is_blackhole(community)) {
      bh_ms += frac;
      bh_n += 1;
    } else if (stats.cooccur_with_documented == 0) {
      svc_ms += frac;
      svc_n += 1;
    }
  }
  ASSERT_GT(bh_n, 10);
  ASSERT_GT(svc_n, 10);
  EXPECT_GT(bh_ms / bh_n, 0.85);
  EXPECT_LT(svc_ms / svc_n, 0.20);
}

TEST(Integration, MultiProviderEventsExist) {
  std::size_t multi = 0;
  for (const auto& e : study().prefix_events()) {
    if (e.providers.size() > 1) ++multi;
  }
  double rate = static_cast<double>(multi) /
                static_cast<double>(study().prefix_events().size());
  // Fig 7b: 28% of events involve multiple providers.
  EXPECT_GT(rate, 0.08);
  EXPECT_LT(rate, 0.5);
}

TEST(Integration, DurationContrastUngroupedVsGrouped) {
  stats::Cdf ungrouped, grouped;
  for (const auto& e : study().prefix_events()) {
    if (e.includes_table_dump_start) continue;
    ungrouped.add(static_cast<double>(e.duration()));
  }
  for (const auto& e : study().grouped_events()) {
    if (e.includes_table_dump_start) continue;
    grouped.add(static_cast<double>(e.duration()));
  }
  ASSERT_GT(ungrouped.count(), 500u);
  // Fig 8a: most ungrouped events are very short; grouping collapses
  // the ON/OFF probing so short events nearly disappear.
  double short_ungrouped = ungrouped.at(60.0);
  double short_grouped = grouped.at(60.0);
  EXPECT_GT(short_ungrouped, 0.4);
  EXPECT_LT(short_grouped, short_ungrouped / 2);
}

TEST(Integration, EfficacyOnStudyEpisodes) {
  // Run the §10 campaign on a slice of ground-truth episodes.
  std::vector<workload::Episode> episodes;
  for (const auto& t : study().ground_truth()) {
    if (!t.episode.providers.empty() && !t.activated_providers.empty() &&
        t.episode.prefix.is_v4()) {
      episodes.push_back(t.episode);
    }
    if (episodes.size() >= 60) break;
  }
  ASSERT_GE(episodes.size(), 30u);
  dataplane::EfficacyMeasurer measurer(study().graph(), study().cones(),
                                       study().propagation(), 42);
  auto campaign = measurer.measure(episodes);
  EXPECT_GT(campaign.fraction_paths_shorter_during(), 0.5);
  EXPECT_GT(campaign.mean_ip_hop_reduction(), 1.0);
}

TEST(Integration, ScanProfileOnInferredPrefixes) {
  std::set<net::Prefix> prefix_set;
  for (const auto& e : study().events()) {
    if (e.prefix.is_v4()) prefix_set.insert(e.prefix);
  }
  std::vector<net::Prefix> prefixes(prefix_set.begin(), prefix_set.end());
  ASSERT_GT(prefixes.size(), 200u);
  scans::ScanSynthesizer synth(study().graph(), 321);
  scans::BlackholeProfiler profiler(synth);
  auto profile = profiler.profile(prefixes);
  std::size_t http = profile.prefixes_with_service[static_cast<std::size_t>(
      scans::Service::kHttp)];
  EXPECT_GT(http, profile.total_prefixes / 3);
}

TEST(Integration, MisconfiguredEpisodesRemainControlPlaneOnly) {
  std::size_t misconfig_seen = 0;
  for (const auto& t : study().ground_truth()) {
    using M = routing::BlackholeAnnouncement::Misconfig;
    if (t.episode.misconfig == M::kNone) continue;
    ++misconfig_seen;
    if (t.episode.misconfig == M::kWrongCommunity) {
      EXPECT_TRUE(t.activated_providers.empty());
    }
  }
  EXPECT_GT(misconfig_seen, 0u);
}

}  // namespace
}  // namespace bgpbh
