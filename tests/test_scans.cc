#include "scans/profile.h"
#include "scans/reputation.h"

#include <gtest/gtest.h>

#include "topology/generator.h"
#include "util/rng.h"

namespace bgpbh::scans {
namespace {

struct Env {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  ScanSynthesizer scans{graph, 777};

  std::vector<net::Prefix> sample_prefixes(std::size_t n) const {
    std::vector<net::Prefix> out;
    util::Rng rng(11);
    const auto& nodes = graph.nodes();
    while (out.size() < n) {
      const auto& node = nodes[rng.uniform(nodes.size())];
      std::uint32_t host = node.v4_block.addr().v4().value() +
                           static_cast<std::uint32_t>(rng.uniform(1u << 16));
      out.emplace_back(net::Ipv4Addr(host), 32);
    }
    return out;
  }
};

Env& env() {
  static Env e;
  return e;
}

TEST(ScanSynthesizer, Deterministic) {
  auto ip = *net::IpAddr::parse("20.5.1.2");
  auto a = env().scans.probe(ip);
  auto b = env().scans.probe(ip);
  EXPECT_EQ(a.services, b.services);
  EXPECT_EQ(a.http_responds, b.http_responds);
  EXPECT_EQ(a.alexa_rank, b.alexa_rank);
}

TEST(ScanSynthesizer, TarpitsOpenEverything) {
  // Scan many addresses; every tarpit must accept all 13 protocols.
  util::Rng rng(5);
  std::size_t tarpits = 0, total = 20000;
  for (std::size_t i = 0; i < total; ++i) {
    net::IpAddr ip(net::Ipv4Addr(0x14000000u + static_cast<std::uint32_t>(rng.uniform(1u << 24))));
    auto p = env().scans.probe(ip);
    if (p.is_tarpit) {
      ++tarpits;
      for (std::size_t s = 0; s < kNumServices; ++s) {
        EXPECT_TRUE(has_service(p.services, static_cast<Service>(s)));
      }
    }
  }
  // ~4% of hosts (§8).
  EXPECT_NEAR(static_cast<double>(tarpits) / static_cast<double>(total), 0.04,
              0.01);
}

TEST(ScanSynthesizer, CoLocationStructure) {
  util::Rng rng(6);
  std::size_t ftp = 0, ftp_http = 0, ssh = 0, ssh_http = 0, http = 0, total = 30000;
  for (std::size_t i = 0; i < total; ++i) {
    net::IpAddr ip(net::Ipv4Addr(0x15000000u + static_cast<std::uint32_t>(rng.uniform(1u << 24))));
    auto p = env().scans.probe(ip);
    if (p.is_tarpit) continue;  // tarpits open everything trivially
    bool has_http = has_service(p.services, Service::kHttp);
    http += has_http;
    if (has_service(p.services, Service::kFtp)) {
      ++ftp;
      ftp_http += has_http;
    }
    if (has_service(p.services, Service::kSsh)) {
      ++ssh;
      ssh_http += has_http;
    }
  }
  ASSERT_GT(ftp, 100u);
  ASSERT_GT(ssh, 100u);
  // >90% of FTP and ~79% of SSH servers co-locate with HTTP (§8).
  EXPECT_GT(static_cast<double>(ftp_http) / static_cast<double>(ftp), 0.9);
  EXPECT_GT(static_cast<double>(ssh_http) / static_cast<double>(ssh), 0.6);
  // HTTP dominates overall.
  EXPECT_GT(static_cast<double>(http) / static_cast<double>(total), 0.4);
}

TEST(ScanSynthesizer, HttpResponseRateForBlackholedHosts) {
  util::Rng rng(8);
  std::size_t http = 0, responds = 0;
  for (std::size_t i = 0; i < 30000; ++i) {
    net::IpAddr ip(net::Ipv4Addr(0x16000000u + static_cast<std::uint32_t>(rng.uniform(1u << 24))));
    auto p = env().scans.probe(ip);
    if (!has_service(p.services, Service::kHttp)) continue;
    ++http;
    responds += p.http_responds;
  }
  // ~61% for blackholed hosts vs ~90% general population (§8).
  EXPECT_NEAR(static_cast<double>(responds) / static_cast<double>(http), 0.61,
              0.03);
  EXPECT_DOUBLE_EQ(env().scans.general_http_response_rate(), 0.90);
}

TEST(Profiler, ProfileShape) {
  BlackholeProfiler profiler(env().scans);
  auto prefixes = env().sample_prefixes(3000);
  auto profile = profiler.profile(prefixes);
  EXPECT_EQ(profile.total_prefixes, 3000u);
  EXPECT_EQ(profile.host_routes, 3000u);
  EXPECT_EQ(profile.covered_addresses, 3000u);

  std::size_t http = profile.prefixes_with_service[static_cast<std::size_t>(Service::kHttp)];
  // HTTP is the dominant service (53% of prefixes in the paper).
  for (std::size_t s = 0; s < kNumServices; ++s) {
    EXPECT_GE(http, profile.prefixes_with_service[s]);
  }
  EXPECT_NEAR(static_cast<double>(http) / 3000.0, 0.53, 0.08);
  // ~60% of prefixes expose at least one service.
  double with_any = 1.0 - static_cast<double>(profile.prefixes_with_none) / 3000.0;
  EXPECT_NEAR(with_any, 0.64, 0.10);
  // ~10% run all six mail protocols; ~4% are tarpits (§8).
  EXPECT_NEAR(static_cast<double>(profile.mail_sextet_prefixes) / 3000.0, 0.135,
              0.06);
  EXPECT_NEAR(static_cast<double>(profile.tarpit_prefixes) / 3000.0, 0.04, 0.02);
  // Alexa presence: ~3% of HTTP hosts.
  EXPECT_LT(profile.alexa_prefixes, http / 10);
  // TLD mix led by .com.
  if (!profile.tld_counts.empty()) {
    std::size_t com = profile.tld_counts.count("com") ? profile.tld_counts.at("com") : 0;
    for (auto& [tld, n] : profile.tld_counts) {
      EXPECT_GE(com, n / 2) << tld;
    }
  }
}

TEST(Profiler, WiderPrefixSamplesMultipleHosts) {
  BlackholeProfiler profiler(env().scans);
  std::vector<net::Prefix> prefixes = {*net::Prefix::parse("20.7.0.0/24")};
  auto profile = profiler.profile(prefixes, 16);
  EXPECT_EQ(profile.total_prefixes, 1u);
  EXPECT_EQ(profile.host_routes, 0u);
  EXPECT_EQ(profile.covered_addresses, 256u);
}

TEST(Reputation, DailyStatsShape) {
  ReputationDb db(999);
  auto prefixes = env().sample_prefixes(20000);
  auto stats = db.daily_stats(17000, prefixes);
  // §8: 400-900 matches/day at the paper's 20K-prefix scale; >90%
  // probers; ~2% both; 500-800 login IPs.
  EXPECT_GT(stats.matches, 100u);
  EXPECT_LT(stats.matches, 1500u);
  EXPECT_GT(static_cast<double>(stats.probers) / static_cast<double>(stats.matches),
            0.85);
  EXPECT_GT(stats.both, 0u);
  EXPECT_LT(static_cast<double>(stats.both) / static_cast<double>(stats.matches),
            0.08);
  EXPECT_GT(stats.login_ips, 50u);
  // The union covers ~2% of blackholed prefixes.
  EXPECT_NEAR(static_cast<double>(stats.prefixes_involved) / 20000.0, 0.016,
              0.012);
}

TEST(Reputation, MembershipStableAcrossDays) {
  ReputationDb db(999);
  auto prefixes = env().sample_prefixes(5000);
  auto d1 = db.daily_matches(17000, prefixes);
  auto d2 = db.daily_matches(17001, prefixes);
  // Different days differ in activity but draw from the same stable
  // ~2% sub-population.
  std::set<std::uint32_t> ips1, ips2;
  for (auto& m : d1) ips1.insert(m.ip.value());
  for (auto& m : d2) ips2.insert(m.ip.value());
  std::size_t common = 0;
  for (auto ip : ips1) common += ips2.contains(ip);
  EXPECT_GT(common, 0u);
}

TEST(ServiceNames, Complete) {
  for (std::size_t s = 0; s < kNumServices; ++s) {
    EXPECT_NE(to_string(static_cast<Service>(s)), "?");
  }
}

}  // namespace
}  // namespace bgpbh::scans
