#include "topology/registry.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpbh::topology {
namespace {

struct Env {
  AsGraph graph = generate(GeneratorConfig{});
  Registry registry = Registry::build(graph, 0.72, 0.95, 42);
};

const Env& env() {
  static Env e;
  return e;
}

TEST(Registry, CoverageRates) {
  // PeeringDB covers ~72% of typed ASes; CAIDA ~95%.
  std::size_t typed = 0;
  for (const auto& node : env().graph.nodes()) {
    if (node.type != NetworkType::kUnknown) ++typed;
  }
  double pdb_rate = static_cast<double>(env().registry.peeringdb_size()) /
                    static_cast<double>(typed);
  EXPECT_NEAR(pdb_rate, 0.72, 0.10);  // includes RS records, hence slack
  double caida_rate = static_cast<double>(env().registry.caida_size()) /
                      static_cast<double>(typed);
  EXPECT_NEAR(caida_rate, 0.95, 0.05);
}

TEST(Registry, UnknownAsesAbsentFromBothSources) {
  for (const auto& node : env().graph.nodes()) {
    if (node.type != NetworkType::kUnknown) continue;
    EXPECT_FALSE(env().registry.peeringdb(node.asn).has_value());
    EXPECT_FALSE(env().registry.caida(node.asn).has_value());
    EXPECT_EQ(env().registry.classify(node.asn), NetworkType::kUnknown);
  }
}

TEST(Registry, RirCountryComplete) {
  for (const auto& node : env().graph.nodes()) {
    auto c = env().registry.rir_country(node.asn);
    ASSERT_TRUE(c) << node.asn;
    EXPECT_EQ(*c, node.country);
  }
}

TEST(Registry, ClassifyMatchesGroundTruthMostly) {
  std::size_t agree = 0, total = 0;
  for (const auto& node : env().graph.nodes()) {
    if (node.type == NetworkType::kUnknown) continue;
    ++total;
    NetworkType classified = env().registry.classify(node.asn);
    if (classified == node.type) ++agree;
    // Never classify a typed network as something contradictory when a
    // PeeringDB record exists and discloses the type.
    auto rec = env().registry.peeringdb(node.asn);
    if (rec && rec->type != PdbType::kNotDisclosed &&
        node.type != NetworkType::kEduResearchNfP) {
      EXPECT_EQ(classified, node.type) << "AS" << node.asn;
    }
  }
  // CAIDA's missing edu class degrades some EduResearchNfP to
  // Enterprise; overall agreement stays high.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.80);
}

TEST(Registry, IxpRecordsComplete) {
  for (const auto& ixp : env().graph.ixps()) {
    auto rec = env().registry.peeringdb_ixp(ixp.id);
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec->route_server_asn, ixp.route_server_asn);
    EXPECT_EQ(rec->peering_lan, ixp.peering_lan);
    EXPECT_EQ(rec->country, ixp.country);
  }
}

TEST(Registry, RouteServerClassifiedAsIxp) {
  const Ixp& ixp = env().graph.ixps().front();
  EXPECT_EQ(env().registry.classify(ixp.route_server_asn), NetworkType::kIxp);
}

TEST(Registry, LanContainment) {
  const Ixp& ixp = env().graph.ixps().front();
  auto id = env().registry.ixp_lan_containing(ixp.blackhole_ip_v4);
  ASSERT_TRUE(id);
  EXPECT_EQ(*id, ixp.id);
  EXPECT_FALSE(
      env().registry.ixp_lan_containing(*net::IpAddr::parse("203.0.113.1")));
}

TEST(Registry, PdbTypeToString) {
  EXPECT_EQ(to_string(PdbType::kNsp), "NSP");
  EXPECT_EQ(to_string(PdbType::kCableDslIsp), "Cable/DSL/ISP");
  EXPECT_EQ(to_string(PdbType::kNotDisclosed), "Not Disclosed");
}

TEST(Registry, ClassifyUnknownAsn) {
  EXPECT_EQ(env().registry.classify(123456789), NetworkType::kUnknown);
}

}  // namespace
}  // namespace bgpbh::topology
