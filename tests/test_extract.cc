#include "dictionary/extract.h"

#include <gtest/gtest.h>

#include "dictionary/corpus.h"
#include "topology/generator.h"

namespace bgpbh::dictionary {
namespace {

TEST(Lemma, PositiveForms) {
  EXPECT_TRUE(contains_blackhole_lemma("64500:666 - blackhole the prefix"));
  EXPECT_TRUE(contains_blackhole_lemma("BLACKHOLING supported"));
  EXPECT_TRUE(contains_blackhole_lemma("black-hole this route"));
  EXPECT_TRUE(contains_blackhole_lemma("null route the destination"));
  EXPECT_TRUE(contains_blackhole_lemma("null-route traffic"));
  EXPECT_TRUE(contains_blackhole_lemma("RTBH community"));
  EXPECT_TRUE(contains_blackhole_lemma("remotely triggered blackholing"));
  EXPECT_TRUE(contains_blackhole_lemma("discard all traffic towards X"));
  EXPECT_TRUE(contains_blackhole_lemma("drop traffic to the prefix"));
}

TEST(Lemma, NegativeForms) {
  EXPECT_FALSE(contains_blackhole_lemma("prepend 2x towards peers"));
  EXPECT_FALSE(contains_blackhole_lemma("peering routes"));
  EXPECT_FALSE(contains_blackhole_lemma("set local-preference to 80"));
  // "drop" without "traffic" is not enough.
  EXPECT_FALSE(contains_blackhole_lemma("drop the MED attribute"));
  EXPECT_FALSE(contains_blackhole_lemma(""));
}

TEST(Scope, Extraction) {
  EXPECT_EQ(extract_scope("blackhole in Europe only"), "EU");
  EXPECT_EQ(extract_scope("blackhole in the US only"), "US");
  EXPECT_EQ(extract_scope("blackhole in Asia only"), "AS");
  EXPECT_EQ(extract_scope("blackhole everywhere"), "");
}

TEST(MaxPrefixLen, Extraction) {
  auto len = extract_max_prefix_len("prefixes up to /32 are accepted");
  ASSERT_TRUE(len);
  EXPECT_EQ(*len, 32);
  EXPECT_EQ(*extract_max_prefix_len("prefix lengths up to /30 allowed"), 30);
  EXPECT_FALSE(extract_max_prefix_len("no slash here"));
  EXPECT_FALSE(extract_max_prefix_len("see /etc/config for details"));
}

TEST(Extract, IrrDocument) {
  Document doc;
  doc.kind = Document::Kind::kIrr;
  doc.subject_asn = 64500;
  doc.text =
      "aut-num: AS64500\n"
      "remarks:        64500:100  - prepend 1x to peers\n"
      "remarks:        64500:666  - blackhole (null route) the prefix\n"
      "remarks:        64500:667  - blackhole in Europe only\n"
      "remarks:        prefixes up to /32 are accepted when tagged\n";
  auto found = extract_from_document(doc);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_FALSE(found[0].is_blackhole);
  EXPECT_EQ(found[0].community, bgp::Community(64500, 100));
  EXPECT_TRUE(found[1].is_blackhole);
  EXPECT_EQ(found[1].community, bgp::Community(64500, 666));
  EXPECT_EQ(found[1].max_prefix_len, 32);
  EXPECT_TRUE(found[2].is_blackhole);
  EXPECT_EQ(found[2].scope, "EU");
}

TEST(Extract, WebPageMarkupStripped) {
  Document doc;
  doc.kind = Document::Kind::kWebPage;
  doc.subject_asn = 65000;
  doc.text = "<li><b>65000:666</b>: blackhole: traffic discarded</li>\n";
  auto found = extract_from_document(doc);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].community, bgp::Community(65000, 666));
  EXPECT_TRUE(found[0].is_blackhole);
  EXPECT_EQ(found[0].source, Document::Kind::kWebPage);
}

TEST(Extract, Level3StyleTrapNotBlackhole) {
  // 3356:666 tags peering routes at Level3 — must NOT be classified as
  // a blackhole community (§4.1).
  Document doc;
  doc.kind = Document::Kind::kIrr;
  doc.subject_asn = 3356;
  doc.text =
      "remarks:        3356:666   - peering routes\n"
      "remarks:        3356:9999  - remotely triggered blackholing\n";
  auto found = extract_from_document(doc);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_FALSE(found[0].is_blackhole);
  EXPECT_EQ(found[0].community, bgp::Community(3356, 666));
  EXPECT_TRUE(found[1].is_blackhole);
  EXPECT_EQ(found[1].community, bgp::Community(3356, 9999));
}

TEST(Extract, LargeCommunity) {
  Document doc;
  doc.kind = Document::Kind::kIrr;
  doc.subject_asn = 64500;
  doc.text = "remarks: 64500:666:0 - blackhole (large community format)\n";
  auto found = extract_from_document(doc);
  ASSERT_EQ(found.size(), 1u);
  ASSERT_TRUE(found[0].large_community);
  EXPECT_EQ(*found[0].large_community, bgp::LargeCommunity(64500, 666, 0));
  EXPECT_TRUE(found[0].is_blackhole);
}

TEST(Extract, IgnoresNonCommunityTokens) {
  Document doc;
  doc.kind = Document::Kind::kIrr;
  doc.subject_asn = 1;
  doc.text = "remarks: contact noc@example.net tel +1:555 blackhole ::ffff\n";
  auto found = extract_from_document(doc);
  // "+1:555" strips to "1:555" which parses — acceptable FP for the
  // extractor, but "::ffff" and the email must not parse.
  for (const auto& e : found) {
    ASSERT_TRUE(e.community.has_value());
  }
}

TEST(Corpus, GeneratedCorpusCoversDocumentedProviders) {
  auto graph = topology::generate(topology::GeneratorConfig{});
  auto corpus = generate_corpus(graph, 42);
  EXPECT_FALSE(corpus.documents.empty());
  // Paper: 5 networks contributed via private communication.
  EXPECT_LE(corpus.private_communications.size(), 5u);

  // Every documented provider has a document mentioning its community.
  std::set<Asn> documented_subjects;
  for (const auto& doc : corpus.documents) documented_subjects.insert(doc.subject_asn);
  std::size_t missing = 0;
  for (const auto& node : graph.nodes()) {
    if (!node.blackhole.offers_blackholing) continue;
    if (!node.blackhole.documented_in_irr && !node.blackhole.documented_on_web)
      continue;
    if (!documented_subjects.contains(node.asn)) ++missing;
  }
  EXPECT_EQ(missing, 0u);
}

TEST(Corpus, UndocumentedProvidersAbsent) {
  auto graph = topology::generate(topology::GeneratorConfig{});
  auto corpus = generate_corpus(graph, 42);
  auto extracted = extract_all(corpus);
  std::set<std::uint32_t> bh_comms;
  for (const auto& e : extracted) {
    if (e.is_blackhole && e.community) bh_comms.insert(e.community->raw());
  }
  // No undocumented provider's community may appear as a blackhole
  // community in the corpus (they are only inferable via Fig 2).
  std::size_t leaked = 0;
  for (const auto& node : graph.nodes()) {
    const auto& bp = node.blackhole;
    if (!bp.offers_blackholing || bp.documented_in_irr || bp.documented_on_web)
      continue;
    bool via_private = false;
    for (const auto& pc : corpus.private_communications) {
      if (pc.asn == node.asn) via_private = true;
    }
    if (via_private) continue;
    // Shared communities (0:666) may be documented by other providers.
    if (bp.communities.front().asn() == 0) continue;
    if (bh_comms.contains(bp.communities.front().raw())) ++leaked;
  }
  EXPECT_EQ(leaked, 0u);
}

TEST(Corpus, Deterministic) {
  auto graph = topology::generate(topology::GeneratorConfig{});
  auto c1 = generate_corpus(graph, 42);
  auto c2 = generate_corpus(graph, 42);
  ASSERT_EQ(c1.documents.size(), c2.documents.size());
  for (std::size_t i = 0; i < c1.documents.size(); ++i) {
    EXPECT_EQ(c1.documents[i].text, c2.documents[i].text);
  }
}

}  // namespace
}  // namespace bgpbh::dictionary
