// Equivalence of the compiled fast-path dictionary with its std::map
// source: over fuzzed dictionaries, every lookup (classic and large),
// ambiguity flag, provider/IXP span, and prefilter verdict must match
// — the compiled form may only ever add bitset false *positives*,
// never false negatives.
#include "dictionary/compiled.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace bgpbh::dictionary {
namespace {

using bgp::Community;
using bgp::CommunitySet;
using bgp::LargeCommunity;

Community random_community(util::Rng& rng) {
  // Small value space so fuzzed probes hit real entries often and
  // distinct communities share 16-bit value halves (exercising bitset
  // false positives).
  return Community(static_cast<std::uint16_t>(rng.uniform(64)),
                   static_cast<std::uint16_t>(rng.uniform(1024)));
}

LargeCommunity random_large(util::Rng& rng) {
  return LargeCommunity(static_cast<std::uint32_t>(rng.uniform(1 << 20)),
                        static_cast<std::uint32_t>(rng.uniform(1024)),
                        static_cast<std::uint32_t>(rng.uniform(8)));
}

BlackholeDictionary random_dictionary(util::Rng& rng) {
  BlackholeDictionary dict;
  const std::size_t n_provider = 20 + rng.uniform(200);
  for (std::size_t i = 0; i < n_provider; ++i) {
    // 1-3 providers per add; repeated adds to the same community merge.
    std::size_t k = 1 + rng.uniform(3);
    Community c = random_community(rng);
    for (std::size_t j = 0; j < k; ++j) {
      dict.add_provider(c, static_cast<Asn>(1 + rng.uniform(5000)),
                        DictSource::kIrr);
    }
  }
  const std::size_t n_ixp = rng.uniform(40);
  for (std::size_t i = 0; i < n_ixp; ++i) {
    dict.add_ixp(random_community(rng),
                 static_cast<std::uint32_t>(rng.uniform(64)),
                 DictSource::kWebPage);
  }
  const std::size_t n_large = rng.uniform(60);
  for (std::size_t i = 0; i < n_large; ++i) {
    dict.add_large(random_large(rng), static_cast<Asn>(1 + rng.uniform(5000)),
                   DictSource::kIrr);
  }
  return dict;
}

template <typename T, typename U>
void expect_span_equals_vector(std::span<const T> span,
                               const std::vector<U>& vec) {
  ASSERT_EQ(span.size(), vec.size());
  for (std::size_t i = 0; i < vec.size(); ++i) EXPECT_EQ(span[i], vec[i]);
}

TEST(CompiledDictionary, FuzzedEquivalenceWithSource) {
  util::Rng rng(20170817);
  for (int trial = 0; trial < 25; ++trial) {
    BlackholeDictionary dict = random_dictionary(rng);
    CompiledDictionary compiled(dict);

    ASSERT_EQ(compiled.num_classic(), dict.entries().size());
    ASSERT_EQ(compiled.num_large(), dict.large_entries().size());

    // Every source entry resolves to an identical compiled view.
    for (const auto& [c, entry] : dict.entries()) {
      ASSERT_TRUE(compiled.maybe_blackhole(c)) << c.to_string();
      const EntryView* view = compiled.lookup(c);
      ASSERT_NE(view, nullptr) << c.to_string();
      expect_span_equals_vector(view->provider_asns, entry.provider_asns);
      expect_span_equals_vector(view->ixp_ids, entry.ixp_ids);
      EXPECT_EQ(view->ambiguous(), entry.provider_asns.size() > 1);
    }
    for (const auto& [c, provider] : dict.large_entries()) {
      ASSERT_TRUE(compiled.maybe_blackhole(c)) << c.to_string();
      EXPECT_EQ(compiled.lookup_large(c), provider);
    }

    // Random probes: hit or miss, both forms must agree exactly.
    for (int probe = 0; probe < 2000; ++probe) {
      Community c = random_community(rng);
      const DictEntry* expected = dict.lookup(c);
      const EntryView* got = compiled.lookup(c);
      if (expected == nullptr) {
        EXPECT_EQ(got, nullptr) << c.to_string();
      } else {
        ASSERT_NE(got, nullptr) << c.to_string();
        expect_span_equals_vector(got->provider_asns, expected->provider_asns);
        expect_span_equals_vector(got->ixp_ids, expected->ixp_ids);
      }
      LargeCommunity lc = random_large(rng);
      EXPECT_EQ(compiled.lookup_large(lc), dict.lookup_large(lc))
          << lc.to_string();
    }

    // Prefilter: any_blackhole => prefilter (no false negatives, ever).
    for (int probe = 0; probe < 500; ++probe) {
      CommunitySet set;
      std::size_t n = rng.uniform(5);
      for (std::size_t i = 0; i < n; ++i) set.add(random_community(rng));
      if (rng.uniform(4) == 0) set.add(random_large(rng));
      if (dict.any_blackhole(set)) {
        EXPECT_TRUE(compiled.prefilter(set)) << set.to_string();
      }
    }
  }
}

TEST(CompiledDictionary, EmptyDictionary) {
  BlackholeDictionary empty;
  CompiledDictionary compiled(empty);
  EXPECT_EQ(compiled.num_classic(), 0u);
  EXPECT_EQ(compiled.num_large(), 0u);
  EXPECT_EQ(compiled.lookup(Community(65535, 666)), nullptr);
  EXPECT_EQ(compiled.lookup_large(LargeCommunity(1, 666, 0)), std::nullopt);
  EXPECT_FALSE(compiled.maybe_blackhole(Community(65535, 666)));
  CommunitySet set;
  set.add(Community(65535, 666));
  EXPECT_FALSE(compiled.prefilter(set));
}

TEST(CompiledDictionary, PrefilterSharesValueHalf) {
  // The bitset keys on the 16-bit value half alone: 3356:666 in the
  // dictionary makes 9999:666 pass the prefilter (false positive), but
  // the exact lookup still rejects it.
  BlackholeDictionary dict;
  dict.add_provider(Community(3356, 666), 3356, DictSource::kIrr);
  CompiledDictionary compiled(dict);
  EXPECT_TRUE(compiled.maybe_blackhole(Community(9999, 666)));
  EXPECT_EQ(compiled.lookup(Community(9999, 666)), nullptr);
  EXPECT_FALSE(compiled.maybe_blackhole(Community(3356, 667)));
  ASSERT_NE(compiled.lookup(Community(3356, 666)), nullptr);
}

}  // namespace
}  // namespace bgpbh::dictionary
