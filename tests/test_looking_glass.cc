#include "routing/looking_glass.h"

#include <gtest/gtest.h>

namespace bgpbh::routing {
namespace {

LgRoute route(const char* prefix, std::initializer_list<bgp::Asn> path,
              bgp::Community c) {
  LgRoute r;
  r.prefix = *net::Prefix::parse(prefix);
  r.as_path = bgp::AsPath(std::vector<bgp::Asn>(path));
  r.communities.add(c);
  return r;
}

TEST(LookingGlass, PrefixQuery) {
  LookingGlass lg(174, true);
  lg.install(route("130.149.1.1/32", {174, 64500}, bgp::Community(174, 666)));
  auto r = lg.query_prefix(*net::Prefix::parse("130.149.1.1/32"));
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->communities.contains(bgp::Community(174, 666)));
  EXPECT_FALSE(lg.query_prefix(*net::Prefix::parse("8.8.8.0/24")));
}

TEST(LookingGlass, CommunityQueryRequiresCapability) {
  LookingGlass capable(174, true), incapable(3356, false);
  auto r = route("130.149.1.1/32", {174, 64500}, bgp::Community(174, 666));
  capable.install(r);
  incapable.install(r);
  EXPECT_EQ(capable.query_community(bgp::Community(174, 666)).size(), 1u);
  EXPECT_TRUE(incapable.query_community(bgp::Community(174, 666)).empty());
}

TEST(LookingGlass, RevealsCollectorInvisibleBlackholing) {
  // The Cogent/Pirate-Bay scenario (§5.2): a blackholed route visible
  // only inside the provider can still be found via its looking glass.
  LookingGlass lg(174, true);
  lg.install(route("130.149.1.1/32", {174}, bgp::Community(174, 666)));
  auto hits = lg.query_community(bgp::Community(174, 666));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].prefix.to_string(), "130.149.1.1/32");
}

TEST(LookingGlass, RemoveAndFullTable) {
  LookingGlass lg(1, true);
  lg.install(route("20.0.0.0/16", {1, 2}, bgp::Community(1, 100)));
  lg.install(route("20.1.0.0/16", {1, 3}, bgp::Community(1, 100)));
  EXPECT_EQ(lg.full_table().size(), 2u);
  lg.remove(*net::Prefix::parse("20.0.0.0/16"));
  EXPECT_EQ(lg.full_table().size(), 1u);
}

TEST(Directory, AddFindCount) {
  LookingGlassDirectory dir;
  dir.add(174, true);
  dir.add(3356, false);
  dir.add(1299, true);
  EXPECT_EQ(dir.size(), 3u);
  EXPECT_EQ(dir.num_community_capable(), 2u);
  ASSERT_NE(dir.find(174), nullptr);
  EXPECT_EQ(dir.find(9999), nullptr);
  EXPECT_EQ(dir.all_asns().size(), 3u);
}

TEST(Directory, PaperScaleRatio) {
  // The paper: ~150 LGs, 30 of which support the queries we need.
  LookingGlassDirectory dir;
  for (int i = 0; i < 150; ++i) dir.add(1000 + i, i % 5 == 0);
  EXPECT_EQ(dir.size(), 150u);
  EXPECT_EQ(dir.num_community_capable(), 30u);
}

}  // namespace
}  // namespace bgpbh::routing
