#include "topology/generator.h"

#include <gtest/gtest.h>

#include <set>

namespace bgpbh::topology {
namespace {

// The generated graph is expensive enough to share across tests.
const AsGraph& graph() {
  static AsGraph g = generate(GeneratorConfig{});
  return g;
}

TEST(Generator, PopulationCounts) {
  GeneratorConfig cfg;
  EXPECT_EQ(graph().num_ases(),
            cfg.num_tier1 + cfg.num_transit + cfg.num_content +
                cfg.num_enterprise + cfg.num_edu + cfg.num_access_stub);
  EXPECT_EQ(graph().num_ixps(), cfg.num_ixps);
}

TEST(Generator, RelationshipSymmetry) {
  for (const auto& node : graph().nodes()) {
    for (Asn p : node.providers) {
      const AsNode* provider = graph().find(p);
      ASSERT_NE(provider, nullptr);
      EXPECT_NE(std::find(provider->customers.begin(), provider->customers.end(),
                          node.asn),
                provider->customers.end())
          << node.asn << " -> " << p;
    }
    for (Asn peer : node.peers) {
      const AsNode* other = graph().find(peer);
      ASSERT_NE(other, nullptr);
      EXPECT_NE(std::find(other->peers.begin(), other->peers.end(), node.asn),
                other->peers.end());
    }
  }
}

TEST(Generator, Tier1Clique) {
  std::vector<const AsNode*> tier1;
  for (const auto& node : graph().nodes()) {
    if (node.tier == Tier::kTier1) tier1.push_back(&node);
  }
  ASSERT_EQ(tier1.size(), GeneratorConfig{}.num_tier1);
  for (const auto* a : tier1) {
    EXPECT_TRUE(a->providers.empty()) << "tier1 AS" << a->asn << " has providers";
    for (const auto* b : tier1) {
      if (a == b) continue;
      EXPECT_TRUE(std::find(a->peers.begin(), a->peers.end(), b->asn) !=
                  a->peers.end());
    }
  }
}

TEST(Generator, EveryStubHasProvider) {
  for (const auto& node : graph().nodes()) {
    if (node.tier == Tier::kStub) {
      EXPECT_FALSE(node.providers.empty()) << "AS" << node.asn;
    }
  }
}

TEST(Generator, IxpMembershipSymmetry) {
  for (const auto& ixp : graph().ixps()) {
    for (Asn member : ixp.members) {
      const AsNode* node = graph().find(member);
      ASSERT_NE(node, nullptr);
      EXPECT_NE(std::find(node->ixps.begin(), node->ixps.end(), ixp.id),
                node->ixps.end());
    }
  }
}

TEST(Generator, IxpMembershipIsSkewed) {
  // Large IXPs should dwarf the tail (DE-CIX vs small regional IXPs).
  std::size_t largest = 0, smallest = SIZE_MAX;
  for (const auto& ixp : graph().ixps()) {
    largest = std::max(largest, ixp.members.size());
    smallest = std::min(smallest, ixp.members.size());
  }
  EXPECT_GT(largest, 200u);
  EXPECT_LT(smallest, 20u);
}

TEST(Generator, DocumentedProviderPopulations) {
  GeneratorConfig cfg;
  std::map<NetworkType, std::size_t> documented;
  std::size_t undocumented = 0;
  for (const auto& node : graph().nodes()) {
    if (!node.blackhole.offers_blackholing) continue;
    bool doc = node.blackhole.documented_in_irr || node.blackhole.documented_on_web;
    if (doc) {
      documented[node.type] += 1;
    } else {
      undocumented += 1;
    }
  }
  EXPECT_EQ(documented[NetworkType::kTransitAccess], cfg.bh_transit_access);
  EXPECT_EQ(documented[NetworkType::kContent], cfg.bh_content);
  EXPECT_EQ(documented[NetworkType::kEduResearchNfP], cfg.bh_edu);
  EXPECT_EQ(documented[NetworkType::kEnterprise], cfg.bh_enterprise);
  EXPECT_EQ(documented[NetworkType::kUnknown], cfg.bh_unknown);
  EXPECT_EQ(undocumented, cfg.bh_undocumented);
}

TEST(Generator, BlackholingIxpCount) {
  GeneratorConfig cfg;
  std::size_t bh = 0, rfc7999 = 0;
  for (const auto& ixp : graph().ixps()) {
    if (!ixp.offers_blackholing) continue;
    ++bh;
    if (ixp.blackhole_community == bgp::Community::rfc7999_blackhole()) ++rfc7999;
  }
  EXPECT_EQ(bh, cfg.num_blackholing_ixps);
  // 47 of 49 use the RFC 7999 value (§4.1).
  EXPECT_EQ(rfc7999, cfg.num_blackholing_ixps - 2);
}

TEST(Generator, IxpBlackholeIpConvention) {
  for (const auto& ixp : graph().ixps()) {
    ASSERT_TRUE(ixp.blackhole_ip_v4.is_v4());
    // Last octet .66 inside the peering LAN (§4.1).
    EXPECT_EQ(ixp.blackhole_ip_v4.v4().value() & 0xFF, 66u);
    EXPECT_TRUE(ixp.peering_lan.contains(ixp.blackhole_ip_v4));
    // IPv6 blackhole address ends in dead:beef.
    EXPECT_EQ(ixp.blackhole_ip_v6.group(6), 0xdead);
    EXPECT_EQ(ixp.blackhole_ip_v6.group(7), 0xbeef);
  }
}

TEST(Generator, ProvidersHaveCustomers) {
  for (const auto& node : graph().nodes()) {
    if (node.blackhole.offers_blackholing) {
      EXPECT_FALSE(node.customers.empty())
          << "blackholing provider AS" << node.asn << " has no customers";
    }
  }
}

TEST(Generator, V4BlocksDisjoint) {
  std::set<std::uint32_t> blocks;
  for (const auto& node : graph().nodes()) {
    EXPECT_EQ(node.v4_block.len(), 16);
    EXPECT_TRUE(blocks.insert(node.v4_block.addr().v4().value()).second);
  }
}

TEST(Generator, OriginatedPrefixesWithinBlock) {
  for (const auto& node : graph().nodes()) {
    ASSERT_FALSE(node.originated_v4.empty());
    for (const auto& p : node.originated_v4) {
      EXPECT_TRUE(node.v4_block.covers(p))
          << "AS" << node.asn << " " << p.to_string();
    }
  }
}

TEST(Generator, OriginLookupAgreesWithOwnership) {
  for (const auto& node : graph().nodes()) {
    auto origin = graph().origin_of(node.v4_block.addr());
    ASSERT_TRUE(origin);
    EXPECT_EQ(*origin, node.asn);
  }
}

TEST(Generator, Deterministic) {
  GeneratorConfig cfg;
  AsGraph a = generate(cfg);
  AsGraph b = generate(cfg);
  ASSERT_EQ(a.num_ases(), b.num_ases());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].asn, b.nodes()[i].asn);
    EXPECT_EQ(a.nodes()[i].providers, b.nodes()[i].providers);
    EXPECT_EQ(a.nodes()[i].originated_v4, b.nodes()[i].originated_v4);
  }
}

TEST(Generator, SeedChangesTopology) {
  GeneratorConfig cfg;
  cfg.seed = 4242;
  AsGraph other = generate(cfg);
  bool any_difference = false;
  for (std::size_t i = 0; i < other.nodes().size(); ++i) {
    if (other.nodes()[i].providers != graph().nodes()[i].providers) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, LargeCommunityAdoption) {
  // Exactly one provider uses an RFC 8092 large community (§4.1).
  std::size_t large = 0;
  for (const auto& node : graph().nodes()) {
    if (node.blackhole.large_community) ++large;
  }
  EXPECT_EQ(large, 1u);
}

TEST(Generator, SharedZeroCommunityAmongUnknowns) {
  std::size_t sharing = 0;
  for (const auto& node : graph().nodes()) {
    if (node.blackhole.offers_blackholing &&
        !node.blackhole.communities.empty() &&
        node.blackhole.communities.front() == bgp::Community(0, 666)) {
      ++sharing;
    }
  }
  EXPECT_GE(sharing, 2u);  // multiple networks share 0:666 (§4.1)
}

TEST(AsGraph, RelationshipQuery) {
  const AsNode* stub = nullptr;
  for (const auto& node : graph().nodes()) {
    if (node.tier == Tier::kStub && !node.providers.empty()) {
      stub = &node;
      break;
    }
  }
  ASSERT_NE(stub, nullptr);
  EXPECT_EQ(graph().relationship(stub->asn, stub->providers[0]),
            AsGraph::Rel::kProvider);
  EXPECT_EQ(graph().relationship(stub->providers[0], stub->asn),
            AsGraph::Rel::kCustomer);
  EXPECT_EQ(graph().relationship(stub->asn, 999999), AsGraph::Rel::kNone);
}

TEST(AsGraph, IxpLookups) {
  const Ixp& ixp = graph().ixps().front();
  EXPECT_EQ(graph().ixp_by_route_server(ixp.route_server_asn)->id, ixp.id);
  EXPECT_EQ(graph().ixp_by_lan_ip(ixp.blackhole_ip_v4)->id, ixp.id);
  EXPECT_EQ(graph().ixp_by_lan_ip(*net::IpAddr::parse("8.8.8.8")), nullptr);
}

TEST(NetworkType, ToString) {
  EXPECT_EQ(to_string(NetworkType::kTransitAccess), "Transit/Access");
  EXPECT_EQ(to_string(NetworkType::kIxp), "IXP");
  EXPECT_EQ(to_string(NetworkType::kEduResearchNfP), "Educ./Res./NfP");
}

}  // namespace
}  // namespace bgpbh::topology
