#include "dictionary/inferred.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpbh::dictionary {
namespace {

struct Env {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::Registry registry = topology::Registry::build(graph, 0.72, 0.95, 42);
  Corpus corpus = generate_corpus(graph, 42);
  BlackholeDictionary dict = build_documented_dictionary(corpus, registry);
};

Env& env() {
  static Env e;
  return e;
}

bgp::ObservedUpdate make_update(const char* prefix,
                                std::initializer_list<bgp::Community> comms) {
  bgp::ObservedUpdate u;
  u.peer_ip = net::IpAddr(net::Ipv4Addr(0xC0000201));
  u.peer_asn = 100;
  u.body.announced.push_back(*net::Prefix::parse(prefix));
  u.body.as_path = bgp::AsPath::of({100, 200});
  for (auto c : comms) u.body.communities.add(c);
  return u;
}

// An undocumented provider and its community, plus one documented
// blackhole community to co-occur with.
struct PlantedComms {
  bgp::Community undocumented;
  Asn undocumented_asn;
  bgp::Community documented;
};

PlantedComms setup() {
  PlantedComms s{};
  for (const auto& node : env().graph.nodes()) {
    const auto& bp = node.blackhole;
    if (bp.offers_blackholing && !bp.documented_in_irr && !bp.documented_on_web &&
        bp.communities.front().asn() == (node.asn & 0xFFFF) &&
        !env().dict.is_blackhole(bp.communities.front())) {
      s.undocumented = bp.communities.front();
      s.undocumented_asn = node.asn;
      break;
    }
  }
  for (const auto& [c, entry] : env().dict.entries()) {
    if (!entry.provider_asns.empty()) {
      s.documented = c;
      break;
    }
  }
  return s;
}

TEST(Usage, TracksPrefixLengths) {
  CommunityUsage usage;
  bgp::Community c(100, 50);
  usage.observe(make_update("20.0.0.0/16", {c}), env().dict);
  usage.observe(make_update("20.1.0.0/24", {c}), env().dict);
  usage.observe(make_update("20.1.2.3/32", {c}), env().dict);
  const auto& stats = usage.stats().at(c);
  EXPECT_EQ(stats.total, 3u);
  EXPECT_DOUBLE_EQ(stats.fraction_more_specific_than(24), 1.0 / 3.0);
  auto profile = stats.length_profile();
  EXPECT_EQ(profile.size(), 3u);
}

TEST(Usage, CooccurrenceOnlyWithDocumented) {
  CommunityUsage usage;
  PlantedComms s = setup();
  ASSERT_NE(s.undocumented_asn, 0u);
  usage.observe(make_update("20.1.2.3/32", {s.undocumented, s.documented}),
                env().dict);
  usage.observe(make_update("20.1.2.4/32", {s.undocumented}), env().dict);
  EXPECT_EQ(usage.stats().at(s.undocumented).cooccur_with_documented, 1u);
  // The documented community itself never counts as co-occurring.
  EXPECT_EQ(usage.stats().at(s.documented).cooccur_with_documented, 0u);
}

TEST(Usage, WithdrawalOnlyUpdatesIgnored) {
  CommunityUsage usage;
  bgp::ObservedUpdate u;
  u.body.withdrawn.push_back(*net::Prefix::parse("20.0.0.0/16"));
  u.body.communities.add(bgp::Community(1, 2));
  usage.observe(u, env().dict);
  EXPECT_TRUE(usage.stats().empty());
}

TEST(Inference, FindsPlantedUndocumentedCommunity) {
  CommunityUsage usage;
  PlantedComms s = setup();
  ASSERT_NE(s.undocumented_asn, 0u);
  // Exclusively-/32 usage with one co-occurrence.
  usage.observe(make_update("20.1.2.3/32", {s.undocumented, s.documented}),
                env().dict);
  for (int i = 0; i < 5; ++i) {
    usage.observe(make_update("20.1.2.5/32", {s.undocumented}), env().dict);
  }
  auto inferred = infer_undocumented(usage, env().dict, env().graph);
  ASSERT_EQ(inferred.size(), 1u);
  EXPECT_EQ(inferred[0].community, s.undocumented);
  EXPECT_EQ(inferred[0].provider_asn, s.undocumented.asn());
  EXPECT_DOUBLE_EQ(inferred[0].more_specific_fraction, 1.0);
}

TEST(Inference, RejectsMixedPrefixLengths) {
  CommunityUsage usage;
  PlantedComms s = setup();
  usage.observe(make_update("20.1.2.3/32", {s.undocumented, s.documented}),
                env().dict);
  for (int i = 0; i < 5; ++i) {
    usage.observe(make_update("20.1.0.0/24", {s.undocumented}), env().dict);
  }
  EXPECT_TRUE(infer_undocumented(usage, env().dict, env().graph).empty());
}

TEST(Inference, RejectsWithoutCooccurrence) {
  CommunityUsage usage;
  PlantedComms s = setup();
  for (int i = 0; i < 6; ++i) {
    usage.observe(make_update("20.1.2.3/32", {s.undocumented}), env().dict);
  }
  EXPECT_TRUE(infer_undocumented(usage, env().dict, env().graph).empty());
}

TEST(Inference, RejectsNonPublicAsn) {
  CommunityUsage usage;
  PlantedComms s = setup();
  bgp::Community nonpublic(0, 667);  // first 16 bits not a public ASN
  usage.observe(make_update("20.1.2.3/32", {nonpublic, s.documented}),
                env().dict);
  for (int i = 0; i < 5; ++i) {
    usage.observe(make_update("20.1.2.4/32", {nonpublic}), env().dict);
  }
  EXPECT_TRUE(infer_undocumented(usage, env().dict, env().graph).empty());
}

TEST(Inference, RejectsBelowMinOccurrences) {
  CommunityUsage usage;
  PlantedComms s = setup();
  usage.observe(make_update("20.1.2.3/32", {s.undocumented, s.documented}),
                env().dict);
  InferenceParams params;
  params.min_occurrences = 10;
  EXPECT_TRUE(infer_undocumented(usage, env().dict, env().graph, params).empty());
}

TEST(Inference, NeverReturnsDocumentedCommunities) {
  CommunityUsage usage;
  PlantedComms s = setup();
  for (int i = 0; i < 10; ++i) {
    usage.observe(make_update("20.1.2.3/32", {s.documented}), env().dict);
  }
  auto inferred = infer_undocumented(usage, env().dict, env().graph);
  for (const auto& ic : inferred) {
    EXPECT_FALSE(env().dict.is_blackhole(ic.community));
  }
}

}  // namespace
}  // namespace bgpbh::dictionary
