// Zero-copy sub-update data plane for the streaming pipeline.
//
// An UPDATE message with K announced/withdrawn prefixes must reach up
// to K different engine shards, but the expensive route attributes
// (AS path, communities) are identical for every one of them.  The
// original data plane materialized a full heap-allocated FeedUpdate —
// including copies of those vectors — per sub-update; at millions of
// updates/sec the pipeline was copy-bound, not compute-bound.
//
// Here each parsed update is stored exactly once, in a pooled
// UpdateBlock, and what moves through the shard queues is a 16-byte
// SubUpdateRef naming (block, prefix index, kind).  Shards read the
// path/communities/next-hop straight out of the shared block through
// core::UpdateView — no materialization anywhere on the data plane.
//
// Lifetime is reference-counted: the router sets refs to the number of
// sub-updates it emits, each shard releases its ref after processing,
// and the last release returns the block to the pool.  Recycled blocks
// keep the capacity of their internal vectors, so in steady state
// routing an update performs zero heap allocations (asserted by
// bench/perf_stream with a counting allocator).
//
// Synchronization: the producer fully writes block->update before the
// SubUpdateRef is published through an SPSC queue (release store on the
// queue index), so consumers always observe a complete block.  Recycle
// safety comes from the acq_rel ref decrement plus the pool mutex both
// sides pass through.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "routing/collectors.h"

namespace bgpbh::stream {

// One parsed update, shared by all of its single-prefix sub-updates.
struct UpdateBlock {
  routing::FeedUpdate update;
  // Which pipeline producer routed this update — shard workers key
  // their per-producer ingest watermarks (checkpoint/replay cuts,
  // src/recovery/) off it.  Stamped by the router before refs publish.
  std::uint32_t producer = 0;
  // Outstanding SubUpdateRefs; the block returns to its pool when the
  // last one is released.
  std::atomic<std::uint32_t> refs{0};
};

// How a SubUpdateRef's prefix_index resolves against its block.
enum class SubKind : std::uint32_t {
  kWithdraw = 0,  // block->update.update.body.withdrawn[prefix_index]
  kAnnounce = 1,  // block->update.update.body.announced[prefix_index]
  // A/B slow path: the block holds a fully materialized single-prefix
  // FeedUpdate (the pre-zero-copy representation); the worker feeds it
  // to the owning engine entry point.
  kOwned = 2,
};

// The queue item of the zero-copy data plane: two words.
struct SubUpdateRef {
  UpdateBlock* block = nullptr;
  std::uint32_t prefix_index = 0;
  SubKind kind = SubKind::kAnnounce;
};
static_assert(sizeof(SubUpdateRef) == 16,
              "SubUpdateRef is the per-sub-update queue traffic; keep it "
              "two machine words");

// Recycling pool of UpdateBlocks.  Thread-safe: producers acquire,
// shard workers recycle.  The pool mutex sits between threads, so the
// hot path amortizes it with batched traffic on both sides: producers
// refill a local block cache via acquire_batch (one lock per ~dozens
// of updates) and workers collect fully-unreferenced blocks and hand
// them back via recycle_batch (one lock per consume batch).  Blocks
// live in a deque (stable addresses) and are never freed until the
// pool dies; the in-flight count is bounded by the caches, staging
// buffers and queue capacities, so the pool stops growing once the
// pipeline reaches its steady-state high-water mark.
class BlockPool {
 public:
  BlockPool() = default;
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  // A block with unspecified (possibly recycled) contents; the caller
  // must overwrite `update` and set `refs` before publishing refs.
  UpdateBlock* acquire();

  // Appends `n` blocks to `out` with a single lock — the producer-side
  // cache refill.
  void acquire_batch(std::vector<UpdateBlock*>& out, std::size_t n);

  // Drop one reference; recycles the block on the last release.
  void release(UpdateBlock* block);

  // Drop one reference WITHOUT touching the pool; true when the block
  // reached zero references and must be handed to recycle_batch.
  // Lets consumers batch the pool lock across many releases.
  static bool unref(UpdateBlock* block) {
    // acq_rel: the last releaser must observe every shard's reads as
    // done; recyclers then synchronize via the pool mutex.
    return block->refs.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  // Return fully-unreferenced blocks (refs == 0) with a single lock.
  void recycle_batch(std::span<UpdateBlock* const> blocks);

  // Blocks ever created (pool high-water mark).
  std::size_t blocks_allocated() const;
  // Acquired and not yet fully released; 0 once a pipeline finished.
  std::size_t in_flight() const;

 private:
  mutable std::mutex mu_;
  std::deque<UpdateBlock> slab_;      // owns every block; never shrinks
  std::vector<UpdateBlock*> free_;    // recycled blocks
};

}  // namespace bgpbh::stream
