#include "stream/pipeline.h"

namespace bgpbh::stream {

StreamPipeline::Producer::Producer(StreamPipeline& owner, std::size_t index,
                                   std::size_t num_shards, BlockPool& blocks,
                                   bool zero_copy, std::size_t batch_size)
    : owner_(&owner),
      router_(num_shards, blocks, zero_copy,
              static_cast<std::uint32_t>(index)),
      batch_size_(batch_size), pending_(num_shards) {
  for (auto& buf : pending_) buf.reserve(batch_size);
}

bool StreamPipeline::Producer::push(const routing::FeedUpdate& update) {
  StreamPipeline& p = *owner_;
  if (p.finished()) return false;  // queues are closed; don't count or drop
  // Workers must be consuming before the bounded queues fill up, or a
  // pre-start push could block forever.  Read-only check first: an
  // unconditional start() would put an atomic RMW on every push,
  // ping-ponging the flag's cache line across producer threads.
  if (!p.started_.load(std::memory_order_acquire)) p.start();
  router_.route(update, [&](std::size_t shard, SubUpdateRef ref) {
    // Recovery replay: drop refs the checkpoint already covers.  One
    // branch on an empty vector when not replaying.
    if (!skip_.empty() && skip_[shard] > 0) {
      --skip_[shard];
      p.blocks_.release(ref.block);
      return;
    }
    auto& buf = pending_[shard];
    buf.push_back(ref);
    if (buf.size() >= batch_size_) submit_shard(shard);
  });
  return true;
}

void StreamPipeline::Producer::flush() {
  for (std::size_t shard = 0; shard < pending_.size(); ++shard) {
    if (!pending_[shard].empty()) submit_shard(shard);
  }
}

void StreamPipeline::Producer::submit_shard(std::size_t shard) {
  StreamPipeline& p = *owner_;
  auto& buf = pending_[shard];
  std::size_t accepted = p.workers_.submit_batch(shard, buf);
  refs_enqueued_.fetch_add(accepted, std::memory_order_relaxed);
  // Shutdown mid-batch: the caller keeps the rejected refs' block
  // references; release them so no block leaks.
  for (std::size_t i = accepted; i < buf.size(); ++i) {
    p.blocks_.release(buf[i].block);
  }
  buf.clear();
}

StreamPipeline::StreamPipeline(const dictionary::BlackholeDictionary& dictionary,
                               const topology::Registry& registry,
                               PipelineConfig config)
    : owned_metrics_(config.metrics
                         ? nullptr
                         : std::make_unique<telemetry::MetricsRegistry>()),
      metrics_(config.metrics ? config.metrics : owned_metrics_.get()),
      store_(config.num_shards == 0 ? 1 : config.num_shards),
      workers_(dictionary, registry, config.engine,
               config.num_shards == 0 ? 1 : config.num_shards,
               config.num_producers == 0 ? 1 : config.num_producers,
               config.queue_capacity, config.drain_batch,
               config.batch_size == 0 ? 1 : config.batch_size,
               /*serialize_producers=*/config.num_producers > 1, blocks_,
               store_, *metrics_) {
  const std::size_t num_producers =
      config.num_producers == 0 ? 1 : config.num_producers;
  const std::size_t batch_size = config.batch_size == 0 ? 1 : config.batch_size;
  producers_.reserve(num_producers);
  for (std::size_t i = 0; i < num_producers; ++i) {
    producers_.push_back(std::unique_ptr<Producer>(
        new Producer(*this, i, workers_.num_shards(), blocks_,
                     config.zero_copy, batch_size)));
  }
  // Live-state sampling: everything below is copied out of counters the
  // data plane already maintains, only when someone snapshots — zero
  // added work per routed sub-update.
  metrics_->describe("stream.queue.depth", "Shard queue occupancy (refs)");
  metrics_->describe("stream.queue.peak",
                     "Shard queue occupancy high-water mark (refs)");
  metrics_->describe("stream.shard.open_events",
                     "Open (unsealed) blackholing events per shard");
  metrics_->describe("stream.shard.processed",
                     "Sub-updates consumed per shard worker");
  metrics_->describe("stream.pool.blocks_allocated",
                     "UpdateBlocks ever allocated by the pool (high-water)");
  metrics_->describe("stream.pool.blocks_in_flight",
                     "UpdateBlocks currently outside the pool");
  metrics_->describe("stream.updates_pushed",
                     "Original updates accepted across all producers");
  metrics_hook_ = metrics_->add_collection_hook([this] {
    const std::size_t shards = workers_.num_shards();
    for (std::size_t i = 0; i < shards; ++i) {
      metrics_->shard_gauge("stream.queue.depth", i)
          .set(static_cast<double>(workers_.queue_depth(i)));
      metrics_->shard_gauge("stream.queue.peak", i)
          .set(static_cast<double>(workers_.queue_peak(i)));
      metrics_->shard_gauge("stream.shard.open_events", i)
          .set(static_cast<double>(workers_.open_events(i)));
      metrics_->shard_counter("stream.shard.processed", i)
          .set_total(workers_.processed(i));
    }
    metrics_->gauge("stream.pool.blocks_allocated")
        .set(static_cast<double>(blocks_.blocks_allocated()));
    metrics_->gauge("stream.pool.blocks_in_flight")
        .set(static_cast<double>(blocks_.in_flight()));
    metrics_->counter("stream.updates_pushed").set_total(updates_pushed());
  });
}

StreamPipeline::~StreamPipeline() {
  // Drop the hook before members die: a session-owned registry can
  // outlive this pipeline, and a late snapshot must not call into it.
  metrics_->remove_collection_hook(metrics_hook_);
  workers_.close_and_join();
}

void StreamPipeline::init_from_table_dump(routing::Platform platform,
                                          const bgp::mrt::TableDump& dump) {
  // Partition entries onto their owning shards; relative order within a
  // shard follows the dump (per-key state only depends on its own
  // entries, so cross-shard order is irrelevant).
  std::vector<bgp::mrt::TableDump> per_shard(workers_.num_shards());
  for (auto& sub : per_shard) {
    sub.time = dump.time;
    sub.collector_name = dump.collector_name;
  }
  for (const auto& entry : dump.entries) {
    std::size_t shard =
        shard_for(entry.peer, entry.prefix, workers_.num_shards());
    per_shard[shard].entries.push_back(entry);
  }
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].entries.empty()) continue;
    workers_.engine(i).init_from_table_dump(platform, per_shard[i]);
  }
}

void StreamPipeline::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  workers_.start();
}

bool StreamPipeline::push(const routing::FeedUpdate& update) {
  return producers_[0]->push(update);
}

void StreamPipeline::flush() { producers_[0]->flush(); }

std::uint64_t StreamPipeline::run(UpdateSource& source) {
  start();
  std::uint64_t consumed = 0;
  while (const routing::FeedUpdate* update = source.next()) {
    if (!push(*update)) break;
    ++consumed;
  }
  return consumed;
}

void StreamPipeline::finish(util::SimTime end_time) {
  if (finished_.exchange(true, std::memory_order_acq_rel)) return;
  // Staged sub-updates must reach the workers before close.  Producer
  // threads have stopped by contract, so their handles are quiescent.
  for (auto& producer : producers_) {
    producer->flush();
    producer->router_.release_cached_blocks();
  }
  workers_.close_and_join();
  for (std::size_t i = 0; i < workers_.num_shards(); ++i) {
    // Workers drain on exit, so everything the engine holds after
    // finish() is exactly the force-closed remainder.
    workers_.engine(i).finish(end_time);
    auto forced = workers_.engine(i).drain_closed();
    open_at_finish_ += forced.size();
    store_.ingest_chunk(i, std::move(forced));
  }
  // Gauge readers (open_event_count(), telemetry hooks) never touch
  // the engines once started; publish the post-force-close state.
  workers_.publish_open_gauges();
  store_.finalize();
}

std::size_t StreamPipeline::open_event_count() const {
  return workers_.open_event_count();
}

std::uint64_t StreamPipeline::updates_pushed() const {
  std::uint64_t total = 0;
  for (const auto& producer : producers_) total += producer->updates_pushed();
  return total;
}

std::uint64_t StreamPipeline::total_refs_enqueued() const {
  std::uint64_t total = 0;
  for (const auto& producer : producers_) total += producer->refs_enqueued();
  return total;
}

std::uint64_t StreamPipeline::total_processed() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < workers_.num_shards(); ++i) {
    total += workers_.processed(i);
  }
  return total;
}

core::EngineStats StreamPipeline::merged_stats() const {
  core::EngineStats merged;
  for (std::size_t i = 0; i < workers_.num_shards(); ++i) {
    merged += workers_.engine(i).stats();
  }
  // Shards count split sub-updates; report original updates instead so
  // the number matches a sequential engine fed the same stream.
  merged.updates_processed = updates_pushed();
  return merged;
}

}  // namespace bgpbh::stream
