#include "stream/pipeline.h"

namespace bgpbh::stream {

StreamPipeline::StreamPipeline(const dictionary::BlackholeDictionary& dictionary,
                               const topology::Registry& registry,
                               PipelineConfig config)
    : pool_(dictionary, registry, config.engine,
            config.num_shards == 0 ? 1 : config.num_shards,
            config.queue_capacity, config.drain_batch,
            config.batch_size == 0 ? 1 : config.batch_size, store_),
      router_(config.num_shards == 0 ? 1 : config.num_shards),
      batch_size_(config.batch_size == 0 ? 1 : config.batch_size),
      pending_(pool_.num_shards()) {
  for (auto& buf : pending_) buf.reserve(batch_size_);
}

StreamPipeline::~StreamPipeline() { pool_.close_and_join(); }

void StreamPipeline::init_from_table_dump(routing::Platform platform,
                                          const bgp::mrt::TableDump& dump) {
  // Partition entries onto their owning shards; relative order within a
  // shard follows the dump (per-key state only depends on its own
  // entries, so cross-shard order is irrelevant).
  std::vector<bgp::mrt::TableDump> per_shard(pool_.num_shards());
  for (auto& sub : per_shard) {
    sub.time = dump.time;
    sub.collector_name = dump.collector_name;
  }
  for (const auto& entry : dump.entries) {
    std::size_t shard = shard_for(entry.peer, entry.prefix, pool_.num_shards());
    per_shard[shard].entries.push_back(entry);
  }
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].entries.empty()) continue;
    pool_.engine(i).init_from_table_dump(platform, per_shard[i]);
  }
}

void StreamPipeline::start() {
  if (started_) return;
  started_ = true;
  pool_.start();
}

bool StreamPipeline::push(const routing::FeedUpdate& update) {
  if (finished_) return false;  // queues are closed; don't count or drop
  // Workers must be consuming before the bounded queues fill up, or a
  // pre-start push could block forever.
  start();
  router_.route(update, [this](std::size_t shard, routing::FeedUpdate sub) {
    auto& buf = pending_[shard];
    buf.push_back(std::move(sub));
    if (buf.size() >= batch_size_) {
      pool_.submit_batch(shard, buf);
      buf.clear();
    }
  });
  return true;
}

void StreamPipeline::flush() {
  for (std::size_t shard = 0; shard < pending_.size(); ++shard) {
    auto& buf = pending_[shard];
    if (buf.empty()) continue;
    pool_.submit_batch(shard, buf);
    buf.clear();
  }
}

std::uint64_t StreamPipeline::run(UpdateSource& source) {
  start();
  std::uint64_t consumed = 0;
  while (auto update = source.next()) {
    if (!push(*update)) break;
    ++consumed;
  }
  return consumed;
}

void StreamPipeline::finish(util::SimTime end_time) {
  if (finished_) return;
  flush();  // staged sub-updates must reach the workers before close
  finished_ = true;
  pool_.close_and_join();
  for (std::size_t i = 0; i < pool_.num_shards(); ++i) {
    // Workers drain on exit, so everything the engine holds after
    // finish() is exactly the force-closed remainder.
    pool_.engine(i).finish(end_time);
    auto forced = pool_.engine(i).drain_closed();
    open_at_finish_ += forced.size();
    store_.ingest(std::move(forced));
  }
  store_.finalize();
}

std::size_t StreamPipeline::open_event_count() const {
  return pool_.open_event_count();
}

core::EngineStats StreamPipeline::merged_stats() const {
  core::EngineStats merged;
  for (std::size_t i = 0; i < pool_.num_shards(); ++i) {
    merged += pool_.engine(i).stats();
  }
  // Shards count split sub-updates; report original updates instead so
  // the number matches a sequential engine fed the same stream.
  merged.updates_processed = router_.updates_routed();
  return merged;
}

}  // namespace bgpbh::stream
