// Update sources for the streaming pipeline: where live FeedUpdates
// come from before they hit the shard router.
//
// Three implementations cover the deployment modes of §4.2 continuous
// monitoring:
//   * VectorSource     — replays an in-memory batch (tests, benches,
//                        Study::replay_updates()).
//   * MrtFileSource    — replays a collector archive file of BGP4MP
//                        records, tagged with the platform the archive
//                        came from (the RIS/RouteViews archive case).
//   * FleetSource      — adapter over routing::CollectorFleet: walks
//                        blackholing episodes, propagates each through
//                        the AS topology and yields the updates every
//                        collector platform records, episode by episode
//                        (the live simulation case).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "routing/collectors.h"
#include "routing/propagation.h"
#include "workload/scenario.h"

namespace bgpbh::stream {

// Why a source returned nullptr from next().  Plain archive/replay
// sources only ever end; the fault/recovery wrappers in src/fault/
// (FaultySource, ReconnectingSource) use the other states to
// distinguish "collector dropped, try again" from "gave up".
enum class SourceStatus : int {
  kActive = 0,        // mid-stream (next() has not returned nullptr)
  kEnd = 1,           // stream exhausted normally
  kDisconnected = 2,  // collector outage; next() may yield again later
  kFailed = 3,        // permanent failure (reconnect attempts exhausted)
};

const char* to_string(SourceStatus status);

// Pull interface: next() returns updates in feed order until nullptr.
// Zero-copy contract: the returned update is BORROWED from the source
// — valid until the next next() call (or source destruction), never
// owned by the caller.  The pipeline routes straight out of it into a
// pooled UpdateBlock, so a replayed update is copied exactly once end
// to end.
class UpdateSource {
 public:
  virtual ~UpdateSource() = default;
  virtual const routing::FeedUpdate* next() = 0;
  // Meaningful after next() returned nullptr; plain sources are simply
  // done, so the default says so.
  virtual SourceStatus status() const { return SourceStatus::kEnd; }
};

class VectorSource : public UpdateSource {
 public:
  explicit VectorSource(std::vector<routing::FeedUpdate> updates)
      : updates_(std::move(updates)) {}

  const routing::FeedUpdate* next() override;
  std::size_t remaining() const { return updates_.size() - pos_; }

 private:
  std::vector<routing::FeedUpdate> updates_;
  std::size_t pos_ = 0;
};

// Replays the BGP4MP update records of one MRT archive, time-sorted,
// each stamped with the platform the archive belongs to.  The whole
// archive is decoded up front (MRT framing is not resumable mid-read),
// then streamed out one update at a time.
class MrtFileSource : public UpdateSource {
 public:
  // On failure both return nullopt, store a human-readable reason in
  // `*error` (when non-null), and emit a util::Log warn line — a
  // missing archive and a corrupt one need different operator action,
  // so neither is a silent nullopt.
  static std::optional<MrtFileSource> open(const std::string& path,
                                           routing::Platform platform,
                                           std::string* error = nullptr);
  static std::optional<MrtFileSource> from_buffer(
      std::span<const std::uint8_t> data, routing::Platform platform,
      std::string* error = nullptr);

  const routing::FeedUpdate* next() override;
  std::size_t total_updates() const { return updates_.size(); }

 private:
  MrtFileSource() = default;
  routing::Platform platform_ = routing::Platform::kRis;
  std::vector<bgp::ObservedUpdate> updates_;
  std::size_t pos_ = 0;
  routing::FeedUpdate current_;  // backs the borrowed next() result
};

// Adapter over the collector fleet: yields, lazily per episode, the
// updates all platforms record for a sequence of blackholing episodes.
// Announcement and withdrawal observations of one ON-period are
// buffered together, so the per-key ordering the engine relies on is
// respected.  Propagation results are computed on demand against the
// caller's PropagationEngine (shared route-tree cache).
class FleetSource : public UpdateSource {
 public:
  FleetSource(const routing::CollectorFleet& fleet,
              routing::PropagationEngine& propagation,
              std::vector<workload::Episode> episodes,
              util::SimTime window_end);

  const routing::FeedUpdate* next() override;
  std::size_t episodes_consumed() const { return episode_pos_; }

 private:
  void refill();

  const routing::CollectorFleet& fleet_;
  routing::PropagationEngine& propagation_;
  std::vector<workload::Episode> episodes_;
  util::SimTime window_end_;
  std::size_t episode_pos_ = 0;
  std::deque<routing::FeedUpdate> buffer_;
  routing::FeedUpdate current_;  // backs the borrowed next() result
};

}  // namespace bgpbh::stream
