#include "stream/event_store.h"

#include <algorithm>

namespace bgpbh::stream {

void EventStore::ingest(std::vector<core::PeerEvent> events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : events) {
    counters_.total_events += 1;
    counters_.per_provider[e.provider] += 1;
    counters_.per_platform[e.platform] += 1;
    if (!has_any_ || e.start < counters_.first_start) {
      counters_.first_start = e.start;
    }
    if (!has_any_ || e.end > counters_.last_end) {
      counters_.last_end = e.end;
    }
    has_any_ = true;
  }
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
}

void EventStore::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  core::canonical_sort(events_);
  finalized_ = true;
}

bool EventStore::finalized() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finalized_;
}

std::size_t EventStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

EventStore::Snapshot EventStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<core::PeerEvent> EventStore::events_in(util::SimTime t0,
                                                   util::SimTime t1) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<core::PeerEvent> out;
  for (const auto& e : events_) {
    if (e.end >= t0 && e.start < t1) out.push_back(e);
  }
  return out;
}

std::size_t EventStore::count_in(util::SimTime t0, util::SimTime t1) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(), [&](const auto& e) {
        return e.end >= t0 && e.start < t1;
      }));
}

}  // namespace bgpbh::stream
