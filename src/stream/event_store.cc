#include "stream/event_store.h"

#include <algorithm>
#include <cassert>

namespace bgpbh::stream {

EventStore::EventStore(std::size_t lanes) {
  if (lanes == 0) lanes = 1;
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

void EventStore::fold_event(Snapshot& into, bool& into_has_any,
                            const core::PeerEvent& event) {
  into.total_events += 1;
  into.per_provider[event.provider] += 1;
  into.per_platform[event.platform] += 1;
  if (!into_has_any || event.start < into.first_start) {
    into.first_start = event.start;
  }
  if (!into_has_any || event.end > into.last_end) {
    into.last_end = event.end;
  }
  into_has_any = true;
}

void EventStore::count_events(Lane& lane,
                              const std::vector<core::PeerEvent>& events) {
  for (const auto& e : events) {
    fold_event(lane.counters, lane.has_any, e);
  }
  lane.event_count += events.size();
}

void EventStore::fold(Snapshot& into, bool& into_has_any, const Snapshot& from,
                      bool from_has_any) {
  if (!from_has_any) return;
  into.total_events += from.total_events;
  for (const auto& [provider, n] : from.per_provider) {
    into.per_provider[provider] += n;
  }
  for (const auto& [platform, n] : from.per_platform) {
    into.per_platform[platform] += n;
  }
  if (!into_has_any || from.first_start < into.first_start) {
    into.first_start = from.first_start;
  }
  if (!into_has_any || from.last_end > into.last_end) {
    into.last_end = from.last_end;
  }
  into_has_any = true;
}

void EventStore::set_chunk_listener(ChunkListener listener) {
  assert(!ingest_started_.load(std::memory_order_relaxed) &&
         "set_chunk_listener() after the first ingest_chunk(): the slot is "
         "read unsynchronized on the ingest path and already-handed-over "
         "chunks would be missed — install listeners before any ingester "
         "runs");
  chunk_listener_ = std::move(listener);
}

void EventStore::set_spill_listener(ChunkListener listener) {
  assert(!ingest_started_.load(std::memory_order_relaxed) &&
         "set_spill_listener() after the first ingest_chunk(): install the "
         "spill hook before any ingester runs");
  spill_listener_ = std::move(listener);
}

void EventStore::ingest_chunk(std::size_t lane_index,
                              std::vector<core::PeerEvent>&& chunk) {
  if (chunk.empty()) return;
#ifndef NDEBUG
  ingest_started_.store(true, std::memory_order_relaxed);
#endif
  lane_index %= lanes_.size();
  // The listeners' copies are taken up front and delivered only after
  // the chunk is counted into its lane, so a snapshot triggered by the
  // delivery can never report fewer events than the listener has been
  // handed.  Delivery stays outside the lane lock: a listener parked
  // on a full dispatch/spill queue (backpressure) must not hold up
  // concurrent snapshot readers.
  std::vector<core::PeerEvent> observed;
  if (chunk_listener_) observed = chunk;
  std::vector<core::PeerEvent> spilled;
  if (spill_listener_) spilled = chunk;
  Lane& lane = *lanes_[lane_index];
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    count_events(lane, chunk);
    lane.chunks.push_back(std::move(chunk));
  }
  if (spill_listener_) spill_listener_(lane_index, std::move(spilled));
  if (chunk_listener_) chunk_listener_(lane_index, std::move(observed));
}

void EventStore::ingest(std::vector<core::PeerEvent> events) {
  ingest_chunk(0, std::move(events));
}

void EventStore::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& lane_ptr : lanes_) {
    Lane& lane = *lane_ptr;
    std::lock_guard<std::mutex> lane_lock(lane.mu);
    for (auto& chunk : lane.chunks) {
      events_.insert(events_.end(), std::make_move_iterator(chunk.begin()),
                     std::make_move_iterator(chunk.end()));
    }
    lane.chunks.clear();
    lane.event_count = 0;
    fold(merged_counters_, merged_has_any_, lane.counters, lane.has_any);
    lane.counters = Snapshot{};
    lane.has_any = false;
  }
  core::canonical_sort(events_);
  finalized_ = true;
}

bool EventStore::finalized() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finalized_;
}

// Readers scan the merged vector (under mu_) and then each lane (under
// its own mutex) without holding one big lock, so a concurrent
// finalize() — which relocates events from the lanes into the merged
// vector — could slip between the observation points and make a scan
// miss whatever already moved.  finalize() holds mu_ for its entire
// duration and is one-shot, so re-reading finalized() after the scan
// detects exactly that interleaving: if the flag didn't change, no
// relocation overlapped the scan.  At most one retry ever happens.
template <typename Scan>
auto EventStore::consistent_scan(Scan&& scan) const {
  for (;;) {
    const bool was_finalized = finalized();
    auto result = scan();
    if (was_finalized || !finalized()) return result;
  }
}

std::size_t EventStore::size() const {
  return consistent_scan([&] {
    std::size_t total;
    {
      std::lock_guard<std::mutex> lock(mu_);
      total = events_.size();
    }
    for (const auto& lane : lanes_) {
      std::lock_guard<std::mutex> lane_lock(lane->mu);
      total += lane->event_count;
    }
    return total;
  });
}

EventStore::Snapshot EventStore::snapshot() const {
  return consistent_scan([&] {
    Snapshot snap;
    bool has_any = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snap = merged_counters_;
      has_any = merged_has_any_;
    }
    for (const auto& lane : lanes_) {
      std::lock_guard<std::mutex> lane_lock(lane->mu);
      fold(snap, has_any, lane->counters, lane->has_any);
    }
    return snap;
  });
}

std::vector<core::PeerEvent> EventStore::query(
    const std::function<bool(const core::PeerEvent&)>& pred) const {
  return consistent_scan([&] {
    std::vector<core::PeerEvent> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& e : events_) {
        if (pred(e)) out.push_back(e);
      }
    }
    for (const auto& lane : lanes_) {
      std::lock_guard<std::mutex> lane_lock(lane->mu);
      for (const auto& chunk : lane->chunks) {
        for (const auto& e : chunk) {
          if (pred(e)) out.push_back(e);
        }
      }
    }
    return out;
  });
}

std::size_t EventStore::count(
    const std::function<bool(const core::PeerEvent&)>& pred) const {
  return consistent_scan([&] {
    std::size_t n = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      n += static_cast<std::size_t>(
          std::count_if(events_.begin(), events_.end(), pred));
    }
    for (const auto& lane : lanes_) {
      std::lock_guard<std::mutex> lane_lock(lane->mu);
      for (const auto& chunk : lane->chunks) {
        n += static_cast<std::size_t>(
            std::count_if(chunk.begin(), chunk.end(), pred));
      }
    }
    return n;
  });
}

std::vector<core::PeerEvent> EventStore::events_in(util::SimTime t0,
                                                   util::SimTime t1) const {
  return query([&](const core::PeerEvent& e) {
    return core::overlaps_window(e.start, e.end, t0, t1);
  });
}

std::size_t EventStore::count_in(util::SimTime t0, util::SimTime t1) const {
  return count([&](const core::PeerEvent& e) {
    return core::overlaps_window(e.start, e.end, t0, t1);
  });
}

const std::vector<core::PeerEvent>& EventStore::events() const {
  assert(finalized() &&
         "EventStore::events() before finalize(): the merged vector is empty "
         "while events sit in per-shard lanes — query()/events_in() is the "
         "live-safe path");
  return events_;
}

}  // namespace bgpbh::stream
