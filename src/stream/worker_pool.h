// Worker pool: N engine shards, each a thread consuming 16-byte
// SubUpdateRefs from its own bounded SPSC queue and running a private
// core::InferenceEngine over the (peer, prefix) keys it owns.
//
// The zero-copy data plane: each ref names a shared pooled UpdateBlock
// plus one prefix; the worker builds a borrowed core::UpdateView over
// the block (no materialization) and releases the block's reference
// after processing.  Refs move through the queues in batches
// (pop_batch/push_batch: one index publish and at most one wake per
// chunk instead of per element), bounded by `batch_size`.
//
// Multi-producer (MPMC) stage: with `serialize_producers`, several
// producer threads may submit concurrently — submission serializes on
// a per-shard mutex held once per sealed batch, so producer contention
// is amortized by batch_size, and the SPSC queue invariants still hold
// (the mutex orders the producer-side index accesses).
//
// Workers seal their engine's closed events every `drain_batch`
// processed sub-updates (and once more on exit) and hand the chunk to
// the shard's own EventStore lane — no shared store mutex on the hot
// path — and publish a per-shard open-event gauge after every batch
// for live snapshots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "dictionary/compiled.h"
#include "stream/event_store.h"
#include "stream/spsc_queue.h"
#include "stream/update_block.h"
#include "telemetry/metrics.h"

namespace bgpbh::stream {

// One shard's contribution to a checkpoint cut (src/recovery/): the
// engine's open (peer, prefix) states plus per-producer ingest
// watermarks — how many sub-update refs from each producer this shard
// has processed since the stream began.  Routing is deterministic, so
// on recovery a producer re-feeding the same source drops exactly the
// first watermarks[p] refs destined to each shard.
struct ShardCapture {
  std::vector<core::OpenEventState> open_state;
  std::vector<std::uint64_t> watermarks;
};

class WorkerPool {
 public:
  // `metrics` wires the pool's telemetry: per-shard batch-processing
  // and drain latency histograms (stream.worker.batch_ns /
  // stream.worker.drain_ns, recorded once per consume batch — two
  // clock reads amortized over batch_size sub-updates), per-shard
  // queue stall/wake counters bound into the SPSC queues, and the
  // trace ring for slow-batch spans.  Must outlive the pool.
  WorkerPool(const dictionary::BlackholeDictionary& dictionary,
             const topology::Registry& registry,
             core::EngineConfig engine_config, std::size_t num_shards,
             std::size_t num_producers, std::size_t queue_capacity,
             std::size_t drain_batch, std::size_t batch_size,
             bool serialize_producers, BlockPool& blocks, EventStore& store,
             telemetry::MetricsRegistry& metrics);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t num_shards() const { return shards_.size(); }

  // The shard's private engine.  Before start() and after
  // close_and_join() the caller may use it freely (table-dump init,
  // finish, stats); while workers run, only the owning worker may.
  core::InferenceEngine& engine(std::size_t shard);
  const core::InferenceEngine& engine(std::size_t shard) const;

  // Idempotent and safe to race from multiple producer threads.
  void start();
  bool started() const { return started_.load(std::memory_order_acquire); }

  // Blocking batch enqueue.  Returns the number accepted —
  // refs.size(), or fewer iff the pool was shut down mid-batch; block
  // references of rejected refs stay with the caller.
  std::size_t submit_batch(std::size_t shard, std::span<SubUpdateRef> refs);

  // Close all queues, wait for every worker to drain and exit.
  void close_and_join();

  // Re-publish every shard's open-event gauge from its engine.  Only
  // legal while no worker can touch the engines (before start() or
  // after close_and_join()); the pipeline calls it after force-closing
  // the remainder in finish() so concurrent gauge readers see the
  // final count without ever touching engine state.
  void publish_open_gauges();

  // Live gauge: open events summed over shards (relaxed reads of the
  // per-shard gauges workers publish after each batch).
  std::size_t open_event_count() const;

  // Sub-updates consumed by all workers so far.
  std::uint64_t processed_count() const;

  // Per-shard samples for telemetry collection hooks (all relaxed
  // reads of values the worker/queue already publish — safe any time).
  std::size_t queue_depth(std::size_t shard) const;
  std::size_t queue_peak(std::size_t shard) const;
  std::size_t open_events(std::size_t shard) const;
  std::uint64_t processed(std::size_t shard) const;

  // Monotone liveness tick: bumps once per worker loop iteration (data
  // batch or idle poll), so a stuck worker is one whose heartbeat stops
  // while its queue depth stays positive (recovery::Watchdog).
  std::uint64_t heartbeat(std::size_t shard) const;

  // Checkpoint rendezvous (src/recovery/).  Quiesces every worker at a
  // batch boundary: each worker force-drains its closed events into
  // the store (so every pre-cut chunk is downstream of the cut), dumps
  // its open engine state + watermarks into its capture slot, and
  // parks.  With all workers held — no in-flight chunks, none can be
  // submitted — `while_quiesced` runs (the coordinator enqueues its
  // spill barrier / dispatcher control item there; it must only
  // enqueue, never wait on downstream threads).  Workers then resume.
  // Fills `out` with one ShardCapture per shard.  Before start() this
  // reads the engines directly (bootstrap checkpoint); returns false
  // if the pool is shut down (or shuts down mid-capture).
  bool capture(const std::function<void()>& while_quiesced,
               std::vector<ShardCapture>& out);

  // Seed a shard's per-producer watermarks before start() — recovery
  // restores the absolute counts from the checkpoint so the next
  // checkpoint's watermarks remain absolute positions in each
  // producer's deterministic sub-update sequence.
  void seed_watermarks(std::size_t shard,
                       std::vector<std::uint64_t> watermarks);

 private:
  struct Shard {
    std::unique_ptr<core::InferenceEngine> engine;
    std::unique_ptr<SpscQueue<SubUpdateRef>> queue;
    // Taken per sealed batch when several producers feed this shard.
    std::mutex producer_mu;
    std::thread thread;
    std::size_t index = 0;
    std::atomic<std::size_t> open_gauge{0};
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> heartbeat{0};
    // Per-producer sub-update counts.  Plain (non-atomic): written only
    // by the owning worker between rendezvous points; read by the
    // capture coordinator only via the worker's own copy into its
    // capture slot (made under rendezvous_mu_), and directly only
    // before start().
    std::vector<std::uint64_t> watermarks;
    // Telemetry (borrowed from the registry; wiring-time only).
    telemetry::LatencyHistogram* batch_hist = nullptr;
    telemetry::LatencyHistogram* drain_hist = nullptr;
    telemetry::LatencyHistogram* detect_hist = nullptr;
  };

  void worker_loop(Shard& shard);
  void capture_rendezvous(Shard& shard);
  // Drain the shard engine's closed events into the store, recording
  // e2e.detect_latency_ns (ingest stamp -> engine close) for every
  // event that carries both stamps.
  void drain_into_store(Shard& shard);

  // One compiled dictionary shared by every shard engine (it is
  // immutable; per-shard copies would just multiply the pools).
  dictionary::CompiledDictionary compiled_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t num_producers_;
  std::size_t drain_batch_;
  std::size_t batch_size_;
  bool serialize_producers_;
  BlockPool& blocks_;
  EventStore& store_;
  telemetry::TraceRing* trace_;
  std::atomic<bool> started_{false};
  std::atomic<bool> joined_{false};      // shutdown initiated

  // Checkpoint rendezvous state.  capture_requested_ is the cheap flag
  // workers poll at batch boundaries; everything else is guarded by
  // rendezvous_mu_.  capture_serial_mu_ serializes whole captures.
  std::mutex capture_serial_mu_;
  std::mutex rendezvous_mu_;
  std::condition_variable rendezvous_cv_;
  std::vector<ShardCapture> capture_slots_;
  std::size_t arrived_ = 0;
  bool capture_active_ = false;
  bool released_ = false;
  bool shutdown_ = false;
  std::atomic<bool> capture_requested_{false};
};

}  // namespace bgpbh::stream
