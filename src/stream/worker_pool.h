// Worker pool: N engine shards, each a thread consuming single-prefix
// sub-updates from its own bounded SPSC queue and running a private
// core::InferenceEngine over the (peer, prefix) keys it owns.
//
// Updates move through the queues in batches (pop_batch/push_batch:
// one index publish and at most one wake per chunk instead of per
// element), bounded by `batch_size`.  Workers drain their engine's
// closed events into the shared EventStore every `drain_batch`
// processed sub-updates (and once more on exit), so no shard buffer
// grows with the lifetime of the stream, and publish a per-shard
// open-event gauge after every batch for live snapshots.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "dictionary/compiled.h"
#include "routing/collectors.h"
#include "stream/event_store.h"
#include "stream/spsc_queue.h"

namespace bgpbh::stream {

class WorkerPool {
 public:
  WorkerPool(const dictionary::BlackholeDictionary& dictionary,
             const topology::Registry& registry,
             core::EngineConfig engine_config, std::size_t num_shards,
             std::size_t queue_capacity, std::size_t drain_batch,
             std::size_t batch_size, EventStore& store);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t num_shards() const { return shards_.size(); }

  // The shard's private engine.  Before start() and after
  // close_and_join() the caller may use it freely (table-dump init,
  // finish, stats); while workers run, only the owning worker may.
  core::InferenceEngine& engine(std::size_t shard);
  const core::InferenceEngine& engine(std::size_t shard) const;

  void start();
  bool started() const { return started_.load(std::memory_order_acquire); }

  // Blocking enqueue onto the shard's queue (producer thread only).
  // Returns false if the pool was already shut down.
  bool submit(std::size_t shard, routing::FeedUpdate update);

  // Blocking batch enqueue; moves from `updates`.  Returns the number
  // accepted — updates.size(), or fewer iff the pool was shut down
  // mid-batch.
  std::size_t submit_batch(std::size_t shard,
                           std::span<routing::FeedUpdate> updates);

  // Close all queues, wait for every worker to drain and exit.
  void close_and_join();

  // Live gauge: open events summed over shards (relaxed reads of the
  // per-shard gauges workers publish after each update).
  std::size_t open_event_count() const;

  // Sub-updates consumed by all workers so far.
  std::uint64_t processed_count() const;

 private:
  struct Shard {
    std::unique_ptr<core::InferenceEngine> engine;
    std::unique_ptr<SpscQueue<routing::FeedUpdate>> queue;
    std::thread thread;
    std::atomic<std::size_t> open_gauge{0};
    std::atomic<std::uint64_t> processed{0};
  };

  void worker_loop(Shard& shard);

  // One compiled dictionary shared by every shard engine (it is
  // immutable; per-shard copies would just multiply the pools).
  dictionary::CompiledDictionary compiled_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t drain_batch_;
  std::size_t batch_size_;
  EventStore& store_;
  std::atomic<bool> started_{false};
  std::atomic<bool> joined_{false};      // shutdown initiated
  std::atomic<bool> all_joined_{false};  // worker threads actually joined
};

}  // namespace bgpbh::stream
