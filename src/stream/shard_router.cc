#include "stream/shard_router.h"

#include "bgp/rib.h"
#include "net/prefix.h"

namespace bgpbh::stream {

std::size_t shard_for(const bgp::PeerKey& peer, const net::Prefix& prefix,
                      std::size_t num_shards) {
  if (num_shards <= 1) return 0;
  std::size_t h =
      net::hash_combine(bgp::PeerKeyHash{}(peer), net::PrefixHash{}(prefix));
  // Fibonacci-style final mix: the low bits of the combined hash alone
  // correlate with the low bits of the IPv4 host address, which would
  // skew the shard load for dense /32 blackhole ranges.
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return h % num_shards;
}

}  // namespace bgpbh::stream
