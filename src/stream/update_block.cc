#include "stream/update_block.h"

namespace bgpbh::stream {

UpdateBlock* BlockPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    slab_.emplace_back();
    return &slab_.back();
  }
  UpdateBlock* block = free_.back();
  free_.pop_back();
  return block;
}

void BlockPool::acquire_batch(std::vector<UpdateBlock*>& out, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    if (free_.empty()) {
      slab_.emplace_back();
      out.push_back(&slab_.back());
    } else {
      out.push_back(free_.back());
      free_.pop_back();
    }
  }
}

void BlockPool::release(UpdateBlock* block) {
  if (!unref(block)) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(block);
}

void BlockPool::recycle_batch(std::span<UpdateBlock* const> blocks) {
  if (blocks.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.insert(free_.end(), blocks.begin(), blocks.end());
}

std::size_t BlockPool::blocks_allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slab_.size();
}

std::size_t BlockPool::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slab_.size() - free_.size();
}

}  // namespace bgpbh::stream
