// Bounded single-producer/single-consumer queue connecting the shard
// router (producer side of the streaming pipeline) to one engine-shard
// worker.
//
// Design: a fixed ring buffer with atomic head/tail indices.  The
// uncontended transfer path is a plain load/store pair — no lock, no
// notify.  The mutex + condition variables exist only for the
// *blocking* edges: a full queue parks the producer (backpressure:
// updates are never dropped, the source is throttled instead, matching
// how a BGP feed socket would push back) and an empty queue parks the
// consumer.  Each side advertises that it is about to park via a
// waiter flag, so the peer pays for the lock + notify only when
// someone may actually be asleep.  The flag store / index re-check on
// the parking side and the index publish / flag check on the waking
// side are separated by seq_cst fences (Dekker pattern): whichever
// fence comes first in the total order, either the parker sees the
// published index and never sleeps, or the waker sees the flag and
// notifies under the mutex — no lost wakeup.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "telemetry/metrics.h"

namespace bgpbh::stream {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity), buf_(capacity_) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Telemetry binding (src/telemetry/): stall counters tick once per
  // cv wait, wake counters once per claimed notify — all on the park/
  // wake slow paths, so the uncontended transfer path is untouched.
  // Bind before the queue carries traffic; pointers are borrowed.
  struct Instruments {
    telemetry::Counter* producer_stalls = nullptr;
    telemetry::Counter* producer_wakes = nullptr;
    telemetry::Counter* consumer_stalls = nullptr;
    telemetry::Counter* consumer_wakes = nullptr;
  };
  void bind_instruments(const Instruments& instruments) {
    instruments_ = instruments;
  }

  // Blocks while the queue is full; returns false iff the queue was
  // closed (the item is then not enqueued).  Producer thread only.
  bool push(T item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      if (tail - head_.load(std::memory_order_acquire) < capacity_) break;
      std::unique_lock<std::mutex> lock(mu_);
      producer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (closed_.load(std::memory_order_acquire) ||
          tail - head_.load(std::memory_order_acquire) < capacity_) {
        producer_waiting_.store(false, std::memory_order_relaxed);
        if (closed_.load(std::memory_order_acquire)) return false;
        break;
      }
      if (instruments_.producer_stalls) instruments_.producer_stalls->add();
      not_full_.wait(lock);
      producer_waiting_.store(false, std::memory_order_relaxed);
    }
    buf_[tail % capacity_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    std::size_t occupancy = tail + 1 - head_.load(std::memory_order_acquire);
    if (occupancy > peak_size_.load(std::memory_order_relaxed)) {
      peak_size_.store(occupancy, std::memory_order_relaxed);
    }
    wake(consumer_waiting_, not_empty_, instruments_.consumer_wakes);
    return true;
  }

  // Batch push: moves items[0..n) into the ring in FIFO order, blocking
  // while full.  The tail index is published once per chunk of free
  // space (one release store + at most one wake per chunk) instead of
  // once per element — the point of the batched pipeline edges.
  // Returns the number of items enqueued: items.size(), or fewer iff
  // the queue was closed mid-batch.  Producer thread only.
  std::size_t push_batch(std::span<T> items) {
    std::size_t pushed = 0;
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    while (pushed < items.size()) {
      std::size_t free = 0;
      for (;;) {  // wait for space; same Dekker protocol as push()
        if (closed_.load(std::memory_order_acquire)) return pushed;
        free = capacity_ - (tail - head_.load(std::memory_order_acquire));
        if (free > 0) break;
        std::unique_lock<std::mutex> lock(mu_);
        producer_waiting_.store(true, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        free = capacity_ - (tail - head_.load(std::memory_order_acquire));
        if (closed_.load(std::memory_order_acquire) || free > 0) {
          producer_waiting_.store(false, std::memory_order_relaxed);
          if (closed_.load(std::memory_order_acquire)) return pushed;
          break;
        }
        if (instruments_.producer_stalls) instruments_.producer_stalls->add();
        not_full_.wait(lock);
        producer_waiting_.store(false, std::memory_order_relaxed);
      }
      const std::size_t chunk = std::min(free, items.size() - pushed);
      for (std::size_t i = 0; i < chunk; ++i) {
        buf_[(tail + i) % capacity_] = std::move(items[pushed + i]);
      }
      tail += chunk;
      pushed += chunk;
      tail_.store(tail, std::memory_order_release);
      std::size_t occupancy = tail - head_.load(std::memory_order_acquire);
      if (occupancy > peak_size_.load(std::memory_order_relaxed)) {
        peak_size_.store(occupancy, std::memory_order_relaxed);
      }
      wake(consumer_waiting_, not_empty_, instruments_.consumer_wakes);
    }
    return pushed;
  }

  // Blocks while the queue is empty; returns nullopt once the queue is
  // closed AND fully drained.  Consumer thread only.
  std::optional<T> pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (tail_.load(std::memory_order_acquire) != head) break;
      if (closed_.load(std::memory_order_acquire)) {
        if (tail_.load(std::memory_order_acquire) != head) break;
        return std::nullopt;
      }
      std::unique_lock<std::mutex> lock(mu_);
      consumer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (tail_.load(std::memory_order_acquire) != head ||
          closed_.load(std::memory_order_acquire)) {
        consumer_waiting_.store(false, std::memory_order_relaxed);
        if (tail_.load(std::memory_order_acquire) != head) break;
        return std::nullopt;
      }
      if (instruments_.consumer_stalls) instruments_.consumer_stalls->add();
      not_empty_.wait(lock);
      consumer_waiting_.store(false, std::memory_order_relaxed);
    }
    T item = std::move(buf_[head % capacity_]);
    head_.store(head + 1, std::memory_order_release);
    maybe_wake_producer(head + 1);
    return item;
  }

  // Batch pop: moves up to `max` immediately-available items into
  // `out` (appending) with a single head publish + at most one wake.
  // Blocks while the queue is empty; returns the number appended, 0
  // iff the queue is closed AND fully drained.  Consumer thread only.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    if (max == 0) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = 0;
    for (;;) {  // wait for data; same Dekker protocol as pop()
      avail = tail_.load(std::memory_order_acquire) - head;
      if (avail > 0) break;
      if (closed_.load(std::memory_order_acquire)) {
        avail = tail_.load(std::memory_order_acquire) - head;
        if (avail > 0) break;
        return 0;
      }
      std::unique_lock<std::mutex> lock(mu_);
      consumer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      avail = tail_.load(std::memory_order_acquire) - head;
      if (avail > 0 || closed_.load(std::memory_order_acquire)) {
        consumer_waiting_.store(false, std::memory_order_relaxed);
        if (avail > 0) break;
        return 0;
      }
      if (instruments_.consumer_stalls) instruments_.consumer_stalls->add();
      not_empty_.wait(lock);
      consumer_waiting_.store(false, std::memory_order_relaxed);
    }
    const std::size_t chunk = std::min(avail, max);
    for (std::size_t i = 0; i < chunk; ++i) {
      out.push_back(std::move(buf_[(head + i) % capacity_]));
    }
    head_.store(head + chunk, std::memory_order_release);
    maybe_wake_producer(head + chunk);
    return chunk;
  }

  // Timed batch pop: like pop_batch, but gives up after `timeout` when
  // no data arrives, returning 0 with the queue still open — callers
  // disambiguate timeout from end-of-stream via closed().  Shard
  // workers use this so an idle worker still surfaces for checkpoint
  // capture requests and heartbeat ticks (src/recovery/).  Consumer
  // thread only.
  template <typename Rep, typename Period>
  std::size_t pop_batch_for(std::vector<T>& out, std::size_t max,
                            std::chrono::duration<Rep, Period> timeout) {
    if (max == 0) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = 0;
    for (;;) {  // wait for data; same Dekker protocol as pop_batch()
      avail = tail_.load(std::memory_order_acquire) - head;
      if (avail > 0) break;
      if (closed_.load(std::memory_order_acquire)) {
        avail = tail_.load(std::memory_order_acquire) - head;
        if (avail > 0) break;
        return 0;
      }
      std::unique_lock<std::mutex> lock(mu_);
      consumer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      avail = tail_.load(std::memory_order_acquire) - head;
      if (avail > 0 || closed_.load(std::memory_order_acquire)) {
        consumer_waiting_.store(false, std::memory_order_relaxed);
        if (avail > 0) break;
        return 0;
      }
      if (instruments_.consumer_stalls) instruments_.consumer_stalls->add();
      const auto status = not_empty_.wait_for(lock, timeout);
      consumer_waiting_.store(false, std::memory_order_relaxed);
      if (status == std::cv_status::timeout) {
        avail = tail_.load(std::memory_order_acquire) - head;
        if (avail > 0) break;
        return 0;
      }
    }
    const std::size_t chunk = std::min(avail, max);
    for (std::size_t i = 0; i < chunk; ++i) {
      out.push_back(std::move(buf_[(head + i) % capacity_]));
    }
    head_.store(head + chunk, std::memory_order_release);
    maybe_wake_producer(head + chunk);
    return chunk;
  }

  // End of stream: pending items remain poppable, further pushes fail.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_.store(true, std::memory_order_release);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return capacity_; }

  // Approximate occupancy (exact when producer and consumer are idle).
  std::size_t size() const {
    std::size_t tail = tail_.load(std::memory_order_acquire);
    std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  // High-water mark of occupancy; proves the bound held under load.
  std::size_t peak_size() const {
    return peak_size_.load(std::memory_order_relaxed);
  }

 private:
  // Notify the peer only if it advertised that it may be parked.  The
  // fence pairs with the one the parking side executes between setting
  // its flag and re-checking the indices.  exchange() claims the wake:
  // repeated callers don't re-notify a peer that is already being
  // woken (the parker re-sets its flag if it needs to park again).
  void wake(std::atomic<bool>& waiting, std::condition_variable& cv,
            telemetry::Counter* wake_counter) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting.exchange(false, std::memory_order_relaxed)) {
      { std::lock_guard<std::mutex> lock(mu_); }
      cv.notify_one();
      if (wake_counter) wake_counter->add();
    }
  }

  // Backpressure hysteresis: a producer parked on a full queue is only
  // woken once at least half the ring is free, so one producer/consumer
  // round trip moves ~capacity/2 items instead of one consume batch —
  // on an oversubscribed host this is the difference between a context
  // switch per batch and one per half-ring.  Latency-neutral: the path
  // only runs while the queue is (near) full, where residency already
  // dominates, and a draining consumer always crosses the threshold
  // before it can park (it parks only on empty).  The parker's Dekker
  // re-check covers the park-after-drain race as before.
  void maybe_wake_producer(std::size_t new_head) {
    std::size_t occupancy = tail_.load(std::memory_order_acquire) - new_head;
    if (occupancy * 2 <= capacity_) {
      wake(producer_waiting_, not_full_, instruments_.producer_wakes);
    }
  }

  const std::size_t capacity_;
  std::vector<T> buf_;
  Instruments instruments_;
  std::atomic<std::size_t> head_{0};  // next slot to pop
  std::atomic<std::size_t> tail_{0};  // next slot to fill
  std::atomic<std::size_t> peak_size_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
};

}  // namespace bgpbh::stream
