// StreamPipeline: the live ingestion facade.
//
//   UpdateSource ──> ShardRouter ──> SpscQueue[i] ──> shard worker i
//                                                     (InferenceEngine)
//                                                          │ drain_closed()
//                                                          v
//                                                      EventStore
//
// One producer thread pulls FeedUpdates from a source (collector-fleet
// adapter, MRT archive replay, or an in-memory batch), the router
// splits them into per-(peer, prefix) sub-updates and stages them in
// per-shard buffers that move onto the owning shard's bounded queue in
// batches of `batch_size` (blocking when full: backpressure, never
// drops), and N workers pop in matching batches and run private engine
// shards whose closed events merge into a time-ordered store with a
// live snapshot API.
//
// Equivalence contract: after finish(), store().events() sorted
// canonically is identical to what one sequential InferenceEngine
// produces from the same update stream, for any shard count, and
// merged_stats() equals the sequential engine's stats.
#pragma once

#include <cstdint>
#include <memory>

#include "bgp/mrt.h"
#include "core/engine.h"
#include "stream/event_store.h"
#include "stream/shard_router.h"
#include "stream/source.h"
#include "stream/worker_pool.h"

namespace bgpbh::stream {

struct PipelineConfig {
  std::size_t num_shards = 4;
  // Bounded per-shard queue; a full queue blocks the producer.
  std::size_t queue_capacity = 4096;
  // Sub-updates a worker processes between event-store drains.
  std::size_t drain_batch = 256;
  // Sub-updates moved per queue transfer: the router buffers up to this
  // many per shard before a push_batch, and workers pop up to this many
  // per pop_batch — one index publish per chunk instead of per element.
  // 1 restores per-element transfer (lowest latency, e.g. live alert
  // feeds); flush() force-publishes the buffers at any time.
  std::size_t batch_size = 64;
  core::EngineConfig engine;
};

class StreamPipeline {
 public:
  StreamPipeline(const dictionary::BlackholeDictionary& dictionary,
                 const topology::Registry& registry,
                 PipelineConfig config = {});
  ~StreamPipeline();

  // §4.2 initialization from a RIB dump; must be called before start().
  // Entries are partitioned onto their owning shards.
  void init_from_table_dump(routing::Platform platform,
                            const bgp::mrt::TableDump& dump);

  void start();

  // Route one update into the shard queues (single producer thread).
  // Returns false — without routing or counting the update — once the
  // pipeline has finished; nothing is ever silently dropped.  Routed
  // sub-updates are staged in per-shard buffers and handed to the
  // workers `batch_size` at a time; call flush() to force staged
  // sub-updates out early (finish() always flushes).
  bool push(const routing::FeedUpdate& update);

  // Hand all staged sub-updates to their shard queues now (producer
  // thread only).  Bounds the detection latency of a slow feed.
  void flush();

  // Drains an entire source through push(); returns updates consumed.
  std::uint64_t run(UpdateSource& source);

  // Close the queues, join the workers, close still-open events at
  // `end_time`, drain every shard into the store and canonical-sort it.
  void finish(util::SimTime end_time);
  bool finished() const { return finished_; }

  // ---- queries ----------------------------------------------------------
  EventStore& store() { return store_; }
  const EventStore& store() const { return store_; }

  // Live while running (relaxed gauges), exact after finish().
  std::size_t open_event_count() const;

  // PeerEvents emitted by finish() force-closing still-open state at
  // end_time — the "still active at archive cut-off" gauge, in the
  // same per-detection unit as the store's counters.
  std::size_t open_at_finish() const { return open_at_finish_; }

  // Original updates accepted via push()/run().
  std::uint64_t updates_pushed() const { return router_.updates_routed(); }

  // Shard stats folded into one EngineStats.  updates_processed counts
  // original (pre-split) updates so the result is comparable with a
  // sequential engine fed the same stream.  Valid after finish().
  core::EngineStats merged_stats() const;

  std::size_t num_shards() const { return pool_.num_shards(); }

 private:
  EventStore store_;
  WorkerPool pool_;
  ShardRouter router_;
  std::size_t batch_size_;
  // Per-shard staging buffers between the router and the queues.
  std::vector<std::vector<routing::FeedUpdate>> pending_;
  bool started_ = false;
  bool finished_ = false;
  std::size_t open_at_finish_ = 0;
};

}  // namespace bgpbh::stream
