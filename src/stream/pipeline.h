// StreamPipeline: the live ingestion facade.
//
//   UpdateSource ──> Producer 0 ┐                ┌> shard worker 0
//    (per collector   ShardRouter├─ SubUpdateRef ─┤  (InferenceEngine)
//     platform)                  │   SpscQueue[i] │       │ drain_closed()
//   UpdateSource ──> Producer P-1┘   (16 B refs)  └> shard worker N-1
//                        │                                │ sealed chunks
//                        v                                v
//                   BlockPool <─── release ─────── EventStore lane[i]
//               (UpdateBlock: each parsed update stored once)
//
// Zero-copy data plane: a producer thread pulls FeedUpdates from a
// source (collector-fleet adapter, MRT archive replay, or an in-memory
// batch), parks each parsed update once in a pooled UpdateBlock, and
// the router emits 16-byte SubUpdateRefs — (block, prefix index, kind)
// — staged per shard and moved onto the owning shard's bounded queue
// in batches of `batch_size` (blocking when full: backpressure, never
// drops).  N workers pop in matching batches, run private engine
// shards straight over the shared blocks via core::UpdateView (no
// materialization), release the blocks back to the pool, and seal
// their closed events into per-shard EventStore lanes — merged and
// canonically ordered at finish().  In steady state the whole path
// from push() to the engine performs zero heap allocations per
// sub-update (bench/perf_stream asserts this with a counting
// allocator).  `zero_copy = false` restores the materializing
// deep-copy data plane as an A/B slow path.
//
// MPMC stage: `num_producers > 1` gives each producer thread its own
// Producer handle (router + staging buffers); shard submission then
// serializes on a per-shard mutex held once per sealed batch.  Per-key
// equivalence holds as long as all updates of one (peer, prefix) key
// flow through the same producer — true for one-producer-per-platform
// deployments (collector sessions are platform-disjoint) and for any
// peer-key-hash partition.
//
// Equivalence contract: after finish(), store().events() sorted
// canonically is identical to what one sequential InferenceEngine
// produces from the same update stream, for any shard count, batch
// size, producer count, and either data plane, and merged_stats()
// equals the sequential engine's stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "bgp/mrt.h"
#include "core/engine.h"
#include "stream/event_store.h"
#include "stream/shard_router.h"
#include "stream/source.h"
#include "stream/update_block.h"
#include "stream/worker_pool.h"
#include "telemetry/metrics.h"

namespace bgpbh::stream {

struct PipelineConfig {
  std::size_t num_shards = 4;
  // Bounded per-shard queue; a full queue blocks the producer.
  std::size_t queue_capacity = 4096;
  // Sub-updates a worker processes between event-store drains.
  std::size_t drain_batch = 256;
  // Sub-updates moved per queue transfer: a producer stages up to this
  // many per shard before a push_batch, and workers pop up to this
  // many per pop_batch — one index publish per chunk instead of per
  // element.  1 restores per-element transfer (lowest latency, e.g.
  // live alert feeds); flush() force-publishes the buffers at any time.
  std::size_t batch_size = 64;
  // MPMC stage: number of concurrent producer threads (e.g. one per
  // collector platform).  Each must use its own producer() handle.
  std::size_t num_producers = 1;
  // A/B knob: false restores the owning-FeedUpdate deep-copy data
  // plane (one materialized FeedUpdate per sub-update, owning engine
  // entry point) — the pre-zero-copy baseline, kept to prove
  // event-set equality and measure the win.
  bool zero_copy = true;
  // Telemetry sink (src/telemetry/).  When null the pipeline owns a
  // private registry — telemetry is always on; the instrumentation is
  // designed so the hot path stays allocation- and mutex-free (see
  // WorkerPool / SpscQueue docs).  When set (e.g. by AnalysisSession)
  // it must outlive the pipeline.
  telemetry::MetricsRegistry* metrics = nullptr;
  core::EngineConfig engine;
};

class StreamPipeline {
 public:
  // One per producer thread: routes updates into the shard queues
  // through its own router and staging buffers.  Obtain via
  // StreamPipeline::producer(i); never share a handle across threads.
  class Producer {
   public:
    // Route one update.  Returns false — without routing or counting
    // the update — once the pipeline has finished; nothing is ever
    // silently dropped.  Routed sub-updates are staged per shard and
    // handed to the workers `batch_size` at a time.
    bool push(const routing::FeedUpdate& update);

    // Hand this producer's staged sub-updates to their shard queues
    // now.  Bounds the detection latency of a slow feed.
    void flush();

    // Original updates accepted via push() on this handle.
    std::uint64_t updates_pushed() const { return router_.updates_routed(); }

    // Sub-update refs this handle actually enqueued onto shard queues
    // (accepted by submit_batch; replay-skipped refs excluded).
    // Together with StreamPipeline::total_processed() this gives a
    // quiescence check: equal totals after flush() mean the queues are
    // empty and the engines have consumed everything pushed so far.
    std::uint64_t refs_enqueued() const {
      return refs_enqueued_.load(std::memory_order_relaxed);
    }

    // Recovery replay cut (src/recovery/): drop the first counts[s]
    // sub-update refs this producer routes to each shard s — they were
    // already processed and made durable before the crash.  Routing is
    // deterministic, so re-feeding the same source with the same
    // producer partition skips exactly the pre-checkpoint prefix of
    // every per-shard stream.  Call before the first push().
    void set_replay_skip(std::vector<std::uint64_t> counts) {
      skip_ = std::move(counts);
    }

   private:
    friend class StreamPipeline;
    Producer(StreamPipeline& owner, std::size_t index, std::size_t num_shards,
             BlockPool& blocks, bool zero_copy, std::size_t batch_size);

    // Hand one shard's staged batch to the workers, releasing any refs
    // a mid-shutdown rejection left with us.
    void submit_shard(std::size_t shard);

    StreamPipeline* owner_;
    ShardRouter router_;
    std::size_t batch_size_;
    std::vector<std::vector<SubUpdateRef>> pending_;
    // Per-shard refs still to drop during recovery replay; empty when
    // not replaying, so the hot path pays one branch.
    std::vector<std::uint64_t> skip_;
    // Relaxed: written by the producer thread, sampled by drain checks.
    std::atomic<std::uint64_t> refs_enqueued_{0};
  };

  StreamPipeline(const dictionary::BlackholeDictionary& dictionary,
                 const topology::Registry& registry,
                 PipelineConfig config = {});
  ~StreamPipeline();

  // §4.2 initialization from a RIB dump; must be called before start().
  // Entries are partitioned onto their owning shards.
  void init_from_table_dump(routing::Platform platform,
                            const bgp::mrt::TableDump& dump);

  // Idempotent; safe to race from multiple producer threads.
  void start();

  // ---- producing --------------------------------------------------------
  Producer& producer(std::size_t index) { return *producers_.at(index); }
  std::size_t num_producers() const { return producers_.size(); }

  // Single-producer facade: producer(0).
  bool push(const routing::FeedUpdate& update);
  void flush();

  // Drains an entire source through push(); returns updates consumed.
  std::uint64_t run(UpdateSource& source);

  // Close the queues, join the workers, close still-open events at
  // `end_time`, drain every shard into the store and canonical-sort it.
  // All producer threads must have stopped pushing before this call.
  void finish(util::SimTime end_time);
  bool finished() const { return finished_.load(std::memory_order_acquire); }

  // ---- queries ----------------------------------------------------------
  EventStore& store() { return store_; }
  const EventStore& store() const { return store_; }

  // Live while running (relaxed gauges), exact after finish().
  std::size_t open_event_count() const;

  // PeerEvents emitted by finish() force-closing still-open state at
  // end_time — the "still active at archive cut-off" gauge, in the
  // same per-detection unit as the store's counters.
  std::size_t open_at_finish() const { return open_at_finish_; }

  // Original updates accepted via push()/run(), over all producers.
  std::uint64_t updates_pushed() const;

  // Quiescence totals (relaxed sums; see Producer::refs_enqueued).
  std::uint64_t total_refs_enqueued() const;
  std::uint64_t total_processed() const;

  // Shard stats folded into one EngineStats.  updates_processed counts
  // original (pre-split) updates so the result is comparable with a
  // sequential engine fed the same stream.  Valid after finish().
  core::EngineStats merged_stats() const;

  std::size_t num_shards() const { return workers_.num_shards(); }

  // Pool observability: every block acquired must come back; 0 after
  // finish() proves the refcounting closed the loop.
  std::size_t blocks_in_flight() const { return blocks_.in_flight(); }
  // Pool high-water mark; stops growing once the pipeline reaches
  // steady state (bounded by staging + queue capacities).
  std::size_t blocks_allocated() const { return blocks_.blocks_allocated(); }

  // ---- checkpoint/recovery surface (src/recovery/) ----------------------
  // Rendezvous capture of every shard's open state + watermarks; see
  // WorkerPool::capture for the protocol and its guarantees.
  bool capture(const std::function<void()>& while_quiesced,
               std::vector<ShardCapture>& out) {
    return workers_.capture(while_quiesced, out);
  }
  // Direct shard engine access — only legal before start() (recovery
  // imports checkpointed open state) or after finish().
  core::InferenceEngine& shard_engine(std::size_t shard) {
    return workers_.engine(shard);
  }
  void seed_watermarks(std::size_t shard, std::vector<std::uint64_t> counts) {
    workers_.seed_watermarks(shard, std::move(counts));
  }
  // Watchdog samples (relaxed reads; safe any time).
  std::uint64_t shard_heartbeat(std::size_t shard) const {
    return workers_.heartbeat(shard);
  }
  std::size_t shard_queue_depth(std::size_t shard) const {
    return workers_.queue_depth(shard);
  }
  std::uint64_t shard_processed(std::size_t shard) const {
    return workers_.processed(shard);
  }

  // The registry this pipeline records into: the one from
  // PipelineConfig::metrics, or the pipeline's own.  snapshot() folds
  // per-shard instruments and samples the live gauges (queue depth,
  // pool occupancy, open events) via a collection hook.
  telemetry::MetricsRegistry& metrics() { return *metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  // Declared before workers_: the pool borrows instruments from the
  // registry for the lifetime of its shards.
  std::unique_ptr<telemetry::MetricsRegistry> owned_metrics_;
  telemetry::MetricsRegistry* metrics_;
  EventStore store_;
  BlockPool blocks_;
  WorkerPool workers_;
  std::vector<std::unique_ptr<Producer>> producers_;
  std::uint64_t metrics_hook_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
  std::size_t open_at_finish_ = 0;
};

}  // namespace bgpbh::stream
