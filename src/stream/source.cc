#include "stream/source.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "bgp/mrt.h"
#include "util/log.h"

namespace bgpbh::stream {

const char* to_string(SourceStatus status) {
  switch (status) {
    case SourceStatus::kActive: return "active";
    case SourceStatus::kEnd: return "end";
    case SourceStatus::kDisconnected: return "disconnected";
    case SourceStatus::kFailed: return "failed";
  }
  return "unknown";
}

const routing::FeedUpdate* VectorSource::next() {
  if (pos_ >= updates_.size()) return nullptr;
  return &updates_[pos_++];
}

std::optional<MrtFileSource> MrtFileSource::open(const std::string& path,
                                                 routing::Platform platform,
                                                 std::string* error) {
  errno = 0;
  auto bytes = bgp::mrt::read_file(path);
  if (!bytes) {
    std::string reason = "cannot read archive: ";
    reason += errno != 0 ? std::strerror(errno) : "read failed";
    util::Log(util::LogLevel::kWarn, "mrt_source")
        .msg("open failed")
        .kv("path", path)
        .kv("reason", reason);
    if (error) *error = std::move(reason);
    return std::nullopt;
  }
  return from_buffer(*bytes, platform, error);
}

std::optional<MrtFileSource> MrtFileSource::from_buffer(
    std::span<const std::uint8_t> data, routing::Platform platform,
    std::string* error) {
  auto updates = bgp::mrt::decode_updates(data);
  if (!updates) {
    std::string reason = "malformed MRT record framing in " +
                         std::to_string(data.size()) + "-byte archive";
    util::Log(util::LogLevel::kWarn, "mrt_source")
        .msg("decode failed")
        .kv("bytes", data.size())
        .kv("reason", reason);
    if (error) *error = std::move(reason);
    return std::nullopt;
  }
  std::stable_sort(updates->begin(), updates->end(),
                   [](const bgp::ObservedUpdate& a,
                      const bgp::ObservedUpdate& b) { return a.time < b.time; });
  MrtFileSource source;
  source.platform_ = platform;
  source.updates_ = std::move(*updates);
  return source;
}

const routing::FeedUpdate* MrtFileSource::next() {
  if (pos_ >= updates_.size()) return nullptr;
  current_.platform = platform_;
  // Copy-assign into the reused slot: steady-state allocation-free.
  current_.update = updates_[pos_++];
  return &current_;
}

FleetSource::FleetSource(const routing::CollectorFleet& fleet,
                         routing::PropagationEngine& propagation,
                         std::vector<workload::Episode> episodes,
                         util::SimTime window_end)
    : fleet_(fleet),
      propagation_(propagation),
      episodes_(std::move(episodes)),
      window_end_(window_end) {}

void FleetSource::refill() {
  while (buffer_.empty() && episode_pos_ < episodes_.size()) {
    const workload::Episode& episode = episodes_[episode_pos_++];
    routing::BlackholeAnnouncement ann = episode.announcement(episode.start);
    auto prop = propagation_.propagate_blackhole(ann);
    for (const auto& period : episode.on_periods) {
      // Same clamping as Study::run: nothing is stamped past the window.
      if (period.start >= window_end_ - 30) break;
      util::SimTime period_end = std::min(period.end, window_end_ - 20);
      if (period_end <= period.start) continue;
      ann.time = period.start;
      for (auto& u : fleet_.observe_announcement(prop, ann, propagation_)) {
        buffer_.push_back(std::move(u));
      }
      for (auto& u : fleet_.observe_withdrawal(prop, ann, propagation_,
                                               period_end,
                                               period.explicit_withdrawal)) {
        buffer_.push_back(std::move(u));
      }
    }
  }
}

const routing::FeedUpdate* FleetSource::next() {
  if (buffer_.empty()) refill();
  if (buffer_.empty()) return nullptr;
  current_ = std::move(buffer_.front());
  buffer_.pop_front();
  return &current_;
}

}  // namespace bgpbh::stream
