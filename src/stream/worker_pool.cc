#include "stream/worker_pool.h"

#include "telemetry/trace.h"

namespace bgpbh::stream {

WorkerPool::WorkerPool(const dictionary::BlackholeDictionary& dictionary,
                       const topology::Registry& registry,
                       core::EngineConfig engine_config,
                       std::size_t num_shards, std::size_t num_producers,
                       std::size_t queue_capacity, std::size_t drain_batch,
                       std::size_t batch_size, bool serialize_producers,
                       BlockPool& blocks, EventStore& store,
                       telemetry::MetricsRegistry& metrics)
    : compiled_(engine_config.use_compiled_fastpath
                    ? dictionary::CompiledDictionary(dictionary)
                    : dictionary::CompiledDictionary()),
      num_producers_(num_producers == 0 ? 1 : num_producers),
      drain_batch_(drain_batch == 0 ? 1 : drain_batch),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      serialize_producers_(serialize_producers),
      blocks_(blocks),
      store_(store),
      trace_(&metrics.trace()) {
  if (num_shards == 0) num_shards = 1;
  metrics.describe("stream.worker.batch_ns",
                   "Shard worker consume-batch processing latency (ns, up to "
                   "batch_size sub-updates per record)");
  metrics.describe("stream.worker.drain_ns",
                   "Shard worker closed-event drain + store handoff latency "
                   "(ns per drain)");
  metrics.describe("stream.queue.producer_stalls",
                   "Times a producer parked on a full shard queue "
                   "(backpressure)");
  metrics.describe("stream.queue.consumer_stalls",
                   "Times a shard worker parked on an empty queue");
  metrics.describe("stream.queue.producer_wakes",
                   "Producer wakeups claimed by the backpressure hysteresis");
  metrics.describe("stream.queue.consumer_wakes",
                   "Worker wakeups claimed after an enqueue");
  metrics.describe("e2e.detect_latency_ns",
                   "End-to-end detection latency: wall time from an update's "
                   "ingest stamp at the producer edge to the engine closing "
                   "the blackhole event (ns; unstamped/force-closed events "
                   "excluded)");
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<core::InferenceEngine>(
        dictionary, compiled_, registry, engine_config);
    shard->queue = std::make_unique<SpscQueue<SubUpdateRef>>(queue_capacity);
    shard->index = i;
    shard->watermarks.assign(num_producers_, 0);
    shard->batch_hist = &metrics.shard_histogram("stream.worker.batch_ns", i);
    shard->drain_hist = &metrics.shard_histogram("stream.worker.drain_ns", i);
    shard->detect_hist =
        &metrics.shard_histogram("e2e.detect_latency_ns", i);
    shard->queue->bind_instruments(SpscQueue<SubUpdateRef>::Instruments{
        .producer_stalls =
            &metrics.shard_counter("stream.queue.producer_stalls", i),
        .producer_wakes =
            &metrics.shard_counter("stream.queue.producer_wakes", i),
        .consumer_stalls =
            &metrics.shard_counter("stream.queue.consumer_stalls", i),
        .consumer_wakes =
            &metrics.shard_counter("stream.queue.consumer_wakes", i),
    });
    shards_.push_back(std::move(shard));
  }
  capture_slots_.resize(shards_.size());
}

WorkerPool::~WorkerPool() { close_and_join(); }

core::InferenceEngine& WorkerPool::engine(std::size_t shard) {
  return *shards_.at(shard)->engine;
}

const core::InferenceEngine& WorkerPool::engine(std::size_t shard) const {
  return *shards_.at(shard)->engine;
}

void WorkerPool::start() {
  // Refuse after shutdown: the queues are closed, and threads spawned
  // now could never be joined again.  exchange() makes concurrent
  // producer-triggered starts race-free: exactly one spawns.
  if (joined_.load(std::memory_order_acquire)) return;
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, &shard = *shard] { worker_loop(shard); });
  }
}

std::size_t WorkerPool::submit_batch(std::size_t shard,
                                     std::span<SubUpdateRef> refs) {
  Shard& s = *shards_.at(shard);
  if (!serialize_producers_) return s.queue->push_batch(refs);
  // One lock per sealed batch; a producer parked on a full queue keeps
  // the lock, but the worker never takes it, so drains still progress.
  std::lock_guard<std::mutex> lock(s.producer_mu);
  return s.queue->push_batch(refs);
}

void WorkerPool::worker_loop(Shard& shard) {
  // Idle poll interval: an empty-queue worker resurfaces this often to
  // tick its heartbeat and notice checkpoint capture requests.  Never
  // reached while traffic flows (the queue wakes the worker directly).
  constexpr auto kIdlePoll = std::chrono::milliseconds(5);
  std::size_t since_drain = 0;
  std::vector<SubUpdateRef> batch;
  batch.reserve(batch_size_);
  // Blocks whose last reference this worker dropped; recycled with one
  // pool lock per consume batch instead of one per block.
  std::vector<UpdateBlock*> to_recycle;
  to_recycle.reserve(batch_size_);
  core::UpdateView view;
  for (;;) {
    shard.heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (capture_requested_.load(std::memory_order_acquire)) {
      capture_rendezvous(shard);
    }
    batch.clear();
    std::size_t n = shard.queue->pop_batch_for(batch, batch_size_, kIdlePoll);
    if (n == 0) {
      if (!shard.queue->closed()) continue;  // idle timeout
      // Closed: grab any remainder racing the close, then exit.
      n = shard.queue->pop_batch(batch, batch_size_);
      if (n == 0) break;
    }
    telemetry::ScopedSpan span(shard.batch_hist, trace_, "worker.batch",
                               shard.index);
    for (const SubUpdateRef& ref : batch) {
      UpdateBlock* block = ref.block;
      ++shard.watermarks[block->producer];
      const routing::FeedUpdate& fu = block->update;
      if (ref.kind == SubKind::kOwned) {
        // A/B slow path: materialized single-prefix update, owning
        // engine entry point.
        shard.engine->process(fu.platform, fu.update);
      } else {
        const bool withdrawal = ref.kind == SubKind::kWithdraw;
        view.platform = fu.platform;
        view.time = fu.update.time;
        view.peer = bgp::PeerKey{fu.update.peer_ip, fu.update.peer_asn};
        view.is_withdrawal = withdrawal;
        view.prefix = withdrawal
                          ? &fu.update.body.withdrawn[ref.prefix_index]
                          : &fu.update.body.announced[ref.prefix_index];
        view.as_path = &fu.update.body.as_path;
        view.communities = &fu.update.body.communities;
        view.ingest_ns = fu.ingest_ns;
        shard.engine->process(view);
      }
      if (BlockPool::unref(block)) to_recycle.push_back(block);
    }
    blocks_.recycle_batch(to_recycle);
    to_recycle.clear();
    shard.open_gauge.store(shard.engine->open_event_count(),
                           std::memory_order_relaxed);
    shard.processed.fetch_add(batch.size(), std::memory_order_relaxed);
    since_drain += batch.size();
    if (since_drain >= drain_batch_) {
      telemetry::ScopedSpan drain_span(shard.drain_hist, trace_,
                                       "worker.drain", shard.index);
      drain_into_store(shard);
      since_drain = 0;
    }
  }
  {
    telemetry::ScopedSpan drain_span(shard.drain_hist, trace_, "worker.drain",
                                     shard.index);
    drain_into_store(shard);
  }
}

void WorkerPool::drain_into_store(Shard& shard) {
  std::vector<core::PeerEvent> chunk = shard.engine->drain_closed();
  if (shard.detect_hist) {
    for (const auto& e : chunk) {
      if (e.ingest_ns != 0 && e.detected_ns > e.ingest_ns) {
        shard.detect_hist->record(e.detected_ns - e.ingest_ns);
      }
    }
  }
  store_.ingest_chunk(shard.index, std::move(chunk));
}

void WorkerPool::capture_rendezvous(Shard& shard) {
  // Flush this shard's closed events downstream first: once every
  // worker has arrived, all pre-cut chunks are already in the store's
  // listener pipelines, and no post-cut chunk can be submitted while
  // the workers are held — that is what makes the coordinator's
  // while_quiesced enqueues an exact cut.
  drain_into_store(shard);
  std::unique_lock<std::mutex> lock(rendezvous_mu_);
  if (!capture_active_) return;  // stale flag: capture aborted/finished
  ShardCapture& slot = capture_slots_[shard.index];
  slot.open_state = shard.engine->export_open_state();
  slot.watermarks = shard.watermarks;
  ++arrived_;
  rendezvous_cv_.notify_all();
  rendezvous_cv_.wait(lock, [&] { return released_ || shutdown_; });
}

bool WorkerPool::capture(const std::function<void()>& while_quiesced,
                         std::vector<ShardCapture>& out) {
  std::lock_guard<std::mutex> serial(capture_serial_mu_);
  if (joined_.load(std::memory_order_acquire)) return false;
  out.clear();
  if (!started_.load(std::memory_order_acquire)) {
    // No workers yet (bootstrap checkpoint): engines and watermarks
    // are directly readable, and nothing is in flight by definition.
    out.resize(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      out[i].open_state = shards_[i]->engine->export_open_state();
      out[i].watermarks = shards_[i]->watermarks;
    }
    if (while_quiesced) while_quiesced();
    return true;
  }
  std::unique_lock<std::mutex> lock(rendezvous_mu_);
  if (shutdown_) return false;
  capture_active_ = true;
  arrived_ = 0;
  released_ = false;
  capture_requested_.store(true, std::memory_order_release);
  rendezvous_cv_.wait(
      lock, [&] { return arrived_ == shards_.size() || shutdown_; });
  const bool ok = !shutdown_;
  if (ok) {
    out.reserve(shards_.size());
    for (auto& slot : capture_slots_) out.push_back(std::move(slot));
    if (while_quiesced) while_quiesced();
  }
  capture_active_ = false;
  capture_requested_.store(false, std::memory_order_release);
  released_ = true;
  rendezvous_cv_.notify_all();
  return ok;
}

void WorkerPool::seed_watermarks(std::size_t shard,
                                 std::vector<std::uint64_t> watermarks) {
  Shard& s = *shards_.at(shard);
  watermarks.resize(num_producers_, 0);
  s.watermarks = std::move(watermarks);
}

void WorkerPool::close_and_join() {
  if (joined_.exchange(true)) return;
  {
    // Abort any in-progress capture so parked workers (and a
    // coordinator waiting for arrivals) wake before we join.
    std::lock_guard<std::mutex> lock(rendezvous_mu_);
    shutdown_ = true;
  }
  rendezvous_cv_.notify_all();
  for (auto& shard : shards_) shard->queue->close();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

void WorkerPool::publish_open_gauges() {
  for (auto& shard : shards_) {
    shard->open_gauge.store(shard->engine->open_event_count(),
                            std::memory_order_relaxed);
  }
}

std::size_t WorkerPool::open_event_count() const {
  // Engines may only be read directly before start(), while no worker
  // (and no post-join force-close on another thread) can touch them.
  // Ever after, use the published gauges: workers refresh them after
  // every batch, and the pipeline's finish() re-publishes them once
  // the force-closed remainder is drained — so even mid-shutdown a
  // concurrent reader never races the engine hash tables.
  bool direct = !started_.load(std::memory_order_acquire);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += direct ? shard->engine->open_event_count()
                    : shard->open_gauge.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t WorkerPool::processed_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->processed.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t WorkerPool::queue_depth(std::size_t shard) const {
  return shards_.at(shard)->queue->size();
}

std::size_t WorkerPool::queue_peak(std::size_t shard) const {
  return shards_.at(shard)->queue->peak_size();
}

std::size_t WorkerPool::open_events(std::size_t shard) const {
  return shards_.at(shard)->open_gauge.load(std::memory_order_relaxed);
}

std::uint64_t WorkerPool::processed(std::size_t shard) const {
  return shards_.at(shard)->processed.load(std::memory_order_relaxed);
}

std::uint64_t WorkerPool::heartbeat(std::size_t shard) const {
  return shards_.at(shard)->heartbeat.load(std::memory_order_relaxed);
}

}  // namespace bgpbh::stream
