#include "stream/worker_pool.h"

namespace bgpbh::stream {

WorkerPool::WorkerPool(const dictionary::BlackholeDictionary& dictionary,
                       const topology::Registry& registry,
                       core::EngineConfig engine_config,
                       std::size_t num_shards, std::size_t queue_capacity,
                       std::size_t drain_batch, std::size_t batch_size,
                       EventStore& store)
    : compiled_(engine_config.use_compiled_fastpath
                    ? dictionary::CompiledDictionary(dictionary)
                    : dictionary::CompiledDictionary()),
      drain_batch_(drain_batch == 0 ? 1 : drain_batch),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      store_(store) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<core::InferenceEngine>(
        dictionary, compiled_, registry, engine_config);
    shard->queue =
        std::make_unique<SpscQueue<routing::FeedUpdate>>(queue_capacity);
    shards_.push_back(std::move(shard));
  }
}

WorkerPool::~WorkerPool() { close_and_join(); }

core::InferenceEngine& WorkerPool::engine(std::size_t shard) {
  return *shards_.at(shard)->engine;
}

const core::InferenceEngine& WorkerPool::engine(std::size_t shard) const {
  return *shards_.at(shard)->engine;
}

void WorkerPool::start() {
  // Refuse after shutdown: the queues are closed, and threads spawned
  // now could never be joined again.
  if (started_.load() || joined_.load()) return;
  started_.store(true);
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, &shard = *shard] { worker_loop(shard); });
  }
}

bool WorkerPool::submit(std::size_t shard, routing::FeedUpdate update) {
  return shards_.at(shard)->queue->push(std::move(update));
}

std::size_t WorkerPool::submit_batch(std::size_t shard,
                                     std::span<routing::FeedUpdate> updates) {
  return shards_.at(shard)->queue->push_batch(updates);
}

void WorkerPool::worker_loop(Shard& shard) {
  std::size_t since_drain = 0;
  std::vector<routing::FeedUpdate> batch;
  batch.reserve(batch_size_);
  for (;;) {
    batch.clear();
    if (shard.queue->pop_batch(batch, batch_size_) == 0) break;
    for (auto& update : batch) {
      shard.engine->process(update.platform, update.update);
    }
    shard.open_gauge.store(shard.engine->open_event_count(),
                           std::memory_order_relaxed);
    shard.processed.fetch_add(batch.size(), std::memory_order_relaxed);
    since_drain += batch.size();
    if (since_drain >= drain_batch_) {
      store_.ingest(shard.engine->drain_closed());
      since_drain = 0;
    }
  }
  store_.ingest(shard.engine->drain_closed());
}

void WorkerPool::close_and_join() {
  if (joined_.exchange(true)) return;
  for (auto& shard : shards_) shard->queue->close();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  all_joined_.store(true, std::memory_order_release);
}

std::size_t WorkerPool::open_event_count() const {
  // Engines may only be read directly while no worker can touch them:
  // before start(), or after every thread has actually been joined.
  // In between (including mid-shutdown) use the published gauges.
  bool direct = !started_.load(std::memory_order_acquire) ||
                all_joined_.load(std::memory_order_acquire);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += direct ? shard->engine->open_event_count()
                    : shard->open_gauge.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t WorkerPool::processed_count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->processed.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace bgpbh::stream
