// Merged, time-ordered store of closed blackholing events produced by
// the engine shards of the streaming pipeline.
//
// Shard workers ingest batches concurrently while the pipeline runs;
// aggregate counters (per-provider, per-platform, total) are maintained
// incrementally so a live alerting sink can take a consistent snapshot
// at any time without stopping the workers.  After the pipeline
// finishes, finalize() sorts the merged set into the canonical event
// order (core::canonical_less) — the representation in which a sharded
// run is byte-comparable to a sequential one.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

#include "core/events.h"

namespace bgpbh::stream {

class EventStore {
 public:
  // Consistent view of the aggregate counters at one instant.
  struct Snapshot {
    std::size_t total_events = 0;
    util::SimTime first_start = 0;  // min start over ingested events
    util::SimTime last_end = 0;     // max end over ingested events
    std::map<core::ProviderRef, std::size_t> per_provider;
    std::map<routing::Platform, std::size_t> per_platform;
  };

  // Thread-safe: called by shard workers with drained closed events.
  void ingest(std::vector<core::PeerEvent> events);

  // Sorts the merged set canonically.  Call once all workers stopped.
  void finalize();
  bool finalized() const;

  // ---- queries ----------------------------------------------------------
  std::size_t size() const;
  Snapshot snapshot() const;
  // Events overlapping [t0, t1) (same overlap rule as Study::events_in).
  std::vector<core::PeerEvent> events_in(util::SimTime t0,
                                         util::SimTime t1) const;
  std::size_t count_in(util::SimTime t0, util::SimTime t1) const;

  // The merged event set; canonical order once finalized.  Only valid
  // to hold the reference while no worker is ingesting.
  const std::vector<core::PeerEvent>& events() const { return events_; }

 private:
  mutable std::mutex mu_;
  std::vector<core::PeerEvent> events_;
  Snapshot counters_;
  bool has_any_ = false;
  bool finalized_ = false;
};

}  // namespace bgpbh::stream
