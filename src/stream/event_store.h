// Merged, time-ordered store of closed blackholing events produced by
// the engine shards of the streaming pipeline.
//
// Shard workers hand events over in *sealed chunks*: each worker seals
// its engine's drained batch and moves the whole vector into its own
// lane under that lane's mutex — an O(1) splice plus small counter
// updates, never an element-wise copy under a shared lock.  Lanes are
// per-shard, so the hot ingest path has no cross-shard contention; the
// expensive work (merging every lane into one canonically sorted
// vector) happens once, in finalize(), after the workers have stopped.
//
// Aggregate counters (per-provider, per-platform, total) are kept per
// lane and folded on demand, so a live alerting sink can take a
// consistent snapshot at any time without stopping the workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/events.h"

namespace bgpbh::stream {

class EventStore {
 public:
  // Consistent view of the aggregate counters at one instant.
  struct Snapshot {
    std::size_t total_events = 0;
    util::SimTime first_start = 0;  // min start over ingested events
    util::SimTime last_end = 0;     // max end over ingested events
    std::map<core::ProviderRef, std::size_t> per_provider;
    std::map<routing::Platform, std::size_t> per_platform;
  };

  // Folds one event into a snapshot's counters — THE accumulation rule
  // for Snapshot, shared by the store's lane counters and by
  // api::AnalysisSession's batch-mode snapshot.
  static void fold_event(Snapshot& into, bool& into_has_any,
                         const core::PeerEvent& event);

  // Folds one snapshot into another (same rule as fold_event, counter
  // granularity) — how the lanes merge, and how api::AnalysisSession
  // merges the persistent segment log's cached summary into a live
  // view.  `from_has_any`/`into_has_any` disambiguate the zero-valued
  // time fields of an empty snapshot.
  static void fold(Snapshot& into, bool& into_has_any, const Snapshot& from,
                   bool from_has_any);

  // One lane per concurrent ingester (shard worker).  Lane count is
  // fixed at construction; ingest_chunk(lane) for lane >= lanes rounds
  // into the available ones.
  explicit EventStore(std::size_t lanes = 1);

  // Sealed-chunk handoff: moves the whole chunk into the lane under
  // its (per-lane, effectively uncontended) mutex.  Thread-safe.
  void ingest_chunk(std::size_t lane, std::vector<core::PeerEvent>&& chunk);

  // Sink-dispatch hook: receives a copy of every chunk right AFTER it
  // landed in its lane (so a listener-driven snapshot can never lag
  // the events already handed out), on the ingesting thread and
  // outside any store lock (the listener may block for backpressure
  // without stalling readers).
  //
  // ORDERING CONTRACT (single writer per lane): the store never
  // reorders — a lane's chunks are observed in exactly the order its
  // ingester called ingest_chunk, so with the pipeline's shape (one
  // shard worker per lane, every (peer, prefix) key owned by one
  // shard) per-key close order is preserved end to end.  Nothing is
  // guaranteed across lanes: cross-lane interleaving follows whichever
  // ingester ran first.  Two writers sharing a lane would also be
  // safe (the lane mutex serializes them) but forfeits the per-key
  // order, so don't.
  //
  // LIFECYCLE CONTRACT: set before any ingester runs, never after —
  // the slot is read without synchronization on the ingest path, so
  // installing a listener once ingest_chunk has run is a data race AND
  // would silently miss the chunks already handed over.  Debug builds
  // assert; null clears (same rule).  When no listener is set the only
  // cost is one branch per sealed chunk — nothing per event; with one,
  // the chunk copy made for it is the entire hot-path cost.
  using ChunkListener =
      std::function<void(std::size_t lane, std::vector<core::PeerEvent> chunk)>;
  void set_chunk_listener(ChunkListener listener);

  // Spill hook (persistent event store, src/storage/): identical
  // contracts to the chunk listener, invoked right before it with its
  // own copy of the chunk.  Kept a separate slot so persistence
  // composes with sink dispatch — api::AnalysisSession wires this to a
  // storage::SpillWriter (whose bounded queue and writer thread keep
  // segment I/O off the ingesting threads) while the chunk listener
  // feeds the SinkDispatcher.
  void set_spill_listener(ChunkListener listener);

  // Convenience for single-writer callers (tests, batch imports).
  void ingest(std::vector<core::PeerEvent> events);

  // Merges every lane into the canonical event order.  Call once all
  // workers stopped.
  void finalize();
  bool finalized() const;

  // ---- queries ----------------------------------------------------------
  std::size_t size() const;
  Snapshot snapshot() const;

  // Lane-consistent predicate scan: visits the merged vector and every
  // lane's sealed chunks under the finalize-consistent retry, so the
  // same query yields the same event set live (per-shard lanes) and
  // after finalize().  Result order is scan order, NOT canonical —
  // canonical_sort it for comparisons.  api::EventQuery runs on this.
  std::vector<core::PeerEvent> query(
      const std::function<bool(const core::PeerEvent&)>& pred) const;
  std::size_t count(
      const std::function<bool(const core::PeerEvent&)>& pred) const;

  // Events overlapping [t0, t1) (core::overlaps_window, the same rule
  // as Study::events_in).
  std::vector<core::PeerEvent> events_in(util::SimTime t0,
                                         util::SimTime t1) const;
  std::size_t count_in(util::SimTime t0, util::SimTime t1) const;

  // The merged event set in canonical order.  Asserts (debug builds)
  // that finalize() ran: before the merge the vector is EMPTY — the
  // events live in per-shard lanes, reachable only through
  // query()/events_in()/count_in()/snapshot() — and silently returning
  // {} here has bitten real callers.  Only valid to hold the reference
  // while no worker is ingesting.
  const std::vector<core::PeerEvent>& events() const;

 private:
  struct Lane {
    mutable std::mutex mu;
    std::vector<std::vector<core::PeerEvent>> chunks;  // sealed, unmerged
    std::size_t event_count = 0;
    Snapshot counters;
    bool has_any = false;
  };

  static void count_events(Lane& lane,
                           const std::vector<core::PeerEvent>& events);

  // Runs `scan` and retries once if a concurrent finalize() moved
  // events between the scan's observation points (see the .cc).
  template <typename Scan>
  auto consistent_scan(Scan&& scan) const;

  std::vector<std::unique_ptr<Lane>> lanes_;
  ChunkListener chunk_listener_;
  ChunkListener spill_listener_;
#ifndef NDEBUG
  // Catches the set-after-ingest lifecycle footgun (see the listener
  // contracts above); debug builds only.
  std::atomic<bool> ingest_started_{false};
#endif

  // Guards the merged state (events_, merged counters, finalized_).
  mutable std::mutex mu_;
  std::vector<core::PeerEvent> events_;
  Snapshot merged_counters_;
  bool merged_has_any_ = false;
  bool finalized_ = false;
};

}  // namespace bgpbh::stream
