// Shard routing for the streaming pipeline.
//
// Engine state is keyed by (BGP peer, prefix) and every transition —
// open, implicit close, explicit close — touches exactly one key, so
// partitioning keys across shards by hash preserves the sequential
// engine's semantics exactly.  An UPDATE message may carry several
// prefixes whose keys hash to different shards; the router therefore
// splits each observed update into single-prefix sub-updates and
// routes each to the shard owning its key.  Within one update,
// withdrawn prefixes are emitted before announced ones (the order the
// sequential engine processes them in), and the SPSC queues are FIFO,
// so the per-key transition order is identical to sequential replay.
#pragma once

#include <cstdint>

#include "bgp/rib.h"
#include "routing/collectors.h"

namespace bgpbh::stream {

// Deterministic shard assignment for a (peer, prefix) state key.
std::size_t shard_for(const bgp::PeerKey& peer, const net::Prefix& prefix,
                      std::size_t num_shards);

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t num_shards) : num_shards_(num_shards) {}

  std::size_t num_shards() const { return num_shards_; }

  // Original (pre-split) updates seen; the pipeline reports this as
  // updates_processed so merged stats match the sequential engine's.
  std::uint64_t updates_routed() const { return updates_routed_; }

  // Splits `fu` into single-prefix sub-updates and calls
  // emit(shard_index, sub_update) for each.  Withdrawals first.
  template <typename Emit>
  void route(const routing::FeedUpdate& fu, Emit&& emit) {
    ++updates_routed_;
    bgp::PeerKey peer{fu.update.peer_ip, fu.update.peer_asn};
    for (const auto& prefix : fu.update.body.withdrawn) {
      routing::FeedUpdate sub = base_of(fu);
      sub.update.body.withdrawn.push_back(prefix);
      emit(shard_for(peer, prefix, num_shards_), std::move(sub));
    }
    for (const auto& prefix : fu.update.body.announced) {
      routing::FeedUpdate sub = base_of(fu);
      sub.update.body.announced.push_back(prefix);
      sub.update.body.as_path = fu.update.body.as_path;
      sub.update.body.communities = fu.update.body.communities;
      sub.update.body.next_hop = fu.update.body.next_hop;
      sub.update.body.origin = fu.update.body.origin;
      emit(shard_for(peer, prefix, num_shards_), std::move(sub));
    }
  }

 private:
  // Collector metadata shared by every sub-update of one update.
  static routing::FeedUpdate base_of(const routing::FeedUpdate& fu) {
    routing::FeedUpdate sub;
    sub.platform = fu.platform;
    sub.update.time = fu.update.time;
    sub.update.peer_ip = fu.update.peer_ip;
    sub.update.peer_asn = fu.update.peer_asn;
    sub.update.collector_id = fu.update.collector_id;
    return sub;
  }

  std::size_t num_shards_;
  std::uint64_t updates_routed_ = 0;
};

}  // namespace bgpbh::stream
