// Shard routing for the streaming pipeline.
//
// Engine state is keyed by (BGP peer, prefix) and every transition —
// open, implicit close, explicit close — touches exactly one key, so
// partitioning keys across shards by hash preserves the sequential
// engine's semantics exactly.  An UPDATE message may carry several
// prefixes whose keys hash to different shards; the router therefore
// splits each observed update into single-prefix sub-updates and
// routes each to the shard owning its key.  Within one update,
// withdrawn prefixes are emitted before announced ones (the order the
// sequential engine processes them in), and the queues are FIFO, so
// the per-key transition order is identical to sequential replay.
//
// Data plane: the router stores each parsed update exactly once in a
// pooled UpdateBlock and emits 16-byte SubUpdateRefs — it never copies
// the AS path or communities, and in steady state (recycled blocks)
// performs zero heap allocations per update.  The pre-zero-copy
// representation — one fully materialized FeedUpdate per sub-update —
// is kept behind `zero_copy = false` as the A/B slow path
// (PipelineConfig::zero_copy; tests prove event-set equality).
#pragma once

#include <atomic>
#include <cstdint>

#include "bgp/rib.h"
#include "routing/collectors.h"
#include "stream/update_block.h"
#include "util/time.h"

namespace bgpbh::stream {

// Deterministic shard assignment for a (peer, prefix) state key.
std::size_t shard_for(const bgp::PeerKey& peer, const net::Prefix& prefix,
                      std::size_t num_shards);

class ShardRouter {
 public:
  // Blocks a producer keeps locally between pool refills; one pool
  // lock per this many updates instead of per update.
  static constexpr std::size_t kBlockCacheSize = 64;

  // `producer_index` is stamped into every routed block so shard
  // workers can keep per-producer ingest watermarks (src/recovery/).
  ShardRouter(std::size_t num_shards, BlockPool& pool, bool zero_copy = true,
              std::uint32_t producer_index = 0)
      : num_shards_(num_shards),
        pool_(&pool),
        zero_copy_(zero_copy),
        producer_index_(producer_index) {
    cache_.reserve(kBlockCacheSize);
  }

  ~ShardRouter() { release_cached_blocks(); }

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t num_shards() const { return num_shards_; }
  bool zero_copy() const { return zero_copy_; }

  // Original (pre-split) updates seen; the pipeline reports this as
  // updates_processed so merged stats match the sequential engine's.
  // Relaxed atomic: the coordinator cadence thread and session drain
  // checks sample it while the producer thread is routing.
  std::uint64_t updates_routed() const {
    return updates_routed_.load(std::memory_order_relaxed);
  }

  // Splits `fu` into single-prefix sub-updates and calls
  // emit(shard_index, SubUpdateRef) for each.  Withdrawals first.
  // Every emitted ref carries one reference on its block; whoever
  // consumes the ref must release it back to the pool.
  template <typename Emit>
  void route(const routing::FeedUpdate& fu, Emit&& emit) {
    updates_routed_.fetch_add(1, std::memory_order_relaxed);
    const bgp::UpdateBody& body = fu.update.body;
    const std::size_t subs = body.withdrawn.size() + body.announced.size();
    if (subs == 0) return;
    bgp::PeerKey peer{fu.update.peer_ip, fu.update.peer_asn};

    // The producer edge: stamp ingest wall time exactly once.  Updates
    // arriving already stamped (a fabric server re-routing a client's
    // subs) keep their original stamp so e2e latency spans processes.
    const std::uint64_t ingest_ns =
        fu.ingest_ns != 0 ? fu.ingest_ns : util::wall_clock_ns();

    if (!zero_copy_) {
      route_owning(fu, ingest_ns, peer, emit);
      return;
    }

    // Zero-copy fast path: one block holds the parsed update; the copy
    // assignment below reuses the recycled block's vector capacities,
    // so nothing allocates once the pool is warm.
    UpdateBlock* block = next_block();
    block->update = fu;
    block->update.ingest_ns = ingest_ns;
    block->refs.store(static_cast<std::uint32_t>(subs),
                      std::memory_order_relaxed);
    for (std::size_t i = 0; i < body.withdrawn.size(); ++i) {
      emit(shard_for(peer, body.withdrawn[i], num_shards_),
           SubUpdateRef{block, static_cast<std::uint32_t>(i),
                        SubKind::kWithdraw});
    }
    for (std::size_t i = 0; i < body.announced.size(); ++i) {
      emit(shard_for(peer, body.announced[i], num_shards_),
           SubUpdateRef{block, static_cast<std::uint32_t>(i),
                        SubKind::kAnnounce});
    }
  }

 private:
  // A/B slow path: materialize a full single-prefix FeedUpdate per
  // sub-update (deep copies of path and communities — the original,
  // copy-bound data plane).  Workers feed these to the owning engine
  // entry point.
  template <typename Emit>
  void route_owning(const routing::FeedUpdate& fu, std::uint64_t ingest_ns,
                    const bgp::PeerKey& peer, Emit&& emit) {
    const bgp::UpdateBody& body = fu.update.body;
    for (const auto& prefix : body.withdrawn) {
      UpdateBlock* block = next_block();
      materialize_base(fu, *block);
      block->update.ingest_ns = ingest_ns;
      block->update.update.body.withdrawn.push_back(prefix);
      emit(shard_for(peer, prefix, num_shards_),
           SubUpdateRef{block, 0, SubKind::kOwned});
    }
    for (const auto& prefix : body.announced) {
      UpdateBlock* block = next_block();
      materialize_base(fu, *block);
      block->update.ingest_ns = ingest_ns;
      bgp::UpdateBody& sub = block->update.update.body;
      sub.announced.push_back(prefix);
      sub.as_path = body.as_path;
      sub.communities = body.communities;
      sub.next_hop = body.next_hop;
      sub.origin = body.origin;
      emit(shard_for(peer, prefix, num_shards_),
           SubUpdateRef{block, 0, SubKind::kOwned});
    }
  }

  // Collector metadata shared by every sub-update of one update; the
  // block may be recycled, so clear all route attributes explicitly.
  static void materialize_base(const routing::FeedUpdate& fu,
                               UpdateBlock& block) {
    routing::FeedUpdate& sub = block.update;
    sub.platform = fu.platform;
    sub.update.time = fu.update.time;
    sub.update.peer_ip = fu.update.peer_ip;
    sub.update.peer_asn = fu.update.peer_asn;
    sub.update.collector_id = fu.update.collector_id;
    sub.update.body.withdrawn.clear();
    sub.update.body.announced.clear();
    sub.update.body.as_path = bgp::AsPath();
    sub.update.body.communities.clear();
    sub.update.body.next_hop.reset();
    sub.update.body.origin = bgp::Origin::kIgp;
    block.refs.store(1, std::memory_order_relaxed);
  }

  UpdateBlock* next_block() {
    if (cache_.empty()) pool_->acquire_batch(cache_, kBlockCacheSize);
    UpdateBlock* block = cache_.back();
    cache_.pop_back();
    block->producer = producer_index_;
    return block;
  }

 public:
  // Hand locally cached (unused, unreferenced) blocks back to the
  // pool; the pipeline calls this at finish() so in_flight drops to 0.
  void release_cached_blocks() {
    pool_->recycle_batch(cache_);
    cache_.clear();
  }

 private:
  std::size_t num_shards_;
  BlockPool* pool_;
  bool zero_copy_;
  std::uint32_t producer_index_;
  std::vector<UpdateBlock*> cache_;
  std::atomic<std::uint64_t> updates_routed_{0};
};

}  // namespace bgpbh::stream
