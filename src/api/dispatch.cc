#include "api/dispatch.h"

namespace bgpbh::api {

SinkDispatcher::SinkDispatcher(
    std::vector<EventSink*> sinks, LiveGrouper* grouper,
    std::size_t capacity_chunks,
    std::function<stream::EventStore::Snapshot()> snapshot_fn,
    std::size_t snapshot_every_events)
    : sinks_(std::move(sinks)),
      grouper_(grouper),
      capacity_(capacity_chunks == 0 ? 1 : capacity_chunks),
      snapshot_fn_(std::move(snapshot_fn)),
      snapshot_every_(snapshot_every_events) {}

SinkDispatcher::~SinkDispatcher() { stop(); }

void SinkDispatcher::start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { loop(); });
}

void SinkDispatcher::submit(std::span<const core::PeerEvent> events) {
  submit(std::vector<core::PeerEvent>(events.begin(), events.end()));
}

void SinkDispatcher::submit(std::vector<core::PeerEvent>&& events) {
  if (events.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock,
                 [this] { return queue_.size() < capacity_ || stopping_; });
  if (stopping_) return;  // ingest has stopped by contract; nothing to lose
  queue_.push_back(Item{.events = std::move(events), .snapshot = false});
  cv_items_.notify_one();
}

bool SinkDispatcher::request_snapshot() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock,
                 [this] { return queue_.size() < capacity_ || stopping_; });
  if (stopping_) return false;
  queue_.push_back(Item{.events = {}, .snapshot = true});
  cv_items_.notify_one();
  return true;
}

void SinkDispatcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_items_.notify_all();
    cv_space_.notify_all();
  }
  // call_once: concurrent stoppers all block here until the one join
  // finished, so no caller can proceed while the thread still runs.
  std::call_once(join_once_, [this] {
    if (thread_.joinable()) thread_.join();
  });
}

std::uint64_t SinkDispatcher::events_delivered() const {
  return delivered_.load(std::memory_order_relaxed);
}

void SinkDispatcher::loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_items_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and fully drained
      item = std::move(queue_.front());
      queue_.pop_front();
      cv_space_.notify_one();
    }
    deliver(item);
  }
}

void SinkDispatcher::deliver(const Item& item) {
  if (item.snapshot) {
    publish_snapshot();
    return;
  }
  for (const core::PeerEvent& event : item.events) {
    for (EventSink* sink : sinks_) sink->on_event_closed(event);
    if (grouper_) {
      core::PrefixEvent group = grouper_->add(event);
      for (EventSink* sink : sinks_) sink->on_group_updated(group);
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    if (snapshot_every_ > 0 && ++since_snapshot_ >= snapshot_every_) {
      since_snapshot_ = 0;
      publish_snapshot();
    }
  }
}

void SinkDispatcher::publish_snapshot() {
  if (!snapshot_fn_) return;
  stream::EventStore::Snapshot snapshot = snapshot_fn_();
  for (EventSink* sink : sinks_) sink->on_snapshot(snapshot);
}

}  // namespace bgpbh::api
