#include "api/dispatch.h"

#include "telemetry/trace.h"
#include "util/log.h"
#include "util/time.h"

namespace bgpbh::api {

SinkDispatcher::SinkDispatcher(
    std::vector<EventSink*> sinks, LiveGrouper* grouper,
    std::size_t capacity_chunks,
    std::function<stream::EventStore::Snapshot()> snapshot_fn,
    std::size_t snapshot_every_events, telemetry::MetricsRegistry* metrics,
    OverloadPolicy overload, std::chrono::nanoseconds shed_deadline)
    : sinks_(std::move(sinks)),
      grouper_(grouper),
      capacity_(capacity_chunks == 0 ? 1 : capacity_chunks),
      snapshot_fn_(std::move(snapshot_fn)),
      snapshot_every_(snapshot_every_events),
      overload_(overload),
      shed_deadline_(shed_deadline),
      metrics_(metrics) {
  if (!metrics_) return;
  metrics_->describe("api.dispatch.events_submitted",
                     "Closed events accepted into the dispatch queue");
  metrics_->describe("api.dispatch.events_delivered",
                     "Closed events fanned out to every sink");
  metrics_->describe("api.dispatch.deliver_ns",
                     "Sink fan-out latency per queued chunk (ns: all sinks, "
                     "grouper fold, group fan-out)");
  metrics_->describe("api.dispatch.queue_chunks",
                     "Chunks waiting for the dispatch thread");
  metrics_->describe("api.dispatch.lag_events",
                     "Events submitted but not yet delivered (sink lag)");
  metrics_->describe("api.dispatch.sink.events",
                     "Events delivered per registered sink");
  metrics_->describe("api.dispatch.events_shed",
                     "Events dropped while the sink plane was quarantined "
                     "(kShed overload policy only)");
  metrics_->describe("api.dispatch.quarantined",
                     "1 while the sink plane is quarantined for overload");
  metrics_->describe(
      "e2e.delivery_latency_ns",
      "End-to-end delivery latency: wall time from an update's ingest "
      "stamp at the producer edge to its closed event reaching every "
      "sink (ns; unstamped events excluded)");
  submitted_ctr_ = &metrics_->counter("api.dispatch.events_submitted");
  delivered_ctr_ = &metrics_->counter("api.dispatch.events_delivered");
  deliver_hist_ = &metrics_->histogram("api.dispatch.deliver_ns");
  e2e_delivery_hist_ = &metrics_->histogram("e2e.delivery_latency_ns");
  queue_gauge_ = &metrics_->gauge("api.dispatch.queue_chunks");
  lag_gauge_ = &metrics_->gauge("api.dispatch.lag_events");
  shed_ctr_ = &metrics_->counter("api.dispatch.events_shed");
  quarantined_gauge_ = &metrics_->gauge("api.dispatch.quarantined");
  sink_ctrs_.reserve(sinks_.size());
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    sink_ctrs_.push_back(&metrics_->shard_counter("api.dispatch.sink.events", i));
  }
  hook_id_ = metrics_->add_collection_hook([this] {
    const std::uint64_t submitted = submitted_.load(std::memory_order_relaxed);
    const std::uint64_t delivered = delivered_.load(std::memory_order_relaxed);
    submitted_ctr_->set_total(submitted);
    delivered_ctr_->set_total(delivered);
    queue_gauge_->set(static_cast<double>(queue_depth()));
    lag_gauge_->set(static_cast<double>(submitted - delivered));
    shed_ctr_->set_total(events_shed_.load(std::memory_order_relaxed));
    quarantined_gauge_->set(
        quarantined_mirror_.load(std::memory_order_relaxed) ? 1.0 : 0.0);
  });
}

SinkDispatcher::~SinkDispatcher() {
  // A session-owned registry can outlive this dispatcher; a late
  // snapshot must not run our hook against dead members.
  if (metrics_) metrics_->remove_collection_hook(hook_id_);
  stop();
}

void SinkDispatcher::start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { loop(); });
}

void SinkDispatcher::submit(std::span<const core::PeerEvent> events) {
  submit(std::vector<core::PeerEvent>(events.begin(), events.end()));
}

void SinkDispatcher::submit(std::vector<core::PeerEvent>&& events) {
  if (events.empty()) return;
  const std::size_t count = events.size();
  std::unique_lock<std::mutex> lock(mu_);
  if (overload_ == OverloadPolicy::kShed) {
    const auto has_room = [this] {
      return queue_.size() < capacity_ || stopping_;
    };
    if (quarantined_) {
      // Already quarantined: shed immediately (no per-chunk deadline
      // stall — that is the whole point of quarantining).  The
      // dispatch thread lifts the quarantine once it drains the
      // backlog.
      events_shed_.fetch_add(count, std::memory_order_relaxed);
      return;
    }
    if (!cv_space_.wait_for(lock, shed_deadline_, has_room)) {
      quarantined_ = true;
      quarantined_mirror_.store(true, std::memory_order_relaxed);
      quarantines_.fetch_add(1, std::memory_order_relaxed);
      events_shed_.fetch_add(count, std::memory_order_relaxed);
      static util::LogRateLimiter limit(/*per_second=*/0.5, /*burst=*/3.0);
      if (limit.allow()) {
        util::Log(util::LogLevel::kWarn, "dispatch")
            .msg("sink overload deadline exceeded; quarantining sink plane")
            .kv("queue_chunks", queue_.size())
            .kv("events_shed",
                events_shed_.load(std::memory_order_relaxed))
            .kv("suppressed", limit.last_suppressed());
      }
      return;
    }
  } else {
    cv_space_.wait(lock,
                   [this] { return queue_.size() < capacity_ || stopping_; });
  }
  if (stopping_) return;  // ingest has stopped by contract; nothing to lose
  queue_.push_back(Item{.events = std::move(events), .snapshot = false});
  submitted_.fetch_add(count, std::memory_order_relaxed);
  cv_items_.notify_one();
}

bool SinkDispatcher::request_snapshot() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock,
                 [this] { return queue_.size() < capacity_ || stopping_; });
  if (stopping_) return false;
  queue_.push_back(Item{.events = {}, .snapshot = true});
  cv_items_.notify_one();
  return true;
}

bool SinkDispatcher::submit_control(std::function<void()> control) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock,
                 [this] { return queue_.size() < capacity_ || stopping_; });
  if (stopping_) return false;
  queue_.push_back(
      Item{.events = {}, .snapshot = false, .control = std::move(control)});
  cv_items_.notify_one();
  return true;
}

void SinkDispatcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_items_.notify_all();
    cv_space_.notify_all();
  }
  // call_once: concurrent stoppers all block here until the one join
  // finished, so no caller can proceed while the thread still runs.
  std::call_once(join_once_, [this] {
    if (thread_.joinable()) thread_.join();
  });
}

std::uint64_t SinkDispatcher::events_delivered() const {
  return delivered_.load(std::memory_order_relaxed);
}

std::size_t SinkDispatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void SinkDispatcher::loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_items_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and fully drained
      item = std::move(queue_.front());
      queue_.pop_front();
      if (quarantined_ && queue_.empty()) {
        // Backlog drained: the slow sink caught up, lift the
        // quarantine and resume delivering new chunks.
        quarantined_ = false;
        quarantined_mirror_.store(false, std::memory_order_relaxed);
        util::Log(util::LogLevel::kInfo, "dispatch")
            .msg("sink backlog drained; quarantine lifted")
            .kv("events_shed",
                events_shed_.load(std::memory_order_relaxed));
      }
      cv_space_.notify_one();
    }
    deliver(item);
  }
}

void SinkDispatcher::deliver(const Item& item) {
  if (item.control) {
    // Checkpoint cut: runs after every chunk queued before it was
    // delivered, so the callback observes the grouper exactly at the
    // cut.
    item.control();
    return;
  }
  if (item.snapshot) {
    publish_snapshot();
    return;
  }
  telemetry::ScopedSpan span(deliver_hist_,
                             metrics_ ? &metrics_->trace() : nullptr,
                             "dispatch.deliver");
  for (const core::PeerEvent& event : item.events) {
    for (std::size_t i = 0; i < sinks_.size(); ++i) {
      sinks_[i]->on_event_closed(event);
      if (!sink_ctrs_.empty()) sink_ctrs_[i]->add();
    }
    if (e2e_delivery_hist_ && event.ingest_ns != 0) {
      const std::uint64_t now = util::wall_clock_ns();
      if (now > event.ingest_ns) {
        e2e_delivery_hist_->record(now - event.ingest_ns);
      }
    }
    if (grouper_) {
      core::PrefixEvent group = grouper_->add(event);
      for (EventSink* sink : sinks_) sink->on_group_updated(group);
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    if (snapshot_every_ > 0 && ++since_snapshot_ >= snapshot_every_) {
      since_snapshot_ = 0;
      publish_snapshot();
    }
  }
}

void SinkDispatcher::publish_snapshot() {
  if (!snapshot_fn_) return;
  stream::EventStore::Snapshot snapshot = snapshot_fn_();
  for (EventSink* sink : sinks_) sink->on_snapshot(snapshot);
}

}  // namespace bgpbh::api
