// AnalysisSession: the one consumer surface of the library.
//
// The paper's measurement loop (GiotsasRSFDB17 §4–§9) — ingest updates,
// infer per-peer events, correlate them into §9 prefix-event groups,
// query the result — used to be split across two disjoint surfaces:
// the batch core::Study (full-window replay, aggregates at the end)
// and the live stream::StreamPipeline (sharded ingestion, empty
// EventStore until finalize()).  AnalysisSession subsumes both behind
// one object model:
//
//   api::SessionConfig cfg;                 // source + shards + dictionary
//   cfg.study.window_start = ...;
//   api::AnalysisSession session(cfg);
//   session.subscribe(my_sink);             // EventSink callbacks
//   session.run();                          // batch or live replay
//   auto events = session.events(api::EventQuery().between(t0, t1));
//   auto groups = session.grouped_events(); // §9, incremental
//
// Four source modes, one interaction model:
//   * kBatch      — Study replay through one engine; sinks are fed the
//                   closed events in close order when run() completes.
//   * kLiveReplay — the same study workload streamed through the
//                   sharded zero-copy pipeline; sinks fire while the
//                   shard workers ingest.  run() = start + feed + close.
//   * kLiveFeed   — the caller pushes updates (or drains an
//                   UpdateSource) and closes explicitly: the
//                   production monitoring shape.
//   * kReopen     — no ingestion at all: queries served from the
//                   persistent segment log a previous session wrote to
//                   `persist_dir` (src/storage/) — the restart-
//                   survival half of the persistence story.  Any mode
//                   with `persist_dir` set spills its closed events
//                   there; `resume` additionally merges the
//                   directory's prior contents into every query (the
//                   live+disk view).
//
// Whatever the mode, the consumer surface is identical: EventSink
// subscriptions (delivered off the hot path through a bounded
// SinkDispatcher — zero sinks means the pipeline hot path is
// untouched), EventQuery reads (identical results from live per-shard
// lanes or the finalized/batch event set, canonically sorted), and the
// incremental §9 layers (prefix_events()/grouped_events(), maintained
// by the built-in LiveGrouper and byte-equivalent to batch
// correlate()+group_events() on the same stream).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "api/dispatch.h"
#include "api/health.h"
#include "fabric/router.h"
#include "api/live_grouper.h"
#include "api/query.h"
#include "api/sink.h"
#include "core/study.h"
#include "recovery/coordinator.h"
#include "recovery/quarantine.h"
#include "recovery/watchdog.h"
#include "storage/segment_reader.h"
#include "storage/spill.h"
#include "stream/pipeline.h"
#include "stream/source.h"
#include "telemetry/metrics.h"
#include "util/retry.h"

namespace bgpbh::api {

struct SessionConfig {
  enum class Mode {
    kBatch,       // sequential Study replay, sinks fed at run()
    kLiveReplay,  // study workload through the sharded live pipeline
    kLiveFeed,    // caller-fed live pipeline: start()/push()/close()
    kReopen,      // serve queries from persist_dir's segment log only
  };
  Mode mode = Mode::kLiveReplay;

  // Substrates + workload + window + engine ablations.  The study's
  // table-dump episodes seed §4.2 initialization in every mode.
  core::StudyConfig study;

  // Live data plane shape (ignored in kBatch); forwarded to
  // stream::PipelineConfig.
  std::size_t num_shards = 4;
  std::size_t num_producers = 1;
  std::size_t queue_capacity = 4096;
  std::size_t drain_batch = 256;
  std::size_t batch_size = 64;
  bool zero_copy = true;

  // §9 grouping parameters (LiveGrouper; the correlate tolerance must
  // not exceed the grouping timeout — a shorter timeout is raised to
  // the tolerance, and debug builds assert).
  util::SimTime correlate_tolerance = core::kCorrelateTolerance;
  util::SimTime group_timeout = core::kGroupTimeout;

  // Sink dispatch: bounded queue depth in sealed chunks (a full queue
  // blocks ingest — backpressure, never loss), and an optional
  // snapshot cadence (every N delivered events; 0 = only final/manual).
  std::size_t sink_queue_chunks = 256;
  std::size_t snapshot_every_events = 0;

  // ---- persistence (src/storage/) --------------------------------------
  // Non-empty: closed events are spilled to an append-only segment log
  // in this directory.  Live modes spill every sealed store chunk
  // through a storage::SpillWriter (bounded queue + one writer thread,
  // so segment I/O never runs on an ingesting thread); kBatch spills
  // the study's event set at run(); kReopen serves queries from the
  // directory without running anything.  Opening recovers and reseals
  // any torn segment a crashed writer left behind; a directory that
  // cannot be created/written throws std::runtime_error from the
  // constructor (silently running a persistence-configured monitor
  // without persistence is the one unacceptable failure mode).
  std::string persist_dir;
  // Live/batch modes with persist_dir: also open the segments already
  // in the directory (prior sessions') and serve events()/count()/
  // snapshot() as the MERGED live+disk view.  The disk snapshot is
  // taken at construction, before this session writes anything, so its
  // own spill output is never double-counted.
  bool resume = false;
  // Segment roll / sparse-index / fsync / retention knobs.
  storage::SegmentConfig segment;
  // Bounded spill queue depth in chunks (full = ingest blocks:
  // backpressure, never loss — the pipeline-wide contract).
  std::size_t spill_queue_chunks = 256;

  // ---- fault tolerance (src/fault/ exercises these) --------------------
  // Spill-writer disk-fault handling: transient append/sync failures
  // retry `spill_retry.max_attempts` times with backoff; past that the
  // writer degrades to memory-only (health() reports kDegraded, the
  // storage.spill.degraded gauge alarms) and probe writes at the same
  // backoff cadence re-arm it automatically when the disk recovers.
  util::RetryPolicy spill_retry;
  // Sink overload policy.  kBlock (default) keeps the session-wide
  // backpressure-never-drop contract; kShed bounds how long ingest can
  // stall on a stuck sink to `sink_shed_deadline`, then quarantines
  // the sink plane with exact shed accounting (dispatch events_shed).
  OverloadPolicy sink_overload = OverloadPolicy::kBlock;
  std::chrono::nanoseconds sink_shed_deadline = std::chrono::milliseconds(100);

  // ---- crash recovery & supervision (src/recovery/) --------------------
  // > 0 (live modes with persist_dir): cut a crash-consistent
  // checkpoint of all open state — per-shard ActiveState tables,
  // per-producer ingest watermarks, §9 grouper layers, the durable log
  // position — every this many accepted updates.  Cuts happen at a
  // worker rendezvous off the hot path; a SIGKILL between cuts loses
  // no durable state (see `recover`).  0 disables the cadence;
  // checkpoint_now() still works when persist_dir is set.
  std::uint64_t checkpoint_every = 0;
  // Live modes with persist_dir: on construction, load the newest
  // valid checkpoint from persist_dir (torn/corrupt files fall back to
  // the previous one), truncate the segment log to the checkpoint's
  // durable position, restore every shard's open state + the grouper
  // layers, and arm each producer to skip its already-processed
  // sub-update prefix.  The caller must then re-feed the SAME source
  // with the SAME producer partition; routing determinism makes the
  // replay exactly-once.  Implies the resume-style merged live+disk
  // query view (pre-crash closed events are served from the log).
  // Shard/producer counts must match the checkpoint's or the
  // constructor throws.  No checkpoint in the directory = fresh start.
  bool recover = false;
  // Watchdog (supervision plane): a shard whose heartbeat freezes for
  // `stall_deadline` while its queue holds work degrades health() and
  // raises the recovery.watchdog.stalled_shards alarm gauge.  0
  // disables the watchdog thread.
  std::chrono::milliseconds stall_deadline = std::chrono::seconds(2);
  std::chrono::milliseconds watchdog_poll = std::chrono::milliseconds(50);
  // Poison-update quarantine: push() rejects announcements whose AS
  // path / community attribute exceeds these (counted per producer,
  // never silent; see recovery::PoisonQuarantine).  A producer
  // exceeding `poison_error_budget` rejections degrades health().
  std::size_t max_as_path_hops = 1024;
  std::size_t max_communities = 4096;
  std::uint64_t poison_error_budget = 100;

  // ---- multi-process shard fabric (src/fabric/) -------------------------
  // Non-empty endpoint list + kLiveFeed: this session becomes a fabric
  // CLIENT.  num_shards is reinterpreted as the global slot count,
  // every push is split/routed to the slot's shard server
  // (fabric::FabricRouter), and queries scatter-gather the remote
  // event sets — byte-identical to the in-process plane.  Fabric mode
  // requires persist_dir empty (persistence happens server-side),
  // recover false, and study.table_dump_episodes == 0 (a table dump
  // would be folded once per remote slot session); violations throw
  // std::logic_error from the constructor.  The in-process hot path is
  // untouched when this is empty.
  fabric::FabricConfig fabric;
  // Server-side recovery variant (fabric::ShardServer slot sessions):
  // restore the checkpoint as `recover` does, but do NOT arm producer
  // replay-skips — the feeder sends only the post-cut suffix (the
  // fabric client resumes each lane from the recovered accepted
  // index), so skipping would drop real updates.
  bool recover_suffix_feed = false;

  // ---- tracing (telemetry/trace.h) --------------------------------------
  // Slow-span trace ring configuration, applied to this session's
  // registry at construction: off by default with a 1 ms threshold and
  // 256-record capacity (the historical hardcoded values).  Enable it
  // to capture slow-batch/slow-RPC forensics; fabric clients and shard
  // servers additionally use the ring for cross-process trace-id
  // stitching (fleet_telemetry()).
  telemetry::TraceConfig trace;
};

class AnalysisSession {
 public:
  explicit AnalysisSession(SessionConfig config = {});
  ~AnalysisSession();

  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  // ---- substrates (every mode except kReopen) --------------------------
  // A kReopen session reads events straight off the segment log and
  // never builds the study substrates (no graph, no dictionary, no
  // workload) — that is what makes reopening an archive cheap.  These
  // accessors assert on it.
  const core::Study& study() const {
    assert(study_ && "kReopen sessions build no study substrates");
    return *study_;
  }
  const topology::AsGraph& graph() const { return study().graph(); }
  const topology::Registry& registry() const { return study().registry(); }
  const topology::CustomerCones& cones() const { return study().cones(); }
  const dictionary::Corpus& corpus() const { return study().corpus(); }
  const dictionary::BlackholeDictionary& dictionary() const {
    return study().dictionary();
  }
  const routing::CollectorFleet& fleet() const { return study().fleet(); }
  routing::PropagationEngine& propagation() {
    assert(study_ && "kReopen sessions build no study substrates");
    return study_->propagation();
  }
  const SessionConfig& config() const { return config_; }

  // ---- subscriptions ---------------------------------------------------
  // Borrowed; must outlive the session.  Register before run()/start():
  // the dispatcher snapshots the sink list when delivery begins, so a
  // late subscribe is refused — false is returned (and debug builds
  // assert) instead of silently never delivering.
  bool subscribe(EventSink& sink);

  // Add an external component (e.g. a fault::ReconnectingSource
  // feeding this session) to the health() view.  Same rules as
  // subscribe(): borrowed, must outlive the session, register before
  // run()/start() — late registration is refused with false.
  bool register_health(const HealthReporter& reporter);

  // ---- execution -------------------------------------------------------
  // Lifecycle misuse is DEFINED, not undefined: calling a live-mode
  // entry point (start/push/flush/feed/close) on a kBatch or kReopen
  // session, or run() on a kLiveFeed session, throws std::logic_error
  // — a programming error, loud in release builds too.  After close(),
  // push()/feed() return false/0 (nothing accepted), flush()/close()
  // are no-ops, and a second run() or start() is a no-op: a closed
  // session quietly refuses work instead of corrupting state.

  // kBatch / kLiveReplay: runs the configured study window end to end
  // (including sink delivery and close).  Idempotent.  kReopen: no-op
  // (an archive view is born closed and queryable).
  void run();

  // kLiveFeed: start the pipeline (idempotent and safe to race —
  // implied by the first push, concurrent first pushes from several
  // producer threads block until one of them finished the start), feed
  // updates, close at the archive cut-off.
  void start();
  bool push(const routing::FeedUpdate& update, std::size_t producer = 0);
  void flush(std::size_t producer = 0);
  std::uint64_t feed(stream::UpdateSource& source);
  void close(util::SimTime end_time);
  bool closed() const { return closed_; }

  // ---- crash recovery & supervision (src/recovery/) --------------------
  // Cut one checkpoint now (live modes with persist_dir).  False when
  // checkpointing is not wired or the cut was abandoned (shutdown
  // race, degraded disk, failed write) — the previous checkpoint then
  // remains authoritative.
  bool checkpoint_now();
  // Block until every update accepted so far is fully processed (live:
  // producers flushed and shard queues drained; fabric: every lane's
  // APPEND acked by its shard server).  At a drained point the
  // per-producer checkpoint watermark sums are exact accepted counts —
  // the invariant the fabric's exactly-once accounting rests on.
  void drain();
  // True when this session restored state from a checkpoint, and the
  // seq of the checkpoint it restored (0 otherwise).
  bool recovered() const { return recovered_; }
  std::uint64_t recovered_checkpoint_seq() const { return recovered_seq_; }
  // Per-producer sub-update counts the restored checkpoint covers
  // (empty when recovered() is false).  A fabric shard server reports
  // these in HELLO so clients resume each lane exactly past them.
  const std::vector<std::uint64_t>& recovered_updates_accepted() const {
    return recovered_totals_;
  }
  std::uint64_t checkpoints_written() const;
  // Updates rejected by the poison quarantine, across all producers.
  std::uint64_t poison_rejected() const;

  // ---- health (api/health.h) -------------------------------------------
  // Point-in-time health of every component: the spill writer
  // ("spill"), the sink dispatcher ("dispatch"), and every registered
  // HealthReporter.  Overall state is the worst component's.  Also
  // exported as the api.session.health gauge (0/1/2) on every
  // telemetry snapshot.  Callable from any thread, any time.
  SessionHealth health() const;
  // Exact-loss accounting shortcuts (0 when the component is absent):
  // events dropped by a quarantined sink plane, and spill events lost
  // to a disk fault that persisted through close().
  std::uint64_t events_shed() const;
  std::uint64_t events_lost() const;

  // ---- queries ---------------------------------------------------------
  // Peer-granularity events matching `query`, canonically sorted.
  // Identical result sets from live lanes (mid-run) and the finalized
  // store; in kBatch, from the study's event set.
  std::vector<core::PeerEvent> events(const EventQuery& query = {}) const;
  std::size_t count(const EventQuery& query = {}) const;

  // §9 layers.  Live modes with sinks: the incremental LiveGrouper
  // state (what subscribers have been told so far).  Otherwise:
  // computed from the events ingested so far — same result, the two
  // paths are equivalence-tested.
  std::vector<core::PrefixEvent> prefix_events() const;
  std::vector<core::PrefixEvent> grouped_events() const;

  // Aggregate counters now (live: lane-consistent store snapshot).
  stream::EventStore::Snapshot snapshot() const;
  // Queue an on_snapshot delivery to the sinks, ordered with the event
  // stream (delivered inline when no dispatch thread is running).
  void publish_snapshot();

  // Engine statistics; valid after run() (batch) / close() (live).
  core::EngineStats stats() const;

  // Live gauges.
  std::size_t open_event_count() const;
  // Events force-closed at the close() cut-off — "still active at the
  // end of the archive" (always 0 for kBatch: Study counts those
  // within its own event set).
  std::size_t open_at_close() const;
  std::uint64_t updates_pushed() const;
  std::size_t num_shards() const;

  // The fabric router when this session is a fabric client (null
  // otherwise): rebalance (migrate/add_endpoint) and fleet shutdown
  // live here.
  fabric::FabricRouter* fabric() { return fabric_.get(); }

  // ---- persistence gauges (zero / null without persist_dir) ------------
  // Events durably appended to the segment log so far.
  std::uint64_t events_persisted() const;
  std::uint64_t segments_sealed() const;
  std::uint64_t persisted_bytes() const;
  // The disk snapshot a resume/kReopen session opened (null otherwise).
  const storage::SegmentSet* disk() const { return disk_.get(); }

  // ---- telemetry (src/telemetry/) --------------------------------------
  // The session-wide metrics registry: every layer this session owns
  // (pipeline, shard workers, queues, sink dispatcher, spill writer)
  // records into it.  snapshot() it at any time — recording proceeds
  // concurrently — and render with telemetry::to_prometheus() /
  // telemetry::to_json_object().  The trace ring
  // (telemetry().trace().configure(...)) is off by default.
  // (Fully qualified types: the accessor name shadows the namespace
  // inside this class scope.)
  bgpbh::telemetry::MetricsRegistry& telemetry() { return metrics_; }
  const bgpbh::telemetry::MetricsRegistry& telemetry() const {
    return metrics_;
  }

 private:
  bool reopen() const { return config_.mode == SessionConfig::Mode::kReopen; }
  bool live() const {
    return config_.mode == SessionConfig::Mode::kLiveReplay ||
           config_.mode == SessionConfig::Mode::kLiveFeed;
  }
  bool default_grouping() const {
    return config_.correlate_tolerance == core::kCorrelateTolerance &&
           config_.group_timeout == core::kGroupTimeout;
  }
  // True when the dispatch thread owns sink delivery and grouper_ is
  // being fed.  Races with a concurrent lazy start are resolved by
  // reading started_ (release-stored after the dispatcher is fully
  // wired) before touching dispatcher_.
  bool dispatching() const;
  void start_dispatcher();
  void deliver_batch_results();
  // Throws std::logic_error naming `what` when the mode is not live.
  void require_live(const char* what) const;
  stream::EventStore::Snapshot snapshot_of(
      std::span<const core::PeerEvent> events) const;

  SessionConfig config_;
  // Declared before every component that registers instruments or
  // collection hooks (pipeline, dispatcher, spill writer): destruction
  // runs in reverse order, so the registry outlives them all and their
  // hook removal in ~StreamPipeline/~SinkDispatcher/~SpillWriter always
  // targets a live registry.
  bgpbh::telemetry::MetricsRegistry metrics_;
  std::unique_ptr<core::Study> study_;
  LiveGrouper grouper_;
  std::vector<EventSink*> sinks_;
  std::vector<const HealthReporter*> health_reporters_;
  bgpbh::telemetry::Gauge* health_gauge_ = nullptr;
  std::uint64_t health_hook_ = 0;
  // Persistence: the spill writer receives every sealed store chunk
  // (live) or the study's events (batch); disk_ is the point-in-time
  // snapshot of the directory's pre-existing segments that resume /
  // kReopen queries merge in.
  std::unique_ptr<storage::SpillWriter> spill_;
  std::unique_ptr<storage::SegmentSet> disk_;
  stream::EventStore::Snapshot disk_snapshot_;  // folded once at open
  bool disk_has_any_ = false;
  // Dispatcher before pipeline: the pipeline's destructor joins shard
  // workers that may be parked in the dispatcher's bounded queue, so
  // the dispatcher must be destroyed (stopped) after the pipeline.
  std::unique_ptr<SinkDispatcher> dispatcher_;
  std::unique_ptr<stream::StreamPipeline> pipeline_;
  // Recovery plane, declared after pipeline_ so destruction stops the
  // coordinator/watchdog threads (whose hooks read pipeline_, spill_,
  // dispatcher_) while those members are still alive.
  std::unique_ptr<recovery::PoisonQuarantine> quarantine_;
  std::unique_ptr<recovery::Watchdog> watchdog_;
  std::unique_ptr<recovery::CheckpointCoordinator> coordinator_;
  // Fabric client plane (replaces pipeline_/spill_/dispatcher_ when
  // config_.fabric.enabled()).
  std::unique_ptr<fabric::FabricRouter> fabric_;
  bool recovered_ = false;
  std::uint64_t recovered_seq_ = 0;
  std::vector<std::uint64_t> recovered_totals_;
  // One-shot start: call_once makes racing first pushes block until
  // the winner has installed the dispatcher + store listener, so no
  // update can reach a worker before the subscription layer is wired.
  std::once_flag start_once_;
  std::atomic<bool> started_{false};
  bool ran_ = false;
  bool closed_ = false;
};

}  // namespace bgpbh::api
