#include "api/live_grouper.h"

namespace bgpbh::api {

LiveGrouper::LiveGrouper(util::SimTime tolerance, util::SimTime timeout)
    : grouper_(tolerance, timeout) {}

void LiveGrouper::on_event_closed(const core::PeerEvent& event) { add(event); }

core::PrefixEvent LiveGrouper::add(const core::PeerEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  return grouper_.add(event);
}

std::vector<core::PrefixEvent> LiveGrouper::correlated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grouper_.correlated();
}

std::vector<core::PrefixEvent> LiveGrouper::grouped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grouper_.grouped();
}

std::size_t LiveGrouper::num_peer_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grouper_.num_peer_events();
}

std::size_t LiveGrouper::num_grouped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grouper_.num_grouped();
}

}  // namespace bgpbh::api
