// EventSink: the subscription half of the public AnalysisSession API.
//
// Sinks observe the measurement loop of GiotsasRSFDB17 §4–§9 as it
// happens: a peer-granularity blackholing event closing (§4.2), the §9
// prefix-event group that absorbs it changing shape, and periodic
// aggregate snapshots.  The session delivers every callback on ONE
// dedicated dispatch thread, decoupled from the shard workers by a
// bounded queue (api::SinkDispatcher): a slow sink never adds latency
// to the ingest hot path, and if it falls a full queue behind, the
// pipeline's backpressure chain stalls rather than drops — a sink sees
// every closed event exactly once.
//
// Within one (peer, prefix) key, events arrive in close order; across
// keys the interleaving follows shard drain order.  Default
// implementations are no-ops so a sink overrides only what it needs.
#pragma once

#include "core/events.h"
#include "stream/event_store.h"

namespace bgpbh::api {

class EventSink {
 public:
  virtual ~EventSink() = default;

  // One peer-granularity event closed (explicit withdrawal, implicit
  // timeout, or force-closed at the archive cut-off).
  virtual void on_event_closed(const core::PeerEvent& event) { (void)event; }

  // The §9 group (prefix event at the grouping timeout) that absorbed
  // the latest closed event — a new group, or an existing one extended
  // or merged.  Fired after the corresponding on_event_closed.
  virtual void on_group_updated(const core::PrefixEvent& group) {
    (void)group;
  }

  // Aggregate counters at one instant: on the configured cadence, on
  // AnalysisSession::publish_snapshot(), and once at close.
  virtual void on_snapshot(const stream::EventStore::Snapshot& snapshot) {
    (void)snapshot;
  }
};

}  // namespace bgpbh::api
