#include "api/query.h"

namespace bgpbh::api {

EventQuery& EventQuery::between(util::SimTime t0, util::SimTime t1) {
  window_ = {t0, t1};
  return *this;
}

EventQuery& EventQuery::provider(core::ProviderRef p) {
  provider_ = p;
  return *this;
}

EventQuery& EventQuery::provider_asn(bgp::Asn asn) {
  return provider(core::ProviderRef{.is_ixp = false, .asn = asn, .ixp_id = 0});
}

EventQuery& EventQuery::ixp(std::uint32_t ixp_id) {
  // The route-server ASN half of the ref varies per IXP; match on the
  // IXP identity alone via a predicate instead of the full ref.
  return where([ixp_id](const core::PeerEvent& e) {
    return e.provider.is_ixp && e.provider.ixp_id == ixp_id;
  });
}

EventQuery& EventQuery::platform(routing::Platform p) {
  platform_ = p;
  return *this;
}

EventQuery& EventQuery::prefix(net::Prefix p) {
  prefix_ = p;
  return *this;
}

EventQuery& EventQuery::within(net::Prefix supernet) {
  supernet_ = supernet;
  return *this;
}

EventQuery& EventQuery::user(bgp::Asn asn) {
  user_ = asn;
  return *this;
}

EventQuery& EventQuery::where(
    std::function<bool(const core::PeerEvent&)> predicate) {
  predicates_.push_back(std::move(predicate));
  return *this;
}

bool EventQuery::matches(const core::PeerEvent& e) const {
  if (window_ &&
      !core::overlaps_window(e.start, e.end, window_->first, window_->second)) {
    return false;
  }
  if (provider_ && e.provider != *provider_) return false;
  if (platform_ && e.platform != *platform_) return false;
  if (prefix_ && e.prefix != *prefix_) return false;
  if (supernet_ && !supernet_->covers(e.prefix)) return false;
  if (user_ && e.user != *user_) return false;
  for (const auto& pred : predicates_) {
    if (!pred(e)) return false;
  }
  return true;
}

}  // namespace bgpbh::api
