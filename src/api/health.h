// Session health plane: one place a consumer (or an operator's
// dashboard, via the api.session.health gauge) can ask "is this
// session fully healthy, limping, or dead?" and get per-component
// reasons instead of spelunking counters.
//
// The state machine is deliberately tiny and monotone per severity:
//
//   kHealthy   every component nominal
//   kDegraded  still producing correct output, but something is in a
//              recovery loop — a collector is disconnected and being
//              retried, the spill writer fell back to memory-only, a
//              slow sink is quarantined with shed accounting
//   kHalted    a component gave up permanently (reconnect attempts
//              exhausted, parked spill events dropped at stop)
//
// A session's overall state is the worst of its components'.
// Components are the built-in planes ("spill", "dispatch") plus any
// HealthReporter registered with AnalysisSession::register_health()
// (the fault/ source adapters implement it), so ingest-side health
// composes into the same view.  Degraded/halted NEVER means silent
// loss: each reason carries the exact shed/gap/lost accounting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bgpbh::api {

enum class HealthState : int { kHealthy = 0, kDegraded = 1, kHalted = 2 };

inline const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kHalted: return "halted";
  }
  return "unknown";
}

inline HealthState worse(HealthState a, HealthState b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

struct ComponentHealth {
  std::string component;
  HealthState state = HealthState::kHealthy;
  std::string reason;  // empty when healthy
};

struct SessionHealth {
  HealthState state = HealthState::kHealthy;  // worst component state
  std::vector<ComponentHealth> components;

  const ComponentHealth* find(std::string_view component) const {
    for (const auto& c : components) {
      if (c.component == component) return &c;
    }
    return nullptr;
  }
};

// Implemented by anything that wants to show up in a session's health
// view (e.g. fault::ReconnectingSource).  component_health() must be
// callable from any thread at any time while registered — report from
// atomics, not from state the data path is mutating.
class HealthReporter {
 public:
  virtual ~HealthReporter() = default;
  virtual ComponentHealth component_health() const = 0;
};

}  // namespace bgpbh::api
