// EventQuery: the composable read half of the public AnalysisSession
// API.  One builder expresses every event filter the paper's analyses
// use — observation window, blackholing provider, collector platform,
// exact prefix or supernet, blackholing user, arbitrary predicate —
// and the session evaluates it with identical semantics against the
// batch event set, the live per-shard store lanes, and the finalized
// store (the lane-consistent scan in stream::EventStore::query).
//
//   auto events = session.events(api::EventQuery()
//                                    .between(t0, t1)
//                                    .platform(routing::Platform::kRis)
//                                    .within(*net::Prefix::parse("20.0.0.0/8"))
//                                    .where([](const core::PeerEvent& e) {
//                                      return e.explicit_withdrawal;
//                                    }));
//
// All filters AND together; an empty query matches everything.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/events.h"

namespace bgpbh::api {

class EventQuery {
 public:
  EventQuery() = default;

  // Events overlapping [t0, t1) — core::overlaps_window, the same rule
  // as Study::events_in and EventStore::events_in.
  EventQuery& between(util::SimTime t0, util::SimTime t1);

  // Events of one blackholing provider (ISP or IXP).
  EventQuery& provider(core::ProviderRef p);
  EventQuery& provider_asn(bgp::Asn asn);  // ISP shorthand
  EventQuery& ixp(std::uint32_t ixp_id);   // IXP shorthand

  // Events observed on one collector platform.
  EventQuery& platform(routing::Platform p);

  // Exact blackholed prefix.
  EventQuery& prefix(net::Prefix p);
  // Any blackholed prefix inside `supernet` (e.g. one customer block).
  EventQuery& within(net::Prefix supernet);

  // Events triggered by one blackholing user AS.
  EventQuery& user(bgp::Asn asn);

  // Arbitrary predicate; may be chained several times.
  EventQuery& where(std::function<bool(const core::PeerEvent&)> predicate);

  bool matches(const core::PeerEvent& event) const;

 private:
  std::optional<std::pair<util::SimTime, util::SimTime>> window_;
  std::optional<core::ProviderRef> provider_;
  std::optional<routing::Platform> platform_;
  std::optional<net::Prefix> prefix_;
  std::optional<net::Prefix> supernet_;
  std::optional<bgp::Asn> user_;
  std::vector<std::function<bool(const core::PeerEvent&)>> predicates_;
};

}  // namespace bgpbh::api
