// SinkDispatcher: bounded hand-off between the ingest hot path and the
// registered EventSinks.
//
// Shard workers seal closed-event chunks into EventStore lanes; the
// store's chunk listener moves its copy of each chunk into this
// dispatcher's bounded queue and returns — that one copy (made by the
// store, after the chunk is counted into its lane) is the entire
// hot-path cost of the subscription layer.  One dedicated dispatch
// thread drains the
// queue and, per event, calls every sink's on_event_closed, folds the
// event into the session's LiveGrouper, and fans the updated §9 group
// out through on_group_updated.  Callbacks therefore run strictly
// single-threaded, in per-lane ingest order.
//
// Backpressure, not loss: with the default OverloadPolicy::kBlock,
// submit() blocks while the queue is full, so a sink that falls
// arbitrarily far behind stalls the pipeline's ingest chain (queue ->
// worker -> producer) instead of dropping events.  Every closed event
// is delivered exactly once; stop() drains whatever is queued before
// joining.
//
// OverloadPolicy::kShed is the opt-in escape hatch for deployments
// where one stuck consumer must not stall ingest forever: submit()
// waits at most `shed_deadline` for room; on timeout the sink plane is
// QUARANTINED — the chunk and every subsequent one are dropped with an
// exact events_shed() count (never silently) until the dispatch thread
// has drained the backlog, at which point delivery resumes.  The
// session health plane reports the quarantine as kDegraded.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "api/live_grouper.h"
#include "api/sink.h"
#include "core/events.h"
#include "stream/event_store.h"
#include "telemetry/metrics.h"

namespace bgpbh::api {

// What submit() does when the dispatch queue stays full.
enum class OverloadPolicy : int {
  kBlock = 0,  // wait forever: backpressure, never loss (default)
  kShed = 1,   // wait shed_deadline, then quarantine + count-and-drop
};

class SinkDispatcher {
 public:
  // `sinks` are borrowed and must outlive the dispatcher; `grouper`
  // (optional) receives every event and powers on_group_updated.
  // `snapshot_fn` supplies the snapshot for on_snapshot deliveries;
  // `snapshot_every_events > 0` additionally publishes one every that
  // many delivered events.  `metrics` (optional, must outlive the
  // dispatcher) wires api.dispatch.* instruments: submit/deliver
  // counters, a per-chunk delivery-latency histogram, per-sink
  // delivered counters, and hook-sampled queue depth / delivery lag.
  // `overload` / `shed_deadline` pick the full-queue behavior (see the
  // file comment); the defaults preserve block-never-drop.
  SinkDispatcher(std::vector<EventSink*> sinks, LiveGrouper* grouper,
                 std::size_t capacity_chunks,
                 std::function<stream::EventStore::Snapshot()> snapshot_fn,
                 std::size_t snapshot_every_events,
                 telemetry::MetricsRegistry* metrics = nullptr,
                 OverloadPolicy overload = OverloadPolicy::kBlock,
                 std::chrono::nanoseconds shed_deadline =
                     std::chrono::milliseconds(100));
  ~SinkDispatcher();

  SinkDispatcher(const SinkDispatcher&) = delete;
  SinkDispatcher& operator=(const SinkDispatcher&) = delete;

  void start();

  // Enqueue a chunk for delivery; blocks while full (never drops).
  // Safe from any number of ingesting threads.  The span overload
  // copies; the vector overload takes ownership (the store listener's
  // hand-off path — no second copy).
  void submit(std::span<const core::PeerEvent> events);
  void submit(std::vector<core::PeerEvent>&& events);

  // Queue an on_snapshot delivery (ordered with the event stream).
  // Returns false — nothing queued — once stop() has begun; the caller
  // delivers inline instead (the dispatch thread is gone, so there is
  // nothing to race with).
  bool request_snapshot();

  // Queue an arbitrary control callback, ordered with the event
  // stream: it runs on the dispatch thread after every chunk submitted
  // before this call and before every one submitted after.  The
  // checkpoint coordinator uses it to capture the LiveGrouper exactly
  // at the cut (src/recovery/).  Returns false once stop() has begun —
  // the callback is then NOT queued and never runs.
  bool submit_control(std::function<void()> control);

  // Drain everything queued, deliver it, then join the thread.
  // Idempotent and safe to race: every caller blocks until the
  // dispatch thread has actually exited, so after stop() returns it is
  // safe to invoke the sinks from the calling thread.  submit() after
  // stop() is rejected (dropping nothing — callers stop ingesting
  // first by contract).
  void stop();

  std::uint64_t events_delivered() const;

  // Chunks waiting for the dispatch thread (telemetry sample).
  std::size_t queue_depth() const;

  // kShed accounting: events dropped while quarantined (exact), and
  // whether the sink plane is currently quarantined.  Always 0/false
  // under kBlock.
  std::uint64_t events_shed() const {
    return events_shed_.load(std::memory_order_relaxed);
  }
  bool quarantined() const {
    return quarantined_mirror_.load(std::memory_order_relaxed);
  }
  // Times the sink plane entered quarantine.
  std::uint64_t times_quarantined() const {
    return quarantines_.load(std::memory_order_relaxed);
  }

 private:
  struct Item {
    std::vector<core::PeerEvent> events;  // empty => snapshot/control
    bool snapshot = false;
    std::function<void()> control;  // checkpoint cut callback, if set
  };

  void loop();
  void deliver(const Item& item);
  void publish_snapshot();

  std::vector<EventSink*> sinks_;
  LiveGrouper* grouper_;
  std::size_t capacity_;
  std::function<stream::EventStore::Snapshot()> snapshot_fn_;
  std::size_t snapshot_every_;
  OverloadPolicy overload_;
  std::chrono::nanoseconds shed_deadline_;

  mutable std::mutex mu_;
  std::condition_variable cv_space_;  // producers wait for room
  std::condition_variable cv_items_;  // dispatch thread waits for work
  std::deque<Item> queue_;
  bool stopping_ = false;
  bool quarantined_ = false;  // guarded by mu_; mirror below for readers
  std::atomic<bool> quarantined_mirror_{false};
  std::atomic<std::uint64_t> events_shed_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  // Counters touched by the dispatch thread without mu_ (producers may
  // be parked on the mutex; delivery must not contend per event).
  // delivered_ bumps per event so snapshot functions can read an
  // up-to-the-callback progress count.
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> submitted_{0};  // events accepted into the queue
  std::uint64_t since_snapshot_ = 0;  // dispatch thread only
  std::once_flag join_once_;          // concurrent stop() joins exactly once
  std::thread thread_;

  // Telemetry (borrowed from the registry at wiring time; all null
  // when the dispatcher was built without a registry).
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter* submitted_ctr_ = nullptr;
  telemetry::Counter* delivered_ctr_ = nullptr;
  telemetry::LatencyHistogram* deliver_hist_ = nullptr;
  telemetry::LatencyHistogram* e2e_delivery_hist_ = nullptr;
  telemetry::Gauge* queue_gauge_ = nullptr;
  telemetry::Gauge* lag_gauge_ = nullptr;
  telemetry::Counter* shed_ctr_ = nullptr;
  telemetry::Gauge* quarantined_gauge_ = nullptr;
  std::vector<telemetry::Counter*> sink_ctrs_;
  std::uint64_t hook_id_ = 0;
};

}  // namespace bgpbh::api
