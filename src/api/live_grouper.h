// LiveGrouper: the flagship built-in EventSink — incremental §9
// correlation/grouping over the live event stream.
//
// A production monitor must learn that a blackholing event opened,
// extended, or merged while the shard workers are still ingesting; the
// batch pipeline (correlate() + group_events() after the run) cannot
// say anything until the archive ends.  LiveGrouper wraps
// core::IncrementalGrouper — the same insertion-merge core those batch
// functions are wrappers over — behind a mutex, so the dispatch thread
// can fold events in while any thread queries the current groups.
//
// Equivalence contract (tested across shard counts {1,3,8} and
// producer counts {1,3} in tests/test_api.cc): after any set of events
// has been added in ANY order, correlated() and grouped() are
// byte-identical to batch correlate(events, tolerance) and
// group_events(correlate(events, tolerance), timeout) on that set.
#pragma once

#include <mutex>
#include <vector>

#include "api/sink.h"
#include "core/grouping.h"

namespace bgpbh::api {

class LiveGrouper : public EventSink {
 public:
  explicit LiveGrouper(util::SimTime tolerance = core::kCorrelateTolerance,
                       util::SimTime timeout = core::kGroupTimeout);

  // EventSink: fold the event in (discarding the group result).
  void on_event_closed(const core::PeerEvent& event) override;

  // Folds one closed event into both layers and returns a copy of the
  // §9 group that now contains it.  Thread-safe.
  core::PrefixEvent add(const core::PeerEvent& event);

  // Current layers in batch output order.  Thread-safe snapshots.
  std::vector<core::PrefixEvent> correlated() const;
  std::vector<core::PrefixEvent> grouped() const;

  std::size_t num_peer_events() const;
  std::size_t num_grouped() const;

  // Checkpoint hooks (src/recovery/): capture both flattened layers in
  // one locked pass, and restore them into a still-empty grouper.
  void capture_layers(std::vector<core::PrefixEvent>& correlated,
                      std::vector<core::PrefixEvent>& grouped) const {
    std::lock_guard<std::mutex> lock(mu_);
    correlated = grouper_.correlated();
    grouped = grouper_.grouped();
  }
  void restore_layers(std::span<const core::PrefixEvent> correlated,
                      std::span<const core::PrefixEvent> grouped) {
    std::lock_guard<std::mutex> lock(mu_);
    grouper_.restore_layers(correlated, grouped);
  }

 private:
  mutable std::mutex mu_;
  core::IncrementalGrouper grouper_;
};

}  // namespace bgpbh::api
