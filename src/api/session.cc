#include "api/session.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace bgpbh::api {

namespace {

stream::PipelineConfig pipeline_config(const SessionConfig& config) {
  stream::PipelineConfig pc;
  pc.num_shards = config.num_shards;
  pc.num_producers = config.num_producers;
  pc.queue_capacity = config.queue_capacity;
  pc.drain_batch = config.drain_batch;
  pc.batch_size = config.batch_size;
  pc.zero_copy = config.zero_copy;
  pc.engine = config.study.engine;
  return pc;
}

}  // namespace

AnalysisSession::AnalysisSession(SessionConfig config)
    : config_(std::move(config)),
      study_(config_.mode == SessionConfig::Mode::kReopen
                 ? nullptr
                 : std::make_unique<core::Study>(config_.study)),
      grouper_(config_.correlate_tolerance, config_.group_timeout) {
  assert((!reopen() || !config_.persist_dir.empty()) &&
         "kReopen requires persist_dir");
  // Persistence wiring order matters: the spill writer's open runs
  // crash recovery (resealing any torn segment), and must do so BEFORE
  // the disk snapshot is taken; the snapshot in turn must be taken
  // before this session appends anything, so the merged live+disk view
  // never double-counts this session's own output (the writer appends
  // only to segments numbered after the snapshot's).
  if (!config_.persist_dir.empty() && !reopen()) {
    storage::SpillConfig spill_config;
    spill_config.dir = config_.persist_dir;
    spill_config.segment = config_.segment;
    spill_config.queue_chunks = config_.spill_queue_chunks;
    spill_config.metrics = &metrics_;
    spill_ = storage::SpillWriter::open(std::move(spill_config));
    if (!spill_) {
      // A session configured for persistence that silently runs
      // without it would lose its history with no signal — fail the
      // construction instead (an environmental error, so it must fire
      // in release builds too, not just as an assert).
      throw std::runtime_error("bgpbh: persist_dir '" + config_.persist_dir +
                               "' could not be opened for writing");
    }
  }
  if (reopen() || (config_.resume && !config_.persist_dir.empty())) {
    disk_ = storage::SegmentSet::open(config_.persist_dir);
    // Fold the disk summary streamingly — one segment block in memory
    // at a time, never the whole archive.
    disk_->for_each([this](const core::PeerEvent& e) {
      stream::EventStore::fold_event(disk_snapshot_, disk_has_any_, e);
    });
  }
  if (reopen()) {
    closed_ = true;  // an archive view is born closed
    return;
  }
  if (live()) {
    stream::PipelineConfig pc = pipeline_config(config_);
    pc.metrics = &metrics_;
    pipeline_ = std::make_unique<stream::StreamPipeline>(
        study_->dictionary(), study_->registry(), pc);
    // Spill hook before anything can ingest (the store's lifecycle
    // contract): every sealed chunk — including finish()'s force-closed
    // remainder — crosses the bounded queue to the segment writer.
    if (spill_) {
      pipeline_->store().set_spill_listener(
          [this](std::size_t, std::vector<core::PeerEvent> chunk) {
            spill_->submit(std::move(chunk));
          });
    }
    // §4.2 initialization is part of the configured study in every
    // mode (study.table_dump_episodes == 0 disables it).
    if (auto dump = study_->initial_table_dump()) {
      pipeline_->init_from_table_dump(routing::Platform::kRis, *dump);
    }
  }
}

AnalysisSession::~AnalysisSession() = default;

bool AnalysisSession::subscribe(EventSink& sink) {
  // The dispatcher snapshots the sink list when delivery begins; a
  // late subscriber could never be delivered to, so refuse it loudly
  // rather than ignore it silently.
  bool late = started_.load(std::memory_order_acquire) || ran_;
  assert(!late && "subscribe() must precede run()/start()");
  if (late) return false;
  sinks_.push_back(&sink);
  return true;
}

void AnalysisSession::start_dispatcher() {
  // Zero sinks: no dispatcher, no store listener — the ingest hot path
  // is exactly the bare pipeline's (queries compute §9 layers on
  // demand instead; the two paths are equivalence-tested).
  if (sinks_.empty() || dispatcher_) return;
  dispatcher_ = std::make_unique<SinkDispatcher>(
      sinks_, &grouper_, config_.sink_queue_chunks,
      [this] { return snapshot(); }, config_.snapshot_every_events, &metrics_);
  if (pipeline_) {
    dispatcher_->start();
    pipeline_->store().set_chunk_listener(
        [this](std::size_t, std::vector<core::PeerEvent> chunk) {
          dispatcher_->submit(std::move(chunk));
        });
  }
}

void AnalysisSession::start() {
  assert(live() && "start() is for the live modes; kBatch uses run()");
  // call_once blocks concurrent callers until the winner has wired the
  // dispatcher and store listener AND started the pipeline — a racing
  // first push can therefore never reach a shard worker (whose drains
  // invoke the listener) before the subscription layer exists.
  std::call_once(start_once_, [this] {
    start_dispatcher();
    pipeline_->start();
    started_.store(true, std::memory_order_release);
  });
}

bool AnalysisSession::push(const routing::FeedUpdate& update,
                          std::size_t producer) {
  if (!started_.load(std::memory_order_acquire)) start();
  return pipeline_->producer(producer).push(update);
}

void AnalysisSession::flush(std::size_t producer) {
  pipeline_->producer(producer).flush();
}

std::uint64_t AnalysisSession::feed(stream::UpdateSource& source) {
  if (!started_.load(std::memory_order_acquire)) start();
  return pipeline_->run(source);
}

void AnalysisSession::close(util::SimTime end_time) {
  assert(live() && "close() is for the live modes");
  if (closed_) return;
  closed_ = true;
  // finish() flushes the producers, joins the workers, and force-closes
  // still-open events — every resulting chunk still flows through the
  // store listener into the dispatcher before the queue stops.
  pipeline_->finish(end_time);
  if (dispatcher_) {
    dispatcher_->request_snapshot();  // final counters, after every event
    dispatcher_->stop();
  }
  // Seal the segment log last: every chunk has been submitted by
  // finish(), so stop() drains the queue and leaves the full event set
  // durably on disk before close() returns.
  if (spill_) spill_->stop();
}

void AnalysisSession::deliver_batch_results() {
  if (sinks_.empty()) {
    // No subscribers: queries serve the study's own (incremental)
    // layers directly — see prefix_events() — so nothing to do here.
    return;
  }
  // Reuse the dispatch thread so sink callbacks keep their contract
  // (one thread, close order, cadence + final snapshot) in batch too.
  // Cadence snapshots fold the delivered PREFIX of the event stream so
  // a subscriber sees running totals, as it would live; the final
  // request covers everything.
  dispatcher_ = std::make_unique<SinkDispatcher>(
      sinks_, &grouper_, config_.sink_queue_chunks,
      [this] {
        const auto& all = study_->events();
        std::size_t delivered = static_cast<std::size_t>(
            std::min<std::uint64_t>(dispatcher_->events_delivered(),
                                    all.size()));
        return snapshot_of(std::span(all.data(), delivered));
      },
      config_.snapshot_every_events, &metrics_);
  dispatcher_->start();
  const auto& events = study_->events();
  constexpr std::size_t kChunk = 256;
  for (std::size_t i = 0; i < events.size(); i += kChunk) {
    std::span<const core::PeerEvent> chunk(
        events.data() + i, std::min(kChunk, events.size() - i));
    dispatcher_->submit(chunk);
  }
  dispatcher_->request_snapshot();
  dispatcher_->stop();
}

void AnalysisSession::run() {
  assert(config_.mode != SessionConfig::Mode::kLiveFeed &&
         "kLiveFeed sessions are driven by start()/push()/close()");
  assert(!reopen() && "kReopen sessions serve queries only; nothing to run");
  if (ran_ || reopen()) return;
  ran_ = true;
  if (!live()) {
    study_->run();
    deliver_batch_results();
    // Batch persistence: the whole event set, close order, sealed
    // before run() returns — a kReopen session on the same directory
    // then serves identical queries.
    if (spill_) {
      const auto& events = study_->events();
      constexpr std::size_t kChunk = 256;
      for (std::size_t i = 0; i < events.size(); i += kChunk) {
        spill_->submit(std::vector<core::PeerEvent>(
            events.begin() + static_cast<std::ptrdiff_t>(i),
            events.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(i + kChunk, events.size()))));
      }
      spill_->stop();
    }
    closed_ = true;
    return;
  }
  start();
  stream::VectorSource source(study_->replay_updates());
  pipeline_->run(source);
  close(config_.study.window_end);
}

std::vector<core::PeerEvent> AnalysisSession::events(
    const EventQuery& query) const {
  std::vector<core::PeerEvent> out;
  if (live()) {
    out = pipeline_->store().query(
        [&query](const core::PeerEvent& e) { return query.matches(e); });
  } else if (!reopen()) {
    for (const auto& e : study_->events()) {
      if (query.matches(e)) out.push_back(e);
    }
  }
  // Disk half of the merged view: the directory's pre-session segments
  // (all of them for kReopen).  Window-only queries could seek via the
  // sparse index; the general filter decodes every record, so route
  // through the one predicate path and let query.matches() — which
  // uses core::overlaps_window for its window term — decide.
  if (disk_) {
    auto from_disk = disk_->query(
        [&query](const core::PeerEvent& e) { return query.matches(e); });
    out.insert(out.end(), std::make_move_iterator(from_disk.begin()),
               std::make_move_iterator(from_disk.end()));
  }
  core::canonical_sort(out);
  return out;
}

std::size_t AnalysisSession::count(const EventQuery& query) const {
  std::size_t n = 0;
  if (live()) {
    n = pipeline_->store().count(
        [&query](const core::PeerEvent& e) { return query.matches(e); });
  } else if (!reopen()) {
    for (const auto& e : study_->events()) {
      if (query.matches(e)) ++n;
    }
  }
  if (disk_) {
    n += disk_->count(
        [&query](const core::PeerEvent& e) { return query.matches(e); });
  }
  return n;
}

bool AnalysisSession::dispatching() const {
  if (!live()) return dispatcher_ != nullptr;  // batch: single-threaded run()
  // dispatcher_ is written inside the one-shot start and never again;
  // started_ == true (acquire) therefore makes the pointer safe to
  // read even while other threads are pushing.
  return started_.load(std::memory_order_acquire) && dispatcher_ != nullptr;
}

std::vector<core::PrefixEvent> AnalysisSession::prefix_events() const {
  // A merged live+disk (or kReopen) view must group over events(), not
  // the study's own layers — hence the !disk_ guard on the batch
  // shortcut; the dispatching grouper never covers disk events either,
  // but a resume session's grouper only saw this session's stream, so
  // fall through to the recompute when a disk half exists.
  if (dispatching() && !disk_) return grouper_.correlated();
  if (config_.mode == SessionConfig::Mode::kBatch && default_grouping() &&
      !disk_) {
    return study_->prefix_events();
  }
  core::IncrementalGrouper grouper(config_.correlate_tolerance,
                                   config_.group_timeout);
  for (const auto& e : events()) grouper.add(e);
  return grouper.correlated();
}

std::vector<core::PrefixEvent> AnalysisSession::grouped_events() const {
  if (dispatching() && !disk_) return grouper_.grouped();
  if (config_.mode == SessionConfig::Mode::kBatch && default_grouping() &&
      !disk_) {
    return study_->grouped_events();
  }
  core::IncrementalGrouper grouper(config_.correlate_tolerance,
                                   config_.group_timeout);
  for (const auto& e : events()) grouper.add(e);
  return grouper.grouped();
}

stream::EventStore::Snapshot AnalysisSession::snapshot_of(
    std::span<const core::PeerEvent> events) const {
  stream::EventStore::Snapshot snap;
  bool any = false;
  for (const auto& e : events) {
    stream::EventStore::fold_event(snap, any, e);
  }
  return snap;
}

stream::EventStore::Snapshot AnalysisSession::snapshot() const {
  // This session's half: live store counters / batch study fold.
  stream::EventStore::Snapshot snap;
  bool has_any = false;
  if (live()) {
    snap = pipeline_->store().snapshot();
    has_any = snap.total_events > 0;
  } else if (!reopen()) {
    snap = snapshot_of(study_->events());
    has_any = snap.total_events > 0;
  }
  // Disk half from the summary cached at open — the segment snapshot
  // is immutable, so merging never rescans the log.
  if (disk_) {
    stream::EventStore::fold(snap, has_any, disk_snapshot_, disk_has_any_);
  }
  return snap;
}

void AnalysisSession::publish_snapshot() {
  // Through the dispatch thread while it runs (ordered with the event
  // stream).  If the dispatcher is already stopping it may still be
  // draining — wait for stop() to finish (idempotent, joins the
  // thread) so the inline delivery below can never run concurrently
  // with dispatch-thread callbacks.
  if (dispatching()) {
    if (dispatcher_->request_snapshot()) return;
    dispatcher_->stop();
  }
  stream::EventStore::Snapshot snap = snapshot();
  for (EventSink* sink : sinks_) sink->on_snapshot(snap);
}

core::EngineStats AnalysisSession::stats() const {
  assert(!reopen() && "kReopen has no engine: the segment log persists "
                      "events, not engine state");
  if (reopen()) return {};
  if (!live()) return study_->engine_stats();
  assert(closed_ && "live stats() requires close(): shard engines are "
                    "readable only after the workers joined");
  return pipeline_->merged_stats();
}

std::size_t AnalysisSession::open_event_count() const {
  return live() ? pipeline_->open_event_count() : 0;
}

std::size_t AnalysisSession::open_at_close() const {
  return live() ? pipeline_->open_at_finish() : 0;
}

std::uint64_t AnalysisSession::updates_pushed() const {
  if (live()) return pipeline_->updates_pushed();
  if (reopen()) return 0;
  return study_->engine_stats().updates_processed;
}

std::size_t AnalysisSession::num_shards() const {
  if (reopen()) return 0;
  return live() ? pipeline_->num_shards() : 1;
}

std::uint64_t AnalysisSession::events_persisted() const {
  return spill_ ? spill_->events_spilled() : 0;
}

std::uint64_t AnalysisSession::segments_sealed() const {
  return spill_ ? spill_->segments_sealed() : 0;
}

std::uint64_t AnalysisSession::persisted_bytes() const {
  return spill_ ? spill_->bytes_on_disk() : 0;
}

}  // namespace bgpbh::api
