#include "api/session.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

namespace bgpbh::api {

namespace {

stream::PipelineConfig pipeline_config(const SessionConfig& config) {
  stream::PipelineConfig pc;
  pc.num_shards = config.num_shards;
  pc.num_producers = config.num_producers;
  pc.queue_capacity = config.queue_capacity;
  pc.drain_batch = config.drain_batch;
  pc.batch_size = config.batch_size;
  pc.zero_copy = config.zero_copy;
  pc.engine = config.study.engine;
  return pc;
}

}  // namespace

AnalysisSession::AnalysisSession(SessionConfig config)
    : config_(std::move(config)),
      study_(config_.mode == SessionConfig::Mode::kReopen
                 ? nullptr
                 : std::make_unique<core::Study>(config_.study)),
      grouper_(config_.correlate_tolerance, config_.group_timeout) {
  assert((!reopen() || !config_.persist_dir.empty()) &&
         "kReopen requires persist_dir");
  // Health plane: one gauge refreshed on every telemetry snapshot.
  // Registered first so every mode (including kReopen's early return)
  // exports it; health() is safe before any wiring below exists.
  metrics_.describe("api.session.health",
                    "Worst component health: 0 healthy, 1 degraded, 2 halted");
  health_gauge_ = &metrics_.gauge("api.session.health");
  health_hook_ = metrics_.add_collection_hook([this] {
    health_gauge_->set(static_cast<double>(static_cast<int>(health().state)));
  });
  // Trace ring: configure before any wiring (including the fabric
  // early-return below) so every mode honors the session's knobs.
  metrics_.trace().configure(config_.trace);
  const std::size_t shards = config_.num_shards == 0 ? 1 : config_.num_shards;
  const std::size_t producers =
      config_.num_producers == 0 ? 1 : config_.num_producers;
  // Fabric client: the data plane is a FabricRouter instead of a local
  // pipeline; num_shards is the global slot count.  The incompatible
  // knobs below are programming errors, so they throw in release too.
  if (config_.fabric.enabled()) {
    if (config_.mode != SessionConfig::Mode::kLiveFeed) {
      throw std::logic_error(
          "bgpbh: fabric endpoints require kLiveFeed (the caller-fed "
          "shape; remote servers run the pipelines)");
    }
    if (!config_.persist_dir.empty() || config_.resume || config_.recover) {
      throw std::logic_error(
          "bgpbh: fabric clients do not persist or recover locally; "
          "each shard server owns its slot directories");
    }
    if (config_.study.table_dump_episodes != 0) {
      throw std::logic_error(
          "bgpbh: fabric mode requires study.table_dump_episodes == 0; a "
          "table dump would be folded once per remote slot session");
    }
    recovery::QuarantineConfig qc;
    qc.max_as_path_hops = config_.max_as_path_hops;
    qc.max_communities = config_.max_communities;
    qc.error_budget = config_.poison_error_budget;
    qc.metrics = &metrics_;
    quarantine_ = std::make_unique<recovery::PoisonQuarantine>(producers, qc);
    fabric_ = std::make_unique<fabric::FabricRouter>(config_.fabric, shards,
                                                     producers, &metrics_);
    return;
  }
  // Crash recovery, BEFORE the spill writer opens: load the newest
  // valid checkpoint and truncate the segment log to its durable
  // position — the writer's own open then recovers/reseals exactly the
  // boundary segment the truncation left footer-less.
  std::optional<recovery::LoadResult> loaded;
  if (live() && config_.recover && !config_.persist_dir.empty()) {
    loaded = recovery::load_latest_checkpoint(config_.persist_dir);
    if (loaded) {
      const recovery::Checkpoint& cp = loaded->checkpoint;
      if (cp.num_shards != shards || cp.num_producers != producers) {
        // Routing is deterministic only for the SAME shard/producer
        // shape; replaying a checkpoint into a different one would
        // silently duplicate or drop sub-updates.
        throw std::runtime_error(
            "bgpbh: checkpoint shape mismatch: checkpoint has " +
            std::to_string(cp.num_shards) + " shard(s) x " +
            std::to_string(cp.num_producers) +
            " producer(s); session configured for " + std::to_string(shards) +
            " x " + std::to_string(producers));
      }
      if (!recovery::truncate_log(config_.persist_dir, cp.position)) {
        throw std::runtime_error(
            "bgpbh: segment log in '" + config_.persist_dir +
            "' holds fewer durable records than checkpoint " +
            std::to_string(cp.seq) + " claims; refusing silent loss");
      }
    }
  }
  // Persistence wiring order matters: the spill writer's open runs
  // crash recovery (resealing any torn segment), and must do so BEFORE
  // the disk snapshot is taken; the snapshot in turn must be taken
  // before this session appends anything, so the merged live+disk view
  // never double-counts this session's own output (the writer appends
  // only to segments numbered after the snapshot's).
  if (!config_.persist_dir.empty() && !reopen()) {
    storage::SpillConfig spill_config;
    spill_config.dir = config_.persist_dir;
    spill_config.segment = config_.segment;
    spill_config.queue_chunks = config_.spill_queue_chunks;
    spill_config.retry = config_.spill_retry;
    spill_config.metrics = &metrics_;
    spill_ = storage::SpillWriter::open(std::move(spill_config));
    if (!spill_) {
      // A session configured for persistence that silently runs
      // without it would lose its history with no signal — fail the
      // construction instead (an environmental error, so it must fire
      // in release builds too, not just as an assert).
      throw std::runtime_error("bgpbh: persist_dir '" + config_.persist_dir +
                               "' could not be opened for writing");
    }
  }
  // recover-with-checkpoint implies the resume-style merged view: the
  // truncated log serves every pre-cut closed event; the replayed
  // suffix regenerates exactly the post-cut ones live.
  if (reopen() ||
      ((config_.resume || loaded.has_value()) && !config_.persist_dir.empty())) {
    disk_ = storage::SegmentSet::open(config_.persist_dir);
    // Fold the disk summary streamingly — one segment block in memory
    // at a time, never the whole archive.
    disk_->for_each([this](const core::PeerEvent& e) {
      stream::EventStore::fold_event(disk_snapshot_, disk_has_any_, e);
    });
  }
  if (reopen()) {
    closed_ = true;  // an archive view is born closed
    return;
  }
  if (live()) {
    stream::PipelineConfig pc = pipeline_config(config_);
    pc.metrics = &metrics_;
    pipeline_ = std::make_unique<stream::StreamPipeline>(
        study_->dictionary(), study_->registry(), pc);
    // Spill hook before anything can ingest (the store's lifecycle
    // contract): every sealed chunk — including finish()'s force-closed
    // remainder — crosses the bounded queue to the segment writer.
    if (spill_) {
      pipeline_->store().set_spill_listener(
          [this](std::size_t, std::vector<core::PeerEvent> chunk) {
            spill_->submit(std::move(chunk));
          });
    }
    // Restore the checkpointed cut into the not-yet-started pipeline:
    // open state into the shard engines, absolute watermarks into the
    // workers (so the NEXT checkpoint's watermarks stay absolute),
    // replay-skips into the producers, layers into the grouper.
    if (loaded) {
      recovery::Checkpoint& cp = loaded->checkpoint;
      recovered_totals_ = recovery::producer_totals(cp);
      for (std::size_t s = 0; s < cp.shards.size(); ++s) {
        pipeline_->seed_watermarks(s, cp.shards[s].watermarks);
        pipeline_->shard_engine(s).import_open_state(
            std::move(cp.shards[s].open_state));
      }
      // Suffix-feed recovery (fabric shard servers): the feeder resumes
      // each producer exactly past the recovered accepted count, so the
      // replay-skip arming below — which expects a full re-feed from
      // index zero — must be left off.
      if (!config_.recover_suffix_feed) {
        for (std::size_t p = 0; p < producers; ++p) {
          std::vector<std::uint64_t> skip(cp.shards.size(), 0);
          for (std::size_t s = 0; s < cp.shards.size(); ++s) {
            skip[s] = cp.shards[s].watermarks[p];
          }
          pipeline_->producer(p).set_replay_skip(std::move(skip));
        }
      }
      grouper_.restore_layers(cp.correlated, cp.grouped);
      recovered_ = true;
      recovered_seq_ = cp.seq;
    }
    // §4.2 initialization is part of the configured study in every
    // mode (study.table_dump_episodes == 0 disables it) — but a
    // checkpoint that already covers the dump's opens must not fold
    // them in twice.
    const bool dump_covered = loaded && loaded->checkpoint.includes_table_dump;
    bool has_dump = dump_covered;
    if (auto dump = study_->initial_table_dump()) {
      has_dump = true;
      if (!dump_covered) {
        pipeline_->init_from_table_dump(routing::Platform::kRis, *dump);
      }
    }
    // Supervision + ingest-validation planes.
    recovery::QuarantineConfig qc;
    qc.max_as_path_hops = config_.max_as_path_hops;
    qc.max_communities = config_.max_communities;
    qc.error_budget = config_.poison_error_budget;
    qc.metrics = &metrics_;
    quarantine_ = std::make_unique<recovery::PoisonQuarantine>(producers, qc);
    if (config_.stall_deadline.count() > 0) {
      std::vector<recovery::WatchedShard> watched;
      watched.reserve(shards);
      for (std::size_t i = 0; i < shards; ++i) {
        watched.push_back(recovery::WatchedShard{
            [this, i] { return pipeline_->shard_heartbeat(i); },
            [this, i] { return pipeline_->shard_queue_depth(i); }});
      }
      recovery::WatchdogConfig wc;
      wc.poll = config_.watchdog_poll;
      wc.stall_deadline = config_.stall_deadline;
      wc.metrics = &metrics_;
      watchdog_ = std::make_unique<recovery::Watchdog>(std::move(watched), wc);
    }
    // Checkpoint coordinator: wired whenever recovery could matter
    // (cadence configured, or this session recovers — its successor
    // will want a checkpoint too).
    if (spill_ && (config_.checkpoint_every > 0 || config_.recover)) {
      recovery::CoordinatorHooks hooks;
      hooks.capture = [this](const std::function<void()>& fn,
                             std::vector<stream::ShardCapture>& out) {
        return pipeline_->capture(fn, out);
      };
      hooks.barrier = [this](storage::SpillWriter::BarrierResult& r) {
        return spill_->barrier(r);
      };
      hooks.submit_control = [this](std::function<void()> fn) {
        return dispatching() && dispatcher_->submit_control(std::move(fn));
      };
      hooks.capture_grouper = [this](std::vector<core::PrefixEvent>& c,
                                     std::vector<core::PrefixEvent>& g) {
        grouper_.capture_layers(c, g);
      };
      hooks.set_retention_floor = [this](std::uint64_t seq) {
        spill_->set_retention_floor(seq);
      };
      hooks.updates_pushed = [this] { return pipeline_->updates_pushed(); };
      recovery::CoordinatorConfig cc;
      cc.dir = config_.persist_dir;
      cc.num_shards = static_cast<std::uint32_t>(shards);
      cc.num_producers = static_cast<std::uint32_t>(producers);
      cc.checkpoint_every = config_.checkpoint_every;
      cc.metrics = &metrics_;
      coordinator_ = std::make_unique<recovery::CheckpointCoordinator>(
          std::move(hooks), cc);
      coordinator_->set_includes_table_dump(has_dump);
      if (recovered_) coordinator_->set_next_seq(recovered_seq_ + 1);
      // Bootstrap cut: a recovery-enabled session killed before its
      // first cadence checkpoint still leaves a valid restore point
      // (covering the table-dump / recovered state it started from).
      coordinator_->checkpoint_now();
    }
  }
}

AnalysisSession::~AnalysisSession() {
  // The health hook captures `this` and reads spill_/dispatcher_; pull
  // it before member destruction begins (a late telemetry snapshot
  // must never run it against dead members).
  metrics_.remove_collection_hook(health_hook_);
}

bool AnalysisSession::subscribe(EventSink& sink) {
  // Fabric clients have no local event stream to deliver from (events
  // close on the remote shard servers); refuse rather than silently
  // never deliver.
  if (fabric_) return false;
  // The dispatcher snapshots the sink list when delivery begins; a
  // late subscriber could never be delivered to, so refuse it loudly
  // rather than ignore it silently.
  bool late = started_.load(std::memory_order_acquire) || ran_;
  assert(!late && "subscribe() must precede run()/start()");
  if (late) return false;
  sinks_.push_back(&sink);
  return true;
}

bool AnalysisSession::register_health(const HealthReporter& reporter) {
  // Same window as subscribe(): the reporter list is read lock-free by
  // the telemetry hook once delivery/ingest can run.
  bool late = started_.load(std::memory_order_acquire) || ran_;
  assert(!late && "register_health() must precede run()/start()");
  if (late) return false;
  health_reporters_.push_back(&reporter);
  return true;
}

SessionHealth AnalysisSession::health() const {
  SessionHealth overall;
  if (spill_) {
    ComponentHealth c;
    c.component = "spill";
    switch (spill_->state()) {
      case storage::SpillWriter::State::kOk:
        if (spill_->io_error()) {
          c.state = HealthState::kDegraded;
          c.reason = "final seal failed; on-disk log is a durable prefix";
        }
        break;
      case storage::SpillWriter::State::kDegraded:
        c.state = HealthState::kDegraded;
        c.reason = "transient disk I/O failure; " +
                   std::to_string(spill_->events_parked()) +
                   " event(s) parked in memory";
        break;
      case storage::SpillWriter::State::kFailed:
        c.state = HealthState::kHalted;
        c.reason = "persistent disk failure; " +
                   std::to_string(spill_->events_lost()) + " event(s) lost";
        break;
    }
    overall.components.push_back(std::move(c));
  }
  if (dispatching()) {
    ComponentHealth c;
    c.component = "dispatch";
    const std::uint64_t shed = dispatcher_->events_shed();
    if (dispatcher_->quarantined()) {
      c.state = HealthState::kDegraded;
      c.reason = "sink plane quarantined for overload; " +
                 std::to_string(shed) + " event(s) shed";
    } else if (shed > 0) {
      // Recovered, but the loss is part of this session's record.
      c.reason = std::to_string(shed) + " event(s) shed in " +
                 std::to_string(dispatcher_->times_quarantined()) +
                 " past quarantine(s)";
    }
    overall.components.push_back(std::move(c));
  }
  if (fabric_) {
    ComponentHealth c;
    c.component = "fabric";
    const std::uint64_t reconnects = fabric_->reconnects();
    if (reconnects > 0) {
      // Recovered (replay made the lanes whole), but worth surfacing.
      c.reason = std::to_string(reconnects) + " lane reconnect(s)";
    }
    overall.components.push_back(std::move(c));
  }
  if (quarantine_) overall.components.push_back(quarantine_->component_health());
  if (watchdog_) overall.components.push_back(watchdog_->component_health());
  if (coordinator_) {
    overall.components.push_back(coordinator_->component_health());
  }
  for (const HealthReporter* reporter : health_reporters_) {
    overall.components.push_back(reporter->component_health());
  }
  for (const ComponentHealth& c : overall.components) {
    overall.state = worse(overall.state, c.state);
  }
  return overall;
}

std::uint64_t AnalysisSession::events_shed() const {
  return dispatcher_ ? dispatcher_->events_shed() : 0;
}

std::uint64_t AnalysisSession::events_lost() const {
  return spill_ ? spill_->events_lost() : 0;
}

void AnalysisSession::start_dispatcher() {
  // Zero sinks: no dispatcher, no store listener — the ingest hot path
  // is exactly the bare pipeline's (queries compute §9 layers on
  // demand instead; the two paths are equivalence-tested).
  if (sinks_.empty() || dispatcher_) return;
  dispatcher_ = std::make_unique<SinkDispatcher>(
      sinks_, &grouper_, config_.sink_queue_chunks,
      [this] { return snapshot(); }, config_.snapshot_every_events, &metrics_,
      config_.sink_overload, config_.sink_shed_deadline);
  if (pipeline_) {
    dispatcher_->start();
    pipeline_->store().set_chunk_listener(
        [this](std::size_t, std::vector<core::PeerEvent> chunk) {
          dispatcher_->submit(std::move(chunk));
        });
  }
}

void AnalysisSession::require_live(const char* what) const {
  if (!live()) {
    throw std::logic_error(std::string("bgpbh: ") + what +
                           " is only valid in live modes (kLiveReplay / "
                           "kLiveFeed); kBatch/kReopen sessions use run() "
                           "and queries");
  }
}

void AnalysisSession::start() {
  require_live("start()");
  if (closed_) return;  // a closed session quietly refuses to restart
  if (fabric_) {
    // Lanes dial lazily on the first push; nothing to wire locally.
    started_.store(true, std::memory_order_release);
    return;
  }
  // call_once blocks concurrent callers until the winner has wired the
  // dispatcher and store listener AND started the pipeline — a racing
  // first push can therefore never reach a shard worker (whose drains
  // invoke the listener) before the subscription layer exists.
  std::call_once(start_once_, [this] {
    start_dispatcher();
    pipeline_->start();
    if (watchdog_) watchdog_->start();
    if (coordinator_) coordinator_->start();
    started_.store(true, std::memory_order_release);
  });
}

bool AnalysisSession::push(const routing::FeedUpdate& update,
                          std::size_t producer) {
  require_live("push()");
  if (closed_) return false;  // defined: nothing accepted, nothing started
  if (!started_.load(std::memory_order_acquire)) start();
  // Poison quarantine: reject absurd updates before they can reach a
  // shard worker (an adversarial feed must degrade health, not state).
  // Fabric mode runs the SAME quarantine client-side (the shard
  // servers admit everything), so accept/reject decisions — and hence
  // the per-lane sub-update index spaces — match the in-process plane.
  if (quarantine_ && !quarantine_->admit(update, producer)) return false;
  if (fabric_) return fabric_->push(producer, update);
  return pipeline_->producer(producer).push(update);
}

void AnalysisSession::flush(std::size_t producer) {
  require_live("flush()");
  if (closed_ || !started_.load(std::memory_order_acquire)) return;
  if (fabric_) {
    fabric_->flush(producer);
    return;
  }
  pipeline_->producer(producer).flush();
}

std::uint64_t AnalysisSession::feed(stream::UpdateSource& source) {
  require_live("feed()");
  if (closed_) return 0;  // defined: nothing consumed
  if (!started_.load(std::memory_order_acquire)) start();
  if (fabric_) {
    std::uint64_t accepted = 0;
    while (const routing::FeedUpdate* update = source.next()) {
      if (push(*update, 0)) ++accepted;
    }
    return accepted;
  }
  return pipeline_->run(source);
}

void AnalysisSession::drain() {
  require_live("drain()");
  if (closed_ || !started_.load(std::memory_order_acquire)) return;
  const std::size_t producers =
      config_.num_producers == 0 ? 1 : config_.num_producers;
  if (fabric_) {
    for (std::size_t p = 0; p < producers; ++p) fabric_->flush(p);
    return;
  }
  for (std::size_t p = 0; p < producers; ++p) {
    pipeline_->producer(p).flush();
  }
  // Producers count accepted refs at push, workers count them at
  // drain; equality means every queue is empty and every sub-update
  // has reached its shard engine — the drained-cut invariant.
  while (pipeline_->total_processed() < pipeline_->total_refs_enqueued()) {
    std::this_thread::yield();
  }
}

void AnalysisSession::close(util::SimTime end_time) {
  require_live("close()");
  if (closed_) return;
  // close() before any push: start first so the shutdown below runs
  // against a started pipeline — the one lifecycle finish() defines —
  // and subscribers still get their final snapshot.
  if (!started_.load(std::memory_order_acquire)) start();
  closed_ = true;
  if (fabric_) {
    // Drains every lane, then force-closes each remote slot session at
    // the cut-off (the distributed finish()).
    fabric_->close(end_time);
    return;
  }
  // Supervision planes stop first: a checkpoint cut racing finish()'s
  // worker join would only ever abandon, and the watchdog would read
  // heartbeats from joining workers.
  if (coordinator_) coordinator_->stop();
  if (watchdog_) watchdog_->stop();
  // finish() flushes the producers, joins the workers, and force-closes
  // still-open events — every resulting chunk still flows through the
  // store listener into the dispatcher before the queue stops.
  pipeline_->finish(end_time);
  if (dispatcher_) {
    dispatcher_->request_snapshot();  // final counters, after every event
    dispatcher_->stop();
  }
  // Seal the segment log last: every chunk has been submitted by
  // finish(), so stop() drains the queue and leaves the full event set
  // durably on disk before close() returns.
  if (spill_) spill_->stop();
}

void AnalysisSession::deliver_batch_results() {
  if (sinks_.empty()) {
    // No subscribers: queries serve the study's own (incremental)
    // layers directly — see prefix_events() — so nothing to do here.
    return;
  }
  // Reuse the dispatch thread so sink callbacks keep their contract
  // (one thread, close order, cadence + final snapshot) in batch too.
  // Cadence snapshots fold the delivered PREFIX of the event stream so
  // a subscriber sees running totals, as it would live; the final
  // request covers everything.
  dispatcher_ = std::make_unique<SinkDispatcher>(
      sinks_, &grouper_, config_.sink_queue_chunks,
      [this] {
        const auto& all = study_->events();
        std::size_t delivered = static_cast<std::size_t>(
            std::min<std::uint64_t>(dispatcher_->events_delivered(),
                                    all.size()));
        return snapshot_of(std::span(all.data(), delivered));
      },
      config_.snapshot_every_events, &metrics_);
  dispatcher_->start();
  const auto& events = study_->events();
  constexpr std::size_t kChunk = 256;
  for (std::size_t i = 0; i < events.size(); i += kChunk) {
    std::span<const core::PeerEvent> chunk(
        events.data() + i, std::min(kChunk, events.size() - i));
    dispatcher_->submit(chunk);
  }
  dispatcher_->request_snapshot();
  dispatcher_->stop();
}

void AnalysisSession::run() {
  if (config_.mode == SessionConfig::Mode::kLiveFeed) {
    throw std::logic_error(
        "bgpbh: run() is not valid for kLiveFeed; drive the session with "
        "start()/push()/close()");
  }
  // kReopen: documented no-op — an archive view is born closed and
  // queryable, there is nothing to run.  A second run() is also a
  // no-op (idempotent by contract).
  if (ran_ || reopen()) return;
  ran_ = true;
  if (!live()) {
    study_->run();
    deliver_batch_results();
    // Batch persistence: the whole event set, close order, sealed
    // before run() returns — a kReopen session on the same directory
    // then serves identical queries.
    if (spill_) {
      const auto& events = study_->events();
      constexpr std::size_t kChunk = 256;
      for (std::size_t i = 0; i < events.size(); i += kChunk) {
        spill_->submit(std::vector<core::PeerEvent>(
            events.begin() + static_cast<std::ptrdiff_t>(i),
            events.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(i + kChunk, events.size()))));
      }
      spill_->stop();
    }
    closed_ = true;
    return;
  }
  start();
  stream::VectorSource source(study_->replay_updates());
  pipeline_->run(source);
  close(config_.study.window_end);
}

std::vector<core::PeerEvent> AnalysisSession::events(
    const EventQuery& query) const {
  std::vector<core::PeerEvent> out;
  if (fabric_) {
    // Scatter-gather returns the merged remote set already canonically
    // sorted; filtering preserves that order.
    for (auto& e : fabric_->query_events()) {
      if (query.matches(e)) out.push_back(std::move(e));
    }
    return out;
  }
  if (live()) {
    out = pipeline_->store().query(
        [&query](const core::PeerEvent& e) { return query.matches(e); });
  } else if (!reopen()) {
    for (const auto& e : study_->events()) {
      if (query.matches(e)) out.push_back(e);
    }
  }
  // Disk half of the merged view: the directory's pre-session segments
  // (all of them for kReopen).  Window-only queries could seek via the
  // sparse index; the general filter decodes every record, so route
  // through the one predicate path and let query.matches() — which
  // uses core::overlaps_window for its window term — decide.
  if (disk_) {
    auto from_disk = disk_->query(
        [&query](const core::PeerEvent& e) { return query.matches(e); });
    out.insert(out.end(), std::make_move_iterator(from_disk.begin()),
               std::make_move_iterator(from_disk.end()));
  }
  core::canonical_sort(out);
  return out;
}

std::size_t AnalysisSession::count(const EventQuery& query) const {
  if (fabric_) return events(query).size();
  std::size_t n = 0;
  if (live()) {
    n = pipeline_->store().count(
        [&query](const core::PeerEvent& e) { return query.matches(e); });
  } else if (!reopen()) {
    for (const auto& e : study_->events()) {
      if (query.matches(e)) ++n;
    }
  }
  if (disk_) {
    n += disk_->count(
        [&query](const core::PeerEvent& e) { return query.matches(e); });
  }
  return n;
}

bool AnalysisSession::dispatching() const {
  if (!live()) return dispatcher_ != nullptr;  // batch: single-threaded run()
  // dispatcher_ is written inside the one-shot start and never again;
  // started_ == true (acquire) therefore makes the pointer safe to
  // read even while other threads are pushing.
  return started_.load(std::memory_order_acquire) && dispatcher_ != nullptr;
}

std::vector<core::PrefixEvent> AnalysisSession::prefix_events() const {
  // A merged live+disk (or kReopen) view must group over events(), not
  // the study's own layers — hence the !disk_ guard on the batch
  // shortcut; the dispatching grouper never covers disk events either,
  // but a resume session's grouper only saw this session's stream, so
  // fall through to the recompute when a disk half exists.
  if (dispatching() && !disk_) return grouper_.correlated();
  if (config_.mode == SessionConfig::Mode::kBatch && default_grouping() &&
      !disk_) {
    return study_->prefix_events();
  }
  core::IncrementalGrouper grouper(config_.correlate_tolerance,
                                   config_.group_timeout);
  for (const auto& e : events()) grouper.add(e);
  return grouper.correlated();
}

std::vector<core::PrefixEvent> AnalysisSession::grouped_events() const {
  if (dispatching() && !disk_) return grouper_.grouped();
  if (config_.mode == SessionConfig::Mode::kBatch && default_grouping() &&
      !disk_) {
    return study_->grouped_events();
  }
  core::IncrementalGrouper grouper(config_.correlate_tolerance,
                                   config_.group_timeout);
  for (const auto& e : events()) grouper.add(e);
  return grouper.grouped();
}

stream::EventStore::Snapshot AnalysisSession::snapshot_of(
    std::span<const core::PeerEvent> events) const {
  stream::EventStore::Snapshot snap;
  bool any = false;
  for (const auto& e : events) {
    stream::EventStore::fold_event(snap, any, e);
  }
  return snap;
}

stream::EventStore::Snapshot AnalysisSession::snapshot() const {
  // This session's half: live store counters / batch study fold.
  stream::EventStore::Snapshot snap;
  bool has_any = false;
  if (fabric_) return snapshot_of(events());
  if (live()) {
    snap = pipeline_->store().snapshot();
    has_any = snap.total_events > 0;
  } else if (!reopen()) {
    snap = snapshot_of(study_->events());
    has_any = snap.total_events > 0;
  }
  // Disk half from the summary cached at open — the segment snapshot
  // is immutable, so merging never rescans the log.
  if (disk_) {
    stream::EventStore::fold(snap, has_any, disk_snapshot_, disk_has_any_);
  }
  return snap;
}

void AnalysisSession::publish_snapshot() {
  // Through the dispatch thread while it runs (ordered with the event
  // stream).  If the dispatcher is already stopping it may still be
  // draining — wait for stop() to finish (idempotent, joins the
  // thread) so the inline delivery below can never run concurrently
  // with dispatch-thread callbacks.
  if (dispatching()) {
    if (dispatcher_->request_snapshot()) return;
    dispatcher_->stop();
  }
  stream::EventStore::Snapshot snap = snapshot();
  for (EventSink* sink : sinks_) sink->on_snapshot(snap);
}

core::EngineStats AnalysisSession::stats() const {
  assert(!reopen() && "kReopen has no engine: the segment log persists "
                      "events, not engine state");
  if (reopen()) return {};
  if (fabric_) return {};  // engines live on the shard servers
  if (!live()) return study_->engine_stats();
  assert(closed_ && "live stats() requires close(): shard engines are "
                    "readable only after the workers joined");
  return pipeline_->merged_stats();
}

std::size_t AnalysisSession::open_event_count() const {
  if (fabric_) return 0;  // open state lives on the shard servers
  return live() ? pipeline_->open_event_count() : 0;
}

std::size_t AnalysisSession::open_at_close() const {
  if (fabric_) return 0;
  return live() ? pipeline_->open_at_finish() : 0;
}

std::uint64_t AnalysisSession::updates_pushed() const {
  if (fabric_) return fabric_->updates_pushed();
  if (live()) return pipeline_->updates_pushed();
  if (reopen()) return 0;
  return study_->engine_stats().updates_processed;
}

std::size_t AnalysisSession::num_shards() const {
  if (reopen()) return 0;
  if (fabric_) return fabric_->num_slots();
  return live() ? pipeline_->num_shards() : 1;
}

bool AnalysisSession::checkpoint_now() {
  require_live("checkpoint_now()");
  // Fabric: a drained remote cut per slot (every shard server's
  // durable totals advance to its accepted totals).
  if (fabric_) return fabric_->checkpoint_all();
  return coordinator_ && coordinator_->checkpoint_now();
}

std::uint64_t AnalysisSession::checkpoints_written() const {
  return coordinator_ ? coordinator_->checkpoints_written() : 0;
}

std::uint64_t AnalysisSession::poison_rejected() const {
  return quarantine_ ? quarantine_->total_poisoned() : 0;
}

std::uint64_t AnalysisSession::events_persisted() const {
  return spill_ ? spill_->events_spilled() : 0;
}

std::uint64_t AnalysisSession::segments_sealed() const {
  return spill_ ? spill_->segments_sealed() : 0;
}

std::uint64_t AnalysisSession::persisted_bytes() const {
  return spill_ ? spill_->bytes_on_disk() : 0;
}

}  // namespace bgpbh::api
