#include "bgp/community.h"

#include <algorithm>

#include "util/strings.h"

namespace bgpbh::bgp {

std::optional<Community> Community::parse(std::string_view s) {
  auto parts = util::split(s, ':');
  if (parts.size() != 2) return std::nullopt;
  std::uint32_t a = 0, v = 0;
  if (!util::parse_u32(parts[0], a) || !util::parse_u32(parts[1], v))
    return std::nullopt;
  if (a > 0xFFFF || v > 0xFFFF) return std::nullopt;
  return Community(static_cast<std::uint16_t>(a), static_cast<std::uint16_t>(v));
}

std::string Community::to_string() const {
  return std::to_string(asn()) + ":" + std::to_string(value());
}

std::optional<LargeCommunity> LargeCommunity::parse(std::string_view s) {
  auto parts = util::split(s, ':');
  if (parts.size() != 3) return std::nullopt;
  std::uint32_t g = 0, l1 = 0, l2 = 0;
  if (!util::parse_u32(parts[0], g) || !util::parse_u32(parts[1], l1) ||
      !util::parse_u32(parts[2], l2))
    return std::nullopt;
  return LargeCommunity(g, l1, l2);
}

std::string LargeCommunity::to_string() const {
  return std::to_string(global_) + ":" + std::to_string(l1_) + ":" +
         std::to_string(l2_);
}

void CommunitySet::add(Community c) {
  auto it = std::lower_bound(classic_.begin(), classic_.end(), c);
  if (it == classic_.end() || *it != c) classic_.insert(it, c);
}

void CommunitySet::add(LargeCommunity c) {
  auto it = std::lower_bound(large_.begin(), large_.end(), c);
  if (it == large_.end() || *it != c) large_.insert(it, c);
}

bool CommunitySet::contains(Community c) const {
  return std::binary_search(classic_.begin(), classic_.end(), c);
}

bool CommunitySet::contains(LargeCommunity c) const {
  return std::binary_search(large_.begin(), large_.end(), c);
}

void CommunitySet::remove(Community c) {
  auto it = std::lower_bound(classic_.begin(), classic_.end(), c);
  if (it != classic_.end() && *it == c) classic_.erase(it);
}

void CommunitySet::clear() {
  classic_.clear();
  large_.clear();
}

std::string CommunitySet::to_string() const {
  std::string out;
  for (auto& c : classic_) {
    if (!out.empty()) out += ' ';
    out += c.to_string();
  }
  for (auto& c : large_) {
    if (!out.empty()) out += ' ';
    out += c.to_string();
  }
  return out;
}

}  // namespace bgpbh::bgp
