#include "bgp/update.h"

#include <cassert>

namespace bgpbh::bgp {

namespace {

// NLRI encoding: length octet + ceil(len/8) address bytes.
void encode_nlri_v4(const net::Prefix& p, net::BufWriter& w) {
  assert(p.is_v4());
  w.u8(p.len());
  std::uint32_t v = p.addr().v4().value();
  unsigned nbytes = (p.len() + 7) / 8;
  for (unsigned i = 0; i < nbytes; ++i) {
    w.u8(static_cast<std::uint8_t>(v >> (24 - 8 * i)));
  }
}

std::optional<net::Prefix> decode_nlri_v4(net::BufReader& r) {
  std::uint8_t len = r.u8();
  if (len > 32) return std::nullopt;
  unsigned nbytes = (len + 7u) / 8u;
  auto b = r.bytes(nbytes);
  if (!r.ok()) return std::nullopt;
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i) {
    v = (v << 8) | (i < nbytes ? b[i] : 0);
  }
  return net::Prefix(net::Ipv4Addr(v), len);
}

void encode_nlri_v6(const net::Prefix& p, net::BufWriter& w) {
  assert(!p.is_v4());
  w.u8(p.len());
  unsigned nbytes = (p.len() + 7) / 8;
  const auto& bytes = p.addr().v6().bytes();
  for (unsigned i = 0; i < nbytes; ++i) w.u8(bytes[i]);
}

std::optional<net::Prefix> decode_nlri_v6(net::BufReader& r) {
  std::uint8_t len = r.u8();
  if (len > 128) return std::nullopt;
  unsigned nbytes = (len + 7u) / 8u;
  auto b = r.bytes(nbytes);
  if (!r.ok()) return std::nullopt;
  net::Ipv6Addr::Bytes bytes{};
  for (unsigned i = 0; i < nbytes; ++i) bytes[i] = b[i];
  return net::Prefix(net::Ipv6Addr(bytes), len);
}

// Path attribute header: flags, type, length (1 or 2 bytes).
void attr_header(net::BufWriter& w, std::uint8_t flags, std::uint8_t type,
                 std::size_t length) {
  bool extended = length > 255;
  if (extended) flags |= 0x10;
  w.u8(flags);
  w.u8(type);
  if (extended) {
    w.u16(static_cast<std::uint16_t>(length));
  } else {
    w.u8(static_cast<std::uint8_t>(length));
  }
}

constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagOptTransitive = 0xC0;
constexpr std::uint8_t kFlagOptional = 0x80;

}  // namespace

void encode_update_body(const UpdateBody& body, net::BufWriter& w) {
  // Withdrawn routes (IPv4 only at top level).
  net::BufWriter withdrawn;
  for (const auto& p : body.withdrawn) {
    if (p.is_v4()) encode_nlri_v4(p, withdrawn);
  }
  w.u16(static_cast<std::uint16_t>(withdrawn.size()));
  w.bytes(withdrawn.data());

  // Path attributes.
  net::BufWriter attrs;
  bool has_announce = !body.announced.empty();
  if (has_announce) {
    attrs.u8(kFlagTransitive);
    attrs.u8(kAttrOrigin);
    attrs.u8(1);
    attrs.u8(static_cast<std::uint8_t>(body.origin));

    // AS_PATH: one AS_SEQUENCE segment, 4-byte ASNs (AS4 capable peers).
    net::BufWriter pathbuf;
    if (!body.as_path.empty()) {
      pathbuf.u8(2);  // AS_SEQUENCE
      pathbuf.u8(static_cast<std::uint8_t>(body.as_path.length()));
      for (Asn a : body.as_path.hops()) pathbuf.u32(a);
    }
    attr_header(attrs, kFlagTransitive, kAttrAsPath, pathbuf.size());
    attrs.bytes(pathbuf.data());

    if (body.next_hop && body.next_hop->is_v4()) {
      attr_header(attrs, kFlagTransitive, kAttrNextHop, 4);
      attrs.u32(body.next_hop->v4().value());
    }
  }
  if (!body.communities.classic().empty()) {
    attr_header(attrs, kFlagOptTransitive, kAttrCommunities,
                body.communities.classic().size() * 4);
    for (auto c : body.communities.classic()) attrs.u32(c.raw());
  }
  if (!body.communities.large().empty()) {
    attr_header(attrs, kFlagOptTransitive, kAttrLargeCommunities,
                body.communities.large().size() * 12);
    for (auto c : body.communities.large()) {
      attrs.u32(c.global_admin());
      attrs.u32(c.local1());
      attrs.u32(c.local2());
    }
  }
  // MP_REACH / MP_UNREACH for IPv6.
  net::BufWriter v6ann, v6wd;
  for (const auto& p : body.announced) {
    if (!p.is_v4()) encode_nlri_v6(p, v6ann);
  }
  for (const auto& p : body.withdrawn) {
    if (!p.is_v4()) encode_nlri_v6(p, v6wd);
  }
  if (v6ann.size() > 0) {
    // AFI(2)=IPv6, SAFI(1)=unicast, nexthop-len, nexthop, reserved, NLRI.
    net::BufWriter mp;
    mp.u16(2);
    mp.u8(1);
    if (body.next_hop && body.next_hop->is_v6()) {
      mp.u8(16);
      mp.bytes(body.next_hop->v6().bytes());
    } else {
      mp.u8(0);
    }
    mp.u8(0);  // reserved
    mp.bytes(v6ann.data());
    attr_header(attrs, kFlagOptional, kAttrMpReachNlri, mp.size());
    attrs.bytes(mp.data());
  }
  if (v6wd.size() > 0) {
    net::BufWriter mp;
    mp.u16(2);
    mp.u8(1);
    mp.bytes(v6wd.data());
    attr_header(attrs, kFlagOptional, kAttrMpUnreachNlri, mp.size());
    attrs.bytes(mp.data());
  }

  w.u16(static_cast<std::uint16_t>(attrs.size()));
  w.bytes(attrs.data());

  // IPv4 NLRI.
  for (const auto& p : body.announced) {
    if (p.is_v4()) encode_nlri_v4(p, w);
  }
}

std::optional<UpdateBody> decode_update_body(net::BufReader& r) {
  UpdateBody body;

  std::uint16_t wd_len = r.u16();
  {
    net::BufReader wd = r.sub(wd_len);
    while (wd.ok() && wd.remaining() > 0) {
      auto p = decode_nlri_v4(wd);
      if (!p) return std::nullopt;
      body.withdrawn.push_back(*p);
    }
    if (!wd.ok()) return std::nullopt;
  }

  std::uint16_t attr_len = r.u16();
  {
    net::BufReader ar = r.sub(attr_len);
    while (ar.ok() && ar.remaining() > 0) {
      std::uint8_t flags = ar.u8();
      std::uint8_t type = ar.u8();
      std::size_t len = (flags & 0x10) ? ar.u16() : ar.u8();
      net::BufReader av = ar.sub(len);
      if (!ar.ok()) return std::nullopt;
      switch (type) {
        case kAttrOrigin: {
          std::uint8_t o = av.u8();
          if (o > 2) return std::nullopt;
          body.origin = static_cast<Origin>(o);
          break;
        }
        case kAttrAsPath: {
          std::vector<Asn> hops;
          while (av.ok() && av.remaining() > 0) {
            std::uint8_t seg_type = av.u8();
            std::uint8_t count = av.u8();
            if (seg_type != 2) return std::nullopt;  // AS_SEQUENCE only
            for (unsigned i = 0; i < count; ++i) hops.push_back(av.u32());
          }
          if (!av.ok()) return std::nullopt;
          body.as_path = AsPath(std::move(hops));
          break;
        }
        case kAttrNextHop: {
          if (len != 4) return std::nullopt;
          body.next_hop = net::IpAddr(net::Ipv4Addr(av.u32()));
          break;
        }
        case kAttrCommunities: {
          if (len % 4 != 0) return std::nullopt;
          for (std::size_t i = 0; i < len / 4; ++i) {
            body.communities.add(Community(av.u32()));
          }
          break;
        }
        case kAttrLargeCommunities: {
          if (len % 12 != 0) return std::nullopt;
          for (std::size_t i = 0; i < len / 12; ++i) {
            std::uint32_t g = av.u32(), l1 = av.u32(), l2 = av.u32();
            body.communities.add(LargeCommunity(g, l1, l2));
          }
          break;
        }
        case kAttrMpReachNlri: {
          std::uint16_t afi = av.u16();
          std::uint8_t safi = av.u8();
          std::uint8_t nh_len = av.u8();
          if (afi != 2 || safi != 1) return std::nullopt;
          if (nh_len == 16) {
            auto nh = av.bytes(16);
            if (!av.ok()) return std::nullopt;
            net::Ipv6Addr::Bytes b{};
            for (unsigned i = 0; i < 16; ++i) b[i] = nh[i];
            body.next_hop = net::IpAddr(net::Ipv6Addr(b));
          } else if (nh_len != 0) {
            av.skip(nh_len);
          }
          av.skip(1);  // reserved
          while (av.ok() && av.remaining() > 0) {
            auto p = decode_nlri_v6(av);
            if (!p) return std::nullopt;
            body.announced.push_back(*p);
          }
          if (!av.ok()) return std::nullopt;
          break;
        }
        case kAttrMpUnreachNlri: {
          std::uint16_t afi = av.u16();
          std::uint8_t safi = av.u8();
          if (afi != 2 || safi != 1) return std::nullopt;
          while (av.ok() && av.remaining() > 0) {
            auto p = decode_nlri_v6(av);
            if (!p) return std::nullopt;
            body.withdrawn.push_back(*p);
          }
          if (!av.ok()) return std::nullopt;
          break;
        }
        default:
          break;  // tolerate unknown attributes (forward compat)
      }
      if (!av.ok()) return std::nullopt;
    }
    if (!ar.ok()) return std::nullopt;
  }

  // Remaining bytes: IPv4 NLRI.
  while (r.ok() && r.remaining() > 0) {
    auto p = decode_nlri_v4(r);
    if (!p) return std::nullopt;
    body.announced.push_back(*p);
  }
  if (!r.ok()) return std::nullopt;
  return body;
}

void encode_update_message(const UpdateBody& body, net::BufWriter& w) {
  std::size_t start = w.size();
  for (int i = 0; i < 16; ++i) w.u8(0xFF);  // marker
  std::size_t len_pos = w.size();
  w.u16(0);  // length, patched below
  w.u8(2);   // type = UPDATE
  encode_update_body(body, w);
  w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size() - start));
}

std::optional<UpdateBody> decode_update_message(net::BufReader& r) {
  auto marker = r.bytes(16);
  if (!r.ok()) return std::nullopt;
  for (auto b : marker) {
    if (b != 0xFF) return std::nullopt;
  }
  std::uint16_t len = r.u16();
  std::uint8_t type = r.u8();
  if (!r.ok() || type != 2 || len < 19) return std::nullopt;
  net::BufReader body = r.sub(len - 19);
  if (!r.ok()) return std::nullopt;
  return decode_update_body(body);
}

}  // namespace bgpbh::bgp
