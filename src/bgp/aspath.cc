#include "bgp/aspath.h"

#include <algorithm>

namespace bgpbh::bgp {

bool AsPath::contains(Asn asn) const {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

AsPath AsPath::without_prepending() const {
  std::vector<Asn> out;
  out.reserve(hops_.size());
  for (Asn a : hops_) {
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return AsPath(std::move(out));
}

std::size_t AsPath::unique_length() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i == 0 || hops_[i] != hops_[i - 1]) ++n;
  }
  return n;
}

std::optional<std::size_t> AsPath::index_of(Asn asn) const {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0 && hops_[i] == hops_[i - 1]) continue;  // prepending
    if (hops_[i] == asn) return idx;
    ++idx;
  }
  return std::nullopt;
}

std::optional<Asn> AsPath::hop_before(Asn asn) const {
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0 && hops_[i] == hops_[i - 1]) continue;  // prepending
    if (hops_[i] != asn) continue;
    // The next *distinct* hop toward the origin — what the element
    // after `asn` in the materialized prepending-free path would be.
    for (std::size_t j = i + 1; j < hops_.size(); ++j) {
      if (hops_[j] != asn) return hops_[j];
    }
    return std::nullopt;  // provider is the origin; no user behind it
  }
  return std::nullopt;
}

void AsPath::prepend(Asn asn, std::size_t times) {
  hops_.insert(hops_.begin(), times, asn);
}

std::string AsPath::to_string() const {
  std::string out;
  for (Asn a : hops_) {
    if (!out.empty()) out += ' ';
    out += std::to_string(a);
  }
  return out;
}

}  // namespace bgpbh::bgp
