#include "bgp/aspath.h"

#include <algorithm>

namespace bgpbh::bgp {

bool AsPath::contains(Asn asn) const {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

AsPath AsPath::without_prepending() const {
  std::vector<Asn> out;
  out.reserve(hops_.size());
  for (Asn a : hops_) {
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return AsPath(std::move(out));
}

std::optional<std::size_t> AsPath::index_of(Asn asn) const {
  AsPath clean = without_prepending();
  for (std::size_t i = 0; i < clean.hops_.size(); ++i) {
    if (clean.hops_[i] == asn) return i;
  }
  return std::nullopt;
}

std::optional<Asn> AsPath::hop_before(Asn asn) const {
  AsPath clean = without_prepending();
  for (std::size_t i = 0; i < clean.hops_.size(); ++i) {
    if (clean.hops_[i] == asn) {
      if (i + 1 < clean.hops_.size()) return clean.hops_[i + 1];
      return std::nullopt;  // provider is the origin; no user behind it
    }
  }
  return std::nullopt;
}

void AsPath::prepend(Asn asn, std::size_t times) {
  hops_.insert(hops_.begin(), times, asn);
}

std::string AsPath::to_string() const {
  std::string out;
  for (Asn a : hops_) {
    if (!out.empty()) out += ' ';
    out += std::to_string(a);
  }
  return out;
}

}  // namespace bgpbh::bgp
