// MRT-subset codec (RFC 6396).
//
// The paper consumes RIS/RouteViews archives via BGPStream/libbgpdump;
// our substitute implements the two MRT record families those archives
// actually contain:
//
//   * BGP4MP / BGP4MP_MESSAGE_AS4 (type 16, subtype 4): one timestamped
//     BGP message with peer AS / local AS / interface / address family
//     and the raw BGP UPDATE inside.
//   * TABLE_DUMP_V2 (type 13): PEER_INDEX_TABLE (subtype 1) followed by
//     RIB_IPV4_UNICAST (2) / RIB_IPV6_UNICAST (4) entries.
//
// This gives us a real on-the-wire interchange format for collector
// dumps: the simulator writes MRT files, the inference pipeline reads
// them back (and tests round-trip equality).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "bgp/update.h"
#include "net/bytes.h"

namespace bgpbh::bgp::mrt {

inline constexpr std::uint16_t kTypeTableDumpV2 = 13;
inline constexpr std::uint16_t kTypeBgp4mp = 16;
inline constexpr std::uint16_t kSubtypePeerIndexTable = 1;
inline constexpr std::uint16_t kSubtypeRibIpv4Unicast = 2;
inline constexpr std::uint16_t kSubtypeRibIpv6Unicast = 4;
inline constexpr std::uint16_t kSubtypeBgp4mpMessageAs4 = 4;

// ---- update streams ---------------------------------------------------

// Append one BGP4MP_MESSAGE_AS4 record carrying the update.
void encode_update(const ObservedUpdate& update, net::BufWriter& w);

// Parse an entire buffer of concatenated MRT records into updates.
// Unknown record types are skipped (collector archives interleave
// state-change records); malformed framing aborts with nullopt.
std::optional<std::vector<ObservedUpdate>> decode_updates(
    std::span<const std::uint8_t> data);

// ---- table dumps -------------------------------------------------------

struct TableDump {
  util::SimTime time = 0;
  std::string collector_name;
  // One RIB snapshot: entries grouped per peer.
  struct Entry {
    PeerKey peer;
    net::Prefix prefix;
    AsPath as_path;
    CommunitySet communities;
    std::optional<net::IpAddr> next_hop;
    util::SimTime originated = 0;
  };
  std::vector<Entry> entries;
};

// Encode a full TABLE_DUMP_V2 snapshot (peer index + RIB entries).
void encode_table_dump(const TableDump& dump, net::BufWriter& w);

std::optional<TableDump> decode_table_dump(std::span<const std::uint8_t> data);

// ---- files -------------------------------------------------------------

bool write_file(const std::string& path, std::span<const std::uint8_t> data);
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

}  // namespace bgpbh::bgp::mrt
