// AS_PATH attribute.
//
// We model AS_SEQUENCE only (AS_SET is obsolete and irrelevant to the
// inference: the paper removes prepending and scans for provider ASNs,
// both of which are sequence operations).  Paths are stored collector-
// side first: path[0] is the collector peer AS, path.back() the origin.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bgpbh::bgp {

using Asn = std::uint32_t;

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<Asn> hops) : hops_(std::move(hops)) {}

  static AsPath of(std::initializer_list<Asn> hops) {
    return AsPath(std::vector<Asn>(hops));
  }

  const std::vector<Asn>& hops() const { return hops_; }
  bool empty() const { return hops_.empty(); }
  std::size_t length() const { return hops_.size(); }

  Asn first() const { return hops_.front(); }   // collector peer AS
  Asn origin() const { return hops_.back(); }   // originating AS

  bool contains(Asn asn) const;

  // Path with consecutive duplicates collapsed (prepending removed), as
  // required before inferring the blackholing user (§4.2).
  AsPath without_prepending() const;

  // Number of unique AS hops (after removing prepending).  In-place
  // scan; never materializes the prepending-free path.
  std::size_t unique_length() const;

  // Index of `asn` in the prepending-free path, or nullopt.  In-place
  // scan over the raw hops (the inference hot path calls this per
  // candidate provider; it must not allocate).
  std::optional<std::size_t> index_of(Asn asn) const;

  // The AS one hop before `asn` on the prepending-free path (i.e.
  // closer to the origin) — the blackholing-user position per §4.2.
  // In-place scan, allocation-free.
  std::optional<Asn> hop_before(Asn asn) const;

  void prepend(Asn asn, std::size_t times = 1);
  void push_origin(Asn asn) { hops_.push_back(asn); }

  std::string to_string() const;  // "3356 1299 64500"

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<Asn> hops_;
};

}  // namespace bgpbh::bgp
