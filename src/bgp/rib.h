// Per-peer Routing Information Base (Adj-RIB-In as seen at a collector).
//
// The inference engine initializes from a RIB table dump (§4.2
// "Initialization Based on BGP Table Dump") and then tracks updates;
// collectors and looking glasses also expose RIB queries.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/update.h"
#include "net/prefix.h"

namespace bgpbh::bgp {

struct RibEntry {
  net::Prefix prefix;
  AsPath as_path;
  CommunitySet communities;
  std::optional<net::IpAddr> next_hop;
  util::SimTime last_update = 0;
};

// Identifies a BGP session at a collector: which peer sent us routes.
struct PeerKey {
  net::IpAddr peer_ip;
  Asn peer_asn = 0;

  friend auto operator<=>(const PeerKey&, const PeerKey&) = default;
};

// Hash support so per-(peer, prefix) state can live in hash maps and be
// partitioned across engine shards (src/stream/).
struct PeerKeyHash {
  std::size_t operator()(const PeerKey& key) const noexcept;
};

class Rib {
 public:
  // Applies an update for a given peer; returns the prefixes whose
  // entries changed (announced or withdrawn).
  void apply(const ObservedUpdate& update);

  const RibEntry* find(const PeerKey& peer, const net::Prefix& p) const;

  // All entries of one peer.
  std::vector<const RibEntry*> entries_for_peer(const PeerKey& peer) const;

  // All (peer, entry) pairs for a prefix.
  std::vector<std::pair<PeerKey, const RibEntry*>> find_all(const net::Prefix& p) const;

  // Visit every entry: f(peer, entry).
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [peer, table] : tables_) {
      for (const auto& [prefix, entry] : table) f(peer, entry);
    }
  }

  std::size_t num_peers() const { return tables_.size(); }
  std::size_t total_entries() const;

 private:
  std::map<PeerKey, std::map<net::Prefix, RibEntry>> tables_;
};

}  // namespace bgpbh::bgp
