// BGP community attributes.
//
// * Classic communities (RFC 1997): 32 bits, conventionally rendered
//   "ASN:value" with 16-bit halves.  This is the format used by 301 of
//   the 307 blackholing providers in the paper.
// * Extended communities (RFC 4360): 8 bytes.
// * Large communities (RFC 8092): 12 bytes ("GlobalAdmin:Local1:Local2"),
//   adopted by few networks as of the paper (6 of 307; 1 for blackholing).
//
// Well-known blackholing values modelled after the paper:
//   ASN:666 (51% of providers), ASN:66, ASN:999, and the RFC 7999
//   BLACKHOLE community 65535:666 used by 47 of 49 IXPs.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bgpbh::bgp {

class Community {
 public:
  constexpr Community() = default;
  constexpr explicit Community(std::uint32_t raw) : raw_(raw) {}
  constexpr Community(std::uint16_t asn, std::uint16_t value)
      : raw_((std::uint32_t{asn} << 16) | value) {}

  // "65535:666".
  static std::optional<Community> parse(std::string_view s);

  constexpr std::uint16_t asn() const { return static_cast<std::uint16_t>(raw_ >> 16); }
  constexpr std::uint16_t value() const { return static_cast<std::uint16_t>(raw_); }
  constexpr std::uint32_t raw() const { return raw_; }

  std::string to_string() const;

  // RFC 1997 well-known communities.
  static constexpr std::uint32_t kNoExportRaw = 0xFFFFFF01;
  static constexpr std::uint32_t kNoAdvertiseRaw = 0xFFFFFF02;
  bool is_no_export() const { return raw_ == kNoExportRaw; }

  // RFC 7999 BLACKHOLE (65535:666).
  static constexpr Community rfc7999_blackhole() { return Community(65535, 666); }

  friend auto operator<=>(const Community&, const Community&) = default;

 private:
  std::uint32_t raw_ = 0;
};

class LargeCommunity {
 public:
  constexpr LargeCommunity() = default;
  constexpr LargeCommunity(std::uint32_t global, std::uint32_t l1, std::uint32_t l2)
      : global_(global), l1_(l1), l2_(l2) {}

  // "4200000001:666:0".
  static std::optional<LargeCommunity> parse(std::string_view s);

  constexpr std::uint32_t global_admin() const { return global_; }
  constexpr std::uint32_t local1() const { return l1_; }
  constexpr std::uint32_t local2() const { return l2_; }

  std::string to_string() const;

  friend auto operator<=>(const LargeCommunity&, const LargeCommunity&) = default;

 private:
  std::uint32_t global_ = 0, l1_ = 0, l2_ = 0;
};

// A set of classic + large communities attached to one route.  Kept as
// sorted vectors (sets are tiny: typically 1-5 entries).
class CommunitySet {
 public:
  void add(Community c);
  void add(LargeCommunity c);
  bool contains(Community c) const;
  bool contains(LargeCommunity c) const;
  void remove(Community c);
  void clear();

  bool has_no_export() const { return contains(Community(Community::kNoExportRaw)); }

  const std::vector<Community>& classic() const { return classic_; }
  const std::vector<LargeCommunity>& large() const { return large_; }
  bool empty() const { return classic_.empty() && large_.empty(); }
  std::size_t size() const { return classic_.size() + large_.size(); }

  std::string to_string() const;

  friend bool operator==(const CommunitySet&, const CommunitySet&) = default;

 private:
  std::vector<Community> classic_;
  std::vector<LargeCommunity> large_;
};

}  // namespace bgpbh::bgp
