#include "bgp/rib.h"

namespace bgpbh::bgp {

std::size_t PeerKeyHash::operator()(const PeerKey& key) const noexcept {
  return net::hash_combine(net::IpAddrHash{}(key.peer_ip),
                           std::hash<Asn>{}(key.peer_asn));
}

void Rib::apply(const ObservedUpdate& update) {
  PeerKey key{update.peer_ip, update.peer_asn};
  auto& table = tables_[key];
  for (const auto& p : update.body.withdrawn) {
    table.erase(p);
  }
  for (const auto& p : update.body.announced) {
    RibEntry& e = table[p];
    e.prefix = p;
    e.as_path = update.body.as_path;
    e.communities = update.body.communities;
    e.next_hop = update.body.next_hop;
    e.last_update = update.time;
  }
}

const RibEntry* Rib::find(const PeerKey& peer, const net::Prefix& p) const {
  auto t = tables_.find(peer);
  if (t == tables_.end()) return nullptr;
  auto e = t->second.find(p);
  return e == t->second.end() ? nullptr : &e->second;
}

std::vector<const RibEntry*> Rib::entries_for_peer(const PeerKey& peer) const {
  std::vector<const RibEntry*> out;
  auto t = tables_.find(peer);
  if (t == tables_.end()) return out;
  out.reserve(t->second.size());
  for (const auto& [prefix, entry] : t->second) out.push_back(&entry);
  return out;
}

std::vector<std::pair<PeerKey, const RibEntry*>> Rib::find_all(
    const net::Prefix& p) const {
  std::vector<std::pair<PeerKey, const RibEntry*>> out;
  for (const auto& [peer, table] : tables_) {
    auto e = table.find(p);
    if (e != table.end()) out.emplace_back(peer, &e->second);
  }
  return out;
}

std::size_t Rib::total_entries() const {
  std::size_t n = 0;
  for (const auto& [peer, table] : tables_) n += table.size();
  return n;
}

}  // namespace bgpbh::bgp
