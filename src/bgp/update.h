// BGP UPDATE messages as observed at a collector, plus the BGP wire
// codec for the UPDATE body (used by the MRT-subset encoder).
//
// An observed update carries collector-side metadata — the peer that
// sent it (peer IP + peer AS, §4.2 uses both for IXP detection) and the
// receive timestamp — in addition to the protocol payload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/aspath.h"
#include "bgp/community.h"
#include "net/bytes.h"
#include "net/prefix.h"
#include "util/time.h"

namespace bgpbh::bgp {

enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

// Protocol payload of one UPDATE.
struct UpdateBody {
  std::vector<net::Prefix> announced;
  std::vector<net::Prefix> withdrawn;
  AsPath as_path;                 // empty for pure withdrawals
  std::optional<net::IpAddr> next_hop;
  CommunitySet communities;
  Origin origin = Origin::kIgp;

  bool is_withdrawal_only() const { return announced.empty() && !withdrawn.empty(); }

  friend bool operator==(const UpdateBody&, const UpdateBody&) = default;
};

// One update as recorded by a collector.
struct ObservedUpdate {
  util::SimTime time = 0;
  net::IpAddr peer_ip;   // BGP session peer address at the collector
  Asn peer_asn = 0;      // peer-as attribute
  std::uint32_t collector_id = 0;  // which collector of the platform
  UpdateBody body;

  friend bool operator==(const ObservedUpdate&, const ObservedUpdate&) = default;
};

// ---- BGP-4 wire codec (RFC 4271 + RFC 1997/8092 attributes) ----------
//
// Encodes the UPDATE *body* (from "Withdrawn Routes Length" onward,
// without the 19-byte message header, which MRT BGP4MP records include
// separately).  IPv4 NLRI lives in the top-level fields; IPv6 is carried
// in MP_REACH/MP_UNREACH attributes (RFC 4760), which we implement in
// the reduced form used by route collectors.

void encode_update_body(const UpdateBody& body, net::BufWriter& w);

// Returns nullopt on malformed input. Strict about attribute lengths.
std::optional<UpdateBody> decode_update_body(net::BufReader& r);

// Full BGP message: 16-byte marker, length, type(2=UPDATE), body.
void encode_update_message(const UpdateBody& body, net::BufWriter& w);
std::optional<UpdateBody> decode_update_message(net::BufReader& r);

// Attribute type codes (subset).
inline constexpr std::uint8_t kAttrOrigin = 1;
inline constexpr std::uint8_t kAttrAsPath = 2;
inline constexpr std::uint8_t kAttrNextHop = 3;
inline constexpr std::uint8_t kAttrCommunities = 8;
inline constexpr std::uint8_t kAttrMpReachNlri = 14;
inline constexpr std::uint8_t kAttrMpUnreachNlri = 15;
inline constexpr std::uint8_t kAttrLargeCommunities = 32;

}  // namespace bgpbh::bgp
