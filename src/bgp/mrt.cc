#include "bgp/mrt.h"

#include <cstdio>
#include <map>

namespace bgpbh::bgp::mrt {

namespace {

// Common MRT header: timestamp(4) type(2) subtype(2) length(4).
void mrt_header(net::BufWriter& w, util::SimTime ts, std::uint16_t type,
                std::uint16_t subtype, std::size_t body_len) {
  w.u32(static_cast<std::uint32_t>(ts));
  w.u16(type);
  w.u16(subtype);
  w.u32(static_cast<std::uint32_t>(body_len));
}

void encode_peer_ip(const net::IpAddr& ip, bool v6_slot, net::BufWriter& w) {
  if (v6_slot) {
    if (ip.is_v6()) {
      w.bytes(ip.v6().bytes());
    } else {
      // v4-mapped into the 16-byte slot.
      for (int i = 0; i < 12; ++i) w.u8(0);
      w.u32(ip.v4().value());
    }
  } else {
    w.u32(ip.is_v4() ? ip.v4().value() : 0);
  }
}

}  // namespace

void encode_update(const ObservedUpdate& update, net::BufWriter& w) {
  // BGP4MP_MESSAGE_AS4 body:
  //   peer AS (4), local AS (4), ifindex (2), AFI (2),
  //   peer IP, local IP (AFI-sized), BGP message.
  net::BufWriter body;
  body.u32(update.peer_asn);
  body.u32(update.collector_id);  // we store the collector id as local AS
  body.u16(0);                    // ifindex
  bool v6 = update.peer_ip.is_v6();
  body.u16(v6 ? 2 : 1);
  encode_peer_ip(update.peer_ip, v6, body);
  encode_peer_ip(net::IpAddr(net::Ipv4Addr(0)), v6, body);  // local IP
  encode_update_message(update.body, body);

  mrt_header(w, update.time, kTypeBgp4mp, kSubtypeBgp4mpMessageAs4, body.size());
  w.bytes(body.data());
}

std::optional<std::vector<ObservedUpdate>> decode_updates(
    std::span<const std::uint8_t> data) {
  std::vector<ObservedUpdate> out;
  net::BufReader r(data);
  while (r.ok() && r.remaining() > 0) {
    std::uint32_t ts = r.u32();
    std::uint16_t type = r.u16();
    std::uint16_t subtype = r.u16();
    std::uint32_t len = r.u32();
    net::BufReader body = r.sub(len);
    if (!r.ok()) return std::nullopt;
    if (type != kTypeBgp4mp || subtype != kSubtypeBgp4mpMessageAs4) {
      continue;  // skip unknown records
    }
    ObservedUpdate u;
    u.time = static_cast<util::SimTime>(ts);
    u.peer_asn = body.u32();
    u.collector_id = body.u32();
    body.u16();  // ifindex
    std::uint16_t afi = body.u16();
    if (afi == 1) {
      u.peer_ip = net::IpAddr(net::Ipv4Addr(body.u32()));
      body.u32();  // local IP
    } else if (afi == 2) {
      auto b = body.bytes(16);
      if (!body.ok()) return std::nullopt;
      net::Ipv6Addr::Bytes bytes{};
      for (unsigned i = 0; i < 16; ++i) bytes[i] = b[i];
      u.peer_ip = net::IpAddr(net::Ipv6Addr(bytes));
      body.skip(16);
    } else {
      return std::nullopt;
    }
    auto msg = decode_update_message(body);
    if (!msg) return std::nullopt;
    u.body = std::move(*msg);
    out.push_back(std::move(u));
  }
  if (!r.ok()) return std::nullopt;
  return out;
}

void encode_table_dump(const TableDump& dump, net::BufWriter& w) {
  // 1. PEER_INDEX_TABLE: collector BGP ID, view name, peer entries.
  std::vector<PeerKey> peers;
  std::map<PeerKey, std::uint16_t> peer_index;
  for (const auto& e : dump.entries) {
    if (peer_index.emplace(e.peer, 0).second) peers.push_back(e.peer);
  }
  // Stable order: map iteration order (sorted by PeerKey).
  peers.assign(peer_index.size(), PeerKey{});
  {
    std::uint16_t i = 0;
    for (auto& [k, idx] : peer_index) {
      idx = i;
      peers[i] = k;
      ++i;
    }
  }

  net::BufWriter pit;
  pit.u32(0);  // collector BGP id
  pit.u16(static_cast<std::uint16_t>(dump.collector_name.size()));
  pit.str(dump.collector_name);
  pit.u16(static_cast<std::uint16_t>(peers.size()));
  for (const auto& p : peers) {
    bool v6 = p.peer_ip.is_v6();
    // peer type: bit0 = ipv6, bit1 = 4-byte ASN (always set here).
    pit.u8(static_cast<std::uint8_t>((v6 ? 1 : 0) | 2));
    pit.u32(0);  // peer BGP id
    encode_peer_ip(p.peer_ip, v6, pit);
    pit.u32(p.peer_asn);
  }
  mrt_header(w, dump.time, kTypeTableDumpV2, kSubtypePeerIndexTable, pit.size());
  w.bytes(pit.data());

  // 2. RIB entries, one MRT record per prefix with all peers' attributes.
  // Group entries by prefix preserving insertion order of first sight.
  std::map<net::Prefix, std::vector<const TableDump::Entry*>> by_prefix;
  for (const auto& e : dump.entries) by_prefix[e.prefix].push_back(&e);

  std::uint32_t seq = 0;
  for (const auto& [prefix, entries] : by_prefix) {
    net::BufWriter rib;
    rib.u32(seq++);
    // NLRI.
    rib.u8(prefix.len());
    unsigned nbytes = (prefix.len() + 7u) / 8u;
    if (prefix.is_v4()) {
      std::uint32_t v = prefix.addr().v4().value();
      for (unsigned i = 0; i < nbytes; ++i)
        rib.u8(static_cast<std::uint8_t>(v >> (24 - 8 * i)));
    } else {
      for (unsigned i = 0; i < nbytes; ++i) rib.u8(prefix.addr().v6().bytes()[i]);
    }
    rib.u16(static_cast<std::uint16_t>(entries.size()));
    for (const auto* e : entries) {
      rib.u16(peer_index.at(e->peer));
      rib.u32(static_cast<std::uint32_t>(e->originated));
      // BGP attributes blob, reusing the UPDATE attribute encoder by
      // wrapping the route as a single announcement.
      UpdateBody ub;
      ub.announced.push_back(e->prefix);
      ub.as_path = e->as_path;
      ub.communities = e->communities;
      ub.next_hop = e->next_hop;
      net::BufWriter msg;
      encode_update_body(ub, msg);
      rib.u16(static_cast<std::uint16_t>(msg.size()));
      rib.bytes(msg.data());
    }
    mrt_header(w, dump.time, kTypeTableDumpV2,
               prefix.is_v4() ? kSubtypeRibIpv4Unicast : kSubtypeRibIpv6Unicast,
               rib.size());
    w.bytes(rib.data());
  }
}

std::optional<TableDump> decode_table_dump(std::span<const std::uint8_t> data) {
  TableDump dump;
  std::vector<PeerKey> peers;
  bool have_pit = false;

  net::BufReader r(data);
  while (r.ok() && r.remaining() > 0) {
    std::uint32_t ts = r.u32();
    std::uint16_t type = r.u16();
    std::uint16_t subtype = r.u16();
    std::uint32_t len = r.u32();
    net::BufReader body = r.sub(len);
    if (!r.ok()) return std::nullopt;
    if (type != kTypeTableDumpV2) continue;
    dump.time = static_cast<util::SimTime>(ts);

    if (subtype == kSubtypePeerIndexTable) {
      body.u32();  // collector id
      std::uint16_t name_len = body.u16();
      auto name = body.bytes(name_len);
      if (!body.ok()) return std::nullopt;
      dump.collector_name.assign(name.begin(), name.end());
      std::uint16_t n = body.u16();
      peers.clear();
      for (unsigned i = 0; i < n; ++i) {
        std::uint8_t ptype = body.u8();
        body.u32();  // peer BGP id
        PeerKey key;
        if (ptype & 1) {
          auto b = body.bytes(16);
          if (!body.ok()) return std::nullopt;
          net::Ipv6Addr::Bytes bytes{};
          for (unsigned j = 0; j < 16; ++j) bytes[j] = b[j];
          key.peer_ip = net::IpAddr(net::Ipv6Addr(bytes));
        } else {
          key.peer_ip = net::IpAddr(net::Ipv4Addr(body.u32()));
        }
        key.peer_asn = (ptype & 2) ? body.u32() : body.u16();
        peers.push_back(key);
      }
      if (!body.ok()) return std::nullopt;
      have_pit = true;
    } else if (subtype == kSubtypeRibIpv4Unicast ||
               subtype == kSubtypeRibIpv6Unicast) {
      if (!have_pit) return std::nullopt;
      body.u32();  // sequence
      std::uint8_t plen = body.u8();
      unsigned nbytes = (plen + 7u) / 8u;
      auto pb = body.bytes(nbytes);
      if (!body.ok()) return std::nullopt;
      net::Prefix prefix;
      if (subtype == kSubtypeRibIpv4Unicast) {
        if (plen > 32) return std::nullopt;
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i) v = (v << 8) | (i < nbytes ? pb[i] : 0);
        prefix = net::Prefix(net::Ipv4Addr(v), plen);
      } else {
        if (plen > 128) return std::nullopt;
        net::Ipv6Addr::Bytes bytes{};
        for (unsigned i = 0; i < nbytes; ++i) bytes[i] = pb[i];
        prefix = net::Prefix(net::Ipv6Addr(bytes), plen);
      }
      std::uint16_t count = body.u16();
      for (unsigned i = 0; i < count; ++i) {
        std::uint16_t pi = body.u16();
        std::uint32_t orig = body.u32();
        std::uint16_t alen = body.u16();
        net::BufReader ar = body.sub(alen);
        if (!body.ok() || pi >= peers.size()) return std::nullopt;
        auto ub = decode_update_body(ar);
        if (!ub) return std::nullopt;
        TableDump::Entry e;
        e.peer = peers[pi];
        e.prefix = prefix;
        e.as_path = ub->as_path;
        e.communities = ub->communities;
        e.next_hop = ub->next_hop;
        e.originated = static_cast<util::SimTime>(orig);
        dump.entries.push_back(std::move(e));
      }
      if (!body.ok()) return std::nullopt;
    }
  }
  if (!r.ok()) return std::nullopt;
  return dump;
}

bool write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  std::size_t n = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return n == data.size();
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(size > 0 ? size : 0));
  std::size_t n = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (n != out.size()) return std::nullopt;
  return out;
}

}  // namespace bgpbh::bgp::mrt
