// Customer cones (Luckie et al., used by the paper for blackhole
// authentication and for RIPE Atlas probe-group selection in §10).
//
// The customer cone of AS X is X plus every AS reachable from X by
// following provider->customer edges only.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/as_graph.h"

namespace bgpbh::topology {

class CustomerCones {
 public:
  explicit CustomerCones(const AsGraph& graph);

  // True if `member` is in the customer cone of `owner` (owner itself
  // included).
  bool in_cone(Asn owner, Asn member) const;

  // The full cone of an AS (sorted). Owner included.
  const std::vector<Asn>& cone(Asn owner) const;

  std::size_t cone_size(Asn owner) const { return cone(owner).size(); }

  // Upstream cone: every AS that has `asn` in its customer cone
  // (i.e. `asn`'s transitive providers plus itself).
  std::vector<Asn> upstream_cone(Asn asn) const;

 private:
  void compute(const AsGraph& graph, Asn owner);

  std::unordered_map<Asn, std::vector<Asn>> cones_;
  std::unordered_map<Asn, std::unordered_set<Asn>> cone_sets_;
  std::unordered_map<Asn, std::vector<Asn>> providers_;  // reverse index
  static const std::vector<Asn> kEmpty;
};

}  // namespace bgpbh::topology
