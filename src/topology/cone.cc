#include "topology/cone.h"

#include <algorithm>

namespace bgpbh::topology {

const std::vector<Asn> CustomerCones::kEmpty;

CustomerCones::CustomerCones(const AsGraph& graph) {
  for (const auto& node : graph.nodes()) {
    providers_[node.asn] = node.providers;
    compute(graph, node.asn);
  }
}

void CustomerCones::compute(const AsGraph& graph, Asn owner) {
  std::unordered_set<Asn> seen;
  std::vector<Asn> stack{owner};
  seen.insert(owner);
  while (!stack.empty()) {
    Asn cur = stack.back();
    stack.pop_back();
    const AsNode* node = graph.find(cur);
    if (!node) continue;
    for (Asn cust : node->customers) {
      if (seen.insert(cust).second) stack.push_back(cust);
    }
  }
  std::vector<Asn> sorted(seen.begin(), seen.end());
  std::sort(sorted.begin(), sorted.end());
  cone_sets_[owner] = std::move(seen);
  cones_[owner] = std::move(sorted);
}

bool CustomerCones::in_cone(Asn owner, Asn member) const {
  auto it = cone_sets_.find(owner);
  if (it == cone_sets_.end()) return false;
  return it->second.contains(member);
}

const std::vector<Asn>& CustomerCones::cone(Asn owner) const {
  auto it = cones_.find(owner);
  return it == cones_.end() ? kEmpty : it->second;
}

std::vector<Asn> CustomerCones::upstream_cone(Asn asn) const {
  std::unordered_set<Asn> seen{asn};
  std::vector<Asn> stack{asn};
  while (!stack.empty()) {
    Asn cur = stack.back();
    stack.pop_back();
    auto it = providers_.find(cur);
    if (it == providers_.end()) continue;
    for (Asn p : it->second) {
      if (seen.insert(p).second) stack.push_back(p);
    }
  }
  std::vector<Asn> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bgpbh::topology
