#include "topology/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>

#include "util/strings.h"

namespace bgpbh::topology {

namespace {

using util::Rng;

// ASN ranges: core/transit get low numbers (like real Tier-1s), stubs
// higher, IXP route servers a dedicated high block.
constexpr Asn kFirstAsn = 100;
constexpr Asn kRouteServerBase = 59000;

// IPv4 super-blocks: one /16 per AS starting at 20.0.0.0 (clear of the
// Cymru bogon ranges modelled in core/engine).
net::Prefix v4_block_for_index(std::size_t i) {
  std::uint32_t base = (20u << 24) + (static_cast<std::uint32_t>(i) << 16);
  return net::Prefix(net::Ipv4Addr(base), 16);
}

// IXP peering LANs: 185.1.<id>.0/24 style (like real IXP LANs); for ids
// beyond 255 we move to 185.2.x.
net::Prefix ixp_lan_for_id(std::uint32_t id) {
  std::uint32_t base =
      (185u << 24) + ((1u + id / 256u) << 16) + ((id % 256u) << 8);
  return net::Prefix(net::Ipv4Addr(base), 24);
}

net::Ipv6Addr ixp_blackhole_v6(std::uint32_t id) {
  // 2001:7f8:<id>::dead:beef
  net::Ipv6Addr::Bytes b{};
  b[0] = 0x20;
  b[1] = 0x01;
  b[2] = 0x07;
  b[3] = 0xf8;
  b[4] = static_cast<std::uint8_t>(id >> 8);
  b[5] = static_cast<std::uint8_t>(id);
  b[12] = 0xde;
  b[13] = 0xad;
  b[14] = 0xbe;
  b[15] = 0xef;
  return net::Ipv6Addr(b);
}

net::Prefix v6_block_for_index(std::size_t i) {
  // 2a<xx>:<yyyy>::/32-ish blocks; only a handful of v6 prefixes are
  // ever blackholed (paper: <1%) so precision doesn't matter much here.
  net::Ipv6Addr::Bytes b{};
  b[0] = 0x2a;
  b[1] = static_cast<std::uint8_t>(i >> 8);
  b[2] = static_cast<std::uint8_t>(i);
  b[3] = 0;
  return net::Prefix(net::Ipv6Addr(b), 32);
}

struct TypePlan {
  NetworkType type;
  Tier tier;
  std::size_t count;
};

// Draw the per-provider blackhole community convention (§4.1): 51%
// ASN:666, then ASN:66, ASN:999, and a tail of idiosyncratic values.
bgp::Community draw_bh_community(Rng& rng, Asn asn) {
  std::uint16_t low = static_cast<std::uint16_t>(asn & 0xFFFF);
  double u = rng.uniform01();
  if (u < 0.51) return bgp::Community(low, 666);
  if (u < 0.66) return bgp::Community(low, 66);
  if (u < 0.80) return bgp::Community(low, 999);
  // Idiosyncratic: 9999 (Level3-style), 0, or a random 3-digit value.
  double v = rng.uniform01();
  if (v < 0.3) return bgp::Community(low, 9999);
  if (v < 0.5) return bgp::Community(low, 0);
  return bgp::Community(low, static_cast<std::uint16_t>(100 + rng.uniform(900)));
}

}  // namespace

CountryModel CountryModel::paper_model() {
  CountryModel m;
  //            code   providers  users   (Fig 6: RU/US/DE dominate; BR/UA
  //                                       enter the user top-5)
  struct Row { const char* code; double prov; double user; };
  static constexpr Row rows[] = {
      {"RU", 45, 189}, {"US", 40, 120}, {"DE", 30, 95},  {"BR", 10, 80},
      {"UA", 8, 70},   {"GB", 14, 35},  {"NL", 13, 30},  {"FR", 12, 28},
      {"PL", 7, 26},   {"IT", 8, 18},   {"SE", 6, 14},   {"CH", 6, 12},
      {"CZ", 5, 12},   {"ES", 5, 10},   {"RO", 4, 12},   {"CA", 6, 10},
      {"JP", 6, 8},    {"SG", 5, 8},    {"HK", 5, 8},    {"AU", 4, 6},
      {"ZA", 3, 5},    {"AR", 2, 6},    {"IN", 3, 6},    {"ID", 2, 5},
      {"BG", 3, 8},    {"AT", 4, 7},    {"DK", 3, 4},    {"NO", 3, 4},
      {"FI", 3, 4},    {"TR", 2, 6},
  };
  for (const auto& r : rows) {
    m.codes.emplace_back(r.code);
    m.provider_weights.push_back(r.prov);
    m.user_weights.push_back(r.user);
  }
  return m;
}

AsGraph generate(const GeneratorConfig& cfg) {
  Rng rng(cfg.seed);
  AsGraph g;
  CountryModel countries = CountryModel::paper_model();

  // ---- 1. Create AS nodes --------------------------------------------
  const TypePlan plans[] = {
      {NetworkType::kTransitAccess, Tier::kTier1, cfg.num_tier1},
      {NetworkType::kTransitAccess, Tier::kTransit, cfg.num_transit},
      {NetworkType::kContent, Tier::kStub, cfg.num_content},
      {NetworkType::kEnterprise, Tier::kStub, cfg.num_enterprise},
      {NetworkType::kEduResearchNfP, Tier::kStub, cfg.num_edu},
      {NetworkType::kTransitAccess, Tier::kStub, cfg.num_access_stub},
  };

  std::vector<Asn> tier1, transit, stubs;
  std::vector<Asn> content_ases, enterprise_ases, edu_ases, access_stubs;
  Asn next_asn = kFirstAsn;
  std::size_t block_index = 0;

  for (const auto& plan : plans) {
    for (std::size_t i = 0; i < plan.count; ++i) {
      AsNode& node = g.add_as(next_asn++);
      node.type = plan.type;
      node.tier = plan.tier;
      node.v4_block = v4_block_for_index(block_index++);
      // Geography: providers (transit) biased to provider weights,
      // stubs biased to user weights.
      bool provider_bias = plan.tier != Tier::kStub;
      std::size_t ci = rng.weighted(provider_bias
                                        ? std::span<const double>(countries.provider_weights)
                                        : std::span<const double>(countries.user_weights));
      node.country = countries.codes[ci];
      switch (plan.tier) {
        case Tier::kTier1: tier1.push_back(node.asn); break;
        case Tier::kTransit: transit.push_back(node.asn); break;
        case Tier::kStub: stubs.push_back(node.asn); break;
      }
      if (plan.tier == Tier::kStub) {
        switch (plan.type) {
          case NetworkType::kContent: content_ases.push_back(node.asn); break;
          case NetworkType::kEnterprise: enterprise_ases.push_back(node.asn); break;
          case NetworkType::kEduResearchNfP: edu_ases.push_back(node.asn); break;
          default: access_stubs.push_back(node.asn); break;
        }
      }
    }
  }

  // ---- 2. Relationships ----------------------------------------------
  // Tier-1 clique.
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      g.find_mutable(tier1[i])->peers.push_back(tier1[j]);
      g.find_mutable(tier1[j])->peers.push_back(tier1[i]);
    }
  }
  auto connect_c2p = [&g](Asn customer, Asn provider) {
    AsNode* c = g.find_mutable(customer);
    AsNode* p = g.find_mutable(provider);
    if (std::find(c->providers.begin(), c->providers.end(), provider) !=
        c->providers.end())
      return;
    c->providers.push_back(provider);
    p->customers.push_back(customer);
  };

  // Transit tier: 1-2 providers among tier1 (preferential to the first
  // few, emulating the real Tier-1 size skew) plus occasional transit-
  // to-transit customer edges forming a hierarchy.
  for (std::size_t i = 0; i < transit.size(); ++i) {
    std::size_t nprov = 1 + rng.uniform(2);
    for (std::size_t k = 0; k < nprov; ++k) {
      Asn prov = tier1[rng.zipf(tier1.size(), 0.8)];
      connect_c2p(transit[i], prov);
    }
    if (i > 4 && rng.bernoulli(0.35)) {
      // Also buy transit from a (usually earlier = bigger) transit AS.
      Asn prov = transit[rng.zipf(i, 0.9)];
      if (prov != transit[i]) connect_c2p(transit[i], prov);
    }
  }
  // Transit peering mesh.
  for (std::size_t i = 0; i < transit.size(); ++i) {
    for (std::size_t j = i + 1; j < transit.size(); ++j) {
      if (rng.bernoulli(cfg.transit_peering_prob)) {
        g.find_mutable(transit[i])->peers.push_back(transit[j]);
        g.find_mutable(transit[j])->peers.push_back(transit[i]);
      }
    }
  }
  // Stubs: multi-home to transit providers (zipf-skewed: big transits
  // serve many customers — their blackholing user pools, §7).
  for (Asn stub : stubs) {
    double mh = cfg.stub_multihoming_mean;
    std::size_t nprov = 1;
    if (rng.bernoulli(mh - 1.0)) nprov = 2;
    if (rng.bernoulli(0.12)) nprov = 3;
    for (std::size_t k = 0; k < nprov; ++k) {
      Asn prov = transit[rng.zipf(transit.size(), 1.0)];
      connect_c2p(stub, prov);
    }
  }

  // ---- 3. IXPs ---------------------------------------------------------
  // Membership counts are heavily skewed: a few very large IXPs
  // (DE-CIX / Equinix / HK-IX scale) and a long tail (§7).
  static const char* kIxpCities[] = {
      "Frankfurt", "Amsterdam", "London",   "Moscow",  "New York", "Ashburn",
      "Hong Kong", "Sao Paulo", "Tokyo",    "Paris",   "Warsaw",   "Kyiv",
      "Singapore", "Stockholm", "Prague",   "Vienna",  "Milan",    "Seattle",
      "Chicago",   "Palo Alto", "Budapest", "Zurich",  "Dublin",   "Oslo"};
  static const char* kIxpCountries[] = {
      "DE", "NL", "GB", "RU", "US", "US", "HK", "BR", "JP", "FR", "PL", "UA",
      "SG", "SE", "CZ", "AT", "IT", "US", "US", "US", "HU", "CH", "IE", "NO"};

  std::vector<Asn> ixp_eligible;  // content + transit + access stubs peer at IXPs
  ixp_eligible.insert(ixp_eligible.end(), transit.begin(), transit.end());
  ixp_eligible.insert(ixp_eligible.end(), content_ases.begin(), content_ases.end());
  ixp_eligible.insert(ixp_eligible.end(), access_stubs.begin(), access_stubs.end());

  for (std::uint32_t id = 0; id < cfg.num_ixps; ++id) {
    Ixp& ixp = g.add_ixp(id);
    std::size_t city = id % (sizeof(kIxpCities) / sizeof(kIxpCities[0]));
    ixp.city = kIxpCities[city];
    ixp.country = kIxpCountries[city];
    ixp.name = util::strf("%s-IX%u", kIxpCities[city], id);
    ixp.route_server_asn = kRouteServerBase + id;
    ixp.transparent_route_server = rng.bernoulli(0.6);
    ixp.peering_lan = ixp_lan_for_id(id);
    std::uint32_t lan_base = ixp.peering_lan.addr().v4().value();
    ixp.blackhole_ip_v4 = net::IpAddr(net::Ipv4Addr(lan_base + 66));
    ixp.blackhole_ip_v6 = ixp_blackhole_v6(id);
    ixp.has_pch_collector = id < cfg.num_pch_ixps;

    // Membership: size skewed by IXP rank.
    std::size_t target =
        std::max<std::size_t>(4, static_cast<std::size_t>(
            static_cast<double>(cfg.large_ixp_members) /
            std::pow(static_cast<double>(id + 1), cfg.ixp_membership_zipf)));
    target = std::min(target, ixp_eligible.size());
    auto idx = rng.sample_indices(ixp_eligible.size(), target);
    for (auto i : idx) {
      Asn member = ixp_eligible[i];
      ixp.members.push_back(member);
      g.find_mutable(member)->ixps.push_back(id);
    }
    std::sort(ixp.members.begin(), ixp.members.end());
  }

  // ---- 4. Prefix origination -----------------------------------------
  // The 2017 global table is ~640K IPv4 prefixes over ~57K ASes; we
  // scale counts by prefix_scale while keeping the skew (transit and
  // content originate far more prefixes than enterprises).
  std::size_t bi = 0;
  for (auto& node : g.nodes_mutable()) {
    double base;
    switch (node.tier) {
      case Tier::kTier1: base = 220; break;
      case Tier::kTransit: base = 120; break;
      default:
        base = node.type == NetworkType::kContent ? 40 : 12;
        break;
    }
    std::size_t count = std::max<std::size_t>(
        1, static_cast<std::size_t>(base * cfg.prefix_scale *
                                    (0.5 + rng.uniform01())));
    std::uint32_t block = node.v4_block.addr().v4().value();
    node.originated_v4.push_back(node.v4_block);  // the /16 itself
    for (std::size_t k = 1; k < count; ++k) {
      // Random sub-prefix /18../24 of the /16.
      std::uint8_t len = static_cast<std::uint8_t>(18 + rng.uniform(7));
      std::uint32_t offset = static_cast<std::uint32_t>(
          rng.uniform(1u << 16) & ~((1u << (32 - len)) - 1u));
      node.originated_v4.emplace_back(net::Ipv4Addr(block | offset), len);
    }
    std::sort(node.originated_v4.begin(), node.originated_v4.end());
    node.originated_v4.erase(
        std::unique(node.originated_v4.begin(), node.originated_v4.end()),
        node.originated_v4.end());
    // IPv6: one /32 block for ~55% of networks.
    if (rng.bernoulli(0.55)) {
      node.originated_v6.push_back(v6_block_for_index(bi));
    }
    ++bi;
    // Internal more-specifics (visible only on direct CDN feeds).
    node.internal_prefix_count = static_cast<std::uint32_t>(
        static_cast<double>(count) * (2.0 + 3.0 * rng.uniform01()));
    node.accepts_more_specifics = rng.bernoulli(
        node.tier == Tier::kStub ? cfg.accepts_more_specifics_stub
                                 : cfg.accepts_more_specifics_transit);
    // Non-blackhole service communities (TE / relationship tags).
    std::uint16_t low = static_cast<std::uint16_t>(node.asn & 0xFFFF);
    if (node.tier != Tier::kStub || rng.bernoulli(0.3)) {
      std::size_t n = 2 + rng.uniform(4);
      for (std::size_t k = 0; k < n; ++k) {
        node.service_communities.emplace_back(
            low, static_cast<std::uint16_t>(80 + rng.uniform(400)));
      }
    }
  }

  // ---- 5. Blackholing providers ----------------------------------------
  // Documented populations per Table 2. Tier-1s first (13 of the
  // transit/access providers), then large transits, then a slice of
  // access stubs; content/edu/enterprise providers get a customer each
  // so they are reachable as providers.
  auto make_provider = [&](Asn asn, bool documented, Rng& r) {
    AsNode* node = g.find_mutable(asn);
    BlackholePolicy& bp = node->blackhole;
    bp.offers_blackholing = true;
    bgp::Community primary = draw_bh_community(r, asn);
    bp.communities.push_back(primary);
    // Regional variants for ~12% of providers (multiple communities for
    // one provider, §4.1).
    if (r.bernoulli(0.12)) {
      bp.communities.emplace_back(primary.asn(),
                                  static_cast<std::uint16_t>(primary.value() + 1));
      if (r.bernoulli(0.3)) {
        bp.communities.emplace_back(
            primary.asn(), static_cast<std::uint16_t>(primary.value() + 2));
      }
    }
    double ur = r.uniform01();
    bp.auth = ur < 0.80 ? BlackholeAuth::kCustomerCone
                        : (ur < 0.90 ? BlackholeAuth::kRpki : BlackholeAuth::kIrr);
    if (documented) {
      // IRR records contribute the largest share (§4.1: 209 of 307 via
      // IRR, 93 via web pages, 5 via private communication).
      double d = r.uniform01();
      if (d < 209.0 / 302.0) bp.documented_in_irr = true;
      else bp.documented_on_web = true;
    }
    bp.max_accepted_prefix_len = 32;
    bp.leak_probability = cfg.leak_probability_mean * (0.5 + r.uniform01());
    bp.strip_communities_probability = cfg.strip_communities_prob;
    // A community value cannot mean two things at once: drop any service
    // community that collides with the blackhole set.
    std::erase_if(node->service_communities, [&bp](bgp::Community c) {
      return std::find(bp.communities.begin(), bp.communities.end(), c) !=
             bp.communities.end();
    });
  };

  std::vector<Asn> ta_pool;  // transit/access provider candidates
  ta_pool.insert(ta_pool.end(), tier1.begin(), tier1.end());
  ta_pool.insert(ta_pool.end(), transit.begin(), transit.end());
  ta_pool.insert(ta_pool.end(), access_stubs.begin(), access_stubs.end());

  std::size_t ta_needed = cfg.bh_transit_access;
  std::vector<Asn> documented_providers;
  for (std::size_t i = 0; i < ta_pool.size() && documented_providers.size() < ta_needed; ++i) {
    // Take all tier1/transit first; access stubs fill the remainder.
    documented_providers.push_back(ta_pool[i]);
  }
  for (Asn a : documented_providers) make_provider(a, /*documented=*/true, rng);

  auto pick_stub_providers = [&](std::vector<Asn>& pool, std::size_t n,
                                 std::vector<Asn>& out) {
    auto idx = rng.sample_indices(pool.size(), n);
    for (auto i : idx) {
      Asn a = pool[i];
      out.push_back(a);
      make_provider(a, /*documented=*/true, rng);
      // Ensure the provider has at least one customer.
      AsNode* node = g.find_mutable(a);
      if (node->customers.empty()) {
        // Adopt a random access stub as customer.
        Asn cust = access_stubs[rng.uniform(access_stubs.size())];
        if (cust != a) {
          node->customers.push_back(cust);
          g.find_mutable(cust)->providers.push_back(a);
        }
      }
    }
  };
  std::vector<Asn> content_prov, edu_prov, ent_prov, unknown_prov;
  pick_stub_providers(content_ases, cfg.bh_content, content_prov);
  pick_stub_providers(edu_ases, cfg.bh_edu, edu_prov);
  pick_stub_providers(enterprise_ases, cfg.bh_enterprise, ent_prov);

  // "Unknown" providers: access stubs we will hide from both registries.
  {
    std::vector<Asn> pool;
    for (Asn a : access_stubs) {
      if (!g.find(a)->blackhole.offers_blackholing) pool.push_back(a);
    }
    auto idx = rng.sample_indices(pool.size(), cfg.bh_unknown);
    for (auto i : idx) {
      unknown_prov.push_back(pool[i]);
      make_provider(pool[i], /*documented=*/true, rng);
      AsNode* node = g.find_mutable(pool[i]);
      node->type = NetworkType::kUnknown;
      if (node->customers.empty()) {
        Asn cust = access_stubs[rng.uniform(access_stubs.size())];
        if (cust != pool[i]) {
          node->customers.push_back(cust);
          g.find_mutable(cust)->providers.push_back(pool[i]);
        }
      }
    }
    // Most "unknown" providers share the 0:666 community (paper §4.1:
    // shared communities whose first 16 bits are not a public ASN).
    std::size_t shared = 0;
    for (Asn a : unknown_prov) {
      AsNode* node = g.find_mutable(a);
      if (shared + 3 < unknown_prov.size()) {
        node->blackhole.communities.assign(1, bgp::Community(0, 666));
        ++shared;
      }
    }
  }

  // Undocumented providers: transit/access heavy (81), content 14,
  // edu 1, enterprise 3, unknown 3 (Table 2 parentheses).
  {
    struct UPlan { std::vector<Asn>* pool; std::size_t n; };
    std::vector<Asn> ta_rest;
    for (Asn a : ta_pool) {
      if (!g.find(a)->blackhole.offers_blackholing) ta_rest.push_back(a);
    }
    std::vector<Asn> content_rest, edu_rest, ent_rest;
    for (Asn a : content_ases)
      if (!g.find(a)->blackhole.offers_blackholing) content_rest.push_back(a);
    for (Asn a : edu_ases)
      if (!g.find(a)->blackhole.offers_blackholing) edu_rest.push_back(a);
    for (Asn a : enterprise_ases)
      if (!g.find(a)->blackhole.offers_blackholing) ent_rest.push_back(a);

    std::size_t n_ta = cfg.bh_undocumented * 81 / 102;
    std::size_t n_co = cfg.bh_undocumented * 14 / 102;
    std::size_t n_ed = std::max<std::size_t>(1, cfg.bh_undocumented / 102);
    std::size_t n_en = cfg.bh_undocumented * 3 / 102;
    std::size_t n_un = cfg.bh_undocumented - n_ta - n_co - n_ed - n_en;

    auto take = [&](std::vector<Asn>& pool, std::size_t n, bool make_unknown) {
      auto idx = rng.sample_indices(pool.size(), n);
      for (auto i : idx) {
        make_provider(pool[i], /*documented=*/false, rng);
        AsNode* node = g.find_mutable(pool[i]);
        if (make_unknown) node->type = NetworkType::kUnknown;
        if (node->customers.empty() && node->tier == Tier::kStub) {
          Asn cust = access_stubs[rng.uniform(access_stubs.size())];
          if (cust != pool[i]) {
            node->customers.push_back(cust);
            g.find_mutable(cust)->providers.push_back(pool[i]);
          }
        }
        // ~9% of undocumented providers use an extra regional variant,
        // yielding 111 communities over 102 ASes.
        if (node->blackhole.communities.size() == 1 && rng.bernoulli(0.09)) {
          auto c = node->blackhole.communities[0];
          node->blackhole.communities.emplace_back(
              c.asn(), static_cast<std::uint16_t>(c.value() + 1));
        }
      }
    };
    take(ta_rest, n_ta, false);
    take(content_rest, n_co, false);
    take(edu_rest, n_ed, false);
    take(ent_rest, n_en, false);
    std::vector<Asn> un_pool;
    for (Asn a : access_stubs)
      if (!g.find(a)->blackhole.offers_blackholing) un_pool.push_back(a);
    take(un_pool, n_un, true);
  }

  // One documented provider adopts a large community for blackholing
  // (paper: 6 of 307 use the new formats; only 1 for blackholing).
  if (!documented_providers.empty()) {
    AsNode* node = g.find_mutable(documented_providers[documented_providers.size() / 2]);
    node->blackhole.large_community =
        bgp::LargeCommunity(node->asn, 666, 0);
  }

  // IXP blackholing: 47 of 49 use RFC 7999 65535:666; 2 use a custom
  // community (§4.1).
  {
    std::vector<std::size_t> with_pch, without_pch;
    for (std::size_t i = 0; i < g.ixps().size(); ++i) {
      (g.ixps()[i].has_pch_collector ? with_pch : without_pch).push_back(i);
    }
    std::vector<std::size_t> chosen;
    // The largest IXPs (DE-CIX / Equinix / HK-IX scale) are the ones
    // offering blackholing; sample from the top of the size ranking
    // (ids are size-ordered by construction).
    std::size_t pool = std::min(with_pch.size(), cfg.num_bh_ixps_with_pch + 14);
    auto idx1 = rng.sample_indices(pool,
                                   std::min(cfg.num_bh_ixps_with_pch, pool));
    for (auto i : idx1) chosen.push_back(with_pch[i]);
    std::size_t rest = cfg.num_blackholing_ixps - chosen.size();
    auto idx2 = rng.sample_indices(without_pch.size(),
                                   std::min(rest, without_pch.size()));
    for (auto i : idx2) chosen.push_back(without_pch[i]);
    std::size_t custom_budget = 2;
    for (std::size_t k = 0; k < chosen.size(); ++k) {
      Ixp& ixp = g.ixps_mutable()[chosen[k]];
      ixp.offers_blackholing = true;
      if (custom_budget > 0 && k + custom_budget >= chosen.size()) {
        ixp.blackhole_community = bgp::Community(
            static_cast<std::uint16_t>(ixp.route_server_asn & 0xFFFF), 666);
        --custom_budget;
      } else {
        ixp.blackhole_community = bgp::Community::rfc7999_blackhole();
      }
    }
  }

  // Every blackholing provider must have at least one customer (the
  // population that can invoke its service); adopt a stub otherwise.
  for (auto& node : g.nodes_mutable()) {
    if (!node.blackhole.offers_blackholing || !node.customers.empty()) continue;
    Asn cust = access_stubs[rng.uniform(access_stubs.size())];
    if (cust == node.asn) cust = access_stubs[(rng.uniform(access_stubs.size()))];
    if (cust != node.asn) {
      node.customers.push_back(cust);
      g.find_mutable(cust)->providers.push_back(node.asn);
    }
  }

  g.finalize();
  return g;
}

}  // namespace bgpbh::topology
