// Synthetic Internet topology generator.
//
// Produces an AS-level graph whose *structure* matches what the paper's
// datasets exhibit: a small Tier-1 clique, a transit hierarchy, stub
// networks of the PeeringDB/CAIDA types, IXPs with route servers, and a
// blackholing-provider population matching Table 2 exactly by default
// (307 documented providers: 198 transit/access, 49 IXPs, 23 content,
// 15 edu/research/NfP, 8 enterprise, 14 unknown; plus 102 providers
// with undocumented communities).
//
// All draws are deterministic given `seed`.
#pragma once

#include <cstdint>

#include "topology/as_graph.h"
#include "util/rng.h"

namespace bgpbh::topology {

struct GeneratorConfig {
  std::uint64_t seed = 42;

  // AS population by role.
  std::size_t num_tier1 = 12;         // 13 Tier-1s in the dictionary; 12 core
  std::size_t num_transit = 288;      // mid-tier transit providers
  std::size_t num_content = 500;      // content/hosting/cloud (attack magnets)
  std::size_t num_enterprise = 300;
  std::size_t num_edu = 150;
  std::size_t num_access_stub = 750;  // eyeball/access stubs (Transit/Access type)

  // IXPs. The paper: PCH collectors at 111 IXPs; 49 IXPs offer
  // blackholing (26 with a PCH collector + 23 discovered by scraping).
  std::size_t num_ixps = 140;
  std::size_t num_pch_ixps = 111;
  std::size_t num_blackholing_ixps = 49;
  std::size_t num_bh_ixps_with_pch = 26;

  // Documented blackholing providers per type (Table 2).
  std::size_t bh_transit_access = 198;
  std::size_t bh_content = 23;
  std::size_t bh_edu = 15;
  std::size_t bh_enterprise = 8;
  std::size_t bh_unknown = 14;
  // Undocumented providers (inferred-dictionary population, Table 2
  // parentheses): type split handled internally (81/14/1/3/3).
  std::size_t bh_undocumented = 102;

  // Tier-1s among the documented transit/access providers.
  std::size_t bh_tier1 = 13;

  // Prefix-origination scale relative to the real Internet (~640K IPv4
  // prefixes in 2017).  0.1 keeps memory modest while preserving the
  // per-dataset ratios of Table 1.
  double prefix_scale = 0.10;

  // Average connectivity.
  double stub_multihoming_mean = 1.8;    // providers per stub
  double transit_peering_prob = 0.06;    // p2p among transit tier
  double ixp_membership_zipf = 0.9;      // membership skew across IXPs
  std::size_t large_ixp_members = 420;   // DE-CIX-like membership count

  // Behaviour knobs.
  double accepts_more_specifics_transit = 0.40;
  double accepts_more_specifics_stub = 0.20;
  double leak_probability_mean = 0.10;    // onward /32 propagation
  double strip_communities_prob = 0.15;
  double peeringdb_coverage = 0.72;       // fraction of ASes with a record
  double caida_coverage = 0.95;           // fallback classification coverage
};

// Country weights used for provider/user geography (Fig 6).
struct CountryModel {
  std::vector<std::string> codes;
  std::vector<double> provider_weights;
  std::vector<double> user_weights;
  static CountryModel paper_model();
};

AsGraph generate(const GeneratorConfig& config);

}  // namespace bgpbh::topology
