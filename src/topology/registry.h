// External metadata registries, modelled after the paper's sources:
//
// * PeeringDB: voluntary, incomplete per-AS records (network type,
//   declared info) and authoritative IXP records (peering LAN, route
//   server ASN) — §4.1/§4.2 rely on both.
// * CAIDA AS classification: broader coverage, coarser classes
//   (Transit/Access, Content, Enterprise).
// * RIR delegation: country of registration (Fig 6).
//
// The registry view is deliberately *incomplete and lossy* relative to
// the ground-truth AsGraph, as in reality: the classification pipeline
// (classify(), §4.1) must fall back across sources and may return
// Unknown.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "topology/as_graph.h"
#include "util/rng.h"

namespace bgpbh::topology {

// PeeringDB network-type strings (subset that matters for Table 2/4).
enum class PdbType : std::uint8_t {
  kNsp,            // "NSP" -> Transit/Access
  kCableDslIsp,    // "Cable/DSL/ISP" -> Transit/Access
  kContent,
  kEnterprise,
  kEducational,    // "Educational/Research"
  kNonProfit,      // "Not-for-Profit"
  kRouteServer,
  kNotDisclosed,
};

std::string to_string(PdbType t);

struct PdbNetRecord {
  Asn asn = 0;
  PdbType type = PdbType::kNotDisclosed;
  std::string name;
};

struct PdbIxpRecord {
  std::uint32_t ixp_id = 0;
  std::string name;
  net::Prefix peering_lan;
  Asn route_server_asn = 0;
  std::string country;
};

enum class CaidaClass : std::uint8_t { kTransitAccess, kContent, kEnterprise };

class Registry {
 public:
  // Builds registry contents from ground truth with the configured
  // coverage rates (some ASes end up in neither source -> Unknown).
  static Registry build(const AsGraph& graph, double peeringdb_coverage,
                        double caida_coverage, std::uint64_t seed);

  std::optional<PdbNetRecord> peeringdb(Asn asn) const;
  std::optional<PdbIxpRecord> peeringdb_ixp(std::uint32_t ixp_id) const;
  // True if `ip` is inside any PeeringDB-listed IXP LAN; returns the id.
  std::optional<std::uint32_t> ixp_lan_containing(const net::IpAddr& ip) const;

  std::optional<CaidaClass> caida(Asn asn) const;
  std::optional<std::string> rir_country(Asn asn) const;

  // The paper's classification procedure (§4.1): PeeringDB network type
  // first; if absent or undisclosed, CAIDA's class; else Unknown.
  NetworkType classify(Asn asn) const;

  std::size_t peeringdb_size() const { return pdb_.size(); }
  std::size_t caida_size() const { return caida_.size(); }

 private:
  std::unordered_map<Asn, PdbNetRecord> pdb_;
  std::unordered_map<std::uint32_t, PdbIxpRecord> pdb_ixp_;
  std::unordered_map<Asn, CaidaClass> caida_;
  std::unordered_map<Asn, std::string> rir_;
  net::PrefixTable<std::uint32_t> ixp_lans_;
};

}  // namespace bgpbh::topology
