// AS-level Internet model: autonomous systems, business relationships,
// IXPs with route servers, and per-AS blackholing policy.
//
// The graph is the ground-truth substrate every other subsystem works
// against: the routing simulator propagates announcements over it, the
// registry exposes (partially incomplete) metadata about it, and the
// workload generator schedules blackholing events on it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/aspath.h"
#include "bgp/community.h"
#include "net/patricia.h"
#include "net/prefix.h"

namespace bgpbh::topology {

using bgp::Asn;

// Network types, following the PeeringDB/CAIDA merged convention the
// paper uses for Tables 2 and 4 (§4.1).
enum class NetworkType : std::uint8_t {
  kTransitAccess,   // PeeringDB NSP + Cable/DSL/ISP (CAIDA merged class)
  kIxp,
  kContent,
  kEnterprise,
  kEduResearchNfP,  // PeeringDB-only classes
  kUnknown,
};

std::string to_string(NetworkType t);

enum class Tier : std::uint8_t { kTier1, kTransit, kStub };

// How a blackholing provider authenticates blackholing requests (§2).
enum class BlackholeAuth : std::uint8_t {
  kCustomerCone,  // accept if prefix originates in the customer cone
  kRpki,          // accept only RPKI-valid announcements
  kIrr,           // accept only if the prefix is registered in an IRR
};

// Blackholing-provider behaviour knobs (drawn per AS by the generator).
struct BlackholePolicy {
  bool offers_blackholing = false;
  // Provider-chosen communities that trigger blackholing; the first is
  // the global one, the rest are regional/scoped variants.
  std::vector<bgp::Community> communities;
  std::optional<bgp::LargeCommunity> large_community;
  BlackholeAuth auth = BlackholeAuth::kCustomerCone;
  // Documented in IRR records / web pages (drives dictionary coverage;
  // undocumented providers are only discoverable via inference, Fig 2).
  bool documented_in_irr = false;
  bool documented_on_web = false;
  bool documented_privately = false;
  std::uint8_t max_accepted_prefix_len = 32;  // meta-info (§4.1)
  // Fraction of neighbours to which this AS leaks blackholed
  // more-specifics onward (the paper finds 30% propagate >= 1 hop).
  double leak_probability = 0.0;
  // Probability that this AS strips communities when exporting.
  double strip_communities_probability = 0.0;
};

struct AsNode {
  Asn asn = 0;
  NetworkType type = NetworkType::kUnknown;
  Tier tier = Tier::kStub;
  std::string country;  // RIR-registered ISO code, e.g. "RU"

  std::vector<Asn> providers;
  std::vector<Asn> customers;
  std::vector<Asn> peers;      // settlement-free bilateral peers
  std::vector<std::uint32_t> ixps;  // IXP ids this AS is a member of

  // Address space: one /16 super-block, public prefixes carved from it,
  // plus "internal" more-specifics visible only on direct (CDN) feeds.
  net::Prefix v4_block;
  std::vector<net::Prefix> originated_v4;
  std::vector<net::Prefix> originated_v6;
  std::uint32_t internal_prefix_count = 0;

  BlackholePolicy blackhole;

  // Whether this AS accepts routes more specific than /24 from
  // neighbours at all (some do despite best practice — how bundled
  // blackhole routes reach collectors, Fig 3).
  bool accepts_more_specifics = false;

  // Non-blackhole communities this AS attaches to routes it propagates
  // (traffic engineering, relationship tagging) — noise the dictionary
  // builder must not confuse with blackhole communities.
  std::vector<bgp::Community> service_communities;

  bool is_transit() const { return !customers.empty(); }
};

struct Ixp {
  std::uint32_t id = 0;
  std::string name;
  std::string country;
  std::string city;
  Asn route_server_asn = 0;
  // Transparent route servers do not insert their ASN into AS_PATH;
  // detection must then rely on the peer-ip ∈ peering-LAN check (§4.2).
  bool transparent_route_server = true;
  net::Prefix peering_lan;          // IPv4 LAN
  net::IpAddr blackhole_ip_v4;      // conventionally .66 (§4.1)
  net::Ipv6Addr blackhole_ip_v6;    // conventionally dead:beef
  std::vector<Asn> members;
  bool offers_blackholing = false;
  bgp::Community blackhole_community;  // 65535:666 for 47 of 49 (§4.1)
  bool documented = true;
  bool has_pch_collector = false;  // PCH operates a collector here
};

class AsGraph {
 public:
  AsNode& add_as(Asn asn);
  Ixp& add_ixp(std::uint32_t id);

  const AsNode* find(Asn asn) const;
  AsNode* find_mutable(Asn asn);
  const Ixp* find_ixp(std::uint32_t id) const;
  Ixp* find_ixp_mutable(std::uint32_t id);
  // IXP whose route server has the given ASN, if any.
  const Ixp* ixp_by_route_server(Asn rs_asn) const;
  // IXP whose peering LAN contains the given address, if any.
  const Ixp* ixp_by_lan_ip(const net::IpAddr& ip) const;

  // Dense index of an AS in nodes() (stable once built).
  std::optional<std::size_t> index_of(Asn asn) const;

  const std::vector<AsNode>& nodes() const { return nodes_; }
  std::vector<AsNode>& nodes_mutable() { return nodes_; }
  const std::vector<Ixp>& ixps() const { return ixps_; }
  std::vector<Ixp>& ixps_mutable() { return ixps_; }

  std::size_t num_ases() const { return nodes_.size(); }
  std::size_t num_ixps() const { return ixps_.size(); }

  // Relationship of edge a->b from a's point of view.
  enum class Rel { kProvider, kCustomer, kPeer, kNone };
  Rel relationship(Asn a, Asn b) const;

  // True if a and b share at least one IXP.
  bool share_ixp(Asn a, Asn b) const;

  // AS originating the longest matching public prefix for ip.
  std::optional<Asn> origin_of(const net::IpAddr& ip) const;
  // Longest matching public prefix.
  std::optional<net::Prefix> covering_prefix(const net::IpAddr& ip) const;

  // Must be called once after construction to build lookup indexes.
  void finalize();

 private:
  std::vector<AsNode> nodes_;
  std::vector<Ixp> ixps_;
  std::unordered_map<Asn, std::size_t> by_asn_;
  std::unordered_map<std::uint32_t, std::size_t> ixp_by_id_;
  std::unordered_map<Asn, std::size_t> ixp_by_rs_;
  net::PrefixTable<Asn> origin_table_;
  bool finalized_ = false;
};

}  // namespace bgpbh::topology
