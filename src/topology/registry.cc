#include "topology/registry.h"

namespace bgpbh::topology {

std::string to_string(PdbType t) {
  switch (t) {
    case PdbType::kNsp: return "NSP";
    case PdbType::kCableDslIsp: return "Cable/DSL/ISP";
    case PdbType::kContent: return "Content";
    case PdbType::kEnterprise: return "Enterprise";
    case PdbType::kEducational: return "Educational/Research";
    case PdbType::kNonProfit: return "Not-for-Profit";
    case PdbType::kRouteServer: return "Route Server";
    case PdbType::kNotDisclosed: return "Not Disclosed";
  }
  return "?";
}

Registry Registry::build(const AsGraph& graph, double peeringdb_coverage,
                         double caida_coverage, std::uint64_t seed) {
  util::Rng rng(seed ^ 0x9d2cb1a7ULL);
  Registry reg;

  for (const auto& node : graph.nodes()) {
    // RIR registration is complete (every AS has a registered country).
    reg.rir_[node.asn] = node.country;

    // "Unknown"-typed ASes are unknown precisely because they appear in
    // neither registry.
    if (node.type == NetworkType::kUnknown) continue;

    if (rng.bernoulli(peeringdb_coverage)) {
      PdbNetRecord rec;
      rec.asn = node.asn;
      rec.name = "AS" + std::to_string(node.asn);
      // A PeeringDB record may exist but not disclose the type.
      if (rng.bernoulli(0.08)) {
        rec.type = PdbType::kNotDisclosed;
      } else {
        switch (node.type) {
          case NetworkType::kTransitAccess:
            rec.type = node.tier == Tier::kStub ? PdbType::kCableDslIsp
                                                : PdbType::kNsp;
            break;
          case NetworkType::kContent: rec.type = PdbType::kContent; break;
          case NetworkType::kEnterprise: rec.type = PdbType::kEnterprise; break;
          case NetworkType::kEduResearchNfP:
            rec.type = rng.bernoulli(0.8) ? PdbType::kEducational
                                          : PdbType::kNonProfit;
            break;
          default: rec.type = PdbType::kNotDisclosed; break;
        }
      }
      reg.pdb_.emplace(node.asn, std::move(rec));
    }
    if (rng.bernoulli(caida_coverage)) {
      CaidaClass c;
      switch (node.type) {
        case NetworkType::kContent: c = CaidaClass::kContent; break;
        case NetworkType::kEnterprise: c = CaidaClass::kEnterprise; break;
        case NetworkType::kEduResearchNfP:
          // CAIDA has no edu class; most land in Enterprise.
          c = CaidaClass::kEnterprise;
          break;
        default: c = CaidaClass::kTransitAccess; break;
      }
      reg.caida_.emplace(node.asn, c);
    }
  }

  // IXP records are effectively complete in PeeringDB.
  for (const auto& ixp : graph.ixps()) {
    PdbIxpRecord rec;
    rec.ixp_id = ixp.id;
    rec.name = ixp.name;
    rec.peering_lan = ixp.peering_lan;
    rec.route_server_asn = ixp.route_server_asn;
    rec.country = ixp.country;
    reg.pdb_ixp_.emplace(ixp.id, rec);
    reg.ixp_lans_.insert(ixp.peering_lan, ixp.id);
    // Route-server ASNs get a PeeringDB record typed Route Server.
    PdbNetRecord rs;
    rs.asn = ixp.route_server_asn;
    rs.type = PdbType::kRouteServer;
    rs.name = ixp.name + " RS";
    reg.pdb_.emplace(rs.asn, std::move(rs));
    reg.rir_[ixp.route_server_asn] = ixp.country;
  }

  return reg;
}

std::optional<PdbNetRecord> Registry::peeringdb(Asn asn) const {
  auto it = pdb_.find(asn);
  if (it == pdb_.end()) return std::nullopt;
  return it->second;
}

std::optional<PdbIxpRecord> Registry::peeringdb_ixp(std::uint32_t ixp_id) const {
  auto it = pdb_ixp_.find(ixp_id);
  if (it == pdb_ixp_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> Registry::ixp_lan_containing(
    const net::IpAddr& ip) const {
  const std::uint32_t* id = ixp_lans_.lookup(ip);
  if (!id) return std::nullopt;
  return *id;
}

std::optional<CaidaClass> Registry::caida(Asn asn) const {
  auto it = caida_.find(asn);
  if (it == caida_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Registry::rir_country(Asn asn) const {
  auto it = rir_.find(asn);
  if (it == rir_.end()) return std::nullopt;
  return it->second;
}

NetworkType Registry::classify(Asn asn) const {
  if (auto rec = peeringdb(asn)) {
    switch (rec->type) {
      case PdbType::kNsp:
      case PdbType::kCableDslIsp:
        return NetworkType::kTransitAccess;
      case PdbType::kContent: return NetworkType::kContent;
      case PdbType::kEnterprise: return NetworkType::kEnterprise;
      case PdbType::kEducational:
      case PdbType::kNonProfit:
        return NetworkType::kEduResearchNfP;
      case PdbType::kRouteServer: return NetworkType::kIxp;
      case PdbType::kNotDisclosed: break;  // fall through to CAIDA
    }
  }
  if (auto c = caida(asn)) {
    switch (*c) {
      case CaidaClass::kTransitAccess: return NetworkType::kTransitAccess;
      case CaidaClass::kContent: return NetworkType::kContent;
      case CaidaClass::kEnterprise: return NetworkType::kEnterprise;
    }
  }
  return NetworkType::kUnknown;
}

}  // namespace bgpbh::topology
