#include "topology/as_graph.h"

#include <algorithm>
#include <cassert>

namespace bgpbh::topology {

std::string to_string(NetworkType t) {
  switch (t) {
    case NetworkType::kTransitAccess: return "Transit/Access";
    case NetworkType::kIxp: return "IXP";
    case NetworkType::kContent: return "Content";
    case NetworkType::kEnterprise: return "Enterprise";
    case NetworkType::kEduResearchNfP: return "Educ./Res./NfP";
    case NetworkType::kUnknown: return "Unknown";
  }
  return "?";
}

AsNode& AsGraph::add_as(Asn asn) {
  assert(!finalized_);
  by_asn_.emplace(asn, nodes_.size());
  nodes_.emplace_back();
  nodes_.back().asn = asn;
  return nodes_.back();
}

Ixp& AsGraph::add_ixp(std::uint32_t id) {
  assert(!finalized_);
  ixp_by_id_.emplace(id, ixps_.size());
  ixps_.emplace_back();
  ixps_.back().id = id;
  return ixps_.back();
}

std::optional<std::size_t> AsGraph::index_of(Asn asn) const {
  auto it = by_asn_.find(asn);
  if (it == by_asn_.end()) return std::nullopt;
  return it->second;
}

const AsNode* AsGraph::find(Asn asn) const {
  auto it = by_asn_.find(asn);
  return it == by_asn_.end() ? nullptr : &nodes_[it->second];
}

AsNode* AsGraph::find_mutable(Asn asn) {
  auto it = by_asn_.find(asn);
  return it == by_asn_.end() ? nullptr : &nodes_[it->second];
}

const Ixp* AsGraph::find_ixp(std::uint32_t id) const {
  auto it = ixp_by_id_.find(id);
  return it == ixp_by_id_.end() ? nullptr : &ixps_[it->second];
}

Ixp* AsGraph::find_ixp_mutable(std::uint32_t id) {
  auto it = ixp_by_id_.find(id);
  return it == ixp_by_id_.end() ? nullptr : &ixps_[it->second];
}

const Ixp* AsGraph::ixp_by_route_server(Asn rs_asn) const {
  auto it = ixp_by_rs_.find(rs_asn);
  return it == ixp_by_rs_.end() ? nullptr : &ixps_[it->second];
}

const Ixp* AsGraph::ixp_by_lan_ip(const net::IpAddr& ip) const {
  for (const auto& ixp : ixps_) {
    if (ixp.peering_lan.contains(ip)) return &ixp;
  }
  return nullptr;
}

AsGraph::Rel AsGraph::relationship(Asn a, Asn b) const {
  const AsNode* n = find(a);
  if (!n) return Rel::kNone;
  if (std::find(n->providers.begin(), n->providers.end(), b) != n->providers.end())
    return Rel::kProvider;
  if (std::find(n->customers.begin(), n->customers.end(), b) != n->customers.end())
    return Rel::kCustomer;
  if (std::find(n->peers.begin(), n->peers.end(), b) != n->peers.end())
    return Rel::kPeer;
  return Rel::kNone;
}

bool AsGraph::share_ixp(Asn a, Asn b) const {
  const AsNode* na = find(a);
  const AsNode* nb = find(b);
  if (!na || !nb) return false;
  for (auto ia : na->ixps) {
    if (std::find(nb->ixps.begin(), nb->ixps.end(), ia) != nb->ixps.end())
      return true;
  }
  return false;
}

std::optional<Asn> AsGraph::origin_of(const net::IpAddr& ip) const {
  assert(finalized_);
  const Asn* origin = origin_table_.lookup(ip);
  if (!origin) return std::nullopt;
  return *origin;
}

std::optional<net::Prefix> AsGraph::covering_prefix(const net::IpAddr& ip) const {
  assert(finalized_);
  net::Prefix matched;
  const Asn* origin = origin_table_.lookup(ip, &matched);
  if (!origin) return std::nullopt;
  return matched;
}

void AsGraph::finalize() {
  for (std::size_t i = 0; i < ixps_.size(); ++i) {
    if (ixps_[i].route_server_asn != 0) {
      ixp_by_rs_.emplace(ixps_[i].route_server_asn, i);
    }
  }
  for (const auto& node : nodes_) {
    for (const auto& p : node.originated_v4) origin_table_.insert(p, node.asn);
    for (const auto& p : node.originated_v6) origin_table_.insert(p, node.asn);
  }
  finalized_ = true;
}

}  // namespace bgpbh::topology
