// Exporters for MetricsRegistry snapshots.
//
// Two render targets, one source of truth:
//   * Prometheus text exposition format (the scrape/ops surface):
//     HELP/TYPE headers, `{shard="i"}` labels for sharded instruments,
//     cumulative `_bucket{le="..."}` series + `_sum`/`_count` for
//     histograms.  Metric names are sanitized (`.` and `-` -> `_`) and
//     prefixed (default `bgpbh_`).
//   * BENCH-style flat JSON (the perf-trajectory surface): counters
//     and gauges as plain numbers, histograms as
//     {count, mean, p50, p90, p99, max} objects — the exact shape the
//     checked-in BENCH_*.json files carry, so perf_stream/perf_micro
//     emit their stage breakdowns straight from a registry.
#pragma once

#include <string>
#include <string_view>

#include "telemetry/metrics.h"

namespace bgpbh::telemetry {

// Full Prometheus text dump of the snapshot.
std::string to_prometheus(const MetricsRegistry::Snapshot& snapshot,
                          std::string_view prefix = "bgpbh");

// Flat JSON object ("{...}") of every metric whose name starts with
// `name_prefix`; the prefix is stripped from the emitted keys.  An
// empty prefix exports everything.  Values: counters/gauges as numbers
// (integral values without a decimal point), histograms as nested
// objects.  `indent` spaces of indentation per line; 0 packs one line.
std::string to_json_object(const MetricsRegistry::Snapshot& snapshot,
                           std::string_view name_prefix = "",
                           int indent = 0);

// One JSON number formatted like the exporters format it (integral ->
// no decimal point, else fixed 4 digits) — exposed so tests can assert
// exporter agreement without re-implementing the formatting.
std::string json_number(double v);

}  // namespace bgpbh::telemetry
