#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace bgpbh::telemetry {

namespace {

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof(buf) - 1));
}

const char* type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string json_number(double v) {
  char buf[64];
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

std::string to_prometheus(const MetricsRegistry::Snapshot& snapshot,
                          std::string_view prefix) {
  std::string out;
  const std::string pre =
      prefix.empty() ? std::string() : sanitize(prefix) + "_";
  for (const auto& m : snapshot.metrics) {
    const std::string name = pre + sanitize(m.name);
    if (!m.help.empty()) {
      appendf(out, "# HELP %s %s\n", name.c_str(), m.help.c_str());
    }
    appendf(out, "# TYPE %s %s\n", name.c_str(), type_name(m.kind));
    if (m.kind == MetricKind::kHistogram) {
      for (const auto& [upper, cumulative] : m.hist.buckets) {
        appendf(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                name.c_str(), upper, cumulative);
      }
      appendf(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
              m.hist.count);
      appendf(out, "%s_sum %" PRIu64 "\n", name.c_str(), m.hist.sum);
      appendf(out, "%s_count %" PRIu64 "\n", name.c_str(), m.hist.count);
      continue;
    }
    if (m.per_shard.empty()) {
      appendf(out, "%s %s\n", name.c_str(), json_number(m.value).c_str());
    } else {
      for (const auto& [shard, v] : m.per_shard) {
        appendf(out, "%s{shard=\"%zu\"} %s\n", name.c_str(), shard,
                json_number(v).c_str());
      }
    }
  }
  return out;
}

std::string to_json_object(const MetricsRegistry::Snapshot& snapshot,
                           std::string_view name_prefix, int indent) {
  std::string out = "{";
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) : 0, ' ');
  const char* sep = "";
  for (const auto& m : snapshot.metrics) {
    if (m.name.size() < name_prefix.size() ||
        m.name.compare(0, name_prefix.size(), name_prefix) != 0) {
      continue;
    }
    const std::string key = m.name.substr(name_prefix.size());
    out += sep;
    sep = indent > 0 ? "," : ", ";
    if (indent > 0) {
      out += "\n";
      out += pad;
    }
    out += "\"" + key + "\": ";
    if (m.kind == MetricKind::kHistogram) {
      out += "{\"count\": " + json_number(static_cast<double>(m.hist.count)) +
             ", \"mean\": " + json_number(m.hist.mean()) +
             ", \"p50\": " + json_number(m.hist.percentile(0.50)) +
             ", \"p90\": " + json_number(m.hist.percentile(0.90)) +
             ", \"p99\": " + json_number(m.hist.percentile(0.99)) +
             ", \"max\": " + json_number(static_cast<double>(m.hist.max)) +
             "}";
    } else {
      out += json_number(m.value);
    }
  }
  if (indent > 0 && out.size() > 1) out += "\n";
  out += "}";
  return out;
}

}  // namespace bgpbh::telemetry
