// Unified telemetry layer: the metrics substrate every runtime layer
// (stream, api, storage, bench, examples) records into.
//
// Design constraints, in priority order:
//   1. The record path is allocation-free and lock-free: a Counter add
//      or LatencyHistogram record is one (histogram: a handful of)
//      relaxed atomic RMWs on instrument-owned storage.  Instruments
//      are created once, at wiring time, and the references handed out
//      are stable for the registry's lifetime — the ingest hot path
//      never touches the registry itself.
//   2. Hot-path layers keep their existing relaxed counters (queue
//      indices, shard gauges, pool watermarks) and the registry SAMPLES
//      them at snapshot time through collection hooks — observability
//      must not add stores to paths that already publish the number.
//   3. Per-shard (or per-producer / per-sink) instruments share one
//      metric name and are FOLDED on snapshot: counters and gauges sum,
//      histograms merge bucket-wise — so N shards recording into N
//      disjoint cache lines still export as one logical metric, with
//      the per-shard split preserved for exporters that want labels.
//
// LatencyHistogram is HDR-style: fixed-size log-bucketed (8 linear
// sub-buckets per power of two, ≤12.5% relative error), covering
// 0 ns .. ~18 min, ~2.4 KiB of atomics per instrument, no allocation
// ever after construction.
//
// Consumption: MetricsRegistry::snapshot() runs the hooks, folds every
// instrument, and returns a plain-data Snapshot; telemetry/export.h
// renders it as Prometheus text or BENCH-style JSON.  The registry is
// exposed per session through api::AnalysisSession::telemetry() and
// per pipeline through stream::StreamPipeline::metrics().
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/trace.h"

namespace bgpbh::telemetry {

// Monotonically increasing count.  add() is the recording edge;
// set_total() is for collection hooks that mirror an externally
// maintained monotonic total (a queue's stall count, a writer's
// segments-sealed count) into the registry at snapshot time — the one
// writer is the hook, so a plain relaxed store suffices.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void set_total(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Point-in-time level (queue depth, open events, pool occupancy).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Folded, plain-data view of one histogram — what exporters and tests
// consume.  `buckets` carries (inclusive upper bound, cumulative
// count) for every bucket that closed a non-zero increment, ending
// with the total count (the +Inf bucket when values were clamped).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  // Value at quantile q in [0,1]: the upper bound of the first bucket
  // whose cumulative count reaches q*count (≤12.5% above the true
  // quantile by bucket construction).
  double percentile(double q) const;

  // Bucket-exact merge of another snapshot into this one — the same
  // rebuild-then-reaccumulate fold LatencyHistogram::fold_into uses,
  // lifted to snapshot×snapshot so fleet aggregation can fold remote
  // histograms without access to the live instruments.
  void merge_from(const HistogramSnapshot& other);
};

// Fixed-size log-bucketed latency histogram (nanosecond domain, but
// unit-agnostic: it buckets any uint64).  Values 0..7 get exact
// buckets; above that, each power of two splits into 8 linear
// sub-buckets; values beyond ~2^40 clamp into the last bucket.
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 3;                  // 8 sub-buckets
  static constexpr unsigned kSub = 1u << kSubBits;
  static constexpr unsigned kMaxPow = 40;                  // ~18.3 minutes in ns
  static constexpr std::size_t kBuckets = (kMaxPow - kSubBits + 1) * kSub;

  // Allocation-free, lock-free: one bucket RMW + count/sum RMWs + two
  // bounded CAS loops for min/max.  Safe from any number of threads,
  // though instruments are normally per-shard precisely so recording
  // threads never share these cache lines.
  void record(std::uint64_t v) {
    buckets_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  // Adds this instrument's buckets and counters into `into` — the
  // per-shard fold.  Folding N shard instruments is bucket-wise
  // identical to one instrument having recorded every value (tested
  // against a sequential reference in test_telemetry).
  void fold_into(HistogramSnapshot& into) const;

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    fold_into(s);
    return s;
  }

  // Bucket index for a value (public for boundary tests).
  static std::size_t bucket_for(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned h = 63u - static_cast<unsigned>(std::countl_zero(v));
    if (h >= kMaxPow) return kBuckets - 1;
    const std::size_t major = h - kSubBits + 1;
    const std::size_t minor =
        static_cast<std::size_t>(v >> (h - kSubBits)) & (kSub - 1);
    return major * kSub + minor;
  }

  // Inclusive upper bound of a bucket (the value exporters report).
  static std::uint64_t bucket_upper_bound(std::size_t bucket);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// The central instrument directory.  Creation (counter()/gauge()/
// histogram() and their shard_ variants) is mutex-guarded get-or-create
// and may allocate — wiring-time only; the returned references stay
// valid for the registry's lifetime, and recording through them never
// reenters the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Unsharded instruments.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  // Per-shard instruments: same metric name, disjoint storage per
  // shard index, folded on snapshot.  A shard index is any small
  // stable id — engine shard, producer index, sink index.
  Counter& shard_counter(std::string_view name, std::size_t shard);
  Gauge& shard_gauge(std::string_view name, std::size_t shard);
  LatencyHistogram& shard_histogram(std::string_view name, std::size_t shard);

  // Attach/overwrite the help line exporters emit for `name`.
  void describe(std::string_view name, std::string_view help);

  // Collection hooks run at the start of every snapshot(), on the
  // snapshotting thread — the bridge from pre-existing relaxed
  // counters (queue depths, pool watermarks, writer totals) into
  // registry instruments without adding hot-path stores.  A hook must
  // only touch instruments it captured at wiring time (calling back
  // into instrument creation from a hook deadlocks by design).
  // Returns an id for remove_collection_hook — components that
  // register a hook MUST remove it before they are destroyed.
  std::uint64_t add_collection_hook(std::function<void()> hook);
  void remove_collection_hook(std::uint64_t id);

  // The slow-span trace ring (telemetry/trace.h); off by default.
  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }

  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    // Folded value (counters: sum over shards; gauges: sum — depths
    // and occupancies add; histograms: see `hist`).
    double value = 0;
    // Per-shard split, present iff the metric was registered sharded.
    std::vector<std::pair<std::size_t, double>> per_shard;
    HistogramSnapshot hist;
  };

  struct Snapshot {
    std::vector<Metric> metrics;  // sorted by name
    const Metric* find(std::string_view name) const;
    // Folded value of `name`, or `fallback` when absent.
    double value_or(std::string_view name, double fallback = 0) const;
  };

  // Runs the collection hooks, then folds every instrument.  Safe to
  // call from any thread at any time; recording proceeds concurrently
  // (counters are read relaxed — each metric's value is exact as of
  // some instant during the fold, and totals never go backwards
  // between snapshots).
  Snapshot snapshot() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string help;
    bool sharded = false;
    // shard id -> instrument; unsharded entries use the single key 0.
    std::map<std::size_t, std::unique_ptr<Counter>> counters;
    std::map<std::size_t, std::unique_ptr<Gauge>> gauges;
    std::map<std::size_t, std::unique_ptr<LatencyHistogram>> histograms;
  };

  Entry& entry(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;  // guards entries_ and pending_help_
  std::map<std::string, Entry, std::less<>> entries_;
  // describe() calls that arrived before their instrument existed.
  std::map<std::string, std::string, std::less<>> pending_help_;

  mutable std::mutex hooks_mu_;  // guards hooks_; held while hooks run
  std::map<std::uint64_t, std::function<void()>> hooks_;
  std::uint64_t next_hook_id_ = 1;

  TraceRing trace_;
};

}  // namespace bgpbh::telemetry
