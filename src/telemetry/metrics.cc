#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>

namespace bgpbh::telemetry {

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation (1-based, ceil), then the first
  // bucket whose cumulative count covers it.
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.999999);
  const std::uint64_t rank = target == 0 ? 1 : target;
  for (const auto& [upper, cumulative] : buckets) {
    if (cumulative >= rank) return static_cast<double>(upper);
  }
  return buckets.empty() ? 0.0 : static_cast<double>(buckets.back().first);
}

void HistogramSnapshot::merge_from(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;

  // Same bucket-exact merge as LatencyHistogram::fold_into: rebuild
  // the (upper bound -> per-bucket count) map from both cumulative
  // series, then re-accumulate.  Merging N snapshots is bucket-wise
  // identical to one histogram having recorded every value.
  std::map<std::uint64_t, std::uint64_t> per_bucket;
  std::uint64_t prev = 0;
  for (const auto& [upper, cumulative] : buckets) {
    per_bucket[upper] += cumulative - prev;
    prev = cumulative;
  }
  prev = 0;
  for (const auto& [upper, cumulative] : other.buckets) {
    per_bucket[upper] += cumulative - prev;
    prev = cumulative;
  }
  buckets.clear();
  buckets.reserve(per_bucket.size());
  std::uint64_t cumulative = 0;
  for (const auto& [upper, n] : per_bucket) {
    cumulative += n;
    buckets.emplace_back(upper, cumulative);
  }
}

std::uint64_t LatencyHistogram::bucket_upper_bound(std::size_t bucket) {
  if (bucket < kSub) return bucket;  // exact buckets 0..7
  const std::size_t major = bucket / kSub;
  const std::size_t minor = bucket % kSub;
  const std::uint64_t width = std::uint64_t{1} << (major - 1);
  const std::uint64_t lower =
      (std::uint64_t{1} << (major + kSubBits - 1)) + minor * width;
  return lower + width - 1;
}

void LatencyHistogram::fold_into(HistogramSnapshot& into) const {
  const std::uint64_t count = count_.load(std::memory_order_relaxed);
  if (count == 0) return;
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  const std::uint64_t max = max_.load(std::memory_order_relaxed);
  if (into.count == 0 || min < into.min) into.min = min;
  if (max > into.max) into.max = max;
  into.count += count;
  into.sum += sum_.load(std::memory_order_relaxed);

  // Merge bucket-wise: rebuild the (upper bound -> per-bucket count)
  // map from both sides, then re-accumulate into cumulative form.
  std::map<std::uint64_t, std::uint64_t> per_bucket;
  std::uint64_t prev = 0;
  for (const auto& [upper, cumulative] : into.buckets) {
    per_bucket[upper] += cumulative - prev;
    prev = cumulative;
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n) per_bucket[bucket_upper_bound(b)] += n;
  }
  into.buckets.clear();
  into.buckets.reserve(per_bucket.size());
  std::uint64_t cumulative = 0;
  for (const auto& [upper, n] : per_bucket) {
    cumulative += n;
    into.buckets.emplace_back(upper, cumulative);
  }
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricKind kind) {
  // Caller holds mu_.
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{.kind = kind}).first;
  }
  assert(it->second.kind == kind &&
         "one metric name cannot span instrument kinds");
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricKind::kCounter);
  auto& slot = e.counters[0];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Counter& MetricsRegistry::shard_counter(std::string_view name,
                                        std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricKind::kCounter);
  e.sharded = true;
  auto& slot = e.counters[shard];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricKind::kGauge);
  auto& slot = e.gauges[0];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Gauge& MetricsRegistry::shard_gauge(std::string_view name, std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricKind::kGauge);
  e.sharded = true;
  auto& slot = e.gauges[shard];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricKind::kHistogram);
  auto& slot = e.histograms[0];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::shard_histogram(std::string_view name,
                                                   std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricKind::kHistogram);
  e.sharded = true;
  auto& slot = e.histograms[shard];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::describe(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    it->second.help = std::string(help);
  } else {
    // Allow describing before the instrument exists: park the help on
    // a kind chosen by the first instrument call (entry() asserts kind
    // consistency only between instrument calls, so pre-create is
    // avoided — store help lazily instead).
    pending_help_.emplace(std::string(name), std::string(help));
  }
}

std::uint64_t MetricsRegistry::add_collection_hook(
    std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  const std::uint64_t id = next_hook_id_++;
  hooks_.emplace(id, std::move(hook));
  return id;
}

void MetricsRegistry::remove_collection_hook(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  hooks_.erase(id);
}

const MetricsRegistry::Metric* MetricsRegistry::Snapshot::find(
    std::string_view name) const {
  auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const Metric& m, std::string_view n) { return m.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

double MetricsRegistry::Snapshot::value_or(std::string_view name,
                                           double fallback) const {
  const Metric* m = find(name);
  return m ? m->value : fallback;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  // Hooks first (they copy external relaxed counters into instruments),
  // under their own mutex so a hook may not create instruments but may
  // freely record into captured ones.
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    for (const auto& [id, hook] : hooks_) hook();
  }
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.metrics.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    Metric m;
    m.name = name;
    m.kind = e.kind;
    m.help = e.help;
    if (m.help.empty()) {
      auto h = pending_help_.find(name);
      if (h != pending_help_.end()) m.help = h->second;
    }
    switch (e.kind) {
      case MetricKind::kCounter:
        for (const auto& [shard, c] : e.counters) {
          const double v = static_cast<double>(c->value());
          m.value += v;
          if (e.sharded) m.per_shard.emplace_back(shard, v);
        }
        break;
      case MetricKind::kGauge:
        for (const auto& [shard, g] : e.gauges) {
          const double v = g->value();
          m.value += v;
          if (e.sharded) m.per_shard.emplace_back(shard, v);
        }
        break;
      case MetricKind::kHistogram:
        for (const auto& [shard, h] : e.histograms) {
          h->fold_into(m.hist);
          if (e.sharded) {
            m.per_shard.emplace_back(shard,
                                     static_cast<double>(h->count()));
          }
        }
        m.value = static_cast<double>(m.hist.count);
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;  // entries_ is an ordered map, so metrics is name-sorted
}

}  // namespace bgpbh::telemetry
