#include "telemetry/fleet.h"

#include <algorithm>
#include <bit>
#include <map>

namespace bgpbh::telemetry {

namespace {

// Structural caps: a STATS payload rides inside a CRC-framed fabric
// frame (integrity is the frame's job), but a decoder handed garbage
// must still fail fast instead of allocating gigabytes.
constexpr std::uint32_t kMaxMetrics = 65536;
constexpr std::uint32_t kMaxPerShard = 65536;
constexpr std::uint32_t kMaxBuckets = 65536;
constexpr std::uint32_t kMaxSpans = 65536;
constexpr std::uint16_t kMaxNameLen = 1024;
constexpr std::uint16_t kMaxHelpLen = 4096;

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_double(std::uint64_t v) { return std::bit_cast<double>(v); }

std::optional<std::string> read_string(net::BufReader& in,
                                       std::uint16_t max_len) {
  const std::uint16_t len = in.u16();
  if (!in.ok() || len > max_len) return std::nullopt;
  auto bytes = in.bytes(len);
  if (!in.ok()) return std::nullopt;
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

}  // namespace

void encode_snapshot(const MetricsRegistry::Snapshot& snap,
                     net::BufWriter& out) {
  out.u32(static_cast<std::uint32_t>(snap.metrics.size()));
  for (const auto& m : snap.metrics) {
    out.u16(static_cast<std::uint16_t>(m.name.size()));
    out.str(m.name);
    out.u8(static_cast<std::uint8_t>(m.kind));
    out.u16(static_cast<std::uint16_t>(m.help.size()));
    out.str(m.help);
    out.u64(double_bits(m.value));
    out.u32(static_cast<std::uint32_t>(m.per_shard.size()));
    for (const auto& [shard, v] : m.per_shard) {
      out.u64(static_cast<std::uint64_t>(shard));
      out.u64(double_bits(v));
    }
    out.u64(m.hist.count);
    out.u64(m.hist.sum);
    out.u64(m.hist.min);
    out.u64(m.hist.max);
    out.u32(static_cast<std::uint32_t>(m.hist.buckets.size()));
    for (const auto& [upper, cumulative] : m.hist.buckets) {
      out.u64(upper);
      out.u64(cumulative);
    }
  }
}

std::optional<MetricsRegistry::Snapshot> decode_snapshot(net::BufReader& in) {
  MetricsRegistry::Snapshot snap;
  const std::uint32_t n_metrics = in.u32();
  if (!in.ok() || n_metrics > kMaxMetrics) return std::nullopt;
  snap.metrics.reserve(n_metrics);
  for (std::uint32_t i = 0; i < n_metrics; ++i) {
    MetricsRegistry::Metric m;
    auto name = read_string(in, kMaxNameLen);
    if (!name || name->empty()) return std::nullopt;
    m.name = std::move(*name);
    const std::uint8_t kind = in.u8();
    if (!in.ok() || kind > static_cast<std::uint8_t>(MetricKind::kHistogram)) {
      return std::nullopt;
    }
    m.kind = static_cast<MetricKind>(kind);
    auto help = read_string(in, kMaxHelpLen);
    if (!help) return std::nullopt;
    m.help = std::move(*help);
    m.value = bits_double(in.u64());
    const std::uint32_t n_per_shard = in.u32();
    if (!in.ok() || n_per_shard > kMaxPerShard) return std::nullopt;
    m.per_shard.reserve(n_per_shard);
    for (std::uint32_t s = 0; s < n_per_shard; ++s) {
      const std::uint64_t shard = in.u64();
      const double v = bits_double(in.u64());
      m.per_shard.emplace_back(static_cast<std::size_t>(shard), v);
    }
    m.hist.count = in.u64();
    m.hist.sum = in.u64();
    m.hist.min = in.u64();
    m.hist.max = in.u64();
    const std::uint32_t n_buckets = in.u32();
    if (!in.ok() || n_buckets > kMaxBuckets) return std::nullopt;
    m.hist.buckets.reserve(n_buckets);
    std::uint64_t prev_upper = 0;
    std::uint64_t prev_cumulative = 0;
    for (std::uint32_t b = 0; b < n_buckets; ++b) {
      const std::uint64_t upper = in.u64();
      const std::uint64_t cumulative = in.u64();
      // Bucket series are strictly increasing in upper bound and
      // non-decreasing cumulatively — anything else is corruption.
      if (b > 0 && upper <= prev_upper) return std::nullopt;
      if (cumulative < prev_cumulative) return std::nullopt;
      prev_upper = upper;
      prev_cumulative = cumulative;
      m.hist.buckets.emplace_back(upper, cumulative);
    }
    if (!in.ok()) return std::nullopt;
    snap.metrics.push_back(std::move(m));
  }
  if (!in.ok()) return std::nullopt;
  return snap;
}

void encode_spans(const std::vector<FleetSpan>& spans, net::BufWriter& out) {
  out.u32(static_cast<std::uint32_t>(spans.size()));
  for (const auto& s : spans) {
    out.u16(static_cast<std::uint16_t>(s.label.size()));
    out.str(s.label);
    out.u32(s.shard);
    out.u64(s.duration_ns);
    out.u64(s.seq);
    out.u64(s.trace_id);
  }
}

std::optional<std::vector<FleetSpan>> decode_spans(net::BufReader& in) {
  const std::uint32_t n = in.u32();
  if (!in.ok() || n > kMaxSpans) return std::nullopt;
  std::vector<FleetSpan> spans;
  spans.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FleetSpan s;
    auto label = read_string(in, kMaxNameLen);
    if (!label) return std::nullopt;
    s.label = std::move(*label);
    s.shard = in.u32();
    s.duration_ns = in.u64();
    s.seq = in.u64();
    s.trace_id = in.u64();
    if (!in.ok()) return std::nullopt;
    spans.push_back(std::move(s));
  }
  return spans;
}

void encode_slot_telemetry(const SlotTelemetry& slot, net::BufWriter& out) {
  out.u32(slot.slot);
  encode_snapshot(slot.metrics, out);
  encode_spans(slot.spans, out);
}

std::optional<SlotTelemetry> decode_slot_telemetry(net::BufReader& in) {
  SlotTelemetry slot;
  slot.slot = in.u32();
  if (!in.ok()) return std::nullopt;
  auto snap = decode_snapshot(in);
  if (!snap) return std::nullopt;
  slot.metrics = std::move(*snap);
  auto spans = decode_spans(in);
  if (!spans) return std::nullopt;
  slot.spans = std::move(*spans);
  return slot;
}

void fold_slot_metrics(const MetricsRegistry::Snapshot& slot_snapshot,
                       std::uint32_t global_slot,
                       MetricsRegistry::Snapshot& into) {
  for (const auto& m : slot_snapshot.metrics) {
    auto it = std::lower_bound(
        into.metrics.begin(), into.metrics.end(), m.name,
        [](const MetricsRegistry::Metric& a, const std::string& n) {
          return a.name < n;
        });
    if (it == into.metrics.end() || it->name != m.name) {
      MetricsRegistry::Metric folded;
      folded.name = m.name;
      folded.kind = m.kind;
      folded.help = m.help;
      it = into.metrics.insert(it, std::move(folded));
    } else if (it->kind != m.kind) {
      continue;  // kind conflict across slots: first kind wins
    }
    if (it->help.empty()) it->help = m.help;
    const double slot_value = m.kind == MetricKind::kHistogram
                                  ? static_cast<double>(m.hist.count)
                                  : m.value;
    if (m.kind == MetricKind::kHistogram) {
      it->hist.merge_from(m.hist);
      it->value = static_cast<double>(it->hist.count);
    } else {
      it->value += m.value;
    }
    // The fleet view's split is per-slot, not per-local-shard: one
    // label per global slot id, carrying that slot's folded value.
    it->per_shard.emplace_back(static_cast<std::size_t>(global_slot),
                               slot_value);
  }
}

MetricsRegistry::Snapshot fold_fleet(
    const std::vector<EndpointTelemetry>& endpoints) {
  MetricsRegistry::Snapshot folded;
  for (const auto& ep : endpoints) {
    for (const auto& slot : ep.slots) {
      fold_slot_metrics(slot.metrics, slot.slot, folded);
    }
  }
  for (auto& m : folded.metrics) {
    std::sort(m.per_shard.begin(), m.per_shard.end());
  }
  return folded;
}

}  // namespace bgpbh::telemetry
