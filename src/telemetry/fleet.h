// Fleet-wide observability: the plain-data types, wire codecs, and
// fold logic behind `FabricRouter::fleet_telemetry()`.
//
// A shard-server slot answers a fabric STATS request with one
// SlotTelemetry — its session's full MetricsRegistry snapshot plus the
// recent slow spans from its TraceRing.  The router scatter-gathers
// one per slot per endpoint and folds everything into a single
// Snapshot view of the fleet:
//   * counters and gauges sum across slots;
//   * histograms merge bucket-exactly (HistogramSnapshot::merge_from,
//     the same rebuild-then-reaccumulate fold the per-shard snapshot
//     path uses), so fleet percentiles are as trustworthy as local
//     ones;
//   * per_shard splits are re-keyed by GLOBAL SLOT ID — the folded
//     view exports `{shard="<slot>"}` labels through the existing
//     Prometheus exporter with zero exporter changes.
//
// The codecs ride inside CRC-framed fabric frames, so they validate
// structure (caps, kind ranges, monotone bucket series), not
// integrity.  Everything here is fabric-agnostic: no socket or
// protocol dependency, just BufWriter/BufReader.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/bytes.h"
#include "telemetry/metrics.h"

namespace bgpbh::telemetry {

// One slow-span record shipped across the fabric.  Mirrors
// TraceRecord, with the label copied out of the remote process (ring
// labels are string literals — pointers are meaningless off-process).
struct FleetSpan {
  std::string label;
  std::uint32_t shard = 0;
  std::uint64_t duration_ns = 0;
  std::uint64_t seq = 0;
  std::uint64_t trace_id = 0;

  friend bool operator==(const FleetSpan&, const FleetSpan&) = default;
};

// Everything one slot reports in a STATS response.
struct SlotTelemetry {
  std::uint32_t slot = 0;
  MetricsRegistry::Snapshot metrics;
  std::vector<FleetSpan> spans;
};

// Per-endpoint gather result (diagnostic split kept alongside the
// folded view).
struct EndpointTelemetry {
  std::string endpoint;
  std::vector<SlotTelemetry> slots;
};

// A client-side RPC span matched with the server-side span that
// carried the same trace id: attributes a slow RPC's wall time to the
// wire/queue vs. the remote engine.
struct StitchedRpc {
  std::uint64_t trace_id = 0;
  std::string client_label;
  std::string server_label;
  std::uint32_t slot = 0;
  std::uint64_t client_ns = 0;      // full RPC as the router saw it
  std::uint64_t server_ns = 0;      // server-side handler span
  std::uint64_t wire_queue_ns = 0;  // client_ns - server_ns, clamped >= 0
};

// What fleet_telemetry() returns.
struct FleetTelemetry {
  MetricsRegistry::Snapshot folded;          // fleet-wide folded view
  std::vector<EndpointTelemetry> endpoints;  // per-endpoint raw gather
  std::vector<StitchedRpc> stitched;         // client+server span pairs
};

// ---- wire codecs ------------------------------------------------------------
// Layouts (all big-endian, length-prefixed strings):
//   snapshot := u32 n_metrics, n × metric
//   metric   := u16 name_len, name, u8 kind, u16 help_len, help,
//               u64 value_bits, u32 n_per_shard, n × (u64 shard,
//               u64 value_bits), u64 count, u64 sum, u64 min, u64 max,
//               u32 n_buckets, n × (u64 upper, u64 cumulative)
//   spans    := u32 n, n × (u16 label_len, label, u32 shard,
//               u64 duration_ns, u64 seq, u64 trace_id)
//   slot     := u32 slot, snapshot, spans
// Doubles travel as IEEE-754 bit patterns in u64.  Decoders enforce
// structural caps and monotone bucket series; they never throw.

void encode_snapshot(const MetricsRegistry::Snapshot& snap,
                     net::BufWriter& out);
std::optional<MetricsRegistry::Snapshot> decode_snapshot(net::BufReader& in);

void encode_spans(const std::vector<FleetSpan>& spans, net::BufWriter& out);
std::optional<std::vector<FleetSpan>> decode_spans(net::BufReader& in);

void encode_slot_telemetry(const SlotTelemetry& slot, net::BufWriter& out);
std::optional<SlotTelemetry> decode_slot_telemetry(net::BufReader& in);

// ---- fold -------------------------------------------------------------------

// Folds one slot's snapshot into `into`, re-keying every per-metric
// split by `global_slot`.  Counters/gauges sum; histograms merge
// bucket-exactly; a metric's per_shard gains one (global_slot, folded
// value) entry.  Metrics whose kind conflicts with an already-folded
// name are skipped (first kind wins).
void fold_slot_metrics(const MetricsRegistry::Snapshot& slot_snapshot,
                       std::uint32_t global_slot,
                       MetricsRegistry::Snapshot& into);

// Folds every slot of every endpoint into one name-sorted Snapshot.
MetricsRegistry::Snapshot fold_fleet(
    const std::vector<EndpointTelemetry>& endpoints);

}  // namespace bgpbh::telemetry
