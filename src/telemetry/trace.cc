#include "telemetry/trace.h"

#include "telemetry/metrics.h"

namespace bgpbh::telemetry {

ScopedSpan::~ScopedSpan() {
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  if (hist_) hist_->record(ns);
  if (ring_) ring_->maybe_record(label_, shard_, ns, trace_id_);
}

}  // namespace bgpbh::telemetry
