// Lightweight pipeline tracing: scoped span timers that feed the
// stage-latency histograms, plus an off-by-default ring of recent SLOW
// span records for post-hoc "why did that batch take 80 ms" forensics.
//
// A ScopedSpan costs two steady_clock reads and one histogram record —
// cheap enough to wrap every worker consume batch.  The TraceRing adds
// a single relaxed enabled-check per span when disabled (the default);
// when enabled, only spans at or above the slow threshold take the
// ring mutex (rare by construction — the threshold selects outliers).
//
// The ring holds the most recent kCapacity slow records and overwrites
// the oldest; recent() copies them out oldest-first.  Labels must be
// string literals (the ring stores the pointer, never the bytes — no
// allocation on the record path).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace bgpbh::telemetry {

class LatencyHistogram;

struct TraceConfig {
  bool enabled = false;
  // Spans shorter than this never reach the ring (histograms see every
  // span regardless).
  std::uint64_t slow_threshold_ns = 1'000'000;  // 1 ms
  // Ring capacity: how many slow records are retained before the
  // oldest is overwritten.  Reconfiguring to a different capacity
  // clears the ring (capacity changes are wiring-time operations).
  std::size_t capacity = 256;
};

struct TraceRecord {
  const char* label = "";       // stage name (string literal)
  std::uint32_t shard = 0;      // shard / producer / sink index
  std::uint64_t duration_ns = 0;
  std::uint64_t seq = 0;        // monotone; orders records across shards
  // Distributed trace correlation id (0 = span not part of an RPC).
  // The fabric router stamps one per RPC and the shard server opens
  // server-side spans bound to the same id, so fleet_telemetry() can
  // stitch client and server halves back together.
  std::uint64_t trace_id = 0;
};

class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 256;  // default capacity

  void configure(const TraceConfig& config) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::size_t cap = config.capacity ? config.capacity : 1;
      if (cap != slots_.size()) {
        slots_.assign(cap, TraceRecord{});
        next_ = 0;
      }
    }
    threshold_ns_.store(config.slow_threshold_ns, std::memory_order_relaxed);
    enabled_.store(config.enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  std::size_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
  }

  // One relaxed load when disabled; mutex only for qualifying spans.
  void maybe_record(const char* label, std::uint32_t shard,
                    std::uint64_t duration_ns, std::uint64_t trace_id = 0) {
    if (!enabled()) return;
    if (duration_ns < threshold_ns_.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu_);
    TraceRecord& slot = slots_[next_ % slots_.size()];
    slot.label = label;
    slot.shard = shard;
    slot.duration_ns = duration_ns;
    slot.seq = next_++;
    slot.trace_id = trace_id;
  }

  // Records captured so far, oldest first (at most capacity()).
  std::vector<TraceRecord> recent() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceRecord> out;
    const std::uint64_t cap = slots_.size();
    const std::uint64_t n = next_ < cap ? next_ : cap;
    out.reserve(n);
    for (std::uint64_t i = next_ - n; i < next_; ++i) {
      out.push_back(slots_[i % cap]);
    }
    return out;
  }

  std::uint64_t records_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> threshold_ns_{1'000'000};
  mutable std::mutex mu_;
  std::vector<TraceRecord> slots_ =
      std::vector<TraceRecord>(kCapacity);  // guarded by mu_
  std::uint64_t next_ = 0;                  // guarded by mu_
};

// Times its scope and, on destruction, records the elapsed nanoseconds
// into `hist` (when non-null) and offers them to `ring` (when non-null
// — the ring decides via its enabled/threshold state).  `label` must
// be a string literal.
class ScopedSpan {
 public:
  ScopedSpan(LatencyHistogram* hist, TraceRing* ring, const char* label,
             std::uint32_t shard = 0, std::uint64_t trace_id = 0)
      : hist_(hist), ring_(ring), label_(label), shard_(shard),
        trace_id_(trace_id), start_(std::chrono::steady_clock::now()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

 private:
  LatencyHistogram* hist_;
  TraceRing* ring_;
  const char* label_;
  std::uint32_t shard_;
  std::uint64_t trace_id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bgpbh::telemetry
