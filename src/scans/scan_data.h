// scans.io-style Internet-wide scan substrate (§8).
//
// For any IP address the synthesizer answers, deterministically, which
// of the paper's 13 scanned protocols accept connections, whether an
// HTTP GET returns a response, and which (if any) Alexa-ranked domain
// resolves to it.  The joint distribution encodes the co-location
// structure §8 reports: HTTP dominates; >90% of FTP and 79% of SSH
// servers co-locate with HTTP (pre-configured virtualized web hosts);
// ~10% of blackholed prefixes run all six mail protocols; ~4% accept
// connections on everything (tarpits).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.h"
#include "topology/as_graph.h"

namespace bgpbh::scans {

enum class Service : std::uint8_t {
  kHttp, kHttps, kSsh, kFtp, kTelnet, kDns, kNtp,
  kSmtp, kSmtps, kPop3, kPop3s, kImap, kImaps,
};
inline constexpr std::size_t kNumServices = 13;
std::string to_string(Service s);

using ServiceMask = std::uint16_t;  // bit i = Service(i) open

inline bool has_service(ServiceMask mask, Service s) {
  return (mask >> static_cast<unsigned>(s)) & 1u;
}

struct HostProfile {
  ServiceMask services = 0;
  bool http_responds = false;   // HTTP GET returns a response
  bool is_tarpit = false;       // accepts every probed protocol
  std::optional<std::uint32_t> alexa_rank;  // host serves a top-1M site
  std::string domain_tld;       // "com", "ru", ... when alexa_rank set
};

class ScanSynthesizer {
 public:
  // `graph` informs per-type host mixes (content ASes host more web).
  ScanSynthesizer(const topology::AsGraph& graph, std::uint64_t seed);

  // Deterministic profile of one host address.
  HostProfile probe(const net::IpAddr& ip) const;

  // General-population HTTP response rate (the paper's ~90% baseline,
  // against which blackholed hosts show only ~61%).
  double general_http_response_rate() const { return 0.90; }

 private:
  const topology::AsGraph& graph_;
  std::uint64_t seed_;
};

}  // namespace bgpbh::scans
