// Profiling of blackholed destinations (§8, Fig 7a): join the inferred
// blackholed prefixes with the scan substrate and aggregate services,
// HTTP responsiveness, Alexa presence and TLD mix per prefix.
#pragma once

#include <map>
#include <vector>

#include "core/events.h"
#include "scans/scan_data.h"
#include "stats/histogram.h"

namespace bgpbh::scans {

struct PrefixServiceProfile {
  // Count of blackholed prefixes with at least one host offering the
  // service (classes are not mutually exclusive, §8).
  std::array<std::size_t, kNumServices> prefixes_with_service{};
  std::size_t prefixes_with_none = 0;
  std::size_t total_prefixes = 0;
  std::size_t host_routes = 0;
  std::uint64_t covered_addresses = 0;

  std::size_t mail_sextet_prefixes = 0;  // all 6 mail protocols
  std::size_t tarpit_prefixes = 0;       // all probed protocols open
  std::size_t ftp_with_http = 0, ftp_total = 0;
  std::size_t ssh_with_http = 0, ssh_total = 0;

  std::size_t http_hosts = 0;
  std::size_t http_responding = 0;
  std::size_t alexa_prefixes = 0;
  std::map<std::string, std::size_t> tld_counts;

  double http_response_rate() const {
    return http_hosts == 0 ? 0.0
                           : static_cast<double>(http_responding) /
                                 static_cast<double>(http_hosts);
  }
};

class BlackholeProfiler {
 public:
  explicit BlackholeProfiler(const ScanSynthesizer& scans) : scans_(scans) {}

  // Profile a set of blackholed prefixes (typically one month's worth).
  // For non-host-routes only a bounded sample of covered addresses is
  // probed (`max_hosts_per_prefix`).
  PrefixServiceProfile profile(const std::vector<net::Prefix>& prefixes,
                               std::size_t max_hosts_per_prefix = 8) const;

 private:
  const ScanSynthesizer& scans_;
};

}  // namespace bgpbh::scans
