#include "scans/profile.h"

#include <algorithm>

namespace bgpbh::scans {

namespace {
constexpr ServiceMask mail_mask() {
  return static_cast<ServiceMask>(
      (1u << static_cast<unsigned>(Service::kSmtp)) |
      (1u << static_cast<unsigned>(Service::kSmtps)) |
      (1u << static_cast<unsigned>(Service::kPop3)) |
      (1u << static_cast<unsigned>(Service::kPop3s)) |
      (1u << static_cast<unsigned>(Service::kImap)) |
      (1u << static_cast<unsigned>(Service::kImaps)));
}
}  // namespace

PrefixServiceProfile BlackholeProfiler::profile(
    const std::vector<net::Prefix>& prefixes,
    std::size_t max_hosts_per_prefix) const {
  PrefixServiceProfile out;
  for (const auto& prefix : prefixes) {
    ++out.total_prefixes;
    if (prefix.is_host_route()) ++out.host_routes;
    if (prefix.is_v4()) out.covered_addresses += net::ipv4_prefix_size(prefix);

    // Probe the (sampled) hosts in the prefix; union their services.
    ServiceMask services = 0;
    bool any_tarpit = false;
    std::size_t http_hosts = 0, http_ok = 0;
    bool alexa = false;
    std::map<std::string, std::size_t> tlds;

    std::size_t hosts = 1;
    if (prefix.is_v4() && !prefix.is_host_route()) {
      hosts = std::min<std::size_t>(max_hosts_per_prefix,
                                    net::ipv4_prefix_size(prefix));
    }
    for (std::size_t h = 0; h < hosts; ++h) {
      net::IpAddr addr = prefix.addr();
      if (prefix.is_v4() && h > 0) {
        addr = net::IpAddr(net::Ipv4Addr(prefix.addr().v4().value() +
                                         static_cast<std::uint32_t>(h)));
      }
      HostProfile host = scans_.probe(addr);
      services |= host.services;
      any_tarpit |= host.is_tarpit;
      if (has_service(host.services, Service::kHttp)) {
        ++http_hosts;
        if (host.http_responds) ++http_ok;
        if (host.alexa_rank) {
          alexa = true;
          tlds[host.domain_tld] += 1;
        }
      }
    }

    if (services == 0) {
      ++out.prefixes_with_none;
    } else {
      for (std::size_t i = 0; i < kNumServices; ++i) {
        if ((services >> i) & 1u) ++out.prefixes_with_service[i];
      }
    }
    if ((services & mail_mask()) == mail_mask()) ++out.mail_sextet_prefixes;
    if (any_tarpit) ++out.tarpit_prefixes;
    bool has_http = has_service(services, Service::kHttp);
    if (has_service(services, Service::kFtp)) {
      ++out.ftp_total;
      if (has_http) ++out.ftp_with_http;
    }
    if (has_service(services, Service::kSsh)) {
      ++out.ssh_total;
      if (has_http) ++out.ssh_with_http;
    }
    out.http_hosts += http_hosts;
    out.http_responding += http_ok;
    if (alexa) ++out.alexa_prefixes;
    for (const auto& [tld, count] : tlds) out.tld_counts[tld] += count;
  }
  return out;
}

}  // namespace bgpbh::scans
