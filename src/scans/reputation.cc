#include "scans/reputation.h"

#include <algorithm>

#include <set>

namespace bgpbh::scans {

namespace {
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0) {
  util::SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                      (c * 0xc2b2ae3d27d4eb4fULL));
  return sm.next();
}
double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }
}  // namespace

std::vector<ReputationEntry> ReputationDb::daily_matches(
    std::int64_t day, const std::vector<net::Prefix>& blackholed) const {
  std::vector<ReputationEntry> out;
  for (const auto& prefix : blackholed) {
    if (!prefix.is_v4()) continue;
    std::uint32_t base = prefix.addr().v4().value();
    // ~2% of blackholed prefixes also source suspicious traffic (§8);
    // membership is stable per prefix, the day decides intensity.
    if (unit(mix(seed_, 0x6001, base)) >= 0.02) continue;
    std::size_t hosts = prefix.is_host_route()
                            ? 1
                            : static_cast<std::size_t>(
                                  std::min<std::uint64_t>(
                                      4, net::ipv4_prefix_size(prefix)));
    for (std::size_t h = 0; h < hosts; ++h) {
      std::uint32_t ip = base + static_cast<std::uint32_t>(h);
      if (unit(mix(seed_, 0x6002 ^ static_cast<std::uint64_t>(day), ip)) > 0.8)
        continue;  // active only on some days
      ReputationEntry entry;
      entry.ip = net::Ipv4Addr(ip);
      double kind = unit(mix(seed_, 0x6003, ip));
      // >90% probers; ~2% both scanner and prober.
      entry.prober = kind < 0.92;
      entry.scanner = kind >= 0.90;  // small overlap band => both
      entry.login_attempts = unit(mix(seed_, 0x6004, ip)) < 0.75;
      out.push_back(entry);
    }
  }
  return out;
}

ReputationDb::DailyStats ReputationDb::daily_stats(
    std::int64_t day, const std::vector<net::Prefix>& blackholed) const {
  DailyStats stats;
  std::set<std::uint32_t> prefixes;
  auto matches = daily_matches(day, blackholed);
  for (const auto& m : matches) {
    if (m.scanner || m.prober) ++stats.matches;
    if (m.prober) ++stats.probers;
    if (m.scanner) ++stats.scanners;
    if (m.scanner && m.prober) ++stats.both;
    if (m.login_attempts) ++stats.login_ips;
    prefixes.insert(m.ip.value() & 0xFFFFFF00u);
  }
  stats.prefixes_involved = prefixes.size();
  return stats;
}

}  // namespace bgpbh::scans
