#include "scans/scan_data.h"

#include "util/rng.h"

namespace bgpbh::scans {

namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0) {
  util::SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                      (c * 0xc2b2ae3d27d4eb4fULL));
  return sm.next();
}
double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

ServiceMask bit(Service s) { return static_cast<ServiceMask>(1u << static_cast<unsigned>(s)); }

constexpr ServiceMask kMailMask = 0;  // assembled below

}  // namespace

std::string to_string(Service s) {
  switch (s) {
    case Service::kHttp: return "HTTP";
    case Service::kHttps: return "HTTPS";
    case Service::kSsh: return "SSH";
    case Service::kFtp: return "FTP";
    case Service::kTelnet: return "Telnet";
    case Service::kDns: return "DNS";
    case Service::kNtp: return "NTP";
    case Service::kSmtp: return "SMTP";
    case Service::kSmtps: return "SMTPS";
    case Service::kPop3: return "POP3";
    case Service::kPop3s: return "POP3S";
    case Service::kImap: return "IMAP";
    case Service::kImaps: return "IMAPS";
  }
  return "?";
}

ScanSynthesizer::ScanSynthesizer(const topology::AsGraph& graph,
                                 std::uint64_t seed)
    : graph_(graph), seed_(seed) {}

HostProfile ScanSynthesizer::probe(const net::IpAddr& ip) const {
  (void)kMailMask;
  HostProfile profile;
  std::uint64_t key =
      ip.is_v4() ? ip.v4().value()
                 : (static_cast<std::uint64_t>(ip.v6().group(0)) << 48) ^
                       ip.v6().group(7);
  double archetype = unit(mix(seed_, 0x5001, key));
  auto coin = [&](std::uint64_t label, double p) {
    return unit(mix(seed_, label, key)) < p;
  };

  // Content ASes host proportionally more web servers.
  bool content_as = false;
  if (auto origin = graph_.origin_of(ip)) {
    const topology::AsNode* node = graph_.find(*origin);
    content_as = node && node->type == topology::NetworkType::kContent;
  }
  double web_boost = content_as ? 0.12 : 0.0;

  if (archetype < 0.04) {
    // Tarpit: accepts everything (§8: ~4% accept all 10 TCP protocols).
    profile.is_tarpit = true;
    for (std::size_t i = 0; i < kNumServices; ++i) {
      profile.services |= static_cast<ServiceMask>(1u << i);
    }
  } else if (archetype < 0.50 + web_boost) {
    // Pre-configured virtualized web host: HTTP, frequently with HTTPS,
    // FTP and SSH on the same box.
    profile.services |= bit(Service::kHttp);
    if (coin(0x5002, 0.62)) profile.services |= bit(Service::kHttps);
    if (coin(0x5003, 0.34)) profile.services |= bit(Service::kFtp);
    if (coin(0x5004, 0.45)) profile.services |= bit(Service::kSsh);
    if (coin(0x5005, 0.05)) profile.services |= bit(Service::kTelnet);
    if (coin(0x5006, 0.10)) profile.services |= bit(Service::kDns);
  } else if (archetype < 0.60 + web_boost) {
    // Mail host: all six mail protocols, often with a webmail frontend.
    profile.services |= bit(Service::kSmtp) | bit(Service::kSmtps) |
                        bit(Service::kPop3) | bit(Service::kPop3s) |
                        bit(Service::kImap) | bit(Service::kImaps);
    if (coin(0x5007, 0.55)) profile.services |= bit(Service::kHttp);
  } else if (archetype < 0.66 + web_boost) {
    // Infrastructure: DNS/NTP, sometimes SSH.
    if (coin(0x5008, 0.7)) profile.services |= bit(Service::kDns);
    if (coin(0x5009, 0.45)) profile.services |= bit(Service::kNtp);
    if (coin(0x500A, 0.3)) profile.services |= bit(Service::kSsh);
  } else if (archetype < 0.72) {
    // Remote-access boxes (the Mirai population): Telnet/SSH.
    if (coin(0x500B, 0.8)) profile.services |= bit(Service::kTelnet);
    if (coin(0x500C, 0.5)) profile.services |= bit(Service::kSsh);
  }
  // else: no service responds (~28-34%; §8 finds open ports for ~60%).

  // Standalone FTP/SSH servers are rare: >90% of FTP and 79% of SSH
  // co-locate with HTTP by construction above.

  if (has_service(profile.services, Service::kHttp)) {
    // Blackholed hosts answer HTTP GETs at ~61% (many run a non-web
    // service on port 80); the general population at ~90%. We encode
    // the blackhole-population rate here since the profiler only ever
    // queries blackholed prefixes.
    profile.http_responds = coin(0x500D, 0.61);
    if (coin(0x500E, 0.03)) {
      // ~3% of HTTP hosts serve an Alexa top-1M site.
      profile.alexa_rank =
          2000 + static_cast<std::uint32_t>(mix(seed_, 0x500F, key) % 998000);
      double t = unit(mix(seed_, 0x5010, key));
      profile.domain_tld = t < 0.38   ? "com"
                           : t < 0.54 ? "ru"
                           : t < 0.66 ? "org"
                           : t < 0.72 ? "net"
                           : t < 0.75 ? "se"
                           : t < 0.82 ? "de"
                                      : "info";
    }
  }
  return profile;
}

}  // namespace bgpbh::scans
