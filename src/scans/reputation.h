// Source-reputation substrate (§8 "Malicious Activity of Blackholed
// IPs"): a daily feed of IPs seen (i) port-scanning a major CDN,
// (ii) probing multiple CDN servers for one port (vulnerability
// probes), and (iii) attempting repeated logins against CDN customers.
// The paper uses proprietary Kona Site Defender-adjacent data; we
// synthesize an equivalent feed in which a small share of blackholed
// address space also *originates* suspicious traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "net/prefix.h"
#include "util/rng.h"
#include "util/time.h"

namespace bgpbh::scans {

enum class SuspiciousActivity : std::uint8_t {
  kPortScanner,
  kVulnProber,
  kLoginAttempts,
};

struct ReputationEntry {
  net::Ipv4Addr ip;
  bool scanner = false;
  bool prober = false;
  bool login_attempts = false;
};

class ReputationDb {
 public:
  explicit ReputationDb(std::uint64_t seed) : seed_(seed) {}

  // The daily feed restricted to the given blackholed prefixes: which
  // of their addresses showed suspicious source behaviour that day.
  std::vector<ReputationEntry> daily_matches(
      std::int64_t day, const std::vector<net::Prefix>& blackholed) const;

  struct DailyStats {
    std::size_t matches = 0;        // scanner/prober IPs
    std::size_t probers = 0;
    std::size_t scanners = 0;
    std::size_t both = 0;
    std::size_t login_ips = 0;
    std::size_t prefixes_involved = 0;
  };
  DailyStats daily_stats(std::int64_t day,
                         const std::vector<net::Prefix>& blackholed) const;

 private:
  std::uint64_t seed_;
};

}  // namespace bgpbh::scans
