// Histograms: fixed integer-bin counters (Fig 7b/7c) and log-bucketed
// duration histograms (Fig 8b).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bgpbh::stats {

// Counts occurrences of integer keys (e.g. #providers per event).
class IntHistogram {
 public:
  void add(std::int64_t key, std::uint64_t count = 1) { bins_[key] += count; }

  std::uint64_t total() const;
  std::uint64_t at(std::int64_t key) const;
  double fraction(std::int64_t key) const;
  // Fraction of mass at keys >= k.
  double fraction_at_least(std::int64_t k) const;
  std::int64_t max_key() const;
  bool empty() const { return bins_.empty(); }

  const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }

  // ASCII bar chart, optionally with a log-scaled y axis.
  std::string ascii_plot(const std::string& name, bool log_y = false,
                         std::size_t width = 50) const;

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
};

// Buckets double samples into geometric bins: [lo*g^k, lo*g^(k+1)).
class LogHistogram {
 public:
  LogHistogram(double lo, double growth) : lo_(lo), growth_(growth) {}

  void add(double x);
  std::uint64_t total() const { return total_; }

  struct Bucket {
    double lo = 0, hi = 0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> buckets() const;

  std::string ascii_plot(const std::string& name, std::size_t width = 50) const;

 private:
  double lo_;
  double growth_;
  std::map<int, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace bgpbh::stats
