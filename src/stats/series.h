// Per-day time series (Fig 4a/b/c, Fig 9c): counters keyed by day index
// with annotation support for the paper's labelled DDoS spikes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.h"

namespace bgpbh::stats {

class DailySeries {
 public:
  void add(util::SimTime t, double v = 1.0) { days_[util::day_index(t)] += v; }
  void set(std::int64_t day, double v) { days_[day] = v; }
  void accumulate(std::int64_t day, double v) { days_[day] += v; }

  double at_day(std::int64_t day) const;
  double max() const;
  double mean() const;
  bool empty() const { return days_.empty(); }
  std::size_t num_days() const { return days_.size(); }

  // First/last populated day index.
  std::int64_t first_day() const;
  std::int64_t last_day() const;

  // Mean over the days that fall in [t0, t1).
  double mean_in(util::SimTime t0, util::SimTime t1) const;
  double max_in(util::SimTime t0, util::SimTime t1) const;

  const std::map<std::int64_t, double>& data() const { return days_; }

  struct Annotation {
    std::int64_t day;
    std::string label;
  };

  // ASCII time-series plot with optional spike annotations.
  std::string ascii_plot(const std::string& name,
                         const std::vector<Annotation>& notes = {},
                         std::size_t width = 78, std::size_t height = 12) const;

 private:
  std::map<std::int64_t, double> days_;
};

}  // namespace bgpbh::stats
