// Empirical CDFs for the paper's figures (5a/b, 8a).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bgpbh::stats {

class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x) { samples_.push_back(x); sorted_ = false; }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Fraction of samples <= x.
  double at(double x) const;
  // p-quantile, p in [0,1]. Empty CDF returns 0.
  double quantile(double p) const;
  double min() const;
  double max() const;
  double mean() const;

  // Evaluate at n log-spaced points between min and max (for log-x
  // plots like Fig 5); returns (x, F(x)) pairs.
  std::vector<std::pair<double, double>> log_points(std::size_t n) const;
  // Evaluate at n linearly spaced points.
  std::vector<std::pair<double, double>> linear_points(std::size_t n) const;

  // Render an ASCII CDF curve (width x height), annotated with name.
  std::string ascii_plot(const std::string& name, std::size_t width = 60,
                         std::size_t height = 12, bool log_x = false) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace bgpbh::stats
