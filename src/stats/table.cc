#include "stats/table.h"

#include <algorithm>

#include "util/strings.h"

namespace bgpbh::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) cells.push_back(util::strf("%.*f", precision, v));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> w(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) w[i] = headers_[i].size();
  for (auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) w[i] = std::max(w[i], row[i].size());
  }
  auto fmt_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      line += (i == 0 ? "| " : " | ");
      // Left align first column, right align the rest (numeric).
      if (i == 0) {
        line += cell + std::string(w[i] - cell.size(), ' ');
      } else {
        line += std::string(w[i] - cell.size(), ' ') + cell;
      }
    }
    line += " |";
    return line;
  };
  std::string sep = "+";
  for (std::size_t i = 0; i < headers_.size(); ++i) sep += std::string(w[i] + 2, '-') + "+";
  std::string out = sep + "\n" + fmt_row(headers_) + "\n" + sep + "\n";
  for (auto& row : rows_) out += fmt_row(row) + "\n";
  out += sep + "\n";
  return out;
}

std::string Table::to_markdown() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (auto& c : cells) line += " " + c + " |";
    return line;
  };
  std::string out = join(headers_) + "\n|";
  for (std::size_t i = 0; i < headers_.size(); ++i) out += "---|";
  out += "\n";
  for (auto& row : rows_) out += join(row) + "\n";
  return out;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string pct(double ratio, int precision) {
  return util::strf("%.*f%%", precision, ratio * 100.0);
}

}  // namespace bgpbh::stats
