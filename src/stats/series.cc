#include "stats/series.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace bgpbh::stats {

double DailySeries::at_day(std::int64_t day) const {
  auto it = days_.find(day);
  return it == days_.end() ? 0.0 : it->second;
}

double DailySeries::max() const {
  double m = 0.0;
  for (auto& [d, v] : days_) m = std::max(m, v);
  return m;
}

double DailySeries::mean() const {
  if (days_.empty()) return 0.0;
  double s = 0.0;
  for (auto& [d, v] : days_) s += v;
  return s / static_cast<double>(days_.size());
}

std::int64_t DailySeries::first_day() const {
  return days_.empty() ? 0 : days_.begin()->first;
}

std::int64_t DailySeries::last_day() const {
  return days_.empty() ? 0 : days_.rbegin()->first;
}

double DailySeries::mean_in(util::SimTime t0, util::SimTime t1) const {
  std::int64_t d0 = util::day_index(t0), d1 = util::day_index(t1);
  double s = 0.0;
  std::size_t n = 0;
  for (auto it = days_.lower_bound(d0); it != days_.end() && it->first < d1; ++it) {
    s += it->second;
    ++n;
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

double DailySeries::max_in(util::SimTime t0, util::SimTime t1) const {
  std::int64_t d0 = util::day_index(t0), d1 = util::day_index(t1);
  double m = 0.0;
  for (auto it = days_.lower_bound(d0); it != days_.end() && it->first < d1; ++it) {
    m = std::max(m, it->second);
  }
  return m;
}

std::string DailySeries::ascii_plot(const std::string& name,
                                    const std::vector<Annotation>& notes,
                                    std::size_t width, std::size_t height) const {
  std::string out = "Series: " + name + "\n";
  if (days_.empty()) return out + "  <empty>\n";
  std::int64_t d0 = first_day(), d1 = last_day();
  std::int64_t span = std::max<std::int64_t>(1, d1 - d0 + 1);
  // Downsample to `width` columns using the max within each column (so
  // one-day spikes stay visible, as in the paper's figures).
  std::vector<double> cols(width, 0.0);
  for (auto& [d, v] : days_) {
    std::size_t c = static_cast<std::size_t>((d - d0) * static_cast<std::int64_t>(width) / span);
    c = std::min(c, width - 1);
    cols[c] = std::max(cols[c], v);
  }
  double maxv = *std::max_element(cols.begin(), cols.end());
  if (maxv <= 0) maxv = 1;
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t c = 0; c < width; ++c) {
    std::size_t h = static_cast<std::size_t>(
        std::round(cols[c] / maxv * static_cast<double>(height - 1)));
    for (std::size_t r = 0; r <= h; ++r) grid[height - 1 - r][c] = cols[c] > 0 ? '|' : ' ';
  }
  // Annotation row.
  std::string ann(width, ' ');
  for (auto& note : notes) {
    if (note.day < d0 || note.day > d1 || note.label.empty()) continue;
    std::size_t c = static_cast<std::size_t>((note.day - d0) * static_cast<std::int64_t>(width) / span);
    c = std::min(c, width - 1);
    ann[c] = note.label[0];
  }
  out += "       " + ann + "\n";
  for (std::size_t r = 0; r < height; ++r) {
    double frac = 1.0 - static_cast<double>(r) / static_cast<double>(height - 1);
    out += util::strf("%6.0f |", frac * maxv);
    out += grid[r];
    out += '\n';
  }
  out += "       +" + std::string(width, '-') + "\n";
  out += util::strf("        %s .. %s   max=%.0f mean=%.1f\n",
                    util::format_date(d0 * util::kDay).c_str(),
                    util::format_date(d1 * util::kDay).c_str(), max(), mean());
  return out;
}

}  // namespace bgpbh::stats
