// Console table printer used by every bench binary to emit the paper's
// tables with aligned columns, plus a "paper vs measured" comparison row
// helper used by EXPERIMENTS.md generation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bgpbh::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Convenience for numeric-heavy rows.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 0);

  std::string to_string() const;
  // GitHub-flavoured markdown rendering (for EXPERIMENTS.md).
  std::string to_markdown() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a count with thousands separators ("88,209").
std::string with_commas(std::uint64_t v);
// "12.3%" given a ratio.
std::string pct(double ratio, int precision = 1);

}  // namespace bgpbh::stats
