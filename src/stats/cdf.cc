#include "stats/cdf.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace bgpbh::stats {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 1.0);
  double idx = p * static_cast<double>(samples_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double Cdf::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::log_points(std::size_t n) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n == 0) return out;
  double lo = std::max(min(), 1e-9);
  double hi = std::max(max(), lo * (1.0 + 1e-9));
  double llo = std::log(lo), lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i) {
    double t = (n == 1) ? 1.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    // Pin the last point to the exact maximum so F reaches 1.0 despite
    // exp/log rounding.
    double x = (i + 1 == n) ? max() : std::exp(llo + t * (lhi - llo));
    out.emplace_back(x, at(x));
  }
  return out;
}

std::vector<std::pair<double, double>> Cdf::linear_points(std::size_t n) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || n == 0) return out;
  double lo = min(), hi = max();
  for (std::size_t i = 0; i < n; ++i) {
    double t = (n == 1) ? 1.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    double x = (i + 1 == n) ? hi : lo + t * (hi - lo);
    out.emplace_back(x, at(x));
  }
  return out;
}

std::string Cdf::ascii_plot(const std::string& name, std::size_t width,
                            std::size_t height, bool log_x) const {
  std::string out = "CDF: " + name + " (n=" + std::to_string(count()) + ")\n";
  if (samples_.empty()) return out + "  <empty>\n";
  auto pts = log_x ? log_points(width) : linear_points(width);
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t c = 0; c < pts.size() && c < width; ++c) {
    double f = pts[c].second;
    std::size_t row =
        height - 1 -
        std::min<std::size_t>(static_cast<std::size_t>(f * static_cast<double>(height - 1) + 0.5),
                              height - 1);
    grid[row][c] = '*';
  }
  for (std::size_t r = 0; r < height; ++r) {
    double frac = 1.0 - static_cast<double>(r) / static_cast<double>(height - 1);
    out += util::strf("%5.2f |", frac);
    out += grid[r];
    out += '\n';
  }
  out += "      +" + std::string(width, '-') + "\n";
  out += util::strf("       x: %.3g .. %.3g%s\n", pts.front().first,
                    pts.back().first, log_x ? " (log)" : "");
  return out;
}

}  // namespace bgpbh::stats
