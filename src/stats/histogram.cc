#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace bgpbh::stats {

std::uint64_t IntHistogram::total() const {
  std::uint64_t t = 0;
  for (auto& [k, v] : bins_) t += v;
  return t;
}

std::uint64_t IntHistogram::at(std::int64_t key) const {
  auto it = bins_.find(key);
  return it == bins_.end() ? 0 : it->second;
}

double IntHistogram::fraction(std::int64_t key) const {
  std::uint64_t t = total();
  return t == 0 ? 0.0 : static_cast<double>(at(key)) / static_cast<double>(t);
}

double IntHistogram::fraction_at_least(std::int64_t k) const {
  std::uint64_t t = total();
  if (t == 0) return 0.0;
  std::uint64_t n = 0;
  for (auto it = bins_.lower_bound(k); it != bins_.end(); ++it) n += it->second;
  return static_cast<double>(n) / static_cast<double>(t);
}

std::int64_t IntHistogram::max_key() const {
  return bins_.empty() ? 0 : bins_.rbegin()->first;
}

std::string IntHistogram::ascii_plot(const std::string& name, bool log_y,
                                     std::size_t width) const {
  std::string out = "Histogram: " + name + " (total=" + std::to_string(total()) + ")\n";
  if (bins_.empty()) return out + "  <empty>\n";
  double maxv = 0;
  for (auto& [k, v] : bins_) {
    double y = log_y ? std::log10(static_cast<double>(v) + 1.0)
                     : static_cast<double>(v);
    maxv = std::max(maxv, y);
  }
  for (auto& [k, v] : bins_) {
    double y = log_y ? std::log10(static_cast<double>(v) + 1.0)
                     : static_cast<double>(v);
    std::size_t bar = maxv > 0 ? static_cast<std::size_t>(
                                     y / maxv * static_cast<double>(width))
                               : 0;
    out += util::strf("%8lld | %-*s %llu\n", static_cast<long long>(k),
                      static_cast<int>(width),
                      std::string(bar, '#').c_str(),
                      static_cast<unsigned long long>(v));
  }
  return out;
}

void LogHistogram::add(double x) {
  if (x < lo_) x = lo_;
  int k = static_cast<int>(std::floor(std::log(x / lo_) / std::log(growth_)));
  bins_[k] += 1;
  ++total_;
}

std::vector<LogHistogram::Bucket> LogHistogram::buckets() const {
  std::vector<Bucket> out;
  for (auto& [k, v] : bins_) {
    Bucket b;
    b.lo = lo_ * std::pow(growth_, k);
    b.hi = b.lo * growth_;
    b.count = v;
    out.push_back(b);
  }
  return out;
}

std::string LogHistogram::ascii_plot(const std::string& name,
                                     std::size_t width) const {
  std::string out =
      "LogHistogram: " + name + " (total=" + std::to_string(total_) + ")\n";
  auto bs = buckets();
  if (bs.empty()) return out + "  <empty>\n";
  double maxv = 0;
  for (auto& b : bs) maxv = std::max(maxv, std::log10(static_cast<double>(b.count) + 1.0));
  for (auto& b : bs) {
    double y = std::log10(static_cast<double>(b.count) + 1.0);
    std::size_t bar =
        maxv > 0 ? static_cast<std::size_t>(y / maxv * static_cast<double>(width)) : 0;
    out += util::strf("[%10.3g, %10.3g) | %-*s %llu\n", b.lo, b.hi,
                      static_cast<int>(width), std::string(bar, '#').c_str(),
                      static_cast<unsigned long long>(b.count));
  }
  return out;
}

}  // namespace bgpbh::stats
