// The BGP blackholing inference engine (§4.2) — the paper's primary
// contribution.
//
// Pipeline per observed update:
//   1. Data cleaning: drop bogon prefixes and prefixes less specific
//      than /8 (§3).
//   2. Scan the communities attribute against the documented blackhole
//      dictionary.
//   3. Resolve the blackholing provider:
//        * unambiguous ISP community -> provider even if absent from
//          the AS path (community bundling, Fig 3);
//        * ambiguous community (multiple candidate ASNs) -> require a
//          candidate on the AS path;
//        * IXP community -> require the route-server ASN on the path
//          OR peer-ip within the IXP's peering LAN (PeeringDB).
//   4. Infer the blackholing user: the AS hop before the provider on
//      the prepending-free path; peer-as for the IXP peer-ip case.
//   5. Track state per (BGP peer, prefix): a tagged announcement opens
//      an event; a tag-less re-announcement closes it (implicit
//      withdrawal); an explicit WITHDRAW closes it.
//
// The engine is initialized from a RIB table dump, where event start
// times are unknown and recorded as zero (§4.2).
#pragma once

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/mrt.h"
#include "core/events.h"
#include "dictionary/compiled.h"
#include "dictionary/dictionary.h"
#include "net/patricia.h"
#include "topology/registry.h"

namespace bgpbh::core {

// Team-Cymru-style bogon filter plus the /8 minimum-length rule.
class BgpCleaner {
 public:
  BgpCleaner();
  // True if the prefix should be dropped from the analysis.
  bool is_bogus(const net::Prefix& prefix) const;
  std::size_t bogon_count() const { return bogons_.size(); }

 private:
  net::PrefixTable<bool> bogons_;
};

struct EngineConfig {
  bool clean_input = true;
  // Ablation knob: disable bundling detection (provider communities
  // whose ASN is not on the path are then ignored).
  bool detect_bundled = true;
  // Ablation knob: accept ambiguous communities without path evidence.
  bool require_path_evidence_for_ambiguous = true;
  // Query the compiled dictionary (bitset prefilter + flat arrays)
  // instead of the std::map source dictionary.  Results are identical
  // either way (tests/test_engine.cc proves it); the knob exists for
  // A/B benching and as a safety hatch.
  bool use_compiled_fastpath = true;
};

// Borrowed single-prefix view of one observed update — the zero-copy
// engine entry point used by the streaming data plane (the shard
// workers read route attributes straight out of a shared UpdateBlock,
// src/stream/update_block.h).  All referenced data is owned by the
// caller and only needs to stay alive for the duration of the
// process() call.  Withdrawals never read as_path/communities.
struct UpdateView {
  Platform platform = Platform::kRis;
  util::SimTime time = 0;
  bgp::PeerKey peer;
  const net::Prefix* prefix = nullptr;
  bool is_withdrawal = false;
  const bgp::AsPath* as_path = nullptr;
  const bgp::CommunitySet* communities = nullptr;
  // Wall-clock ingest stamp of the originating FeedUpdate (0 =
  // unstamped); events closed by this update inherit it so the
  // e2e.detect_latency_ns histogram can be recorded at drain time.
  std::uint64_t ingest_ns = 0;
};

// One detected provider of an open (not yet closed) blackhole event —
// the serializable mirror of the engine's internal Detection record,
// exported by checkpointing (src/recovery/) and re-imported on crash
// recovery.
struct OpenDetection {
  ProviderRef provider;
  Asn user = 0;
  DetectionKind kind = DetectionKind::kProviderOnPath;
  int as_distance = kNoPathDistance;
  friend bool operator==(const OpenDetection&, const OpenDetection&) = default;
};

// Full open state of one (peer, prefix) key: everything close_event()
// and finish() read, so an engine restored from this state closes the
// event byte-identically to the engine that exported it.
struct OpenEventState {
  bgp::PeerKey peer;
  net::Prefix prefix;
  util::SimTime start = 0;
  Platform platform = Platform::kRis;
  bool from_table_dump = false;
  std::vector<OpenDetection> detections;
  bgp::CommunitySet communities;
  friend bool operator==(const OpenEventState&, const OpenEventState&) = default;
};

struct EngineStats {
  std::uint64_t updates_processed = 0;
  std::uint64_t announcements_seen = 0;
  std::uint64_t withdrawals_seen = 0;
  std::uint64_t bogons_filtered = 0;
  std::uint64_t events_opened = 0;
  std::uint64_t events_closed_explicit = 0;
  std::uint64_t events_closed_implicit = 0;
  std::uint64_t ambiguous_rejected = 0;   // ambiguous comm, no path evidence
  std::uint64_t ixp_rejected = 0;         // IXP comm, no RS/LAN evidence

  // Counter-wise sum; lets per-shard stats fold into a fleet total.
  EngineStats& operator+=(const EngineStats& other);
  friend bool operator==(const EngineStats&, const EngineStats&) = default;
};

class InferenceEngine {
 public:
  InferenceEngine(const dictionary::BlackholeDictionary& dictionary,
                  const topology::Registry& registry,
                  EngineConfig config = {});

  // Shares a prebuilt compiled dictionary instead of compiling a
  // private copy — the compiled form is immutable, so N engine shards
  // over the same dictionary need only one.  `compiled` must be built
  // from `dictionary` and outlive the engine.
  InferenceEngine(const dictionary::BlackholeDictionary& dictionary,
                  const dictionary::CompiledDictionary& compiled,
                  const topology::Registry& registry,
                  EngineConfig config = {});

  // §4.2 initialization: detect already-blackholed prefixes in a table
  // dump; their start time is recorded as 0 (unknown).
  void init_from_table_dump(Platform platform, const bgp::mrt::TableDump& dump);

  // Continuous monitoring mode.
  void process(Platform platform, const bgp::ObservedUpdate& update);

  // Zero-copy single-prefix entry point: identical inference and stats
  // to feeding the same sub-update through the owning overload above,
  // without materializing an ObservedUpdate.  One call counts as one
  // processed update (the streaming pipeline folds sub-update counts
  // back into original-update counts itself).
  void process(const UpdateView& view);

  // Close all still-open events at `end_time` (end of study window).
  void finish(util::SimTime end_time);

  // Closed events (open events are returned by finish()).
  const std::vector<PeerEvent>& events() const { return closed_; }
  // Incremental alternative to events(): moves out the events closed
  // since the last drain, leaving the internal buffer empty.  Streaming
  // consumers (src/stream/ shard workers) use this so the per-shard
  // buffer never grows with the lifetime of the pipeline; events() and
  // drain_closed() must not be mixed on the same engine.
  std::vector<PeerEvent> drain_closed();
  std::size_t open_event_count() const;
  const EngineStats& stats() const { return stats_; }

  // Checkpoint hooks (src/recovery/): export the ActiveState table as
  // serializable records, sorted by (peer, prefix) key so the listing
  // is deterministic across hash-map layouts.  Counterpart import
  // re-creates the table exactly; it is only valid on an engine that
  // has processed nothing yet, and deliberately does NOT touch stats_
  // (stats are per-process observations, not recovered state).
  std::vector<OpenEventState> export_open_state() const;
  void import_open_state(std::vector<OpenEventState> states);

 private:
  struct Detection {
    ProviderRef provider;
    Asn user = 0;
    DetectionKind kind = DetectionKind::kProviderOnPath;
    int as_distance = kNoPathDistance;
  };

  struct ActiveState {
    util::SimTime start = 0;
    Platform platform = Platform::kRis;  // platform that opened the event
    bool from_table_dump = false;
    std::vector<Detection> detections;
    bgp::CommunitySet communities;
  };

  // Runs steps 2-4 on one route, filling detect_scratch_; false = not a
  // blackhole route.  The negative path — the overwhelming majority of
  // updates in a real feed — performs zero heap allocations: the
  // compiled dictionary's bitset prefilter runs before any path work,
  // path scans never materialize the prepending-free copy, and the
  // scratch vector is engine-owned and reused across updates.
  bool detect(const bgp::PeerKey& peer, const bgp::AsPath& path,
              const bgp::CommunitySet& communities);

  // Shared per-prefix transitions; both process() overloads funnel
  // here, which is what keeps the owning and view paths byte-equal.
  void process_withdrawal(Platform platform, const bgp::PeerKey& peer,
                          const net::Prefix& prefix, util::SimTime time);
  void process_announcement(Platform platform, const bgp::PeerKey& peer,
                            const net::Prefix& prefix, util::SimTime time,
                            const bgp::AsPath& path,
                            const bgp::CommunitySet& communities);

  void open_event(Platform platform, const bgp::PeerKey& peer,
                  const net::Prefix& prefix, util::SimTime time,
                  bool from_dump, const std::vector<Detection>& detections,
                  const bgp::CommunitySet& communities);
  void close_event(Platform platform, const bgp::PeerKey& peer,
                   const net::Prefix& prefix, util::SimTime time,
                   bool explicit_withdrawal);

  const dictionary::BlackholeDictionary& dictionary_;
  // Compiled fast-path form: either owned (built by the ctor, left
  // empty when the fast path is disabled) or shared across shards.
  // compiled_ points at whichever is in use.
  dictionary::CompiledDictionary owned_compiled_;
  const dictionary::CompiledDictionary* compiled_;
  const topology::Registry& registry_;
  EngineConfig config_;
  BgpCleaner cleaner_;
  // Reused by detect(); valid until the next detect() call.
  std::vector<Detection> detect_scratch_;

  using StateKey = std::pair<bgp::PeerKey, net::Prefix>;
  struct StateKeyHash {
    std::size_t operator()(const StateKey& key) const noexcept;
  };
  std::unordered_map<StateKey, ActiveState, StateKeyHash> active_;
  std::vector<PeerEvent> closed_;
  EngineStats stats_;
  // Ingest stamp of the update currently being processed (0 outside a
  // stamped process(view) call); close_event copies it onto every
  // event the update closes.  Not part of engine state proper — pure
  // observability plumbing, never checkpointed.
  std::uint64_t ingest_ns_ = 0;
};

}  // namespace bgpbh::core
