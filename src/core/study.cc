#include "core/study.h"

#include <algorithm>
#include <unordered_set>

namespace bgpbh::core {

using routing::Platform;

Study::Study(StudyConfig config)
    : config_(std::move(config)),
      graph_(topology::generate(config_.topology)),
      registry_(topology::Registry::build(graph_,
                                          config_.topology.peeringdb_coverage,
                                          config_.topology.caida_coverage,
                                          config_.seed)),
      cones_(std::make_unique<topology::CustomerCones>(graph_)),
      corpus_(dictionary::generate_corpus(graph_, config_.seed)),
      dictionary_(dictionary::build_documented_dictionary(corpus_, registry_)),
      fleet_(routing::CollectorFleet::build(graph_, config_.fleet)),
      propagation_(std::make_unique<routing::PropagationEngine>(
          graph_, *cones_, config_.seed ^ 0xABCDULL)),
      workload_(std::make_unique<workload::WorkloadGenerator>(graph_, *cones_,
                                                              config_.workload)),
      engine_(std::make_unique<InferenceEngine>(dictionary_, registry_,
                                                config_.engine)) {}

bgp::mrt::TableDump Study::build_table_dump() const {
  // Episodes already active when monitoring starts are only visible in
  // the first RIB dump; the engine must record start time 0 for them.
  util::Rng rng(config_.seed ^ 0xD00DULL);
  bgp::mrt::TableDump dump;
  dump.time = config_.window_start;
  dump.collector_name = "bgpbh-initial-rib";

  const auto& users = workload_->eligible_users();
  if (users.empty()) return dump;
  for (std::size_t k = 0; k < config_.table_dump_episodes; ++k) {
    const auto& user = users[rng.uniform(users.size())];
    const topology::AsNode* node = graph_.find(user.asn);
    if (!node || node->originated_v4.empty()) continue;
    if (user.available_providers.empty()) continue;

    // Build a /32 blackhole route as one of the user's providers' peers
    // would have seen it before the window.
    const net::Prefix& block = node->originated_v4.front();
    std::uint32_t host = block.addr().v4().value() +
                         static_cast<std::uint32_t>(rng.uniform(1u << (32 - block.len())));
    net::Prefix prefix(net::Ipv4Addr(host), 32);
    bgp::Asn provider = user.available_providers.front();
    const topology::AsNode* pnode = graph_.find(provider);
    if (!pnode || pnode->blackhole.communities.empty()) continue;

    // Find a collector session of the provider to attribute the entry to.
    auto sessions = fleet_.sessions_of(provider);
    if (sessions.empty()) continue;
    const auto& session = fleet_.sessions()[sessions[0]];

    bgp::mrt::TableDump::Entry entry;
    entry.peer.peer_ip = session.peer_ip;
    entry.peer.peer_asn = session.peer_asn;
    entry.prefix = prefix;
    entry.as_path = bgp::AsPath({provider, user.asn});
    entry.communities.add(pnode->blackhole.communities.front());
    entry.originated = config_.window_start - util::kDay;
    dump.entries.push_back(std::move(entry));
  }
  return dump;
}

std::optional<bgp::mrt::TableDump> Study::initial_table_dump() const {
  if (config_.table_dump_episodes == 0) return std::nullopt;
  bgp::mrt::TableDump dump = build_table_dump();
  if (dump.entries.empty()) return std::nullopt;
  // Round-trip through the MRT codec: the study consumes its own
  // interchange format, not in-memory shortcuts.
  net::BufWriter w;
  bgp::mrt::encode_table_dump(dump, w);
  return bgp::mrt::decode_table_dump(w.data());
}

void Study::seed_table_dump() {
  if (auto dump = initial_table_dump()) {
    engine_->init_from_table_dump(Platform::kRis, *dump);
  }
}

void Study::feed_update(const routing::FeedUpdate& update) {
  engine_->process(update.platform, update.update);
  if (config_.collect_usage) {
    usage_.observe(update.update, dictionary_);
  }
}

void Study::run_background_day(std::int64_t day,
                               workload::WorkloadGenerator& workload,
                               routing::PropagationEngine& propagation,
                               const UpdateSink& sink) const {
  auto announcements = workload.background_for_day(day);
  util::Rng rng(config_.seed ^ (0xBA5EULL + static_cast<std::uint64_t>(day)));
  const auto& sessions = fleet_.sessions();
  if (sessions.empty()) return;

  // Rotating coverage slice: every AS re-announces its routes with its
  // usual service communities every ~5 days, so the Fig 2 usage
  // statistics see each community's regular (<= /24) footprint — the
  // signal that keeps the extended-dictionary inference precise.
  const auto& nodes = graph_.nodes();
  std::size_t stride = 3;
  for (std::size_t i = static_cast<std::size_t>(day) % stride; i < nodes.size();
       i += stride) {
    const auto& node = nodes[i];
    if (node.service_communities.empty() || node.originated_v4.empty()) continue;
    routing::BlackholeAnnouncement ann;
    ann.user = node.asn;
    ann.prefix = node.originated_v4[rng.uniform(node.originated_v4.size())];
    ann.time = day * util::kDay + static_cast<util::SimTime>(rng.uniform(util::kDay));
    for (auto c : node.service_communities) ann.extra_communities.push_back(c);
    announcements.push_back(std::move(ann));
  }

  for (const auto& ann : announcements) {
    // A regular announcement is visible at many collector peers; sample
    // a few sessions and synthesize their view via baseline paths.
    std::size_t copies = 2 + rng.uniform(3);
    for (std::size_t c = 0; c < copies; ++c) {
      const auto& session = sessions[rng.uniform(sessions.size())];
      auto path = propagation.baseline_path(session.peer_asn, ann.user);
      if (!path) continue;
      routing::FeedUpdate fu;
      fu.platform = session.platform;
      fu.update.time = ann.time;
      fu.update.peer_ip = session.peer_ip;
      fu.update.peer_asn = session.peer_asn;
      fu.update.collector_id = session.collector_id;
      fu.update.body.announced.push_back(ann.prefix);
      fu.update.body.as_path = *path;
      for (auto community : ann.extra_communities) {
        fu.update.body.communities.add(community);
      }
      sink(fu);
    }
  }
}

void Study::walk_updates(workload::WorkloadGenerator& workload,
                         routing::PropagationEngine& propagation,
                         const UpdateSink& sink,
                         std::vector<GroundTruthEpisode>* truth_out) const {
  std::int64_t first_day = util::day_index(config_.window_start);
  std::int64_t last_day = util::day_index(config_.window_end);

  for (std::int64_t day = first_day; day < last_day; ++day) {
    auto episodes = workload.episodes_for_day(day);
    for (auto& episode : episodes) {
      // Propagate the initial announcement once; toggles re-use the
      // same propagation footprint (same communities and targets).
      routing::BlackholeAnnouncement ann = episode.announcement(episode.start);
      auto prop = propagation.propagate_blackhole(ann);

      GroundTruthEpisode truth;
      truth.activated_providers = prop.activated_providers;
      truth.activated_ixps = prop.activated_ixps;
      truth.control_plane_only = prop.control_plane_only;

      for (const auto& period : episode.on_periods) {
        // Episodes may outlive the observation window; clamp so no
        // update is stamped past window_end (engine.finish closes the
        // remainder, as with real archive cut-offs).
        if (period.start >= config_.window_end - 30) break;
        util::SimTime period_end =
            std::min(period.end, config_.window_end - 20);
        if (period_end <= period.start) continue;
        ann.time = period.start;
        auto announce_updates = fleet_.observe_announcement(prop, ann, propagation);
        for (const auto& u : announce_updates) sink(u);
        truth.observed_updates += announce_updates.size();
        auto withdraw_updates = fleet_.observe_withdrawal(
            prop, ann, propagation, period_end, period.explicit_withdrawal);
        for (const auto& u : withdraw_updates) sink(u);
      }
      if (truth_out) {
        truth.episode = std::move(episode);
        truth_out->push_back(std::move(truth));
      }
    }
    run_background_day(day, workload, propagation, sink);
  }
}

std::vector<routing::FeedUpdate> Study::replay_updates() const {
  // Fresh substrates with the same seeds reproduce run()'s stream
  // update-for-update: workload and propagation draw only from their
  // own RNGs, and the walker makes the identical call sequence.
  workload::WorkloadGenerator workload(graph_, *cones_, config_.workload);
  routing::PropagationEngine propagation(graph_, *cones_,
                                         config_.seed ^ 0xABCDULL);
  std::vector<routing::FeedUpdate> out;
  walk_updates(workload, propagation,
               [&out](const routing::FeedUpdate& u) { out.push_back(u); },
               nullptr);
  return out;
}

void Study::run() {
  if (ran_) return;
  ran_ = true;

  seed_table_dump();

  walk_updates(*workload_, *propagation_,
               [this](const routing::FeedUpdate& u) { feed_update(u); },
               &truth_);

  engine_->finish(config_.window_end);
  events_ = engine_->events();
  engine_stats_ = engine_->stats();
  // Same incremental core the live session's api::LiveGrouper runs —
  // the batch aggregates are the incremental ones fed in close order.
  IncrementalGrouper grouper;
  for (const auto& e : events_) grouper.add(e);
  prefix_events_ = grouper.correlated();
  grouped_events_ = grouper.grouped();
}

stats::DailySeries Study::daily_providers() const {
  stats::DailySeries out;
  std::map<std::int64_t, std::set<ProviderRef>> per_day;
  for (const auto& e : prefix_events_) {
    std::int64_t d0 = util::day_index(e.start), d1 = util::day_index(e.end);
    for (std::int64_t d = d0; d <= d1; ++d) {
      per_day[d].insert(e.providers.begin(), e.providers.end());
    }
  }
  for (auto& [day, providers] : per_day) {
    out.set(day, static_cast<double>(providers.size()));
  }
  return out;
}

stats::DailySeries Study::daily_users() const {
  stats::DailySeries out;
  std::map<std::int64_t, std::set<bgp::Asn>> per_day;
  for (const auto& e : prefix_events_) {
    std::int64_t d0 = util::day_index(e.start), d1 = util::day_index(e.end);
    for (std::int64_t d = d0; d <= d1; ++d) {
      per_day[d].insert(e.users.begin(), e.users.end());
    }
  }
  for (auto& [day, users] : per_day) {
    out.set(day, static_cast<double>(users.size()));
  }
  return out;
}

stats::DailySeries Study::daily_prefixes() const {
  stats::DailySeries out;
  std::map<std::int64_t, std::set<net::Prefix>> per_day;
  for (const auto& e : prefix_events_) {
    std::int64_t d0 = util::day_index(e.start), d1 = util::day_index(e.end);
    for (std::int64_t d = d0; d <= d1; ++d) {
      per_day[d].insert(e.prefix);
    }
  }
  for (auto& [day, prefixes] : per_day) {
    out.set(day, static_cast<double>(prefixes.size()));
  }
  return out;
}

bool Study::has_direct_feed(const ProviderRef& provider) const {
  for (auto p : routing::kAllPlatforms) {
    if (has_direct_feed(provider, p)) return true;
  }
  return false;
}

bool Study::has_direct_feed(const ProviderRef& provider,
                            routing::Platform platform) const {
  auto sessions = fleet_.sessions_of(provider.asn);
  for (std::size_t si : sessions) {
    if (fleet_.sessions()[si].platform == platform) return true;
  }
  return false;
}

std::vector<const PeerEvent*> Study::events_in(util::SimTime t0,
                                               util::SimTime t1) const {
  std::vector<const PeerEvent*> out;
  for (const auto& e : events_) {
    if (overlaps_window(e.start, e.end, t0, t1)) out.push_back(&e);
  }
  return out;
}

std::vector<const PrefixEvent*> Study::prefix_events_in(util::SimTime t0,
                                                        util::SimTime t1) const {
  std::vector<const PrefixEvent*> out;
  for (const auto& e : prefix_events_) {
    if (overlaps_window(e.start, e.end, t0, t1)) out.push_back(&e);
  }
  return out;
}

std::map<Platform, Study::VisibilityRow> Study::table3(util::SimTime t0,
                                                       util::SimTime t1) const {
  struct Sets {
    std::set<ProviderRef> providers;
    std::set<bgp::Asn> users;
    std::set<net::Prefix> prefixes;
  };
  std::map<Platform, Sets> per;
  for (const auto& e : events_) {
    if (!overlaps_window(e.start, e.end, t0, t1)) continue;
    auto& s = per[e.platform];
    s.providers.insert(e.provider);
    if (e.user != 0) s.users.insert(e.user);
    s.prefixes.insert(e.prefix);
  }

  // Uniqueness across platforms.
  std::map<ProviderRef, int> provider_count;
  std::map<bgp::Asn, int> user_count;
  std::map<net::Prefix, int> prefix_count;
  for (auto& [platform, s] : per) {
    for (auto& p : s.providers) provider_count[p] += 1;
    for (auto& u : s.users) user_count[u] += 1;
    for (auto& pf : s.prefixes) prefix_count[pf] += 1;
  }

  std::map<Platform, VisibilityRow> out;
  for (auto& [platform, s] : per) {
    VisibilityRow row;
    row.providers = s.providers.size();
    row.users = s.users.size();
    row.prefixes = s.prefixes.size();
    std::size_t direct = 0;
    for (auto& p : s.providers) {
      if (provider_count[p] == 1) row.unique_providers += 1;
      if (has_direct_feed(p, platform)) direct += 1;
    }
    for (auto& u : s.users) {
      if (user_count[u] == 1) row.unique_users += 1;
    }
    for (auto& pf : s.prefixes) {
      if (prefix_count[pf] == 1) row.unique_prefixes += 1;
    }
    row.direct_feed_fraction =
        s.providers.empty() ? 0.0
                            : static_cast<double>(direct) /
                                  static_cast<double>(s.providers.size());
    out[platform] = row;
  }
  return out;
}

Study::VisibilityRow Study::table3_all(util::SimTime t0, util::SimTime t1) const {
  VisibilityRow row;
  std::set<ProviderRef> providers;
  std::set<bgp::Asn> users;
  std::set<net::Prefix> prefixes;
  for (const auto& e : events_) {
    if (!overlaps_window(e.start, e.end, t0, t1)) continue;
    providers.insert(e.provider);
    if (e.user != 0) users.insert(e.user);
    prefixes.insert(e.prefix);
  }
  row.providers = providers.size();
  row.users = users.size();
  row.prefixes = prefixes.size();
  std::size_t direct = 0;
  for (auto& p : providers) {
    if (has_direct_feed(p)) direct += 1;
  }
  row.direct_feed_fraction =
      providers.empty()
          ? 0.0
          : static_cast<double>(direct) / static_cast<double>(providers.size());
  // "Unique" columns for the ALL row: platform-exclusive entities.
  auto per = table3(t0, t1);
  for (auto& [platform, r] : per) {
    row.unique_providers += r.unique_providers;
    row.unique_users += r.unique_users;
    row.unique_prefixes += r.unique_prefixes;
  }
  return row;
}

std::map<topology::NetworkType, Study::TypeRow> Study::table4(
    util::SimTime t0, util::SimTime t1) const {
  struct Sets {
    std::set<ProviderRef> providers;
    std::set<bgp::Asn> users;
    std::set<net::Prefix> prefixes;
    std::size_t direct = 0;
  };
  std::map<topology::NetworkType, Sets> per;
  // Provider -> type resolution via the registry pipeline (§4.1).
  std::map<ProviderRef, topology::NetworkType> types;
  for (const auto& e : events_) {
    if (!overlaps_window(e.start, e.end, t0, t1)) continue;
    topology::NetworkType type;
    if (e.provider.is_ixp) {
      type = topology::NetworkType::kIxp;
    } else {
      type = registry_.classify(e.provider.asn);
    }
    auto& s = per[type];
    bool fresh = s.providers.insert(e.provider).second;
    if (fresh && has_direct_feed(e.provider)) s.direct += 1;
    if (e.user != 0) s.users.insert(e.user);
    s.prefixes.insert(e.prefix);
  }
  std::map<topology::NetworkType, TypeRow> out;
  for (auto& [type, s] : per) {
    TypeRow row;
    row.providers = s.providers.size();
    row.users = s.users.size();
    row.prefixes = s.prefixes.size();
    row.direct_feed_fraction =
        s.providers.empty() ? 0.0
                            : static_cast<double>(s.direct) /
                                  static_cast<double>(s.providers.size());
    out[type] = row;
  }
  return out;
}

std::map<std::string, std::size_t> Study::providers_per_country(
    util::SimTime t0, util::SimTime t1) const {
  std::set<ProviderRef> providers;
  for (const auto& e : events_) {
    if (!overlaps_window(e.start, e.end, t0, t1)) continue;
    providers.insert(e.provider);
  }
  std::map<std::string, std::size_t> out;
  for (const auto& p : providers) {
    std::string country = "??";
    if (p.is_ixp) {
      const topology::Ixp* ixp = graph_.find_ixp(p.ixp_id);
      if (ixp) country = ixp->country;
    } else if (auto c = registry_.rir_country(p.asn)) {
      country = *c;
    }
    out[country] += 1;
  }
  return out;
}

std::map<std::string, std::size_t> Study::users_per_country(
    util::SimTime t0, util::SimTime t1) const {
  std::set<bgp::Asn> users;
  for (const auto& e : events_) {
    if (!overlaps_window(e.start, e.end, t0, t1)) continue;
    if (e.user != 0) users.insert(e.user);
  }
  std::map<std::string, std::size_t> out;
  for (bgp::Asn u : users) {
    std::string country = "??";
    if (auto c = registry_.rir_country(u)) country = *c;
    out[country] += 1;
  }
  return out;
}

}  // namespace bgpbh::core
