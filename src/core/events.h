// Event types produced by the blackholing inference engine (§4.2).
#pragma once

#include <compare>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "bgp/community.h"
#include "bgp/rib.h"
#include "net/prefix.h"
#include "routing/collectors.h"
#include "util/time.h"

namespace bgpbh::core {

using bgp::Asn;
using routing::Platform;

// A blackholing provider is either an ISP (identified by ASN) or an IXP.
struct ProviderRef {
  bool is_ixp = false;
  Asn asn = 0;           // ISP ASN, or the IXP's route-server ASN
  std::uint32_t ixp_id = 0;

  friend auto operator<=>(const ProviderRef&, const ProviderRef&) = default;
  std::string to_string() const;
};

// How the provider was identified from the update (§4.2; the ablation
// benches break inferences down by kind).
enum class DetectionKind : std::uint8_t {
  kProviderOnPath,   // provider ASN on the AS path
  kBundled,          // community of a provider NOT on the path (Fig 3)
  kIxpRouteServer,   // IXP route-server ASN on the AS path
  kIxpPeerIp,        // peer-ip inside an IXP peering LAN
};

std::string to_string(DetectionKind k);

// AS distance between collector peer and provider (Fig 7c).
inline constexpr int kNoPathDistance = -1;  // provider not on path

// One blackholing event as tracked at the granularity of an individual
// BGP peer (the paper's unit of tracking).
struct PeerEvent {
  Platform platform = Platform::kRis;
  bgp::PeerKey peer;
  net::Prefix prefix;
  ProviderRef provider;
  Asn user = 0;
  DetectionKind kind = DetectionKind::kProviderOnPath;
  int as_distance = kNoPathDistance;  // 0 = at the collector's IXP
  util::SimTime start = 0;
  util::SimTime end = 0;
  bool open = true;                 // not yet ended
  bool explicit_withdrawal = false; // end came from a WITHDRAW message
  bool started_in_table_dump = false;  // start time unknown (== 0, §4.2)
  bgp::CommunitySet communities;

  // e2e latency stamps (util::wall_clock_ns()), set when the closing
  // update carried an ingest stamp: when the update that closed this
  // event entered the system, and when the engine emitted the closed
  // event.  Transient observability data — excluded from equality and
  // from the storage record codec (replays and recovered streams
  // legitimately produce different wall times for identical events).
  std::uint64_t ingest_ns = 0;
  std::uint64_t detected_ns = 0;

  util::SimTime duration() const { return end - start; }

  friend bool operator==(const PeerEvent& a, const PeerEvent& b) {
    return a.platform == b.platform && a.peer == b.peer &&
           a.prefix == b.prefix && a.provider == b.provider &&
           a.user == b.user && a.kind == b.kind &&
           a.as_distance == b.as_distance && a.start == b.start &&
           a.end == b.end && a.open == b.open &&
           a.explicit_withdrawal == b.explicit_withdrawal &&
           a.started_in_table_dump == b.started_in_table_dump &&
           a.communities == b.communities;
  }
};

// Canonical total order over peer events: (start, end, prefix, peer,
// provider, platform, kind, user, ...).  Sorting two event sets with
// this comparator makes them directly comparable regardless of the
// emission order — the equivalence contract between the sequential
// engine and the sharded streaming pipeline (src/stream/).
bool canonical_less(const PeerEvent& a, const PeerEvent& b);
void canonical_sort(std::vector<PeerEvent>& events);

// A blackholing event correlated across peers: the blackholing of one
// prefix at one or more providers concurrently (§9).
struct PrefixEvent {
  net::Prefix prefix;
  util::SimTime start = 0;
  util::SimTime end = 0;
  std::set<ProviderRef> providers;
  std::set<Asn> users;
  std::size_t num_peer_events = 0;
  bool includes_table_dump_start = false;

  util::SimTime duration() const { return end - start; }

  friend bool operator==(const PrefixEvent&, const PrefixEvent&) = default;
};

// The one [t0, t1) window-overlap rule every event query uses —
// Study::events_in, stream::EventStore::events_in and api::EventQuery
// all filter through this helper, so "overlaps the window" can never
// drift between the batch and live surfaces.
constexpr bool overlaps_window(util::SimTime start, util::SimTime end,
                               util::SimTime t0, util::SimTime t1) {
  return end >= t0 && start < t1;
}

}  // namespace bgpbh::core
