// End-to-end study orchestration: builds every substrate, replays the
// longitudinal workload through the collector fleet into the inference
// engine, and derives the aggregates behind each table/figure of the
// paper.  All bench binaries and most integration tests sit on top of
// this class.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/engine.h"
#include "core/grouping.h"
#include "dictionary/corpus.h"
#include "dictionary/dictionary.h"
#include "dictionary/inferred.h"
#include "routing/collectors.h"
#include "routing/propagation.h"
#include "stats/series.h"
#include "topology/cone.h"
#include "topology/generator.h"
#include "topology/registry.h"
#include "workload/scenario.h"

namespace bgpbh::core {

struct StudyConfig {
  std::uint64_t seed = 2017;
  topology::GeneratorConfig topology;
  routing::FleetConfig fleet;
  workload::WorkloadConfig workload;
  util::SimTime window_start = util::study_start();
  util::SimTime window_end = util::study_end();
  // Track per-community usage statistics (Fig 2); costs some memory.
  bool collect_usage = true;
  // Engine ablations are forwarded verbatim.
  EngineConfig engine;
  // Number of pre-window episodes seeded into the initial table dump
  // (exercises §4.2 initialization; start times recorded as 0).
  std::size_t table_dump_episodes = 25;
};

// One episode's ground truth kept for validation and for the
// data-plane / flows benches.
struct GroundTruthEpisode {
  workload::Episode episode;
  std::vector<bgp::Asn> activated_providers;
  std::vector<std::uint32_t> activated_ixps;
  bool control_plane_only = false;
  std::size_t observed_updates = 0;  // collector sightings (0 = invisible)
};

class Study {
 public:
  explicit Study(StudyConfig config = {});

  // Runs the full pipeline once; subsequent calls are no-ops.
  void run();

  // ---- substrates -----------------------------------------------------
  const topology::AsGraph& graph() const { return graph_; }
  const topology::Registry& registry() const { return registry_; }
  const topology::CustomerCones& cones() const { return *cones_; }
  const dictionary::Corpus& corpus() const { return corpus_; }
  const dictionary::BlackholeDictionary& dictionary() const { return dictionary_; }
  const routing::CollectorFleet& fleet() const { return fleet_; }
  routing::PropagationEngine& propagation() { return *propagation_; }
  const workload::WorkloadGenerator& workload() const { return *workload_; }
  const StudyConfig& config() const { return config_; }

  // ---- inference output -------------------------------------------------
  const std::vector<PeerEvent>& events() const { return events_; }
  const std::vector<PrefixEvent>& prefix_events() const { return prefix_events_; }
  const std::vector<PrefixEvent>& grouped_events() const { return grouped_events_; }
  const EngineStats& engine_stats() const { return engine_stats_; }
  const std::vector<GroundTruthEpisode>& ground_truth() const { return truth_; }
  const dictionary::CommunityUsage& usage() const { return usage_; }

  // ---- derived aggregates -------------------------------------------------
  // Fig 4: daily active providers / users / prefixes (across datasets).
  stats::DailySeries daily_providers() const;
  stats::DailySeries daily_users() const;
  stats::DailySeries daily_prefixes() const;

  // Table 3 row (per platform + combined), over [t0, t1).
  struct VisibilityRow {
    std::size_t providers = 0;
    std::size_t unique_providers = 0;
    std::size_t users = 0;
    std::size_t unique_users = 0;
    std::size_t prefixes = 0;
    std::size_t unique_prefixes = 0;
    double direct_feed_fraction = 0.0;
  };
  std::map<routing::Platform, VisibilityRow> table3(util::SimTime t0,
                                                    util::SimTime t1) const;
  VisibilityRow table3_all(util::SimTime t0, util::SimTime t1) const;

  // Table 4: per provider network type.
  struct TypeRow {
    std::size_t providers = 0;
    std::size_t users = 0;
    std::size_t prefixes = 0;
    double direct_feed_fraction = 0.0;
  };
  std::map<topology::NetworkType, TypeRow> table4(util::SimTime t0,
                                                  util::SimTime t1) const;

  // Provider/user country counts (Fig 6).
  std::map<std::string, std::size_t> providers_per_country(util::SimTime t0,
                                                           util::SimTime t1) const;
  std::map<std::string, std::size_t> users_per_country(util::SimTime t0,
                                                       util::SimTime t1) const;

  // Whether a blackholing provider (ISP ASN or IXP) has a direct
  // collector session on any platform.
  bool has_direct_feed(const ProviderRef& provider) const;
  bool has_direct_feed(const ProviderRef& provider, routing::Platform p) const;

  // Events filtered to [t0, t1) (by overlap).
  std::vector<const PeerEvent*> events_in(util::SimTime t0, util::SimTime t1) const;
  std::vector<const PrefixEvent*> prefix_events_in(util::SimTime t0,
                                                   util::SimTime t1) const;

  // ---- streaming-pipeline interop ---------------------------------------
  // Re-generates the exact update stream run() feeds into the engine
  // (excluding table-dump initialization) from fresh, identically
  // seeded workload/propagation substrates.  Usable before or after
  // run(); this is the replay workload for src/stream/ equivalence
  // tests and benches.
  std::vector<routing::FeedUpdate> replay_updates() const;

  // The §4.2 initial RIB dump run() seeds the engine with (after the
  // MRT codec round-trip); nullopt when table_dump_episodes == 0 or no
  // episode materialized.
  std::optional<bgp::mrt::TableDump> initial_table_dump() const;

 private:
  using UpdateSink = std::function<void(const routing::FeedUpdate&)>;

  void feed_update(const routing::FeedUpdate& update);
  // Walks the full day loop (episodes + background traffic) against the
  // given substrates, emitting every collector update into `sink`;
  // optionally records ground truth.  run() and replay_updates() share
  // this walker so their streams are update-for-update identical.
  void walk_updates(workload::WorkloadGenerator& workload,
                    routing::PropagationEngine& propagation,
                    const UpdateSink& sink,
                    std::vector<GroundTruthEpisode>* truth_out) const;
  void run_background_day(std::int64_t day,
                          workload::WorkloadGenerator& workload,
                          routing::PropagationEngine& propagation,
                          const UpdateSink& sink) const;
  bgp::mrt::TableDump build_table_dump() const;
  void seed_table_dump();

  StudyConfig config_;
  topology::AsGraph graph_;
  topology::Registry registry_;
  std::unique_ptr<topology::CustomerCones> cones_;
  dictionary::Corpus corpus_;
  dictionary::BlackholeDictionary dictionary_;
  routing::CollectorFleet fleet_;
  std::unique_ptr<routing::PropagationEngine> propagation_;
  std::unique_ptr<workload::WorkloadGenerator> workload_;
  std::unique_ptr<InferenceEngine> engine_;
  dictionary::CommunityUsage usage_;

  std::vector<PeerEvent> events_;
  std::vector<PrefixEvent> prefix_events_;
  std::vector<PrefixEvent> grouped_events_;
  std::vector<GroundTruthEpisode> truth_;
  EngineStats engine_stats_;
  bool ran_ = false;
};

}  // namespace bgpbh::core
