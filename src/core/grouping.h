// Cross-peer correlation and temporal grouping of blackholing events.
//
// The engine tracks events per BGP peer (§4.2); a de-activation may be
// observed at only a subset of peers, so the per-prefix truth is the
// union of per-peer activity.  §9 then groups consecutive events of the
// same prefix with a 5-minute timeout: the ungrouped/grouped duration
// contrast (Fig 8a) exposes the operators' ON/OFF probing practice.
#pragma once

#include <span>
#include <vector>

#include "core/events.h"

namespace bgpbh::core {

// Merge per-peer events into per-prefix events: overlapping (or within
// `tolerance`) intervals of the same prefix are one blackholing event.
std::vector<PrefixEvent> correlate(std::span<const PeerEvent> events,
                                   util::SimTime tolerance = 60);

// Group consecutive events of the same prefix when the OFF gap is at
// most `timeout` (paper: 5 minutes).
std::vector<PrefixEvent> group_events(std::span<const PrefixEvent> events,
                                      util::SimTime timeout = 5 * util::kMinute);

}  // namespace bgpbh::core
