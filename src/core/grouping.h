// Cross-peer correlation and temporal grouping of blackholing events.
//
// The engine tracks events per BGP peer (§4.2); a de-activation may be
// observed at only a subset of peers, so the per-prefix truth is the
// union of per-peer activity.  §9 then groups consecutive events of the
// same prefix with a 5-minute timeout: the ungrouped/grouped duration
// contrast (Fig 8a) exposes the operators' ON/OFF probing practice.
//
// Both layers are one merge rule — intervals of the same prefix whose
// gap is at most a threshold belong to one event — and that rule is
// order-independent: inserting intervals one at a time and absorbing
// every stored interval within the threshold yields exactly the
// partition of the sorted batch sweep.  IncrementalGrouper maintains
// both layers that way, one closed peer event at a time, which is what
// lets the live pipeline (api::LiveGrouper) publish §9 groups while
// shard workers are still ingesting.  The batch correlate() /
// group_events() entry points are thin wrappers over the same core.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/events.h"

namespace bgpbh::core {

// The paper's §9 thresholds, shared by every grouping surface (batch
// wrappers, IncrementalGrouper, api::LiveGrouper, api::SessionConfig).
inline constexpr util::SimTime kCorrelateTolerance = 60;
inline constexpr util::SimTime kGroupTimeout = 5 * util::kMinute;

// Merge per-peer events into per-prefix events: overlapping (or within
// `tolerance`) intervals of the same prefix are one blackholing event.
std::vector<PrefixEvent> correlate(std::span<const PeerEvent> events,
                                   util::SimTime tolerance = kCorrelateTolerance);

// Group consecutive events of the same prefix when the OFF gap is at
// most `timeout` (paper: 5 minutes).
std::vector<PrefixEvent> group_events(std::span<const PrefixEvent> events,
                                      util::SimTime timeout = kGroupTimeout);

// Incremental §9 correlation + grouping: add() folds one closed peer
// event into both layers, in any arrival order.  After adding any
// multiset of events, correlated() equals correlate(events, tolerance)
// and grouped() equals group_events(correlate(events, tolerance),
// timeout) on the same multiset — byte for byte (requires tolerance <=
// timeout, which makes the correlation layer a refinement of the
// grouping layer; a shorter timeout is raised to the tolerance, and
// debug builds assert).
//
// Not thread-safe; api::LiveGrouper wraps it with a mutex for
// concurrent sink delivery and queries.
class IncrementalGrouper {
 public:
  explicit IncrementalGrouper(util::SimTime tolerance = kCorrelateTolerance,
                              util::SimTime timeout = kGroupTimeout);

  // Folds one closed peer event into both layers; returns a reference
  // to the grouping-layer event that now contains it (valid until the
  // next add()).
  const PrefixEvent& add(const PeerEvent& event);

  // Both layers flattened into the batch output order (start, prefix).
  std::vector<PrefixEvent> correlated() const;
  std::vector<PrefixEvent> grouped() const;

  std::size_t num_correlated() const { return num_correlated_; }
  std::size_t num_grouped() const { return num_grouped_; }
  std::size_t num_peer_events() const { return num_peer_events_; }
  util::SimTime tolerance() const { return tolerance_; }
  util::SimTime timeout() const { return timeout_; }

  // Checkpoint hook (src/recovery/): rebuild both layers from their
  // flattened forms — correlated()/grouped() of the grouper being
  // restored — without re-merging (the flattened entries are already
  // the disjoint merged intervals of each layer).  Only valid on a
  // grouper that holds nothing yet, with matching thresholds.
  void restore_layers(std::span<const PrefixEvent> correlated,
                      std::span<const PrefixEvent> grouped);

 private:
  // Disjoint merged intervals of one prefix, keyed by start time.  The
  // invariant (any two entries are separated by a gap greater than the
  // layer's threshold) keeps them sorted by end as well, so the
  // entries a new interval must absorb are one contiguous run.
  using IntervalMap = std::map<util::SimTime, PrefixEvent>;
  struct PrefixState {
    IntervalMap correlated;
    IntervalMap grouped;
  };

  util::SimTime tolerance_;
  util::SimTime timeout_;
  std::map<net::Prefix, PrefixState> per_prefix_;
  std::size_t num_correlated_ = 0;
  std::size_t num_grouped_ = 0;
  std::size_t num_peer_events_ = 0;
};

}  // namespace bgpbh::core
