#include "core/events.h"

// to_string implementations live in engine.cc next to the inference
// logic; this translation unit anchors the events component in the
// static library.
namespace bgpbh::core {}
