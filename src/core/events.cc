#include "core/events.h"

#include <algorithm>
#include <tuple>

// ProviderRef / DetectionKind to_string implementations live in
// engine.cc next to the inference logic.
namespace bgpbh::core {

bool canonical_less(const PeerEvent& a, const PeerEvent& b) {
  auto key = [](const PeerEvent& e) {
    return std::tie(e.start, e.end, e.prefix, e.peer, e.provider, e.platform,
                    e.kind, e.user, e.as_distance, e.explicit_withdrawal,
                    e.started_in_table_dump, e.open);
  };
  if (key(a) != key(b)) return key(a) < key(b);
  // Tiebreak on the communities attribute: one key can open and close
  // twice within the same second with different community sets, and
  // operator== distinguishes those events, so the canonical order must
  // too (an unstable sort would otherwise make equivalence checks
  // order-dependent).
  if (a.communities.classic() != b.communities.classic()) {
    return a.communities.classic() < b.communities.classic();
  }
  return a.communities.large() < b.communities.large();
}

void canonical_sort(std::vector<PeerEvent>& events) {
  std::sort(events.begin(), events.end(), canonical_less);
}

}  // namespace bgpbh::core
