#include "core/engine.h"

#include <algorithm>

namespace bgpbh::core {

EngineStats& EngineStats::operator+=(const EngineStats& other) {
  updates_processed += other.updates_processed;
  announcements_seen += other.announcements_seen;
  withdrawals_seen += other.withdrawals_seen;
  bogons_filtered += other.bogons_filtered;
  events_opened += other.events_opened;
  events_closed_explicit += other.events_closed_explicit;
  events_closed_implicit += other.events_closed_implicit;
  ambiguous_rejected += other.ambiguous_rejected;
  ixp_rejected += other.ixp_rejected;
  return *this;
}

std::size_t InferenceEngine::StateKeyHash::operator()(
    const StateKey& key) const noexcept {
  return net::hash_combine(bgp::PeerKeyHash{}(key.first),
                           net::PrefixHash{}(key.second));
}

std::string ProviderRef::to_string() const {
  if (is_ixp) return "IXP#" + std::to_string(ixp_id);
  return "AS" + std::to_string(asn);
}

std::string to_string(DetectionKind k) {
  switch (k) {
    case DetectionKind::kProviderOnPath: return "provider-on-path";
    case DetectionKind::kBundled: return "bundled";
    case DetectionKind::kIxpRouteServer: return "ixp-route-server";
    case DetectionKind::kIxpPeerIp: return "ixp-peer-ip";
  }
  return "?";
}

BgpCleaner::BgpCleaner() {
  // Team Cymru full-bogon style list (IPv4 highlights + IPv6 ULA/doc).
  static const char* kBogons[] = {
      "0.0.0.0/8",      "10.0.0.0/8",     "100.64.0.0/10", "127.0.0.0/8",
      "169.254.0.0/16", "172.16.0.0/12",  "192.0.0.0/24",  "192.0.2.0/24",
      "192.168.0.0/16", "198.18.0.0/15",  "198.51.100.0/24",
      "203.0.113.0/24", "224.0.0.0/4",    "240.0.0.0/4",
  };
  static const char* kBogons6[] = {
      "::/8", "fc00::/7", "fe80::/10", "2001:db8::/32", "ff00::/8",
  };
  for (const char* s : kBogons) {
    bogons_.insert(*net::Prefix::parse(s), true);
  }
  for (const char* s : kBogons6) {
    bogons_.insert(*net::Prefix::parse(s), true);
  }
}

bool BgpCleaner::is_bogus(const net::Prefix& prefix) const {
  // Less specific than /8 is an obvious misconfiguration (§3).
  if (prefix.is_v4() && prefix.len() < 8) return true;
  if (!prefix.is_v4() && prefix.len() < 8) return true;
  return bogons_.covered(prefix.addr());
}

InferenceEngine::InferenceEngine(const dictionary::BlackholeDictionary& dictionary,
                                 const topology::Registry& registry,
                                 EngineConfig config)
    : dictionary_(dictionary),
      owned_compiled_(config.use_compiled_fastpath
                          ? dictionary::CompiledDictionary(dictionary)
                          : dictionary::CompiledDictionary()),
      compiled_(&owned_compiled_),
      registry_(registry),
      config_(config) {}

InferenceEngine::InferenceEngine(const dictionary::BlackholeDictionary& dictionary,
                                 const dictionary::CompiledDictionary& compiled,
                                 const topology::Registry& registry,
                                 EngineConfig config)
    : dictionary_(dictionary),
      compiled_(&compiled),
      registry_(registry),
      config_(config) {}

bool InferenceEngine::detect(const bgp::PeerKey& peer, const bgp::AsPath& path,
                             const bgp::CommunitySet& communities) {
  // Fast negative path: no community even *might* be a blackhole
  // community — a handful of bit-tests, no path work, no allocation,
  // and (by construction of the bitset) no stats changes the full scan
  // wouldn't also have made.
  if (config_.use_compiled_fastpath && !compiled_->prefilter(communities)) {
    detect_scratch_.clear();
    return false;
  }
  std::vector<Detection>& out = detect_scratch_;
  out.clear();

  auto add_provider = [&](ProviderRef provider, Asn user, DetectionKind kind,
                          int distance) {
    for (const auto& d : out) {
      if (d.provider == provider) return;  // already detected
    }
    Detection d;
    d.provider = provider;
    d.user = user;
    d.kind = kind;
    d.as_distance = distance;
    out.push_back(d);
  };

  // With exactly one classic community and no large ones, a passed
  // prefilter already pinpoints that community — the per-community
  // bitset re-probe below would be pure overhead on the hit path.
  const bool probe_each =
      communities.classic().size() != 1 || !communities.large().empty();

  for (auto community : communities.classic()) {
    dictionary::EntryView entry;
    if (config_.use_compiled_fastpath) {
      if (probe_each && !compiled_->maybe_blackhole(community)) continue;
      const dictionary::EntryView* e = compiled_->lookup(community);
      if (!e) continue;
      entry = *e;
    } else {
      const dictionary::DictEntry* e = dictionary_.lookup(community);
      if (!e) continue;
      entry = dictionary::EntryView{e->provider_asns, e->ixp_ids};
    }

    // ---- IXP communities (65535:666 et al.) --------------------------
    bool any_ixp_evidence = entry.ixp_ids.empty();
    for (std::uint32_t ixp_id : entry.ixp_ids) {
      auto rec = registry_.peeringdb_ixp(ixp_id);
      if (!rec) continue;
      ProviderRef provider{.is_ixp = true,
                           .asn = rec->route_server_asn,
                           .ixp_id = ixp_id};
      // (a) the IXP's route-server ASN appears in the AS path.  Distance
      // 0 = the collector sits at the blackholing IXP itself (Fig 7c).
      if (auto idx = path.index_of(rec->route_server_asn)) {
        Asn user = 0;
        if (auto u = path.hop_before(rec->route_server_asn)) user = *u;
        add_provider(provider, user, DetectionKind::kIxpRouteServer,
                     static_cast<int>(*idx));
        any_ixp_evidence = true;
        continue;
      }
      // (b) the peer-ip belongs to the IXP's peering LAN: the peer-as
      // is the announcing member, i.e. the blackholing user — unless
      // the session peer is the route server itself (transparent RS,
      // no ASN in path), in which case the user is the path origin.
      if (rec->peering_lan.contains(peer.peer_ip)) {
        Asn user = peer.peer_asn;
        if (user == rec->route_server_asn) {
          user = path.empty() ? 0 : path.origin();
        }
        add_provider(provider, user, DetectionKind::kIxpPeerIp, 0);
        any_ixp_evidence = true;
        continue;
      }
    }
    if (!any_ixp_evidence) ++stats_.ixp_rejected;

    // ---- ISP communities ---------------------------------------------
    if (entry.provider_asns.empty()) continue;
    if (entry.ambiguous() && config_.require_path_evidence_for_ambiguous) {
      // e.g. 0:666 shared by multiple providers: require a candidate on
      // the path; otherwise ignore the update (§4.2).
      bool found = false;
      for (Asn candidate : entry.provider_asns) {
        if (auto idx = path.index_of(candidate)) {
          Asn user = 0;
          if (auto u = path.hop_before(candidate)) user = *u;
          add_provider(ProviderRef{.is_ixp = false, .asn = candidate, .ixp_id = 0},
                       user, DetectionKind::kProviderOnPath,
                       static_cast<int>(*idx + 1));
          found = true;
        }
      }
      if (!found) ++stats_.ambiguous_rejected;
      continue;
    }
    for (Asn candidate : entry.provider_asns) {
      ProviderRef provider{.is_ixp = false, .asn = candidate, .ixp_id = 0};
      if (auto idx = path.index_of(candidate)) {
        Asn user = 0;
        if (auto u = path.hop_before(candidate)) user = *u;
        add_provider(provider, user, DetectionKind::kProviderOnPath,
                     static_cast<int>(*idx + 1));
      } else if (config_.detect_bundled) {
        // Bundled community: provider not on the path; the user is the
        // origin of the announcement (Fig 3).
        Asn user = path.empty() ? peer.peer_asn : path.origin();
        add_provider(provider, user, DetectionKind::kBundled, kNoPathDistance);
      }
    }
  }

  // ---- RFC 8092 large communities ------------------------------------
  for (auto large : communities.large()) {
    std::optional<Asn> provider_asn;
    if (config_.use_compiled_fastpath) {
      if (compiled_->maybe_blackhole(large)) {
        provider_asn = compiled_->lookup_large(large);
      }
    } else {
      provider_asn = dictionary_.lookup_large(large);
    }
    if (provider_asn) {
      ProviderRef provider{.is_ixp = false, .asn = *provider_asn, .ixp_id = 0};
      if (auto idx = path.index_of(*provider_asn)) {
        Asn user = 0;
        if (auto u = path.hop_before(*provider_asn)) user = *u;
        add_provider(provider, user, DetectionKind::kProviderOnPath,
                     static_cast<int>(*idx + 1));
      } else if (config_.detect_bundled) {
        Asn user = path.empty() ? peer.peer_asn : path.origin();
        add_provider(provider, user, DetectionKind::kBundled, kNoPathDistance);
      }
    }
  }
  return !out.empty();
}

void InferenceEngine::open_event(Platform platform, const bgp::PeerKey& peer,
                                 const net::Prefix& prefix, util::SimTime time,
                                 bool from_dump,
                                 const std::vector<Detection>& detections,
                                 const bgp::CommunitySet& communities) {
  StateKey key{peer, prefix};
  auto it = active_.find(key);
  if (it != active_.end()) {
    // Already active: merge any newly detected providers.
    for (const auto& d : detections) {
      bool known = std::any_of(it->second.detections.begin(),
                               it->second.detections.end(),
                               [&](const Detection& e) {
                                 return e.provider == d.provider;
                               });
      if (!known) it->second.detections.push_back(d);
    }
    it->second.communities = communities;
    return;
  }
  ActiveState state;
  state.start = from_dump ? 0 : time;
  state.platform = platform;
  state.from_table_dump = from_dump;
  state.detections = detections;  // copy out of the reused scratch
  state.communities = communities;
  active_.emplace(key, std::move(state));
  ++stats_.events_opened;
}

void InferenceEngine::close_event(Platform platform, const bgp::PeerKey& peer,
                                  const net::Prefix& prefix, util::SimTime time,
                                  bool explicit_withdrawal) {
  StateKey key{peer, prefix};
  auto it = active_.find(key);
  if (it == active_.end()) return;
  const ActiveState& state = it->second;
  for (const auto& d : state.detections) {
    PeerEvent e;
    e.platform = platform;
    e.peer = peer;
    e.prefix = prefix;
    e.provider = d.provider;
    e.user = d.user;
    e.kind = d.kind;
    e.as_distance = d.as_distance;
    e.start = state.start;
    e.end = time;
    e.open = false;
    e.explicit_withdrawal = explicit_withdrawal;
    e.started_in_table_dump = state.from_table_dump;
    e.communities = state.communities;
    if (ingest_ns_ != 0) {
      e.ingest_ns = ingest_ns_;
      e.detected_ns = util::wall_clock_ns();
    }
    closed_.push_back(std::move(e));
  }
  active_.erase(it);
  if (explicit_withdrawal) {
    ++stats_.events_closed_explicit;
  } else {
    ++stats_.events_closed_implicit;
  }
}

void InferenceEngine::init_from_table_dump(Platform platform,
                                           const bgp::mrt::TableDump& dump) {
  for (const auto& entry : dump.entries) {
    if (config_.clean_input && cleaner_.is_bogus(entry.prefix)) {
      ++stats_.bogons_filtered;
      continue;
    }
    if (!detect(entry.peer, entry.as_path, entry.communities)) continue;
    open_event(platform, entry.peer, entry.prefix, dump.time,
               /*from_dump=*/true, detect_scratch_, entry.communities);
  }
}

void InferenceEngine::process_withdrawal(Platform platform,
                                         const bgp::PeerKey& peer,
                                         const net::Prefix& prefix,
                                         util::SimTime time) {
  ++stats_.withdrawals_seen;
  close_event(platform, peer, prefix, time, /*explicit_withdrawal=*/true);
}

void InferenceEngine::process_announcement(Platform platform,
                                           const bgp::PeerKey& peer,
                                           const net::Prefix& prefix,
                                           util::SimTime time,
                                           const bgp::AsPath& path,
                                           const bgp::CommunitySet& communities) {
  ++stats_.announcements_seen;
  if (config_.clean_input && cleaner_.is_bogus(prefix)) {
    ++stats_.bogons_filtered;
    return;
  }
  if (detect(peer, path, communities)) {
    open_event(platform, peer, prefix, time, /*from_dump=*/false,
               detect_scratch_, communities);
  } else {
    // Announcement without blackhole communities for a previously
    // blackholed prefix: implicit withdrawal (§4.2).
    close_event(platform, peer, prefix, time, /*explicit_withdrawal=*/false);
  }
}

void InferenceEngine::process(Platform platform,
                              const bgp::ObservedUpdate& update) {
  ++stats_.updates_processed;
  ingest_ns_ = 0;  // owning path carries no ingest stamp
  bgp::PeerKey peer{update.peer_ip, update.peer_asn};

  for (const auto& prefix : update.body.withdrawn) {
    process_withdrawal(platform, peer, prefix, update.time);
  }
  for (const auto& prefix : update.body.announced) {
    process_announcement(platform, peer, prefix, update.time,
                         update.body.as_path, update.body.communities);
  }
}

void InferenceEngine::process(const UpdateView& view) {
  ++stats_.updates_processed;
  ingest_ns_ = view.ingest_ns;
  if (view.is_withdrawal) {
    process_withdrawal(view.platform, view.peer, *view.prefix, view.time);
  } else {
    process_announcement(view.platform, view.peer, *view.prefix, view.time,
                         *view.as_path, *view.communities);
  }
}

void InferenceEngine::finish(util::SimTime end_time) {
  ingest_ns_ = 0;  // force-closed events measure nothing end-to-end
  // Close remaining events; copy keys first since close_event mutates.
  // Sorted by key so the emission order is deterministic regardless of
  // the hash-map iteration order (and identical across shard layouts).
  std::vector<std::pair<StateKey, Platform>> remaining;
  remaining.reserve(active_.size());
  for (const auto& [key, state] : active_) {
    remaining.emplace_back(key, state.platform);
  }
  std::sort(remaining.begin(), remaining.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, platform] : remaining) {
    close_event(platform, key.first, key.second, end_time,
                /*explicit_withdrawal=*/false);
  }
}

std::vector<PeerEvent> InferenceEngine::drain_closed() {
  std::vector<PeerEvent> out;
  out.swap(closed_);
  return out;
}

std::size_t InferenceEngine::open_event_count() const { return active_.size(); }

std::vector<OpenEventState> InferenceEngine::export_open_state() const {
  std::vector<OpenEventState> out;
  out.reserve(active_.size());
  for (const auto& [key, state] : active_) {
    OpenEventState open;
    open.peer = key.first;
    open.prefix = key.second;
    open.start = state.start;
    open.platform = state.platform;
    open.from_table_dump = state.from_table_dump;
    open.detections.reserve(state.detections.size());
    for (const auto& d : state.detections) {
      open.detections.push_back(OpenDetection{
          .provider = d.provider,
          .user = d.user,
          .kind = d.kind,
          .as_distance = d.as_distance,
      });
    }
    open.communities = state.communities;
    out.push_back(std::move(open));
  }
  std::sort(out.begin(), out.end(),
            [](const OpenEventState& a, const OpenEventState& b) {
              return StateKey{a.peer, a.prefix} < StateKey{b.peer, b.prefix};
            });
  return out;
}

void InferenceEngine::import_open_state(std::vector<OpenEventState> states) {
  for (auto& open : states) {
    ActiveState state;
    state.start = open.start;
    state.platform = open.platform;
    state.from_table_dump = open.from_table_dump;
    state.detections.reserve(open.detections.size());
    for (const auto& d : open.detections) {
      state.detections.push_back(Detection{
          .provider = d.provider,
          .user = d.user,
          .kind = d.kind,
          .as_distance = d.as_distance,
      });
    }
    state.communities = std::move(open.communities);
    active_.insert_or_assign(StateKey{open.peer, open.prefix},
                             std::move(state));
  }
}

}  // namespace bgpbh::core
