#include "core/grouping.h"

#include <algorithm>
#include <map>

namespace bgpbh::core {

namespace {

PrefixEvent seed_from(const PeerEvent& e) {
  PrefixEvent pe;
  pe.prefix = e.prefix;
  pe.start = e.start;
  pe.end = e.end;
  pe.providers.insert(e.provider);
  if (e.user != 0) pe.users.insert(e.user);
  pe.num_peer_events = 1;
  pe.includes_table_dump_start = e.started_in_table_dump;
  return pe;
}

void absorb(PrefixEvent& pe, const PeerEvent& e) {
  pe.start = std::min(pe.start, e.start);
  pe.end = std::max(pe.end, e.end);
  pe.providers.insert(e.provider);
  if (e.user != 0) pe.users.insert(e.user);
  pe.num_peer_events += 1;
  pe.includes_table_dump_start |= e.started_in_table_dump;
}

}  // namespace

std::vector<PrefixEvent> correlate(std::span<const PeerEvent> events,
                                   util::SimTime tolerance) {
  // Bucket by prefix, then sweep each bucket in start order merging
  // intervals that overlap (within tolerance).
  std::map<net::Prefix, std::vector<const PeerEvent*>> by_prefix;
  for (const auto& e : events) by_prefix[e.prefix].push_back(&e);

  std::vector<PrefixEvent> out;
  for (auto& [prefix, list] : by_prefix) {
    std::sort(list.begin(), list.end(), [](const PeerEvent* a, const PeerEvent* b) {
      if (a->start != b->start) return a->start < b->start;
      return a->end < b->end;
    });
    PrefixEvent current;
    bool have = false;
    for (const PeerEvent* e : list) {
      if (!have) {
        current = seed_from(*e);
        have = true;
        continue;
      }
      if (e->start <= current.end + tolerance) {
        absorb(current, *e);
      } else {
        out.push_back(current);
        current = seed_from(*e);
      }
    }
    if (have) out.push_back(current);
  }
  std::sort(out.begin(), out.end(), [](const PrefixEvent& a, const PrefixEvent& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.prefix < b.prefix;
  });
  return out;
}

std::vector<PrefixEvent> group_events(std::span<const PrefixEvent> events,
                                      util::SimTime timeout) {
  std::map<net::Prefix, std::vector<const PrefixEvent*>> by_prefix;
  for (const auto& e : events) by_prefix[e.prefix].push_back(&e);

  std::vector<PrefixEvent> out;
  for (auto& [prefix, list] : by_prefix) {
    std::sort(list.begin(), list.end(),
              [](const PrefixEvent* a, const PrefixEvent* b) {
                if (a->start != b->start) return a->start < b->start;
                return a->end < b->end;
              });
    PrefixEvent current;
    bool have = false;
    for (const PrefixEvent* e : list) {
      if (!have) {
        current = *e;
        have = true;
        continue;
      }
      if (e->start <= current.end + timeout) {
        current.end = std::max(current.end, e->end);
        current.start = std::min(current.start, e->start);
        current.providers.insert(e->providers.begin(), e->providers.end());
        current.users.insert(e->users.begin(), e->users.end());
        current.num_peer_events += e->num_peer_events;
        current.includes_table_dump_start |= e->includes_table_dump_start;
      } else {
        out.push_back(current);
        current = *e;
      }
    }
    if (have) out.push_back(current);
  }
  std::sort(out.begin(), out.end(), [](const PrefixEvent& a, const PrefixEvent& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.prefix < b.prefix;
  });
  return out;
}

}  // namespace bgpbh::core
