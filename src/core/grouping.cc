#include "core/grouping.h"

#include <algorithm>
#include <cassert>

namespace bgpbh::core {

namespace {

PrefixEvent seed_from(const PeerEvent& e) {
  PrefixEvent pe;
  pe.prefix = e.prefix;
  pe.start = e.start;
  pe.end = e.end;
  pe.providers.insert(e.provider);
  if (e.user != 0) pe.users.insert(e.user);
  pe.num_peer_events = 1;
  pe.includes_table_dump_start = e.started_in_table_dump;
  return pe;
}

void merge_into(PrefixEvent& into, PrefixEvent&& other) {
  into.start = std::min(into.start, other.start);
  into.end = std::max(into.end, other.end);
  into.providers.merge(other.providers);
  into.users.merge(other.users);
  into.num_peer_events += other.num_peer_events;
  into.includes_table_dump_start |= other.includes_table_dump_start;
}

// Inserts one interval into a layer, absorbing every stored interval
// within `threshold` of it (gap <= threshold, inclusive — matching the
// batch sweep's `next.start <= end + threshold`).  Entries are disjoint
// and separated by more than `threshold`, so the absorbable ones are
// the contiguous run just below upper_bound(end + threshold).  Returns
// the entry the interval ended up in; `count` tracks the layer's live
// event count.
using IntervalMap = std::map<util::SimTime, PrefixEvent>;

const PrefixEvent& insert_merged(IntervalMap& layer, PrefixEvent event,
                                 util::SimTime threshold, std::size_t& count) {
  auto it = layer.upper_bound(event.end + threshold);
  while (it != layer.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end + threshold < event.start) break;
    merge_into(event, std::move(prev->second));
    it = layer.erase(prev);
    --count;
  }
  auto [pos, inserted] = layer.emplace(event.start, std::move(event));
  assert(inserted);
  ++count;
  return pos->second;
}

// Flattens per-prefix layers into the batch output order (start, then
// prefix; two events can never tie on both — they would have merged).
template <typename PerPrefix, typename Select>
std::vector<PrefixEvent> flatten(const PerPrefix& per_prefix, Select&& select,
                                 std::size_t count) {
  std::vector<PrefixEvent> out;
  out.reserve(count);
  for (const auto& [prefix, state] : per_prefix) {
    for (const auto& [start, event] : select(state)) out.push_back(event);
  }
  std::sort(out.begin(), out.end(), [](const PrefixEvent& a, const PrefixEvent& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.prefix < b.prefix;
  });
  return out;
}

}  // namespace

std::vector<PrefixEvent> correlate(std::span<const PeerEvent> events,
                                   util::SimTime tolerance) {
  std::map<net::Prefix, IntervalMap> per_prefix;
  std::size_t count = 0;
  for (const auto& e : events) {
    insert_merged(per_prefix[e.prefix], seed_from(e), tolerance, count);
  }
  return flatten(per_prefix, [](const IntervalMap& m) -> const IntervalMap& {
    return m;
  }, count);
}

std::vector<PrefixEvent> group_events(std::span<const PrefixEvent> events,
                                      util::SimTime timeout) {
  std::map<net::Prefix, IntervalMap> per_prefix;
  std::size_t count = 0;
  for (const auto& e : events) {
    insert_merged(per_prefix[e.prefix], e, timeout, count);
  }
  return flatten(per_prefix, [](const IntervalMap& m) -> const IntervalMap& {
    return m;
  }, count);
}

IncrementalGrouper::IncrementalGrouper(util::SimTime tolerance,
                                       util::SimTime timeout)
    // The grouping layer is computed directly from peer events, which
    // is equivalent to group_events(correlate(...)) only when
    // correlation merges no further than grouping does — a
    // mis-configured shorter timeout is raised to the tolerance so the
    // equivalence contract holds in release builds too.
    : tolerance_(tolerance), timeout_(std::max(timeout, tolerance)) {
  assert(tolerance <= timeout &&
         "IncrementalGrouper requires tolerance <= timeout");
}

const PrefixEvent& IncrementalGrouper::add(const PeerEvent& event) {
  PrefixState& state = per_prefix_[event.prefix];
  insert_merged(state.correlated, seed_from(event), tolerance_,
                num_correlated_);
  ++num_peer_events_;
  return insert_merged(state.grouped, seed_from(event), timeout_,
                       num_grouped_);
}

std::vector<PrefixEvent> IncrementalGrouper::correlated() const {
  return flatten(per_prefix_, [](const PrefixState& s) -> const IntervalMap& {
    return s.correlated;
  }, num_correlated_);
}

void IncrementalGrouper::restore_layers(
    std::span<const PrefixEvent> correlated,
    std::span<const PrefixEvent> grouped) {
  assert(per_prefix_.empty() && "restore_layers requires an empty grouper");
  for (const auto& e : correlated) {
    per_prefix_[e.prefix].correlated.emplace(e.start, e);
    ++num_correlated_;
  }
  num_peer_events_ = 0;
  for (const auto& e : grouped) {
    per_prefix_[e.prefix].grouped.emplace(e.start, e);
    ++num_grouped_;
    num_peer_events_ += e.num_peer_events;
  }
}

std::vector<PrefixEvent> IncrementalGrouper::grouped() const {
  return flatten(per_prefix_, [](const PrefixState& s) -> const IntervalMap& {
    return s.grouped;
  }, num_grouped_);
}

}  // namespace bgpbh::core
