#include "routing/collectors.h"

#include <algorithm>
#include <cassert>

namespace bgpbh::routing {

namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0) {
  util::SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                      (c * 0xc2b2ae3d27d4eb4fULL));
  return sm.next();
}

double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

// Peer IPs for non-PCH sessions: per-(platform, collector) /24 out of
// 198.51.0.0/16-ish space, clear of the IXP LANs at 185.0.0.0/8.
net::IpAddr session_ip(Platform p, std::uint32_t collector, std::uint32_t n) {
  std::uint32_t base = (198u << 24) |
                       ((10u + static_cast<std::uint32_t>(p) * 40u + collector) << 16) |
                       ((n >> 8) << 8) | (n & 0xFF);
  return net::IpAddr(net::Ipv4Addr(base));
}

}  // namespace

std::string to_string(Platform p) {
  switch (p) {
    case Platform::kRis: return "RIS";
    case Platform::kRouteViews: return "RV";
    case Platform::kPch: return "PCH";
    case Platform::kCdn: return "CDN";
  }
  return "?";
}

CollectorFleet CollectorFleet::build(const topology::AsGraph& graph,
                                     const FleetConfig& cfg) {
  CollectorFleet fleet;
  fleet.seed_ = cfg.seed;
  util::Rng rng(cfg.seed);

  auto add_session = [&fleet](CollectorSession s) {
    fleet.by_peer_[s.peer_asn].push_back(fleet.sessions_.size());
    if (s.platform == Platform::kPch && s.ixp_id) {
      fleet.pch_by_ixp_[*s.ixp_id].push_back(fleet.sessions_.size());
    }
    fleet.sessions_.push_back(std::move(s));
  };

  // ---- RIS / RouteViews: core-biased AS sampling --------------------
  auto build_core_platform = [&](Platform platform, std::size_t collectors,
                                 double t1p, double trp, double stp) {
    std::uint32_t counter = 0;
    for (const auto& node : graph.nodes()) {
      double p = node.tier == topology::Tier::kTier1
                     ? t1p
                     : (node.tier == topology::Tier::kTransit ? trp : stp);
      if (!rng.bernoulli(p)) continue;
      // 1-2 sessions on different collectors (multi-collector peers).
      std::size_t nsessions = rng.bernoulli(0.35) ? 2 : 1;
      for (std::size_t k = 0; k < nsessions; ++k) {
        CollectorSession s;
        s.platform = platform;
        s.collector_id = static_cast<std::uint32_t>(rng.uniform(collectors));
        s.peer_asn = node.asn;
        s.peer_ip = session_ip(platform, s.collector_id, counter++);
        double f = rng.uniform01();
        s.feed = f < 0.55 ? FeedType::kFull
                          : (f < 0.85 ? FeedType::kPartial : FeedType::kCustomerOnly);
        add_session(std::move(s));
      }
    }
  };
  build_core_platform(Platform::kRis, cfg.ris_collectors, cfg.ris_tier1_prob,
                      cfg.ris_transit_prob, cfg.ris_stub_prob);
  build_core_platform(Platform::kRouteViews, cfg.rv_collectors, cfg.rv_tier1_prob,
                      cfg.rv_transit_prob, cfg.rv_stub_prob);

  // ---- PCH: one collector per PCH IXP --------------------------------
  for (const auto& ixp : graph.ixps()) {
    if (!ixp.has_pch_collector) continue;
    std::uint32_t lan_base = ixp.peering_lan.addr().v4().value();
    // Session with the route server itself (LAN .1).
    {
      CollectorSession s;
      s.platform = Platform::kPch;
      s.collector_id = ixp.id;
      s.peer_asn = ixp.route_server_asn;
      s.peer_ip = net::IpAddr(net::Ipv4Addr(lan_base + 1));
      s.feed = FeedType::kFull;
      s.ixp_id = ixp.id;
      s.route_server_session = true;
      add_session(std::move(s));
    }
    // Sessions with a sample of members over the LAN.
    std::uint32_t host = 10;
    for (bgp::Asn member : ixp.members) {
      if (!rng.bernoulli(cfg.pch_member_prob)) continue;
      CollectorSession s;
      s.platform = Platform::kPch;
      s.collector_id = ixp.id;
      s.peer_asn = member;
      s.peer_ip = net::IpAddr(net::Ipv4Addr(lan_base + host++));
      s.feed = FeedType::kPartial;
      s.ixp_id = ixp.id;
      add_session(std::move(s));
      if (host >= 150) break;  // cap sessions per IXP (collector capacity)
    }
  }

  // ---- CDN: wide, partially internal ---------------------------------
  {
    std::uint32_t counter = 0;
    for (const auto& node : graph.nodes()) {
      if (!rng.bernoulli(cfg.cdn_as_prob)) continue;
      std::size_t nsessions = 1 + rng.uniform(3);
      bool internal = rng.bernoulli(cfg.cdn_internal_prob);
      for (std::size_t k = 0; k < nsessions; ++k) {
        CollectorSession s;
        s.platform = Platform::kCdn;
        s.collector_id = static_cast<std::uint32_t>(rng.uniform(24));  // regions
        s.peer_asn = node.asn;
        s.peer_ip = session_ip(Platform::kCdn, s.collector_id, counter++);
        s.feed = FeedType::kFull;
        s.internal_feed = internal;
        add_session(std::move(s));
      }
    }
  }
  return fleet;
}

std::span<const std::size_t> CollectorFleet::sessions_of(bgp::Asn asn) const {
  auto it = by_peer_.find(asn);
  if (it == by_peer_.end()) return {};
  return it->second;
}

std::span<const std::size_t> CollectorFleet::pch_sessions_at(
    std::uint32_t ixp_id) const {
  auto it = pch_by_ixp_.find(ixp_id);
  if (it == pch_by_ixp_.end()) return {};
  return it->second;
}

// mode: 0 = announce, 1 = explicit withdrawal, 2 = implicit withdrawal
// (re-announcement without the blackhole communities).
std::vector<FeedUpdate> CollectorFleet::observe_internal(
    const BlackholePropagation& prop, const BlackholeAnnouncement& ann,
    const PropagationEngine& engine, util::SimTime time, int mode) const {
  std::vector<FeedUpdate> out;
  const auto& graph = engine.graph();

  for (const auto& holder : prop.holders) {
    auto session_indices = sessions_of(holder.holder);
    if (session_indices.empty()) continue;

    for (std::size_t si : session_indices) {
      const CollectorSession& s = sessions_[si];

      // Route-server routes carry no-export: members never re-export
      // them to any collector.  The only observable RS copy is the
      // route server's own session with the PCH collector at that IXP.
      if (holder.via_route_server && holder.holder != ann.user) {
        bool rs_own_session = s.route_server_session && s.ixp_id &&
                              *s.ixp_id == holder.ixp_id &&
                              s.peer_asn == holder.holder;
        if (!rs_own_session) continue;
      }
      // Conversely, blackhole /32s learned over transit do not cross
      // IXP LAN sessions of third parties (IXP peers filter
      // more-specifics unless tagged for *their* blackholing service);
      // only the user's own LAN session carries its announcement.
      if (!holder.via_route_server && holder.holder != ann.user &&
          s.platform == Platform::kPch) {
        continue;
      }
      // Customer-only feeds export only customer-learned routes.
      if (s.feed == FeedType::kCustomerOnly) {
        bool customer_learned =
            holder.path.length() >= 2 &&
            graph.relationship(holder.holder, holder.path.hops()[1]) ==
                topology::AsGraph::Rel::kCustomer;
        if (!customer_learned && holder.holder != ann.user) continue;
      }

      FeedUpdate fu;
      fu.platform = s.platform;
      bgp::ObservedUpdate& u = fu.update;
      u.peer_ip = s.peer_ip;
      u.peer_asn = s.peer_asn;
      u.collector_id = s.collector_id;
      std::uint64_t jitter_h =
          mix(seed_, 0x77, (static_cast<std::uint64_t>(holder.holder) << 16) ^ si);
      u.time = time + 2 * holder.hops_from_user +
               static_cast<util::SimTime>(jitter_h % 4);

      if (mode == 1) {
        u.body.withdrawn.push_back(ann.prefix);
      } else {
        u.body.announced.push_back(ann.prefix);
        // AS path as exported to the collector, with deterministic
        // prepending by the exporting AS.
        std::vector<bgp::Asn> hops;
        std::size_t pf = engine.prepend_factor(holder.holder);
        if (!holder.path.empty() && holder.path.hops().front() == holder.holder) {
          for (std::size_t k = 0; k < pf; ++k) hops.push_back(holder.holder);
          hops.insert(hops.end(), holder.path.hops().begin() + 1,
                      holder.path.hops().end());
        } else {
          hops = holder.path.hops();  // transparent-RS style path
        }
        u.body.as_path = bgp::AsPath(std::move(hops));
        if (mode == 0) {
          u.body.communities = holder.communities;
        } else {
          // Implicit withdrawal: same prefix, no blackhole communities.
          u.body.communities = bgp::CommunitySet{};
        }
        // Exporters sometimes attach their own service communities.
        const topology::AsNode* hn = graph.find(holder.holder);
        if (hn && !hn->service_communities.empty() &&
            unit(mix(seed_, 0x88, holder.holder)) < 0.08) {
          u.body.communities.add(hn->service_communities.front());
        }
        // Next hop: IXP blackhole IP for RS routes, else a peer address.
        if (holder.via_route_server) {
          const topology::Ixp* ixp = graph.find_ixp(holder.ixp_id);
          if (ixp) {
            u.body.next_hop =
                ann.misconfig == BlackholeAnnouncement::Misconfig::kInvalidNextHop
                    ? net::IpAddr(net::Ipv4Addr(0x7F000001))  // bogus next hop
                    : ixp->blackhole_ip_v4;
          }
        } else {
          u.body.next_hop = s.peer_ip;
        }
      }
      out.push_back(std::move(fu));
    }
  }
  std::sort(out.begin(), out.end(), [](const FeedUpdate& a, const FeedUpdate& b) {
    return a.update.time < b.update.time;
  });
  return out;
}

std::vector<FeedUpdate> CollectorFleet::observe_announcement(
    const BlackholePropagation& prop, const BlackholeAnnouncement& ann,
    const PropagationEngine& engine) const {
  return observe_internal(prop, ann, engine, ann.time, 0);
}

std::vector<FeedUpdate> CollectorFleet::observe_withdrawal(
    const BlackholePropagation& prop, const BlackholeAnnouncement& ann,
    const PropagationEngine& engine, util::SimTime time,
    bool explicit_withdrawal) const {
  return observe_internal(prop, ann, engine, time, explicit_withdrawal ? 1 : 2);
}

std::map<Platform, DatasetStats> CollectorFleet::table1_stats(
    const topology::AsGraph& graph) const {
  // Global routed prefix count.
  std::uint64_t global_prefixes = 0;
  for (const auto& node : graph.nodes()) {
    global_prefixes += node.originated_v4.size() + node.originated_v6.size();
  }

  std::map<Platform, DatasetStats> stats;
  std::map<Platform, std::map<bgp::Asn, bool>> platform_peers;
  std::map<Platform, std::uint64_t> extras;

  for (const auto& s : sessions_) {
    auto& st = stats[s.platform];
    st.ip_peers += 1;
    platform_peers[s.platform][s.peer_asn] = true;
    const topology::AsNode* node = graph.find(s.peer_asn);
    if (!node) continue;  // route-server pseudo-AS
    double rate = 0.0;
    switch (s.platform) {
      case Platform::kRis: rate = 0.02; break;
      case Platform::kRouteViews: rate = 0.06; break;
      case Platform::kPch: rate = 0.25; break;
      case Platform::kCdn: rate = s.internal_feed ? 1.0 : 0.05; break;
    }
    extras[s.platform] +=
        static_cast<std::uint64_t>(node->internal_prefix_count * rate);
  }
  // AS-peer counts and cross-platform uniqueness.
  std::map<bgp::Asn, int> platform_count;
  for (auto& [platform, peers] : platform_peers) {
    for (auto& [asn, _] : peers) platform_count[asn] += 1;
  }
  for (auto& [platform, peers] : platform_peers) {
    auto& st = stats[platform];
    st.as_peers = peers.size();
    for (auto& [asn, _] : peers) {
      if (platform_count[asn] == 1) st.unique_as_peers += 1;
    }
    st.prefixes = global_prefixes + extras[platform];
    st.unique_prefixes = extras[platform];
  }
  return stats;
}

DatasetStats CollectorFleet::table1_total(const topology::AsGraph& graph) const {
  auto per = table1_stats(graph);
  DatasetStats total;
  std::map<bgp::Asn, bool> all_peers;
  for (const auto& s : sessions_) {
    total.ip_peers += 1;
    all_peers[s.peer_asn] = true;
  }
  total.as_peers = all_peers.size();
  std::uint64_t global_prefixes = 0;
  for (const auto& node : graph.nodes()) {
    global_prefixes += node.originated_v4.size() + node.originated_v6.size();
  }
  std::uint64_t extras = 0;
  for (auto& [p, st] : per) {
    extras += st.unique_prefixes;
    total.unique_as_peers += st.unique_as_peers;
  }
  total.prefixes = global_prefixes + extras;
  total.unique_prefixes = extras;
  return total;
}

}  // namespace bgpbh::routing
