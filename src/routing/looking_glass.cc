#include "routing/looking_glass.h"

namespace bgpbh::routing {

void LookingGlass::install(LgRoute route) {
  routes_[route.prefix] = std::move(route);
}

void LookingGlass::remove(const net::Prefix& prefix) { routes_.erase(prefix); }

std::optional<LgRoute> LookingGlass::query_prefix(const net::Prefix& prefix) const {
  auto it = routes_.find(prefix);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

std::vector<LgRoute> LookingGlass::query_community(bgp::Community c) const {
  std::vector<LgRoute> out;
  if (!supports_community_queries_) return out;
  for (const auto& [prefix, route] : routes_) {
    if (route.communities.contains(c)) out.push_back(route);
  }
  return out;
}

std::vector<LgRoute> LookingGlass::full_table() const {
  std::vector<LgRoute> out;
  out.reserve(routes_.size());
  for (const auto& [prefix, route] : routes_) out.push_back(route);
  return out;
}

LookingGlass& LookingGlassDirectory::add(bgp::Asn asn,
                                         bool supports_community_queries) {
  auto [it, inserted] =
      glasses_.emplace(asn, LookingGlass(asn, supports_community_queries));
  return it->second;
}

LookingGlass* LookingGlassDirectory::find(bgp::Asn asn) {
  auto it = glasses_.find(asn);
  return it == glasses_.end() ? nullptr : &it->second;
}

const LookingGlass* LookingGlassDirectory::find(bgp::Asn asn) const {
  auto it = glasses_.find(asn);
  return it == glasses_.end() ? nullptr : &it->second;
}

std::size_t LookingGlassDirectory::num_community_capable() const {
  std::size_t n = 0;
  for (const auto& [asn, lg] : glasses_) {
    if (lg.supports_community_queries()) ++n;
  }
  return n;
}

std::vector<bgp::Asn> LookingGlassDirectory::all_asns() const {
  std::vector<bgp::Asn> out;
  for (const auto& [asn, lg] : glasses_) out.push_back(asn);
  return out;
}

}  // namespace bgpbh::routing
