// Periscope-style looking-glass substrate (§3, §5.2).
//
// The paper uses ~150 looking glasses, 30 of which support full-table
// or community-filtered queries, mainly to validate blackholing that is
// invisible in the BGP feeds (e.g. the Cogent/Pirate-Bay case).  Our
// substitute exposes the same two query shapes against per-AS route
// state that the study records out-of-band from propagation results.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bgp/community.h"
#include "bgp/aspath.h"
#include "net/prefix.h"
#include "util/time.h"

namespace bgpbh::routing {

struct LgRoute {
  net::Prefix prefix;
  bgp::AsPath as_path;
  bgp::CommunitySet communities;
  util::SimTime installed = 0;
};

class LookingGlass {
 public:
  explicit LookingGlass(bgp::Asn asn, bool supports_community_queries)
      : asn_(asn), supports_community_queries_(supports_community_queries) {}

  bgp::Asn asn() const { return asn_; }
  bool supports_community_queries() const { return supports_community_queries_; }

  void install(LgRoute route);
  void remove(const net::Prefix& prefix);

  // "show ip bgp <prefix>"
  std::optional<LgRoute> query_prefix(const net::Prefix& prefix) const;
  // "show ip bgp community <c>" — only on capable LGs.
  std::vector<LgRoute> query_community(bgp::Community c) const;
  // Full table dump.
  std::vector<LgRoute> full_table() const;

 private:
  bgp::Asn asn_;
  bool supports_community_queries_;
  std::map<net::Prefix, LgRoute> routes_;
};

// The Periscope-like registry of available looking glasses.
class LookingGlassDirectory {
 public:
  LookingGlass& add(bgp::Asn asn, bool supports_community_queries);
  LookingGlass* find(bgp::Asn asn);
  const LookingGlass* find(bgp::Asn asn) const;
  std::size_t size() const { return glasses_.size(); }
  std::size_t num_community_capable() const;

  std::vector<bgp::Asn> all_asns() const;

 private:
  std::map<bgp::Asn, LookingGlass> glasses_;
};

}  // namespace bgpbh::routing
