// Collector infrastructure: the four BGP datasets of the paper (§3).
//
// * RIPE RIS & RouteViews: multi-collector platforms biased toward
//   large transit providers in the core.
// * PCH: route collectors at IXPs, peering with the IXP route server
//   and a subset of members over the peering LAN (so the peer-ip of
//   observed updates falls inside the LAN — the §4.2 IXP signal).
// * CDN: thousands of feeds, many *inside* ISPs, which also carry
//   internal/customer-specific announcements — the reason the CDN
//   dataset sees multiple times more unique prefixes (Table 1).
//
// The fleet converts BlackholePropagation ground truth into the update
// streams each platform records; the inference engine never sees
// anything but these streams.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/update.h"
#include "routing/propagation.h"
#include "topology/as_graph.h"

namespace bgpbh::routing {

enum class Platform : std::uint8_t { kRis, kRouteViews, kPch, kCdn };
inline constexpr std::size_t kNumPlatforms = 4;
inline constexpr std::array<Platform, kNumPlatforms> kAllPlatforms = {
    Platform::kRis, Platform::kRouteViews, Platform::kPch, Platform::kCdn};

std::string to_string(Platform p);

// Dense 0..kNumPlatforms-1 index of a platform — array indexing and
// the streaming pipeline's one-producer-per-platform mapping.
inline constexpr std::size_t platform_index(Platform p) {
  return static_cast<std::size_t>(p);
}

enum class FeedType : std::uint8_t { kFull, kPartial, kCustomerOnly };

struct CollectorSession {
  Platform platform = Platform::kRis;
  std::uint32_t collector_id = 0;
  bgp::Asn peer_asn = 0;
  net::IpAddr peer_ip;
  FeedType feed = FeedType::kFull;
  bool internal_feed = false;             // CDN in-ISP deployment
  std::optional<std::uint32_t> ixp_id;    // PCH sessions live on an IXP LAN
  bool route_server_session = false;      // peer is the IXP route server
};

// One update stamped with the platform that recorded it.
struct FeedUpdate {
  Platform platform = Platform::kRis;
  bgp::ObservedUpdate update;
  // Wall-clock ingest stamp (util::wall_clock_ns()), set once at the
  // producer edge and threaded through the pipeline / fabric so the
  // e2e.* latency histograms can measure ingest -> detection -> sink
  // delivery.  0 = unstamped.  Transient: excluded from equality (two
  // replays of the same feed carry the same updates at different wall
  // times) and never persisted.
  std::uint64_t ingest_ns = 0;

  friend bool operator==(const FeedUpdate& a, const FeedUpdate& b) {
    return a.platform == b.platform && a.update == b.update;
  }
};

struct FleetConfig {
  std::uint64_t seed = 7;
  std::size_t ris_collectors = 14;
  std::size_t rv_collectors = 15;
  // Platform peer-AS sampling probabilities by tier.
  double ris_tier1_prob = 1.0, ris_transit_prob = 0.33, ris_stub_prob = 0.015;
  double rv_tier1_prob = 1.0, rv_transit_prob = 0.22, rv_stub_prob = 0.010;
  double pch_member_prob = 0.35;   // members with a PCH session per IXP
  double cdn_as_prob = 0.45;       // ASes feeding the CDN
  double cdn_internal_prob = 0.55; // CDN sessions deployed inside the ISP
  // Per-platform rate of "extra" prefixes a peer announces only to this
  // platform (drives Table 1 unique-prefix counts).
  double ris_extra_rate = 0.02, rv_extra_rate = 0.06, pch_extra_rate = 0.25;
};

// Table 1 row.
struct DatasetStats {
  std::size_t ip_peers = 0;
  std::size_t as_peers = 0;
  std::size_t unique_as_peers = 0;
  std::uint64_t prefixes = 0;
  std::uint64_t unique_prefixes = 0;
};

class CollectorFleet {
 public:
  static CollectorFleet build(const topology::AsGraph& graph,
                              const FleetConfig& config);

  const std::vector<CollectorSession>& sessions() const { return sessions_; }
  // Indices into sessions() for a given peer AS.
  std::span<const std::size_t> sessions_of(bgp::Asn asn) const;
  // PCH sessions present at a given IXP.
  std::span<const std::size_t> pch_sessions_at(std::uint32_t ixp_id) const;

  // Materialize the updates recorded across all platforms for one
  // blackhole announcement.  `rng_label` keys the deterministic jitter.
  std::vector<FeedUpdate> observe_announcement(
      const BlackholePropagation& prop, const BlackholeAnnouncement& ann,
      const PropagationEngine& engine) const;

  // End-of-event updates for the same holder set: explicit withdrawals
  // or an implicit re-announcement without the blackhole communities.
  std::vector<FeedUpdate> observe_withdrawal(
      const BlackholePropagation& prop, const BlackholeAnnouncement& ann,
      const PropagationEngine& engine, util::SimTime time,
      bool explicit_withdrawal) const;

  // Table 1 dataset overview.
  std::map<Platform, DatasetStats> table1_stats(const topology::AsGraph& graph) const;
  DatasetStats table1_total(const topology::AsGraph& graph) const;

 private:
  std::vector<FeedUpdate> observe_internal(const BlackholePropagation& prop,
                                           const BlackholeAnnouncement& ann,
                                           const PropagationEngine& engine,
                                           util::SimTime time, int mode) const;

  std::vector<CollectorSession> sessions_;
  std::unordered_map<bgp::Asn, std::vector<std::size_t>> by_peer_;
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> pch_by_ixp_;
  std::uint64_t seed_ = 0;
};

}  // namespace bgpbh::routing
