// BGP route propagation over the AS graph.
//
// Two propagation modes:
//
// 1. Baseline policy routing (Gao-Rexford valley-free): computes, per
//    origin AS, the route tree every other AS would select.  Used for
//    regular-table AS paths at collectors and for the data-plane
//    forwarding simulation.
//
// 2. Blackhole announcement propagation: localized, policy-violating
//    propagation of more-specific (usually /32) prefixes tagged with
//    blackhole communities — the paper's Fig 3 scenario, including
//    community bundling, IXP route-server redistribution, community
//    stripping, and limited onward leaking (Fig 7c: 30% of blackholed
//    prefixes propagate >= 1 AS hop beyond the provider).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/aspath.h"
#include "bgp/community.h"
#include "net/prefix.h"
#include "topology/as_graph.h"
#include "topology/cone.h"
#include "util/rng.h"
#include "util/time.h"

namespace bgpbh::routing {

using bgp::Asn;
using topology::AsGraph;

// Route class in decreasing preference order (Gao-Rexford).
enum class RouteClass : std::uint8_t { kCustomer, kPeer, kProvider, kNone };

// Per-origin shortest valley-free route tree.
class RouteTree {
 public:
  // parent_[i]: dense node index of the next hop toward the origin, or
  // -1 when i is the origin / unreachable.
  std::vector<std::int32_t> parent;
  std::vector<RouteClass> cls;
  std::vector<std::uint8_t> dist;

  bool reachable(std::size_t idx) const {
    return idx < cls.size() && cls[idx] != RouteClass::kNone;
  }
};

// How a user schedules a blackholing announcement (workload output).
struct BlackholeAnnouncement {
  Asn user = 0;
  net::Prefix prefix;
  // Providers whose blackholing service the user invokes.
  std::vector<Asn> target_providers;
  // IXPs whose route-server blackholing the user invokes.
  std::vector<std::uint32_t> target_ixps;
  // If true, all blackhole communities are bundled into a single
  // announcement sent to every external neighbour (Fig 3, AS C2);
  // otherwise one tailored announcement per target (AS C1).
  bool bundle = false;
  // Extra non-blackhole communities the user attaches (noise).
  std::vector<bgp::Community> extra_communities;
  util::SimTime time = 0;

  // Misconfiguration injection (exercises §10's findings).
  enum class Misconfig : std::uint8_t {
    kNone,
    kInvalidNextHop,   // RS accepts on control plane, no data-plane drop
    kWrongCommunity,   // typo'd community: no provider activates
    kMissingIrrEntry,  // RS filters the announcement entirely
  };
  Misconfig misconfig = Misconfig::kNone;
};

// One AS that ended up holding (knowing) the blackhole route.
struct BlackholeRouteHolder {
  Asn holder = 0;
  bgp::AsPath path;          // holder-first, user last (prepending-free)
  bgp::CommunitySet communities;
  bool via_route_server = false;
  std::uint32_t ixp_id = 0;  // valid when via_route_server
  std::uint8_t hops_from_user = 0;
};

// Ground truth + observable state produced by one announcement.
struct BlackholePropagation {
  std::vector<Asn> activated_providers;       // installed a null route
  std::vector<std::uint32_t> activated_ixps;  // RS accepted + redistributed
  std::vector<BlackholeRouteHolder> holders;  // includes the user itself
  // (ixp, member) pairs that received the route via the route server;
  // whether each member *honours* it is decided by honours_rs_blackhole().
  std::vector<std::pair<std::uint32_t, Asn>> rs_receivers;
  bool control_plane_only = false;  // misconfig: visible but no drop
};

class PropagationEngine {
 public:
  PropagationEngine(const AsGraph& graph, const topology::CustomerCones& cones,
                    std::uint64_t seed);

  // Baseline valley-free path from `from` to `origin` (inclusive both
  // ends), or nullopt if unreachable.  Trees are cached per origin.
  std::optional<bgp::AsPath> baseline_path(Asn from, Asn origin);

  const RouteTree& tree_for_origin(Asn origin);

  // Propagate one blackhole announcement.
  BlackholePropagation propagate_blackhole(const BlackholeAnnouncement& ann);

  // Deterministic per-(ixp, member): does this member install routes it
  // learns from the IXP route server, including /32 blackhole routes?
  // (§10 passive analysis: some members reject /32s or don't use the RS.)
  bool honours_rs_blackhole(std::uint32_t ixp_id, Asn member) const;
  bool member_uses_route_server(std::uint32_t ixp_id, Asn member) const;

  // Deterministic AS-path prepending factor the holder applies when
  // exporting (1 = none); makes prepending-removal in the inference
  // engine load-bearing.
  std::size_t prepend_factor(Asn asn) const;

  const AsGraph& graph() const { return graph_; }

 private:
  void compute_tree(Asn origin, RouteTree& tree);

  const AsGraph& graph_;
  const topology::CustomerCones& cones_;
  util::Rng rng_;
  std::uint64_t seed_;
  std::unordered_map<Asn, RouteTree> tree_cache_;
};

}  // namespace bgpbh::routing
