#include "routing/propagation.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace bgpbh::routing {

namespace {

// Stable per-entity hash for behavioural coin flips that must not
// depend on call order (e.g. whether an IXP member honours RS routes).
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0) {
  util::SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL) ^ (c * 0xc2b2ae3d27d4eb4fULL));
  return sm.next();
}

double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

PropagationEngine::PropagationEngine(const AsGraph& graph,
                                     const topology::CustomerCones& cones,
                                     std::uint64_t seed)
    : graph_(graph), cones_(cones), rng_(seed), seed_(seed) {}

const RouteTree& PropagationEngine::tree_for_origin(Asn origin) {
  auto it = tree_cache_.find(origin);
  if (it != tree_cache_.end()) return it->second;
  RouteTree& tree = tree_cache_[origin];
  compute_tree(origin, tree);
  return tree;
}

void PropagationEngine::compute_tree(Asn origin, RouteTree& tree) {
  const auto& nodes = graph_.nodes();
  std::size_t n = nodes.size();
  tree.parent.assign(n, -1);
  tree.cls.assign(n, RouteClass::kNone);
  tree.dist.assign(n, 0xFF);

  auto origin_idx = graph_.index_of(origin);
  if (!origin_idx) return;

  // Phase 1: customer routes travel upward (via provider edges).
  std::deque<std::size_t> queue;
  tree.cls[*origin_idx] = RouteClass::kCustomer;
  tree.dist[*origin_idx] = 0;
  queue.push_back(*origin_idx);
  std::vector<std::size_t> phase1_order;
  while (!queue.empty()) {
    std::size_t x = queue.front();
    queue.pop_front();
    phase1_order.push_back(x);
    for (Asn prov : nodes[x].providers) {
      auto pi = graph_.index_of(prov);
      if (!pi || tree.cls[*pi] != RouteClass::kNone) continue;
      tree.cls[*pi] = RouteClass::kCustomer;
      tree.parent[*pi] = static_cast<std::int32_t>(x);
      tree.dist[*pi] = tree.dist[x] + 1;
      queue.push_back(*pi);
    }
  }

  // Phase 2: customer routes exported to peers (single hop; peer routes
  // are not re-exported to peers or providers).
  std::vector<std::size_t> peer_seeds;
  for (std::size_t x : phase1_order) {
    for (Asn peer : nodes[x].peers) {
      auto pi = graph_.index_of(peer);
      if (!pi || tree.cls[*pi] != RouteClass::kNone) continue;
      tree.cls[*pi] = RouteClass::kPeer;
      tree.parent[*pi] = static_cast<std::int32_t>(x);
      tree.dist[*pi] = tree.dist[x] + 1;
      peer_seeds.push_back(*pi);
    }
  }

  // Phase 3: any route is exported to customers (provider routes travel
  // down).  Seed with all routed ASes in increasing distance order so
  // the BFS yields shortest valley-free paths.
  std::vector<std::size_t> seeds;
  seeds.insert(seeds.end(), phase1_order.begin(), phase1_order.end());
  seeds.insert(seeds.end(), peer_seeds.begin(), peer_seeds.end());
  std::stable_sort(seeds.begin(), seeds.end(), [&tree](std::size_t a, std::size_t b) {
    return tree.dist[a] < tree.dist[b];
  });
  queue.assign(seeds.begin(), seeds.end());
  while (!queue.empty()) {
    std::size_t x = queue.front();
    queue.pop_front();
    for (Asn cust : nodes[x].customers) {
      auto ci = graph_.index_of(cust);
      if (!ci || tree.cls[*ci] != RouteClass::kNone) continue;
      tree.cls[*ci] = RouteClass::kProvider;
      tree.parent[*ci] = static_cast<std::int32_t>(x);
      tree.dist[*ci] = tree.dist[x] + 1;
      queue.push_back(*ci);
    }
  }
}

std::optional<bgp::AsPath> PropagationEngine::baseline_path(Asn from, Asn origin) {
  const RouteTree& tree = tree_for_origin(origin);
  auto fi = graph_.index_of(from);
  if (!fi || !tree.reachable(*fi)) return std::nullopt;
  std::vector<Asn> hops;
  std::int32_t cur = static_cast<std::int32_t>(*fi);
  const auto& nodes = graph_.nodes();
  while (cur >= 0) {
    hops.push_back(nodes[static_cast<std::size_t>(cur)].asn);
    if (nodes[static_cast<std::size_t>(cur)].asn == origin) break;
    cur = tree.parent[static_cast<std::size_t>(cur)];
  }
  if (hops.empty() || hops.back() != origin) return std::nullopt;
  return bgp::AsPath(std::move(hops));
}

bool PropagationEngine::member_uses_route_server(std::uint32_t ixp_id,
                                                 Asn member) const {
  return unit(mix(seed_, 0x1001, (static_cast<std::uint64_t>(ixp_id) << 32) | member)) < 0.70;
}

bool PropagationEngine::honours_rs_blackhole(std::uint32_t ixp_id, Asn member) const {
  if (!member_uses_route_server(ixp_id, member)) return false;
  // Many members have not updated router configs to accept /32s (§10:
  // only about one third of the traffic-sending ASes drop).
  return unit(mix(seed_, 0x1002, (static_cast<std::uint64_t>(ixp_id) << 32) | member)) < 0.55;
}

std::size_t PropagationEngine::prepend_factor(Asn asn) const {
  double u = unit(mix(seed_, 0x1003, asn));
  if (u < 0.85) return 1;
  if (u < 0.95) return 2;
  return 3;
}

BlackholePropagation PropagationEngine::propagate_blackhole(
    const BlackholeAnnouncement& ann) {
  BlackholePropagation result;
  const topology::AsNode* user = graph_.find(ann.user);
  if (!user) return result;

  // Assemble the community payloads.
  auto provider_community = [this](Asn provider) -> std::optional<bgp::Community> {
    const topology::AsNode* p = graph_.find(provider);
    if (!p || !p->blackhole.offers_blackholing || p->blackhole.communities.empty())
      return std::nullopt;
    return p->blackhole.communities.front();
  };

  bgp::CommunitySet bundle;
  for (Asn p : ann.target_providers) {
    if (auto c = provider_community(p)) bundle.add(*c);
  }
  for (std::uint32_t ix : ann.target_ixps) {
    const topology::Ixp* ixp = graph_.find_ixp(ix);
    if (ixp && ixp->offers_blackholing) bundle.add(ixp->blackhole_community);
  }
  for (auto c : ann.extra_communities) bundle.add(c);

  if (ann.misconfig == BlackholeAnnouncement::Misconfig::kWrongCommunity) {
    // Typo'd community values: shift every blackhole value by +5.
    bgp::CommunitySet corrupted;
    for (auto c : bundle.classic()) {
      corrupted.add(bgp::Community(c.asn(), static_cast<std::uint16_t>(c.value() + 5)));
    }
    bundle = corrupted;
  }

  // The user itself holds the union view (what an internal/CDN feed sees).
  {
    BlackholeRouteHolder self;
    self.holder = ann.user;
    self.path = bgp::AsPath({ann.user});
    self.communities = bundle;
    self.hops_from_user = 0;
    result.holders.push_back(std::move(self));
  }

  // Best practice (§2): blackholing is accepted only for prefixes more
  // specific than /24 (IPv6: /48), up to the provider's maximum length.
  auto length_ok = [&](std::uint8_t max_len) {
    if (ann.prefix.is_v4()) {
      return ann.prefix.len() > 24 && ann.prefix.len() <= max_len;
    }
    return ann.prefix.len() > 48;
  };

  // Authentication outcome for (provider policy, user, prefix).
  auto auth_ok = [&](const topology::AsNode& provider) {
    if (ann.misconfig == BlackholeAnnouncement::Misconfig::kWrongCommunity)
      return false;  // community didn't match; nothing to authenticate
    if (!length_ok(provider.blackhole.max_accepted_prefix_len)) return false;
    auto origin = graph_.origin_of(ann.prefix.addr());
    switch (provider.blackhole.auth) {
      case topology::BlackholeAuth::kCustomerCone:
        return origin.has_value() &&
               (*origin == ann.user || cones_.in_cone(ann.user, *origin));
      case topology::BlackholeAuth::kRpki:
        // Assume users maintain ROAs for their own space only.
        return origin.has_value() && *origin == ann.user;
      case topology::BlackholeAuth::kIrr:
        return ann.misconfig != BlackholeAnnouncement::Misconfig::kMissingIrrEntry;
    }
    return false;
  };

  // BFS frontier of (holder_idx, path, comms, hops) for onward leaking.
  struct Pending {
    Asn holder;
    std::vector<Asn> path;  // holder-first
    bgp::CommunitySet comms;
    std::uint8_t hops;
  };
  std::deque<Pending> frontier;
  std::unordered_map<Asn, bool> visited;
  visited[ann.user] = true;

  auto deliver = [&](Asn to, const bgp::CommunitySet& comms,
                     const std::vector<Asn>& path_tail, std::uint8_t hops,
                     bool is_target_provider) {
    if (visited.contains(to)) return;
    const topology::AsNode* node = graph_.find(to);
    if (!node) return;

    bool accepted = false;
    if (is_target_provider) {
      accepted = auth_ok(*node);
      if (accepted) result.activated_providers.push_back(to);
    } else if (node->blackhole.offers_blackholing && !node->blackhole.communities.empty() &&
               comms.contains(node->blackhole.communities.front())) {
      // Bundled announcement reaching a blackholing provider that the
      // user targeted via the bundle (Fig 3: AS P1/P2 for user C2).
      accepted = auth_ok(*node);
      if (accepted) result.activated_providers.push_back(to);
    } else {
      // A plain neighbour only keeps the more-specific if its ingress
      // filters allow it (best practice says reject > /24).
      accepted = !ann.prefix.more_specific_than(24) || node->accepts_more_specifics;
    }
    if (!accepted) return;
    visited[to] = true;

    std::vector<Asn> path{to};
    path.insert(path.end(), path_tail.begin(), path_tail.end());

    BlackholeRouteHolder h;
    h.holder = to;
    h.path = bgp::AsPath(path);
    h.communities = comms;
    h.hops_from_user = static_cast<std::uint8_t>(hops);
    result.holders.push_back(h);

    frontier.push_back(Pending{to, std::move(path), comms, hops});
  };

  // Direct deliveries from the user.
  if (ann.bundle) {
    // Same (bundled) announcement to every external neighbour.
    std::vector<Asn> neighbours;
    neighbours.insert(neighbours.end(), user->providers.begin(), user->providers.end());
    neighbours.insert(neighbours.end(), user->peers.begin(), user->peers.end());
    for (Asn n : neighbours) {
      bool is_target = std::find(ann.target_providers.begin(),
                                 ann.target_providers.end(),
                                 n) != ann.target_providers.end();
      deliver(n, bundle, {ann.user}, 1, is_target);
    }
  } else {
    // Tailored announcement per target provider.
    for (Asn p : ann.target_providers) {
      bgp::CommunitySet tailored;
      if (auto c = provider_community(p)) tailored.add(*c);
      for (auto c : ann.extra_communities) tailored.add(c);
      if (ann.misconfig == BlackholeAnnouncement::Misconfig::kWrongCommunity) {
        bgp::CommunitySet corrupted;
        for (auto c : tailored.classic()) {
          corrupted.add(bgp::Community(c.asn(),
                                       static_cast<std::uint16_t>(c.value() + 5)));
        }
        tailored = corrupted;
      }
      deliver(p, tailored, {ann.user}, 1, /*is_target_provider=*/true);
    }
  }

  // IXP route-server deliveries.  With bundling, the announcement goes
  // to every route server the user peers with — and since 47 of 49
  // blackholing IXPs share the RFC 7999 65535:666 value, any of them
  // whose community appears in the bundle treats it as a blackholing
  // request, targeted or not.
  std::vector<std::uint32_t> effective_ixps = ann.target_ixps;
  if (ann.bundle) {
    for (std::uint32_t ix : user->ixps) {
      const topology::Ixp* ixp = graph_.find_ixp(ix);
      if (!ixp || !ixp->offers_blackholing) continue;
      if (!bundle.contains(ixp->blackhole_community)) continue;
      if (std::find(effective_ixps.begin(), effective_ixps.end(), ix) ==
          effective_ixps.end()) {
        effective_ixps.push_back(ix);
      }
    }
  }
  for (std::uint32_t ix : effective_ixps) {
    const topology::Ixp* ixp = graph_.find_ixp(ix);
    if (!ixp || !ixp->offers_blackholing) continue;
    bool is_member = std::binary_search(ixp->members.begin(), ixp->members.end(), ann.user);
    if (!is_member) continue;
    if (ann.misconfig == BlackholeAnnouncement::Misconfig::kMissingIrrEntry) {
      // The route server's IRR filter rejects the announcement; it never
      // reaches the members (control-plane visibility only via the
      // user's own collector sessions).
      result.control_plane_only = true;
      continue;
    }
    bgp::CommunitySet ixp_comms = ann.bundle ? bundle : bgp::CommunitySet{};
    if (!ann.bundle) {
      ixp_comms.add(ixp->blackhole_community);
      for (auto c : ann.extra_communities) ixp_comms.add(c);
    }
    if (ann.misconfig == BlackholeAnnouncement::Misconfig::kWrongCommunity) {
      continue;  // RS does not recognize the community; treated as a
                 // regular (rejected, /32) announcement.
    }
    if (!length_ok(32)) continue;  // RS rejects /24-or-shorter blackholing
    result.activated_ixps.push_back(ix);
    if (ann.misconfig == BlackholeAnnouncement::Misconfig::kInvalidNextHop) {
      result.control_plane_only = true;
    }

    // The route server itself is observable (PCH peers with it).
    {
      BlackholeRouteHolder rs;
      rs.holder = ixp->route_server_asn;
      rs.path = ixp->transparent_route_server
                    ? bgp::AsPath({ann.user})
                    : bgp::AsPath({ixp->route_server_asn, ann.user});
      rs.communities = ixp_comms;
      rs.via_route_server = true;
      rs.ixp_id = ix;
      rs.hops_from_user = 1;
      result.holders.push_back(std::move(rs));
    }
    // Members that maintain an RS session receive the redistributed route.
    for (Asn member : ixp->members) {
      if (member == ann.user) continue;
      if (!member_uses_route_server(ix, member)) continue;
      result.rs_receivers.emplace_back(ix, member);
      if (visited.contains(member)) continue;
      const topology::AsNode* mnode = graph_.find(member);
      if (!mnode) continue;
      // A member installs/keeps the /32 only if its filters accept it.
      if (ann.prefix.more_specific_than(24) && !mnode->accepts_more_specifics &&
          !honours_rs_blackhole(ix, member)) {
        continue;
      }
      visited[member] = true;
      BlackholeRouteHolder h;
      h.holder = member;
      std::vector<Asn> path{member};
      if (!ixp->transparent_route_server) path.push_back(ixp->route_server_asn);
      path.push_back(ann.user);
      h.path = bgp::AsPath(path);
      h.communities = ixp_comms;
      h.via_route_server = true;
      h.ixp_id = ix;
      h.hops_from_user = 2;
      result.holders.push_back(h);
      // Members do not re-export RS-learned blackhole routes (they are
      // tagged no-export by the RS in practice).
    }
  }

  // Onward leaking beyond the first hop (RFC 7999 says suppress; ~30%
  // of blackholed prefixes are nonetheless seen >= 1 hop away, Fig 7c).
  while (!frontier.empty()) {
    Pending cur = frontier.front();
    frontier.pop_front();
    if (cur.hops >= 5) continue;
    const topology::AsNode* node = graph_.find(cur.holder);
    if (!node) continue;

    double leak_p = node->blackhole.offers_blackholing
                        ? node->blackhole.leak_probability
                        : 0.05;
    std::vector<Asn> neighbours;
    neighbours.insert(neighbours.end(), node->providers.begin(), node->providers.end());
    neighbours.insert(neighbours.end(), node->peers.begin(), node->peers.end());
    neighbours.insert(neighbours.end(), node->customers.begin(), node->customers.end());
    for (Asn n : neighbours) {
      if (visited.contains(n)) continue;
      double u = unit(mix(seed_, 0x2000 + cur.hops,
                          (static_cast<std::uint64_t>(cur.holder) << 32) | n));
      if (u >= leak_p) continue;
      bgp::CommunitySet comms = cur.comms;
      double strip_u = unit(mix(seed_, 0x3000,
                                (static_cast<std::uint64_t>(cur.holder) << 32) | n));
      if (strip_u < node->blackhole.strip_communities_probability) {
        comms.clear();  // communities stripped on export
      }
      deliver(n, comms, cur.path, static_cast<std::uint8_t>(cur.hops + 1),
              /*is_target_provider=*/false);
    }
  }

  // Deduplicate activation lists (bundle + tailored could double-add).
  std::sort(result.activated_providers.begin(), result.activated_providers.end());
  result.activated_providers.erase(
      std::unique(result.activated_providers.begin(), result.activated_providers.end()),
      result.activated_providers.end());
  std::sort(result.activated_ixps.begin(), result.activated_ixps.end());
  result.activated_ixps.erase(
      std::unique(result.activated_ixps.begin(), result.activated_ixps.end()),
      result.activated_ixps.end());
  return result;
}

}  // namespace bgpbh::routing
