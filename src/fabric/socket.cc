#include "fabric/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/bytes.h"
#include "storage/wire.h"

namespace bgpbh::fabric {

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<TcpConn> TcpConn::dial(const std::string& host,
                                     std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return std::nullopt;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd);
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpConn::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool TcpConn::send_all(const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool TcpConn::recv_all(std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    ssize_t r = ::recv(fd_, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // peer EOF
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool TcpConn::send_frame(FrameType type, std::span<const std::uint8_t> body) {
  if (fd_ < 0) return false;
  net::BufWriter payload;
  payload.u8(static_cast<std::uint8_t>(type));
  payload.bytes(body);
  net::BufWriter frame;
  storage::wire::encode_frame(frame, kFabricMagic, kFabricVersionMax,
                              payload.data());
  return send_all(frame.data().data(), frame.size());
}

std::optional<TcpConn::FramePayload> TcpConn::recv_frame() {
  if (fd_ < 0) return std::nullopt;
  // Header first (magic + version + payload_len), then the rest of the
  // frame, then one decode_frame pass over the whole buffer so the CRC
  // check is exactly the record codec's.
  std::uint8_t head[7];
  if (!recv_all(head, sizeof(head))) return std::nullopt;
  std::uint16_t magic =
      static_cast<std::uint16_t>((head[0] << 8) | head[1]);
  std::uint32_t len = (static_cast<std::uint32_t>(head[3]) << 24) |
                      (static_cast<std::uint32_t>(head[4]) << 16) |
                      (static_cast<std::uint32_t>(head[5]) << 8) |
                      static_cast<std::uint32_t>(head[6]);
  if (magic != kFabricMagic || len > kMaxFabricPayload) return std::nullopt;
  std::vector<std::uint8_t> frame(sizeof(head) + len + 4);
  std::memcpy(frame.data(), head, sizeof(head));
  if (!recv_all(frame.data() + sizeof(head), len + 4)) return std::nullopt;
  net::BufReader reader(frame);
  auto decoded = storage::wire::decode_frame(reader, kFabricMagic,
                                             kFabricVersionMin,
                                             kFabricVersionMax,
                                             kMaxFabricPayload);
  if (!decoded || decoded->payload.empty()) return std::nullopt;
  FramePayload out;
  out.type = static_cast<FrameType>(decoded->payload[0]);
  out.body.assign(decoded->payload.begin() + 1, decoded->payload.end());
  return out;
}

std::optional<TcpListener> TcpListener::listen(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  TcpListener out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

std::optional<TcpConn> TcpListener::accept() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpConn(conn);
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // shutdown() or fatal error
  }
}

void TcpListener::shutdown() {
  // SHUT_RDWR on a listening socket wakes a blocked accept() with an
  // error (the portable way to interrupt it without a self-pipe).
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace bgpbh::fabric
