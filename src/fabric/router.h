// FabricRouter: the client half of the multi-process shard fabric.
//
// A fabric session partitions the (peer, prefix) key space into
// `num_slots` global slots (stream::shard_for — the SAME deterministic
// hash the in-process pipeline shards by) and places each slot on a
// remote shard server (fabric/placement.h).  The router:
//
//   * splits every pushed update into single-prefix sub-updates
//     (withdrawals first — mirroring stream::ShardRouter's order, so
//     per-key transition order is identical to the in-process plane),
//   * batches them per (slot, producer) lane into APPEND frames with a
//     bounded in-flight window (at most `max_inflight` unacked frames
//     per lane; a full window blocks the producer — backpressure,
//     never loss),
//   * survives connection loss ReconnectingSource-style: redial with
//     util::RetryPolicy backoff, HELLO returns the server's accepted
//     sub-update count for the lane, and the un-durable replay buffer
//     is resent from exactly that index — exactly-once across server
//     SIGKILL + recovery,
//   * serves scatter-gather queries: one thread per slot fans the
//     query out, results merge in canonical event order, and
//   * rebalances live (migrate): quiesce a slot, have the source
//     server cut a drained checkpoint (PR 8 codec), ship the
//     checkpoint + pinned segment files, install + recover on the
//     target, flip the placement route, and resume — zero loss, zero
//     duplication (the replay buffer is empty at the flip because the
//     checkpoint made everything durable).
//
// Exactly-once accounting: a lane's sub-updates are indexed from 0 in
// send order.  The server acks every APPEND with (accepted_total,
// durable_total); `durable` advances only at drained checkpoint cuts,
// and the router prunes its replay buffer to it.  After a server
// crash, HELLO reports the recovered accepted count (== the newest
// durable cut, which write_checkpoint's atomic rename guarantees is
// >= anything the client was ever told), so the resend can neither
// skip nor duplicate a sub-update.
//
// Threading: one lane belongs to one producer thread.  Producers take
// their slot's lock shared; control operations (checkpoint_all,
// migrate, close) take it unique — so a rebalance blocks pushes only
// for the slot being moved.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/events.h"
#include "fabric/placement.h"
#include "fabric/protocol.h"
#include "fabric/socket.h"
#include "telemetry/fleet.h"
#include "telemetry/metrics.h"
#include "util/retry.h"
#include "util/time.h"

namespace bgpbh::fabric {

struct FabricEndpoint {
  std::string host;  // dotted-quad IPv4
  std::uint16_t port = 0;
};

struct FabricConfig {
  // Non-empty switches api::AnalysisSession (kLiveFeed) into fabric
  // mode: SessionConfig::num_shards becomes the global slot count and
  // every push is routed to the slot's shard server.
  std::vector<FabricEndpoint> endpoints;
  // Unacked APPEND frames per lane before the producer blocks on acks.
  std::size_t max_inflight = 4;
  // Sub-updates per APPEND frame.
  std::size_t batch_subs = 64;
  // Redial backoff on connection loss.  More patient than the default
  // policy: a crashed shard server needs time to recover its slots.
  util::RetryPolicy reconnect{
      .max_attempts = 40,
      .base_delay = std::chrono::milliseconds(10),
      .max_delay = std::chrono::milliseconds(500),
  };

  bool enabled() const { return !endpoints.empty(); }
};

class FabricRouter {
 public:
  FabricRouter(FabricConfig config, std::size_t num_slots,
               std::size_t num_producers,
               telemetry::MetricsRegistry* metrics);
  ~FabricRouter();

  FabricRouter(const FabricRouter&) = delete;
  FabricRouter& operator=(const FabricRouter&) = delete;

  // Split + batch + send one update on producer `p`'s lanes.  Returns
  // false after close().  Throws std::runtime_error when an endpoint
  // stays unreachable past the reconnect budget (never silent loss).
  bool push(std::size_t p, const routing::FeedUpdate& update);
  // Send partial batches and drain every outstanding ack on `p`'s
  // lanes (on return, everything pushed so far is server-accepted).
  void flush(std::size_t p);

  // Drain all lanes, then close every slot's remote session at
  // `end_time` (force-closing still-open events, as the in-process
  // pipeline's finish() does).  Idempotent.
  void close(util::SimTime end_time);

  // Drained checkpoint on every slot; prunes replay buffers to the new
  // durable totals.  False if any slot's cut failed.
  bool checkpoint_all();

  // Scatter-gather: fan one QUERY per slot (a thread each), decode the
  // remote lanes' event sets, merge in canonical order.
  std::vector<core::PeerEvent> query_events();

  // Live rebalance of `slot` onto endpoints()[target] (see file
  // comment for the protocol).  False if any step fails; the slot then
  // stays where it was.
  bool migrate(std::size_t slot, std::size_t target_endpoint);

  // Register a new shard server (e.g. freshly spawned capacity) as a
  // migrate() target.  Returns its endpoint index.  Existing slots do
  // not move automatically.
  std::size_t add_endpoint(const std::string& host, std::uint16_t port);

  // Graceful fleet shutdown: one SHUTDOWN frame per endpoint (servers
  // stop accepting and exit their run loop).  Best-effort.
  void shutdown_endpoints();

  // Fleet-wide observability: one STATS RPC per endpoint (v2+ servers
  // only; unreachable or v1 endpoints are skipped) gathers every
  // hosted slot's full registry snapshot + recent slow spans, folds
  // them into a single Snapshot (counters/gauges sum, histograms merge
  // bucket-exactly, per_shard re-keyed by global slot id), and
  // stitches remote server-side spans against this router's local ring
  // records that share a trace id — attributing slow RPC time to
  // wire/queue vs. remote engine.  The folded view feeds the existing
  // Prometheus / BENCH-JSON exporters unchanged.
  telemetry::FleetTelemetry fleet_telemetry();

  std::size_t num_slots() const { return num_slots_; }
  std::size_t num_producers() const { return num_producers_; }
  std::uint64_t updates_pushed() const {
    return updates_pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t reconnects() const {
    return reconnects_count_.load(std::memory_order_relaxed);
  }
  std::size_t endpoint_of(std::size_t slot) const { return placement_[slot]; }

 private:
  struct Lane {
    TcpConn conn;
    bool connected = false;
    // HELLO-negotiated session version; v1 lanes emit v1 bodies (no
    // trace header, sub-update ingest trailers truncated at send).
    std::uint8_t version = kFabricVersionMax;
    std::uint64_t sent = 0;         // next sub-update index to assign
    std::uint64_t replay_base = 0;  // index of replay.front()
    // Encoded sub-updates in [replay_base, sent): everything accepted
    // but not yet durable on the server — the resend source after a
    // crash.  Pruned on every ack's durable_total.
    std::deque<std::vector<std::uint8_t>> replay;
    // Encoded sub-updates staged for the next APPEND (not yet sent,
    // not yet indexed).
    std::vector<std::vector<std::uint8_t>> pending;
    std::size_t unacked = 0;  // APPEND frames sent, acks not read
    // (trace_id, send time) per unacked APPEND, FIFO — acks come back
    // in send order on a lane, so the front entry times the ack being
    // read.  Cleared on reconnect (the replay path re-times resends).
    std::deque<std::pair<std::uint64_t, std::chrono::steady_clock::time_point>>
        inflight_meta;
  };

  Lane& lane(std::size_t slot, std::size_t p) {
    return *lanes_[slot * num_producers_ + p];
  }
  FabricEndpoint endpoint(std::size_t index) const;

  // All lane operations require the caller to hold slot's lock (shared
  // for the owning producer, unique for control paths).
  void stage_sub(std::size_t p, const routing::FeedUpdate& sub,
                 std::size_t slot);
  void send_batch(Lane& ln, std::size_t slot, std::size_t p);
  void recv_one_ack(Lane& ln, std::size_t slot, std::size_t p);
  void drain_lane(Lane& ln, std::size_t slot, std::size_t p);
  void ensure_connected(Lane& ln, std::size_t slot, std::size_t p);
  bool try_connect(Lane& ln, std::size_t slot, std::size_t p);
  void send_frames_for_replay(Lane& ln, std::size_t slot, std::size_t p,
                              std::uint64_t from_index);

  // Optional trace attribution for a control RPC: when label and
  // trace_id are set, the RPC's round trip is offered to the local
  // TraceRing so fleet_telemetry() can stitch it against the
  // server-side span bound to the same id.
  struct ControlSpan {
    const char* label = nullptr;
    std::uint32_t shard = 0;
    std::uint64_t trace_id = 0;
  };

  // Fresh control connection RPC with retry; nullopt past the budget
  // or on an ERROR reply of the wrong type.  The body is built AFTER
  // the HELLO handshake via `build_body(negotiated_version, writer)` —
  // v2 bodies carry trace-context headers a v1 server must not see.
  std::optional<TcpConn::FramePayload> control_rpc(
      std::size_t endpoint_index, FrameType type,
      const std::function<void(std::uint8_t, net::BufWriter&)>& build_body,
      FrameType expect, const ControlSpan& span);
  bool checkpoint_slot_locked(std::size_t slot);
  void drain_slot_locked(std::size_t slot);

  FabricConfig config_;
  std::size_t num_slots_;
  std::size_t num_producers_;
  mutable std::mutex endpoints_mu_;
  std::vector<FabricEndpoint> endpoints_;
  std::vector<std::size_t> placement_;  // slot -> endpoint index
  std::vector<std::unique_ptr<std::shared_mutex>> slot_mu_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<std::uint64_t> updates_pushed_{0};
  std::atomic<std::uint64_t> reconnects_count_{0};
  std::atomic<std::int64_t> inflight_total_{0};
  std::atomic<bool> closed_{false};
  // Distributed trace-id generator: one id per RPC, stamped into v2
  // frame headers and echoed by server-side spans.  0 means untraced.
  std::atomic<std::uint64_t> next_trace_id_{1};

  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::Counter* batches_ = nullptr;
  telemetry::Counter* bytes_ = nullptr;
  telemetry::Counter* reconnects_ = nullptr;
  telemetry::Gauge* inflight_ = nullptr;
  telemetry::LatencyHistogram* rpc_ns_ = nullptr;
};

}  // namespace bgpbh::fabric
