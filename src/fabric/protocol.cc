#include "fabric/protocol.h"

#include "bgp/update.h"
#include "storage/record_codec.h"

namespace bgpbh::fabric {

void encode_sub_update(const routing::FeedUpdate& fu, net::BufWriter& out) {
  out.u8(static_cast<std::uint8_t>(fu.platform));
  out.u64(static_cast<std::uint64_t>(fu.update.time));
  storage::encode_ip(fu.update.peer_ip, out);
  out.u32(fu.update.peer_asn);
  out.u32(fu.update.collector_id);
  // The UPDATE body codec treats "rest of input" as NLRI, so it needs
  // an explicit length prefix to know where this sub-update ends.
  net::BufWriter body;
  bgp::encode_update_body(fu.update.body, body);
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.bytes(body.data());
  // v2 trailer; v1 lanes chop these bytes off at send time.
  out.u64(fu.ingest_ns);
}

std::optional<routing::FeedUpdate> decode_sub_update(net::BufReader& in,
                                                     std::uint8_t version) {
  routing::FeedUpdate fu;
  std::uint8_t platform = in.u8();
  if (platform >= routing::kNumPlatforms) return std::nullopt;
  fu.platform = static_cast<routing::Platform>(platform);
  fu.update.time = static_cast<util::SimTime>(in.u64());
  auto peer_ip = storage::decode_ip(in);
  if (!peer_ip) return std::nullopt;
  fu.update.peer_ip = *peer_ip;
  fu.update.peer_asn = in.u32();
  fu.update.collector_id = in.u32();
  std::uint32_t body_len = in.u32();
  if (!in.ok() || body_len > in.remaining()) return std::nullopt;
  net::BufReader body = in.sub(body_len);
  auto decoded = bgp::decode_update_body(body);
  if (!decoded || !body.ok() || !body.at_end()) return std::nullopt;
  fu.update.body = std::move(*decoded);
  if (version >= 2) {
    fu.ingest_ns = in.u64();
    if (!in.ok()) return std::nullopt;
  }
  return fu;
}

void encode_files(const std::vector<HandoffFile>& files, net::BufWriter& out) {
  out.u32(static_cast<std::uint32_t>(files.size()));
  for (const auto& f : files) {
    out.u16(static_cast<std::uint16_t>(f.name.size()));
    out.str(f.name);
    out.u32(static_cast<std::uint32_t>(f.bytes.size()));
    out.bytes(f.bytes);
  }
}

std::optional<std::vector<HandoffFile>> decode_files(net::BufReader& in) {
  std::uint32_t n = in.u32();
  if (!in.ok() || n > 100000) return std::nullopt;
  std::vector<HandoffFile> files;
  files.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    HandoffFile f;
    std::uint16_t name_len = in.u16();
    auto name = in.bytes(name_len);
    if (!in.ok()) return std::nullopt;
    f.name.assign(name.begin(), name.end());
    // Reject path separators: a handoff file name is installed verbatim
    // under the target's slot directory and must never escape it.
    if (f.name.empty() || f.name.find('/') != std::string::npos ||
        f.name.find("..") != std::string::npos) {
      return std::nullopt;
    }
    std::uint32_t len = in.u32();
    if (!in.ok() || len > in.remaining()) return std::nullopt;
    auto bytes = in.bytes(len);
    f.bytes.assign(bytes.begin(), bytes.end());
    files.push_back(std::move(f));
  }
  return files;
}

}  // namespace bgpbh::fabric
