// Slot placement for the shard fabric.
//
// The key space is already partitioned deterministically:
// stream::shard_for(peer, prefix, num_slots) names the slot owning a
// (peer, prefix) state key.  Placement maps slots onto endpoints with
// a consistent-hash ring (virtual nodes per endpoint), so adding an
// endpoint moves only ~1/N of the slots — and the fabric router can
// migrate exactly those slots live (FabricRouter::migrate) instead of
// reshuffling everything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bgpbh::fabric {

class HashRing {
 public:
  // `vnodes` virtual nodes per endpoint smooth the ring: with 40+ the
  // slot spread stays within a few percent of uniform.
  explicit HashRing(std::size_t num_endpoints, std::size_t vnodes = 40);

  // Endpoint index owning `key` (clockwise successor on the ring).
  std::size_t owner(std::uint64_t key) const;

  std::size_t num_endpoints() const { return num_endpoints_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t endpoint;
  };
  std::size_t num_endpoints_ = 0;
  std::vector<Point> ring_;  // sorted by hash
};

// Mixing hash for ring points and slot keys (splitmix64 finalizer —
// deterministic across builds, good avalanche).
std::uint64_t mix64(std::uint64_t x);

// Initial slot -> endpoint table: slot s goes to
// ring.owner(mix64(s)).  Deterministic, so every router derives the
// same table from the same endpoint list.
std::vector<std::size_t> place_slots(std::size_t num_slots,
                                     std::size_t num_endpoints);

}  // namespace bgpbh::fabric
