#include "fabric/placement.h"

#include <algorithm>

namespace bgpbh::fabric {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

HashRing::HashRing(std::size_t num_endpoints, std::size_t vnodes)
    : num_endpoints_(num_endpoints) {
  ring_.reserve(num_endpoints * vnodes);
  for (std::size_t e = 0; e < num_endpoints; ++e) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      ring_.push_back(Point{mix64((static_cast<std::uint64_t>(e) << 20) | v),
                            e});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) { return a.hash < b.hash; });
}

std::size_t HashRing::owner(std::uint64_t key) const {
  if (ring_.empty()) return 0;
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->endpoint;
}

std::vector<std::size_t> place_slots(std::size_t num_slots,
                                     std::size_t num_endpoints) {
  HashRing ring(num_endpoints == 0 ? 1 : num_endpoints);
  std::vector<std::size_t> placement(num_slots, 0);
  for (std::size_t s = 0; s < num_slots; ++s) {
    placement[s] = ring.owner(mix64(s));
  }
  return placement;
}

}  // namespace bgpbh::fabric
