// Minimal blocking TCP transport for the fabric protocol.
//
// One frame per send/recv, framed by storage::wire (the record codec's
// framing) with the fabric magic.  Connections are blocking and
// processed strictly in order on both sides, so a lane's APPEND acks
// always arrive in send order — the router's bounded in-flight window
// needs no reader thread.  All failures are returned, never thrown:
// the router turns them into reconnect-with-replay, the server closes
// the connection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fabric/protocol.h"

namespace bgpbh::fabric {

class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn() { close(); }
  TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  // Dotted-quad IPv4 host (collector-fleet deployments resolve names
  // out of band).  TCP_NODELAY is set: frames are already batched.
  static std::optional<TcpConn> dial(const std::string& host,
                                     std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  // Half-close from another thread; wakes a blocked recv.
  void shutdown();

  struct FramePayload {
    FrameType type;
    std::vector<std::uint8_t> body;  // payload minus the type byte
  };

  bool send_frame(FrameType type, std::span<const std::uint8_t> body);
  // nullopt on EOF, I/O error, or any framing/CRC defect.
  std::optional<FramePayload> recv_frame();

 private:
  bool send_all(const std::uint8_t* p, std::size_t n);
  bool recv_all(std::uint8_t* p, std::size_t n);

  int fd_ = -1;
};

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds 0.0.0.0:`port` with SO_REUSEADDR (0 = ephemeral; the bound
  // port is readable via port(), shard_server prints it on stdout).
  static std::optional<TcpListener> listen(std::uint16_t port);

  std::uint16_t port() const { return port_; }
  // nullopt once shutdown() was called (or on a fatal accept error).
  std::optional<TcpConn> accept();
  // Wakes a blocked accept(); safe from another thread.
  void shutdown();
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace bgpbh::fabric
