#include "fabric/router.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "bgp/rib.h"
#include "storage/record_codec.h"
#include "storage/wire.h"
#include "stream/shard_router.h"

namespace bgpbh::fabric {

namespace {

std::string describe_endpoint(const FabricEndpoint& ep) {
  return ep.host + ":" + std::to_string(ep.port);
}

}  // namespace

FabricRouter::FabricRouter(FabricConfig config, std::size_t num_slots,
                           std::size_t num_producers,
                           telemetry::MetricsRegistry* metrics)
    : config_(std::move(config)),
      num_slots_(num_slots == 0 ? 1 : num_slots),
      num_producers_(num_producers == 0 ? 1 : num_producers),
      endpoints_(config_.endpoints),
      placement_(place_slots(num_slots_, endpoints_.size())) {
  if (endpoints_.empty()) {
    throw std::invalid_argument("fabric: FabricRouter needs >= 1 endpoint");
  }
  if (config_.batch_subs == 0) config_.batch_subs = 1;
  if (config_.max_inflight == 0) config_.max_inflight = 1;
  slot_mu_.reserve(num_slots_);
  lanes_.reserve(num_slots_ * num_producers_);
  for (std::size_t s = 0; s < num_slots_; ++s) {
    slot_mu_.push_back(std::make_unique<std::shared_mutex>());
  }
  for (std::size_t i = 0; i < num_slots_ * num_producers_; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  metrics_ = metrics;
  if (metrics) {
    metrics->describe("fabric.router.batches",
                      "APPEND frames sent to shard servers");
    metrics->describe("fabric.router.bytes",
                      "Bytes sent in APPEND frames (incl. framing)");
    metrics->describe("fabric.router.reconnects",
                      "Lane reconnects after connection loss");
    metrics->describe("fabric.router.inflight",
                      "Unacked APPEND frames across all lanes");
    metrics->describe("fabric.rpc_ns", "Fabric RPC round-trip latency");
    batches_ = &metrics->counter("fabric.router.batches");
    bytes_ = &metrics->counter("fabric.router.bytes");
    reconnects_ = &metrics->counter("fabric.router.reconnects");
    inflight_ = &metrics->gauge("fabric.router.inflight");
    rpc_ns_ = &metrics->histogram("fabric.rpc_ns");
  }
}

FabricRouter::~FabricRouter() = default;

FabricEndpoint FabricRouter::endpoint(std::size_t index) const {
  std::lock_guard lock(endpoints_mu_);
  return endpoints_.at(index);
}

std::size_t FabricRouter::add_endpoint(const std::string& host,
                                       std::uint16_t port) {
  std::lock_guard lock(endpoints_mu_);
  endpoints_.push_back(FabricEndpoint{host, port});
  return endpoints_.size() - 1;
}

// ---- lane plumbing ----------------------------------------------------

namespace {

// Parses one kAppendAck body; false on malformed input.
bool parse_append_ack(std::span<const std::uint8_t> body,
                      std::uint64_t& accepted, std::uint64_t& durable) {
  net::BufReader r(body);
  accepted = r.u64();
  durable = r.u64();
  return r.ok();
}

// Sub-updates are staged and replay-buffered in v2 form (trailing u64
// ingest stamp); a lane that negotiated v1 chops the trailer off at
// send time.
std::span<const std::uint8_t> sub_for_version(
    const std::vector<std::uint8_t>& sub, std::uint8_t version) {
  std::span<const std::uint8_t> bytes(sub);
  if (version < 2) bytes = bytes.first(bytes.size() - kSubUpdateIngestTrailerBytes);
  return bytes;
}

}  // namespace

void FabricRouter::recv_one_ack(Lane& ln, std::size_t slot, std::size_t p) {
  auto frame = ln.conn.recv_frame();
  std::uint64_t accepted = 0, durable = 0;
  if (!frame || frame->type != FrameType::kAppendAck ||
      !parse_append_ack(frame->body, accepted, durable)) {
    // Connection lost mid-window: reconnect resends the whole
    // un-durable suffix and drains it, leaving unacked == 0.
    ln.connected = false;
    ensure_connected(ln, slot, p);
    return;
  }
  // Acks return in send order, so the front in-flight entry is the
  // frame this ack answers: its send timestamp gives the full RPC
  // round trip (queue + wire + server), its trace id lets
  // fleet_telemetry() stitch this span against the server-side half.
  if (!ln.inflight_meta.empty()) {
    const auto [trace_id, t0] = ln.inflight_meta.front();
    ln.inflight_meta.pop_front();
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (rpc_ns_) rpc_ns_->record(ns);
    if (metrics_) {
      metrics_->trace().maybe_record("fabric.append",
                                     static_cast<std::uint32_t>(slot), ns,
                                     trace_id);
    }
  }
  --ln.unacked;
  inflight_total_.fetch_sub(1, std::memory_order_relaxed);
  if (inflight_) {
    inflight_->set(
        static_cast<double>(inflight_total_.load(std::memory_order_relaxed)));
  }
  while (ln.replay_base < durable && !ln.replay.empty()) {
    ln.replay.pop_front();
    ++ln.replay_base;
  }
}

bool FabricRouter::try_connect(Lane& ln, std::size_t slot, std::size_t p) {
  inflight_total_.fetch_sub(static_cast<std::int64_t>(ln.unacked),
                            std::memory_order_relaxed);
  ln.unacked = 0;
  ln.inflight_meta.clear();  // replay frames below are not ring-timed
  ln.connected = false;
  ln.conn.close();
  FabricEndpoint ep = endpoint(placement_[slot]);
  auto conn = TcpConn::dial(ep.host, ep.port);
  if (!conn) return false;
  ln.conn = std::move(*conn);
  net::BufWriter hello;
  hello.u8(kFabricVersionMin);
  hello.u8(kFabricVersionMax);
  hello.u32(static_cast<std::uint32_t>(slot));
  hello.u32(static_cast<std::uint32_t>(p));
  if (!ln.conn.send_frame(FrameType::kHello, hello.data())) return false;
  auto ack = ln.conn.recv_frame();
  if (!ack || ack->type != FrameType::kHelloAck) return false;
  net::BufReader r(ack->body);
  std::uint8_t version = r.u8();
  std::uint64_t accepted = r.u64();
  if (!r.ok() || version < kFabricVersionMin || version > kFabricVersionMax) {
    return false;
  }
  // Integrity, not connectivity: the server claiming fewer sub-updates
  // than it once reported durable (or more than we ever sent) means a
  // lost or foreign slot directory — retrying cannot fix it.
  if (accepted < ln.replay_base || accepted > ln.sent) {
    throw std::runtime_error(
        "fabric: server " + describe_endpoint(ep) + " reports " +
        std::to_string(accepted) + " accepted sub-update(s) for slot " +
        std::to_string(slot) + " lane " + std::to_string(p) +
        " outside the client's durable window [" +
        std::to_string(ln.replay_base) + ", " + std::to_string(ln.sent) + "]");
  }
  ln.connected = true;
  ln.version = version;
  // Resend the suffix the (restarted) server has not accepted yet,
  // honoring the in-flight window, and drain every ack so the lane
  // comes back with a clean slate.
  std::uint64_t idx = accepted;
  while (idx < ln.sent) {
    std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>(config_.batch_subs, ln.sent - idx));
    net::BufWriter w;
    w.u32(static_cast<std::uint32_t>(slot));
    w.u32(static_cast<std::uint32_t>(p));
    if (version >= 2) {
      w.u64(next_trace_id_.fetch_add(1, std::memory_order_relaxed));
      w.u64(util::wall_clock_ns());
    }
    w.u64(idx);
    w.u32(static_cast<std::uint32_t>(count));
    for (std::size_t i = 0; i < count; ++i) {
      w.bytes(sub_for_version(
          ln.replay[static_cast<std::size_t>(idx - ln.replay_base) + i],
          version));
    }
    if (!ln.conn.send_frame(FrameType::kAppend, w.data())) {
      ln.connected = false;
      return false;
    }
    if (batches_) batches_->add();
    if (bytes_) {
      bytes_->add(w.size() + storage::wire::kFrameOverheadBytes + 1);
    }
    ++ln.unacked;
    inflight_total_.fetch_add(1, std::memory_order_relaxed);
    idx += count;
    while (ln.unacked >= config_.max_inflight) {
      auto frame = ln.conn.recv_frame();
      std::uint64_t a = 0, d = 0;
      if (!frame || frame->type != FrameType::kAppendAck ||
          !parse_append_ack(frame->body, a, d)) {
        ln.connected = false;
        return false;
      }
      --ln.unacked;
      inflight_total_.fetch_sub(1, std::memory_order_relaxed);
      while (ln.replay_base < d && !ln.replay.empty()) {
        ln.replay.pop_front();
        ++ln.replay_base;
      }
    }
  }
  while (ln.unacked > 0) {
    auto frame = ln.conn.recv_frame();
    std::uint64_t a = 0, d = 0;
    if (!frame || frame->type != FrameType::kAppendAck ||
        !parse_append_ack(frame->body, a, d)) {
      ln.connected = false;
      return false;
    }
    --ln.unacked;
    inflight_total_.fetch_sub(1, std::memory_order_relaxed);
    while (ln.replay_base < d && !ln.replay.empty()) {
      ln.replay.pop_front();
      ++ln.replay_base;
    }
  }
  return true;
}

void FabricRouter::ensure_connected(Lane& ln, std::size_t slot,
                                    std::size_t p) {
  if (ln.connected && ln.conn.valid()) return;
  const bool is_reconnect = ln.sent > 0 || ln.replay_base > 0;
  if (is_reconnect) {
    reconnects_count_.fetch_add(1, std::memory_order_relaxed);
    if (reconnects_) reconnects_->add();
  }
  const util::RetryPolicy& rp = config_.reconnect;
  for (std::size_t attempt = 1; attempt <= rp.attempts(); ++attempt) {
    if (attempt > 1) std::this_thread::sleep_for(rp.delay(attempt - 1));
    if (try_connect(ln, slot, p)) return;
  }
  throw std::runtime_error(
      "fabric: shard server " + describe_endpoint(endpoint(placement_[slot])) +
      " unreachable for slot " + std::to_string(slot) + " after " +
      std::to_string(rp.attempts()) + " attempt(s)");
}

void FabricRouter::send_batch(Lane& ln, std::size_t slot, std::size_t p) {
  if (ln.pending.empty()) return;
  ensure_connected(ln, slot, p);
  const std::uint64_t trace_id =
      next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  net::BufWriter w;
  w.u32(static_cast<std::uint32_t>(slot));
  w.u32(static_cast<std::uint32_t>(p));
  if (ln.version >= 2) {
    w.u64(trace_id);
    w.u64(util::wall_clock_ns());
  }
  w.u64(ln.sent);
  w.u32(static_cast<std::uint32_t>(ln.pending.size()));
  for (const auto& sub : ln.pending) w.bytes(sub_for_version(sub, ln.version));
  // Into the replay buffer BEFORE the send: if the send fails the
  // reconnect path resends straight from replay, so the batch can
  // never be dropped between "staged" and "on the wire".
  for (auto& sub : ln.pending) ln.replay.push_back(std::move(sub));
  ln.sent += ln.pending.size();
  ln.pending.clear();
  if (batches_) batches_->add();
  if (bytes_) bytes_->add(w.size() + storage::wire::kFrameOverheadBytes + 1);
  if (!ln.conn.send_frame(FrameType::kAppend, w.data())) {
    ln.connected = false;
    ensure_connected(ln, slot, p);  // resends from replay
    return;
  }
  ++ln.unacked;
  ln.inflight_meta.emplace_back(trace_id, std::chrono::steady_clock::now());
  inflight_total_.fetch_add(1, std::memory_order_relaxed);
  if (inflight_) {
    inflight_->set(
        static_cast<double>(inflight_total_.load(std::memory_order_relaxed)));
  }
  while (ln.unacked >= config_.max_inflight) recv_one_ack(ln, slot, p);
}

void FabricRouter::drain_lane(Lane& ln, std::size_t slot, std::size_t p) {
  send_batch(ln, slot, p);
  while (ln.unacked > 0) recv_one_ack(ln, slot, p);
}

void FabricRouter::stage_sub(std::size_t p, const routing::FeedUpdate& sub,
                             std::size_t slot) {
  Lane& ln = lane(slot, p);
  net::BufWriter w;
  encode_sub_update(sub, w);
  ln.pending.push_back(w.take());
  if (ln.pending.size() >= config_.batch_subs) send_batch(ln, slot, p);
}

bool FabricRouter::push(std::size_t p, const routing::FeedUpdate& update) {
  if (closed_.load(std::memory_order_acquire)) return false;
  updates_pushed_.fetch_add(1, std::memory_order_relaxed);
  const bgp::UpdateBody& body = update.update.body;
  if (body.withdrawn.empty() && body.announced.empty()) return true;
  bgp::PeerKey peer{update.update.peer_ip, update.update.peer_asn};
  // Mirror stream::ShardRouter's split exactly: withdrawals first, and
  // a withdrawal sub-update carries no route attributes.
  routing::FeedUpdate sub;
  sub.platform = update.platform;
  sub.update.time = update.update.time;
  sub.update.peer_ip = update.update.peer_ip;
  sub.update.peer_asn = update.update.peer_asn;
  sub.update.collector_id = update.update.collector_id;
  // Producer-edge ingest stamp, exactly once per update: a pre-stamped
  // update keeps its origin so end-to-end latency spans processes.
  sub.ingest_ns =
      update.ingest_ns != 0 ? update.ingest_ns : util::wall_clock_ns();
  for (const auto& prefix : body.withdrawn) {
    sub.update.body.withdrawn.assign(1, prefix);
    std::size_t slot = stream::shard_for(peer, prefix, num_slots_);
    std::shared_lock lock(*slot_mu_[slot]);
    stage_sub(p, sub, slot);
  }
  sub.update.body.withdrawn.clear();
  sub.update.body.as_path = body.as_path;
  sub.update.body.communities = body.communities;
  sub.update.body.next_hop = body.next_hop;
  sub.update.body.origin = body.origin;
  for (const auto& prefix : body.announced) {
    sub.update.body.announced.assign(1, prefix);
    std::size_t slot = stream::shard_for(peer, prefix, num_slots_);
    std::shared_lock lock(*slot_mu_[slot]);
    stage_sub(p, sub, slot);
  }
  return true;
}

void FabricRouter::flush(std::size_t p) {
  for (std::size_t slot = 0; slot < num_slots_; ++slot) {
    std::shared_lock lock(*slot_mu_[slot]);
    drain_lane(lane(slot, p), slot, p);
  }
}

void FabricRouter::drain_slot_locked(std::size_t slot) {
  for (std::size_t p = 0; p < num_producers_; ++p) {
    drain_lane(lane(slot, p), slot, p);
  }
}

// ---- control plane ----------------------------------------------------

std::optional<TcpConn::FramePayload> FabricRouter::control_rpc(
    std::size_t endpoint_index, FrameType type,
    const std::function<void(std::uint8_t, net::BufWriter&)>& build_body,
    FrameType expect, const ControlSpan& span) {
  const util::RetryPolicy& rp = config_.reconnect;
  for (std::size_t attempt = 1; attempt <= rp.attempts(); ++attempt) {
    if (attempt > 1) std::this_thread::sleep_for(rp.delay(attempt - 1));
    FabricEndpoint ep = endpoint(endpoint_index);
    auto conn = TcpConn::dial(ep.host, ep.port);
    if (!conn) continue;
    net::BufWriter hello;
    hello.u8(kFabricVersionMin);
    hello.u8(kFabricVersionMax);
    hello.u32(kControlLane);
    hello.u32(kControlLane);
    if (!conn->send_frame(FrameType::kHello, hello.data())) continue;
    auto hello_ack = conn->recv_frame();
    if (!hello_ack || hello_ack->type != FrameType::kHelloAck) continue;
    net::BufReader hr(hello_ack->body);
    const std::uint8_t version = hr.u8();
    if (!hr.ok() || version < kFabricVersionMin ||
        version > kFabricVersionMax) {
      continue;
    }
    // STATS is v2-only; a v1 server can never answer it, so retrying
    // would only repeat the refusal.
    if (type == FrameType::kStats && version < 2) return std::nullopt;
    net::BufWriter body;
    build_body(version, body);
    auto t0 = std::chrono::steady_clock::now();
    if (!conn->send_frame(type, body.data())) continue;
    auto reply = conn->recv_frame();
    if (!reply) continue;
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (rpc_ns_) rpc_ns_->record(ns);
    if (metrics_ && span.label != nullptr && span.trace_id != 0) {
      metrics_->trace().maybe_record(span.label, span.shard, ns,
                                     span.trace_id);
    }
    // An ERROR or wrong-type reply is a protocol-level refusal, not a
    // transient network fault; retrying would only repeat it.
    if (reply->type != expect) return std::nullopt;
    return reply;
  }
  return std::nullopt;
}

bool FabricRouter::checkpoint_slot_locked(std::size_t slot) {
  const std::uint64_t trace_id =
      next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  auto reply = control_rpc(
      placement_[slot], FrameType::kCheckpoint,
      [&](std::uint8_t version, net::BufWriter& body) {
        body.u32(static_cast<std::uint32_t>(slot));
        if (version >= 2) {
          body.u64(trace_id);
          body.u64(util::wall_clock_ns());
        }
      },
      FrameType::kCheckpointAck,
      ControlSpan{"fabric.checkpoint", static_cast<std::uint32_t>(slot),
                  trace_id});
  if (!reply) return false;
  net::BufReader r(reply->body);
  std::uint8_t ok = r.u8();
  std::uint32_t producers = r.u32();
  if (!r.ok() || ok == 0) return false;
  for (std::uint32_t p = 0; p < producers && p < num_producers_; ++p) {
    std::uint64_t durable = r.u64();
    if (!r.ok()) return false;
    Lane& ln = lane(slot, p);
    while (ln.replay_base < durable && !ln.replay.empty()) {
      ln.replay.pop_front();
      ++ln.replay_base;
    }
  }
  return true;
}

bool FabricRouter::checkpoint_all() {
  bool all_ok = true;
  for (std::size_t slot = 0; slot < num_slots_; ++slot) {
    std::unique_lock lock(*slot_mu_[slot]);
    drain_slot_locked(slot);
    all_ok = checkpoint_slot_locked(slot) && all_ok;
  }
  return all_ok;
}

void FabricRouter::close(util::SimTime end_time) {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  for (std::size_t p = 0; p < num_producers_; ++p) flush(p);
  bool all_ok = true;
  for (std::size_t slot = 0; slot < num_slots_; ++slot) {
    std::unique_lock lock(*slot_mu_[slot]);
    drain_slot_locked(slot);
    all_ok = control_rpc(
                 placement_[slot], FrameType::kClose,
                 [&](std::uint8_t, net::BufWriter& body) {
                   body.u32(static_cast<std::uint32_t>(slot));
                   body.u64(static_cast<std::uint64_t>(end_time));
                 },
                 FrameType::kCloseAck, ControlSpan{})
                 .has_value() &&
             all_ok;
  }
  if (!all_ok) {
    throw std::runtime_error(
        "fabric: close() could not reach every shard server; remote open "
        "state was not force-closed");
  }
}

std::vector<core::PeerEvent> FabricRouter::query_events() {
  std::vector<std::vector<core::PeerEvent>> per_slot(num_slots_);
  std::atomic<bool> failed{false};
  std::vector<std::thread> fan;
  fan.reserve(num_slots_);
  for (std::size_t slot = 0; slot < num_slots_; ++slot) {
    fan.emplace_back([this, slot, &per_slot, &failed] {
      try {
        std::shared_lock lock(*slot_mu_[slot]);
        const std::uint64_t trace_id =
            next_trace_id_.fetch_add(1, std::memory_order_relaxed);
        auto reply = control_rpc(
            placement_[slot], FrameType::kQuery,
            [&](std::uint8_t version, net::BufWriter& body) {
              body.u32(static_cast<std::uint32_t>(slot));
              if (version >= 2) {
                body.u64(trace_id);
                body.u64(util::wall_clock_ns());
              }
            },
            FrameType::kQueryResult,
            ControlSpan{"fabric.query", static_cast<std::uint32_t>(slot),
                        trace_id});
        if (!reply) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        net::BufReader r(reply->body);
        std::uint32_t n = r.u32();
        per_slot[slot].reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          std::uint32_t len = r.u32();
          if (!r.ok() || len > r.remaining()) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          net::BufReader payload = r.sub(len);
          auto event = storage::decode_event_payload(payload);
          if (!event || !payload.ok() || !payload.at_end()) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          per_slot[slot].push_back(std::move(*event));
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : fan) t.join();
  if (failed.load()) {
    throw std::runtime_error("fabric: scatter-gather query failed");
  }
  std::vector<core::PeerEvent> merged;
  std::size_t total = 0;
  for (const auto& v : per_slot) total += v.size();
  merged.reserve(total);
  for (auto& v : per_slot) {
    merged.insert(merged.end(), std::make_move_iterator(v.begin()),
                  std::make_move_iterator(v.end()));
  }
  core::canonical_sort(merged);
  return merged;
}

bool FabricRouter::migrate(std::size_t slot, std::size_t target_endpoint) {
  std::unique_lock lock(*slot_mu_[slot]);
  if (placement_[slot] == target_endpoint) return true;
  // 1. Quiesce: every lane drained and server-accepted.
  drain_slot_locked(slot);
  // 2. Drained checkpoint on the source: open state + watermarks +
  //    durable log position, with all closed events sealed to disk.
  if (!checkpoint_slot_locked(slot)) return false;
  // 3. Ship the slot directory (checkpoint + pinned segment suffix).
  const auto slot_body = [slot](std::uint8_t, net::BufWriter& body) {
    body.u32(static_cast<std::uint32_t>(slot));
  };
  auto fetched = control_rpc(placement_[slot], FrameType::kHandoffFetch,
                             slot_body, FrameType::kHandoffState, ControlSpan{});
  if (!fetched) return false;
  net::BufReader fr(fetched->body);
  auto files = decode_files(fr);
  if (!files) return false;
  // 4. Install + recover on the target; it reports the accepted counts
  //    it recovered to, which must equal everything we ever sent.
  auto ack = control_rpc(
      target_endpoint, FrameType::kHandoffInstall,
      [&](std::uint8_t, net::BufWriter& install) {
        install.u32(static_cast<std::uint32_t>(slot));
        encode_files(*files, install);
      },
      FrameType::kHandoffAck, ControlSpan{});
  if (!ack) return false;
  net::BufReader ar(ack->body);
  std::uint8_t ok = ar.u8();
  std::uint32_t producers = ar.u32();
  if (!ar.ok() || ok == 0) return false;
  for (std::uint32_t p = 0; p < producers && p < num_producers_; ++p) {
    std::uint64_t accepted = ar.u64();
    if (!ar.ok() || accepted != lane(slot, p).sent) return false;
  }
  // 5. Release the source replica, flip the route, reconnect lazily.
  if (!control_rpc(placement_[slot], FrameType::kRelease, slot_body,
                   FrameType::kReleaseAck, ControlSpan{})) {
    return false;
  }
  placement_[slot] = target_endpoint;
  for (std::size_t p = 0; p < num_producers_; ++p) {
    Lane& ln = lane(slot, p);
    ln.connected = false;
    ln.conn.close();
  }
  return true;
}

void FabricRouter::shutdown_endpoints() {
  std::size_t count;
  {
    std::lock_guard lock(endpoints_mu_);
    count = endpoints_.size();
  }
  for (std::size_t e = 0; e < count; ++e) {
    control_rpc(e, FrameType::kShutdown, [](std::uint8_t, net::BufWriter&) {},
                FrameType::kShutdownAck, ControlSpan{});
  }
}

telemetry::FleetTelemetry FabricRouter::fleet_telemetry() {
  telemetry::FleetTelemetry fleet;
  std::size_t count;
  {
    std::lock_guard lock(endpoints_mu_);
    count = endpoints_.size();
  }
  for (std::size_t e = 0; e < count; ++e) {
    const std::uint64_t trace_id =
        next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    auto reply = control_rpc(
        e, FrameType::kStats,
        [&](std::uint8_t, net::BufWriter& body) {
          body.u64(trace_id);
          body.u64(util::wall_clock_ns());
          body.u32(1024);  // slow spans per slot — generous, bounded
        },
        FrameType::kStatsAck,
        ControlSpan{"fabric.stats", static_cast<std::uint32_t>(e), trace_id});
    // An unreachable (or v1) endpoint is skipped: the fold covers what
    // answered, and the per-endpoint split shows who is missing.
    if (!reply) continue;
    net::BufReader r(reply->body);
    std::uint32_t n_slots = r.u32();
    if (!r.ok()) continue;
    telemetry::EndpointTelemetry et;
    et.endpoint = describe_endpoint(endpoint(e));
    et.slots.reserve(n_slots);
    bool ok = true;
    for (std::uint32_t i = 0; i < n_slots; ++i) {
      auto st = telemetry::decode_slot_telemetry(r);
      if (!st) {
        ok = false;
        break;
      }
      et.slots.push_back(std::move(*st));
    }
    if (!ok) continue;
    fleet.endpoints.push_back(std::move(et));
  }
  fleet.folded = telemetry::fold_fleet(fleet.endpoints);
  // Stitch: a remote span whose trace id matches one of this router's
  // ring records pairs the RPC's two halves — client wall time minus
  // the server handler's time is wire + queue.
  if (metrics_) {
    const auto local = metrics_->trace().recent();
    std::unordered_map<std::uint64_t, const telemetry::TraceRecord*> by_id;
    by_id.reserve(local.size());
    for (const auto& rec : local) {
      if (rec.trace_id != 0) by_id[rec.trace_id] = &rec;
    }
    for (const auto& et : fleet.endpoints) {
      for (const auto& st : et.slots) {
        for (const auto& sp : st.spans) {
          if (sp.trace_id == 0) continue;
          auto it = by_id.find(sp.trace_id);
          if (it == by_id.end()) continue;
          const telemetry::TraceRecord& cl = *it->second;
          telemetry::StitchedRpc stitched;
          stitched.trace_id = sp.trace_id;
          stitched.client_label = cl.label;
          stitched.server_label = sp.label;
          stitched.slot = st.slot;
          stitched.client_ns = cl.duration_ns;
          stitched.server_ns = sp.duration_ns;
          stitched.wire_queue_ns = cl.duration_ns > sp.duration_ns
                                       ? cl.duration_ns - sp.duration_ns
                                       : 0;
          fleet.stitched.push_back(std::move(stitched));
        }
      }
    }
  }
  return fleet;
}

}  // namespace bgpbh::fabric
